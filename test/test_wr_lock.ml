(* Tests for WR-Lock (Algorithm 2): weak recoverability, responsiveness
   (Theorem 4.2), starvation freedom under crashes (Theorem 4.3), BCSR
   (Theorem 4.4), bounded recovery/exit (Theorem 4.6), O(1) RMRs
   (Theorem 4.7), and the Figure 1 sub-queue structure. *)

open Rme_sim
open Rme_locks

let check = Alcotest.check

let ci = Alcotest.int

let cb = Alcotest.bool

(* Run WR-Lock under the standard harness, returning both the engine result
   and the lock internals for shared-memory inspection. *)
let run_wr ?record ?trace_ops ?(model = Memory.CC) ?(crash = Crash.none)
    ?(sched = Sched.round_robin ()) ?(n = 4) ?(requests = 5) ?cs ?on_crash ?max_steps () =
  let internals = ref None in
  let res =
    Engine.run ?record ?trace_ops ?max_steps
      ?on_crash:
        (Option.map
           (fun f ~pid ~step -> f (Option.get !internals) ~pid ~step)
           on_crash)
      ~n ~model ~sched ~crash
      ~setup:(fun ctx ->
        let t = Wr_lock.create ctx in
        internals := Some t;
        Wr_lock.lock t)
      ~body:(fun lock ~pid -> Harness.standard_body ?cs ~lock ~requests pid)
      ()
  in
  (res, Option.get !internals)

let wr_stats (res : Engine.result) (t : Wr_lock.t) =
  res.Engine.locks.(Wr_lock.lock_id t)

let assert_all_satisfied res ~n ~requests =
  check cb "no deadlock" false res.Engine.deadlocked;
  check cb "no timeout" false res.Engine.timed_out;
  check ci "all satisfied" (n * requests) (Engine.total_completed res)

(* ------------------------------------------------------------------ *)
(* Failure-free behaviour                                              *)
(* ------------------------------------------------------------------ *)

let test_me_no_failures model sched () =
  let n = 6 and requests = 8 in
  let res, t = run_wr ~model ~sched ~n ~requests () in
  assert_all_satisfied res ~n ~requests;
  check ci "mutual exclusion" 1 res.Engine.cs_max;
  check ci "lock occupancy 1" 1 (wr_stats res t).Engine.max_occupancy;
  check ci "no unsafe crash" 0 (wr_stats res t).Engine.unsafe_crashes

let test_counter_exact () =
  let n = 5 and requests = 10 in
  let counter = ref None in
  let (_ : Engine.result) =
    Engine.run ~n ~model:Memory.CC ~sched:(Sched.random ~seed:4) ~crash:Crash.none
      ~setup:(fun ctx ->
        let t = Wr_lock.create ctx in
        let c = Harness.counter_cell ctx in
        counter := Some (Engine.Ctx.memory ctx, c);
        (Wr_lock.lock t, c))
      ~body:(fun (lock, c) ~pid ->
        Harness.standard_body ~cs:(Harness.racy_increment c) ~lock ~requests pid)
      ()
  in
  let mem, c = Option.get !counter in
  check ci "no lost update" (n * requests) (Memory.peek mem c)

let test_rmr_constant_in_n model () =
  let rmr_at n =
    let res, _ = run_wr ~model ~n ~requests:4 ~sched:(Sched.random ~seed:2) () in
    Engine.max_rmr res
  in
  let r2 = rmr_at 2 and r8 = rmr_at 8 and r32 = rmr_at 32 in
  check cb (Printf.sprintf "flat rmr (%d %d %d)" r2 r8 r32) true (r32 <= r2 + 4 && r8 <= r2 + 4)

let test_fcfs_no_failures () =
  (* FCFS: with each process issuing one request, the CS order must equal
     the queue-append (FAS) order. *)
  let res, _ = run_wr ~record:true ~trace_ops:true ~n:6 ~requests:1 () in
  let fas_order =
    List.filter_map
      (function
        | Event.Op { kind = "fas"; pid; cell; _ } when cell = "wr.tail" -> Some pid | _ -> None)
      res.Engine.events
  in
  let cs_order =
    List.filter_map
      (function Event.Note { note = Event.Seg Event.Cs_begin; pid; _ } -> Some pid | _ -> None)
      res.Engine.events
  in
  check (Alcotest.list ci) "fcfs" fas_order cs_order

(* ------------------------------------------------------------------ *)
(* Crashes at the sensitive instruction                                *)
(* ------------------------------------------------------------------ *)

let test_fas_gap_crash_recovers () =
  (* p1 crashes immediately after its first FAS (result lost).  The run must
     still satisfy every request, and the crash must be flagged unsafe. *)
  let n = 4 and requests = 4 in
  let crash = Crash.on_kind ~pid:1 ~kind:Api.Fas ~occurrence:0 Crash.After in
  let res, t = run_wr ~n ~requests ~crash ~sched:(Sched.round_robin ()) () in
  assert_all_satisfied res ~n ~requests;
  check ci "one unsafe crash" 1 (wr_stats res t).Engine.unsafe_crashes

let test_fas_crash_before_is_safe () =
  (* A crash immediately *before* the FAS is safe: the node was never
     appended; recovery aborts cleanly. *)
  let n = 4 and requests = 4 in
  let crash = Crash.on_kind ~pid:1 ~kind:Api.Fas ~occurrence:0 Crash.Before in
  let res, t = run_wr ~n ~requests ~crash () in
  assert_all_satisfied res ~n ~requests;
  check ci "no unsafe crash" 0 (wr_stats res t).Engine.unsafe_crashes;
  check ci "me preserved" 1 res.Engine.cs_max

let test_responsiveness_thm_4_2 () =
  (* Theorem 4.2: k+1 processes in CS simultaneously requires >= k unsafe
     failures.  Fire FAS-gap crashes on several processes and check the
     inequality on the observed maximum occupancy. *)
  let n = 8 and requests = 6 in
  let crash =
    Crash.all
      (List.map
         (fun pid -> Crash.on_kind ~pid ~kind:Api.Fas ~occurrence:0 Crash.After)
         [ 1; 3; 5 ])
  in
  let res, t = run_wr ~n ~requests ~crash ~sched:(Sched.random ~seed:13) () in
  assert_all_satisfied res ~n ~requests;
  let stats = wr_stats res t in
  check cb
    (Printf.sprintf "occupancy %d <= 1 + unsafe %d" stats.Engine.max_occupancy
       stats.Engine.unsafe_crashes)
    true
    (stats.Engine.max_occupancy <= 1 + stats.Engine.unsafe_crashes)

let test_figure1_subqueues () =
  (* Figure 1: eight processes append in round-robin order p1, p2, ..., p7,
     p0; the 4th and 7th appenders (pids 4 and 7) crash in the FAS gap.  A
     ninth observer process snapshots shared memory once every surviving
     process has persisted its predecessor: three disjoint sub-queues must
     exist, headed by the first appender's node and the two orphans. *)
  let n = 9 in
  let competitors = 8 in
  let crash =
    Crash.all
      [
        Crash.on_kind ~pid:4 ~kind:Api.Fas ~occurrence:0 Crash.After;
        Crash.on_kind ~pid:7 ~kind:Api.Fas ~occurrence:0 Crash.After;
      ]
  in
  let internals = ref None in
  let snapshot = ref None in
  let cs ~pid:_ = for _ = 1 to 80 do Api.yield () done in
  let res =
    Engine.run ~n ~model:Memory.CC ~sched:(Sched.round_robin ()) ~crash
      ~setup:(fun ctx ->
        let t = Wr_lock.create ctx in
        internals := Some t;
        Wr_lock.lock t)
      ~body:(fun lock ~pid ->
        if pid = 8 then begin
          (* Observer: wait until all appends + persists are done, before the
             head leaves its CS, then snapshot. *)
          if !snapshot = None then begin
            for _ = 1 to 30 do
              Api.yield ()
            done;
            snapshot := Some (Wr_lock.subqueues (Option.get !internals))
          end
        end
        else Harness.standard_body ~cs ~lock ~requests:1 pid)
      ()
  in
  let t = Option.get !internals in
  check cb "no deadlock" false res.Engine.deadlocked;
  check ci "all satisfied" competitors (Engine.total_completed res);
  match !snapshot with
  | None -> Alcotest.fail "no snapshot taken"
  | Some chains ->
      check ci "three sub-queues" 3 (List.length chains);
      let all = List.concat chains in
      check ci "disjoint" (List.length all) (List.length (List.sort_uniq compare all));
      check ci "eight nodes in queues" 8 (List.length all);
      (* Heads: the first appender (p1) plus the two crashed appenders. *)
      let heads = List.filter_map (function [] -> None | h :: _ -> Some h) chains in
      let owners = List.sort compare (List.map (Wr_lock.owner_of_node t) heads) in
      check (Alcotest.list ci) "heads owned by p1, p4, p7" [ 1; 4; 7 ] owners;
      (* Sub-queue lengths match the figure: 3 + 3 + 2. *)
      let sizes = List.sort compare (List.map List.length chains) in
      check (Alcotest.list ci) "sizes 2,3,3" [ 2; 3; 3 ] sizes

let test_weak_me_violation_is_possible () =
  (* Weak recoverability is genuinely weak: there exists a schedule + crash
     pattern where two processes are in CS simultaneously.  The long CS +
     FAS-gap crash construction exhibits it: the crashed process's abort
     signals its successor while the head still holds the lock. *)
  let n = 4 in
  (* Round-robin runs p1 first, so p1 heads the queue and enters its (long)
     CS; p2 appends behind p1 and crashes in the FAS gap; p3 links behind
     p2's orphaned node.  p2's recovery then relinquishes the node and
     signals p3, which enters the CS while p1 is still inside. *)
  let crash = Crash.on_kind ~pid:2 ~kind:Api.Fas ~occurrence:0 Crash.After in
  let cs ~pid:_ = for _ = 1 to 80 do Api.yield () done in
  let res, t = run_wr ~n ~requests:2 ~crash ~cs ~sched:(Sched.round_robin ()) () in
  assert_all_satisfied res ~n ~requests:2;
  let stats = wr_stats res t in
  check cb
    (Printf.sprintf "violation observed (occupancy=%d)" stats.Engine.max_occupancy)
    true
    (stats.Engine.max_occupancy >= 2);
  (* ... but within the responsiveness bound. *)
  check cb "responsive" true (stats.Engine.max_occupancy <= 1 + stats.Engine.unsafe_crashes)

(* ------------------------------------------------------------------ *)
(* BCSR / bounded recovery / bounded exit                              *)
(* ------------------------------------------------------------------ *)

let ops_by_pid_between events pid ~from_note ~to_note =
  (* Count instruction events of [pid] between the first [from_note] after
     which we start and the next [to_note]. *)
  let counting = ref false in
  let count = ref 0 in
  let done_ = ref false in
  List.iter
    (fun ev ->
      if not !done_ then
        match ev with
        | Event.Note { pid = p; note; _ } when p = pid && note = from_note -> counting := true
        | Event.Note { pid = p; note; _ } when p = pid && !counting && note = to_note ->
            done_ := true
        | Event.Op { pid = p; _ } when p = pid && !counting -> incr count
        | _ -> ())
    events;
  !count

let test_bcsr_reentry_bounded () =
  (* Crash p0 inside its CS; on restart it must reach the CS again within a
     bounded number of its own steps (no queue traversal, no spinning). *)
  let n = 5 in
  let cs ~pid:_ = Api.note (Event.Custom "cs-work") in
  let crash = Crash.on_custom_note ~pid:0 ~tag:"cs-work" ~occurrence:0 Crash.After in
  let res, _ = run_wr ~record:true ~trace_ops:true ~n ~requests:3 ~crash ~cs () in
  assert_all_satisfied res ~n ~requests:3;
  (* Find the crash step, then count p0's instructions from its next
     Req_begin to its next Cs_begin. *)
  let after_crash =
    let rec drop = function
      | Event.Crash { pid = 0; _ } :: rest -> rest
      | _ :: rest -> drop rest
      | [] -> []
    in
    drop res.Engine.events
  in
  let reentry_ops =
    ops_by_pid_between after_crash 0 ~from_note:(Event.Seg Event.Req_begin)
      ~to_note:(Event.Seg Event.Cs_begin)
  in
  check cb (Printf.sprintf "bounded reentry (%d ops)" reentry_ops) true (reentry_ops <= 12)

let test_bounded_exit () =
  (* The Exit segment completes within a constant number of own steps even
     under maximal contention. *)
  let n = 8 in
  let res, t = run_wr ~record:true ~trace_ops:true ~n ~requests:2 () in
  assert_all_satisfied res ~n ~requests:2;
  let id = Wr_lock.lock_id t in
  for pid = 0 to n - 1 do
    let ops =
      ops_by_pid_between res.Engine.events pid ~from_note:(Event.Lock_release id)
        ~to_note:(Event.Lock_released id)
    in
    check cb (Printf.sprintf "p%d exit bounded (%d ops)" pid ops) true (ops <= 10)
  done

let test_bounded_recovery_after_cs_crash () =
  (* Recover itself is loop-free: count ops between Req_begin and the
     Lock_acquired that follows a crash in Exit. *)
  let n = 3 in
  let crash = Crash.on_cell ~pid:0 ~cell:"wr.tail" ~occurrence:1 Crash.After in
  let res, _ = run_wr ~n ~requests:3 ~crash () in
  assert_all_satisfied res ~n ~requests:3

(* ------------------------------------------------------------------ *)
(* Exhaustive crash-point sweep                                        *)
(* ------------------------------------------------------------------ *)

let test_crash_point_sweep () =
  (* Crash p0 at every possible instruction index of its execution, Before
     and After: every run must still satisfy all requests and respect the
     responsiveness bound.  This covers every line of Recover/Enter/Exit. *)
  let n = 3 and requests = 3 in
  List.iter
    (fun point ->
      for nth = 0 to 60 do
        let crash = Crash.at_op ~pid:0 ~nth point in
        let res, t = run_wr ~n ~requests ~crash ~sched:(Sched.round_robin ()) () in
        if res.Engine.deadlocked || res.Engine.timed_out then
          Alcotest.failf "stuck with crash at op %d (%s)" nth
            (match point with Crash.Before -> "before" | Crash.After -> "after");
        check ci
          (Printf.sprintf "all satisfied (crash at %d)" nth)
          (n * requests) (Engine.total_completed res);
        let stats = wr_stats res t in
        check cb "responsive" true (stats.Engine.max_occupancy <= 1 + stats.Engine.unsafe_crashes)
      done)
    [ Crash.Before; Crash.After ]

(* ------------------------------------------------------------------ *)
(* Property-based: random storms                                       *)
(* ------------------------------------------------------------------ *)

let test_double_crash_point_sweep () =
  (* Two processes crash at combinatorially chosen instruction offsets: the
     pairwise product of crash points over the first passage.  Every run
     must satisfy all requests and respect responsiveness. *)
  let n = 3 and requests = 2 in
  for a = 0 to 40 do
    let b_list = [ a; a + 3; a + 11; a + 23 ] in
    List.iter
      (fun b ->
        let crash =
          Crash.all [ Crash.at_op ~pid:0 ~nth:a Crash.After; Crash.at_op ~pid:1 ~nth:b Crash.After ]
        in
        let res, t = run_wr ~n ~requests ~crash ~sched:(Sched.round_robin ()) () in
        if res.Engine.deadlocked || res.Engine.timed_out then
          Alcotest.failf "stuck with crashes at %d/%d" a b;
        check ci (Printf.sprintf "all satisfied (%d/%d)" a b) (n * requests)
          (Engine.total_completed res);
        let stats = wr_stats res t in
        check cb "responsive" true (stats.Engine.max_occupancy <= 1 + stats.Engine.unsafe_crashes))
      b_list
  done

let qcheck_storm =
  QCheck.Test.make ~name:"wr-lock survives random crash storms" ~count:100
    QCheck.(
      quad (int_range 2 8) (int_range 1 5) (int_bound 999) (int_bound 9999))
    (fun (n, requests, seed, crash_seed) ->
      let crash = Crash.random ~seed:crash_seed ~rate:0.01 ~max_crashes:(2 * n) () in
      let res, t =
        run_wr ~n ~requests ~crash ~sched:(Sched.random ~seed) ~max_steps:2_000_000 ()
      in
      let stats = wr_stats res t in
      (not res.Engine.deadlocked) && (not res.Engine.timed_out)
      && Engine.total_completed res = n * requests
      && stats.Engine.max_occupancy <= 1 + stats.Engine.unsafe_crashes)

let qcheck_dsm_storm =
  QCheck.Test.make ~name:"wr-lock storms under DSM" ~count:30
    QCheck.(pair (int_range 2 6) (int_bound 9999))
    (fun (n, seed) ->
      let crash = Crash.random ~seed ~rate:0.008 ~max_crashes:n () in
      let res, t =
        run_wr ~model:Memory.DSM ~n ~requests:4 ~crash ~sched:(Sched.random ~seed)
          ~max_steps:2_000_000 ()
      in
      let stats = wr_stats res t in
      (not res.Engine.deadlocked) && (not res.Engine.timed_out)
      && Engine.total_completed res = n * 4
      && stats.Engine.max_occupancy <= 1 + stats.Engine.unsafe_crashes)

let qcheck_subqueues_partition =
  QCheck.Test.make ~name:"sub-queues always form a partition at crash time" ~count:40
    QCheck.(pair (int_range 2 8) (int_bound 9999))
    (fun (n, seed) ->
      let crash = Crash.random ~seed ~rate:0.01 ~max_crashes:n () in
      let ok = ref true in
      let on_crash t ~pid:_ ~step:_ =
        let chains = Wr_lock.subqueues t in
        let all = List.concat chains in
        if List.length all <> List.length (List.sort_uniq compare all) then ok := false
      in
      let res, _ =
        run_wr ~n ~requests:3 ~crash ~on_crash ~sched:(Sched.random ~seed)
          ~max_steps:2_000_000 ()
      in
      !ok && not res.Engine.deadlocked && not res.Engine.timed_out)

let () =
  Alcotest.run "wr_lock"
    [
      ( "failure-free",
        [
          Alcotest.test_case "me cc rr" `Quick (test_me_no_failures Memory.CC (Sched.round_robin ()));
          Alcotest.test_case "me cc random" `Quick
            (test_me_no_failures Memory.CC (Sched.random ~seed:1));
          Alcotest.test_case "me dsm random" `Quick
            (test_me_no_failures Memory.DSM (Sched.random ~seed:8));
          Alcotest.test_case "me cc greedy" `Quick (test_me_no_failures Memory.CC (Sched.greedy ()));
          Alcotest.test_case "counter exact" `Quick test_counter_exact;
          Alcotest.test_case "O(1) rmr cc" `Quick (test_rmr_constant_in_n Memory.CC);
          Alcotest.test_case "O(1) rmr dsm" `Quick (test_rmr_constant_in_n Memory.DSM);
          Alcotest.test_case "fcfs" `Quick test_fcfs_no_failures;
        ] );
      ( "sensitive-fas",
        [
          Alcotest.test_case "fas-gap crash recovers" `Quick test_fas_gap_crash_recovers;
          Alcotest.test_case "crash before fas is safe" `Quick test_fas_crash_before_is_safe;
          Alcotest.test_case "responsiveness (thm 4.2)" `Quick test_responsiveness_thm_4_2;
          Alcotest.test_case "figure 1 sub-queues" `Quick test_figure1_subqueues;
          Alcotest.test_case "weak-me violation possible" `Quick test_weak_me_violation_is_possible;
        ] );
      ( "bounded",
        [
          Alcotest.test_case "bcsr reentry" `Quick test_bcsr_reentry_bounded;
          Alcotest.test_case "bounded exit" `Quick test_bounded_exit;
          Alcotest.test_case "crash in exit recovers" `Quick test_bounded_recovery_after_cs_crash;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "exhaustive crash points" `Slow test_crash_point_sweep;
          Alcotest.test_case "double crash points" `Slow test_double_crash_point_sweep;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_storm; qcheck_dsm_storm; qcheck_subqueues_partition ] );
    ]
