(* RMR-bound contracts: every registered lock declares a concrete upper
   bound on its worst failure-free passage RMRs under CC, as a function of
   n.  This test drives every spec across process counts and schedules and
   fails if any passage exceeds its contract — the paper's asymptotic rows
   turned into falsifiable regressions. *)

open Rme_sim

let check = Alcotest.check

let cb = Alcotest.bool

let drive (spec : Rme.Spec.t) ~n ~seed =
  let cfg =
    {
      Rme.Workload.default_cfg with
      n;
      requests = 5;
      seed;
      cs_yields = 3;
      scenario = Rme.Workload.No_failures;
    }
  in
  Rme.Workload.run spec cfg

let test_contract (spec : Rme.Spec.t) () =
  match spec.ff_bound with
  | None -> ()
  | Some bound ->
      List.iter
        (fun n ->
          List.iter
            (fun seed ->
              let res = drive spec ~n ~seed in
              check cb
                (Printf.sprintf "%s n=%d completes" spec.key n)
                true
                (Engine.total_completed res = n * 5);
              let worst = Engine.max_rmr res in
              check cb
                (Printf.sprintf "%s n=%d seed=%d: %d RMRs within contract %d" spec.key n seed
                   worst (bound n))
                true
                (worst <= bound n))
            [ 1; 2; 3 ])
        [ 1; 2; 4; 8; 16; 32 ]

let test_contracts_are_tight () =
  (* Guard against vacuous contracts: at n = 16 the measured worst passage
     must reach at least a third of the declared bound for every lock —
     otherwise the bound has drifted and should be re-frozen. *)
  List.iter
    (fun (spec : Rme.Spec.t) ->
      match spec.ff_bound with
      | None -> ()
      | Some bound ->
          let res = drive spec ~n:16 ~seed:1 in
          let worst = Engine.max_rmr res in
          check cb
            (Printf.sprintf "%s: bound %d not vacuous (measured %d)" spec.key (bound 16) worst)
            true
            (3 * worst >= bound 16))
    Rme.Spec.all

(* The paper's headline Table-2 row, pinned as a regression: the measured
   growth curves must classify ba-jjj as super-adaptive and well-bounded,
   and sa-bakery as semi-adaptive (reduced-size sweeps; the bench runs the
   full ones). *)
let test_headline_classification () =
  let ns = [ 4; 16; 64 ] and fs = [ 4; 16; 64 ] in
  let m key cfg = (Rme.Workload.measure (Rme.Workload.run_key key cfg)).Rme.Workload.max_rmr in
  let base n scenario =
    { Rme.Workload.default_cfg with n; requests = 10; seed = 2; cs_yields = 6; scenario }
  in
  let curves key =
    let ff = List.map (fun n -> (float_of_int n, m key (base n Rme.Workload.No_failures))) ns in
    let vf =
      List.map
        (fun f -> (float_of_int f, m key (base 32 (Rme.Workload.Fas_storm { f; rate = 0.4 }))))
        fs
    in
    let lim =
      List.map
        (fun n -> (float_of_int n, m key (base n (Rme.Workload.Fas_storm { f = 4; rate = 0.4 }))))
        ns
    in
    let arb =
      List.map
        (fun n -> (float_of_int n, m key (base n (Rme.Workload.Fas_storm { f = 64; rate = 0.4 }))))
        ns
    in
    Rme.Report.classify_lock ~failure_free_vs_n:ff ~rmr_vs_f:vf ~limited_vs_n:lim
      ~arbitrary_vs_n:arb
  in
  let ba = curves "ba-jjj" in
  check Alcotest.string "ba-jjj adaptivity" "super-adaptive" (Rme.Report.adaptivity_name ba);
  check Alcotest.string "ba-jjj boundedness" "well-bounded" (Rme.Report.boundedness_name ba);
  let sa = curves "sa-bakery" in
  check Alcotest.string "sa-bakery adaptivity" "semi-adaptive" (Rme.Report.adaptivity_name sa)

let () =
  Alcotest.run "contracts"
    [
      ( "ff-bounds",
        List.map
          (fun (spec : Rme.Spec.t) ->
            Alcotest.test_case spec.key `Quick (test_contract spec))
          Rme.Spec.all );
      ("tightness", [ Alcotest.test_case "bounds are tight" `Quick test_contracts_are_tight ]);
      ( "headline",
        [ Alcotest.test_case "table-2 row of the paper" `Slow test_headline_classification ] );
    ]
