(* Tests for the engine hot-path overhaul and its measurement plumbing:
   Vec edge cases, event sinks (ring wrap-around, policy equivalence),
   the Api.step clock, the `Fast/`Full differential contract, the
   log-linear histogram, and the explorer's search-effort counters. *)

open Rme_sim
module Metrics = Rme_check.Metrics
module Hist = Metrics.Hist

let check = Alcotest.check

let ci = Alcotest.int

let cb = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Vec edge cases                                                      *)
(* ------------------------------------------------------------------ *)

let test_vec_blit_prefix_zero () =
  let src = Vec.create () in
  Vec.push src 1;
  Vec.push src 2;
  let dst = Vec.create () in
  Vec.push dst 9;
  Vec.blit_prefix src 0 dst;
  check ci "length unchanged" 1 (Vec.length dst);
  check ci "contents unchanged" 9 (Vec.get dst 0);
  (* Zero-length blit from an empty source is a no-op, not an error. *)
  Vec.blit_prefix (Vec.create ()) 0 dst;
  check ci "still unchanged" 1 (Vec.length dst)

let test_vec_blit_prefix_bounds () =
  let src = Vec.create () in
  Vec.push src 1;
  let raised =
    match Vec.blit_prefix src 2 (Vec.create ()) with
    | exception Invalid_argument _ -> true
    | () -> false
  in
  check cb "len beyond source rejected" true raised

let test_vec_push_through_growth () =
  (* Push across several doubling boundaries and verify every element
     lands where it should, including the pushes at exact capacity. *)
  let v = Vec.create () in
  for i = 0 to 1000 do
    Vec.push v i;
    check ci "length tracks pushes" (i + 1) (Vec.length v);
    check ci "last is the push" i (Vec.last v)
  done;
  for i = 0 to 1000 do
    check ci "element survived growth" i (Vec.get v i)
  done

let test_vec_unsafe_get_after_resize () =
  let v = Vec.create () in
  for i = 0 to 300 do
    Vec.push v (i * 7)
  done;
  (* unsafe_get must agree with get on every valid index even after the
     backing array has been reallocated several times. *)
  for i = 0 to 300 do
    check ci "unsafe_get = get" (Vec.get v i) (Vec.unsafe_get v i)
  done;
  Vec.clear v;
  check ci "clear empties" 0 (Vec.length v);
  Vec.push v 42;
  check ci "push after clear" 42 (Vec.get v 0)

(* ------------------------------------------------------------------ *)
(* Event sinks                                                         *)
(* ------------------------------------------------------------------ *)

let note_at step = Event.Note { step; pid = 0; super = 0; note = Event.Seg Event.Req_begin }

let test_sink_drop () =
  let s = Event.Sink.drop in
  check cb "drop wants nothing" false (Event.Sink.wants s);
  Event.Sink.emit s (note_at 1);
  check ci "nothing counted" 0 (Event.Sink.emitted s);
  check cb "no events retained" true (Event.Sink.events s = [])

let test_sink_ring_wraparound () =
  let s = Event.Sink.ring ~capacity:4 in
  check cb "ring wants events" true (Event.Sink.wants s);
  for i = 1 to 10 do
    Event.Sink.emit s (note_at i)
  done;
  check ci "all emissions counted" 10 (Event.Sink.emitted s);
  let steps = List.map Event.step (Event.Sink.events s) in
  check cb "trailing window in order" true (steps = [ 7; 8; 9; 10 ]);
  Event.Sink.clear s;
  check ci "clear resets" 0 (Event.Sink.emitted s);
  check cb "clear empties" true (Event.Sink.events s = []);
  (* Partial fill: no wrap yet, events come back in emission order. *)
  Event.Sink.emit s (note_at 1);
  Event.Sink.emit s (note_at 2);
  check cb "partial window" true (List.map Event.step (Event.Sink.events s) = [ 1; 2 ])

let test_sink_callback_streams () =
  let got = ref [] in
  let s = Event.Sink.callback (fun ev -> got := Event.step ev :: !got) in
  for i = 1 to 5 do
    Event.Sink.emit s (note_at i)
  done;
  check cb "delivered in order" true (List.rev !got = [ 1; 2; 3; 4; 5 ]);
  check ci "emitted counts" 5 (Event.Sink.emitted s);
  check cb "nothing retained" true (Event.Sink.events s = [])

(* ------------------------------------------------------------------ *)
(* Engine: sink policies and the fast-path differential                 *)
(* ------------------------------------------------------------------ *)

let lock_workload ?mode ?sink ?record () =
  let body lock ~pid = Harness.standard_body ~lock ~requests:3 pid in
  Engine.run ?mode ?sink ?record ~n:3 ~model:Memory.CC
    ~sched:(Sched.random ~seed:42)
    ~crash:Crash.none ~setup:Rme_locks.Wr_lock.make ~body ()

let test_keep_vs_drop_equivalence () =
  (* The sink policy must never change what happens — only what is
     retained.  Same schedule, all result fields equal except [events]. *)
  let kept = lock_workload ~sink:(Event.Sink.keep ()) () in
  let dropped = lock_workload ~sink:Event.Sink.drop () in
  check cb "keep retains history" true (kept.Engine.events <> []);
  check cb "drop retains nothing" true (dropped.Engine.events = []);
  check cb "all other fields equal" true
    ({ kept with Engine.events = [] } = dropped)

let test_ring_is_keep_suffix () =
  let kept = lock_workload ~sink:(Event.Sink.keep ()) () in
  let ring = Event.Sink.ring ~capacity:8 in
  let ringed = lock_workload ~sink:ring () in
  let suffix l n =
    let len = List.length l in
    List.filteri (fun i _ -> i >= len - n) l
  in
  check cb "ring = trailing window of keep" true
    (ringed.Engine.events = suffix kept.Engine.events 8);
  check cb "same results otherwise" true
    ({ kept with Engine.events = [] } = { ringed with Engine.events = [] })

let test_fast_full_differential () =
  (* The tentpole contract: `Fast elides bookkeeping, never semantics.
     Every field of the result — steps, RMRs by kind, per-process
     passages with their latencies, lock stats, cs_max — must be
     byte-identical across `Fast, `Auto and `Full on the same schedule. *)
  let fast = lock_workload ~mode:`Fast () in
  let auto = lock_workload ~mode:`Auto () in
  let full = lock_workload ~mode:`Full () in
  check cb "fast = auto" true (fast = auto);
  check cb "fast = full" true (fast = full);
  check cb "work happened" true (fast.Engine.steps > 0 && fast.Engine.total_rmr > 0)

let test_fast_rejects_instrumented_configs () =
  let crashy () =
    ignore
      (Engine.run ~mode:`Fast ~n:2 ~model:Memory.CC
         ~sched:(Sched.round_robin ())
         ~crash:(Crash.random ~seed:0 ~rate:1.0 ~max_crashes:1 ())
         ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
         ~body:(fun c ~pid:_ -> Api.write c 1)
         ())
  in
  let sinky () =
    ignore
      (Engine.run ~mode:`Fast
         ~sink:(Event.Sink.keep ())
         ~n:2 ~model:Memory.CC
         ~sched:(Sched.round_robin ())
         ~crash:Crash.none
         ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
         ~body:(fun c ~pid:_ -> Api.write c 1)
         ())
  in
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  check cb "crash plan rejected" true (raises crashy);
  check cb "event sink rejected" true (raises sinky)

let test_api_step_monotone () =
  (* Api.step is the global simulated clock: non-decreasing within a
     process, strictly increasing across its own observations (each
     observation is itself a step), and consistent with the final
     result. *)
  let seen = ref [] in
  let res =
    Engine.run ~n:2 ~model:Memory.CC
      ~sched:(Sched.random ~seed:7)
      ~crash:Crash.none
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
      ~body:(fun c ~pid ->
        for _ = 1 to 5 do
          let s = Api.step () in
          if pid = 0 then seen := s :: !seen;
          Api.write c s;
          Api.yield ()
        done)
      ()
  in
  let obs = List.rev !seen in
  check cb "observed some steps" true (List.length obs = 5);
  check cb "strictly increasing" true
    (List.for_all2 (fun a b -> a < b) (List.filteri (fun i _ -> i < 4) obs) (List.tl obs));
  check cb "bounded by the run" true (List.for_all (fun s -> s <= res.Engine.steps) obs)

let test_open_loop_pacing () =
  (* The service harness's pacing idiom: a client polling the clock wakes
     at-or-after its due step, never before. *)
  let due = 40 in
  let woke = ref (-1) in
  ignore
    (Engine.run ~n:2 ~model:Memory.CC
       ~sched:(Sched.round_robin ())
       ~crash:Crash.none
       ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
       ~body:(fun c ~pid ->
         if pid = 0 then begin
           while Api.step () < due do
             Api.yield ()
           done;
           woke := Api.step ();
           Api.write c 1
         end
         else for _ = 1 to 30 do Api.yield () done)
       ());
  check cb "woke at or after due" true (!woke >= due)

(* ------------------------------------------------------------------ *)
(* Metrics.Hist                                                        *)
(* ------------------------------------------------------------------ *)

let test_hist_exact_small_values () =
  let h = Hist.create () in
  for v = 0 to 255 do
    Hist.add h v
  done;
  check ci "count" 256 (Hist.count h);
  check ci "min" 0 (Hist.min h);
  check ci "max" 255 (Hist.max h);
  (* Below 256 every value has its own bucket: quantiles are exact —
     rank ceil(0.5 * 256) = 128, whose sample is the value 127. *)
  check ci "p50" 127 (Hist.percentile h 0.5);
  check ci "p100" 255 (Hist.percentile h 1.0);
  check ci "p0+" 0 (Hist.percentile h 0.0)

let test_hist_relative_error () =
  let h = Hist.create () in
  let vals = List.init 1000 (fun i -> 1000 + (i * 997)) in
  List.iter (Hist.add h) vals;
  let sorted = Array.of_list (List.sort compare vals) in
  List.iter
    (fun q ->
      let rank = max 1 (int_of_float (ceil (q *. 1000.0))) in
      let exact = sorted.(rank - 1) in
      let approx = Hist.percentile h q in
      let err = abs (approx - exact) in
      check cb
        (Printf.sprintf "p%g within 1%% (exact %d, got %d)" (q *. 100.0) exact approx)
        true
        (float_of_int err <= 0.01 *. float_of_int exact))
    [ 0.5; 0.9; 0.99; 0.999; 1.0 ]

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () and all = Hist.create () in
  for i = 1 to 500 do
    Hist.add a (i * 3);
    Hist.add all (i * 3)
  done;
  for i = 1 to 500 do
    Hist.add b (i * 13);
    Hist.add all (i * 13)
  done;
  Hist.merge_into ~into:a b;
  check ci "count merged" (Hist.count all) (Hist.count a);
  check ci "sum merged" (Hist.sum all) (Hist.sum a);
  check ci "min merged" (Hist.min all) (Hist.min a);
  check ci "max merged" (Hist.max all) (Hist.max a);
  List.iter
    (fun q ->
      check ci
        (Printf.sprintf "p%g equal" (q *. 100.0))
        (Hist.percentile all q) (Hist.percentile a q))
    [ 0.5; 0.9; 0.99; 1.0 ]

let test_hist_misc () =
  let h = Hist.create () in
  check ci "empty percentile" 0 (Hist.percentile h 0.5);
  check ci "empty max" 0 (Hist.max h);
  Hist.add h (-5);
  check ci "negative clamps to 0" 0 (Hist.max h);
  Hist.add h 1_000_000_000;
  check ci "count" 2 (Hist.count h);
  check ci "huge value exact max" 1_000_000_000 (Hist.max h);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Hist.nonzero h) in
  check ci "nonzero covers all samples" 2 total;
  List.iter
    (fun (lo, hi, _) -> check cb "bucket bounds ordered" true (lo <= hi))
    (Hist.nonzero h);
  Hist.clear h;
  check ci "clear" 0 (Hist.count h)

(* ------------------------------------------------------------------ *)
(* Explorer search-effort counters                                     *)
(* ------------------------------------------------------------------ *)

let explore_subject ?stats ~por which =
  let body c ~pid:_ =
    if Api.completed_requests () < 1 then begin
      Api.note (Event.Seg Event.Req_begin);
      Api.write c 1;
      Api.write c 2;
      Api.note (Event.Seg Event.Req_done)
    end
  in
  let setup ctx = Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0 in
  let check_fn (_ : Engine.result) = None in
  match which with
  | `Seq ->
      Rme_check.Explore.explore ?stats ~por ~n:3 ~model:Memory.CC
        ~crash:(fun () -> Crash.none)
        ~setup ~body ~check:check_fn ()
  | `Par ->
      Rme_check.Explore.explore_parallel ?stats ~por ~domains:2 ~n:3 ~model:Memory.CC
        ~crash:(fun () -> Crash.none)
        ~setup ~body ~check:check_fn ()

let test_explore_stats_sequential () =
  let got = ref None in
  let outcome = explore_subject ~stats:(fun s -> got := Some s) ~por:`Sleep `Seq in
  match !got with
  | None -> Alcotest.fail "stats callback never fired"
  | Some s ->
      check cb "counted at least one engine run per schedule" true
        (s.Rme_check.Explore.engine_runs >= outcome.Rme_check.Explore.runs);
      check cb "steps accumulated" true
        (s.Rme_check.Explore.engine_steps > s.Rme_check.Explore.engine_runs);
      check ci "no cache outside `Source" 0 s.Rme_check.Explore.cache_misses

let test_explore_stats_source_cache () =
  let got = ref None in
  ignore (explore_subject ~stats:(fun s -> got := Some s) ~por:`Source `Seq);
  match !got with
  | None -> Alcotest.fail "stats callback never fired"
  | Some s ->
      check cb "state cache consulted" true (s.Rme_check.Explore.cache_misses > 0)

let test_explore_stats_parallel () =
  let got = ref None in
  let outcome = explore_subject ~stats:(fun s -> got := Some s) ~por:`Sleep `Par in
  match !got with
  | None -> Alcotest.fail "stats callback never fired"
  | Some s ->
      check cb "parallel runs counted" true
        (s.Rme_check.Explore.engine_runs >= outcome.Rme_check.Explore.runs);
      check cb "parallel steps counted" true (s.Rme_check.Explore.engine_steps > 0)

let () =
  Alcotest.run "service"
    [
      ( "vec",
        [
          Alcotest.test_case "blit_prefix zero" `Quick test_vec_blit_prefix_zero;
          Alcotest.test_case "blit_prefix bounds" `Quick test_vec_blit_prefix_bounds;
          Alcotest.test_case "push through growth" `Quick test_vec_push_through_growth;
          Alcotest.test_case "unsafe_get after resize" `Quick test_vec_unsafe_get_after_resize;
        ] );
      ( "sink",
        [
          Alcotest.test_case "drop" `Quick test_sink_drop;
          Alcotest.test_case "ring wrap-around" `Quick test_sink_ring_wraparound;
          Alcotest.test_case "callback streams" `Quick test_sink_callback_streams;
          Alcotest.test_case "keep vs drop equivalence" `Quick test_keep_vs_drop_equivalence;
          Alcotest.test_case "ring is keep's suffix" `Quick test_ring_is_keep_suffix;
        ] );
      ( "fast-path",
        [
          Alcotest.test_case "fast/auto/full differential" `Quick test_fast_full_differential;
          Alcotest.test_case "fast rejects instrumentation" `Quick
            test_fast_rejects_instrumented_configs;
          Alcotest.test_case "api.step monotone" `Quick test_api_step_monotone;
          Alcotest.test_case "open-loop pacing" `Quick test_open_loop_pacing;
        ] );
      ( "hist",
        [
          Alcotest.test_case "exact small values" `Quick test_hist_exact_small_values;
          Alcotest.test_case "relative error" `Quick test_hist_relative_error;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          Alcotest.test_case "edge cases" `Quick test_hist_misc;
        ] );
      ( "explore-stats",
        [
          Alcotest.test_case "sequential" `Quick test_explore_stats_sequential;
          Alcotest.test_case "source cache" `Quick test_explore_stats_source_cache;
          Alcotest.test_case "parallel" `Quick test_explore_stats_parallel;
        ] );
    ]
