(* Tests for the §7.2 memory-reclamation algorithm (Algorithm 4): the
   new_node/retire contract, crash-idempotence, the bounded-space guarantee,
   and safety of node reuse when plugged into WR-Lock under crash storms. *)

open Rme_sim
open Rme_locks

let check = Alcotest.check

let ci = Alcotest.int

let cb = Alcotest.bool

(* Drive the allocator directly from a single simulated process. *)
let run_alloc ~n ~body () =
  let out = ref None in
  let res =
    Engine.run ~n ~model:Memory.CC ~sched:(Sched.round_robin ()) ~crash:Crash.none
      ~setup:(fun ctx ->
        let r = Reclaim.create ctx in
        let reg = Nodes.create_registry (Engine.Ctx.memory ctx) ~prefix:"t" in
        out := Some (r, reg);
        (r, reg))
      ~body:(fun (r, reg) ~pid -> body r reg ~pid)
      ()
  in
  let r, reg = Option.get !out in
  (res, r, reg)

let test_same_node_until_retire () =
  let ids = ref [] in
  let _ =
    run_alloc ~n:2
      ~body:(fun r reg ~pid ->
        if pid = 0 && Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          let a = Reclaim.new_node r ~pid reg in
          let b = Reclaim.new_node r ~pid reg in
          Reclaim.retire r ~pid;
          let c = Reclaim.new_node r ~pid reg in
          ids := [ a.Nodes.id; b.Nodes.id; c.Nodes.id ];
          Api.note (Event.Seg Event.Req_done)
        end)
      ()
  in
  match !ids with
  | [ a; b; c ] ->
      check ci "same node before retire" a b;
      check cb "fresh node after retire" true (c <> a)
  | _ -> Alcotest.fail "allocation did not run"

let test_retire_without_alloc_is_noop () =
  let ok = ref false in
  let _ =
    run_alloc ~n:1
      ~body:(fun r reg ~pid ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          Reclaim.retire r ~pid;
          Reclaim.retire r ~pid;
          let a = Reclaim.new_node r ~pid reg in
          ok := a.Nodes.id > 0;
          Api.note (Event.Seg Event.Req_done)
        end)
      ()
  in
  check cb "allocator survives spurious retires" true !ok

let test_pool_is_bounded () =
  (* Many allocate/retire cycles must not allocate more than the two pools
     of 2n nodes each per process. *)
  let n = 3 in
  let res, _, reg =
    run_alloc ~n
      ~body:(fun r reg ~pid ->
        while Api.completed_requests () < 30 do
          Api.note (Event.Seg Event.Req_begin);
          let (_ : Nodes.node) = Reclaim.new_node r ~pid reg in
          Reclaim.retire r ~pid;
          Api.note (Event.Seg Event.Req_done)
        done)
      ()
  in
  check cb "completed" true (Engine.total_completed res = n * 30);
  check ci "space bounded at 4n^2" (2 * 2 * n * n) (Nodes.count reg)

let test_nodes_cycle_through_pool () =
  (* Within one pool generation the 2n slots are served round-robin. *)
  let n = 2 in
  let seen = ref [] in
  let _ =
    run_alloc ~n
      ~body:(fun r reg ~pid ->
        if pid = 0 then
          while Api.completed_requests () < 4 do
            Api.note (Event.Seg Event.Req_begin);
            let node = Reclaim.new_node r ~pid reg in
            seen := node.Nodes.id :: !seen;
            Reclaim.retire r ~pid;
            Api.note (Event.Seg Event.Req_done)
          done
        else
          while Api.completed_requests () < 4 do
            Api.note (Event.Seg Event.Req_begin);
            let (_ : Nodes.node) = Reclaim.new_node r ~pid reg in
            Reclaim.retire r ~pid;
            Api.note (Event.Seg Event.Req_done)
          done)
      ()
  in
  let distinct = List.sort_uniq compare !seen in
  check ci "4 distinct slots over 4 requests (pool of 2n = 4)" 4 (List.length distinct)

(* ------------------------------------------------------------------ *)
(* WR-Lock over the reclamation pool                                   *)
(* ------------------------------------------------------------------ *)

let wr_reclaim_make ?(notify = false) () ctx =
  let r = Reclaim.create ~notify ctx in
  Wr_lock.lock
    (Wr_lock.create ~name:"wrr" ~alloc:(Reclaim.alloc r)
       ~retire:(fun ~pid -> Reclaim.retire r ~pid)
       ctx)

let wr_reclaim_internals ctx =
  let r = Reclaim.create ctx in
  let t =
    Wr_lock.create ~name:"wrr" ~alloc:(Reclaim.alloc r)
      ~retire:(fun ~pid -> Reclaim.retire r ~pid)
      ctx
  in
  (t, r)

let test_wr_reclaim_no_failures () =
  let res =
    Harness.run_lock ~n:5 ~model:Memory.CC ~sched:(Sched.random ~seed:3) ~crash:Crash.none
      ~requests:20 ~make:(wr_reclaim_make ()) ()
  in
  check cb "all done" true (Engine.total_completed res = 100);
  check ci "me" 1 res.Engine.cs_max

let test_wr_reclaim_notify_no_failures () =
  List.iter
    (fun model ->
      let res =
        Harness.run_lock ~n:5 ~model ~sched:(Sched.random ~seed:3) ~crash:Crash.none
          ~requests:20 ~make:(wr_reclaim_make ~notify:true ()) ()
      in
      check cb "all done" true (Engine.total_completed res = 100);
      check ci "me" 1 res.Engine.cs_max)
    [ Memory.CC; Memory.DSM ]

let test_notify_wait_is_dsm_local () =
  (* Under DSM the notification variant must not spin remotely: compare the
     worst passage RMRs of the two variants under allocation pressure (many
     requests force epoch waits). *)
  let max_rmr notify =
    let res =
      Harness.run_lock ~n:4 ~model:Memory.DSM ~sched:(Sched.random ~seed:7) ~crash:Crash.none
        ~requests:40 ~make:(wr_reclaim_make ~notify ()) ()
    in
    check cb "all done" true (Engine.total_completed res = 160);
    Engine.max_rmr res
  in
  let spin = max_rmr false and notif = max_rmr true in
  check cb (Printf.sprintf "notify (%d) bounded vs spin (%d)" notif spin) true (notif <= spin + 16)

let test_wr_reclaim_notify_crash_sweep () =
  (* Exhaustive crash points with the doorbell protocol in the loop. *)
  let n = 3 and requests = 3 in
  List.iter
    (fun point ->
      for nth = 0 to 70 do
        let crash = Crash.at_op ~pid:0 ~nth point in
        let res =
          Harness.run_lock ~n ~model:Memory.DSM ~sched:(Sched.round_robin ()) ~crash ~requests
            ~make:(wr_reclaim_make ~notify:true ()) ()
        in
        if res.Engine.deadlocked || res.Engine.timed_out then
          Alcotest.failf "notify variant stuck with crash at op %d" nth;
        check ci
          (Printf.sprintf "all satisfied (crash at %d)" nth)
          (n * requests) (Engine.total_completed res)
      done)
    [ Crash.Before; Crash.After ]

let test_wr_reclaim_space_bound () =
  let internals = ref None in
  let res =
    Engine.run ~n:4 ~model:Memory.CC ~sched:(Sched.random ~seed:9)
      ~crash:(Crash.random ~seed:4 ~rate:0.002 ~max_crashes:6 ())
      ~setup:(fun ctx ->
        let t, r = wr_reclaim_internals ctx in
        internals := Some (t, r);
        Wr_lock.lock t)
      ~body:(fun lock ~pid -> Harness.standard_body ~lock ~requests:25 pid)
      ()
  in
  let t, _ = Option.get !internals in
  check cb "all done" true (Engine.total_completed res = 100);
  (* 100 requests + crash retries served from 4 * 2 * 2n = 64 nodes. *)
  check ci "space bounded" (2 * 2 * 4 * 4) (Nodes.count (Wr_lock.registry t))

let qcheck_wr_reclaim_storm =
  QCheck.Test.make ~name:"wr over reclamation pools survives storms" ~count:40
    QCheck.(triple (int_range 2 6) (int_bound 9999) (int_bound 9999))
    (fun (n, seed, crash_seed) ->
      let crash = Crash.random ~seed:crash_seed ~rate:0.006 ~max_crashes:n () in
      let internals = ref None in
      let res =
        Engine.run ~max_steps:2_000_000 ~n ~model:Memory.CC ~sched:(Sched.random ~seed) ~crash
          ~setup:(fun ctx ->
            let t, r = wr_reclaim_internals ctx in
            internals := Some (t, r);
            Wr_lock.lock t)
          ~body:(fun lock ~pid -> Harness.standard_body ~lock ~requests:6 pid)
          ()
      in
      let t, _ = Option.get !internals in
      let stats = res.Engine.locks.(Wr_lock.lock_id t) in
      (not res.Engine.deadlocked) && (not res.Engine.timed_out)
      && Engine.total_completed res = n * 6
      && stats.Engine.max_occupancy <= 1 + stats.Engine.unsafe_crashes
      && Nodes.count (Wr_lock.registry t) <= 4 * n * n)

let test_wr_reclaim_crash_sweep () =
  (* Crash p0 at every instruction offset with the pooled allocator: the
     new_node idempotence must cover crashes between allocation and the
     mine[i] write. *)
  let n = 3 and requests = 3 in
  List.iter
    (fun point ->
      for nth = 0 to 70 do
        let crash = Crash.at_op ~pid:0 ~nth point in
        let res =
          Harness.run_lock ~n ~model:Memory.CC ~sched:(Sched.round_robin ()) ~crash ~requests
            ~make:(wr_reclaim_make ()) ()
        in
        if res.Engine.deadlocked || res.Engine.timed_out then
          Alcotest.failf "stuck with crash at op %d" nth;
        check ci
          (Printf.sprintf "all satisfied (crash at %d)" nth)
          (n * requests) (Engine.total_completed res)
      done)
    [ Crash.Before; Crash.After ]

let () =
  Alcotest.run "reclaim"
    [
      ( "allocator",
        [
          Alcotest.test_case "same node until retire" `Quick test_same_node_until_retire;
          Alcotest.test_case "spurious retire is noop" `Quick test_retire_without_alloc_is_noop;
          Alcotest.test_case "pool bounded" `Quick test_pool_is_bounded;
          Alcotest.test_case "slots cycle" `Quick test_nodes_cycle_through_pool;
        ] );
      ( "wr-integration",
        [
          Alcotest.test_case "no failures" `Quick test_wr_reclaim_no_failures;
          Alcotest.test_case "notify variant (cc + dsm)" `Quick test_wr_reclaim_notify_no_failures;
          Alcotest.test_case "notify wait is dsm-local" `Quick test_notify_wait_is_dsm_local;
          Alcotest.test_case "space bound under crashes" `Quick test_wr_reclaim_space_bound;
          Alcotest.test_case "crash sweep" `Slow test_wr_reclaim_crash_sweep;
          Alcotest.test_case "notify crash sweep" `Slow test_wr_reclaim_notify_crash_sweep;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest qcheck_wr_reclaim_storm ]);
    ]
