(* Mutation testing: deliberately break each algorithm in a characteristic
   way and assert that the test battery's checkers CATCH the break.  This
   guards the guards — a checker that accepts these mutants has lost its
   teeth, and a future refactor that weakens an invariant will trip one of
   these before it trips a user.

   Each mutant is a copy of the real algorithm with one line changed; the
   mutation is documented inline. *)

open Rme_sim
open Rme_locks

let check = Alcotest.check

let cb = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Mutant 1: WR-Lock that trusts the CAS outcome instead of re-reading  *)
(* the next field.  §4.3's first idea undone: the link step is no       *)
(* longer idempotent, so a crash between the CAS and the spin can hang  *)
(* or skip the wait.                                                    *)
(* ------------------------------------------------------------------ *)

let wr_trusting_cas ctx =
  let mem = Engine.Ctx.memory ctx in
  let n = Engine.Ctx.n ctx in
  let id = Engine.Ctx.register_lock ctx "mut-wr" in
  let reg = Nodes.create_registry mem ~prefix:"mut-wr" in
  let tail = Memory.alloc mem ~name:"mut-wr.tail" Nodes.null in
  let cell_array field init =
    Array.init n (fun i -> Memory.alloc mem ~home:i ~name:(Printf.sprintf "mut-wr.%s[%d]" field i) init)
  in
  let state = cell_array "state" 0 in
  let mine = cell_array "mine" Nodes.null in
  let pred = cell_array "pred" Nodes.null in
  let exit_segment ~pid =
    Api.write state.(pid) 4;
    let m = Api.read mine.(pid) in
    let node = Nodes.get reg m in
    let (_ : bool) = Api.cas tail ~expect:m ~value:Nodes.null in
    let (_ : bool) = Api.cas node.Nodes.next ~expect:Nodes.null ~value:m in
    let next = Api.read node.Nodes.next in
    if next <> m then Api.write (Nodes.get reg next).Nodes.locked 0;
    Api.write state.(pid) 0
  in
  let acquire ~pid =
    let s = Api.read state.(pid) in
    if s = 2 && Api.read pred.(pid) = Api.read mine.(pid) then exit_segment ~pid
    else if s = 4 then exit_segment ~pid;
    if Api.read state.(pid) = 0 then begin
      Api.write mine.(pid) Nodes.null;
      Api.write state.(pid) 1
    end;
    if Api.read state.(pid) = 1 then begin
      if Api.read mine.(pid) = Nodes.null then
        Api.write mine.(pid) (Nodes.fresh reg ~owner:pid).Nodes.id;
      let m = Api.read mine.(pid) in
      let node = Nodes.get reg m in
      Api.write node.Nodes.next Nodes.null;
      Api.write node.Nodes.locked 1;
      Api.write pred.(pid) m;
      Api.write state.(pid) 2
    end;
    if Api.read state.(pid) = 2 then begin
      let m = Api.read mine.(pid) in
      let node = Nodes.get reg m in
      if Api.read pred.(pid) = m then begin
        let temp = Api.fas_open_unsafe ~lock:id tail m in
        Api.write_close_unsafe ~lock:id pred.(pid) temp
      end;
      let p = Api.read pred.(pid) in
      if p <> Nodes.null then begin
        let pnode = Nodes.get reg p in
        (* MUTATION: branch on the CAS outcome instead of re-reading. *)
        if Api.cas pnode.Nodes.next ~expect:Nodes.null ~value:m then
          Api.spin_until node.Nodes.locked (Api.Eq 0)
      end;
      Api.write state.(pid) 3
    end
  in
  Lock.instrument ~id ~name:"mut-wr" ~acquire ~release:(fun ~pid -> exit_segment ~pid) ()

let test_mutant_wr_trusting_cas () =
  (* Crash the process right after the link CAS: on re-execution the CAS
     fails (field already set), the mutant skips the wait and barges into
     the CS — occupancy 2 with zero unsafe failures. *)
  let caught = ref false in
  (* p1 heads the queue under round-robin; p2 and p0 have predecessors and
     execute the vulnerable link CAS. *)
  List.iter
    (fun victim ->
      for nth = 0 to 60 do
        if not !caught then begin
          let crash = Crash.at_op ~pid:victim ~nth Crash.After in
          let cs ~pid:_ = for _ = 1 to 60 do Api.yield () done in
          let res =
            Harness.run_lock ~record:true ~cs ~n:3 ~model:Memory.CC ~sched:(Sched.round_robin ())
              ~crash ~requests:3 ~make:wr_trusting_cas ~max_steps:300_000 ()
          in
          let stats = res.Engine.locks.(0) in
          let bad =
            res.Engine.deadlocked || res.Engine.timed_out
            || stats.Engine.max_occupancy > 1 + stats.Engine.unsafe_crashes
          in
          if bad then caught := true
        end
      done)
    [ 2; 0 ];
  check cb "battery catches the CAS-trusting mutant" true !caught

(* ------------------------------------------------------------------ *)
(* Mutant 2: splitter whose release is performed by slow processes too  *)
(* (the owner check dropped) — the fast path loses its exclusivity.     *)
(* ------------------------------------------------------------------ *)

let sa_leaky_splitter ctx =
  let mem = Engine.Ctx.memory ctx in
  let n = Engine.Ctx.n ctx in
  let id = Engine.Ctx.register_lock ctx "mut-sa" in
  let filter = Wr_lock.create ~name:"mut-sa.filter" ctx in
  let flock = Wr_lock.lock filter in
  let owner = Memory.alloc mem ~name:"mut-sa.owner" 0 in
  let typ = Array.init n (fun i -> Memory.alloc mem ~home:i ~name:(Printf.sprintf "mut-sa.t[%d]" i) 0) in
  let core = Bakery.make_named ~name:"mut-sa.core" ctx in
  let arb = Arbitrator.create ~name:"mut-sa.arb" ctx in
  let acquire ~pid =
    flock.Lock.acquire ~pid;
    if Api.read typ.(pid) <> 1 then ignore (Api.cas owner ~expect:0 ~value:(pid + 1));
    if Api.read owner <> pid + 1 then begin
      Api.write typ.(pid) 1;
      core.Lock.acquire ~pid
    end;
    Arbitrator.acquire arb (if Api.read typ.(pid) = 1 then Lock.Right else Lock.Left) ~pid
  in
  let release ~pid =
    let t = Api.read typ.(pid) in
    Arbitrator.release arb (if t = 1 then Lock.Right else Lock.Left) ~pid;
    if t = 1 then core.Lock.release ~pid;
    (* MUTATION: every exit clears the splitter, not just the fast path's
       owner — a waiting slow process can now promote itself while the
       real owner still runs. *)
    Api.write owner 0;
    Api.write typ.(pid) 0;
    flock.Lock.release ~pid
  in
  Lock.instrument ~id ~name:"mut-sa" ~acquire ~release ()

let test_mutant_leaky_splitter () =
  (* Under an unsafe filter failure two processes reach the splitter; with
     the leaky release, eventually two attack the arbitrator's Left side
     concurrently and mutual exclusion of the whole lock breaks. *)
  let caught = ref false in
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  List.iter
    (fun seed ->
      if not !caught then begin
        let crash =
          Crash.fas_gap ~seed ~rate:0.6 ~max_crashes:6 ~cell_suffix:".tail" ()
        in
        let cs ~pid:_ = for _ = 1 to 20 do Api.yield () done in
        let res =
          Harness.run_lock ~cs ~n:6 ~model:Memory.CC ~sched:(Sched.random ~seed) ~crash
            ~requests:6 ~make:sa_leaky_splitter ~max_steps:2_000_000 ()
        in
        if res.Engine.cs_max > 1 || res.Engine.deadlocked || res.Engine.timed_out then
          caught := true
      end)
    seeds;
  check cb "battery catches the leaky splitter" true !caught

(* ------------------------------------------------------------------ *)
(* Mutant 3: bakery that releases in the BCSR-unsafe order (state after *)
(* number) — a crash between the two exit writes lets the restart       *)
(* re-enter a CS it already gave away.                                  *)
(* ------------------------------------------------------------------ *)

let bakery_unsafe_exit ctx =
  let mem = Engine.Ctx.memory ctx in
  let n = Engine.Ctx.n ctx in
  let id = Engine.Ctx.register_lock ctx "mut-bak" in
  let arr field init =
    Array.init n (fun i -> Memory.alloc mem ~home:i ~name:(Printf.sprintf "mut-bak.%s[%d]" field i) init)
  in
  let choosing = arr "choosing" 0 in
  let number = arr "number" 0 in
  let state = arr "state" 0 in
  let acquire ~pid =
    let s = Api.read state.(pid) in
    (* MUTATION: BCSR keyed on the state alone, without the number<>0
       corroboration. *)
    if s = 3 then ()
    else begin
      if s = 0 || Api.read number.(pid) = 0 then begin
        Api.write choosing.(pid) 1;
        let maxn = ref 0 in
        for j = 0 to n - 1 do
          let nj = Api.read number.(j) in
          if nj > !maxn then maxn := nj
        done;
        Api.write number.(pid) (!maxn + 1);
        Api.write choosing.(pid) 0
      end;
      let my = Api.read number.(pid) in
      for j = 0 to n - 1 do
        if j <> pid then begin
          Api.spin_until choosing.(j) (Api.Eq 0);
          let precedes nj = nj <> 0 && (nj < my || (nj = my && j < pid)) in
          Api.spin_until number.(j) (Api.Pred (fun v -> not (precedes v)))
        end
      done;
      Api.write state.(pid) 3
    end
  in
  let release ~pid =
    (* MUTATION: number released before the state leaves InCS. *)
    Api.write number.(pid) 0;
    Api.yield ();
    Api.write state.(pid) 0
  in
  Lock.instrument ~id ~name:"mut-bak" ~acquire ~release ()

let test_mutant_bakery_exit_order () =
  (* Crash in the exit gap, long CSs: the restart claims BCSR re-entry into
     a critical section whose ticket it already released. *)
  let caught = ref false in
  for nth = 0 to 80 do
    if not !caught then begin
      let crash = Crash.at_op ~pid:0 ~nth Crash.After in
      let cs ~pid:_ = for _ = 1 to 25 do Api.yield () done in
      let res =
        Harness.run_lock ~cs ~n:3 ~model:Memory.CC ~sched:(Sched.round_robin ()) ~crash
          ~requests:3 ~make:bakery_unsafe_exit ~max_steps:300_000 ()
      in
      if res.Engine.cs_max > 1 then caught := true
    end
  done;
  check cb "battery catches the exit-order mutant" true !caught

(* ------------------------------------------------------------------ *)
(* Mutant 4: arbitrator that rings the doorbell before yielding the     *)
(* turn — the lost-wakeup protocol inverted.                            *)
(* ------------------------------------------------------------------ *)

let arb_ring_before_yield ctx =
  let mem = Engine.Ctx.memory ctx in
  let n = Engine.Ctx.n ctx in
  let want = Array.init 2 (fun s -> Memory.alloc mem ~name:(Printf.sprintf "mut-arb.w[%d]" s) 0) in
  let turn = Memory.alloc mem ~name:"mut-arb.turn" 0 in
  let occupant = Array.init 2 (fun s -> Memory.alloc mem ~name:(Printf.sprintf "mut-arb.o[%d]" s) 0) in
  let spin = Array.init n (fun p -> Memory.alloc mem ~home:p ~name:(Printf.sprintf "mut-arb.s[%d]" p) 0) in
  let wake side = let q = Api.read occupant.(side) in if q <> 0 then Api.write spin.(q - 1) 0 in
  let blocked s = Api.read want.(1 - s) = 1 && Api.read turn = s in
  let acquire ~pid =
    let s = pid land 1 in
    Api.write occupant.(s) (pid + 1);
    Api.write want.(s) 1;
    (* MUTATION: wake the other side BEFORE yielding the turn. *)
    wake (1 - s);
    Api.write turn s;
    while blocked s do
      Api.write spin.(pid) 1;
      if blocked s then Api.spin_until spin.(pid) (Api.Eq 0)
    done
  in
  let release ~pid =
    let s = pid land 1 in
    Api.write want.(s) 0;
    wake (1 - s);
    Api.write occupant.(s) 0
  in
  { Lock.name = "mut-arb"; acquire; release; try_abort = None }

let test_mutant_arbitrator_wake_order () =
  (* The explorer hunts the lost wake-up: some interleaving leaves one side
     asleep forever (deadlock) because the wake fired before the turn
     yield that would have unblocked it. *)
  let outcome =
    Rme_check.Explore.explore ~max_runs:40_000 ~max_steps:4_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:arb_ring_before_yield
      ~body:(fun lock ~pid ->
        while Api.completed_requests () < 2 do
          Api.note (Event.Seg Event.Req_begin);
          lock.Lock.acquire ~pid;
          Api.note (Event.Seg Event.Cs_begin);
          Api.note (Event.Seg Event.Cs_end);
          lock.Lock.release ~pid;
          Api.note (Event.Seg Event.Req_done)
        done)
      ~check:(fun res ->
        if res.Engine.deadlocked then Some "deadlock"
        else if res.Engine.cs_max > 1 then Some "ME"
        else None)
      ()
  in
  check cb "explorer catches the wake-order mutant" true (outcome.Rme_check.Explore.violation <> None)

let () =
  Alcotest.run "mutations"
    [
      ( "mutants",
        [
          Alcotest.test_case "wr trusting cas" `Quick test_mutant_wr_trusting_cas;
          Alcotest.test_case "leaky splitter" `Quick test_mutant_leaky_splitter;
          Alcotest.test_case "bakery exit order" `Quick test_mutant_bakery_exit_order;
          Alcotest.test_case "arbitrator wake order" `Quick test_mutant_arbitrator_wake_order;
        ] );
    ]
