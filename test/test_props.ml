(* Self-tests for the property checkers: each checker must accept correct
   histories and reject histories produced by deliberately broken locks. *)

open Rme_sim
open Rme_locks
open Rme_check

let check = Alcotest.check

let cb = Alcotest.bool

(* A deliberately broken "lock": acquire/release do nothing. *)
let broken_make ctx =
  let id = Engine.Ctx.register_lock ctx "broken" in
  Lock.instrument ~id ~name:"broken"
    ~acquire:(fun ~pid:_ -> Api.yield ())
    ~release:(fun ~pid:_ -> Api.yield ())
    ()

(* A lock that starves pid 0: it never lets it in. *)
let starving_make ctx =
  let mem = Engine.Ctx.memory ctx in
  let id = Engine.Ctx.register_lock ctx "starver" in
  let never = Memory.alloc mem ~name:"starver.never" 0 in
  Lock.instrument ~id ~name:"starver"
    ~acquire:(fun ~pid -> if pid = 0 then Api.spin_until never (Api.Eq 1))
    ~release:(fun ~pid:_ -> ())
    ()

let run ?(record = true) ?trace_ops ?(n = 4) ?(requests = 4) ?(crash = Crash.none)
    ?(sched = Sched.random ~seed:3) ?(max_steps = 200_000) ?cs ~make () =
  Harness.run_lock ~record ?trace_ops ?cs ~max_steps ~n ~model:Memory.CC ~sched ~crash ~requests
    ~make ()

let is_none what = function
  | None -> ()
  | Some msg -> Alcotest.failf "%s unexpectedly rejected: %s" what msg

let is_some what = function
  | None -> Alcotest.failf "%s unexpectedly accepted" what
  | Some _ -> ()

let test_me_checker () =
  let good = run ~make:Wr_lock.make () in
  is_none "me(wr)" (Props.mutual_exclusion good);
  let cs ~pid:_ = for _ = 1 to 10 do Api.yield () done in
  let bad = run ~cs ~make:broken_make () in
  is_some "me(broken)" (Props.mutual_exclusion bad)

let test_sf_checker () =
  let good = run ~make:Tournament.make () in
  is_none "sf(tournament)" (Props.starvation_freedom good ~requests:4);
  let bad = run ~make:starving_make () in
  is_some "sf(starver)" (Props.starvation_freedom bad ~requests:4)

let test_all_satisfied () =
  let good = run ~make:Bakery.make () in
  check cb "satisfied" true (Props.all_satisfied good ~n:4 ~requests:4)

let test_lock_me_checker () =
  let good = run ~make:Wr_lock.make () in
  is_none "lock-me(wr)" (Props.lock_mutual_exclusion good ~lock_id:0);
  let cs ~pid:_ = for _ = 1 to 10 do Api.yield () done in
  let bad = run ~cs ~make:broken_make () in
  is_some "lock-me(broken)" (Props.lock_mutual_exclusion bad ~lock_id:0)

let test_responsiveness_checker () =
  (* WR-Lock under FAS-gap crashes stays within the responsive bound. *)
  let crash = Crash.on_kind ~pid:2 ~kind:Api.Fas ~occurrence:0 Crash.After in
  let lock_id = ref 0 in
  let res =
    Engine.run ~record:true ~n:4 ~model:Memory.CC ~sched:(Sched.round_robin ()) ~crash
      ~setup:(fun ctx ->
        let t = Wr_lock.create ctx in
        lock_id := Wr_lock.lock_id t;
        Wr_lock.lock t)
      ~body:(fun lock ~pid ->
        Harness.standard_body
          ~cs:(fun ~pid:_ -> for _ = 1 to 40 do Api.yield () done)
          ~lock ~requests:2 pid)
      ()
  in
  is_none "responsive(wr)" (Props.responsiveness res ~lock_id:!lock_id);
  is_none "weak-me-intervals(wr)" (Props.weak_me_intervals res ~lock_id:!lock_id);
  (* The broken lock overlaps with zero unsafe failures: the occupancy
     envelope k+1 <= 1 + F is violated and the checker must say so. *)
  let cs ~pid:_ = for _ = 1 to 10 do Api.yield () done in
  let bad = run ~cs ~make:broken_make () in
  is_some "responsiveness(broken)" (Props.responsiveness bad ~lock_id:0)

let test_weak_me_rejects_gratuitous_violation () =
  (* The broken lock violates ME with zero failures: the interval checker
     must reject its history. *)
  let lock_id = ref 0 in
  let res =
    Engine.run ~record:true ~n:4 ~model:Memory.CC ~sched:(Sched.random ~seed:5)
      ~crash:Crash.none
      ~setup:(fun ctx ->
        let lock = broken_make ctx in
        lock_id := 0;
        lock)
      ~body:(fun lock ~pid ->
        Harness.standard_body
          ~cs:(fun ~pid:_ -> for _ = 1 to 10 do Api.yield () done)
          ~lock ~requests:3 pid)
      ()
  in
  is_some "weak-me(broken)" (Props.weak_me_intervals res ~lock_id:!lock_id)

let test_bounded_exit_checker () =
  let lock_id = ref 0 in
  let res =
    Engine.run ~record:true ~trace_ops:true ~n:6 ~model:Memory.CC
      ~sched:(Sched.random ~seed:7) ~crash:Crash.none
      ~setup:(fun ctx ->
        let t = Wr_lock.create ctx in
        lock_id := Wr_lock.lock_id t;
        Wr_lock.lock t)
      ~body:(fun lock ~pid -> Harness.standard_body ~lock ~requests:3 pid)
      ()
  in
  is_none "be(wr)" (Props.bounded_exit res ~lock_id:!lock_id ~bound:10);
  (* An absurdly small bound must be rejected — proves the checker counts. *)
  is_some "be(bound=1)" (Props.bounded_exit res ~lock_id:!lock_id ~bound:1)

let test_bcsr_checker () =
  let lock_id = ref 0 in
  let cs ~pid:_ = Api.note (Event.Custom "w") in
  let crash = Crash.on_custom_note ~pid:0 ~tag:"w" ~occurrence:0 Crash.After in
  let res =
    Engine.run ~record:true ~trace_ops:true ~n:4 ~model:Memory.CC
      ~sched:(Sched.round_robin ()) ~crash
      ~setup:(fun ctx ->
        let t = Wr_lock.create ctx in
        lock_id := Wr_lock.lock_id t;
        Wr_lock.lock t)
      ~body:(fun lock ~pid -> Harness.standard_body ~cs ~lock ~requests:3 pid)
      ()
  in
  is_none "bcsr(wr)" (Props.bcsr res ~lock_id:!lock_id ~bound:14);
  is_some "bcsr(bound=0)" (Props.bcsr res ~lock_id:!lock_id ~bound:0)

let test_fcfs_checker () =
  let res = run ~trace_ops:true ~n:6 ~requests:1 ~sched:(Sched.round_robin ()) ~make:Wr_lock.make () in
  is_none "fcfs(wr)" (Props.fcfs res ~tail_cell:"wr.tail");
  (* A forced overtake: p0 appends to the queue first but p1 enters the CS
     first — append order [0;1] vs CS order [1;0] must be rejected. *)
  let res =
    Engine.run ~record:true ~trace_ops:true ~n:2 ~model:Memory.CC
      ~sched:(Sched.round_robin ()) ~crash:Crash.none
      ~setup:(fun ctx ->
        let mem = Engine.Ctx.memory ctx in
        (Memory.alloc mem ~name:"q.tail" 0, Memory.alloc mem ~name:"q.gate" 0))
      ~body:(fun (tail, gate) ~pid ->
        if pid = 0 then begin
          ignore (Api.fas tail 1);
          Api.spin_until gate (Api.Eq 1);
          Api.note (Event.Seg Event.Cs_begin);
          Api.note (Event.Seg Event.Cs_end)
        end
        else begin
          Api.spin_until tail (Api.Eq 1);
          ignore (Api.fas tail 2);
          Api.note (Event.Seg Event.Cs_begin);
          Api.note (Event.Seg Event.Cs_end);
          Api.write gate 1
        end)
      ()
  in
  is_some "fcfs(overtake)" (Props.fcfs res ~tail_cell:"q.tail")

let test_bounded_recovery_checker () =
  let crash = Crash.on_kind ~pid:0 ~kind:Api.Cas ~occurrence:1 Crash.After in
  let lock_id = ref 0 in
  let res =
    Engine.run ~record:true ~trace_ops:true ~n:3 ~model:Memory.CC
      ~sched:(Sched.round_robin ()) ~crash
      ~setup:(fun ctx ->
        let t = Wr_lock.create ctx in
        lock_id := Wr_lock.lock_id t;
        Wr_lock.lock t)
      ~body:(fun lock ~pid -> Harness.standard_body ~lock ~requests:3 pid)
      ()
  in
  is_none "br(wr)" (Props.bounded_recovery res ~lock_id:!lock_id ~bound:8);
  (* A lock whose recovery burns six scheduling points before re-entering
     must bust a tight bound while staying within a loose one. *)
  let crash = Crash.on_kind ~pid:0 ~kind:Api.Fas ~occurrence:0 Crash.After in
  let slow =
    Engine.run ~record:true ~trace_ops:true ~n:3 ~model:Memory.CC
      ~sched:(Sched.round_robin ()) ~crash
      ~setup:(fun ctx ->
        let lock = Wr_lock.lock (Wr_lock.create ctx) in
        {
          lock with
          Harness.acquire =
            (fun ~pid ->
              for _ = 1 to 6 do Api.yield () done;
              lock.Harness.acquire ~pid);
        })
      ~body:(fun lock ~pid -> Harness.standard_body ~lock ~requests:3 pid)
      ()
  in
  is_some "br(slow, bound=2)" (Props.bounded_recovery slow ~lock_id:0 ~bound:2);
  is_none "br(slow, bound=30)" (Props.bounded_recovery slow ~lock_id:0 ~bound:30)

let test_check_battery () =
  let good = run ~make:Tournament.make () in
  check (Alcotest.list Alcotest.string) "clean battery" []
    (Props.check_battery good ~requests:4 ~weak_lock_ids:[]);
  let cs ~pid:_ = for _ = 1 to 10 do Api.yield () done in
  let bad = run ~cs ~make:broken_make () in
  check cb "battery flags broken lock" true
    (Props.check_battery bad ~requests:4 ~weak_lock_ids:[] <> []);
  (* Weak lock under FAS-gap crashes: interval form accepted. *)
  let crash = Crash.on_kind ~pid:2 ~kind:Api.Fas ~occurrence:0 Crash.After in
  let weak = run ~crash ~cs ~make:Wr_lock.make () in
  check (Alcotest.list Alcotest.string) "weak battery clean" []
    (Props.check_battery weak ~requests:4 ~weak_lock_ids:[ 0 ])

let test_timeline_render () =
  let res = run ~n:3 ~requests:2 ~crash:(Crash.at_op ~pid:1 ~nth:12 Crash.After) ~make:Wr_lock.make () in
  let s = Timeline.render ~width:60 res in
  let lines = String.split_on_char '\n' (String.trim s) in
  check Alcotest.int "one lane per process" 3 (List.length lines);
  List.iter (fun l -> check cb "lane width" true (String.length l = 60 + 5)) lines;
  check cb "crash marked" true (String.contains s 'x');
  check cb "cs marked" true (String.contains s 'C')

let test_replay_consistency () =
  (* The recorded instruction stream of any run must be sequentially
     consistent — a self-check of the engine's trace pipeline. *)
  List.iter
    (fun (make, crash) ->
      let res = run ~trace_ops:true ~n:4 ~requests:3 ~crash ~make () in
      let report = Replay.verify res ~mem_dump:[] in
      (match report.Replay.divergence with
      | None -> ()
      | Some d -> Alcotest.fail d);
      check cb "replayed something" true (report.Replay.ops_replayed > 50))
    [
      (Wr_lock.make, Crash.none);
      (Wr_lock.make, Crash.at_op ~pid:1 ~nth:14 Crash.After);
      (Ba_lock.default, Crash.none);
      ((fun ctx -> Kport.as_lock (Kport.create ~k:4 ctx)), Crash.at_op ~pid:0 ~nth:9 Crash.After);
    ]

let test_replay_detects_divergence () =
  (* Feed the checker a corrupted trace: it must flag it. *)
  let res = run ~trace_ops:true ~n:2 ~requests:2 ~make:Wr_lock.make () in
  let corrupted =
    {
      res with
      Engine.events =
        (* Reverse the op stream: reads now precede the writes they saw. *)
        List.rev res.Engine.events;
    }
  in
  let r1 = Replay.verify res ~mem_dump:[] in
  let r2 = Replay.verify corrupted ~mem_dump:[] in
  check cb "original consistent" true (r1.Replay.divergence = None);
  check cb "corrupted flagged" true (r2.Replay.divergence <> None)

let qcheck_checkers_accept_all_strong_locks =
  QCheck.Test.make ~name:"checkers accept every strong lock under storms" ~count:25
    QCheck.(pair (int_bound 4) (int_bound 9999))
    (fun (which, seed) ->
      let make =
        match which with
        | 0 -> Tournament.make
        | 1 -> Jjj_tree.make
        | 2 -> Bakery.make
        | 3 -> Tas_lock.make
        | _ -> Ba_lock.default
      in
      let crash = Crash.random ~seed ~rate:0.004 ~max_crashes:4 () in
      let res = run ~n:4 ~crash ~sched:(Sched.random ~seed) ~max_steps:2_000_000 ~make () in
      Props.mutual_exclusion res = None
      && Props.starvation_freedom res ~requests:4 = None)

let () =
  Alcotest.run "props"
    [
      ( "checkers",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_me_checker;
          Alcotest.test_case "lock mutual exclusion" `Quick test_lock_me_checker;
          Alcotest.test_case "starvation freedom" `Quick test_sf_checker;
          Alcotest.test_case "all satisfied" `Quick test_all_satisfied;
          Alcotest.test_case "responsiveness" `Quick test_responsiveness_checker;
          Alcotest.test_case "weak-me rejects broken lock" `Quick
            test_weak_me_rejects_gratuitous_violation;
          Alcotest.test_case "bounded exit" `Quick test_bounded_exit_checker;
          Alcotest.test_case "bcsr" `Quick test_bcsr_checker;
          Alcotest.test_case "fcfs" `Quick test_fcfs_checker;
          Alcotest.test_case "bounded recovery" `Quick test_bounded_recovery_checker;
          Alcotest.test_case "timeline render" `Quick test_timeline_render;
          Alcotest.test_case "check battery" `Quick test_check_battery;
          Alcotest.test_case "replay consistency" `Quick test_replay_consistency;
          Alcotest.test_case "replay detects divergence" `Quick test_replay_detects_divergence;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest qcheck_checkers_accept_all_strong_locks ]);
    ]
