(* Tests for the semi-adaptive (SA-Lock, Algorithm 3) and super-adaptive
   (BA-Lock, §5.2) frameworks: path selection, escalation bounds
   (Theorem 5.17), adaptivity (Theorems 5.18/5.19), batch failures (§7.1)
   and the level-tracking restart optimisation (§7.3). *)

open Rme_sim
open Rme_locks

let check = Alcotest.check

let ci = Alcotest.int

let cb = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* SA-Lock                                                             *)
(* ------------------------------------------------------------------ *)

let sa_make ctx = Sa_lock.lock (Sa_lock.create ~name:"sa" ~core:(Bakery.make ctx) ctx)

let run_sa ?record ?(crash = Crash.none) ?(sched = Sched.round_robin ()) ?(n = 6)
    ?(requests = 4) ?cs () =
  Harness.run_lock ?record ?cs ~n ~model:Memory.CC ~sched ~crash ~requests ~make:sa_make ()

let test_sa_all_fast_without_failures () =
  let res = run_sa ~record:true () in
  check ci "me" 1 res.Engine.cs_max;
  let slow_paths =
    List.filter (function Event.Note { note = Event.Path (_, false); _ } -> true | _ -> false)
      res.Engine.events
  in
  check ci "nobody takes the slow path" 0 (List.length slow_paths)

let test_sa_slow_path_on_unsafe_failure () =
  (* A FAS-gap crash on the filter admits two processes; the splitter must
     divert at least one to the slow path, and ME must still hold. *)
  let crash = Crash.on_kind ~pid:2 ~kind:Api.Fas ~occurrence:0 Crash.After in
  let cs ~pid:_ = for _ = 1 to 40 do Api.yield () done in
  let res = run_sa ~record:true ~crash ~cs () in
  check ci "me preserved by the framework" 1 res.Engine.cs_max;
  let slow_paths =
    List.filter (function Event.Note { note = Event.Path (_, false); _ } -> true | _ -> false)
      res.Engine.events
  in
  check cb "someone took the slow path" true (List.length slow_paths > 0)

let test_sa_path_persisted_across_crash () =
  (* Crash a slow-path process mid-core-acquisition: it must retake the slow
     path on restart (the type cell persists). *)
  let crash =
    Crash.all
      [
        Crash.on_kind ~pid:2 ~kind:Api.Fas ~occurrence:0 Crash.After;
        (* second crash: hit p-whoever in the bakery doorway *)
        Crash.on_cell ~pid:3 ~cell:"sa-core-unused" ~occurrence:0 Crash.Before;
      ]
  in
  let cs ~pid:_ = for _ = 1 to 40 do Api.yield () done in
  let res = run_sa ~crash ~cs () in
  check ci "me" 1 res.Engine.cs_max;
  check cb "all done" true (Engine.total_completed res = 6 * 4)

(* ------------------------------------------------------------------ *)
(* BA-Lock                                                             *)
(* ------------------------------------------------------------------ *)

let ba_internals = ref None

let ba_make ?(track_level = false) () ctx =
  let t = Ba_lock.create ~name:"ba" ~track_level ~base:Jjj_tree.make ctx in
  ba_internals := Some t;
  Ba_lock.lock t

let run_ba ?record ?(track_level = false) ?(crash = Crash.none) ?(sched = Sched.random ~seed:5)
    ?(n = 16) ?(requests = 10) ?(cs_yields = 6) () =
  let cs ~pid:_ = for _ = 1 to cs_yields do Api.yield () done in
  let res =
    Harness.run_lock ?record ~cs ~n ~model:Memory.CC ~sched ~crash ~requests
      ~make:(ba_make ~track_level ()) ()
  in
  (res, Option.get !ba_internals)

let max_level (res : Engine.result) =
  Array.fold_left (fun acc (p : Engine.proc_stats) -> max acc p.max_level) 0 res.Engine.procs

let test_ba_me_sf_storm () =
  let crash = Crash.fas_gap ~seed:3 ~rate:0.4 ~max_crashes:16 ~cell_suffix:".tail" () in
  let res, _ = run_ba ~crash () in
  check cb "all done" true (Engine.total_completed res = 160);
  check ci "strong me under unsafe failures" 1 res.Engine.cs_max

let test_ba_no_escalation_without_failures () =
  let res, _ = run_ba () in
  check ci "stays at level 1" 1 (max_level res)

let test_ba_escalation_happens () =
  let crash = Crash.fas_gap ~seed:3 ~rate:0.4 ~max_crashes:32 ~cell_suffix:".tail" () in
  let res, _ = run_ba ~crash () in
  check cb
    (Printf.sprintf "escalates past level 1 (level %d)" (max_level res))
    true
    (max_level res >= 2)

let test_ba_level_bound_thm_5_17 () =
  (* Theorem 5.17: reaching level x requires >= x(x-1)/2 failures, i.e.
     max level <= 1 + ceil(sqrt(2F)).  Check across adversary strengths. *)
  List.iter
    (fun f ->
      let crash = Crash.fas_gap ~seed:11 ~rate:0.4 ~max_crashes:f ~cell_suffix:".tail" () in
      let res, _ = run_ba ~n:32 ~requests:12 ~crash () in
      let lvl = max_level res in
      let bound = 1 + int_of_float (Float.ceil (sqrt (2.0 *. float_of_int f))) in
      check cb
        (Printf.sprintf "F=%d: level %d <= %d" f lvl bound)
        true (lvl <= bound))
    [ 1; 2; 4; 8; 16; 32; 64 ]

let test_ba_rmr_sublinear_in_f () =
  (* Theorem 5.18 shape: the worst passage cost grows like sqrt(F), not F.
     Compare the growth from F=4 to F=64: a 16x increase in F must increase
     the max passage RMR by clearly less than 16x. *)
  let max_rmr_at f =
    let crash = Crash.fas_gap ~seed:7 ~rate:0.4 ~max_crashes:f ~cell_suffix:".tail" () in
    let res, _ = run_ba ~n:32 ~requests:12 ~crash () in
    Engine.max_rmr res
  in
  let r4 = max_rmr_at 4 and r64 = max_rmr_at 64 in
  check cb (Printf.sprintf "sublinear growth (%d -> %d)" r4 r64) true (r64 < 8 * r4)

let test_ba_capped_by_base_lock () =
  (* Theorem 5.19: even under an unbounded storm, the cost stays within the
     O(levels + base) ceiling: every level adds O(1) and the recursion depth
     is fixed. *)
  let crash = Crash.fas_gap ~seed:13 ~rate:0.5 ~max_crashes:500 ~cell_suffix:".tail" () in
  let res, t = run_ba ~n:16 ~requests:20 ~crash () in
  check cb "all done" true (Engine.total_completed res = 320);
  let ceiling = 40 * (Ba_lock.levels t + 2) in
  check cb
    (Printf.sprintf "max rmr %d within ceiling %d" (Engine.max_rmr res) ceiling)
    true
    (Engine.max_rmr res <= ceiling)

let test_ba_weak_me_per_filter () =
  (* Every per-level filter individually satisfies the interval form of
     weak recoverability (Theorem 4.2). *)
  let crash = Crash.fas_gap ~seed:5 ~rate:0.4 ~max_crashes:24 ~cell_suffix:".tail" () in
  let res, t = run_ba ~record:true ~crash () in
  List.iter
    (fun fid ->
      match Rme_check.Props.weak_me_intervals res ~lock_id:fid with
      | None -> ()
      | Some msg -> Alcotest.failf "filter %d: %s" fid msg)
    (Ba_lock.filter_ids t)

let test_ba_locality () =
  (* Locality (Theorem 5.12): no single crash is unsafe w.r.t. two filters.
     Check every recorded crash. *)
  let crash = Crash.fas_gap ~seed:9 ~rate:0.5 ~max_crashes:24 ~cell_suffix:".tail" () in
  let res, _ = run_ba ~record:true ~crash () in
  List.iter
    (function
      | Event.Crash { unsafe_wrt; _ } ->
          check cb "at most one sensitive lock per crash" true (List.length unsafe_wrt <= 1)
      | _ -> ())
    res.Engine.events

let test_ba_batch_failures () =
  (* §7.1: a batch failure (all processes at once) is absorbed; everything
     completes with ME intact, and the cost stays bounded. *)
  let crash =
    Crash.all
      [
        Crash.batch ~step:400 ~pids:(List.init 16 (fun i -> i));
        Crash.batch ~step:2000 ~pids:(List.init 8 (fun i -> i));
      ]
  in
  let res, _ = run_ba ~crash () in
  check cb "all done" true (Engine.total_completed res = 160);
  check ci "me" 1 res.Engine.cs_max;
  check ci "24 crashes" 24 res.Engine.total_crashes

let test_ba_batches_do_not_escalate_thm_7_1 () =
  (* Theorem 7.1's contrapositive, specialised: batch failures alone (u
     batches, zero individual unsafe failures) cannot push anyone past
     level u + 1; in practice simultaneous crashes leave no FAS gap at all,
     so the level stays at 1. *)
  List.iter
    (fun repeat ->
      let crash =
        Crash.all
          (List.init repeat (fun r ->
               Crash.batch ~step:(300 + (r * 900)) ~pids:(List.init 16 (fun i -> i))))
      in
      let res, _ = run_ba ~crash () in
      check cb "all done" true (Engine.total_completed res = 160);
      check ci
        (Printf.sprintf "no escalation from %d batches" repeat)
        1 (max_level res))
    [ 1; 2; 4 ];
  (* Mixed regime: u batches + F individual unsafe failures never exceed
     the individual bound plus the batch allowance (Corollary 7.2 shape). *)
  let crash =
    Crash.all
      [
        Crash.batch ~step:500 ~pids:(List.init 16 (fun i -> i));
        Crash.fas_gap ~seed:3 ~rate:0.4 ~max_crashes:8 ~cell_suffix:".tail" ();
      ]
  in
  let res, _ = run_ba ~crash () in
  check cb "all done" true (Engine.total_completed res = 160);
  let bound = 1 + 1 + int_of_float (Float.ceil (sqrt 16.0)) in
  check cb
    (Printf.sprintf "mixed level %d <= %d" (max_level res) bound)
    true
    (max_level res <= bound)

let test_ba_tracked_equivalent_semantics () =
  (* §7.3 level tracking must not change observable behaviour: ME + SF under
     the same storms. *)
  let crash () = Crash.fas_gap ~seed:21 ~rate:0.4 ~max_crashes:20 ~cell_suffix:".tail" () in
  let res, _ = run_ba ~track_level:true ~crash:(crash ()) () in
  check cb "all done" true (Engine.total_completed res = 160);
  check ci "me" 1 res.Engine.cs_max

let test_ba_tracked_cheaper_super_passages () =
  (* A process that crashes repeatedly deep in the hierarchy re-walks the
     chain each restart without tracking; with tracking the restarts are
     cheaper, so its super-passage RMR total should not be higher. *)
  let scenario track =
    let crash =
      Crash.all
        [
          Crash.fas_gap ~seed:2 ~rate:0.4 ~max_crashes:12 ~cell_suffix:".tail" ();
          Crash.random ~seed:3 ~rate:0.004 ~max_crashes:10 ~pids:[ 1 ] ();
        ]
    in
    let res, _ = run_ba ~track_level:track ~crash ~sched:(Sched.random ~seed:4) () in
    (Engine.total_completed res, Engine.max_rmr_super res)
  in
  let done_plain, cost_plain = scenario false in
  let done_tracked, cost_tracked = scenario true in
  check ci "plain completes" 160 done_plain;
  check ci "tracked completes" 160 done_tracked;
  check cb
    (Printf.sprintf "tracked (%d) not much worse than plain (%d)" cost_tracked cost_plain)
    true
    (cost_tracked <= cost_plain + (cost_plain / 2))

let test_ba_one_level_equals_sa () =
  (* BA with m = 1 is exactly SA; sanity-check the recursion base. *)
  let make ctx = Ba_lock.lock (Ba_lock.create ~name:"ba1" ~levels:1 ~base:Tournament.make ctx) in
  let res = Harness.run_lock ~n:6 ~model:Memory.CC ~sched:(Sched.random ~seed:6)
      ~crash:Crash.none ~requests:5 ~make () in
  check cb "all done" true (Engine.total_completed res = 30);
  check ci "me" 1 res.Engine.cs_max

let test_ba_zero_levels_is_base () =
  let make ctx = Ba_lock.lock (Ba_lock.create ~name:"ba0" ~levels:0 ~base:Tournament.make ctx) in
  let res = Harness.run_lock ~n:4 ~model:Memory.CC ~sched:(Sched.round_robin ())
      ~crash:Crash.none ~requests:4 ~make () in
  check cb "all done" true (Engine.total_completed res = 16);
  check ci "me" 1 res.Engine.cs_max

let test_ba_crash_sweep_under_storm () =
  (* Crash p0 at every op offset *while* a background FAS-gap storm pushes
     processes onto the slow paths — covers recovery of the deeper levels. *)
  let n = 4 and requests = 3 in
  for nth = 0 to 120 do
    let crash =
      Crash.all
        [
          Crash.at_op ~pid:0 ~nth Crash.After;
          Crash.fas_gap ~seed:(1000 + nth) ~rate:0.3 ~max_crashes:4 ~cell_suffix:".tail" ();
        ]
    in
    let cs ~pid:_ = for _ = 1 to 4 do Api.yield () done in
    let res =
      Harness.run_lock ~cs ~n ~model:Memory.CC ~sched:(Sched.random ~seed:nth) ~crash
        ~requests ~make:(ba_make ()) ~max_steps:2_000_000 ()
    in
    if res.Engine.deadlocked || res.Engine.timed_out then
      Alcotest.failf "stuck with crash at op %d" nth;
    check ci (Printf.sprintf "all done (op %d)" nth) (n * requests) (Engine.total_completed res);
    check ci (Printf.sprintf "me (op %d)" nth) 1 res.Engine.cs_max
  done

let test_ba_fcfs_no_failures () =
  (* The paper's lock satisfies FCFS in the absence of failures: the CS
     order equals the append order at the level-1 filter queue. *)
  let res =
    Harness.run_lock ~record:true ~trace_ops:true ~n:8 ~model:Memory.CC
      ~sched:(Sched.random ~seed:23) ~crash:Crash.none ~requests:1 ~make:(ba_make ()) ()
  in
  match Rme_check.Props.fcfs res ~tail_cell:"ba.l1.filter.tail" with
  | None -> ()
  | Some msg -> Alcotest.fail msg

let qcheck_ba_storm =
  QCheck.Test.make ~name:"ba-lock strong ME under mixed storms" ~count:30
    QCheck.(triple (int_range 4 12) (int_bound 9999) (int_bound 9999))
    (fun (n, seed, crash_seed) ->
      let crash =
        Crash.all
          [
            Crash.fas_gap ~seed:crash_seed ~rate:0.3 ~max_crashes:n ~cell_suffix:".tail" ();
            Crash.random ~seed:(crash_seed + 1) ~rate:0.003 ~max_crashes:n ();
          ]
      in
      let cs ~pid:_ = for _ = 1 to 3 do Api.yield () done in
      let res =
        Harness.run_lock ~cs ~n ~model:Memory.CC ~sched:(Sched.random ~seed) ~crash ~requests:4
          ~make:(ba_make ()) ~max_steps:3_000_000 ()
      in
      (not res.Engine.deadlocked) && (not res.Engine.timed_out)
      && Engine.total_completed res = n * 4
      && res.Engine.cs_max = 1)

let qcheck_ba_configs =
  (* The transformation is configuration-agnostic: any level count x base
     lock x tracking mode yields a strongly recoverable lock. *)
  QCheck.Test.make ~name:"ba-lock across configurations" ~count:40
    QCheck.(quad (int_bound 4) (int_bound 2) bool (int_bound 9999))
    (fun (levels, base_ix, track_level, seed) ->
      let base =
        match base_ix with 0 -> Jjj_tree.make | 1 -> Tournament.make | _ -> Bakery.make
      in
      let make ctx = Ba_lock.lock (Ba_lock.create ~name:"baq" ~levels ~track_level ~base ctx) in
      let crash = Crash.fas_gap ~seed ~rate:0.3 ~max_crashes:4 ~cell_suffix:".tail" () in
      let res =
        Harness.run_lock ~n:5 ~model:Memory.CC ~sched:(Sched.random ~seed) ~crash ~requests:3
          ~make ~max_steps:3_000_000 ()
      in
      (not res.Engine.deadlocked) && (not res.Engine.timed_out)
      && Engine.total_completed res = 15
      && res.Engine.cs_max = 1)

let qcheck_ba_dsm_storm =
  QCheck.Test.make ~name:"ba-lock under DSM storms" ~count:15
    QCheck.(pair (int_range 4 8) (int_bound 9999))
    (fun (n, seed) ->
      let crash = Crash.fas_gap ~seed ~rate:0.3 ~max_crashes:n ~cell_suffix:".tail" () in
      let res =
        Harness.run_lock ~n ~model:Memory.DSM ~sched:(Sched.random ~seed) ~crash ~requests:4
          ~make:(ba_make ()) ~max_steps:3_000_000 ()
      in
      (not res.Engine.deadlocked) && (not res.Engine.timed_out)
      && Engine.total_completed res = n * 4
      && res.Engine.cs_max = 1)

let () =
  Alcotest.run "sa_ba"
    [
      ( "sa-lock",
        [
          Alcotest.test_case "all fast without failures" `Quick test_sa_all_fast_without_failures;
          Alcotest.test_case "slow path on unsafe failure" `Quick test_sa_slow_path_on_unsafe_failure;
          Alcotest.test_case "path persisted across crash" `Quick test_sa_path_persisted_across_crash;
        ] );
      ( "ba-lock",
        [
          Alcotest.test_case "me/sf under storm" `Quick test_ba_me_sf_storm;
          Alcotest.test_case "no escalation without failures" `Quick
            test_ba_no_escalation_without_failures;
          Alcotest.test_case "escalation happens" `Quick test_ba_escalation_happens;
          Alcotest.test_case "level bound (thm 5.17)" `Slow test_ba_level_bound_thm_5_17;
          Alcotest.test_case "rmr sublinear in F (thm 5.18)" `Slow test_ba_rmr_sublinear_in_f;
          Alcotest.test_case "capped by base lock (thm 5.19)" `Quick test_ba_capped_by_base_lock;
          Alcotest.test_case "weak-me per filter (thm 4.2)" `Quick test_ba_weak_me_per_filter;
          Alcotest.test_case "locality (thm 5.12)" `Quick test_ba_locality;
          Alcotest.test_case "batch failures (s7.1)" `Quick test_ba_batch_failures;
          Alcotest.test_case "batches don't escalate (thm 7.1)" `Quick
            test_ba_batches_do_not_escalate_thm_7_1;
          Alcotest.test_case "level tracking: same semantics" `Quick
            test_ba_tracked_equivalent_semantics;
          Alcotest.test_case "level tracking: not costlier" `Quick
            test_ba_tracked_cheaper_super_passages;
          Alcotest.test_case "fcfs without failures" `Quick test_ba_fcfs_no_failures;
          Alcotest.test_case "crash sweep under storm" `Slow test_ba_crash_sweep_under_storm;
          Alcotest.test_case "one level = sa" `Quick test_ba_one_level_equals_sa;
          Alcotest.test_case "zero levels = base" `Quick test_ba_zero_levels_is_base;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_ba_storm; qcheck_ba_dsm_storm; qcheck_ba_configs ] );
    ]
