(* Tests for the non-recoverable MCS baselines: mutual exclusion and FCFS in
   crash-free runs, O(1) RMR per passage, and the deadlock under crashes
   that motivates recoverable locks. *)

open Rme_sim
open Rme_locks

let check = Alcotest.check

let ci = Alcotest.int

let cb = Alcotest.bool

let run ?record ?(model = Memory.CC) ?(crash = Crash.none) ?(sched = Sched.round_robin ())
    ?(n = 4) ?(requests = 6) ?cs ?max_steps ~make () =
  Harness.run_lock ?record ?cs ?max_steps ~n ~model ~sched ~crash ~requests ~make ()

let assert_clean res ~n ~requests =
  check cb "no deadlock" false res.Engine.deadlocked;
  check cb "no timeout" false res.Engine.timed_out;
  check ci "all satisfied" (n * requests) (Engine.total_completed res);
  check ci "mutual exclusion" 1 res.Engine.cs_max

(* Mutual exclusion observed through a racy counter: any overlap loses
   updates. *)
let run_with_counter ?(model = Memory.CC) ?(sched = Sched.round_robin ()) ~n ~requests ~make () =
  let counter = ref None in
  let res =
    Engine.run ~n ~model ~sched ~crash:Crash.none
      ~setup:(fun ctx ->
        let lock = make ctx in
        let c = Harness.counter_cell ctx in
        counter := Some (Engine.Ctx.memory ctx, c);
        (lock, c))
      ~body:(fun (lock, c) ~pid ->
        Harness.standard_body ~cs:(Harness.racy_increment c) ~lock ~requests pid)
      ()
  in
  let mem, c = Option.get !counter in
  (res, Memory.peek mem c)

let makes = [ ("mcs", Mcs.make); ("mcs-be", Mcs_be.make); ("clh", Clh.make) ]

let test_me_no_failures make model sched () =
  let n = 5 and requests = 8 in
  let res = run ~model ~sched ~n ~requests ~make () in
  assert_clean res ~n ~requests

let test_counter_exact make () =
  let n = 4 and requests = 10 in
  let res, total = run_with_counter ~sched:(Sched.random ~seed:3) ~n ~requests ~make () in
  assert_clean res ~n ~requests;
  check ci "no lost update" (n * requests) total

let test_single_process make () =
  let res = run ~n:1 ~requests:3 ~make () in
  assert_clean res ~n:1 ~requests:3

let test_rmr_constant_per_passage make () =
  (* Failure-free: max RMR per passage must not grow with n. *)
  let rmr_at n =
    let res = run ~n ~requests:4 ~sched:(Sched.random ~seed:1) ~make () in
    Engine.max_rmr res
  in
  let r4 = rmr_at 4 and r16 = rmr_at 16 in
  check cb (Printf.sprintf "O(1) rmr (r4=%d r16=%d)" r4 r16) true (r16 <= r4 + 2)

let test_dsm_spin_local make () =
  (* Under DSM, spinning must be on local cells: RMRs stay bounded even with
     heavy contention. *)
  let res = run ~model:Memory.DSM ~n:8 ~requests:5 ~sched:(Sched.random ~seed:9) ~make () in
  assert_clean res ~n:8 ~requests:5;
  check cb (Printf.sprintf "bounded rmr %d" (Engine.max_rmr res)) true (Engine.max_rmr res <= 12)

let test_fcfs make () =
  (* In a crash-free run, CS order must follow queue-append order.  We check
     a weaker observable: with a round-robin scheduler and n processes each
     doing 1 request, every process gets exactly one CS (no barging). *)
  let res = run ~record:true ~n:6 ~requests:1 ~make () in
  assert_clean res ~n:6 ~requests:1;
  let cs_order =
    List.filter_map
      (function
        | Event.Note { note = Event.Seg Event.Cs_begin; pid; _ } -> Some pid
        | _ -> None)
      res.Engine.events
  in
  check ci "everyone ran CS once" 6 (List.length cs_order);
  check ci "distinct" 6 (List.length (List.sort_uniq compare cs_order))

let test_mcs_deadlocks_on_crash () =
  (* A crash while holding the plain MCS lock wedges the queue: the crashed
     process restarts, enqueues a fresh request behind its own dead node and
     everyone spins forever.  This is the behaviour RME fixes. *)
  (* p1 is the first lock holder under round-robin; crash it right after it
     acquires (Lock_acquired is its 4th note).  Its restart reinitialises and
     re-enqueues its own node, severing the link its waiters spin on. *)
  let res =
    run ~n:3 ~requests:2 ~crash:(Crash.on_kind ~pid:1 ~kind:Api.Note ~occurrence:3 Crash.After)
      ~max_steps:20_000 ~make:Mcs.make ()
  in
  check cb "deadlocked or stuck" true
    (res.Engine.deadlocked || res.Engine.timed_out
    || Engine.total_completed res < 6)

let per_lock_cases =
  List.concat_map
    (fun (name, make) ->
      [
        Alcotest.test_case (name ^ " me cc rr") `Quick (test_me_no_failures make Memory.CC (Sched.round_robin ()));
        Alcotest.test_case (name ^ " me cc random") `Quick
          (test_me_no_failures make Memory.CC (Sched.random ~seed:5));
        Alcotest.test_case (name ^ " me dsm random") `Quick
          (test_me_no_failures make Memory.DSM (Sched.random ~seed:6));
        Alcotest.test_case (name ^ " counter exact") `Quick (test_counter_exact make);
        Alcotest.test_case (name ^ " single process") `Quick (test_single_process make);
        Alcotest.test_case (name ^ " O(1) rmr") `Quick (test_rmr_constant_per_passage make);
        Alcotest.test_case (name ^ " dsm local spin") `Quick (test_dsm_spin_local make);
        Alcotest.test_case (name ^ " fcfs") `Quick (test_fcfs make);
      ])
    makes

let () =
  Alcotest.run "mcs"
    [
      ("baseline", per_lock_cases);
      ("crash", [ Alcotest.test_case "plain mcs wedges on crash" `Quick test_mcs_deadlocks_on_crash ]);
    ]
