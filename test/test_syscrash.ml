(* System-wide crash model: engine semantics, the JJJ/DM locks, and the
   record/replay closure over asynchronous and system crashes.

   The model under test is Jayanti-Jayanti-Joshi (arXiv 2302.00748): at one
   engine step every process loses its continuation while NVRAM persists,
   and every live process restarts through its recovery section. *)

open Rme_sim
open Rme_locks
open Rme_check

let check = Alcotest.check

let ci = Alcotest.int

let cb = Alcotest.bool

let run_jjj ?(n = 3) ?(requests = 2) ?record ~crash () =
  Harness.run_lock ?record ~n ~model:Memory.CC ~sched:(Sched.round_robin ()) ~crash ~requests
    ~make:Jjj_sys.make ()

(* ------------------------------------------------------------------ *)
(* Engine semantics of a system crash                                  *)
(* ------------------------------------------------------------------ *)

let test_system_crash_erases_everyone () =
  let res = run_jjj ~record:true ~crash:(Crash.system_at ~step:25) () in
  check ci "one system crash" 1 res.Engine.system_crashes;
  (* Every process was struck at once: n per-process crash events at the
     same step as the Sys_crash marker. *)
  let sys_step =
    match
      List.find_opt (function Event.Sys_crash _ -> true | _ -> false) res.Engine.events
    with
    | Some (Event.Sys_crash { step }) -> step
    | _ -> Alcotest.fail "no Sys_crash event recorded"
  in
  let struck =
    List.filter
      (function Event.Crash { step; _ } -> step = sys_step | _ -> false)
      res.Engine.events
  in
  check ci "all three processes struck" 3 (List.length struck);
  check ci "total crashes = n" 3 res.Engine.total_crashes;
  (* NVRAM persisted and recovery worked: everyone still satisfied every
     request, one holder at a time. *)
  check cb "no deadlock" false res.Engine.deadlocked;
  check cb "no timeout" false res.Engine.timed_out;
  check ci "all requests satisfied" 6 (Engine.total_completed res);
  check ci "mutual exclusion" 1 res.Engine.cs_max

let test_system_crash_reaches_parked () =
  (* p1 parks on a gate p0 never opens before the crash; the system crash
     must discard the parked continuation too (both processes restart). *)
  let res =
    Engine.run ~record:true ~n:2 ~model:Memory.CC ~sched:(Sched.round_robin ())
      ~crash:(Crash.system_at ~step:6)
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"gate" 0)
      ~body:(fun gate ~pid ->
        if Api.completed_requests () = 0 then begin
          Api.note (Event.Seg Event.Req_begin);
          if pid = 0 then begin
            (* Dawdle long enough that the crash lands while p1 is parked. *)
            for _ = 1 to 8 do
              Api.yield ()
            done;
            Api.write gate 1
          end
          else Api.spin_until gate (Api.Ge 1);
          Api.note (Event.Seg Event.Req_done)
        end)
      ()
  in
  check ci "one system crash" 1 res.Engine.system_crashes;
  check ci "both processes crashed" 2 res.Engine.total_crashes;
  check cb "run completed" false (res.Engine.deadlocked || res.Engine.timed_out)

let test_op_index_continues_across_system_crash () =
  (* op_index is the absolute per-process instruction counter; a system
     crash must not reset it (pinned: at_op coordinates stay meaningful
     across whole-system restarts). *)
  let seen : (int * int) list ref = ref [] in
  let _ =
    Engine.run ~n:2 ~model:Memory.CC ~sched:(Sched.round_robin ())
      ~crash:(Crash.system_at ~step:5)
      ~on_op:(fun info -> seen := (info.Crash.pid, info.Crash.op_index) :: !seen)
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
      ~body:(fun c ~pid:_ ->
        if Api.completed_requests () = 0 then begin
          Api.note (Event.Seg Event.Req_begin);
          ignore (Api.faa c 1);
          ignore (Api.faa c 1);
          ignore (Api.faa c 1);
          Api.note (Event.Seg Event.Req_done)
        end)
      ()
  in
  let seen = List.rev !seen in
  List.iter
    (fun pid ->
      let indices = List.filter_map (fun (p, i) -> if p = pid then Some i else None) seen in
      List.iteri
        (fun k i -> check ci (Printf.sprintf "p%d op %d consecutive" pid k) k i)
        indices;
      check cb
        (Printf.sprintf "p%d re-executed ops after the crash" pid)
        true
        (List.length indices > 5))
    [ 0; 1 ]

(* ------------------------------------------------------------------ *)
(* JJJ system-crash lock                                               *)
(* ------------------------------------------------------------------ *)

let test_jjj_sys_failure_free () =
  let res = run_jjj ~crash:Crash.none () in
  check cb "clean run" false (res.Engine.deadlocked || res.Engine.timed_out);
  check ci "all satisfied" 6 (Engine.total_completed res);
  check ci "one holder at a time" 1 res.Engine.cs_max

let test_jjj_sys_fcfs_failure_free () =
  let res = run_jjj ~record:true ~crash:Crash.none () in
  (* Ticket order is announce order; under round robin the CS order must
     follow pid order cyclically. *)
  let cs_order =
    List.filter_map
      (function Event.Note { note = Event.Seg Event.Cs_begin; pid; _ } -> Some pid | _ -> None)
      res.Engine.events
  in
  check ci "six CS entries" 6 (List.length cs_order);
  match cs_order with
  | [ a; b; c; a'; b'; c' ] ->
      check cb "first round is a permutation" true (List.sort compare [ a; b; c ] = [ 0; 1; 2 ]);
      check cb "second round repeats ticket order" true ((a, b, c) = (a', b', c'))
  | _ -> Alcotest.fail "unexpected CS order shape"

let test_jjj_sys_survives_system_storms () =
  (* A pulse of system-wide crashes at many different phases: the lock must
     always recover and satisfy every request, exactly one holder at a
     time. *)
  for seed = 0 to 19 do
    let crash = Crash.system_storm ~seed ~rate:0.02 ~max_crashes:3 ~gap:20 () in
    let res =
      Harness.run_lock ~n:3 ~model:Memory.CC ~sched:(Sched.random ~seed:(seed + 100)) ~crash
        ~requests:2 ~make:Jjj_sys.make ~max_steps:50_000 ()
    in
    if res.Engine.deadlocked || res.Engine.timed_out then
      Alcotest.failf "seed %d: stalled (%a)" seed
        Fmt.(option Engine.pp_stall)
        res.Engine.stall;
    check ci (Printf.sprintf "seed %d: all satisfied" seed) 6 (Engine.total_completed res);
    check ci (Printf.sprintf "seed %d: ME" seed) 1 res.Engine.cs_max
  done

let explore_lock ~make ~crash ~max_runs ~n ~requests =
  Explore.explore ~max_runs ~max_steps:4_000 ~n ~model:Memory.CC ~crash
    ~setup:(fun ctx -> make ctx)
    ~body:(fun lock ~pid -> Harness.standard_body ~lock ~requests pid)
    ~check:(fun res ->
      match Props.mutual_exclusion res with
      | Some m -> Some m
      | None -> Props.starvation_freedom res ~requests)
    ()

let test_jjj_sys_explored_under_system_crashes () =
  (* Bounded schedule exploration with a system crash pinned at each early
     step: ME and SF must hold in every explored interleaving.  (System
     plans are POR-[Sensitive], so the reduction is off and the full tree
     is out of reach — this is a bounded search, not an exhaustive one;
     the sweep covers site enumeration.) *)
  List.iter
    (fun step ->
      let out =
        explore_lock ~make:Jjj_sys.make
          ~crash:(fun () -> Crash.system_at ~step)
          ~max_runs:40_000 ~n:2 ~requests:1
      in
      match out.Explore.violation with
      | Some (msg, _) -> Alcotest.failf "system crash at step %d: %s" step msg
      | None -> ())
    [ 0; 3; 7; 12; 20 ]

let test_dm_locks_survive_system_crash () =
  List.iter
    (fun (name, make) ->
      let crash () = Crash.system_at ~step:9 in
      let out = explore_lock ~make ~crash ~max_runs:60_000 ~n:2 ~requests:1 in
      match out.Explore.violation with
      | Some (msg, _) -> Alcotest.failf "%s: %s" name msg
      | None -> ())
    [
      ("dm-jjj", Dm_lock.make_over ~name:"dm-jjj" ~base:Jjj_tree.make);
      ("dm-ba", Dm_lock.make_over ~name:"dm-ba" ~base:Ba_lock.default);
    ]

(* A deliberately unrecoverable ticket lock: the doorway publishes nothing,
   so a system crash between the FAA and the spin (or while holding) loses
   the ticket forever and wedges the grant counter.  The shape the JJJ
   repair machinery exists to fix. *)
let naive_ticket_make ctx =
  let mem = Engine.Ctx.memory ctx in
  let id = Engine.Ctx.register_lock ctx "naive-ticket" in
  let seq = Memory.alloc mem ~name:"naive.seq" 0 in
  let grant = Memory.alloc mem ~name:"naive.grant" 0 in
  Lock.instrument ~id ~name:"naive-ticket"
    ~acquire:(fun ~pid:_ ->
      let t = Api.faa seq 1 in
      Api.spin_until grant (Api.Eq t))
    ~release:(fun ~pid:_ ->
      let (_ : int) = Api.faa grant 1 in
      ())
    ()

let test_naive_ticket_breaks_under_system_crash () =
  (* Some pinned system-crash step must produce a stall (lost ticket):
     the planted bug the chaos adversary is later required to find. *)
  let broke = ref false in
  let step = ref 0 in
  while (not !broke) && !step < 30 do
    let out =
      explore_lock ~make:naive_ticket_make
        ~crash:(fun () -> Crash.system_at ~step:!step)
        ~max_runs:20_000 ~n:2 ~requests:1
    in
    if out.Explore.violation <> None then broke := true;
    incr step
  done;
  check cb "naive ticket lock wedges under some system crash" true !broke

(* ------------------------------------------------------------------ *)
(* por_class: every constructor, table-driven                          *)
(* ------------------------------------------------------------------ *)

let por = Alcotest.testable (fun ppf -> function
    | Crash.Robust pids -> Fmt.pf ppf "Robust %a" Fmt.(Dump.list int) pids
    | Crash.Sensitive -> Fmt.pf ppf "Sensitive")
    (fun a b ->
      match (a, b) with
      | Crash.Sensitive, Crash.Sensitive -> true
      | Crash.Robust a, Crash.Robust b ->
          List.sort compare a = List.sort compare b
      | _ -> false)

let test_por_class_table () =
  (* One row per constructor: which plans the explorer's partial-order
     reduction may stay on under.  A new constructor must be added here
     (the compiler cannot enforce it, so the table at least documents the
     full set). *)
  let rows =
    [
      ("none", Crash.none, Crash.Robust []);
      ("at_op", Crash.at_op ~pid:1 ~nth:4 Crash.Before, Crash.Robust [ 1 ]);
      ("on_kind", Crash.on_kind ~pid:2 ~kind:Api.Fas ~occurrence:0 Crash.After, Crash.Robust [ 2 ]);
      ("on_cell", Crash.on_cell ~pid:0 ~cell:"x" ~occurrence:1 Crash.Before, Crash.Robust [ 0 ]);
      ( "on_custom_note",
        Crash.on_custom_note ~pid:3 ~tag:"t" ~occurrence:0 Crash.Before,
        Crash.Robust [ 3 ] );
      ( "random (single pid)",
        Crash.random ~seed:0 ~rate:0.1 ~max_crashes:1 ~pids:[ 2 ] (),
        Crash.Robust [ 2 ] );
      ( "random (two pids)",
        Crash.random ~seed:0 ~rate:0.1 ~max_crashes:1 ~pids:[ 0; 1 ] (),
        Crash.Sensitive );
      ("random (all pids)", Crash.random ~seed:0 ~rate:0.1 ~max_crashes:1 (), Crash.Sensitive);
      ("fas_gap", Crash.fas_gap ~seed:0 ~rate:0.1 ~max_crashes:1 (), Crash.Sensitive);
      ("async_at", Crash.async_at [ (5, 0) ], Crash.Sensitive);
      ("batch", Crash.batch ~step:5 ~pids:[ 0; 1 ], Crash.Sensitive);
      ( "every_nth_passage",
        Crash.every_nth_passage ~pid:1 ~period:2 ~max_crashes:3,
        Crash.Robust [ 1 ] );
      ( "target_holder",
        Crash.target_holder ~seed:0 ~rate:0.1 ~max_crashes:1 (),
        Crash.Sensitive );
      ( "target_window",
        Crash.target_window ~seed:0 ~rate:0.1 ~max_crashes:1 (),
        Crash.Sensitive );
      ("repeat_offender", Crash.repeat_offender ~victim:2 ~gap:3 ~times:2, Crash.Robust [ 2 ]);
      ("storm", Crash.storm ~seed:0 ~rate:0.1 ~max_crashes:1 ~gap:5 (), Crash.Sensitive);
      ("system_at", Crash.system_at ~step:5, Crash.Sensitive);
      ("system_random", Crash.system_random ~seed:0 ~rate:0.1 ~max_crashes:1 (), Crash.Sensitive);
      ( "system_storm",
        Crash.system_storm ~seed:0 ~rate:0.1 ~max_crashes:1 ~gap:5 (),
        Crash.Sensitive );
      (* Unions: robust members merge victim sets; any sensitive member
         poisons the union. *)
      ( "all (robust union)",
        Crash.all [ Crash.at_op ~pid:0 ~nth:1 Crash.Before; Crash.at_op ~pid:2 ~nth:3 Crash.After ],
        Crash.Robust [ 0; 2 ] );
      ( "all (sensitive poisons)",
        Crash.all [ Crash.at_op ~pid:0 ~nth:1 Crash.Before; Crash.system_at ~step:2 ],
        Crash.Sensitive );
      ("all (empty)", Crash.all [], Crash.Robust []);
      (* The replay composite: per-op records stay robust, any async or
         system record makes it sensitive. *)
      ( "replay_fired (ops only)",
        Crash.replay_fired
          [ { Crash.f_pid = 1; f_op_index = 3; f_step = 9; f_point = Crash.After; f_async = false } ],
        Crash.Robust [ 1 ] );
      ( "replay_fired (system)",
        Crash.replay_fired
          [ { Crash.f_pid = -1; f_op_index = -1; f_step = 9; f_point = Crash.Before; f_async = true } ],
        Crash.Sensitive );
    ]
  in
  List.iter (fun (name, plan, expected) -> check por name expected (Crash.por_class plan)) rows;
  (* record_fired is a transparent wrapper: the class must pass through. *)
  let wrapped, _ = Crash.record_fired (Crash.at_op ~pid:1 ~nth:0 Crash.Before) in
  check por "record_fired preserves por_class" (Crash.Robust [ 1 ]) (Crash.por_class wrapped)

(* ------------------------------------------------------------------ *)
(* Storm cooldown at backoff = 1.0 (the documented default)            *)
(* ------------------------------------------------------------------ *)

let op_info ?(pid = 0) ?(step = 0) ?(op_index = 0) () =
  { Crash.pid; step; op_index; kind = Api.Read; cell = None; note = None; unsafe_wrt = [] }

let is_crash = function Crash.Crash _ -> true | Crash.No_crash -> false

let test_storm_constant_gap () =
  (* backoff = 1.0 (the default) must keep the cooldown gap constant:
     crashes at steps 0, gap, 2*gap, ... at rate 1. *)
  let plan = Crash.storm ~seed:0 ~rate:1.0 ~max_crashes:3 ~gap:10 () in
  let at step = is_crash (Crash.on_op plan (op_info ~step ())) in
  check cb "fires at 0" true (at 0);
  check cb "cooling at 9" false (at 9);
  check cb "fires at 10" true (at 10);
  check cb "cooling at 19" false (at 19);
  check cb "fires at 20 (gap did not grow)" true (at 20);
  check cb "budget spent" false (at 1000)

let test_system_storm_constant_gap () =
  let plan = Crash.system_storm ~seed:0 ~rate:1.0 ~max_crashes:3 ~gap:10 () in
  let at step = Crash.system plan ~step in
  check cb "fires at 0" true (at 0);
  check cb "cooling at 9" false (at 9);
  check cb "fires at 10" true (at 10);
  check cb "cooling at 19" false (at 19);
  check cb "fires at 20 (gap did not grow)" true (at 20);
  check cb "budget spent" false (at 1000)

let test_system_storm_backoff_grows () =
  let plan = Crash.system_storm ~seed:0 ~rate:1.0 ~max_crashes:3 ~gap:10 ~backoff:2.0 () in
  let at step = Crash.system plan ~step in
  check cb "fires at 0" true (at 0);
  check cb "cooling at 9" false (at 9);
  check cb "fires at 10" true (at 10);
  (* Gap doubled on firing: next window opens at 10 + 20. *)
  check cb "cooling at 29" false (at 29);
  check cb "fires at 30" true (at 30)

(* ------------------------------------------------------------------ *)
(* record_fired / replay_fired closure over every crash axis           *)
(* ------------------------------------------------------------------ *)

let test_record_fired_captures_async_and_system () =
  (* Synthetic drive of all three axes through one recorded union plan. *)
  let plan, fired =
    Crash.record_fired
      (Crash.all
         [
           Crash.at_op ~pid:1 ~nth:4 Crash.After;
           Crash.async_at [ (7, 0) ];
           Crash.system_at ~step:11;
         ])
  in
  ignore (Crash.on_op plan (op_info ~pid:1 ~op_index:4 ~step:3 ()));
  ignore (Crash.async plan ~step:7);
  ignore (Crash.system plan ~step:11);
  match fired () with
  | [ op; asy; sys ] ->
      check ci "op pid" 1 op.Crash.f_pid;
      check ci "op index" 4 op.Crash.f_op_index;
      check cb "op is synchronous" false op.Crash.f_async;
      check ci "async pid" 0 asy.Crash.f_pid;
      check ci "async step" 7 asy.Crash.f_step;
      check cb "async flagged" true asy.Crash.f_async;
      check ci "async has no op index" (-1) asy.Crash.f_op_index;
      check ci "system pid is -1" (-1) sys.Crash.f_pid;
      check ci "system step" 11 sys.Crash.f_step;
      check cb "system flagged async" true sys.Crash.f_async
  | f -> Alcotest.failf "expected 3 recorded crashes, got %d" (List.length f)

(* Run [make] under a recorded adversary, then replay the fired record on
   the same schedule and require the identical crash history and outcome. *)
let roundtrip ~n ~requests ~make ~adversary () =
  let decisions = Vec.create () in
  let plan, fired = Crash.record_fired (adversary ()) in
  let first =
    Harness.run_lock ~record:true ~n ~model:Memory.CC
      ~sched:(Sched.recording ~inner:(Sched.random ~seed:42) ~decisions)
      ~crash:plan ~requests ~make ()
  in
  let replayed =
    Harness.run_lock ~record:true ~n ~model:Memory.CC
      ~sched:(Sched.trace ~decisions ~record:(Vec.create ()) ())
      ~crash:(Crash.replay_fired (fired ())) ~requests ~make ()
  in
  let crash_history res =
    List.filter_map
      (function
        | Event.Crash { step; pid; _ } -> Some (step, pid)
        | Event.Sys_crash { step } -> Some (step, -1)
        | _ -> None)
      res.Engine.events
  in
  check cb "some crashes fired" true (fired () <> []);
  check cb "identical crash history" true (crash_history first = crash_history replayed);
  check ci "identical system crash count" first.Engine.system_crashes
    replayed.Engine.system_crashes;
  check ci "identical total crashes" first.Engine.total_crashes replayed.Engine.total_crashes;
  check ci "identical completions" (Engine.total_completed first)
    (Engine.total_completed replayed);
  check ci "identical steps" first.Engine.steps replayed.Engine.steps

let test_replay_roundtrip_batch () =
  roundtrip ~n:3 ~requests:2 ~make:Wr_lock.make
    ~adversary:(fun () -> Crash.batch ~step:30 ~pids:[ 0; 2 ])
    ()

let test_replay_roundtrip_system_storm () =
  roundtrip ~n:3 ~requests:2 ~make:Jjj_sys.make
    ~adversary:(fun () -> Crash.system_storm ~seed:7 ~rate:0.05 ~max_crashes:2 ~gap:15 ())
    ()

let test_replay_roundtrip_mixed () =
  (* All three axes live in one run: synchronous random crashes on one pid,
     an asynchronous strike, and a system-wide crash. *)
  roundtrip ~n:3 ~requests:2 ~make:Jjj_sys.make
    ~adversary:(fun () ->
      Crash.all
        [
          Crash.random ~seed:3 ~rate:0.01 ~max_crashes:1 ~pids:[ 1 ] ();
          Crash.async_at [ (45, 2) ];
          Crash.system_at ~step:80;
        ])
    ()

(* ------------------------------------------------------------------ *)
(* Chaos and sweep under the system-wide model                         *)
(* ------------------------------------------------------------------ *)

(* The system-model sweep enumerates one plan per distinct discovery step
   and the JJJ lock must survive every one of them — the conformance
   matrix row this pins. *)
let test_jjj_sys_sweeps_clean_under_system_model () =
  let cfg =
    {
      Sweep.default_cfg with
      Sweep.crash_model = Sweep.System_wide;
      max_runs_per_plan = 60;
      max_steps = 4_000;
      site_cap = 24;
      plan_cap = 40;
      budget = 1;
    }
  in
  let subject =
    Sweep.standard_subject ~name:"jjj-sys" ~n:2 ~requests:1 ~cs_yields:2 ~recoverability:`Strong
      Jjj_sys.make
  in
  let rows = Sweep.matrix cfg ~model:Memory.CC ~subjects:[ subject ] in
  let row = List.hd rows in
  let swept_system_plans =
    (* plans_run counts No_crash too; at least one System plan must have run *)
    row.Sweep.row_campaign.Sweep.plans_run > 1
  in
  check cb "system plans were swept" true swept_system_plans;
  check ci "no failures" 0 (List.length (Sweep.matrix_failures rows));
  List.iter
    (fun (prop, verdict) ->
      check Alcotest.string (prop ^ " verdict") "pass" (Sweep.verdict_string verdict))
    row.Sweep.row_verdicts

(* A Chaos campaign with the system-storm adversary must discover the
   planted bug, confirm it by deterministic replay, shrink the witness —
   and the whole outcome must be byte-identical across domain counts. *)
let test_chaos_system_adversary_finds_planted_bug () =
  let case =
    {
      Chaos.case_name = "naive-ticket";
      case_make = naive_ticket_make;
      case_weak = false;
      case_ff_bound = None;
      case_abortable = false;
    }
  in
  let cfg = { Chaos.default_cfg with Chaos.max_steps = 40_000 } in
  let adversary =
    Chaos.Sys_storm { rate = 0.02; max_crashes = 2; gap = 60; backoff = 1.0 }
  in
  let outcome_for jobs =
    Chaos.campaign ~cfg ~jobs ~adversaries:[ adversary ] ~runs:24 ~seed_base:0 [ case ]
  in
  let o1 = outcome_for 1 in
  check cb "campaign found a violation" true (o1.Chaos.violations <> []);
  let v = List.hd o1.Chaos.violations in
  check cb "system crash fired" true
    (List.exists (fun (f : Crash.fired) -> f.f_async && f.f_pid < 0) v.Chaos.v_fired);
  check cb "replay confirmed the violation" true v.Chaos.v_replay_ok;
  let fingerprint (o : Chaos.outcome) =
    List.map
      (fun (v : Chaos.violation) ->
        (v.Chaos.v_case, v.Chaos.v_seed, v.Chaos.v_problems, v.Chaos.v_replay_ok,
         v.Chaos.v_witness))
      o.Chaos.violations
  in
  let fp1 = fingerprint o1 in
  List.iter
    (fun jobs ->
      let o = outcome_for jobs in
      check cb
        (Printf.sprintf "outcome identical at jobs=%d" jobs)
        true
        (fingerprint o = fp1 && o.Chaos.crashes = o1.Chaos.crashes))
    [ 2; 4 ]

let () =
  Alcotest.run "syscrash"
    [
      ( "engine",
        [
          Alcotest.test_case "system crash erases everyone" `Quick test_system_crash_erases_everyone;
          Alcotest.test_case "system crash reaches parked" `Quick test_system_crash_reaches_parked;
          Alcotest.test_case "op_index continues across system crash" `Quick
            test_op_index_continues_across_system_crash;
        ] );
      ( "jjj-sys",
        [
          Alcotest.test_case "failure free" `Quick test_jjj_sys_failure_free;
          Alcotest.test_case "FCFS" `Quick test_jjj_sys_fcfs_failure_free;
          Alcotest.test_case "survives system storms" `Quick test_jjj_sys_survives_system_storms;
          Alcotest.test_case "explored under system crashes" `Slow
            test_jjj_sys_explored_under_system_crashes;
          Alcotest.test_case "dm locks survive a system crash" `Slow
            test_dm_locks_survive_system_crash;
          Alcotest.test_case "naive ticket lock breaks" `Quick
            test_naive_ticket_breaks_under_system_crash;
        ] );
      ( "plans",
        [
          Alcotest.test_case "por_class table" `Quick test_por_class_table;
          Alcotest.test_case "storm constant gap (backoff 1)" `Quick test_storm_constant_gap;
          Alcotest.test_case "system storm constant gap" `Quick test_system_storm_constant_gap;
          Alcotest.test_case "system storm backoff grows" `Quick test_system_storm_backoff_grows;
        ] );
      ( "check",
        [
          Alcotest.test_case "jjj-sys sweeps clean under system model" `Quick
            test_jjj_sys_sweeps_clean_under_system_model;
          Alcotest.test_case "chaos system adversary finds planted bug" `Quick
            test_chaos_system_adversary_finds_planted_bug;
        ] );
      ( "record-replay",
        [
          Alcotest.test_case "record captures async and system" `Quick
            test_record_fired_captures_async_and_system;
          Alcotest.test_case "roundtrip: batch" `Quick test_replay_roundtrip_batch;
          Alcotest.test_case "roundtrip: system storm" `Quick test_replay_roundtrip_system_storm;
          Alcotest.test_case "roundtrip: mixed axes" `Quick test_replay_roundtrip_mixed;
        ] );
    ]
