(* The abort (impatience) axis: scenario grammar round-trips, the
   instrumentation milestones, the abort battery's negative space (each
   planted pathology trips exactly its own checker), the naive abortable
   TAS caught by no-lost-wakeup with a replay-confirmed witness, and the
   wr-abort acceptance runs — exploration under an impatient abort plan,
   seeded impatient-storm chaos, and 1/2/4-domain byte-identity. *)

open Rme_sim
open Rme_locks
module Chaos = Rme_check.Chaos
module Explore = Rme_check.Explore
module Props = Rme_check.Props
module Workload = Rme.Workload

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let has_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Scenario grammar round-trip                                         *)
(* ------------------------------------------------------------------ *)

let all_arms =
  [
    Workload.No_failures;
    Workload.Fas_storm { f = 3; rate = 0.5 };
    Workload.Random_storm { crashes = 2; rate = 0.01 };
    Workload.Batch { size = 2; at_step = 200; repeat = 2; gap = 1000 };
    Workload.Impatient { timeout_steps = 40; retries = 3; backoff = 2.0 };
  ]

let test_scenario_pp_roundtrip () =
  List.iter
    (fun sc ->
      let printed = Fmt.str "%a" Workload.pp_scenario sc in
      match Workload.scenario_of_string printed with
      | Some sc' ->
          check cb (Printf.sprintf "%s round-trips" printed) true (sc = sc')
      | None -> Alcotest.failf "pp rendering %S does not parse back" printed)
    all_arms

let test_scenario_compact_grammar () =
  let expect str sc =
    match Workload.scenario_of_string str with
    | Some sc' -> check cb (Printf.sprintf "%S parses" str) true (sc = sc')
    | None -> Alcotest.failf "compact form %S rejected" str
  in
  expect "none" Workload.No_failures;
  expect "fas:3" (Workload.Fas_storm { f = 3; rate = 0.5 });
  expect "storm:2" (Workload.Random_storm { crashes = 2; rate = 0.01 });
  expect "batch:2" (Workload.Batch { size = 2; at_step = 200; repeat = 1; gap = 1000 });
  expect "impatient:40" (Workload.Impatient { timeout_steps = 40; retries = 3; backoff = 2.0 });
  expect "impatient:40:2" (Workload.Impatient { timeout_steps = 40; retries = 2; backoff = 2.0 });
  expect "impatient:40:2:1.5"
    (Workload.Impatient { timeout_steps = 40; retries = 2; backoff = 1.5 })

let test_scenario_rejects_garbage () =
  List.iter
    (fun s ->
      check cb (Printf.sprintf "%S rejected" s) true (Workload.scenario_of_string s = None))
    [ ""; "bogus"; "impatient"; "impatient:x"; "impatient:40:y"; "fas"; "batch:"; "none:1" ]

(* ------------------------------------------------------------------ *)
(* pp_fired rendering of abort records                                 *)
(* ------------------------------------------------------------------ *)

let test_pp_ab_fired () =
  let s =
    Fmt.str "%a" Chaos.pp_ab_fired
      { Abort.a_pid = 2; a_op_index = -1; a_step = 311; a_async = true }
  in
  check Alcotest.string "async rendering" "abort:p2@async(step 311)" s;
  let s =
    Fmt.str "%a" Chaos.pp_ab_fired
      { Abort.a_pid = 1; a_op_index = 14; a_step = 7; a_async = false }
  in
  check Alcotest.string "op rendering" "abort:p1@op14(step 7)" s

(* ------------------------------------------------------------------ *)
(* Instrumentation milestones when release raises                      *)
(* ------------------------------------------------------------------ *)

exception Boom

let test_release_raises_still_notes () =
  let raised = ref false in
  let res =
    Engine.run ~record:true ~n:1 ~model:Memory.CC ~sched:(Sched.round_robin ())
      ~crash:Crash.none
      ~setup:(fun ctx ->
        let id = Engine.Ctx.register_lock ctx "boom" in
        Lock.instrument ~id ~name:"boom"
          ~acquire:(fun ~pid:_ -> ())
          ~release:(fun ~pid:_ -> raise Boom)
          ())
      ~body:(fun lock ~pid ->
        lock.Lock.acquire ~pid;
        try lock.Lock.release ~pid with Boom -> raised := true)
      ()
  in
  check cb "exception propagated out of release" true !raised;
  let notes =
    List.filter_map
      (function Event.Note { note; _ } -> Some note | _ -> None)
      res.Engine.events
  in
  check cb "Lock_release emitted before the raise" true (List.mem (Event.Lock_release 0) notes);
  check cb "Lock_released suppressed by the raise" false
    (List.mem (Event.Lock_released 0) notes)

(* ------------------------------------------------------------------ *)
(* Planted pathologies: each trips exactly its own checker             *)
(* ------------------------------------------------------------------ *)

(* A minimal correct abortable test-and-set with an injectable abort
   protocol body: acquisition competes via CAS (nothing registered, so
   withdrawing needs no shared-state repair) and the abort protocol runs
   [abort_work] before reporting [Aborted].  The two pathologies differ
   only in what [abort_work] costs. *)
let planted_abortable ~abort_work ctx =
  let mem = Engine.Ctx.memory ctx in
  let id = Engine.Ctx.register_lock ctx "planted" in
  let owner = Memory.alloc mem ~name:"planted.owner" 0 in
  Lock.instrument ~id ~name:"planted"
    ~try_abort:(fun ~pid:_ ->
      abort_work ();
      Harness.Aborted)
    ~acquire:(fun ~pid ->
      let rec go () =
        if not (Api.cas owner ~expect:0 ~value:(pid + 1)) then begin
          Api.spin_abortable owner (Api.Eq 0);
          if Api.poll_abort () then raise Api.Abort_signal;
          go ()
        end
      in
      go ())
    ~release:(fun ~pid:_ -> Api.write owner 0)
    ()

let run_planted ~abort_work =
  Harness.run_lock ~record:true ~max_steps:200_000 ~n:3 ~model:Memory.CC
    ~sched:(Sched.random ~seed:5)
    ~crash:Crash.none
    ~abort:(Abort.impatient ~timeout_steps:12 ())
    ~requests:2
    ~make:(fun ctx -> planted_abortable ~abort_work ctx)
    ()

let bounds = Props.default_abort_expect

let assert_trips_only res ~which =
  let liveness = Props.abort_liveness res ~bound:bounds.Props.liveness_bound ~supported:true in
  let wakeup = Props.no_lost_wakeup res ~bound:bounds.Props.overtake_bound in
  let rmr = Props.abort_rmr res ~bound:bounds.Props.rmr_bound in
  let expect name expected got =
    check cb
      (Printf.sprintf "%s %s" name (if expected then "trips" else "silent"))
      expected (got <> None)
  in
  expect "abort-liveness" (which = `Liveness) liveness;
  expect "no-lost-wakeup" (which = `Wakeup) wakeup;
  expect "abort-rmr" (which = `Rmr) rmr

let test_planted_slow_abort_trips_liveness () =
  (* The abort protocol spins ~600 steps on one cached cell: far over the
     own-step budget, but only one RMR's worth of coherence traffic. *)
  let scratch = ref None in
  let res =
    Harness.run_lock ~record:true ~max_steps:200_000 ~n:3 ~model:Memory.CC
      ~sched:(Sched.random ~seed:5)
      ~crash:Crash.none
      ~abort:(Abort.impatient ~timeout_steps:12 ())
      ~requests:2
      ~make:(fun ctx ->
        let mem = Engine.Ctx.memory ctx in
        scratch := Some (Memory.alloc mem ~name:"planted.scratch" 0);
        planted_abortable
          ~abort_work:(fun () ->
            let c = Option.get !scratch in
            for _ = 1 to 600 do
              ignore (Api.read c)
            done)
          ctx)
      ()
  in
  check cb "some abort resolved" true (res.Engine.aborts <> []);
  assert_trips_only res ~which:`Liveness

let test_planted_expensive_abort_trips_rmr () =
  (* The abort protocol touches 100 distinct cells, each a fresh cache
     miss: over the RMR budget, but well inside the own-step budget. *)
  let cells = ref [||] in
  let res =
    Harness.run_lock ~record:true ~max_steps:200_000 ~n:3 ~model:Memory.CC
      ~sched:(Sched.random ~seed:5)
      ~crash:Crash.none
      ~abort:(Abort.impatient ~timeout_steps:12 ())
      ~requests:2
      ~make:(fun ctx ->
        let mem = Engine.Ctx.memory ctx in
        cells :=
          Array.init 100 (fun i -> Memory.alloc mem ~name:(Printf.sprintf "planted.c%d" i) 0);
        planted_abortable
          ~abort_work:(fun () -> Array.iter (fun c -> ignore (Api.read c)) !cells)
          ctx)
      ()
  in
  check cb "some abort resolved" true (res.Engine.aborts <> []);
  assert_trips_only res ~which:`Rmr

let test_planted_cheap_abort_trips_nothing () =
  let res = run_planted ~abort_work:(fun () -> ()) in
  check cb "some abort resolved" true (res.Engine.aborts <> []);
  assert_trips_only res ~which:`None

(* The naive abortable TAS drops a posted grant on abort; some waiter
   parks forever on a hand-off nobody will repeat.  no_lost_wakeup is the
   checker built for exactly this signature. *)
let naive_tas_stall_res () =
  let rec hunt seed =
    if seed > 64 then Alcotest.fail "naive TAS never stalled in 64 seeds"
    else
      let res =
        Harness.run_lock ~record:true ~max_steps:60_000 ~n:3 ~model:Memory.CC
          ~sched:(Sched.random ~seed)
          ~crash:Crash.none
          ~abort:(Abort.impatient ~timeout_steps:15 ~retries:2 ())
          ~requests:3 ~make:Tas_abort.make_naive ()
      in
      if Props.no_lost_wakeup res ~bound:bounds.Props.overtake_bound <> None then res
      else hunt (seed + 1)
  in
  hunt 0

let test_naive_tas_trips_no_lost_wakeup () =
  let res = naive_tas_stall_res () in
  (match Props.no_lost_wakeup res ~bound:bounds.Props.overtake_bound with
  | Some msg ->
      check cb "reports a lost hand-off or overtake"
        true
        (has_sub ~sub:"hand-off was lost" msg || has_sub ~sub:"overtaken" msg)
  | None -> Alcotest.fail "unreachable");
  (* The correct variant is clean on the same workload, every seed. *)
  for seed = 0 to 16 do
    let res =
      Harness.run_lock ~record:true ~max_steps:60_000 ~n:3 ~model:Memory.CC
        ~sched:(Sched.random ~seed)
        ~crash:Crash.none
        ~abort:(Abort.impatient ~timeout_steps:15 ~retries:2 ())
        ~requests:3 ~make:Tas_abort.make ()
    in
    check cb
      (Printf.sprintf "correct tas-abort clean (seed %d)" seed)
      true
      (Props.no_lost_wakeup res ~bound:bounds.Props.overtake_bound = None)
  done

(* ------------------------------------------------------------------ *)
(* Chaos: the impatient storm catches the naive TAS, replay-faithfully  *)
(* ------------------------------------------------------------------ *)

let naive_case =
  {
    Chaos.case_name = "tas-abort-naive";
    case_make = Tas_abort.make_naive;
    case_weak = false;
    case_ff_bound = None;
    case_abortable = true;
  }

let test_impatient_storm_catches_naive_tas () =
  let outcome =
    Chaos.campaign ~adversaries:[ Chaos.default_impatient_storm ] ~runs:24 ~seed_base:0
      [ naive_case ]
  in
  check cb "some abort signals injected" true (outcome.Chaos.aborts > 0);
  match
    List.find_opt
      (fun v -> List.exists (has_sub ~sub:"no-lost-wakeup") v.Chaos.v_problems)
      outcome.Chaos.violations
  with
  | None -> Alcotest.failf "campaign missed the planted lost wakeup (%d runs)" outcome.Chaos.runs
  | Some v ->
      check cb "abort record non-empty" true (v.Chaos.v_ab_fired <> []);
      (* The fixed replay plan re-triggered the same property violation
         under the recorded schedule, and the shrunk witness still does. *)
      check cb "replay-confirmed" true v.Chaos.v_replay_ok;
      let cfg = Chaos.default_cfg in
      let check_res res =
        if Props.no_lost_wakeup res ~bound:bounds.Props.overtake_bound <> None then Some "nlw"
        else None
      in
      let res, mismatch =
        Chaos.replay cfg ~make:naive_case.Chaos.case_make ~fired:v.Chaos.v_fired
          ~ab_fired:v.Chaos.v_ab_fired ~decisions:v.Chaos.v_witness ()
      in
      check cb "shrunk witness replays faithfully" false mismatch;
      check cb "shrunk witness still violates" true (check_res res <> None)

(* ------------------------------------------------------------------ *)
(* Acceptance: wr-abort holds the abort battery                        *)
(* ------------------------------------------------------------------ *)

let wr_abort_make = (Rme.Spec.find_exn "wr-abort").Rme.Spec.make

let battery_check res =
  match
    Props.check_battery ~abort:Props.default_abort_expect res ~requests:1 ~weak_lock_ids:[]
  with
  | [] -> if res.Engine.deadlocked then Some "deadlock" else None
  | p :: _ -> Some p

let explore_wr_abort ~crash () =
  Explore.explore ~max_runs:40_000 ~max_steps:30_000 ~record:true
    ~abort:(fun () -> Abort.impatient ~timeout_steps:25 ~retries:2 ())
    ~n:2 ~model:Memory.CC ~crash ~setup:wr_abort_make
    ~body:(fun lock ~pid -> Harness.standard_body ~lock ~requests:1 pid)
    ~check:battery_check ()

(* Exhaustive acceptance: the impatient plan is Sensitive (its decisions
   read waiting ages), so it forces the unreduced tier, where the wr tree
   at n=2 is far beyond any test budget.  The robust {!Abort.at_op} plan
   keeps source-set POR sound — por_setup unions its victim into the
   crashy set — so every (victim, op-index) abort site is explored to
   exhaustion.  no_lost_wakeup needs a recorded history ([record] would
   also downgrade POR), so this pass holds the aggregate props — ME,
   deadlock-freedom, abort-liveness, abort-RMR — and the bounded
   impatient pass below covers the event-based checker. *)
let aggregate_check res =
  if res.Engine.cs_max > 1 then Some "mutual-exclusion"
  else if res.Engine.deadlocked then Some "deadlock"
  else
    match Props.abort_liveness res ~bound:bounds.Props.liveness_bound ~supported:true with
    | Some m -> Some ("abort-liveness: " ^ m)
    | None -> (
        match Props.abort_rmr res ~bound:bounds.Props.rmr_bound with
        | Some m -> Some ("abort-rmr: " ^ m)
        | None -> None)

let test_wr_abort_exhaustive_at_op () =
  List.iter
    (fun (victim, nth) ->
      let outcome =
        Explore.explore ~max_runs:400_000 ~max_steps:30_000 ~por:`Source
          ~abort:(fun () -> Abort.at_op ~pid:victim ~nth)
          ~n:2 ~model:Memory.CC
          ~crash:(fun () -> Crash.none)
          ~setup:wr_abort_make
          ~body:(fun lock ~pid -> Harness.standard_body ~lock ~requests:1 pid)
          ~check:aggregate_check ()
      in
      (match outcome.Explore.violation with
      | None -> ()
      | Some (msg, _) ->
          Alcotest.failf "wr-abort violated %s (abort at p%d op %d)" msg victim nth);
      check cb
        (Printf.sprintf "exhausted for abort at p%d op %d (%d runs)" victim nth
           outcome.Explore.runs)
        true outcome.Explore.exhausted)
    (List.concat_map (fun victim -> List.map (fun nth -> (victim, nth)) [ 2; 5; 9; 14 ]) [ 0; 1 ])

let test_wr_abort_explored_clean () =
  let outcome = explore_wr_abort ~crash:(fun () -> Crash.none) () in
  match outcome.Explore.violation with
  | None -> ()
  | Some (msg, _) -> Alcotest.failf "wr-abort violated %s under exploration" msg

let test_wr_abort_explored_clean_under_crashes () =
  (* The abort axis layered over a one-crash storm: wr-abort must hold the
     full battery on every interleaving the budget reaches. *)
  let outcome =
    explore_wr_abort ~crash:(fun () -> Crash.random ~seed:3 ~rate:0.02 ~max_crashes:1 ()) ()
  in
  match outcome.Explore.violation with
  | None -> ()
  | Some (msg, _) -> Alcotest.failf "wr-abort violated %s under crash+abort exploration" msg

let test_wr_abort_chaos_clean () =
  let case =
    {
      Chaos.case_name = "wr-abort";
      case_make = wr_abort_make;
      case_weak = false;
      case_ff_bound = None;
      case_abortable = true;
    }
  in
  let outcome =
    Chaos.campaign
      ~adversaries:
        [
          Chaos.default_impatient_storm;
          Chaos.Storm { rate = 0.004; max_crashes = 4; gap = 300; backoff = 2.0 };
        ]
      ~runs:10 ~seed_base:0 [ case ]
  in
  check ci "all runs completed" 20 outcome.Chaos.runs;
  check cb "abort signals injected" true (outcome.Chaos.aborts > 0);
  check cb "crashes injected" true (outcome.Chaos.crashes > 0);
  check ci "no violations" 0 (List.length outcome.Chaos.violations)

let test_wr_abort_parallel_byte_identical () =
  let outcome domains =
    Explore.explore_parallel ~max_runs:4_000 ~max_steps:30_000 ~record:true ~domains
      ~abort:(fun () -> Abort.impatient ~timeout_steps:25 ~retries:2 ())
      ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:wr_abort_make
      ~body:(fun lock ~pid -> Harness.standard_body ~lock ~requests:1 pid)
      ~check:battery_check ()
  in
  let o1 = outcome 1 and o2 = outcome 2 and o4 = outcome 4 in
  let triple o = (o.Explore.runs, o.Explore.exhausted, o.Explore.violation) in
  check cb "no violation at 1 domain" true (o1.Explore.violation = None);
  check cb "1 = 2 domains" true (triple o1 = triple o2);
  check cb "1 = 4 domains" true (triple o1 = triple o4)

let () =
  Alcotest.run "abort"
    [
      ( "scenario",
        [
          Alcotest.test_case "pp round-trips every arm" `Quick test_scenario_pp_roundtrip;
          Alcotest.test_case "compact grammar" `Quick test_scenario_compact_grammar;
          Alcotest.test_case "rejects garbage" `Quick test_scenario_rejects_garbage;
          Alcotest.test_case "pp_ab_fired" `Quick test_pp_ab_fired;
        ] );
      ( "milestones",
        [
          Alcotest.test_case "release raising still notes Lock_release" `Quick
            test_release_raises_still_notes;
        ] );
      ( "negative",
        [
          Alcotest.test_case "slow abort trips liveness only" `Quick
            test_planted_slow_abort_trips_liveness;
          Alcotest.test_case "expensive abort trips rmr only" `Quick
            test_planted_expensive_abort_trips_rmr;
          Alcotest.test_case "cheap abort trips nothing" `Quick
            test_planted_cheap_abort_trips_nothing;
          Alcotest.test_case "naive tas trips no-lost-wakeup only" `Quick
            test_naive_tas_trips_no_lost_wakeup;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "impatient storm catches naive tas" `Quick
            test_impatient_storm_catches_naive_tas;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "wr-abort exhaustive at-op aborts" `Slow
            test_wr_abort_exhaustive_at_op;
          Alcotest.test_case "wr-abort explored clean" `Slow test_wr_abort_explored_clean;
          Alcotest.test_case "wr-abort explored clean under crashes" `Slow
            test_wr_abort_explored_clean_under_crashes;
          Alcotest.test_case "wr-abort chaos clean" `Quick test_wr_abort_chaos_clean;
          Alcotest.test_case "wr-abort parallel byte-identical" `Slow
            test_wr_abort_parallel_byte_identical;
        ] );
    ]
