(* One parameterized suite over every strongly recoverable lock in the
   registry: mutual exclusion, starvation freedom, BCSR, crash-point sweeps,
   and property-based crash storms — plus per-family RMR-shape checks
   (bakery O(n), tournament O(log n), jjj sub-logarithmic, kport O(1)). *)

open Rme_sim
open Rme_locks

let check = Alcotest.check

let ci = Alcotest.int

let cb = Alcotest.bool

let strong_locks : (string * Lock.maker) list =
  [
    ("tas", Tas_lock.make);
    ("bakery", Bakery.make);
    ("tournament", Tournament.make);
    ("jjj", Jjj_tree.make);
    ("ramaraju", fun ctx -> Kport.as_lock (Kport.create ~k:(Engine.Ctx.n ctx) ctx));
    ("sa-tournament", fun ctx ->
      Sa_lock.lock (Sa_lock.create ~name:"sa" ~core:(Tournament.make ctx) ctx));
    ("ba-jjj", Ba_lock.default);
    ("ba-jjj-tracked", fun ctx ->
      Ba_lock.lock (Ba_lock.create ~name:"bat" ~track_level:true ~base:Jjj_tree.make ctx));
  ]

let run ?record ?(model = Memory.CC) ?(crash = Crash.none) ?(sched = Sched.round_robin ())
    ?(n = 5) ?(requests = 4) ?cs ?(max_steps = 3_000_000) ~make () =
  Harness.run_lock ?record ?cs ~max_steps ~n ~model ~sched ~crash ~requests ~make ()

let assert_clean res ~n ~requests =
  check cb "no deadlock" false res.Engine.deadlocked;
  check cb "no timeout" false res.Engine.timed_out;
  check ci "all satisfied" (n * requests) (Engine.total_completed res);
  check ci "mutual exclusion" 1 res.Engine.cs_max

let test_me_sf make model seed () =
  let n = 6 and requests = 5 in
  let sched = if seed = 0 then Sched.round_robin () else Sched.random ~seed in
  let res = run ~model ~sched ~n ~requests ~make () in
  assert_clean res ~n ~requests

let test_counter make () =
  let n = 4 and requests = 8 in
  let counter = ref None in
  let (_ : Engine.result) =
    Engine.run ~n ~model:Memory.CC ~sched:(Sched.random ~seed:11) ~crash:Crash.none
      ~setup:(fun ctx ->
        let lock = make ctx in
        let c = Harness.counter_cell ctx in
        counter := Some (Engine.Ctx.memory ctx, c);
        (lock, c))
      ~body:(fun (lock, c) ~pid ->
        Harness.standard_body ~cs:(Harness.racy_increment c) ~lock ~requests pid)
      ()
  in
  let mem, c = Option.get !counter in
  check ci "no lost update" (n * requests) (Memory.peek mem c)

let test_bcsr make () =
  (* Crash the first CS occupant inside its critical section: the run must
     stay mutually exclusive and complete (reentry, idempotent CS). *)
  let cs ~pid:_ = Api.note (Event.Custom "cs-work") in
  List.iter
    (fun victim ->
      let crash = Crash.on_custom_note ~pid:victim ~tag:"cs-work" ~occurrence:0 Crash.After in
      let res = run ~n:4 ~requests:3 ~crash ~cs ~make () in
      assert_clean res ~n:4 ~requests:3;
      check ci "crashed once" 1 res.Engine.total_crashes)
    [ 0; 2 ]

let test_me_sf_burst make () =
  (* Convoy-forming scheduler: long solo bursts stress hand-off paths. *)
  let res = run ~sched:(Sched.burst ~seed:21 ~len:12) ~n:5 ~requests:4 ~make () in
  assert_clean res ~n:5 ~requests:4

let test_single_process make () =
  let res = run ~n:1 ~requests:5 ~make () in
  assert_clean res ~n:1 ~requests:5

let test_two_processes_heavy make () =
  let res = run ~n:2 ~requests:20 ~sched:(Sched.random ~seed:31) ~make () in
  assert_clean res ~n:2 ~requests:20

let test_crash_sweep make () =
  (* Strong recoverability: crash p0 at every op offset — ME must NEVER be
     violated (unlike WR-Lock), and everything completes. *)
  let n = 3 and requests = 2 in
  List.iter
    (fun point ->
      for nth = 0 to 80 do
        let crash = Crash.at_op ~pid:0 ~nth point in
        let res = run ~n ~requests ~crash ~make () in
        if res.Engine.deadlocked || res.Engine.timed_out then
          Alcotest.failf "stuck with crash at op %d" nth;
        check ci (Printf.sprintf "all done (op %d)" nth) (n * requests)
          (Engine.total_completed res);
        check ci (Printf.sprintf "strong me (op %d)" nth) 1 res.Engine.cs_max
      done)
    [ Crash.Before; Crash.After ]

let test_crash_sweep_dsm make () =
  (* Same sweep under the DSM model: home-node bookkeeping and local-spin
     parking must recover identically. *)
  let n = 3 and requests = 2 in
  for nth = 0 to 60 do
    let crash = Crash.at_op ~pid:0 ~nth Crash.After in
    let res = run ~model:Memory.DSM ~n ~requests ~crash ~make () in
    if res.Engine.deadlocked || res.Engine.timed_out then
      Alcotest.failf "stuck with crash at op %d (dsm)" nth;
    check ci (Printf.sprintf "all done (dsm op %d)" nth) (n * requests)
      (Engine.total_completed res);
    check ci (Printf.sprintf "strong me (dsm op %d)" nth) 1 res.Engine.cs_max
  done

let qcheck_storm (name, make) =
  QCheck.Test.make
    ~name:(name ^ " survives crash storms with strong ME")
    ~count:40
    QCheck.(triple (int_range 2 6) (int_bound 9999) (int_bound 9999))
    (fun (n, seed, crash_seed) ->
      let crash = Crash.random ~seed:crash_seed ~rate:0.004 ~max_crashes:n () in
      let res =
        run ~n ~requests:3 ~crash ~sched:(Sched.random ~seed) ~make ()
      in
      (not res.Engine.deadlocked) && (not res.Engine.timed_out)
      && Engine.total_completed res = n * 3
      && res.Engine.cs_max = 1)

(* ------------------------------------------------------------------ *)
(* RMR shapes                                                          *)
(* ------------------------------------------------------------------ *)

let max_rmr_at make ~n ~model =
  let res = run ~model ~n ~requests:4 ~sched:(Sched.random ~seed:17) ~make () in
  Engine.max_rmr res

let test_bakery_linear_rmr () =
  let r4 = max_rmr_at Bakery.make ~n:4 ~model:Memory.CC in
  let r16 = max_rmr_at Bakery.make ~n:16 ~model:Memory.CC in
  check cb (Printf.sprintf "O(n) growth (%d -> %d)" r4 r16) true (r16 >= 2 * r4)

let test_tournament_log_rmr () =
  let r4 = max_rmr_at Tournament.make ~n:4 ~model:Memory.CC in
  let r16 = max_rmr_at Tournament.make ~n:16 ~model:Memory.CC in
  let r64 = max_rmr_at Tournament.make ~n:64 ~model:Memory.CC in
  (* log2: 2, 4, 6 levels — quadrupling n adds a roughly constant increment
     (logarithmic), far below the 16x of linear growth. *)
  let d1 = r16 - r4 and d2 = r64 - r16 in
  check cb
    (Printf.sprintf "log growth (%d %d %d)" r4 r16 r64)
    true
    (r64 > r4 && d2 <= d1 + 6 && r64 < 6 * r4)

let test_jjj_sublog_rmr () =
  let t64 = max_rmr_at Tournament.make ~n:64 ~model:Memory.CC in
  let j64 = max_rmr_at Jjj_tree.make ~n:64 ~model:Memory.CC in
  check cb (Printf.sprintf "jjj (%d) below tournament (%d) at n=64" j64 t64) true (j64 < t64);
  check ci "depth 4 at n=64" 4 (Jjj_tree.depth_for 64);
  check cb "branching >= 2" true (Jjj_tree.branching_for 64 >= 2)

let test_kport_flat_rmr () =
  let r4 = max_rmr_at (fun ctx -> Kport.as_lock (Kport.create ~k:4 ctx)) ~n:4 ~model:Memory.CC in
  let r32 =
    max_rmr_at (fun ctx -> Kport.as_lock (Kport.create ~k:32 ctx)) ~n:32 ~model:Memory.CC
  in
  check cb (Printf.sprintf "flat (%d -> %d)" r4 r32) true (r32 <= r4 + 2)

let test_sa_fast_path_flat () =
  let make ctx = Sa_lock.lock (Sa_lock.create ~core:(Bakery.make ctx) ctx) in
  let r4 = max_rmr_at make ~n:4 ~model:Memory.CC in
  let r32 = max_rmr_at make ~n:32 ~model:Memory.CC in
  check cb
    (Printf.sprintf "failure-free semi-adaptive is O(1) (%d -> %d)" r4 r32)
    true (r32 <= r4 + 4)

let test_dsm_all_bounded () =
  (* Under DSM every local-spin lock must stay RMR-bounded (tas excepted:
     it spins remotely by design). *)
  List.iter
    (fun (name, make) ->
      if name <> "tas" then begin
        let r = max_rmr_at make ~n:8 ~model:Memory.DSM in
        check cb (Printf.sprintf "%s dsm rmr bounded (%d)" name r) true (r <= 150)
      end)
    strong_locks

(* Non-power-of-k process counts exercise the tree-index arithmetic. *)
let test_odd_n_trees () =
  List.iter
    (fun (name, make) ->
      List.iter
        (fun n ->
          let res = run ~n ~requests:3 ~sched:(Sched.random ~seed:41) ~make () in
          check cb (Printf.sprintf "%s n=%d clean" name n) true
            ((not res.Engine.deadlocked) && (not res.Engine.timed_out)
            && Engine.total_completed res = n * 3
            && res.Engine.cs_max = 1))
        [ 3; 5; 7; 9; 13 ])
    [ ("tournament", Tournament.make); ("jjj", Jjj_tree.make) ]

let test_kport_rejects_bad_port () =
  let raised = ref false in
  let (_ : Engine.result) =
    Engine.run ~n:1 ~model:Memory.CC ~sched:(Sched.round_robin ()) ~crash:Crash.none
      ~setup:(fun ctx -> Kport.create ~k:2 ctx)
      ~body:(fun kp ~pid ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          (try Kport.acquire kp ~port:5 ~pid with Invalid_argument _ -> raised := true);
          Api.note (Event.Seg Event.Req_done)
        end)
      ()
  in
  check cb "port range checked" true !raised

let test_jjj_branching_table () =
  List.iter
    (fun (n, k_min) -> check cb (Printf.sprintf "k(%d) >= %d" n k_min) true (Jjj_tree.branching_for n >= k_min))
    [ (2, 2); (16, 2); (64, 3); (256, 3); (1024, 3) ];
  (* Depth never exceeds the binary tournament's. *)
  List.iter
    (fun n ->
      check cb
        (Printf.sprintf "depth(%d)=%d <= log2" n (Jjj_tree.depth_for n))
        true
        (Jjj_tree.depth_for n <= Tournament.levels_for n))
    [ 4; 16; 64; 256; 1024 ]

let per_lock_cases =
  List.concat_map
    (fun (name, make) ->
      [
        Alcotest.test_case (name ^ " me/sf cc rr") `Quick (test_me_sf make Memory.CC 0);
        Alcotest.test_case (name ^ " me/sf cc random") `Quick (test_me_sf make Memory.CC 5);
        Alcotest.test_case (name ^ " me/sf dsm random") `Quick (test_me_sf make Memory.DSM 9);
        Alcotest.test_case (name ^ " me/sf dsm random2") `Quick (test_me_sf make Memory.DSM 77);
        Alcotest.test_case (name ^ " me/sf cc random2") `Quick (test_me_sf make Memory.CC 78);
        Alcotest.test_case (name ^ " me/sf burst") `Quick (test_me_sf_burst make);
        Alcotest.test_case (name ^ " single process") `Quick (test_single_process make);
        Alcotest.test_case (name ^ " two heavy") `Quick (test_two_processes_heavy make);
        Alcotest.test_case (name ^ " counter") `Quick (test_counter make);
        Alcotest.test_case (name ^ " bcsr") `Quick (test_bcsr make);
        Alcotest.test_case (name ^ " crash sweep") `Slow (test_crash_sweep make);
        Alcotest.test_case (name ^ " crash sweep dsm") `Slow (test_crash_sweep_dsm make);
      ])
    strong_locks

let () =
  Alcotest.run "strong_locks"
    [
      ("per-lock", per_lock_cases);
      ("storms", List.map (fun lk -> QCheck_alcotest.to_alcotest (qcheck_storm lk)) strong_locks);
      ( "rmr-shapes",
        [
          Alcotest.test_case "bakery O(n)" `Quick test_bakery_linear_rmr;
          Alcotest.test_case "tournament O(log n)" `Quick test_tournament_log_rmr;
          Alcotest.test_case "jjj sub-log" `Quick test_jjj_sublog_rmr;
          Alcotest.test_case "kport O(1)" `Quick test_kport_flat_rmr;
          Alcotest.test_case "sa fast path O(1)" `Quick test_sa_fast_path_flat;
          Alcotest.test_case "dsm bounded" `Quick test_dsm_all_bounded;
        ] );
      ( "edges",
        [
          Alcotest.test_case "odd-n trees" `Quick test_odd_n_trees;
          Alcotest.test_case "kport rejects bad port" `Quick test_kport_rejects_bad_port;
          Alcotest.test_case "jjj branching table" `Quick test_jjj_branching_table;
        ] );
    ]
