(* Unit tests for the support modules: Vec, the Report growth classifier,
   the Workload scenario parser, and the Spec registry — plus qcheck
   properties of the memory model itself (coherence, RMR charging). *)

open Rme_sim

let check = Alcotest.check

let ci = Alcotest.int

let cb = Alcotest.bool

let cf = Alcotest.float 1e-6

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_basics () =
  let v = Vec.create () in
  check cb "empty" true (Vec.is_empty v);
  Vec.push v 10;
  Vec.push v 20;
  Vec.push v 30;
  check ci "length" 3 (Vec.length v);
  check ci "get" 20 (Vec.get v 1);
  Vec.set v 1 99;
  check ci "set" 99 (Vec.get v 1);
  check ci "last" 30 (Vec.last v);
  check ci "pop" 30 (Vec.pop v);
  check ci "length after pop" 2 (Vec.length v);
  check (Alcotest.list ci) "to_list" [ 10; 99 ] (Vec.to_list v);
  Vec.clear v;
  check cb "cleared" true (Vec.is_empty v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index 5 out of bounds [0, 2)")
    (fun () -> ignore (Vec.get v 5));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      let e = Vec.create () in
      ignore (Vec.pop e))

let test_vec_growth () =
  let v = Vec.create () in
  for i = 0 to 999 do
    Vec.push v i
  done;
  check ci "1000 elements" 1000 (Vec.length v);
  check ci "fold" (999 * 1000 / 2) (Vec.fold_left ( + ) 0 v);
  check cb "exists" true (Vec.exists (fun x -> x = 777) v);
  let seen = ref 0 in
  Vec.iteri (fun i x -> if i = x then incr seen) v;
  check ci "iteri aligned" 1000 !seen

let qcheck_vec_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun xs -> Vec.to_list (Vec.of_list xs) = xs)

(* ------------------------------------------------------------------ *)
(* Memory-model properties                                             *)
(* ------------------------------------------------------------------ *)

let qcheck_memory_coherence =
  (* Apply a random op sequence; every read must return the value of the
     latest write-type op, under both models, and every RMR charge is 0/1
     (2 for none in this sequence). *)
  QCheck.Test.make ~name:"memory coherence and RMR bounds" ~count:300
    QCheck.(pair (list (pair (int_bound 2) (int_bound 100))) (int_bound 1))
    (fun (ops, model_ix) ->
      let model = if model_ix = 0 then Memory.CC else Memory.DSM in
      let mem = Memory.create model ~n:3 in
      let c = Memory.alloc mem ~home:1 ~name:"c" 0 in
      let shadow = ref 0 in
      List.for_all
        (fun (kind, v) ->
          let pid = v mod 3 in
          match kind with
          | 0 ->
              let value, rmr = Memory.read mem ~pid c in
              value = !shadow && rmr >= 0 && rmr <= 1
          | 1 ->
              let rmr = Memory.write mem ~pid c v in
              shadow := v;
              rmr >= 0 && rmr <= 1
          | _ ->
              let old, rmr = Memory.fas mem ~pid c v in
              let ok = old = !shadow in
              shadow := v;
              ok && rmr >= 0 && rmr <= 1)
        ops)

let qcheck_cc_cached_reads_free =
  (* Two consecutive reads by the same process with no intervening write:
     the second is always free under CC. *)
  QCheck.Test.make ~name:"cc second read free" ~count:100
    QCheck.(int_bound 1000)
    (fun v ->
      let mem = Memory.create Memory.CC ~n:2 in
      let c = Memory.alloc mem ~name:"c" v in
      let _ = Memory.read mem ~pid:0 c in
      let _, rmr = Memory.read mem ~pid:0 c in
      rmr = 0)

let test_memory_forget () =
  let mem = Memory.create Memory.CC ~n:2 in
  let c = Memory.alloc mem ~name:"c" 5 in
  let _ = Memory.read mem ~pid:0 c in
  Memory.forget mem ~pid:0;
  let _, rmr = Memory.read mem ~pid:0 c in
  check ci "cold cache after forget" 1 rmr

(* ------------------------------------------------------------------ *)
(* Report: fitting and classification                                  *)
(* ------------------------------------------------------------------ *)

let curve f = List.map (fun x -> (float_of_int x, f (float_of_int x))) [ 2; 4; 8; 16; 32; 64 ]

let test_fit_exponent () =
  check cf "linear" 1.0 (Float.round (Rme.Report.fit_exponent (curve (fun x -> 3.0 *. x))));
  let e_sqrt = Rme.Report.fit_exponent (curve sqrt) in
  check cb (Printf.sprintf "sqrt ~ 0.5 (%.2f)" e_sqrt) true (Float.abs (e_sqrt -. 0.5) < 0.05);
  let e_flat = Rme.Report.fit_exponent (curve (fun _ -> 7.0)) in
  check cb "flat ~ 0" true (Float.abs e_flat < 0.05)

let test_classify () =
  let open Rme.Report in
  check cb "flat" true (classify (curve (fun _ -> 10.0)) = Flat);
  check cb "linear" true (classify (curve (fun x -> 2.0 *. x)) = Linear);
  check cb "sqrt" true (classify (curve (fun x -> 5.0 *. sqrt x)) = Sqrt);
  (* Lock-shaped log curve: base cost plus a logarithmic term, as the real
     tournament exhibits.  (A pure c*log x curve through the origin has a
     log-log slope near 0.5 over this range and lands in the sqrt bin —
     the bins are calibrated for offset curves.) *)
  check cb "log" true (classify (curve (fun x -> 30.0 +. (10.0 *. log x))) = Logarithmic);
  check cb "quadratic" true (classify (curve (fun x -> x *. x)) = Superlinear)

let test_classification_names () =
  let open Rme.Report in
  let c =
    classify_lock
      ~failure_free_vs_n:(curve (fun _ -> 10.0))
      ~rmr_vs_f:(curve (fun f -> 10.0 +. (4.0 *. sqrt f)))
      ~limited_vs_n:(curve (fun _ -> 12.0))
      ~arbitrary_vs_n:(curve (fun _ -> 30.0))
  in
  check Alcotest.string "super-adaptive" "super-adaptive" (adaptivity_name c);
  check Alcotest.string "well-bounded" "well-bounded" (boundedness_name c);
  let semi =
    classify_lock
      ~failure_free_vs_n:(curve (fun _ -> 10.0))
      ~rmr_vs_f:(curve (fun _ -> 64.0))
      ~limited_vs_n:(curve (fun n -> 3.0 *. n))
      ~arbitrary_vs_n:(curve (fun n -> 3.0 *. n))
  in
  check Alcotest.string "semi-adaptive" "semi-adaptive" (adaptivity_name semi);
  check Alcotest.string "bounded" "bounded" (boundedness_name semi);
  let non =
    classify_lock
      ~failure_free_vs_n:(curve (fun n -> 5.0 *. n))
      ~rmr_vs_f:(curve (fun _ -> 64.0))
      ~limited_vs_n:(curve (fun n -> 5.0 *. n))
      ~arbitrary_vs_n:(curve (fun n -> 5.0 *. n))
  in
  check Alcotest.string "non-adaptive" "non-adaptive" (adaptivity_name non)

let test_write_csv () =
  let path = Filename.temp_file "rme" ".csv" in
  Rme.Report.write_csv ~path ~header:[ "a"; "b,c" ] ~rows:[ [ "1"; "x\"y" ]; [ "2"; "z" ] ];
  let ic = open_in path in
  let lines = List.init 3 (fun _ -> input_line ic) in
  close_in ic;
  Sys.remove path;
  check (Alcotest.list Alcotest.string) "escaped csv"
    [ "a,\"b,c\""; "1,\"x\"\"y\""; "2,z" ]
    lines

let test_svg_chart () =
  let svg =
    Rme.Svg_chart.render ~log_x:true ~title:"t" ~xlabel:"x" ~ylabel:"y"
      [
        { Rme.Svg_chart.label = "a"; points = [ (1.0, 2.0); (2.0, 4.0); (4.0, 8.0) ] };
        { Rme.Svg_chart.label = "b"; points = [ (1.0, 3.0); (2.0, 3.0) ] };
      ]
  in
  check cb "is svg" true (String.length svg > 200 && String.sub svg 0 4 = "<svg");
  check cb "has polylines" true
    (List.length (String.split_on_char '\n' svg |> List.filter (fun l ->
         String.length l > 9 && String.sub l 0 9 = "<polyline")) = 2);
  check cb "closes" true
    (let t = String.trim svg in
     String.sub t (String.length t - 6) 6 = "</svg>")

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let test_scenario_parsing () =
  let open Rme.Workload in
  check cb "none" true (scenario_of_string "none" = Some No_failures);
  check cb "fas" true
    (match scenario_of_string "fas:12" with Some (Fas_storm { f = 12; _ }) -> true | _ -> false);
  check cb "storm" true
    (match scenario_of_string "storm:5" with
    | Some (Random_storm { crashes = 5; _ }) -> true
    | _ -> false);
  check cb "batch" true
    (match scenario_of_string "batch:8" with Some (Batch { size = 8; _ }) -> true | _ -> false);
  check cb "garbage" true (scenario_of_string "whatever" = None);
  check cb "bad int" true (scenario_of_string "fas:x" = None)

let test_workload_deterministic_runs () =
  let cfg =
    {
      Rme.Workload.default_cfg with
      n = 4;
      requests = 5;
      scenario = Rme.Workload.Random_storm { crashes = 3; rate = 0.01 };
    }
  in
  let m1 = Rme.Workload.measure (Rme.Workload.run_key "ba-jjj" cfg) in
  let m2 = Rme.Workload.measure (Rme.Workload.run_key "ba-jjj" cfg) in
  check cb "same seed, same measurement" true (m1 = m2)

let test_repeat_avg () =
  let cfg = { Rme.Workload.default_cfg with n = 4; requests = 4 } in
  let m = Rme.Workload.repeat_avg (Rme.Spec.find_exn "wr") cfg ~seeds:[ 1; 2; 3 ] in
  check cb "satisfied" true m.Rme.Workload.satisfied;
  check cb "me" true m.Rme.Workload.me_ok;
  check cb "sane avg" true (m.Rme.Workload.avg_rmr > 0.0)

(* ------------------------------------------------------------------ *)
(* Spec registry                                                       *)
(* ------------------------------------------------------------------ *)

let test_spec_registry () =
  check cb "headline is ba-jjj" true (Rme.Spec.headline.Rme.Spec.key = "ba-jjj");
  check cb "find works" true (Rme.Spec.find "wr" <> None);
  check cb "find_exn raises" true
    (try
       ignore (Rme.Spec.find_exn "no-such-lock");
       false
     with Invalid_argument _ -> true);
  let keys = Rme.Spec.keys () in
  check ci "unique keys" (List.length keys) (List.length (List.sort_uniq compare keys));
  (* every registered lock actually runs *)
  List.iter
    (fun (s : Rme.Spec.t) ->
      let cfg = { Rme.Workload.default_cfg with n = 3; requests = 2 } in
      let m = Rme.Workload.measure (Rme.Workload.run s cfg) in
      check cb (s.key ^ " runs clean") true (m.Rme.Workload.satisfied && m.Rme.Workload.me_ok))
    Rme.Spec.all

let test_spec_crash_safe_flags () =
  (* Every crash_safe lock survives a storm; the non-crash-safe ones are the
     two plain MCS variants. *)
  List.iter
    (fun (s : Rme.Spec.t) ->
      if s.Rme.Spec.crash_safe then begin
        let cfg =
          {
            Rme.Workload.default_cfg with
            n = 3;
            requests = 3;
            scenario = Rme.Workload.Random_storm { crashes = 3; rate = 0.01 };
          }
        in
        let m = Rme.Workload.measure (Rme.Workload.run s cfg) in
        check cb (s.key ^ " survives storm") true m.Rme.Workload.satisfied
      end)
    Rme.Spec.all;
  check cb "mcs flagged unsafe" true
    (not (Rme.Spec.find_exn "mcs").Rme.Spec.crash_safe)

let () =
  Alcotest.run "core"
    [
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "growth" `Quick test_vec_growth;
          QCheck_alcotest.to_alcotest qcheck_vec_roundtrip;
        ] );
      ( "memory",
        [
          QCheck_alcotest.to_alcotest qcheck_memory_coherence;
          QCheck_alcotest.to_alcotest qcheck_cc_cached_reads_free;
          Alcotest.test_case "forget" `Quick test_memory_forget;
        ] );
      ( "report",
        [
          Alcotest.test_case "fit exponent" `Quick test_fit_exponent;
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "classification names" `Quick test_classification_names;
          Alcotest.test_case "write csv" `Quick test_write_csv;
          Alcotest.test_case "svg chart" `Quick test_svg_chart;
        ] );
      ( "workload",
        [
          Alcotest.test_case "scenario parsing" `Quick test_scenario_parsing;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic_runs;
          Alcotest.test_case "repeat avg" `Quick test_repeat_avg;
        ] );
      ( "spec",
        [
          Alcotest.test_case "registry" `Quick test_spec_registry;
          Alcotest.test_case "crash-safe flags" `Quick test_spec_crash_safe_flags;
        ] );
    ]
