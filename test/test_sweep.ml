(* Tests for the crash-site sweep engine and the conformance matrix.

   The headline case is the paper's own: sweeping WR-Lock with no
   hand-written crash plan must rediscover the FAS-gap mutual-exclusion
   overlap (a crash After the FAS on [wr.tail], §4 / Figure 1) as an
   *expected* weak-recoverability violation, while the strongly
   recoverable SA/BA locks survive every single-crash site with zero ME
   findings. *)

open Rme_sim
open Rme_locks
open Rme_check

let check = Alcotest.check

let cb = Alcotest.bool

let ci = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Discovery and plan enumeration                                      *)
(* ------------------------------------------------------------------ *)

(* Two symmetric processes, three instructions each: dedup by
   (kind, cell, op_index) must collapse them to one site per instruction. *)
let tiny_scenario =
  Sweep.Scenario
    {
      setup = (fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"cnt" 0);
      body =
        (fun c ~pid:_ ->
          ignore (Api.faa c 1);
          Api.yield ();
          ignore (Api.faa c 1));
    }

let test_discover_dedups_symmetric_sites () =
  let seen, sites, truncated = Sweep.discover Sweep.default_cfg ~n:2 ~model:Memory.CC tiny_scenario in
  check ci "six executed sites" 6 seen;
  check ci "three after dedup" 3 (List.length sites);
  check cb "not truncated" false truncated;
  (* discovery order, first representative (p0) kept *)
  List.iteri (fun i s -> check ci "op_index in order" i s.Sweep.op_index) sites;
  List.iter (fun s -> check ci "representative is p0" 0 s.Sweep.pid) sites

let test_site_cap_truncates () =
  let cfg = { Sweep.default_cfg with Sweep.site_cap = 2 } in
  let _, sites, truncated = Sweep.discover cfg ~n:2 ~model:Memory.CC tiny_scenario in
  check ci "capped" 2 (List.length sites);
  check cb "truncation surfaced" true truncated

let test_plan_enumeration () =
  let _, sites, _ = Sweep.discover Sweep.default_cfg ~n:2 ~model:Memory.CC tiny_scenario in
  let budget b = { Sweep.default_cfg with Sweep.budget = b } in
  check ci "budget 0: baseline only" 1 (List.length (Sweep.plans_of_sites (budget 0) sites));
  (* 1 baseline + {Before, After} x 3 sites, no spin sites *)
  check ci "budget 1: singles" 7 (List.length (Sweep.plans_of_sites (budget 1) sites));
  (* + C(3, 2) After-After pairs *)
  check ci "budget 2: adds pairs" 10 (List.length (Sweep.plans_of_sites (budget 2) sites));
  match Sweep.plans_of_sites (budget 1) sites with
  | Sweep.No_crash :: Sweep.Single (s, Crash.Before) :: Sweep.Single (s', Crash.After) :: _ ->
      check ci "singles in site order" s.Sweep.op_index s'.Sweep.op_index
  | _ -> Alcotest.fail "plan order: expected baseline then before/after singles"

(* A parked process is reachable only by an asynchronous crash: spin sites
   must contribute Async_park plans. *)
let test_spin_sites_get_async_plans () =
  let scenario =
    Sweep.Scenario
      {
        setup = (fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"gate" 0);
        body =
          (fun gate ~pid ->
            if pid = 0 then begin
              Api.yield ();
              Api.write gate 1
            end
            else Api.spin_until gate (Api.Eq 1));
      }
  in
  let _, sites, _ = Sweep.discover Sweep.default_cfg ~n:2 ~model:Memory.CC scenario in
  let plans = Sweep.plans_of_sites Sweep.default_cfg sites in
  check cb "spin site discovered" true (List.exists (fun s -> s.Sweep.kind = Api.Spin) sites);
  check cb "async park plan enumerated" true
    (List.exists (function Sweep.Async_park _ -> true | _ -> false) plans)

(* ------------------------------------------------------------------ *)
(* WR-Lock: the FAS gap, rediscovered                                  *)
(* ------------------------------------------------------------------ *)

let test_wr_rediscovers_fas_gap () =
  let cfg =
    {
      Sweep.default_cfg with
      Sweep.max_runs_per_plan = 300;
      max_steps = 6_000;
      site_cap = 64;
      plan_cap = 160;
    }
  in
  let scenario = Sweep.lock_scenario ~cs_yields:3 ~requests:1 Wr_lock.make in
  let props =
    [
      Sweep.me_prop ~expected_under_crash:true ();
      Sweep.weak_me_prop ~lock_id:0;
      Sweep.responsiveness_prop ~lock_id:0;
    ]
  in
  let c = Sweep.sweep cfg ~n:2 ~model:Memory.CC ~props scenario in
  (* Theorem 4.2 side: weak ME (interval form) and responsiveness hold at
     every crash site — any hit would be a FAIL. *)
  List.iter
    (fun f ->
      if not f.Sweep.f_expected then
        Alcotest.failf "unexpected violation: %s" (Fmt.str "%a" Sweep.pp_finding f))
    c.Sweep.findings;
  (* The sensitive-window side: plain ME breaks, and the sweep pinpoints
     the site — a crash After the FAS on the tail cell. *)
  let is_gap f =
    f.Sweep.f_expected
    && f.Sweep.f_prop = "ME"
    &&
    match f.Sweep.f_plan with
    | Sweep.Single (s, Crash.After) -> s.Sweep.kind = Api.Fas && s.Sweep.cell = Some "wr.tail"
    | _ -> false
  in
  check cb "FAS-gap ME overlap rediscovered at the After-FAS site" true
    (List.exists is_gap c.Sweep.findings);
  check cb "crash-free baseline clean" true
    (List.for_all (fun f -> f.Sweep.f_plan <> Sweep.No_crash) c.Sweep.findings);
  (* Every ME overlap the sweep found lies in the sensitive window: a
     single crash elsewhere cannot break WR-Lock (Theorem 4.2). *)
  List.iter
    (fun f ->
      if f.Sweep.f_prop = "ME" then
        match f.Sweep.f_plan with
        | Sweep.Single (s, _) | Sweep.Async_park s ->
            let gap_cell =
              match s.Sweep.cell with
              | Some cell -> cell = "wr.tail" || cell = "wr.pred[0]" || cell = "wr.pred[1]"
              | None -> false
            in
            check cb
              (Fmt.str "ME overlap only in the FAS gap (got %a)" Sweep.pp_site s)
              true gap_cell
        | _ -> ())
    c.Sweep.findings

(* ------------------------------------------------------------------ *)
(* SA / BA locks: no single crash site breaks mutual exclusion         *)
(* ------------------------------------------------------------------ *)

let test_strong_locks_zero_me_findings () =
  let cfg =
    {
      Sweep.default_cfg with
      Sweep.max_runs_per_plan = 100;
      max_steps = 10_000;
      site_cap = 48;
      plan_cap = 120;
    }
  in
  List.iter
    (fun key ->
      let spec = Rme.Spec.find_exn key in
      let scenario = Sweep.lock_scenario ~cs_yields:2 ~requests:1 spec.Rme.Spec.make in
      let c = Sweep.sweep cfg ~n:2 ~model:Memory.CC ~props:[ Sweep.me_prop () ] scenario in
      check cb (key ^ ": sites discovered") true (c.Sweep.sites <> []);
      check ci (key ^ ": zero ME findings") 0 (List.length c.Sweep.findings))
    [ "sa-jjj"; "ba-jjj" ]

(* ------------------------------------------------------------------ *)
(* Matrix determinism across jobs and split_depth                      *)
(* ------------------------------------------------------------------ *)

(* Deterministic toy subjects whose schedule trees are small enough to
   exhaust within the budget, exercising all three verdict kinds. *)
let tiny_subjects =
  let prop name bound expected =
    {
      Sweep.prop_name = name;
      check =
        (fun res ->
          if res.Engine.steps > bound then Some (Printf.sprintf "%d steps" res.Engine.steps)
          else None);
      expected_under_crash = expected;
      needs_record = false;
    }
  in
  let crashed_prop =
    {
      Sweep.prop_name = "crash-free";
      check = (fun res -> if res.Engine.total_crashes > 0 then Some "crashed" else None);
      expected_under_crash = true;
      needs_record = false;
    }
  in
  [
    {
      Sweep.subject_name = "tiny-pass";
      subject_n = 2;
      subject_scenario = tiny_scenario;
      subject_props = [ prop "roomy" 1_000 false; crashed_prop ];
    };
    {
      Sweep.subject_name = "tiny-fail";
      subject_n = 2;
      subject_scenario = tiny_scenario;
      subject_props = [ prop "cramped" 3 false ];
    };
  ]

let render cfg =
  let rows = Sweep.matrix cfg ~model:Memory.CC ~subjects:tiny_subjects in
  let header, cells = Sweep.matrix_cells rows in
  Rme.Report.table_to_string ~header ~rows:cells
  ^ String.concat "\n" (Sweep.matrix_details rows)

let contains_sub hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_matrix_determinism_across_jobs () =
  let base = { Sweep.default_cfg with Sweep.max_runs_per_plan = 400; max_steps = 500 } in
  let reference = render base in
  (* sanity: the toy matrix exercises pass, expected and FAIL verdicts *)
  let has s = contains_sub reference s in
  check cb "reference has pass" true (has "pass");
  check cb "reference has expected" true (has "expected(");
  check cb "reference has FAIL" true (has "FAIL");
  List.iter
    (fun (jobs, split_depth) ->
      let s = render { base with Sweep.jobs; split_depth } in
      check Alcotest.string (Printf.sprintf "jobs=%d split_depth=%d" jobs split_depth) reference s)
    [ (1, 2); (1, 3); (4, 1); (4, 2); (4, 3) ]

let () =
  Alcotest.run "sweep"
    [
      ( "discovery",
        [
          Alcotest.test_case "dedups symmetric sites" `Quick test_discover_dedups_symmetric_sites;
          Alcotest.test_case "site cap truncates" `Quick test_site_cap_truncates;
          Alcotest.test_case "plan enumeration" `Quick test_plan_enumeration;
          Alcotest.test_case "spin sites get async plans" `Quick test_spin_sites_get_async_plans;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "wr rediscovers the FAS gap" `Slow test_wr_rediscovers_fas_gap;
          Alcotest.test_case "sa/ba: zero ME findings" `Slow test_strong_locks_zero_me_findings;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "matrix identical across jobs/split" `Slow
            test_matrix_determinism_across_jobs;
        ] );
    ]
