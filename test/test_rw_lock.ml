(* Tests for the recoverable reader-writer lock: reader concurrency, writer
   exclusion, crash recovery on both sides, and storms.  Exclusion is
   observed with host-side occupancy counters updated from inside the
   simulated critical sections (the engine is deterministic and
   single-threaded, so plain refs are exact). *)

open Rme_sim
open Rme_locks

let check = Alcotest.check

let ci = Alcotest.int

let cb = Alcotest.bool

(* Drive [n] processes; pids < writers write, the rest read.  Returns
   (result, max simultaneous readers, max readers seen while a writer was
   in, max simultaneous writers). *)
let run_rw ?(n = 6) ?(writers = 2) ?(requests = 4) ?(crash = Crash.none)
    ?(sched = Sched.random ~seed:3) ?(read_work = 4) () =
  let readers_in = ref 0 in
  let writers_in = ref 0 in
  let max_readers = ref 0 in
  let max_writers = ref 0 in
  let overlap = ref 0 in
  let res =
    Engine.run ~n ~model:Memory.CC ~sched ~crash ~max_steps:3_000_000
      ~setup:(fun ctx -> Rw_lock.create ctx)
      ~body:(fun rw ~pid ->
        let is_writer = pid < writers in
        while Api.completed_requests () < requests do
          Api.note (Event.Seg Event.Ncs_begin);
          Api.note (Event.Seg Event.Req_begin);
          if is_writer then begin
            Rw_lock.write_acquire rw ~pid;
            incr writers_in;
            if !writers_in > !max_writers then max_writers := !writers_in;
            if !readers_in > 0 then overlap := max !overlap !readers_in;
            for _ = 1 to read_work do
              Api.yield ()
            done;
            decr writers_in;
            Rw_lock.write_release rw ~pid
          end
          else begin
            Rw_lock.read_acquire rw ~pid;
            incr readers_in;
            if !readers_in > !max_readers then max_readers := !readers_in;
            if !writers_in > 0 then overlap := max !overlap 1;
            for _ = 1 to read_work do
              Api.yield ()
            done;
            decr readers_in;
            Rw_lock.read_release rw ~pid
          end;
          Api.note (Event.Seg Event.Req_done)
        done)
      ()
  in
  (res, !max_readers, !overlap, !max_writers)

(* Crashes lose the host-side decrement, so occupancy counters are only
   exact in crash-free runs; crash tests check completion + the persisted
   invariants instead, via a variant that recomputes occupancy from
   persisted flags at every entry. *)
let run_rw_crash ~crash ?(n = 5) ?(writers = 2) ?(requests = 3) ?(sched = Sched.round_robin ())
    () =
  let violation = ref None in
  let res =
    Engine.run ~n ~model:Memory.CC ~sched ~crash ~max_steps:3_000_000
      ~setup:(fun ctx ->
        let rw = Rw_lock.create ctx in
        let mem = Engine.Ctx.memory ctx in
        (* a persisted write-occupancy witness cell *)
        let wmark = Memory.alloc mem ~name:"test.wmark" 0 in
        (rw, wmark))
      ~body:(fun (rw, wmark) ~pid ->
        let is_writer = pid < writers in
        while Api.completed_requests () < requests do
          Api.note (Event.Seg Event.Ncs_begin);
          Api.note (Event.Seg Event.Req_begin);
          if is_writer then begin
            Rw_lock.write_acquire rw ~pid;
            (* The writer marks the resource; any reader or second writer
               seeing a foreign mark is a real exclusion violation (marks
               are persisted, so crashes cannot fake them). *)
            let m = Api.read wmark in
            if m <> 0 && m <> pid + 1 then violation := Some "two writers";
            Api.write wmark (pid + 1);
            Api.yield ();
            Api.yield ();
            Api.write wmark 0;
            Rw_lock.write_release rw ~pid
          end
          else begin
            Rw_lock.read_acquire rw ~pid;
            let m = Api.read wmark in
            if m <> 0 then violation := Some "reader inside writer section";
            Api.yield ();
            Rw_lock.read_release rw ~pid
          end;
          Api.note (Event.Seg Event.Req_done)
        done)
      ()
  in
  (res, !violation)

let test_readers_overlap () =
  let res, max_readers, overlap, _ = run_rw ~writers:0 ~n:6 () in
  check cb "all done" true (Engine.total_completed res = 24);
  check cb (Printf.sprintf "readers overlap (%d)" max_readers) true (max_readers >= 2);
  check ci "no writer overlap" 0 overlap

let test_writer_exclusion () =
  let res, _, overlap, max_writers = run_rw ~writers:2 ~n:6 () in
  check cb "all done" true (Engine.total_completed res = 24);
  check ci "one writer at a time" 1 max_writers;
  check ci "no reader-writer overlap" 0 overlap

let test_all_writers () =
  let res, _, _, max_writers = run_rw ~writers:6 ~n:6 () in
  check cb "all done" true (Engine.total_completed res = 24);
  check ci "mutex degenerate case" 1 max_writers

let test_reader_crash_sweep () =
  for nth = 0 to 60 do
    let crash = Crash.at_op ~pid:4 ~nth Crash.After in
    let res, violation = run_rw_crash ~crash () in
    if res.Engine.deadlocked || res.Engine.timed_out then
      Alcotest.failf "stuck with reader crash at %d" nth;
    check cb (Printf.sprintf "no violation (reader crash %d)" nth) true (violation = None);
    check ci "all done" 15 (Engine.total_completed res)
  done

let test_writer_crash_sweep () =
  for nth = 0 to 80 do
    let crash = Crash.at_op ~pid:0 ~nth Crash.After in
    let res, violation = run_rw_crash ~crash () in
    if res.Engine.deadlocked || res.Engine.timed_out then
      Alcotest.failf "stuck with writer crash at %d" nth;
    check cb (Printf.sprintf "no violation (writer crash %d)" nth) true (violation = None);
    check ci "all done" 15 (Engine.total_completed res)
  done

let qcheck_rw_storm =
  QCheck.Test.make ~name:"rw-lock exclusion under storms" ~count:40
    QCheck.(triple (int_range 3 7) (int_bound 9999) (int_bound 9999))
    (fun (n, seed, crash_seed) ->
      let crash = Crash.random ~seed:crash_seed ~rate:0.004 ~max_crashes:n () in
      let res, violation =
        run_rw_crash ~crash ~n ~writers:(1 + (n / 3)) ~sched:(Sched.random ~seed) ()
      in
      violation = None
      && (not res.Engine.deadlocked)
      && (not res.Engine.timed_out)
      && Engine.total_completed res = n * 3)

let () =
  Alcotest.run "rw_lock"
    [
      ( "crash-free",
        [
          Alcotest.test_case "readers overlap" `Quick test_readers_overlap;
          Alcotest.test_case "writer exclusion" `Quick test_writer_exclusion;
          Alcotest.test_case "all writers" `Quick test_all_writers;
        ] );
      ( "crash",
        [
          Alcotest.test_case "reader crash sweep" `Slow test_reader_crash_sweep;
          Alcotest.test_case "writer crash sweep" `Slow test_writer_crash_sweep;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest qcheck_rw_storm ]);
    ]
