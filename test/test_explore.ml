(* Tests for the bounded exhaustive explorer: it must find seeded bugs
   (and shrink their witnessing schedules), and must pass correct locks. *)

open Rme_sim
open Rme_locks
open Rme_check

let check = Alcotest.check

let cb = Alcotest.bool

let ci = Alcotest.int

(* A deliberately broken 2-process mutex: test-and-test-and-set with a
   non-atomic check-then-write — the classic race.  Raw closures (no
   instrumentation) keep the schedule tree small enough to exhaust. *)
let broken_mutex ctx =
  let mem = Engine.Ctx.memory ctx in
  let owner = Memory.alloc mem ~name:"racy.owner" 0 in
  {
    Lock.name = "racy";
    acquire =
      (fun ~pid ->
        let rec try_ () =
          if Api.read owner = 0 then Api.write owner (pid + 1) (* racy: not a CAS *)
          else begin
            Api.spin_until owner (Api.Eq 0);
            try_ ()
          end
        in
        try_ ());
    release = (fun ~pid:_ -> Api.write owner 0);
  }

(* Minimal one-request body: just the lock ops plus the CS markers, so the
   full interleaving tree of two processes stays enumerable. *)
let tiny_body lock ~pid =
  if Api.completed_requests () < 1 then begin
    Api.note (Event.Seg Event.Req_begin);
    lock.Lock.acquire ~pid;
    Api.note (Event.Seg Event.Cs_begin);
    Api.note (Event.Seg Event.Cs_end);
    lock.Lock.release ~pid;
    Api.note (Event.Seg Event.Req_done)
  end

let explore_lock ?(max_runs = 50_000) ?shrink_violations ~make () =
  Explore.explore ~max_runs ?shrink_violations ~n:2 ~model:Memory.CC
    ~crash:(fun () -> Crash.none)
    ~setup:make ~body:tiny_body
    ~check:(fun res ->
      if res.Engine.cs_max > 1 then Some "ME violation"
      else if res.Engine.deadlocked then Some "deadlock"
      else None)
    ()

let test_finds_seeded_race () =
  let outcome = explore_lock ~make:broken_mutex () in
  match outcome.Explore.violation with
  | None -> Alcotest.failf "explorer missed the seeded race (%d runs)" outcome.Explore.runs
  | Some (msg, trace) ->
      check cb "message" true (msg = "ME violation");
      (* The witness is shrunk: positional decision vectors limit how far a
         greedy zeroing pass can go, but the trace must stay small. *)
      let nonzero = List.length (List.filter (fun d -> d <> 0) trace) in
      check cb
        (Printf.sprintf "shrunk witness (%d non-default decisions, len %d)" nonzero
           (List.length trace))
        true
        (nonzero <= 8 && List.length trace <= 30)

let test_passes_correct_locks () =
  (* Exhaustive for the one-cell locks; bounded for the larger ones. *)
  List.iter
    (fun (name, max_runs, make) ->
      let outcome = explore_lock ~max_runs ~make () in
      check cb (name ^ " clean") true (outcome.Explore.violation = None))
    [
      ("tas", 60_000, Tas_lock.make);
      ("wr", 8_000, Wr_lock.make);
      ("bakery", 8_000, Bakery.make);
      ("arbitrator", 8_000, fun ctx -> Arbitrator.as_two_process_lock (Arbitrator.create ctx) ~n:2);
    ]

let test_finds_mcs_wedge_under_crash () =
  (* The explorer also finds liveness bugs: plain MCS with a crash of the
     lock holder deadlocks under some (here: most) schedules. *)
  let outcome =
    Explore.explore ~max_runs:2_000 ~max_steps:5_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.on_kind ~pid:0 ~kind:Api.Note ~occurrence:2 Crash.After)
      ~setup:Mcs.make
      ~body:(fun lock ~pid -> tiny_body lock ~pid)
      ~check:(fun res ->
        if res.Engine.deadlocked || res.Engine.timed_out then Some "stuck" else None)
      ()
  in
  check cb "found the wedge" true (outcome.Explore.violation <> None)

let test_shrink_unit () =
  (* Reproduces iff some decision >= 2 appears at position 1. *)
  let reproduces t = match t with _ :: d :: _ -> d >= 2 | _ -> false in
  let shrunk = Explore.shrink ~reproduces [ 1; 3; 1; 0; 2; 0 ] in
  check cb "still reproduces" true (reproduces shrunk);
  check (Alcotest.list ci) "minimal" [ 0; 3 ] shrunk

let test_shrink_keeps_nonreproducing_input () =
  let reproduces _ = false in
  check (Alcotest.list ci) "unchanged" [ 1; 2 ] (Explore.shrink ~reproduces [ 1; 2 ])

let test_exhaustive_small_program () =
  (* Two processes, two instructions each: 4C2 = 6 interleavings. *)
  let count = ref 0 in
  let outcome =
    Explore.explore ~max_runs:5_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
      ~body:(fun c ~pid:_ ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          Api.write c 1;
          Api.write c 2;
          Api.note (Event.Seg Event.Req_done)
        end)
      ~check:(fun _ ->
        incr count;
        None)
      ()
  in
  check cb "exhausted" true outcome.Explore.exhausted;
  check cb
    (Printf.sprintf "several interleavings (%d)" outcome.Explore.runs)
    true
    (outcome.Explore.runs > 50)

let () =
  Alcotest.run "explore"
    [
      ( "explorer",
        [
          Alcotest.test_case "finds seeded race" `Quick test_finds_seeded_race;
          Alcotest.test_case "passes correct locks" `Quick test_passes_correct_locks;
          Alcotest.test_case "finds mcs wedge" `Quick test_finds_mcs_wedge_under_crash;
          Alcotest.test_case "exhaustive small program" `Quick test_exhaustive_small_program;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "unit" `Quick test_shrink_unit;
          Alcotest.test_case "non-reproducing input" `Quick test_shrink_keeps_nonreproducing_input;
        ] );
    ]
