(* Tests for the bounded exhaustive explorer: it must find seeded bugs
   (and shrink their witnessing schedules), and must pass correct locks. *)

open Rme_sim
open Rme_locks
open Rme_check

let check = Alcotest.check

let cb = Alcotest.bool

let ci = Alcotest.int

let tier_name = function `Off -> "off" | `Sleep -> "sleep" | `Source -> "source"

(* A deliberately broken 2-process mutex: test-and-test-and-set with a
   non-atomic check-then-write — the classic race.  Raw closures (no
   instrumentation) keep the schedule tree small enough to exhaust. *)
let broken_mutex ctx =
  let mem = Engine.Ctx.memory ctx in
  let owner = Memory.alloc mem ~name:"racy.owner" 0 in
  {
    Lock.name = "racy";
    acquire =
      (fun ~pid ->
        let rec try_ () =
          if Api.read owner = 0 then Api.write owner (pid + 1) (* racy: not a CAS *)
          else begin
            Api.spin_until owner (Api.Eq 0);
            try_ ()
          end
        in
        try_ ());
    release = (fun ~pid:_ -> Api.write owner 0);
    try_abort = None;
  }

(* Minimal one-request body: just the lock ops plus the CS markers, so the
   full interleaving tree of two processes stays enumerable. *)
let tiny_body lock ~pid =
  if Api.completed_requests () < 1 then begin
    Api.note (Event.Seg Event.Req_begin);
    lock.Lock.acquire ~pid;
    Api.note (Event.Seg Event.Cs_begin);
    Api.note (Event.Seg Event.Cs_end);
    lock.Lock.release ~pid;
    Api.note (Event.Seg Event.Req_done)
  end

let explore_lock ?(max_runs = 50_000) ?shrink_violations ~make () =
  Explore.explore ~max_runs ?shrink_violations ~n:2 ~model:Memory.CC
    ~crash:(fun () -> Crash.none)
    ~setup:make ~body:tiny_body
    ~check:(fun res ->
      if res.Engine.cs_max > 1 then Some "ME violation"
      else if res.Engine.deadlocked then Some "deadlock"
      else None)
    ()

let test_finds_seeded_race () =
  let outcome = explore_lock ~make:broken_mutex () in
  match outcome.Explore.violation with
  | None -> Alcotest.failf "explorer missed the seeded race (%d runs)" outcome.Explore.runs
  | Some (msg, trace) ->
      check cb "message" true (msg = "ME violation");
      check cb "a violating search is not exhaustive" false outcome.Explore.exhausted;
      (* The witness is shrunk: positional decision vectors limit how far a
         greedy zeroing pass can go, but the trace must stay small. *)
      let nonzero = List.length (List.filter (fun d -> d <> 0) trace) in
      check cb
        (Printf.sprintf "shrunk witness (%d non-default decisions, len %d)" nonzero
           (List.length trace))
        true
        (nonzero <= 8 && List.length trace <= 30)

let test_passes_correct_locks () =
  (* Exhaustive for the one-cell locks; bounded for the larger ones. *)
  List.iter
    (fun (name, max_runs, make) ->
      let outcome = explore_lock ~max_runs ~make () in
      check cb (name ^ " clean") true (outcome.Explore.violation = None))
    [
      ("tas", 60_000, Tas_lock.make);
      ("wr", 8_000, Wr_lock.make);
      ("bakery", 8_000, Bakery.make);
      ("arbitrator", 8_000, fun ctx -> Arbitrator.as_two_process_lock (Arbitrator.create ctx) ~n:2);
    ]

let test_finds_mcs_wedge_under_crash () =
  (* The explorer also finds liveness bugs: plain MCS with a crash of the
     lock holder deadlocks under some (here: most) schedules. *)
  let outcome =
    Explore.explore ~max_runs:2_000 ~max_steps:5_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.on_kind ~pid:0 ~kind:Api.Note ~occurrence:2 Crash.After)
      ~setup:Mcs.make
      ~body:(fun lock ~pid -> tiny_body lock ~pid)
      ~check:(fun res ->
        if res.Engine.deadlocked || res.Engine.timed_out then Some "stuck" else None)
      ()
  in
  check cb "found the wedge" true (outcome.Explore.violation <> None)

let test_shrink_unit () =
  (* Reproduces iff some decision >= 2 appears at position 1. *)
  let reproduces t = match t with _ :: d :: _ -> d >= 2 | _ -> false in
  let shrunk = Explore.shrink ~reproduces [ 1; 3; 1; 0; 2; 0 ] in
  check cb "still reproduces" true (reproduces shrunk);
  check (Alcotest.list ci) "minimal" [ 0; 3 ] shrunk

let test_shrink_keeps_nonreproducing_input () =
  let reproduces _ = false in
  check (Alcotest.list ci) "unchanged" [ 1; 2 ] (Explore.shrink ~reproduces [ 1; 2 ])

let test_exhaustive_small_program () =
  (* Two processes, two instructions each: 4C2 = 6 interleavings. *)
  let explore por =
    Explore.explore ~por ~max_runs:5_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
      ~body:(fun c ~pid:_ ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          Api.write c 1;
          Api.write c 2;
          Api.note (Event.Seg Event.Req_done)
        end)
      ~check:(fun _ -> None)
      ()
  in
  let plain = explore `Off in
  check cb "exhausted" true plain.Explore.exhausted;
  check cb
    (Printf.sprintf "several interleavings (%d)" plain.Explore.runs)
    true
    (plain.Explore.runs > 50);
  (* The same tree under POR: the note/dispatch steps are local and get
     slept away, but the same-cell writes stay dependent — the search
     still exhausts, with strictly fewer runs. *)
  let por = explore `Sleep in
  check cb "por exhausted" true por.Explore.exhausted;
  check cb
    (Printf.sprintf "por prunes (%d < %d)" por.Explore.runs plain.Explore.runs)
    true
    (por.Explore.runs < plain.Explore.runs);
  let src = explore `Source in
  check cb "source exhausted" true src.Explore.exhausted;
  check cb
    (Printf.sprintf "source never exceeds sleep (%d <= %d)" src.Explore.runs por.Explore.runs)
    true
    (src.Explore.runs <= por.Explore.runs)

let test_truncation_not_exhausted () =
  (* A correct lock under a tiny run budget: the search must report the
     truncation (not claim exhaustion) and stop scheduling work at once. *)
  let outcome = explore_lock ~max_runs:3 ~make:Tas_lock.make () in
  check ci "runs capped at the budget" 3 outcome.Explore.runs;
  check cb "not exhausted" false outcome.Explore.exhausted;
  check cb "no violation" true (outcome.Explore.violation = None)

(* --- trace-scheduler faithfulness ---------------------------------- *)

let test_trace_degree_mismatch () =
  let record = Vec.create () in
  let mismatch = ref false in
  let sched = Sched.trace ~mismatch ~decisions:(Vec.of_list [ 5 ]) ~record () in
  let p = Sched.pick sched ~runnable:[| 1; 0 |] ~step:0 in
  check cb "out-of-range decision flags a mismatch" true !mismatch;
  check ci "pick still deterministic (5 mod 2 -> second of sorted)" 1 p;
  check ci "degree recorded" 2 (Vec.get record 0);
  let mismatch = ref false in
  let sched = Sched.trace ~mismatch ~decisions:(Vec.of_list [ 1 ]) ~record:(Vec.create ()) () in
  ignore (Sched.pick sched ~runnable:[| 1; 0 |] ~step:0);
  check cb "in-range decision leaves the flag clear" false !mismatch

let test_trace_strict_raises () =
  let sched = Sched.trace ~strict:true ~decisions:(Vec.of_list [ 5 ]) ~record:(Vec.create ()) () in
  Alcotest.check_raises "strict replay raises"
    (Sched.Unfaithful { position = 0; choice = 5; degree = 2 })
    (fun () -> ignore (Sched.pick sched ~runnable:[| 1; 0 |] ~step:0))

(* --- WR-Lock FAS gap: parallel determinism ------------------------- *)

(* A 3-process scenario around the WR-Lock's unsafe FAS window whose
   mutual-exclusion violation the bounded explorer can actually reach:
   p1 parks *inside* its critical section on a gate cell that only p0
   (a non-competing process) sets, and p2 crashes right after its tail
   FAS — in the gap before the predecessor is persisted.  Delaying p0
   lets p2's recovery relinquish the orphaned queue node and re-enter
   past the still-parked p1: two processes in the CS off one unsafe
   crash.  The default schedule (p0 first) is clean, so finding the
   witness takes real search, yet the witness lies on the DFS spine. *)
let wr_gap_setup ctx =
  let gate = Memory.alloc (Engine.Ctx.memory ctx) ~name:"gate" 0 in
  (Wr_lock.make ctx, gate)

let wr_gap_body (lock, gate) ~pid =
  if pid = 0 then begin
    for _ = 1 to 3 do
      Api.yield ()
    done;
    Api.write gate 1
  end
  else begin
    let cs ~pid = if pid = 1 then Api.spin_until gate (Api.Eq 1) in
    Harness.standard_body ~cs ~lock ~requests:1 pid
  end

let wr_gap_crash () = Crash.on_kind ~pid:2 ~kind:Api.Fas ~occurrence:0 Crash.After

let wr_gap_check res = if res.Engine.cs_max > 1 then Some "ME violation" else None

let wr_gap_replay trace =
  let record = Vec.create () in
  let mismatch = ref false in
  let sched = Sched.trace ~mismatch ~decisions:(Vec.of_list trace) ~record () in
  let res =
    Engine.run ~max_steps:4_000 ~n:3 ~model:Memory.CC ~sched ~crash:(wr_gap_crash ())
      ~setup:wr_gap_setup ~body:wr_gap_body ()
  in
  (res, !mismatch)

let test_wr_gap_sequential_finds_violation () =
  let outcome =
    Explore.explore ~max_runs:20_000 ~max_steps:4_000 ~n:3 ~model:Memory.CC ~crash:wr_gap_crash
      ~setup:wr_gap_setup ~body:wr_gap_body ~check:wr_gap_check ()
  in
  match outcome.Explore.violation with
  | None -> Alcotest.failf "missed the FAS-gap violation (%d runs)" outcome.Explore.runs
  | Some (_, trace) ->
      (* Regression for the shrink-faithfulness fix: the reported witness
         must replay without any degree mismatch and still violate. *)
      let res, mismatch = wr_gap_replay trace in
      check cb "witness replays faithfully" false mismatch;
      check cb "witness still violates ME" true (res.Engine.cs_max > 1)

let test_wr_gap_parallel_determinism () =
  let seq =
    Explore.explore ~max_runs:20_000 ~max_steps:4_000 ~n:3 ~model:Memory.CC ~crash:wr_gap_crash
      ~setup:wr_gap_setup ~body:wr_gap_body ~check:wr_gap_check ()
  in
  let par =
    Explore.explore_parallel ~domains:4 ~max_runs:20_000 ~max_steps:4_000 ~n:3 ~model:Memory.CC
      ~crash:wr_gap_crash ~setup:wr_gap_setup ~body:wr_gap_body ~check:wr_gap_check ()
  in
  check cb "sequential found the violation" true (seq.Explore.violation <> None);
  check cb "identical (shrunk) violation" true (par.Explore.violation = seq.Explore.violation);
  check cb "identical exhausted flag" true (par.Explore.exhausted = seq.Explore.exhausted)

let test_parallel_clean_tree_identical () =
  (* On a clean exhaustive search the parallel explorer must return the
     outcome byte-for-byte: same runs count, exhausted, no violation. *)
  let run explorer =
    explorer ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
      ~body:(fun c ~pid:_ ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          Api.write c 1;
          Api.write c 2;
          Api.note (Event.Seg Event.Req_done)
        end)
      ~check:(fun _ -> None)
      ()
  in
  let seq =
    run
      (Explore.explore ~max_runs:5_000 ?max_steps:None ?shrink_violations:None ?record:None
         ?por:None ?statecache:None ?cache_capacity:None ?abort:None ?stats:None)
  in
  let par =
    run
      (Explore.explore_parallel ~max_runs:5_000 ~domains:4 ?max_steps:None ?split_depth:None
         ?snap_gap:None ?shrink_violations:None ?record:None ?por:None ?cache_capacity:None
         ?abort:None ?stats:None)
  in
  check cb "exhausted" true seq.Explore.exhausted;
  check cb "identical outcomes" true (seq = par)

(* --- differential: sequential vs checkpointed parallel -------------- *)

(* The whole point of the settlement scheme: {runs; exhausted; violation}
   — including the shrunk witness — must be byte-identical to the
   sequential explorer's for every domain count, POR on or off, with and
   without a (robust) crash plan, and under truncating budgets.  The
   structural equality below compares complete outcome records. *)

let small_writes_setup ctx = Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0

let small_writes_body c ~pid:_ =
  if Api.completed_requests () < 1 then begin
    Api.note (Event.Seg Event.Req_begin);
    Api.write c 1;
    Api.write c 2;
    Api.note (Event.Seg Event.Req_done)
  end

let explore_small ~por ~max_runs ~domains =
  if domains = 0 then
    Explore.explore ~por ~max_runs ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:small_writes_setup ~body:small_writes_body
      ~check:(fun _ -> None)
      ()
  else
    Explore.explore_parallel ~por ~max_runs ~domains ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:small_writes_setup ~body:small_writes_body
      ~check:(fun _ -> None)
      ()

let explore_wr_gap ~por ~max_runs ~domains =
  if domains = 0 then
    Explore.explore ~por ~max_runs ~max_steps:4_000 ~n:3 ~model:Memory.CC ~crash:wr_gap_crash
      ~setup:wr_gap_setup ~body:wr_gap_body ~check:wr_gap_check ()
  else
    Explore.explore_parallel ~por ~max_runs ~max_steps:4_000 ~domains ~n:3 ~model:Memory.CC
      ~crash:wr_gap_crash ~setup:wr_gap_setup ~body:wr_gap_body ~check:wr_gap_check ()

let assert_identical tag (seq : Explore.outcome) (par : Explore.outcome) =
  check ci (tag ^ ": runs") seq.Explore.runs par.Explore.runs;
  check cb (tag ^ ": exhausted") seq.Explore.exhausted par.Explore.exhausted;
  check cb (tag ^ ": violation (incl. shrunk witness)") true
    (par.Explore.violation = seq.Explore.violation)

(* Under `Off and `Sleep the parallel outcome is byte-identical to the
   sequential one; under `Source each task roots its own reduction, so the
   guarantee is domain-count identity — the reference is the 1-domain run
   (re-verified against the sequential verdict where the budget is ample). *)
let source_reference ~explore_case ~seq ~ample =
  let p1 = explore_case 1 in
  if ample then begin
    check cb "source parallel matches sequential verdict" true
      (p1.Explore.exhausted = seq.Explore.exhausted
      && p1.Explore.violation = seq.Explore.violation)
  end;
  p1

let test_differential_clean_tree () =
  List.iter
    (fun por ->
      let seq = explore_small ~por ~max_runs:5_000 ~domains:0 in
      check cb "exhausted" true seq.Explore.exhausted;
      let reference =
        match por with
        | `Source ->
            source_reference ~seq ~ample:true
              ~explore_case:(fun domains -> explore_small ~por ~max_runs:5_000 ~domains)
        | `Off | `Sleep -> seq
      in
      List.iter
        (fun domains ->
          assert_identical
            (Printf.sprintf "small por=%s d=%d" (tier_name por) domains)
            reference
            (explore_small ~por ~max_runs:5_000 ~domains))
        [ 1; 2; 4 ])
    [ `Off; `Sleep; `Source ]

let test_differential_truncated_budgets () =
  (* Regression for the nondeterministic-truncation bug: the old frontier
     expansion silently dropped pending items when the budget ran out
     mid-level, so a truncated parallel result depended on where the
     budget landed.  Now every truncated outcome is byte-identical to the
     sequential one, for any budget and domain count. *)
  List.iter
    (fun por ->
      List.iter
        (fun max_runs ->
          let seq = explore_small ~por ~max_runs ~domains:0 in
          let reference =
            match por with
            | `Source ->
                source_reference ~seq ~ample:false
                  ~explore_case:(fun domains -> explore_small ~por ~max_runs ~domains)
            | `Off | `Sleep -> seq
          in
          List.iter
            (fun domains ->
              assert_identical
                (Printf.sprintf "small por=%s max_runs=%d d=%d" (tier_name por) max_runs domains)
                reference
                (explore_small ~por ~max_runs ~domains))
            [ 1; 2; 4 ])
        [ 1; 2; 3; 7; 40 ])
    [ `Off; `Sleep; `Source ]

let test_differential_violation_crash_plan () =
  (* Robust crash plan, real violation on the DFS spine (the WR FAS gap):
     with an ample budget all domain counts must report the identical
     violation at the identical run count; with a budget that truncates
     before the witness they must all report the identical truncation. *)
  List.iter
    (fun por ->
      List.iter
        (fun max_runs ->
          let seq = explore_wr_gap ~por ~max_runs ~domains:0 in
          let reference =
            match por with
            | `Source ->
                source_reference ~seq ~ample:false
                  ~explore_case:(fun domains -> explore_wr_gap ~por ~max_runs ~domains)
            | `Off | `Sleep -> seq
          in
          List.iter
            (fun domains ->
              assert_identical
                (Printf.sprintf "wr-gap por=%s max_runs=%d d=%d" (tier_name por) max_runs domains)
                reference
                (explore_wr_gap ~por ~max_runs ~domains))
            [ 1; 2; 4 ])
        [ 600; 20_000 ])
    [ `Off; `Sleep; `Source ]

(* --- sleep-set POR equivalence ------------------------------------- *)

(* The reduction must be invisible in the verdict: same [exhausted], same
   first violation (message and shrunk witness), never more runs.  The
   fixed subjects cover the three regimes the tentpole names: a clean
   exhaustive tree (splitter), a WR FAS-gap violation at n=3, and the
   composed SA stack at level 0. *)

let equal_outcomes name (plain : Explore.outcome) (por : Explore.outcome) =
  check cb (name ^ ": identical exhausted") true (por.Explore.exhausted = plain.Explore.exhausted);
  check cb
    (name ^ ": identical violation (message and shrunk witness)")
    true
    (por.Explore.violation = plain.Explore.violation);
  check cb
    (Printf.sprintf "%s: por runs <= plain runs (%d <= %d)" name por.Explore.runs
       plain.Explore.runs)
    true
    (por.Explore.runs <= plain.Explore.runs)

let splitter_setup ctx = Splitter.create ctx

let splitter_body sp ~pid =
  Api.note (Event.Seg Event.Req_begin);
  (if Splitter.try_fast sp ~pid then begin
     Api.note (Event.Seg Event.Cs_begin);
     Api.yield ();
     Api.note (Event.Seg Event.Cs_end);
     Splitter.release sp ~pid
   end);
  Api.note (Event.Seg Event.Req_done)

let me_or_deadlock res =
  if res.Engine.cs_max > 1 then Some "ME violation"
  else if res.Engine.deadlocked then Some "deadlock"
  else None

let explore_splitter ?(domains = 0) ~por ~crash () =
  if domains = 0 then
    Explore.explore ~por ~max_runs:200_000 ~max_steps:4_000 ~n:2 ~model:Memory.CC ~crash
      ~setup:splitter_setup ~body:splitter_body ~check:me_or_deadlock ()
  else
    Explore.explore_parallel ~por ~domains ~max_runs:200_000 ~max_steps:4_000 ~n:2
      ~model:Memory.CC ~crash ~setup:splitter_setup ~body:splitter_body ~check:me_or_deadlock ()

let test_por_splitter_equivalence () =
  let no_crash () = Crash.none in
  let plain = explore_splitter ~por:`Off ~crash:no_crash () in
  let por = explore_splitter ~por:`Sleep ~crash:no_crash () in
  check cb "plain exhausts the splitter tree" true plain.Explore.exhausted;
  check cb "no violation" true (plain.Explore.violation = None);
  equal_outcomes "splitter" plain por;
  check cb
    (Printf.sprintf "at least 2x fewer runs (%d vs %d)" por.Explore.runs plain.Explore.runs)
    true
    (2 * por.Explore.runs <= plain.Explore.runs)

let test_por_parallel_byte_identical () =
  (* Acceptance: with POR on, the parallel explorer returns byte-identical
     outcomes for 1, 2 and 4 domains (and the sequential search) on a
     clean exhaustive tree. *)
  let no_crash () = Crash.none in
  let seq = explore_splitter ~por:`Sleep ~crash:no_crash () in
  check cb "exhausted" true seq.Explore.exhausted;
  List.iter
    (fun domains ->
      let par = explore_splitter ~domains ~por:`Sleep ~crash:no_crash () in
      check cb (Printf.sprintf "%d domains byte-identical" domains) true (par = seq))
    [ 1; 2; 4 ]

let test_por_wr_gap_equivalence () =
  let run por =
    Explore.explore ~por ~max_runs:20_000 ~max_steps:4_000 ~n:3 ~model:Memory.CC
      ~crash:wr_gap_crash ~setup:wr_gap_setup ~body:wr_gap_body ~check:wr_gap_check ()
  in
  let plain = run `Off in
  let por = run `Sleep in
  check cb "plain finds the FAS-gap violation" true (plain.Explore.violation <> None);
  equal_outcomes "wr-gap" plain por

(* SA stack at level 0 around the same FAS gap, now inside the composed
   lock's WR filter: p2 crashes right after the filter's tail FAS while p1
   parks in the application CS (holding the filter) until p0 opens the
   gate.  The recovery path relinquishes the orphaned node and re-enters
   the filter past the still-parked p1 — a weak-ME overlap of the filter
   that the surrounding splitter/arbitrator absorbs, so the check trips on
   the filter's occupancy, not on the application CS. *)
let sa0_setup ctx =
  let gate = Memory.alloc (Engine.Ctx.memory ctx) ~name:"gate" 0 in
  let sa =
    Sa_lock.create ~name:"sa0" ~level:0 ~core:(Bakery.make_named ~name:"sa0.core" ctx) ctx
  in
  (Sa_lock.lock sa, gate)

let sa0_body (lock, gate) ~pid =
  if pid = 0 then begin
    for _ = 1 to 3 do
      Api.yield ()
    done;
    Api.write gate 1
  end
  else begin
    let cs ~pid = if pid = 1 then Api.spin_until gate (Api.Eq 1) in
    Harness.standard_body ~cs ~lock ~requests:1 pid
  end

let sa0_crash () = Crash.on_kind ~pid:2 ~kind:Api.Fas ~occurrence:0 Crash.After

let sa0_check res =
  if res.Engine.cs_max > 1 then Some "ME violation"
  else if
    Array.exists
      (fun (l : Engine.lock_stats) ->
        l.Engine.lock_name = "sa0.filter" && l.Engine.max_occupancy > 1)
      res.Engine.locks
  then Some "filter overlap"
  else None

let test_por_sa0_equivalence () =
  let run por =
    Explore.explore ~por ~max_runs:20_000 ~max_steps:6_000 ~n:3 ~model:Memory.CC ~crash:sa0_crash
      ~setup:sa0_setup ~body:sa0_body ~check:sa0_check ()
  in
  let plain = run `Off in
  let por = run `Sleep in
  (match plain.Explore.violation with
  | Some ("filter overlap", _) -> ()
  | Some (msg, _) -> Alcotest.failf "unexpected violation %S" msg
  | None -> Alcotest.failf "missed the filter overlap (%d runs)" plain.Explore.runs);
  equal_outcomes "sa0" plain por

let test_por_exhausts_wr_tree () =
  (* The WR ME tree at n=2 is far beyond plain enumeration (measured at
     > 40M interleavings); POR exhausts it outright.  Giving the unpruned
     search a budget of several times the POR count and watching it fail
     to finish turns the reduction factor into a proven lower bound. *)
  let run ~por ~max_runs =
    Explore.explore ~por ~max_runs ~max_steps:4_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:Wr_lock.make
      ~body:(fun lock ~pid -> Harness.standard_body ~lock ~requests:1 pid)
      ~check:wr_gap_check ()
  in
  let por = run ~por:`Sleep ~max_runs:100_000 in
  check cb "por exhausts wr n=2" true por.Explore.exhausted;
  check cb "no violation" true (por.Explore.violation = None);
  let plain = run ~por:`Off ~max_runs:(4 * por.Explore.runs) in
  check cb "plain exceeds 4x the por count without exhausting" false plain.Explore.exhausted;
  check cb "plain found no violation either" true (plain.Explore.violation = None)

let test_por_differential_sweep () =
  (* Seeded sweep over random schedule-robust crash plans on the splitter
     subject: whatever the plan does to the tree, plain and POR must agree
     on the verdict, and POR must never run more schedules. *)
  let rng = Random.State.make [| 0x9053; 41 |] in
  for case = 1 to 12 do
    let pid = Random.State.int rng 2 in
    let nth = Random.State.int rng 8 in
    let point = if Random.State.bool rng then Crash.Before else Crash.After in
    let crash () = Crash.at_op ~pid ~nth point in
    let name =
      Printf.sprintf "case %d (pid %d, op %d, %s)" case pid nth
        (match point with Crash.Before -> "before" | Crash.After -> "after")
    in
    let plain = explore_splitter ~por:`Off ~crash () in
    let por = explore_splitter ~por:`Sleep ~crash () in
    equal_outcomes name plain por
  done

(* --- source-set DPOR: differential battery -------------------------- *)

(* Satellite battery for the three-tier explorer: every case runs `Off,
   `Sleep and `Source over the same subject and asserts the identical
   verdict — same [exhausted], same [violation] including the shrunk
   witness — with monotonically non-increasing run counts
   (off >= sleep >= source).  Cases marked [dpar] additionally check
   1/2/4-domain byte-identity under `Source (the parallel determinism
   guarantee) and that the parallel verdict matches the sequential one.
   Subjects span the four families (wr / sa / bakery / splitter), robust
   crash plans, seeded violations and truncating budgets. *)

type dpor_case = {
  dname : string;
  drun : por:[ `Off | `Sleep | `Source ] -> domains:int -> Explore.outcome;
  dpar : bool;
  dmono : bool;
      (* assert sleep >= source runs: holds on crash-free subjects; under a
         crash plan a race reversal can name a crashed pid, and the
         resulting demand-all fallback explores with weaker sleep sets
         than `Sleep's strict left-to-right order — sound, sometimes
         larger. *)
}

let splitter_battery ~crash () ~por ~domains = explore_splitter ~domains ~por ~crash ()

let splitter_trunc ~max_runs ~por ~domains =
  if domains = 0 then
    Explore.explore ~por ~max_runs ~max_steps:4_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:splitter_setup ~body:splitter_body ~check:me_or_deadlock ()
  else
    Explore.explore_parallel ~por ~domains ~max_runs ~max_steps:4_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:splitter_setup ~body:splitter_body ~check:me_or_deadlock ()

let lock_battery ~make ~body ~max_runs ~max_steps ~por ~domains =
  if domains = 0 then
    Explore.explore ~por ~max_runs ~max_steps ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:make ~body ~check:me_or_deadlock ()
  else
    Explore.explore_parallel ~por ~domains ~max_runs ~max_steps ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:make ~body ~check:me_or_deadlock ()

let sa0_battery ~max_runs ~por ~domains =
  if domains = 0 then
    Explore.explore ~por ~max_runs ~max_steps:6_000 ~n:3 ~model:Memory.CC ~crash:sa0_crash
      ~setup:sa0_setup ~body:sa0_body ~check:sa0_check ()
  else
    Explore.explore_parallel ~por ~domains ~max_runs ~max_steps:6_000 ~n:3 ~model:Memory.CC
      ~crash:sa0_crash ~setup:sa0_setup ~body:sa0_body ~check:sa0_check ()

let sa_me_make = lazy (Rme.Spec.find_exn "sa-jjj").Rme.Spec.make

let standard_one lock ~pid = Harness.standard_body ~lock ~requests:1 pid

let dpor_battery_cases =
  (* Seeded robust crash plans, same generator family as the por sweep. *)
  let rng = Random.State.make [| 0x50dc; 7 |] in
  let seeded_crash () =
    let pid = Random.State.int rng 2 in
    let nth = Random.State.int rng 8 in
    let point = if Random.State.bool rng then Crash.Before else Crash.After in
    ( Printf.sprintf "pid %d op %d %s" pid nth
        (match point with Crash.Before -> "before" | Crash.After -> "after"),
      fun () -> Crash.at_op ~pid ~nth point )
  in
  let crash_cases =
    List.init 4 (fun i ->
        let desc, crash = seeded_crash () in
        {
          dname = Printf.sprintf "splitter crash #%d (%s)" (i + 1) desc;
          drun = (fun ~por ~domains -> splitter_battery ~crash () ~por ~domains);
          dpar = false;
          dmono = false;
        })
  in
  [
    {
      dname = "splitter clean exhaustive";
      drun = (fun ~por ~domains -> splitter_battery ~crash:(fun () -> Crash.none) () ~por ~domains);
      dpar = true;
      dmono = true;
    };
  ]
  @ crash_cases
  @ [
      {
        dname = "splitter clean truncated at 20";
        drun = splitter_trunc ~max_runs:20;
        dpar = true;
        dmono = true;
      };
      {
        dname = "racy mutex seeded violation";
        drun = lock_battery ~make:broken_mutex ~body:tiny_body ~max_runs:50_000 ~max_steps:20_000;
        dpar = true;
        dmono = true;
      };
      {
        dname = "wr FAS-gap violation (n=3, robust crash)";
        drun = (fun ~por ~domains -> explore_wr_gap ~por ~max_runs:20_000 ~domains);
        dpar = true;
        dmono = false;
      };
      {
        dname = "sa level-0 filter overlap (n=3, robust crash)";
        drun = sa0_battery ~max_runs:20_000;
        dpar = false;
        dmono = false;
      };
      {
        dname = "wr ME n=2 truncated at 300";
        drun =
          (fun ~por ~domains ->
            lock_battery ~make:Wr_lock.make ~body:standard_one ~max_runs:300 ~max_steps:4_000 ~por
              ~domains);
        dpar = false;
        dmono = true;
      };
      {
        dname = "sa ME n=2 truncated at 1000";
        drun =
          (fun ~por ~domains ->
            lock_battery ~make:(Lazy.force sa_me_make) ~body:standard_one ~max_runs:1_000
              ~max_steps:20_000 ~por ~domains);
        dpar = false;
        dmono = true;
      };
      {
        dname = "bakery truncated at 200";
        drun = lock_battery ~make:Bakery.make ~body:tiny_body ~max_runs:200 ~max_steps:4_000;
        dpar = false;
        dmono = true;
      };
      {
        dname = "arbitrator truncated at 200";
        drun =
          lock_battery
            ~make:(fun ctx -> Arbitrator.as_two_process_lock (Arbitrator.create ctx) ~n:2)
            ~body:tiny_body ~max_runs:200 ~max_steps:4_000;
        dpar = false;
        dmono = true;
      };
    ]

let run_dpor_case { dname; drun; dpar; dmono } =
  let off = drun ~por:`Off ~domains:0 in
  let sleep = drun ~por:`Sleep ~domains:0 in
  let source = drun ~por:`Source ~domains:0 in
  check cb (dname ^ ": sleep/off identical exhausted") true
    (sleep.Explore.exhausted = off.Explore.exhausted);
  check cb (dname ^ ": source/off identical exhausted") true
    (source.Explore.exhausted = off.Explore.exhausted);
  check cb
    (dname ^ ": sleep/off identical violation (incl. shrunk witness)")
    true
    (sleep.Explore.violation = off.Explore.violation);
  (* `Source guarantees the identical answer to "does a violation exist"
     (same message) but its demand-driven order may surface a different
     witness of the same failure; shrinking usually — not always —
     re-converges them (see explore.mli). *)
  (match (off.Explore.violation, source.Explore.violation) with
  | None, None -> ()
  | Some (m, _), Some (m', _) ->
      check cb (dname ^ ": source violation message matches off") true (m = m')
  | Some _, None | None, Some _ ->
      check cb (dname ^ ": source agrees on violation existence") true false);
  check cb
    (Printf.sprintf "%s: sleep never exceeds off (%d >= %d)" dname off.Explore.runs
       sleep.Explore.runs)
    true
    (off.Explore.runs >= sleep.Explore.runs);
  (* Run counts are monotone off >= sleep >= source on every search that
     does not stop early: a violating search stops at the first witness,
     and `Source's demand-driven exploration order can reach the (same)
     violation later than `Sleep's strict preorder. *)
  if dmono && off.Explore.violation = None then
    check cb
      (Printf.sprintf "%s: source never exceeds sleep (%d >= %d)" dname sleep.Explore.runs
         source.Explore.runs)
      true
      (sleep.Explore.runs >= source.Explore.runs);
  if dpar then begin
    (* Domain-count byte-identity under `Source, and the parallel verdict
       must agree with the sequential one (run counts may differ: the
       parallel search roots its reduction at each subtree task). *)
    let p1 = drun ~por:`Source ~domains:1 in
    check cb (dname ^ ": source parallel verdict matches sequential") true
      (p1.Explore.exhausted = source.Explore.exhausted
      &&
      match (p1.Explore.violation, source.Explore.violation) with
      | None, None -> true
      | Some (m, _), Some (m', _) -> m = m'
      | Some _, None | None, Some _ -> false);
    List.iter
      (fun domains ->
        let par = drun ~por:`Source ~domains in
        check cb
          (Printf.sprintf "%s: source %d domains byte-identical" dname domains)
          true (par = p1))
      [ 2; 4 ]
  end

let test_dpor_battery () = List.iter run_dpor_case dpor_battery_cases

(* --- state cache: unit + adversarial collisions ---------------------- *)

let test_statecache_unit () =
  let c = Statecache.create ~capacity:8 () in
  let k = [| 1; 2; 3 |] in
  check cb "miss on empty" true (Statecache.find c ~key:k ~slept:0 = None);
  Statecache.add c ~key:k ~slept:0b01 ~summary:"s";
  (* Godefroid subset rule: a hit is only sound when the stored sleep mask
     is a subset of the current one. *)
  check cb "hit when stored mask is a subset" true
    (Statecache.find c ~key:k ~slept:0b11 = Some "s");
  check cb "hit on the exact mask" true (Statecache.find c ~key:k ~slept:0b01 = Some "s");
  check cb "no hit when the stored mask exceeds" true
    (Statecache.find c ~key:k ~slept:0b10 = None);
  check cb "keys compared structurally" true
    (Statecache.find c ~key:[| 1; 2; 4 |] ~slept:0b11 = None);
  check ci "hits counted" 2 (Statecache.hits c);
  check cb "misses counted" true (Statecache.misses c >= 3);
  (* Direct-mapped eviction: a colliding hash overwrites and counts. *)
  let e = Statecache.create ~hash:(fun _ -> 0) ~capacity:2 () in
  Statecache.add e ~key:[| 1 |] ~slept:0 ~summary:"a";
  check ci "first add evicts nothing" 0 (Statecache.evictions e);
  Statecache.add e ~key:[| 2 |] ~slept:0 ~summary:"b";
  check ci "colliding add evicts" 1 (Statecache.evictions e);
  Statecache.add e ~key:[| 2 |] ~slept:1 ~summary:"b'";
  check ci "same-key overwrite is not an eviction" 1 (Statecache.evictions e);
  check cb "overwrite visible" true (Statecache.find e ~key:[| 2 |] ~slept:1 = Some "b'")

let test_statecache_adversarial () =
  (* A deliberately hostile cache — one effective slot via a constant hash
     — must only cost pruning power, never change the verdict.  Compare a
     clean exhaustive Source search with caching off, with the default
     cache, and with the tiny colliding cache. *)
  let run ?statecache ?cache_capacity () =
    Explore.explore ?statecache ?cache_capacity ~por:`Source ~max_runs:200_000 ~max_steps:4_000
      ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:splitter_setup ~body:splitter_body ~check:me_or_deadlock ()
  in
  let uncached = run ~cache_capacity:0 () in
  let default = run () in
  let tiny = Statecache.create ~hash:(fun _ -> 0) ~capacity:4 () in
  let collided = run ~statecache:tiny () in
  check cb "uncached exhausts" true uncached.Explore.exhausted;
  check cb "default-cache verdict identical" true
    (default.Explore.exhausted = uncached.Explore.exhausted
    && default.Explore.violation = uncached.Explore.violation);
  check cb "collided verdict identical" true
    (collided.Explore.exhausted = uncached.Explore.exhausted
    && collided.Explore.violation = uncached.Explore.violation);
  check cb
    (Printf.sprintf "collisions only lose pruning (%d <= %d <= %d)" default.Explore.runs
       collided.Explore.runs uncached.Explore.runs)
    true
    (default.Explore.runs <= collided.Explore.runs
    && collided.Explore.runs <= uncached.Explore.runs);
  (* Pin the eviction counter: with one effective slot every add over a
     different key evicts, so the counter must sit strictly between zero
     (cache silently unused) and the miss count (each eviction follows a
     missed lookup on a fresh key).  Hits stay at zero here — each fresh
     state evicts the previous one before the search can ever revisit it,
     which is exactly the worst case this test exists to exercise. *)
  check cb
    (Printf.sprintf "forced collisions evict (evictions=%d, hits=%d, misses=%d)"
       (Statecache.evictions tiny) (Statecache.hits tiny) (Statecache.misses tiny))
    true
    (Statecache.evictions tiny > 0
    && Statecache.evictions tiny <= Statecache.misses tiny)

(* --- source-set regression pins -------------------------------------- *)

let test_source_exhausts_sa_wr_trees () =
  (* Budgets pinned from measured run counts (sa: 18_887, wr: 2_037);
     blowing past them means the reduction regressed. *)
  let sa =
    Explore.explore ~por:`Source ~max_runs:25_000 ~max_steps:20_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:(Lazy.force sa_me_make) ~body:standard_one ~check:me_or_deadlock ()
  in
  check cb
    (Printf.sprintf "source exhausts sa ME n=2 within 25k (%d runs)" sa.Explore.runs)
    true sa.Explore.exhausted;
  check cb "sa clean" true (sa.Explore.violation = None);
  let wr =
    Explore.explore ~por:`Source ~max_runs:3_000 ~max_steps:4_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:Wr_lock.make ~body:standard_one ~check:me_or_deadlock ()
  in
  check cb
    (Printf.sprintf "source exhausts wr ME n=2 within 3k (%d runs)" wr.Explore.runs)
    true wr.Explore.exhausted;
  check cb "wr clean" true (wr.Explore.violation = None)

let test_source_splitter_reduction_floor () =
  let plain = explore_splitter ~por:`Off ~crash:(fun () -> Crash.none) () in
  let source = explore_splitter ~por:`Source ~crash:(fun () -> Crash.none) () in
  check cb "both exhaust" true (plain.Explore.exhausted && source.Explore.exhausted);
  check cb
    (Printf.sprintf "splitter reduction >= 91x (%d vs %d)" plain.Explore.runs
       source.Explore.runs)
    true
    (plain.Explore.runs >= 91 * source.Explore.runs)

let () =
  Alcotest.run "explore"
    [
      ( "explorer",
        [
          Alcotest.test_case "finds seeded race" `Quick test_finds_seeded_race;
          Alcotest.test_case "passes correct locks" `Quick test_passes_correct_locks;
          Alcotest.test_case "finds mcs wedge" `Quick test_finds_mcs_wedge_under_crash;
          Alcotest.test_case "exhaustive small program" `Quick test_exhaustive_small_program;
          Alcotest.test_case "truncation is not exhaustion" `Quick test_truncation_not_exhausted;
        ] );
      ( "trace faithfulness",
        [
          Alcotest.test_case "degree mismatch flag" `Quick test_trace_degree_mismatch;
          Alcotest.test_case "strict replay raises" `Quick test_trace_strict_raises;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "wr FAS-gap: sequential witness" `Quick
            test_wr_gap_sequential_finds_violation;
          Alcotest.test_case "wr FAS-gap: 4-domain determinism" `Quick
            test_wr_gap_parallel_determinism;
          Alcotest.test_case "clean tree: identical outcomes" `Quick
            test_parallel_clean_tree_identical;
        ] );
      ( "differential",
        [
          Alcotest.test_case "clean tree: 1/2/4 domains x por" `Quick test_differential_clean_tree;
          Alcotest.test_case "truncated budgets deterministic" `Quick
            test_differential_truncated_budgets;
          Alcotest.test_case "violation + crash plan + truncation" `Quick
            test_differential_violation_crash_plan;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "unit" `Quick test_shrink_unit;
          Alcotest.test_case "non-reproducing input" `Quick test_shrink_keeps_nonreproducing_input;
        ] );
      ( "dpor battery",
        [ Alcotest.test_case "three-tier differential battery" `Quick test_dpor_battery ] );
      ( "statecache",
        [
          Alcotest.test_case "unit: subset rule and eviction" `Quick test_statecache_unit;
          Alcotest.test_case "adversarial collisions" `Quick test_statecache_adversarial;
        ] );
      ( "source pins",
        [
          Alcotest.test_case "sa/wr n=2 exhaust within budget" `Quick
            test_source_exhausts_sa_wr_trees;
          Alcotest.test_case "splitter reduction floor" `Quick
            test_source_splitter_reduction_floor;
        ] );
      ( "por",
        [
          Alcotest.test_case "splitter: plain/por equivalence" `Quick
            test_por_splitter_equivalence;
          Alcotest.test_case "splitter: 1/2/4 domains byte-identical" `Quick
            test_por_parallel_byte_identical;
          Alcotest.test_case "wr FAS-gap: plain/por equivalence" `Quick
            test_por_wr_gap_equivalence;
          Alcotest.test_case "sa level-0: plain/por equivalence" `Quick test_por_sa0_equivalence;
          Alcotest.test_case "wr n=2: por exhausts, plain cannot" `Quick
            test_por_exhausts_wr_tree;
          Alcotest.test_case "differential crash-plan sweep" `Quick test_por_differential_sweep;
        ] );
    ]
