(* Tests for the bounded exhaustive explorer: it must find seeded bugs
   (and shrink their witnessing schedules), and must pass correct locks. *)

open Rme_sim
open Rme_locks
open Rme_check

let check = Alcotest.check

let cb = Alcotest.bool

let ci = Alcotest.int

(* A deliberately broken 2-process mutex: test-and-test-and-set with a
   non-atomic check-then-write — the classic race.  Raw closures (no
   instrumentation) keep the schedule tree small enough to exhaust. *)
let broken_mutex ctx =
  let mem = Engine.Ctx.memory ctx in
  let owner = Memory.alloc mem ~name:"racy.owner" 0 in
  {
    Lock.name = "racy";
    acquire =
      (fun ~pid ->
        let rec try_ () =
          if Api.read owner = 0 then Api.write owner (pid + 1) (* racy: not a CAS *)
          else begin
            Api.spin_until owner (Api.Eq 0);
            try_ ()
          end
        in
        try_ ());
    release = (fun ~pid:_ -> Api.write owner 0);
  }

(* Minimal one-request body: just the lock ops plus the CS markers, so the
   full interleaving tree of two processes stays enumerable. *)
let tiny_body lock ~pid =
  if Api.completed_requests () < 1 then begin
    Api.note (Event.Seg Event.Req_begin);
    lock.Lock.acquire ~pid;
    Api.note (Event.Seg Event.Cs_begin);
    Api.note (Event.Seg Event.Cs_end);
    lock.Lock.release ~pid;
    Api.note (Event.Seg Event.Req_done)
  end

let explore_lock ?(max_runs = 50_000) ?shrink_violations ~make () =
  Explore.explore ~max_runs ?shrink_violations ~n:2 ~model:Memory.CC
    ~crash:(fun () -> Crash.none)
    ~setup:make ~body:tiny_body
    ~check:(fun res ->
      if res.Engine.cs_max > 1 then Some "ME violation"
      else if res.Engine.deadlocked then Some "deadlock"
      else None)
    ()

let test_finds_seeded_race () =
  let outcome = explore_lock ~make:broken_mutex () in
  match outcome.Explore.violation with
  | None -> Alcotest.failf "explorer missed the seeded race (%d runs)" outcome.Explore.runs
  | Some (msg, trace) ->
      check cb "message" true (msg = "ME violation");
      check cb "a violating search is not exhaustive" false outcome.Explore.exhausted;
      (* The witness is shrunk: positional decision vectors limit how far a
         greedy zeroing pass can go, but the trace must stay small. *)
      let nonzero = List.length (List.filter (fun d -> d <> 0) trace) in
      check cb
        (Printf.sprintf "shrunk witness (%d non-default decisions, len %d)" nonzero
           (List.length trace))
        true
        (nonzero <= 8 && List.length trace <= 30)

let test_passes_correct_locks () =
  (* Exhaustive for the one-cell locks; bounded for the larger ones. *)
  List.iter
    (fun (name, max_runs, make) ->
      let outcome = explore_lock ~max_runs ~make () in
      check cb (name ^ " clean") true (outcome.Explore.violation = None))
    [
      ("tas", 60_000, Tas_lock.make);
      ("wr", 8_000, Wr_lock.make);
      ("bakery", 8_000, Bakery.make);
      ("arbitrator", 8_000, fun ctx -> Arbitrator.as_two_process_lock (Arbitrator.create ctx) ~n:2);
    ]

let test_finds_mcs_wedge_under_crash () =
  (* The explorer also finds liveness bugs: plain MCS with a crash of the
     lock holder deadlocks under some (here: most) schedules. *)
  let outcome =
    Explore.explore ~max_runs:2_000 ~max_steps:5_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.on_kind ~pid:0 ~kind:Api.Note ~occurrence:2 Crash.After)
      ~setup:Mcs.make
      ~body:(fun lock ~pid -> tiny_body lock ~pid)
      ~check:(fun res ->
        if res.Engine.deadlocked || res.Engine.timed_out then Some "stuck" else None)
      ()
  in
  check cb "found the wedge" true (outcome.Explore.violation <> None)

let test_shrink_unit () =
  (* Reproduces iff some decision >= 2 appears at position 1. *)
  let reproduces t = match t with _ :: d :: _ -> d >= 2 | _ -> false in
  let shrunk = Explore.shrink ~reproduces [ 1; 3; 1; 0; 2; 0 ] in
  check cb "still reproduces" true (reproduces shrunk);
  check (Alcotest.list ci) "minimal" [ 0; 3 ] shrunk

let test_shrink_keeps_nonreproducing_input () =
  let reproduces _ = false in
  check (Alcotest.list ci) "unchanged" [ 1; 2 ] (Explore.shrink ~reproduces [ 1; 2 ])

let test_exhaustive_small_program () =
  (* Two processes, two instructions each: 4C2 = 6 interleavings. *)
  let explore por =
    Explore.explore ~por ~max_runs:5_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
      ~body:(fun c ~pid:_ ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          Api.write c 1;
          Api.write c 2;
          Api.note (Event.Seg Event.Req_done)
        end)
      ~check:(fun _ -> None)
      ()
  in
  let plain = explore false in
  check cb "exhausted" true plain.Explore.exhausted;
  check cb
    (Printf.sprintf "several interleavings (%d)" plain.Explore.runs)
    true
    (plain.Explore.runs > 50);
  (* The same tree under POR: the note/dispatch steps are local and get
     slept away, but the same-cell writes stay dependent — the search
     still exhausts, with strictly fewer runs. *)
  let por = explore true in
  check cb "por exhausted" true por.Explore.exhausted;
  check cb
    (Printf.sprintf "por prunes (%d < %d)" por.Explore.runs plain.Explore.runs)
    true
    (por.Explore.runs < plain.Explore.runs)

let test_truncation_not_exhausted () =
  (* A correct lock under a tiny run budget: the search must report the
     truncation (not claim exhaustion) and stop scheduling work at once. *)
  let outcome = explore_lock ~max_runs:3 ~make:Tas_lock.make () in
  check ci "runs capped at the budget" 3 outcome.Explore.runs;
  check cb "not exhausted" false outcome.Explore.exhausted;
  check cb "no violation" true (outcome.Explore.violation = None)

(* --- trace-scheduler faithfulness ---------------------------------- *)

let test_trace_degree_mismatch () =
  let record = Vec.create () in
  let mismatch = ref false in
  let sched = Sched.trace ~mismatch ~decisions:(Vec.of_list [ 5 ]) ~record () in
  let p = Sched.pick sched ~runnable:[| 1; 0 |] ~step:0 in
  check cb "out-of-range decision flags a mismatch" true !mismatch;
  check ci "pick still deterministic (5 mod 2 -> second of sorted)" 1 p;
  check ci "degree recorded" 2 (Vec.get record 0);
  let mismatch = ref false in
  let sched = Sched.trace ~mismatch ~decisions:(Vec.of_list [ 1 ]) ~record:(Vec.create ()) () in
  ignore (Sched.pick sched ~runnable:[| 1; 0 |] ~step:0);
  check cb "in-range decision leaves the flag clear" false !mismatch

let test_trace_strict_raises () =
  let sched = Sched.trace ~strict:true ~decisions:(Vec.of_list [ 5 ]) ~record:(Vec.create ()) () in
  Alcotest.check_raises "strict replay raises"
    (Sched.Unfaithful { position = 0; choice = 5; degree = 2 })
    (fun () -> ignore (Sched.pick sched ~runnable:[| 1; 0 |] ~step:0))

(* --- WR-Lock FAS gap: parallel determinism ------------------------- *)

(* A 3-process scenario around the WR-Lock's unsafe FAS window whose
   mutual-exclusion violation the bounded explorer can actually reach:
   p1 parks *inside* its critical section on a gate cell that only p0
   (a non-competing process) sets, and p2 crashes right after its tail
   FAS — in the gap before the predecessor is persisted.  Delaying p0
   lets p2's recovery relinquish the orphaned queue node and re-enter
   past the still-parked p1: two processes in the CS off one unsafe
   crash.  The default schedule (p0 first) is clean, so finding the
   witness takes real search, yet the witness lies on the DFS spine. *)
let wr_gap_setup ctx =
  let gate = Memory.alloc (Engine.Ctx.memory ctx) ~name:"gate" 0 in
  (Wr_lock.make ctx, gate)

let wr_gap_body (lock, gate) ~pid =
  if pid = 0 then begin
    for _ = 1 to 3 do
      Api.yield ()
    done;
    Api.write gate 1
  end
  else begin
    let cs ~pid = if pid = 1 then Api.spin_until gate (Api.Eq 1) in
    Harness.standard_body ~cs ~lock ~requests:1 pid
  end

let wr_gap_crash () = Crash.on_kind ~pid:2 ~kind:Api.Fas ~occurrence:0 Crash.After

let wr_gap_check res = if res.Engine.cs_max > 1 then Some "ME violation" else None

let wr_gap_replay trace =
  let record = Vec.create () in
  let mismatch = ref false in
  let sched = Sched.trace ~mismatch ~decisions:(Vec.of_list trace) ~record () in
  let res =
    Engine.run ~max_steps:4_000 ~n:3 ~model:Memory.CC ~sched ~crash:(wr_gap_crash ())
      ~setup:wr_gap_setup ~body:wr_gap_body ()
  in
  (res, !mismatch)

let test_wr_gap_sequential_finds_violation () =
  let outcome =
    Explore.explore ~max_runs:20_000 ~max_steps:4_000 ~n:3 ~model:Memory.CC ~crash:wr_gap_crash
      ~setup:wr_gap_setup ~body:wr_gap_body ~check:wr_gap_check ()
  in
  match outcome.Explore.violation with
  | None -> Alcotest.failf "missed the FAS-gap violation (%d runs)" outcome.Explore.runs
  | Some (_, trace) ->
      (* Regression for the shrink-faithfulness fix: the reported witness
         must replay without any degree mismatch and still violate. *)
      let res, mismatch = wr_gap_replay trace in
      check cb "witness replays faithfully" false mismatch;
      check cb "witness still violates ME" true (res.Engine.cs_max > 1)

let test_wr_gap_parallel_determinism () =
  let seq =
    Explore.explore ~max_runs:20_000 ~max_steps:4_000 ~n:3 ~model:Memory.CC ~crash:wr_gap_crash
      ~setup:wr_gap_setup ~body:wr_gap_body ~check:wr_gap_check ()
  in
  let par =
    Explore.explore_parallel ~domains:4 ~max_runs:20_000 ~max_steps:4_000 ~n:3 ~model:Memory.CC
      ~crash:wr_gap_crash ~setup:wr_gap_setup ~body:wr_gap_body ~check:wr_gap_check ()
  in
  check cb "sequential found the violation" true (seq.Explore.violation <> None);
  check cb "identical (shrunk) violation" true (par.Explore.violation = seq.Explore.violation);
  check cb "identical exhausted flag" true (par.Explore.exhausted = seq.Explore.exhausted)

let test_parallel_clean_tree_identical () =
  (* On a clean exhaustive search the parallel explorer must return the
     outcome byte-for-byte: same runs count, exhausted, no violation. *)
  let run explorer =
    explorer ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
      ~body:(fun c ~pid:_ ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          Api.write c 1;
          Api.write c 2;
          Api.note (Event.Seg Event.Req_done)
        end)
      ~check:(fun _ -> None)
      ()
  in
  let seq =
    run
      (Explore.explore ~max_runs:5_000 ?max_steps:None ?shrink_violations:None ?record:None
         ?por:None)
  in
  let par =
    run
      (Explore.explore_parallel ~max_runs:5_000 ~domains:4 ?max_steps:None ?split_depth:None
         ?snap_gap:None ?shrink_violations:None ?record:None ?por:None)
  in
  check cb "exhausted" true seq.Explore.exhausted;
  check cb "identical outcomes" true (seq = par)

(* --- differential: sequential vs checkpointed parallel -------------- *)

(* The whole point of the settlement scheme: {runs; exhausted; violation}
   — including the shrunk witness — must be byte-identical to the
   sequential explorer's for every domain count, POR on or off, with and
   without a (robust) crash plan, and under truncating budgets.  The
   structural equality below compares complete outcome records. *)

let small_writes_setup ctx = Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0

let small_writes_body c ~pid:_ =
  if Api.completed_requests () < 1 then begin
    Api.note (Event.Seg Event.Req_begin);
    Api.write c 1;
    Api.write c 2;
    Api.note (Event.Seg Event.Req_done)
  end

let explore_small ~por ~max_runs ~domains =
  if domains = 0 then
    Explore.explore ~por ~max_runs ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:small_writes_setup ~body:small_writes_body
      ~check:(fun _ -> None)
      ()
  else
    Explore.explore_parallel ~por ~max_runs ~domains ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:small_writes_setup ~body:small_writes_body
      ~check:(fun _ -> None)
      ()

let explore_wr_gap ~por ~max_runs ~domains =
  if domains = 0 then
    Explore.explore ~por ~max_runs ~max_steps:4_000 ~n:3 ~model:Memory.CC ~crash:wr_gap_crash
      ~setup:wr_gap_setup ~body:wr_gap_body ~check:wr_gap_check ()
  else
    Explore.explore_parallel ~por ~max_runs ~max_steps:4_000 ~domains ~n:3 ~model:Memory.CC
      ~crash:wr_gap_crash ~setup:wr_gap_setup ~body:wr_gap_body ~check:wr_gap_check ()

let assert_identical tag (seq : Explore.outcome) (par : Explore.outcome) =
  check ci (tag ^ ": runs") seq.Explore.runs par.Explore.runs;
  check cb (tag ^ ": exhausted") seq.Explore.exhausted par.Explore.exhausted;
  check cb (tag ^ ": violation (incl. shrunk witness)") true
    (par.Explore.violation = seq.Explore.violation)

let test_differential_clean_tree () =
  List.iter
    (fun por ->
      let seq = explore_small ~por ~max_runs:5_000 ~domains:0 in
      check cb "exhausted" true seq.Explore.exhausted;
      List.iter
        (fun domains ->
          assert_identical
            (Printf.sprintf "small por=%b d=%d" por domains)
            seq
            (explore_small ~por ~max_runs:5_000 ~domains))
        [ 1; 2; 4 ])
    [ false; true ]

let test_differential_truncated_budgets () =
  (* Regression for the nondeterministic-truncation bug: the old frontier
     expansion silently dropped pending items when the budget ran out
     mid-level, so a truncated parallel result depended on where the
     budget landed.  Now every truncated outcome is byte-identical to the
     sequential one, for any budget and domain count. *)
  List.iter
    (fun por ->
      List.iter
        (fun max_runs ->
          let seq = explore_small ~por ~max_runs ~domains:0 in
          List.iter
            (fun domains ->
              assert_identical
                (Printf.sprintf "small por=%b max_runs=%d d=%d" por max_runs domains)
                seq
                (explore_small ~por ~max_runs ~domains))
            [ 1; 2; 4 ])
        [ 1; 2; 3; 7; 40 ])
    [ false; true ]

let test_differential_violation_crash_plan () =
  (* Robust crash plan, real violation on the DFS spine (the WR FAS gap):
     with an ample budget all domain counts must report the identical
     violation at the identical run count; with a budget that truncates
     before the witness they must all report the identical truncation. *)
  List.iter
    (fun por ->
      List.iter
        (fun max_runs ->
          let seq = explore_wr_gap ~por ~max_runs ~domains:0 in
          List.iter
            (fun domains ->
              assert_identical
                (Printf.sprintf "wr-gap por=%b max_runs=%d d=%d" por max_runs domains)
                seq
                (explore_wr_gap ~por ~max_runs ~domains))
            [ 1; 2; 4 ])
        [ 600; 20_000 ])
    [ false; true ]

(* --- sleep-set POR equivalence ------------------------------------- *)

(* The reduction must be invisible in the verdict: same [exhausted], same
   first violation (message and shrunk witness), never more runs.  The
   fixed subjects cover the three regimes the tentpole names: a clean
   exhaustive tree (splitter), a WR FAS-gap violation at n=3, and the
   composed SA stack at level 0. *)

let equal_outcomes name (plain : Explore.outcome) (por : Explore.outcome) =
  check cb (name ^ ": identical exhausted") true (por.Explore.exhausted = plain.Explore.exhausted);
  check cb
    (name ^ ": identical violation (message and shrunk witness)")
    true
    (por.Explore.violation = plain.Explore.violation);
  check cb
    (Printf.sprintf "%s: por runs <= plain runs (%d <= %d)" name por.Explore.runs
       plain.Explore.runs)
    true
    (por.Explore.runs <= plain.Explore.runs)

let splitter_setup ctx = Splitter.create ctx

let splitter_body sp ~pid =
  Api.note (Event.Seg Event.Req_begin);
  (if Splitter.try_fast sp ~pid then begin
     Api.note (Event.Seg Event.Cs_begin);
     Api.yield ();
     Api.note (Event.Seg Event.Cs_end);
     Splitter.release sp ~pid
   end);
  Api.note (Event.Seg Event.Req_done)

let me_or_deadlock res =
  if res.Engine.cs_max > 1 then Some "ME violation"
  else if res.Engine.deadlocked then Some "deadlock"
  else None

let explore_splitter ?(domains = 0) ~por ~crash () =
  if domains = 0 then
    Explore.explore ~por ~max_runs:200_000 ~max_steps:4_000 ~n:2 ~model:Memory.CC ~crash
      ~setup:splitter_setup ~body:splitter_body ~check:me_or_deadlock ()
  else
    Explore.explore_parallel ~por ~domains ~max_runs:200_000 ~max_steps:4_000 ~n:2
      ~model:Memory.CC ~crash ~setup:splitter_setup ~body:splitter_body ~check:me_or_deadlock ()

let test_por_splitter_equivalence () =
  let no_crash () = Crash.none in
  let plain = explore_splitter ~por:false ~crash:no_crash () in
  let por = explore_splitter ~por:true ~crash:no_crash () in
  check cb "plain exhausts the splitter tree" true plain.Explore.exhausted;
  check cb "no violation" true (plain.Explore.violation = None);
  equal_outcomes "splitter" plain por;
  check cb
    (Printf.sprintf "at least 2x fewer runs (%d vs %d)" por.Explore.runs plain.Explore.runs)
    true
    (2 * por.Explore.runs <= plain.Explore.runs)

let test_por_parallel_byte_identical () =
  (* Acceptance: with POR on, the parallel explorer returns byte-identical
     outcomes for 1, 2 and 4 domains (and the sequential search) on a
     clean exhaustive tree. *)
  let no_crash () = Crash.none in
  let seq = explore_splitter ~por:true ~crash:no_crash () in
  check cb "exhausted" true seq.Explore.exhausted;
  List.iter
    (fun domains ->
      let par = explore_splitter ~domains ~por:true ~crash:no_crash () in
      check cb (Printf.sprintf "%d domains byte-identical" domains) true (par = seq))
    [ 1; 2; 4 ]

let test_por_wr_gap_equivalence () =
  let run por =
    Explore.explore ~por ~max_runs:20_000 ~max_steps:4_000 ~n:3 ~model:Memory.CC
      ~crash:wr_gap_crash ~setup:wr_gap_setup ~body:wr_gap_body ~check:wr_gap_check ()
  in
  let plain = run false in
  let por = run true in
  check cb "plain finds the FAS-gap violation" true (plain.Explore.violation <> None);
  equal_outcomes "wr-gap" plain por

(* SA stack at level 0 around the same FAS gap, now inside the composed
   lock's WR filter: p2 crashes right after the filter's tail FAS while p1
   parks in the application CS (holding the filter) until p0 opens the
   gate.  The recovery path relinquishes the orphaned node and re-enters
   the filter past the still-parked p1 — a weak-ME overlap of the filter
   that the surrounding splitter/arbitrator absorbs, so the check trips on
   the filter's occupancy, not on the application CS. *)
let sa0_setup ctx =
  let gate = Memory.alloc (Engine.Ctx.memory ctx) ~name:"gate" 0 in
  let sa =
    Sa_lock.create ~name:"sa0" ~level:0 ~core:(Bakery.make_named ~name:"sa0.core" ctx) ctx
  in
  (Sa_lock.lock sa, gate)

let sa0_body (lock, gate) ~pid =
  if pid = 0 then begin
    for _ = 1 to 3 do
      Api.yield ()
    done;
    Api.write gate 1
  end
  else begin
    let cs ~pid = if pid = 1 then Api.spin_until gate (Api.Eq 1) in
    Harness.standard_body ~cs ~lock ~requests:1 pid
  end

let sa0_crash () = Crash.on_kind ~pid:2 ~kind:Api.Fas ~occurrence:0 Crash.After

let sa0_check res =
  if res.Engine.cs_max > 1 then Some "ME violation"
  else if
    Array.exists
      (fun (l : Engine.lock_stats) ->
        l.Engine.lock_name = "sa0.filter" && l.Engine.max_occupancy > 1)
      res.Engine.locks
  then Some "filter overlap"
  else None

let test_por_sa0_equivalence () =
  let run por =
    Explore.explore ~por ~max_runs:20_000 ~max_steps:6_000 ~n:3 ~model:Memory.CC ~crash:sa0_crash
      ~setup:sa0_setup ~body:sa0_body ~check:sa0_check ()
  in
  let plain = run false in
  let por = run true in
  (match plain.Explore.violation with
  | Some ("filter overlap", _) -> ()
  | Some (msg, _) -> Alcotest.failf "unexpected violation %S" msg
  | None -> Alcotest.failf "missed the filter overlap (%d runs)" plain.Explore.runs);
  equal_outcomes "sa0" plain por

let test_por_exhausts_wr_tree () =
  (* The WR ME tree at n=2 is far beyond plain enumeration (measured at
     > 40M interleavings); POR exhausts it outright.  Giving the unpruned
     search a budget of several times the POR count and watching it fail
     to finish turns the reduction factor into a proven lower bound. *)
  let run ~por ~max_runs =
    Explore.explore ~por ~max_runs ~max_steps:4_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:Wr_lock.make
      ~body:(fun lock ~pid -> Harness.standard_body ~lock ~requests:1 pid)
      ~check:wr_gap_check ()
  in
  let por = run ~por:true ~max_runs:100_000 in
  check cb "por exhausts wr n=2" true por.Explore.exhausted;
  check cb "no violation" true (por.Explore.violation = None);
  let plain = run ~por:false ~max_runs:(4 * por.Explore.runs) in
  check cb "plain exceeds 4x the por count without exhausting" false plain.Explore.exhausted;
  check cb "plain found no violation either" true (plain.Explore.violation = None)

let test_por_differential_sweep () =
  (* Seeded sweep over random schedule-robust crash plans on the splitter
     subject: whatever the plan does to the tree, plain and POR must agree
     on the verdict, and POR must never run more schedules. *)
  let rng = Random.State.make [| 0x9053; 41 |] in
  for case = 1 to 12 do
    let pid = Random.State.int rng 2 in
    let nth = Random.State.int rng 8 in
    let point = if Random.State.bool rng then Crash.Before else Crash.After in
    let crash () = Crash.at_op ~pid ~nth point in
    let name =
      Printf.sprintf "case %d (pid %d, op %d, %s)" case pid nth
        (match point with Crash.Before -> "before" | Crash.After -> "after")
    in
    let plain = explore_splitter ~por:false ~crash () in
    let por = explore_splitter ~por:true ~crash () in
    equal_outcomes name plain por
  done

let () =
  Alcotest.run "explore"
    [
      ( "explorer",
        [
          Alcotest.test_case "finds seeded race" `Quick test_finds_seeded_race;
          Alcotest.test_case "passes correct locks" `Quick test_passes_correct_locks;
          Alcotest.test_case "finds mcs wedge" `Quick test_finds_mcs_wedge_under_crash;
          Alcotest.test_case "exhaustive small program" `Quick test_exhaustive_small_program;
          Alcotest.test_case "truncation is not exhaustion" `Quick test_truncation_not_exhausted;
        ] );
      ( "trace faithfulness",
        [
          Alcotest.test_case "degree mismatch flag" `Quick test_trace_degree_mismatch;
          Alcotest.test_case "strict replay raises" `Quick test_trace_strict_raises;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "wr FAS-gap: sequential witness" `Quick
            test_wr_gap_sequential_finds_violation;
          Alcotest.test_case "wr FAS-gap: 4-domain determinism" `Quick
            test_wr_gap_parallel_determinism;
          Alcotest.test_case "clean tree: identical outcomes" `Quick
            test_parallel_clean_tree_identical;
        ] );
      ( "differential",
        [
          Alcotest.test_case "clean tree: 1/2/4 domains x por" `Quick test_differential_clean_tree;
          Alcotest.test_case "truncated budgets deterministic" `Quick
            test_differential_truncated_budgets;
          Alcotest.test_case "violation + crash plan + truncation" `Quick
            test_differential_violation_crash_plan;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "unit" `Quick test_shrink_unit;
          Alcotest.test_case "non-reproducing input" `Quick test_shrink_keeps_nonreproducing_input;
        ] );
      ( "por",
        [
          Alcotest.test_case "splitter: plain/por equivalence" `Quick
            test_por_splitter_equivalence;
          Alcotest.test_case "splitter: 1/2/4 domains byte-identical" `Quick
            test_por_parallel_byte_identical;
          Alcotest.test_case "wr FAS-gap: plain/por equivalence" `Quick
            test_por_wr_gap_equivalence;
          Alcotest.test_case "sa level-0: plain/por equivalence" `Quick test_por_sa0_equivalence;
          Alcotest.test_case "wr n=2: por exhausts, plain cannot" `Quick
            test_por_exhausts_wr_tree;
          Alcotest.test_case "differential crash-plan sweep" `Quick test_por_differential_sweep;
        ] );
    ]
