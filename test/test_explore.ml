(* Tests for the bounded exhaustive explorer: it must find seeded bugs
   (and shrink their witnessing schedules), and must pass correct locks. *)

open Rme_sim
open Rme_locks
open Rme_check

let check = Alcotest.check

let cb = Alcotest.bool

let ci = Alcotest.int

(* A deliberately broken 2-process mutex: test-and-test-and-set with a
   non-atomic check-then-write — the classic race.  Raw closures (no
   instrumentation) keep the schedule tree small enough to exhaust. *)
let broken_mutex ctx =
  let mem = Engine.Ctx.memory ctx in
  let owner = Memory.alloc mem ~name:"racy.owner" 0 in
  {
    Lock.name = "racy";
    acquire =
      (fun ~pid ->
        let rec try_ () =
          if Api.read owner = 0 then Api.write owner (pid + 1) (* racy: not a CAS *)
          else begin
            Api.spin_until owner (Api.Eq 0);
            try_ ()
          end
        in
        try_ ());
    release = (fun ~pid:_ -> Api.write owner 0);
  }

(* Minimal one-request body: just the lock ops plus the CS markers, so the
   full interleaving tree of two processes stays enumerable. *)
let tiny_body lock ~pid =
  if Api.completed_requests () < 1 then begin
    Api.note (Event.Seg Event.Req_begin);
    lock.Lock.acquire ~pid;
    Api.note (Event.Seg Event.Cs_begin);
    Api.note (Event.Seg Event.Cs_end);
    lock.Lock.release ~pid;
    Api.note (Event.Seg Event.Req_done)
  end

let explore_lock ?(max_runs = 50_000) ?shrink_violations ~make () =
  Explore.explore ~max_runs ?shrink_violations ~n:2 ~model:Memory.CC
    ~crash:(fun () -> Crash.none)
    ~setup:make ~body:tiny_body
    ~check:(fun res ->
      if res.Engine.cs_max > 1 then Some "ME violation"
      else if res.Engine.deadlocked then Some "deadlock"
      else None)
    ()

let test_finds_seeded_race () =
  let outcome = explore_lock ~make:broken_mutex () in
  match outcome.Explore.violation with
  | None -> Alcotest.failf "explorer missed the seeded race (%d runs)" outcome.Explore.runs
  | Some (msg, trace) ->
      check cb "message" true (msg = "ME violation");
      check cb "a violating search is not exhaustive" false outcome.Explore.exhausted;
      (* The witness is shrunk: positional decision vectors limit how far a
         greedy zeroing pass can go, but the trace must stay small. *)
      let nonzero = List.length (List.filter (fun d -> d <> 0) trace) in
      check cb
        (Printf.sprintf "shrunk witness (%d non-default decisions, len %d)" nonzero
           (List.length trace))
        true
        (nonzero <= 8 && List.length trace <= 30)

let test_passes_correct_locks () =
  (* Exhaustive for the one-cell locks; bounded for the larger ones. *)
  List.iter
    (fun (name, max_runs, make) ->
      let outcome = explore_lock ~max_runs ~make () in
      check cb (name ^ " clean") true (outcome.Explore.violation = None))
    [
      ("tas", 60_000, Tas_lock.make);
      ("wr", 8_000, Wr_lock.make);
      ("bakery", 8_000, Bakery.make);
      ("arbitrator", 8_000, fun ctx -> Arbitrator.as_two_process_lock (Arbitrator.create ctx) ~n:2);
    ]

let test_finds_mcs_wedge_under_crash () =
  (* The explorer also finds liveness bugs: plain MCS with a crash of the
     lock holder deadlocks under some (here: most) schedules. *)
  let outcome =
    Explore.explore ~max_runs:2_000 ~max_steps:5_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.on_kind ~pid:0 ~kind:Api.Note ~occurrence:2 Crash.After)
      ~setup:Mcs.make
      ~body:(fun lock ~pid -> tiny_body lock ~pid)
      ~check:(fun res ->
        if res.Engine.deadlocked || res.Engine.timed_out then Some "stuck" else None)
      ()
  in
  check cb "found the wedge" true (outcome.Explore.violation <> None)

let test_shrink_unit () =
  (* Reproduces iff some decision >= 2 appears at position 1. *)
  let reproduces t = match t with _ :: d :: _ -> d >= 2 | _ -> false in
  let shrunk = Explore.shrink ~reproduces [ 1; 3; 1; 0; 2; 0 ] in
  check cb "still reproduces" true (reproduces shrunk);
  check (Alcotest.list ci) "minimal" [ 0; 3 ] shrunk

let test_shrink_keeps_nonreproducing_input () =
  let reproduces _ = false in
  check (Alcotest.list ci) "unchanged" [ 1; 2 ] (Explore.shrink ~reproduces [ 1; 2 ])

let test_exhaustive_small_program () =
  (* Two processes, two instructions each: 4C2 = 6 interleavings. *)
  let count = ref 0 in
  let outcome =
    Explore.explore ~max_runs:5_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
      ~body:(fun c ~pid:_ ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          Api.write c 1;
          Api.write c 2;
          Api.note (Event.Seg Event.Req_done)
        end)
      ~check:(fun _ ->
        incr count;
        None)
      ()
  in
  check cb "exhausted" true outcome.Explore.exhausted;
  check cb
    (Printf.sprintf "several interleavings (%d)" outcome.Explore.runs)
    true
    (outcome.Explore.runs > 50)

let test_truncation_not_exhausted () =
  (* A correct lock under a tiny run budget: the search must report the
     truncation (not claim exhaustion) and stop scheduling work at once. *)
  let outcome = explore_lock ~max_runs:3 ~make:Tas_lock.make () in
  check ci "runs capped at the budget" 3 outcome.Explore.runs;
  check cb "not exhausted" false outcome.Explore.exhausted;
  check cb "no violation" true (outcome.Explore.violation = None)

(* --- trace-scheduler faithfulness ---------------------------------- *)

let test_trace_degree_mismatch () =
  let record = Vec.create () in
  let mismatch = ref false in
  let sched = Sched.trace ~mismatch ~decisions:(Vec.of_list [ 5 ]) ~record () in
  let p = Sched.pick sched ~runnable:[| 1; 0 |] ~step:0 in
  check cb "out-of-range decision flags a mismatch" true !mismatch;
  check ci "pick still deterministic (5 mod 2 -> second of sorted)" 1 p;
  check ci "degree recorded" 2 (Vec.get record 0);
  let mismatch = ref false in
  let sched = Sched.trace ~mismatch ~decisions:(Vec.of_list [ 1 ]) ~record:(Vec.create ()) () in
  ignore (Sched.pick sched ~runnable:[| 1; 0 |] ~step:0);
  check cb "in-range decision leaves the flag clear" false !mismatch

let test_trace_strict_raises () =
  let sched = Sched.trace ~strict:true ~decisions:(Vec.of_list [ 5 ]) ~record:(Vec.create ()) () in
  Alcotest.check_raises "strict replay raises"
    (Sched.Unfaithful { position = 0; choice = 5; degree = 2 })
    (fun () -> ignore (Sched.pick sched ~runnable:[| 1; 0 |] ~step:0))

(* --- WR-Lock FAS gap: parallel determinism ------------------------- *)

(* A 3-process scenario around the WR-Lock's unsafe FAS window whose
   mutual-exclusion violation the bounded explorer can actually reach:
   p1 parks *inside* its critical section on a gate cell that only p0
   (a non-competing process) sets, and p2 crashes right after its tail
   FAS — in the gap before the predecessor is persisted.  Delaying p0
   lets p2's recovery relinquish the orphaned queue node and re-enter
   past the still-parked p1: two processes in the CS off one unsafe
   crash.  The default schedule (p0 first) is clean, so finding the
   witness takes real search, yet the witness lies on the DFS spine. *)
let wr_gap_setup ctx =
  let gate = Memory.alloc (Engine.Ctx.memory ctx) ~name:"gate" 0 in
  (Wr_lock.make ctx, gate)

let wr_gap_body (lock, gate) ~pid =
  if pid = 0 then begin
    for _ = 1 to 3 do
      Api.yield ()
    done;
    Api.write gate 1
  end
  else begin
    let cs ~pid = if pid = 1 then Api.spin_until gate (Api.Eq 1) in
    Harness.standard_body ~cs ~lock ~requests:1 pid
  end

let wr_gap_crash () = Crash.on_kind ~pid:2 ~kind:Api.Fas ~occurrence:0 Crash.After

let wr_gap_check res = if res.Engine.cs_max > 1 then Some "ME violation" else None

let wr_gap_replay trace =
  let record = Vec.create () in
  let mismatch = ref false in
  let sched = Sched.trace ~mismatch ~decisions:(Vec.of_list trace) ~record () in
  let res =
    Engine.run ~max_steps:4_000 ~n:3 ~model:Memory.CC ~sched ~crash:(wr_gap_crash ())
      ~setup:wr_gap_setup ~body:wr_gap_body ()
  in
  (res, !mismatch)

let test_wr_gap_sequential_finds_violation () =
  let outcome =
    Explore.explore ~max_runs:20_000 ~max_steps:4_000 ~n:3 ~model:Memory.CC ~crash:wr_gap_crash
      ~setup:wr_gap_setup ~body:wr_gap_body ~check:wr_gap_check ()
  in
  match outcome.Explore.violation with
  | None -> Alcotest.failf "missed the FAS-gap violation (%d runs)" outcome.Explore.runs
  | Some (_, trace) ->
      (* Regression for the shrink-faithfulness fix: the reported witness
         must replay without any degree mismatch and still violate. *)
      let res, mismatch = wr_gap_replay trace in
      check cb "witness replays faithfully" false mismatch;
      check cb "witness still violates ME" true (res.Engine.cs_max > 1)

let test_wr_gap_parallel_determinism () =
  let seq =
    Explore.explore ~max_runs:20_000 ~max_steps:4_000 ~n:3 ~model:Memory.CC ~crash:wr_gap_crash
      ~setup:wr_gap_setup ~body:wr_gap_body ~check:wr_gap_check ()
  in
  let par =
    Explore.explore_parallel ~domains:4 ~max_runs:20_000 ~max_steps:4_000 ~n:3 ~model:Memory.CC
      ~crash:wr_gap_crash ~setup:wr_gap_setup ~body:wr_gap_body ~check:wr_gap_check ()
  in
  check cb "sequential found the violation" true (seq.Explore.violation <> None);
  check cb "identical (shrunk) violation" true (par.Explore.violation = seq.Explore.violation);
  check cb "identical exhausted flag" true (par.Explore.exhausted = seq.Explore.exhausted)

let test_parallel_clean_tree_identical () =
  (* On a clean exhaustive search the parallel explorer must return the
     outcome byte-for-byte: same runs count, exhausted, no violation. *)
  let run explorer =
    explorer ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
      ~body:(fun c ~pid:_ ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          Api.write c 1;
          Api.write c 2;
          Api.note (Event.Seg Event.Req_done)
        end)
      ~check:(fun _ -> None)
      ()
  in
  let seq =
    run (Explore.explore ~max_runs:5_000 ?max_steps:None ?shrink_violations:None ?record:None)
  in
  let par =
    run (Explore.explore_parallel ~max_runs:5_000 ~domains:4 ?max_steps:None ?split_depth:None
           ?shrink_violations:None ?record:None)
  in
  check cb "exhausted" true seq.Explore.exhausted;
  check cb "identical outcomes" true (seq = par)

let () =
  Alcotest.run "explore"
    [
      ( "explorer",
        [
          Alcotest.test_case "finds seeded race" `Quick test_finds_seeded_race;
          Alcotest.test_case "passes correct locks" `Quick test_passes_correct_locks;
          Alcotest.test_case "finds mcs wedge" `Quick test_finds_mcs_wedge_under_crash;
          Alcotest.test_case "exhaustive small program" `Quick test_exhaustive_small_program;
          Alcotest.test_case "truncation is not exhaustion" `Quick test_truncation_not_exhausted;
        ] );
      ( "trace faithfulness",
        [
          Alcotest.test_case "degree mismatch flag" `Quick test_trace_degree_mismatch;
          Alcotest.test_case "strict replay raises" `Quick test_trace_strict_raises;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "wr FAS-gap: sequential witness" `Quick
            test_wr_gap_sequential_finds_violation;
          Alcotest.test_case "wr FAS-gap: 4-domain determinism" `Quick
            test_wr_gap_parallel_determinism;
          Alcotest.test_case "clean tree: identical outcomes" `Quick
            test_parallel_clean_tree_identical;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "unit" `Quick test_shrink_unit;
          Alcotest.test_case "non-reproducing input" `Quick test_shrink_keeps_nonreproducing_input;
        ] );
    ]
