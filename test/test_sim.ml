(* Unit tests for the simulator substrate: memory/RMR accounting, crash
   plans, schedulers, and basic engine behaviour. *)

open Rme_sim

let check = Alcotest.check

let ci = Alcotest.int

let cb = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Memory / RMR accounting                                             *)
(* ------------------------------------------------------------------ *)

let test_cc_read_caching () =
  let mem = Memory.create Memory.CC ~n:2 in
  let c = Memory.alloc mem ~name:"x" 7 in
  let v, r = Memory.read mem ~pid:0 c in
  check ci "value" 7 v;
  check ci "first read misses" 1 r;
  let _, r = Memory.read mem ~pid:0 c in
  check ci "second read hits" 0 r;
  let _, r = Memory.read mem ~pid:1 c in
  check ci "other process misses" 1 r

let test_cc_write_invalidates () =
  let mem = Memory.create Memory.CC ~n:2 in
  let c = Memory.alloc mem ~name:"x" 0 in
  let _ = Memory.read mem ~pid:0 c in
  let r = Memory.write mem ~pid:1 c 5 in
  check ci "write costs one RMR" 1 r;
  let v, r = Memory.read mem ~pid:0 c in
  check ci "reader refetches" 1 r;
  check ci "sees new value" 5 v;
  let _, r = Memory.read mem ~pid:1 c in
  check ci "writer reads its own cache" 0 r

let test_cc_failed_cas_keeps_caches () =
  let mem = Memory.create Memory.CC ~n:2 in
  let c = Memory.alloc mem ~name:"x" 1 in
  let _ = Memory.read mem ~pid:0 c in
  let ok, r = Memory.cas mem ~pid:1 c ~expect:9 ~value:2 in
  check cb "cas failed" false ok;
  check ci "failed cas still costs" 1 r;
  let _, r = Memory.read mem ~pid:0 c in
  check ci "reader cache still valid" 0 r

let test_cc_successful_cas_invalidates () =
  let mem = Memory.create Memory.CC ~n:2 in
  let c = Memory.alloc mem ~name:"x" 1 in
  let _ = Memory.read mem ~pid:0 c in
  let ok, _ = Memory.cas mem ~pid:1 c ~expect:1 ~value:2 in
  check cb "cas ok" true ok;
  let v, r = Memory.read mem ~pid:0 c in
  check ci "invalidated" 1 r;
  check ci "new value" 2 v

let test_dsm_home_locality () =
  let mem = Memory.create Memory.DSM ~n:3 in
  let local = Memory.alloc mem ~home:1 ~name:"local" 0 in
  let global = Memory.alloc mem ~name:"global" 0 in
  let _, r = Memory.read mem ~pid:1 local in
  check ci "home read is local" 0 r;
  let _, r = Memory.read mem ~pid:0 local in
  check ci "remote read costs" 1 r;
  check ci "home write is local" 0 (Memory.write mem ~pid:1 local 3);
  check ci "remote write costs" 1 (Memory.write mem ~pid:2 local 4);
  let _, r = Memory.read mem ~pid:0 global in
  check ci "global cell is remote to all" 1 r;
  let _, r = Memory.faa mem ~pid:2 global 1 in
  check ci "global faa remote" 1 r

let test_fas_faa_semantics () =
  let mem = Memory.create Memory.CC ~n:1 in
  let c = Memory.alloc mem ~name:"x" 10 in
  let old, _ = Memory.fas mem ~pid:0 c 20 in
  check ci "fas returns old" 10 old;
  check ci "fas stored" 20 (Memory.peek mem c);
  let old, _ = Memory.faa mem ~pid:0 c 5 in
  check ci "faa returns old" 20 old;
  check ci "faa added" 25 (Memory.peek mem c)

(* ------------------------------------------------------------------ *)
(* Crash plans                                                         *)
(* ------------------------------------------------------------------ *)

let info ?(pid = 0) ?(step = 0) ?(op_index = 0) ?(kind = Api.Read) ?cell ?note
    ?(unsafe_wrt = []) () =
  { Crash.pid; step; op_index; kind; cell; note; unsafe_wrt }

let test_crash_none () =
  check cb "no crash" true (Crash.on_op Crash.none (info ()) = Crash.No_crash)

let test_crash_at_op () =
  let plan = Crash.at_op ~pid:1 ~nth:2 Crash.Before in
  check cb "wrong pid" true (Crash.on_op plan (info ~pid:0 ~op_index:2 ()) = Crash.No_crash);
  check cb "wrong index" true (Crash.on_op plan (info ~pid:1 ~op_index:1 ()) = Crash.No_crash);
  check cb "fires" true (Crash.on_op plan (info ~pid:1 ~op_index:2 ()) = Crash.Crash Crash.Before);
  check cb "fires once" true (Crash.on_op plan (info ~pid:1 ~op_index:2 ()) = Crash.No_crash)

let test_crash_on_kind_occurrence () =
  let plan = Crash.on_kind ~pid:0 ~kind:Api.Fas ~occurrence:1 Crash.After in
  check cb "read ignored" true (Crash.on_op plan (info ~kind:Api.Read ()) = Crash.No_crash);
  check cb "first fas ignored" true (Crash.on_op plan (info ~kind:Api.Fas ()) = Crash.No_crash);
  check cb "second fas fires" true (Crash.on_op plan (info ~kind:Api.Fas ()) = Crash.Crash Crash.After)

let test_crash_random_budget () =
  let plan = Crash.random ~seed:42 ~rate:1.0 ~max_crashes:3 () in
  let fired = ref 0 in
  for i = 0 to 9 do
    match Crash.on_op plan (info ~op_index:i ()) with
    | Crash.Crash _ -> incr fired
    | Crash.No_crash -> ()
  done;
  check ci "budget respected" 3 !fired

let test_crash_async_at () =
  let plan = Crash.async_at [ (5, 1); (10, 2) ] in
  check cb "nothing before" true (Crash.async plan ~step:4 = []);
  check cb "fires at 5" true (Crash.async plan ~step:5 = [ 1 ]);
  check cb "once" true (Crash.async plan ~step:6 = []);
  check cb "second at 12" true (Crash.async plan ~step:12 = [ 2 ])

let test_crash_all_combines () =
  let plan = Crash.all [ Crash.at_op ~pid:0 ~nth:0 Crash.Before; Crash.at_op ~pid:1 ~nth:0 Crash.After ] in
  check cb "first" true (Crash.on_op plan (info ~pid:0 ()) = Crash.Crash Crash.Before);
  check cb "second" true (Crash.on_op plan (info ~pid:1 ()) = Crash.Crash Crash.After)

(* ------------------------------------------------------------------ *)
(* Schedulers                                                          *)
(* ------------------------------------------------------------------ *)

let test_round_robin_cycles () =
  let s = Sched.round_robin () in
  let runnable = [| 0; 1; 2 |] in
  let picks = List.init 6 (fun i -> Sched.pick s ~runnable ~step:i) in
  check (Alcotest.list ci) "cycle" [ 1; 2; 0; 1; 2; 0 ] picks

let test_round_robin_skips_blocked () =
  let s = Sched.round_robin () in
  let p1 = Sched.pick s ~runnable:[| 0; 2 |] ~step:0 in
  let p2 = Sched.pick s ~runnable:[| 0; 2 |] ~step:1 in
  check (Alcotest.list ci) "skips" [ 2; 0 ] [ p1; p2 ]

let test_random_sched_is_fair () =
  let s = Sched.random ~seed:7 in
  let counts = Array.make 3 0 in
  for i = 0 to 2999 do
    let p = Sched.pick s ~runnable:[| 0; 1; 2 |] ~step:i in
    counts.(p) <- counts.(p) + 1
  done;
  Array.iter (fun c -> check cb "roughly uniform" true (c > 800 && c < 1200)) counts

let test_random_sched_deterministic () =
  let run () =
    let s = Sched.random ~seed:11 in
    List.init 20 (fun i -> Sched.pick s ~runnable:[| 0; 1; 2; 3 |] ~step:i)
  in
  check (Alcotest.list ci) "same seed, same schedule" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Engine basics                                                       *)
(* ------------------------------------------------------------------ *)

(* A body that increments a shared counter [requests] times, no locking. *)
let counter_body cell ~requests ~pid:_ =
  while Api.completed_requests () < requests do
    Api.note (Event.Seg Event.Req_begin);
    let v = Api.read cell in
    Api.write cell (v + 1);
    Api.note (Event.Seg Event.Req_done)
  done

let test_burst_sched_bursts () =
  let s = Sched.burst ~seed:3 ~len:4 in
  let picks = List.init 12 (fun i -> Sched.pick s ~runnable:[| 0; 1; 2 |] ~step:i) in
  (* Consecutive picks come in runs of exactly 4. *)
  let rec runs acc current count = function
    | [] -> List.rev (count :: acc)
    | p :: rest ->
        if p = current then runs acc current (count + 1) rest
        else runs (count :: acc) p 1 rest
  in
  (match picks with
  | p :: rest ->
      (* Adjacent bursts of the same pid merge, so runs are multiples of 4. *)
      List.iter (fun len -> check ci "burst multiple" 0 (len mod 4)) (runs [] p 1 rest)
  | [] -> Alcotest.fail "no picks");
  (* Burst scheduling drives a lock correctly. *)
  let s = Sched.burst ~seed:9 ~len:6 in
  let res =
    Engine.run ~n:3 ~model:Memory.CC ~sched:s ~crash:Crash.none
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
      ~body:(fun c ~pid -> counter_body c ~requests:4 ~pid)
      ()
  in
  check ci "all done under burst" 12 (Engine.total_completed res)

let run_counter ?(n = 3) ?(requests = 5) ?(crash = Crash.none) ?(sched = Sched.round_robin ()) () =
  let cellr = ref None in
  let res =
    Engine.run ~n ~model:Memory.CC ~sched ~crash
      ~setup:(fun ctx ->
        let c = Memory.alloc (Engine.Ctx.memory ctx) ~name:"counter" 0 in
        cellr := Some c;
        c)
      ~body:(fun c ~pid -> counter_body c ~requests ~pid)
      ()
  in
  (res, Option.get !cellr)

let test_engine_runs_to_completion () =
  let res, _ = run_counter () in
  check cb "not deadlocked" false res.Engine.deadlocked;
  check cb "not timed out" false res.Engine.timed_out;
  check ci "all requests" 15 (Engine.total_completed res)

let test_engine_counts_passages () =
  let res, _ = run_counter ~n:2 ~requests:4 () in
  Array.iter
    (fun (p : Engine.proc_stats) ->
      check ci "passages" 4 (List.length p.passages);
      List.iter (fun (pp : Engine.passage) -> check cb "completed" true pp.completed) p.passages)
    res.Engine.procs

let test_engine_restarts_after_crash () =
  (* Crash p0 once somewhere in its run; everything still completes. *)
  let crash = Crash.at_op ~pid:0 ~nth:3 Crash.Before in
  let res, _ = run_counter ~crash () in
  check ci "one crash" 1 res.Engine.total_crashes;
  check ci "still all requests" 15 (Engine.total_completed res);
  let p0 : Engine.proc_stats = res.Engine.procs.(0) in
  check ci "p0 crashed once" 1 p0.crashes;
  check cb "p0 has a failed passage" true
    (List.exists (fun (p : Engine.passage) -> not p.completed) p0.passages)

let test_engine_crash_after_applies_op () =
  (* p0 crashes immediately after its first write: the write must be visible
     (the instruction executed; only the result was lost). *)
  let cellr = ref None in
  let res =
    Engine.run ~n:1 ~model:Memory.CC ~sched:(Sched.round_robin ())
      ~crash:(Crash.on_kind ~pid:0 ~kind:Api.Write ~occurrence:0 Crash.After)
      ~setup:(fun ctx ->
        let c = Memory.alloc (Engine.Ctx.memory ctx) ~name:"x" 0 in
        cellr := Some c;
        c)
      ~body:(fun c ~pid:_ ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          Api.write c 42;
          Api.note (Event.Seg Event.Req_done)
        end)
      ()
  in
  let mem_val =
    match res.Engine.events with _ -> () in
  ignore mem_val;
  check ci "one crash" 1 res.Engine.total_crashes;
  (* After restart the body runs again (completed is still 0) and finishes. *)
  check ci "completed after retry" 1 (Engine.total_completed res);
  match !cellr with
  | Some _ -> ()
  | None -> Alcotest.fail "cell not allocated"

let test_op_index_continues_across_restarts () =
  (* The per-process instruction counter is never reset by a crash: a body
     of six faa ops crashed After op 3 yields op_index 0..3 before the
     restart and 4..9 after it — one unbroken sequence.  This pins the
     semantics documented on [Crash.op_info.op_index]. *)
  let seen = ref [] in
  let res =
    Engine.run ~n:1 ~model:Memory.CC ~sched:(Sched.round_robin ())
      ~crash:(Crash.at_op ~pid:0 ~nth:3 Crash.After)
      ~on_op:(fun (info : Crash.op_info) -> seen := info.Crash.op_index :: !seen)
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"x" 0)
      ~body:(fun c ~pid:_ -> for _ = 1 to 6 do ignore (Api.faa c 1) done)
      ()
  in
  check ci "one crash" 1 res.Engine.total_crashes;
  check (Alcotest.list ci) "op_index unbroken across the restart"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !seen)

let test_engine_crash_before_skips_op () =
  (* With crash Before on the only write of a 1-request body, the op is not
     applied on the first attempt; the retry applies it. *)
  let res =
    Engine.run ~n:1 ~model:Memory.CC ~sched:(Sched.round_robin ())
      ~crash:(Crash.on_kind ~pid:0 ~kind:Api.Write ~occurrence:0 Crash.Before)
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"x" 0)
      ~body:(fun c ~pid:_ ->
        while Api.completed_requests () < 1 do
          Api.note (Event.Seg Event.Req_begin);
          Api.write c (Api.read c + 1);
          Api.note (Event.Seg Event.Req_done)
        done)
      ()
  in
  check ci "crashed once" 1 res.Engine.total_crashes;
  check ci "completed" 1 (Engine.total_completed res)

let test_engine_spin_park_and_wake () =
  (* p1 spins on a flag that p0 sets: both must finish, and the spin must not
     consume unbounded steps. *)
  let res =
    Engine.run ~n:2 ~model:Memory.CC ~sched:(Sched.round_robin ())
      ~crash:Crash.none
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"flag" 0)
      ~body:(fun flag ~pid ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          if pid = 0 then begin
            (* Let the scheduler bounce a bit before setting the flag. *)
            Api.yield ();
            Api.yield ();
            Api.write flag 1
          end
          else Api.spin_until flag (Api.Eq 1);
          Api.note (Event.Seg Event.Req_done)
        end)
      ()
  in
  check cb "no deadlock" false res.Engine.deadlocked;
  check ci "both done" 2 (Engine.total_completed res);
  check cb "bounded steps" true (res.Engine.steps < 50)

let test_engine_detects_deadlock () =
  let res =
    Engine.run ~n:1 ~model:Memory.CC ~sched:(Sched.round_robin ())
      ~crash:Crash.none
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"flag" 0)
      ~body:(fun flag ~pid:_ ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          Api.spin_until flag (Api.Eq 1);
          Api.note (Event.Seg Event.Req_done)
        end)
      ()
  in
  check cb "deadlocked" true res.Engine.deadlocked;
  check ci "nothing completed" 0 (Engine.total_completed res)

let test_engine_async_crash_unblocks_parked () =
  (* A parked process is crashed asynchronously; after restart the flag is
     set by the other process and everything completes. *)
  let res =
    Engine.run ~n:2 ~model:Memory.CC ~sched:(Sched.round_robin ())
      ~crash:(Crash.async_at [ (4, 1) ])
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"flag" 0)
      ~body:(fun flag ~pid ->
        while Api.completed_requests () < 1 do
          Api.note (Event.Seg Event.Req_begin);
          if pid = 0 then begin
            for _ = 1 to 6 do
              Api.yield ()
            done;
            Api.write flag 1
          end
          else Api.spin_until flag (Api.Eq 1);
          Api.note (Event.Seg Event.Req_done)
        done)
      ()
  in
  check ci "crashed once" 1 res.Engine.total_crashes;
  check ci "both done" 2 (Engine.total_completed res)

let test_engine_rmr_accounting_simple () =
  (* One process, two writes to a fresh cell under CC: 2 RMRs. *)
  let res =
    Engine.run ~n:1 ~model:Memory.CC ~sched:(Sched.round_robin ()) ~crash:Crash.none
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"x" 0)
      ~body:(fun c ~pid:_ ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          Api.write c 1;
          Api.write c 2;
          let (_ : int) = Api.read c in
          Api.note (Event.Seg Event.Req_done)
        end)
      ()
  in
  check ci "two RMRs (reads hit cache)" 2 res.Engine.total_rmr

let test_rmr_by_kind_sums () =
  let res, _ = run_counter ~n:3 ~requests:5 () in
  let by_kind = List.fold_left (fun acc (_, v) -> acc + v) 0 res.Engine.rmr_by_kind in
  check ci "kind breakdown sums to total" res.Engine.total_rmr by_kind;
  check cb "reads and writes present" true
    (List.mem_assoc Api.Read res.Engine.rmr_by_kind
    && List.mem_assoc Api.Write res.Engine.rmr_by_kind)

let test_engine_records_events () =
  let res, _ = run_counter ~n:1 ~requests:2 () in
  check cb "no events unless recording" true (res.Engine.events = []);
  let res =
    Engine.run ~record:true ~n:1 ~model:Memory.CC ~sched:(Sched.round_robin ())
      ~crash:Crash.none
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
      ~body:(fun c ~pid -> counter_body c ~requests:2 ~pid)
      ()
  in
  let begins =
    List.length
      (List.filter
         (function Event.Note { note = Event.Seg Event.Req_begin; _ } -> true | _ -> false)
         res.Engine.events)
  in
  check ci "two passages recorded" 2 begins

let test_engine_max_steps_times_out () =
  let res =
    Engine.run ~max_steps:10 ~n:1 ~model:Memory.CC ~sched:(Sched.round_robin ())
      ~crash:Crash.none
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
      ~body:(fun c ~pid:_ ->
        while true do
          Api.write c 1
        done)
      ()
  in
  check cb "timed out" true res.Engine.timed_out

let test_engine_propagates_body_exceptions () =
  (* A genuine bug in a process body (not a simulated crash) must surface to
     the caller, never be swallowed. *)
  let boom () =
    ignore
      (Engine.run ~n:1 ~model:Memory.CC ~sched:(Sched.round_robin ()) ~crash:Crash.none
         ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
         ~body:(fun c ~pid:_ ->
           let (_ : int) = Api.read c in
           failwith "bug in body")
         ())
  in
  Alcotest.check_raises "propagates" (Failure "bug in body") boom

let test_engine_midrun_allocation () =
  (* Cells may be allocated during the run (queue nodes): accounting and
     parking still work on them. *)
  let res =
    Engine.run ~n:2 ~model:Memory.CC ~sched:(Sched.round_robin ()) ~crash:Crash.none
      ~setup:(fun ctx -> Engine.Ctx.memory ctx)
      ~body:(fun mem ~pid ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          if pid = 0 then begin
            let fresh = Memory.alloc mem ~name:"late" 0 in
            Api.write fresh 1;
            let v = Api.read fresh in
            if v <> 1 then failwith "lost write"
          end
          else Api.yield ();
          Api.note (Event.Seg Event.Req_done)
        end)
      ()
  in
  check ci "both done" 2 (Engine.total_completed res)

let test_percentiles () =
  check ci "p50" 5 (Engine.percentile [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ] 0.5);
  check ci "p0" 1 (Engine.percentile [ 1; 2; 3 ] 0.0);
  check ci "p100" 3 (Engine.percentile [ 1; 2; 3 ] 1.0);
  check ci "empty" 0 (Engine.percentile [] 0.9)

let test_latency_recorded () =
  let res, _ = run_counter ~n:2 ~requests:3 () in
  let ls = Engine.latencies res in
  check ci "six passages" 6 (List.length ls);
  List.iter (fun l -> check cb "positive latency" true (l > 0)) ls

let test_engine_get_done_survives_crash () =
  (* completed_requests is recoverable state: after a crash the process must
     not redo finished requests. *)
  let res =
    Engine.run ~n:1 ~model:Memory.CC ~sched:(Sched.round_robin ())
      ~crash:(Crash.at_op ~pid:0 ~nth:9 Crash.Before)
      ~setup:(fun ctx -> Memory.alloc (Engine.Ctx.memory ctx) ~name:"c" 0)
      ~body:(fun c ~pid ->
        counter_body c ~requests:3 ~pid)
      ()
  in
  check ci "crash happened" 1 res.Engine.total_crashes;
  check ci "exactly 3 requests" 3 (Engine.total_completed res)

let () =
  Alcotest.run "rme_sim"
    [
      ( "memory",
        [
          Alcotest.test_case "cc read caching" `Quick test_cc_read_caching;
          Alcotest.test_case "cc write invalidates" `Quick test_cc_write_invalidates;
          Alcotest.test_case "cc failed cas keeps caches" `Quick test_cc_failed_cas_keeps_caches;
          Alcotest.test_case "cc successful cas invalidates" `Quick test_cc_successful_cas_invalidates;
          Alcotest.test_case "dsm home locality" `Quick test_dsm_home_locality;
          Alcotest.test_case "fas faa semantics" `Quick test_fas_faa_semantics;
        ] );
      ( "crash-plans",
        [
          Alcotest.test_case "none" `Quick test_crash_none;
          Alcotest.test_case "at-op" `Quick test_crash_at_op;
          Alcotest.test_case "on-kind occurrence" `Quick test_crash_on_kind_occurrence;
          Alcotest.test_case "random budget" `Quick test_crash_random_budget;
          Alcotest.test_case "async-at" `Quick test_crash_async_at;
          Alcotest.test_case "all combines" `Quick test_crash_all_combines;
        ] );
      ( "schedulers",
        [
          Alcotest.test_case "round robin cycles" `Quick test_round_robin_cycles;
          Alcotest.test_case "round robin skips blocked" `Quick test_round_robin_skips_blocked;
          Alcotest.test_case "random is fair" `Quick test_random_sched_is_fair;
          Alcotest.test_case "burst bursts" `Quick test_burst_sched_bursts;
          Alcotest.test_case "random deterministic" `Quick test_random_sched_deterministic;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runs to completion" `Quick test_engine_runs_to_completion;
          Alcotest.test_case "counts passages" `Quick test_engine_counts_passages;
          Alcotest.test_case "restart after crash" `Quick test_engine_restarts_after_crash;
          Alcotest.test_case "crash-after applies op" `Quick test_engine_crash_after_applies_op;
          Alcotest.test_case "crash-before skips op" `Quick test_engine_crash_before_skips_op;
          Alcotest.test_case "op_index continues across restarts" `Quick
            test_op_index_continues_across_restarts;
          Alcotest.test_case "spin park and wake" `Quick test_engine_spin_park_and_wake;
          Alcotest.test_case "detects deadlock" `Quick test_engine_detects_deadlock;
          Alcotest.test_case "async crash unblocks parked" `Quick test_engine_async_crash_unblocks_parked;
          Alcotest.test_case "rmr accounting" `Quick test_engine_rmr_accounting_simple;
          Alcotest.test_case "rmr by kind sums" `Quick test_rmr_by_kind_sums;
          Alcotest.test_case "records events" `Quick test_engine_records_events;
          Alcotest.test_case "max steps times out" `Quick test_engine_max_steps_times_out;
          Alcotest.test_case "get_done survives crash" `Quick test_engine_get_done_survives_crash;
          Alcotest.test_case "propagates body exceptions" `Quick test_engine_propagates_body_exceptions;
          Alcotest.test_case "mid-run allocation" `Quick test_engine_midrun_allocation;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "latency recorded" `Quick test_latency_recorded;
        ] );
    ]
