(* The chaos layer: adaptive adversaries, the stall watchdog, the
   adaptivity-contract monitors, and the campaign's discover → replay →
   shrink bridge.

   The headline pins of ISSUE 4 live here: the holder-targeting adversary
   rediscovers the WR-Lock FAS-gap ME overlap from random execution and
   shrinks it to a deterministic at-op witness; the Theorem 5.17 monitor
   holds for BA-Lock across >= 1000 seeded adversarial runs; and a planted
   livelock is classified [Livelock] with culprit pids instead of a bare
   timeout. *)

open Rme_sim
module Chaos = Rme_check.Chaos
module Props = Rme_check.Props

let cb = Alcotest.bool
let ci = Alcotest.int
let check = Alcotest.check

let info ?(pid = 0) ?(step = 0) ?(op_index = 0) ?(kind = Api.Read) ?cell ?note
    ?(unsafe_wrt = []) () =
  { Crash.pid; step; op_index; kind; cell; note; unsafe_wrt }

let is_crash = function Crash.Crash _ -> true | Crash.No_crash -> false

let has_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* ------------------------------------------------------------------ *)
(* Adversary constructors (unit, synthetic op streams)                 *)
(* ------------------------------------------------------------------ *)

let test_target_holder_span () =
  let plan = Crash.target_holder ~seed:0 ~rate:1.0 ~max_crashes:2 () in
  (* Outside any lock span: never strikes, even at rate 1. *)
  check cb "ncs op spared" false (is_crash (Crash.on_op plan (info ())));
  (* Entering the span makes every op (the note included) a strike point. *)
  check cb "strikes at Lock_enter" true
    (is_crash (Crash.on_op plan (info ~kind:Api.Note ~note:(Event.Lock_enter 0) ())));
  (* The crash restarted the victim: a fresh passage begins outside the
     span, so the stale marking must not leak into the NCS. *)
  check cb "Req_begin clears the span" false
    (is_crash (Crash.on_op plan (info ~kind:Api.Note ~note:(Event.Seg Event.Req_begin) ())));
  check cb "post-restart ncs op spared" false (is_crash (Crash.on_op plan (info ())));
  check cb "re-entering strikes again" true
    (is_crash (Crash.on_op plan (info ~kind:Api.Note ~note:(Event.Lock_enter 0) ())));
  (* Budget exhausted. *)
  check cb "budget respected" false
    (is_crash (Crash.on_op plan (info ~kind:Api.Note ~note:(Event.Lock_enter 0) ())))

let test_target_holder_lock_filter () =
  let plan = Crash.target_holder ~lock:3 ~seed:0 ~rate:1.0 ~max_crashes:1 () in
  check cb "other lock's span ignored" false
    (is_crash (Crash.on_op plan (info ~kind:Api.Note ~note:(Event.Lock_enter 0) ())));
  check cb "tracked lock strikes" true
    (is_crash (Crash.on_op plan (info ~kind:Api.Note ~note:(Event.Lock_enter 3) ())))

let test_target_window () =
  let plan = Crash.target_window ~seed:0 ~rate:1.0 ~max_crashes:1 () in
  check cb "no window, no crash" false (is_crash (Crash.on_op plan (info ())));
  (match Crash.on_op plan (info ~unsafe_wrt:[ 0 ] ()) with
  | Crash.Crash Crash.Before -> ()
  | Crash.Crash Crash.After -> Alcotest.fail "window crash must strike Before (inside the window)"
  | Crash.No_crash -> Alcotest.fail "open window at rate 1 must crash");
  check cb "budget respected" false (is_crash (Crash.on_op plan (info ~unsafe_wrt:[ 0 ] ())))

let test_repeat_offender_cadence () =
  let plan = Crash.repeat_offender ~victim:1 ~gap:2 ~times:2 in
  let feed ?note pid = is_crash (Crash.on_op plan (info ~pid ?note ())) in
  check cb "other pids untouched" false (feed 0);
  (* Victim: armed at Req_begin, strikes [gap] ops later, re-arms on each
     restart, [times] crashes total. *)
  check cb "arming op spared" false (feed ~note:(Event.Seg Event.Req_begin) 1);
  check cb "countdown op 1" false (feed 1);
  check cb "first strike" true (feed 1);
  check cb "restart countdown 1" false (feed 1);
  check cb "restart countdown 2" false (feed 1);
  check cb "second strike" true (feed 1);
  check cb "budget exhausted" false (feed 1);
  check cb "stays exhausted" false (feed 1)

let test_storm_gap_backoff () =
  let plan = Crash.storm ~seed:0 ~rate:1.0 ~max_crashes:3 ~gap:10 ~backoff:2.0 () in
  let at step = is_crash (Crash.on_op plan (info ~step ())) in
  check cb "first op crashes" true (at 0);
  check cb "cooldown at step 5" false (at 5);
  check cb "cooldown at step 9" false (at 9);
  check cb "gap over at step 10" true (at 10);
  (* Backoff doubled the gap: next window opens at 10 + 20. *)
  check cb "cooldown at step 29" false (at 29);
  check cb "gap over at step 30" true (at 30);
  check cb "budget exhausted" false (at 1000)

let test_storm_validation () =
  Alcotest.check_raises "backoff < 1 rejected"
    (Invalid_argument "Crash.storm: backoff must be >= 1") (fun () ->
      ignore (Crash.storm ~seed:0 ~rate:0.1 ~max_crashes:1 ~gap:0 ~backoff:0.5 ()))

let test_record_and_replay_fired () =
  let plan, fired = Crash.record_fired (Crash.target_window ~seed:0 ~rate:1.0 ~max_crashes:2 ()) in
  ignore (Crash.on_op plan (info ~pid:1 ~op_index:7 ~step:40 ~unsafe_wrt:[ 0 ] ()));
  ignore (Crash.on_op plan (info ~pid:1 ~op_index:8 ~step:41 ()));
  ignore (Crash.on_op plan (info ~pid:2 ~op_index:3 ~step:44 ~unsafe_wrt:[ 1 ] ()));
  let f = fired () in
  check ci "two crashes recorded" 2 (List.length f);
  let first = List.hd f in
  check ci "pid recorded" 1 first.Crash.f_pid;
  check ci "op_index recorded" 7 first.Crash.f_op_index;
  check ci "step recorded" 40 first.Crash.f_step;
  (* The composite replay plan crashes at exactly the recorded coordinates
     and nowhere else. *)
  let replay = Crash.replay_fired f in
  check cb "replays first site" true
    (is_crash (Crash.on_op replay (info ~pid:1 ~op_index:7 ())));
  check cb "replays second site" true
    (is_crash (Crash.on_op replay (info ~pid:2 ~op_index:3 ())));
  check cb "spares everything else" false
    (is_crash (Crash.on_op replay (info ~pid:1 ~op_index:8 ())))

let test_adversary_of_string () =
  check cb "holder parses" true (Result.is_ok (Chaos.adversary_of_string "holder"));
  check cb "WINDOW parses" true (Result.is_ok (Chaos.adversary_of_string "WINDOW"));
  check cb "offender parses" true (Result.is_ok (Chaos.adversary_of_string "offender"));
  check cb "storm parses" true (Result.is_ok (Chaos.adversary_of_string "storm"));
  check cb "junk rejected" true (Result.is_error (Chaos.adversary_of_string "junk"))

(* ------------------------------------------------------------------ *)
(* Stall watchdog                                                      *)
(* ------------------------------------------------------------------ *)

let gate_setup ctx = Memory.alloc (Engine.Ctx.memory ctx) ~name:"gate" 0

let test_planted_livelock () =
  (* Two processes spin forever on a gate nobody opens: the run times out
     with both still burning steps and zero progress — a livelock, and the
     watchdog must say so and name both pids. *)
  let res =
    Engine.run ~max_steps:3_000 ~n:2 ~model:Memory.CC ~sched:(Sched.round_robin ())
      ~crash:Crash.none ~setup:gate_setup
      ~body:(fun gate ~pid:_ ->
        Api.note (Event.Seg Event.Req_begin);
        while Api.read gate = 0 do
          Api.yield ()
        done)
      ()
  in
  check cb "timed out" true res.Engine.timed_out;
  match res.Engine.stall with
  | Some { Engine.stall_kind = Engine.Livelock; culprits } ->
      check (Alcotest.list ci) "both pids blamed" [ 0; 1 ] (List.map fst culprits);
      List.iter (fun (_, seg) -> check Alcotest.string "in entry segment" "entry" seg) culprits
  | Some s -> Alcotest.failf "expected Livelock, got %a" Engine.pp_stall s
  | None -> Alcotest.fail "timed-out run left undiagnosed"

let test_planted_starvation () =
  (* p0 parks on a gate that never opens while p1/p2 keep completing
     requests: starvation of p0, and the segment shows where it hangs. *)
  let res =
    Engine.run ~max_steps:3_000 ~stall_window:500 ~n:3 ~model:Memory.CC
      ~sched:(Sched.round_robin ()) ~crash:Crash.none ~setup:gate_setup
      ~body:(fun gate ~pid ->
        if pid = 0 then begin
          Api.note (Event.Seg Event.Req_begin);
          Api.spin_until gate (Api.Eq 1)
        end
        else
          while true do
            Api.note (Event.Seg Event.Req_begin);
            Api.yield ();
            Api.note (Event.Seg Event.Req_done)
          done)
      ()
  in
  (match res.Engine.stall with
  | Some { Engine.stall_kind = Engine.Starvation; culprits = [ (0, seg) ] } ->
      check Alcotest.string "parked segment named" "entry parked@gate" seg
  | Some s -> Alcotest.failf "expected Starvation of p0, got %a" Engine.pp_stall s
  | None -> Alcotest.fail "timed-out run left undiagnosed");
  (* Props.starvation_freedom surfaces the diagnosis instead of a bare
     timeout message. *)
  match Props.starvation_freedom res ~requests:1 with
  | Some msg -> check cb "names the verdict" true (has_sub ~sub:"starvation" msg)
  | None -> Alcotest.fail "starvation freedom should be violated"

let test_underbudget_diagnosis () =
  (* Everyone still progressing when the step budget runs out: the
     watchdog must not cry livelock. *)
  let res =
    Engine.run ~max_steps:2_000 ~stall_window:1_000 ~n:2 ~model:Memory.CC
      ~sched:(Sched.round_robin ()) ~crash:Crash.none ~setup:gate_setup
      ~body:(fun _ ~pid:_ ->
        while true do
          Api.note (Event.Seg Event.Req_begin);
          Api.yield ();
          Api.note (Event.Seg Event.Req_done)
        done)
      ()
  in
  match res.Engine.stall with
  | Some { Engine.stall_kind = Engine.Underbudget; _ } -> ()
  | Some s -> Alcotest.failf "expected Underbudget, got %a" Engine.pp_stall s
  | None -> Alcotest.fail "timed-out run left undiagnosed"

let test_deadlock_diagnosis () =
  (* Both processes park on a gate with nobody left to write it. *)
  let res =
    Engine.run ~max_steps:10_000 ~n:2 ~model:Memory.CC ~sched:(Sched.round_robin ())
      ~crash:Crash.none ~setup:gate_setup
      ~body:(fun gate ~pid:_ -> Api.spin_until gate (Api.Eq 1))
      ()
  in
  check cb "deadlocked" true res.Engine.deadlocked;
  match res.Engine.stall with
  | Some { Engine.stall_kind = Engine.Deadlock; culprits } ->
      check (Alcotest.list ci) "both pids blamed" [ 0; 1 ] (List.map fst culprits)
  | Some s -> Alcotest.failf "expected Deadlock, got %a" Engine.pp_stall s
  | None -> Alcotest.fail "deadlocked run left undiagnosed"

(* ------------------------------------------------------------------ *)
(* Repeat offender vs. the registry                                    *)
(* ------------------------------------------------------------------ *)

let offender = Chaos.Offender { victim = 0; gap = 4; times = 3 }

let offender_cfg = { Chaos.default_cfg with Chaos.n = 3; requests = 2; max_steps = 100_000 }

let run_spec key ~adversary ~seed =
  let spec = Rme.Spec.find_exn key in
  Chaos.run_one offender_cfg ~make:spec.Rme.Spec.make ~adversary ~seed

let test_offender_defeats_mcs () =
  (* Plain MCS is not recoverable: killing the victim mid-queue strands
     its node and the watchdog reports the wreckage (deadlock: everyone
     parked on the orphaned queue), not a bare timeout. *)
  let r = run_spec "mcs" ~adversary:offender ~seed:1 in
  check cb "crashes were injected" true (r.Chaos.res.Engine.total_crashes > 0);
  match r.Chaos.res.Engine.stall with
  | Some { Engine.stall_kind = Engine.Deadlock | Engine.Livelock | Engine.Starvation; culprits }
    ->
      check cb "culprits named" true (culprits <> [])
  | Some { Engine.stall_kind = Engine.Underbudget; _ } ->
      Alcotest.fail "mcs wreckage misdiagnosed as a budget problem"
  | None -> Alcotest.fail "mcs survived failures during recovery (it must not)"

let test_offender_spares_recoverable () =
  List.iter
    (fun key ->
      let r = run_spec key ~adversary:offender ~seed:1 in
      check ci (key ^ " absorbed all crashes") 3 r.Chaos.res.Engine.total_crashes;
      check cb (key ^ " no stall") true (r.Chaos.res.Engine.stall = None);
      check cb
        (key ^ " all requests satisfied")
        true
        (Props.all_satisfied r.Chaos.res ~n:offender_cfg.Chaos.n
           ~requests:offender_cfg.Chaos.requests))
    [ "sa-jjj"; "ba-jjj" ]

(* ------------------------------------------------------------------ *)
(* Adaptivity-contract monitors                                        *)
(* ------------------------------------------------------------------ *)

let clean_ba_run () =
  let spec = Rme.Spec.find_exn "ba-jjj" in
  let r =
    Chaos.run_one
      { Chaos.default_cfg with Chaos.n = 2; requests = 1 }
      ~make:spec.Rme.Spec.make
      ~adversary:(Chaos.Storm { rate = 0.0; max_crashes = 0; gap = 0; backoff = 1.0 })
      ~seed:0
  in
  r.Chaos.res

let test_monitor_trips_on_fake_history () =
  let res = clean_ba_run () in
  check cb "baseline clean" true (Props.super_adaptivity res = None);
  (* Forge a history that claims level 5 with zero crashes: Theorem 5.17
     prices that at >= 10 failures, so the monitor must trip. *)
  let faked =
    {
      res with
      Engine.procs =
        Array.mapi
          (fun i (p : Engine.proc_stats) ->
            if i = 0 then { p with Engine.max_level = 5 } else p)
          res.Engine.procs;
    }
  in
  match Props.super_adaptivity faked with
  | Some msg -> check cb "cites the bound" true (has_sub ~sub:">= 10" msg)
  | None -> Alcotest.fail "max_level 5 with 0 crashes must violate Theorem 5.17"

let test_failure_free_rmr () =
  let res = clean_ba_run () in
  check ci "crash-free baseline" 0 res.Engine.total_crashes;
  check cb "generous bound holds" true (Props.failure_free_rmr res ~bound:1_000 = None);
  check cb "zero bound trips" true (Props.failure_free_rmr res ~bound:0 <> None);
  (* With crashes in the history the contract is vacuous by design. *)
  let spec = Rme.Spec.find_exn "ba-jjj" in
  let crashed =
    Chaos.run_one offender_cfg ~make:spec.Rme.Spec.make ~adversary:offender ~seed:1
  in
  check cb "crashed history vacuous" true
    (crashed.Chaos.res.Engine.total_crashes > 0
    && Props.failure_free_rmr crashed.Chaos.res ~bound:0 = None)

let ba_case =
  let spec = Rme.Spec.find_exn "ba-jjj" in
  {
    Chaos.case_name = "ba-jjj";
    case_make = spec.Rme.Spec.make;
    case_weak = false;
    case_ff_bound = None;
    case_abortable = false;
  }

let test_theorem_5_17_over_1000_runs () =
  (* The acceptance bar: the Theorem 5.17 monitor (wired into the campaign
     battery) holds for BA-Lock across >= 1000 seeded adversarial runs,
     at both a shallow (n=4, 2 levels) and a deeper (n=8, 3 levels)
     tournament. *)
  let shallow =
    Chaos.campaign
      ~cfg:{ Chaos.default_cfg with Chaos.requests = 2 }
      ~jobs:4 ~adversaries:Chaos.standard_adversaries ~runs:160 ~seed_base:0 [ ba_case ]
  in
  let deep =
    Chaos.campaign
      ~cfg:{ Chaos.default_cfg with Chaos.n = 8; requests = 2 }
      ~jobs:4 ~adversaries:Chaos.standard_adversaries ~runs:100 ~seed_base:0 [ ba_case ]
  in
  check cb "at least 1000 runs" true (shallow.Chaos.runs + deep.Chaos.runs >= 1_000);
  check cb "adversaries actually fired" true (shallow.Chaos.crashes + deep.Chaos.crashes > 1_000);
  check (Alcotest.list Alcotest.string) "no violations (incl. Theorem 5.17)" []
    (List.map
       (fun v -> Fmt.str "%a" Chaos.pp_violation v)
       (shallow.Chaos.violations @ deep.Chaos.violations));
  (* Non-vacuity: the window adversary really does drive escalation, so
     the monitor judged genuinely adaptive histories above. *)
  let spec = Rme.Spec.find_exn "ba-jjj" in
  let escalated = ref false in
  for seed = 0 to 29 do
    let r =
      Chaos.run_one
        { Chaos.default_cfg with Chaos.n = 8; requests = 2 }
        ~make:spec.Rme.Spec.make
        ~adversary:(Chaos.Window { rate = 0.25; max_crashes = 4 })
        ~seed
    in
    let x =
      Array.fold_left (fun a (p : Engine.proc_stats) -> max a p.max_level) 0 r.Chaos.res.Engine.procs
    in
    if x >= 2 then escalated := true
  done;
  check cb "window adversary drives level >= 2" true !escalated

(* ------------------------------------------------------------------ *)
(* WR FAS gap: random discovery -> deterministic witness               *)
(* ------------------------------------------------------------------ *)

let wr_cfg = { Chaos.default_cfg with Chaos.n = 3; requests = 2; cs_yields = 4 }

let wr_make = (Rme.Spec.find_exn "wr").Rme.Spec.make

let me_check (res : Engine.result) = if res.Engine.cs_max > 1 then Some "ME overlap" else None

let test_holder_rediscovers_wr_fas_gap () =
  (* Hunt: the holder-targeting adversary, random schedules, seeds 0.. —
     no knowledge of the FAS window beyond "kill people near the lock". *)
  let adversary = Chaos.Holder { rate = 0.05; max_crashes = 8 } in
  let rec hunt seed =
    if seed > 500 then Alcotest.fail "holder adversary found no ME overlap in 500 seeds"
    else
      let r = Chaos.run_one wr_cfg ~make:wr_make ~adversary ~seed in
      if r.Chaos.res.Engine.cs_max > 1 then (seed, r) else hunt (seed + 1)
  in
  let _seed, r = hunt 0 in
  (* Theorem 4.2 says this overlap can only come from an unsafe failure:
     the adversary must have hit the FAS gap to get here. *)
  check cb "an unsafe (FAS-gap) crash was fired" true
    ((r.Chaos.res.Engine.locks.(0)).Engine.unsafe_crashes > 0);
  (* Bridge 1: the recorded schedule + the fired crashes as a fixed at-op
     composite replay the very same violation, faithfully. *)
  let replayed, mismatch =
    Chaos.replay wr_cfg ~make:wr_make ~fired:r.Chaos.fired ~decisions:r.Chaos.decisions ()
  in
  check cb "replay faithful" false mismatch;
  check cb "replay violates ME" true (replayed.Engine.cs_max > 1);
  check ci "replay injects the same crashes" r.Chaos.res.Engine.total_crashes
    replayed.Engine.total_crashes;
  (* Bridge 2: the explorer's shrinker minimises the schedule witness and
     the minimum still replays the violation. *)
  let witness =
    Chaos.shrink_witness wr_cfg ~make:wr_make ~fired:r.Chaos.fired ~check:me_check
      r.Chaos.decisions
  in
  check cb "witness no longer than the discovery" true
    (List.length witness <= List.length r.Chaos.decisions);
  let wres, wmis = Chaos.replay wr_cfg ~make:wr_make ~fired:r.Chaos.fired ~decisions:witness () in
  check cb "witness faithful" false wmis;
  check cb "witness violates ME" true (wres.Engine.cs_max > 1)

let test_campaign_reports_wr_overlap () =
  (* End-to-end through Chaos.campaign: driving WR as a plain (non-weak)
     case makes the overlap a mutual-exclusion violation the campaign must
     catch, replay-confirm and shrink on its own. *)
  let case =
    {
      Chaos.case_name = "wr-as-strong";
      case_make = wr_make;
      case_weak = false;
      case_ff_bound = None;
      case_abortable = false;
    }
  in
  let o =
    Chaos.campaign ~cfg:wr_cfg
      ~adversaries:[ Chaos.Holder { rate = 0.05; max_crashes = 8 } ]
      ~runs:50 ~seed_base:0 [ case ]
  in
  match o.Chaos.violations with
  | [] -> Alcotest.fail "campaign missed the WR overlap in 50 holder runs"
  | v :: _ ->
      check cb "flags mutual exclusion" true
        (match v.Chaos.v_problems with
        | p :: _ -> has_prefix ~prefix:"mutual-exclusion" p
        | [] -> false);
      check cb "replay confirmed" true v.Chaos.v_replay_ok;
      check cb "witness shrunk below discovery" true
        (List.length v.Chaos.v_witness < List.length v.Chaos.v_fired * 200);
      check cb "fired sites recorded" true (v.Chaos.v_fired <> []);
      check cb "detection latency recorded" true (v.Chaos.v_detect_steps > 0)

let test_campaign_weak_wr_clean () =
  (* The same adversary against WR checked the honest way (weak interval
     ME): Theorem 4.2 says the overlap stays within the consequence
     envelope, so the campaign must stay clean. *)
  let case =
    {
      Chaos.case_name = "wr";
      case_make = wr_make;
      case_weak = true;
      case_ff_bound = None;
      case_abortable = false;
    }
  in
  let o =
    Chaos.campaign ~cfg:wr_cfg
      ~adversaries:[ Chaos.Holder { rate = 0.05; max_crashes = 8 } ]
      ~runs:50 ~seed_base:0 [ case ]
  in
  check (Alcotest.list Alcotest.string) "no violations" []
    (List.map (fun v -> Fmt.str "%a" Chaos.pp_violation v) o.Chaos.violations)

let test_recording_scheduler_roundtrip () =
  (* A run under Sched.recording replays step-for-step under Sched.trace. *)
  let r =
    Chaos.run_one wr_cfg ~make:wr_make
      ~adversary:(Chaos.Storm { rate = 0.002; max_crashes = 3; gap = 50; backoff = 1.0 })
      ~seed:42
  in
  let replayed, mismatch =
    Chaos.replay wr_cfg ~make:wr_make ~fired:r.Chaos.fired ~decisions:r.Chaos.decisions ()
  in
  check cb "faithful" false mismatch;
  check ci "same steps" r.Chaos.res.Engine.steps replayed.Engine.steps;
  check ci "same rmr" r.Chaos.res.Engine.total_rmr replayed.Engine.total_rmr;
  check ci "same crashes" r.Chaos.res.Engine.total_crashes replayed.Engine.total_crashes;
  check ci "same completed" (Engine.total_completed r.Chaos.res) (Engine.total_completed replayed)

let () =
  Alcotest.run "chaos"
    [
      ( "adversaries",
        [
          Alcotest.test_case "holder tracks the lock span" `Quick test_target_holder_span;
          Alcotest.test_case "holder honours the lock filter" `Quick test_target_holder_lock_filter;
          Alcotest.test_case "window strikes only open windows" `Quick test_target_window;
          Alcotest.test_case "repeat offender cadence" `Quick test_repeat_offender_cadence;
          Alcotest.test_case "storm gap and backoff" `Quick test_storm_gap_backoff;
          Alcotest.test_case "storm validates backoff" `Quick test_storm_validation;
          Alcotest.test_case "record_fired / replay_fired" `Quick test_record_and_replay_fired;
          Alcotest.test_case "adversary parsing" `Quick test_adversary_of_string;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "planted livelock classified" `Quick test_planted_livelock;
          Alcotest.test_case "planted starvation classified" `Quick test_planted_starvation;
          Alcotest.test_case "underbudget not miscalled" `Quick test_underbudget_diagnosis;
          Alcotest.test_case "deadlock diagnosed with culprits" `Quick test_deadlock_diagnosis;
        ] );
      ( "offender",
        [
          Alcotest.test_case "defeats non-recoverable mcs" `Quick test_offender_defeats_mcs;
          Alcotest.test_case "sa/ba absorb the pulse train" `Quick test_offender_spares_recoverable;
        ] );
      ( "monitors",
        [
          Alcotest.test_case "fake history trips Theorem 5.17" `Quick
            test_monitor_trips_on_fake_history;
          Alcotest.test_case "failure-free RMR contract" `Quick test_failure_free_rmr;
          Alcotest.test_case "Theorem 5.17 over 1000 adversarial runs" `Slow
            test_theorem_5_17_over_1000_runs;
        ] );
      ( "fas-gap bridge",
        [
          Alcotest.test_case "recording scheduler roundtrip" `Quick
            test_recording_scheduler_roundtrip;
          Alcotest.test_case "holder rediscovers the WR FAS gap" `Slow
            test_holder_rediscovers_wr_fas_gap;
          Alcotest.test_case "campaign replays and shrinks it" `Slow
            test_campaign_reports_wr_overlap;
          Alcotest.test_case "weak interval form stays clean" `Slow test_campaign_weak_wr_clean;
        ] );
    ]
