(* Tests for the splitter and the dual-port recoverable arbitrator,
   including exhaustive schedule exploration (small model checking) of their
   mutual-exclusion properties with and without crashes. *)

open Rme_sim
open Rme_locks
open Rme_check

let check = Alcotest.check

let ci = Alcotest.int

let cb = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Splitter                                                            *)
(* ------------------------------------------------------------------ *)

let run_splitter ~n ~sched ~crash ~body_of () =
  Engine.run ~n ~model:Memory.CC ~sched ~crash
    ~setup:(fun ctx -> Splitter.create ctx)
    ~body:body_of ()

let test_splitter_single_winner () =
  (* All processes race the splitter once: exactly one takes the fast path. *)
  let winners = ref [] in
  let res =
    run_splitter ~n:6 ~sched:(Sched.random ~seed:3) ~crash:Crash.none
      ~body_of:(fun sp ~pid ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          if Splitter.try_fast sp ~pid then winners := pid :: !winners;
          Api.note (Event.Seg Event.Req_done)
        end)
      ()
  in
  check cb "done" false res.Engine.deadlocked;
  check ci "exactly one winner" 1 (List.length !winners)

let test_splitter_winner_idempotent () =
  (* The occupant re-running try_fast (crash-restart) still wins. *)
  let outcomes = ref [] in
  let (_ : Engine.result) =
    run_splitter ~n:1 ~sched:(Sched.round_robin ()) ~crash:Crash.none
      ~body_of:(fun sp ~pid ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          outcomes := Splitter.try_fast sp ~pid :: !outcomes;
          outcomes := Splitter.try_fast sp ~pid :: !outcomes;
          Api.note (Event.Seg Event.Req_done)
        end)
      ()
  in
  check (Alcotest.list cb) "wins twice" [ true; true ] !outcomes

let test_splitter_release_reopens () =
  let outcomes = ref [] in
  let (_ : Engine.result) =
    run_splitter ~n:2 ~sched:(Sched.greedy ()) ~crash:Crash.none
      ~body_of:(fun sp ~pid ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          let won = Splitter.try_fast sp ~pid in
          outcomes := (pid, won) :: !outcomes;
          if won then Splitter.release sp ~pid;
          Api.note (Event.Seg Event.Req_done)
        end)
      ()
  in
  (* Greedy scheduler serialises: both processes win in turn. *)
  check cb "all won" true (List.for_all snd !outcomes);
  check ci "two rounds" 2 (List.length !outcomes)

let test_splitter_exhaustive_one_winner () =
  (* Model-check: under every interleaving of 2 processes, at most one takes
     the fast path. *)
  let winners = ref 0 in
  let outcome =
    Explore.explore ~max_runs:20_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:(fun ctx ->
        winners := 0;
        Splitter.create ctx)
      ~body:(fun sp ~pid ->
        if Api.completed_requests () < 1 then begin
          Api.note (Event.Seg Event.Req_begin);
          if Splitter.try_fast sp ~pid then incr winners;
          Api.note (Event.Seg Event.Req_done)
        end)
      ~check:(fun _ -> if !winners <= 1 then None else Some "two fast-path winners")
      ()
  in
  check cb "explored all schedules" true outcome.Explore.exhausted;
  check cb
    (Fmt.str "no violation (%a)" Explore.pp_outcome outcome)
    true (outcome.Explore.violation = None);
  check cb "multiple schedules" true (outcome.Explore.runs > 10)

(* ------------------------------------------------------------------ *)
(* Arbitrator                                                          *)
(* ------------------------------------------------------------------ *)

let two_proc_lock ctx = Arbitrator.as_two_process_lock (Arbitrator.create ctx) ~n:2

let run_arb ?record ?(sched = Sched.round_robin ()) ?(crash = Crash.none) ?(model = Memory.CC)
    ?(requests = 6) ?cs () =
  Harness.run_lock ?record ?cs ~n:2 ~model ~sched ~crash ~requests ~make:two_proc_lock ()

let test_arb_me_sf () =
  List.iter
    (fun sched ->
      let res = run_arb ~sched () in
      check cb "no deadlock" false res.Engine.deadlocked;
      check cb "no timeout" false res.Engine.timed_out;
      check ci "all done" 12 (Engine.total_completed res);
      check ci "me" 1 res.Engine.cs_max)
    [ Sched.round_robin (); Sched.random ~seed:1; Sched.random ~seed:2; Sched.greedy () ]

let test_arb_rmr_constant () =
  List.iter
    (fun model ->
      let res = run_arb ~model ~sched:(Sched.random ~seed:4) () in
      check cb
        (Printf.sprintf "O(1) rmr (%d)" (Engine.max_rmr res))
        true
        (Engine.max_rmr res <= 25))
    [ Memory.CC; Memory.DSM ]

let test_arb_crash_sweep_dsm () =
  List.iter
    (fun victim ->
      for nth = 0 to 40 do
        let crash = Crash.at_op ~pid:victim ~nth Crash.After in
        let res = run_arb ~model:Memory.DSM ~requests:3 ~crash () in
        if res.Engine.deadlocked || res.Engine.timed_out then
          Alcotest.failf "stuck (dsm): victim %d op %d" victim nth;
        check ci "all done" 6 (Engine.total_completed res);
        check ci (Printf.sprintf "me (dsm victim %d op %d)" victim nth) 1 res.Engine.cs_max
      done)
    [ 0; 1 ]

let test_arb_crash_sweep () =
  (* Crash either process at every instruction offset; ME and SF must hold
     (the arbitrator is strongly recoverable: no occupancy > 1, ever). *)
  List.iter
    (fun point ->
      List.iter
        (fun victim ->
          for nth = 0 to 50 do
            let crash = Crash.at_op ~pid:victim ~nth point in
            let res = run_arb ~requests:3 ~crash () in
            if res.Engine.deadlocked || res.Engine.timed_out then
              Alcotest.failf "stuck: victim %d op %d" victim nth;
            check ci "all done" 6 (Engine.total_completed res);
            check ci (Printf.sprintf "me (victim %d op %d)" victim nth) 1 res.Engine.cs_max
          done)
        [ 0; 1 ])
    [ Crash.Before; Crash.After ]

let test_arb_exhaustive_me () =
  (* Bounded schedule exploration of one full passage each, no crashes: the
     full interleaving tree of two ~20-instruction passages is astronomical,
     so this is a deep DFS prefix rather than a complete proof. *)
  let outcome =
    Explore.explore ~max_runs:20_000 ~n:2 ~model:Memory.CC
      ~crash:(fun () -> Crash.none)
      ~setup:two_proc_lock
      ~body:(fun lock ~pid -> Harness.standard_body ~lock ~requests:1 pid)
      ~check:(fun res ->
        if res.Engine.cs_max > 1 then Some "ME violation"
        else if res.Engine.deadlocked then Some "deadlock"
        else None)
      ()
  in
  check cb
    (Fmt.str "no violation (%a)" Explore.pp_outcome outcome)
    true (outcome.Explore.violation = None);
  check cb "explored many schedules" true (outcome.Explore.runs >= 20_000)

let test_arb_exhaustive_me_with_crash () =
  (* Bounded exploration with p0 crashing at a fixed instruction — recovery
     must preserve ME and complete under every explored interleaving. *)
  List.iter
    (fun nth ->
      let outcome =
        Explore.explore ~max_runs:8_000 ~n:2 ~model:Memory.CC
          ~crash:(fun () -> Crash.at_op ~pid:0 ~nth Crash.After)
          ~setup:two_proc_lock
          ~body:(fun lock ~pid -> Harness.standard_body ~lock ~requests:1 pid)
          ~check:(fun res ->
            if res.Engine.cs_max > 1 then Some "ME violation"
            else if res.Engine.deadlocked then Some "deadlock"
            else if res.Engine.timed_out then Some "timeout"
            else None)
          ()
      in
      check cb
        (Fmt.str "no violation at crash op %d (%a)" nth Explore.pp_outcome outcome)
        true
        (outcome.Explore.violation = None))
    [ 3; 7; 11; 15 ]

let test_arb_bcsr () =
  (* p0 crashes in CS; it must re-enter before p1 can get in. *)
  let cs ~pid = if pid = 0 then Api.note (Event.Custom "work") in
  let crash = Crash.on_custom_note ~pid:0 ~tag:"work" ~occurrence:0 Crash.After in
  let res = run_arb ~requests:3 ~crash ~cs () in
  check ci "all done" 6 (Engine.total_completed res);
  check ci "me" 1 res.Engine.cs_max

let test_arb_bounded_bypass () =
  (* Peterson's tie-breaker gives bounded bypass 1: under saturated
     contention no side enters twice while the other waits, so the CS order
     of two greedy competitors alternates. *)
  let res = run_arb ~record:true ~sched:(Sched.round_robin ()) ~requests:8 () in
  let order =
    List.filter_map
      (function Event.Note { note = Event.Seg Event.Cs_begin; pid; _ } -> Some pid | _ -> None)
      res.Engine.events
  in
  let rec repeats = function
    | a :: b :: rest -> (a = b && List.length rest >= 1) || repeats (b :: rest)
    | _ -> false
  in
  check ci "16 entries" 16 (List.length order);
  check cb "alternating CS order" false (repeats order)

let test_arb_sides_independent () =
  (* Two fixed processes alternating many passages under a random schedule
     and random crashes: a soak of the wake/arm protocol. *)
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"arbitrator soak" ~count:80
       QCheck.(pair (int_bound 9999) (int_bound 9999))
       (fun (seed, crash_seed) ->
         let crash = Crash.random ~seed:crash_seed ~rate:0.01 ~max_crashes:4 () in
         let res = run_arb ~sched:(Sched.random ~seed) ~crash ~requests:5 () in
         (not res.Engine.deadlocked) && (not res.Engine.timed_out)
         && Engine.total_completed res = 10
         && res.Engine.cs_max = 1))

let () =
  Alcotest.run "arbitrator"
    [
      ( "splitter",
        [
          Alcotest.test_case "single winner" `Quick test_splitter_single_winner;
          Alcotest.test_case "winner idempotent" `Quick test_splitter_winner_idempotent;
          Alcotest.test_case "release reopens" `Quick test_splitter_release_reopens;
          Alcotest.test_case "exhaustive one winner" `Quick test_splitter_exhaustive_one_winner;
        ] );
      ( "arbitrator",
        [
          Alcotest.test_case "me + sf" `Quick test_arb_me_sf;
          Alcotest.test_case "O(1) rmr" `Quick test_arb_rmr_constant;
          Alcotest.test_case "crash sweep" `Slow test_arb_crash_sweep;
          Alcotest.test_case "crash sweep dsm" `Slow test_arb_crash_sweep_dsm;
          Alcotest.test_case "bounded-exhaustive me" `Slow test_arb_exhaustive_me;
          Alcotest.test_case "bounded-exhaustive me with crash" `Slow test_arb_exhaustive_me_with_crash;
          Alcotest.test_case "bcsr" `Quick test_arb_bcsr;
          Alcotest.test_case "bounded bypass" `Quick test_arb_bounded_bypass;
          Alcotest.test_case "soak" `Quick test_arb_sides_independent;
        ] );
    ]
