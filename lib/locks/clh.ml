open Rme_sim

(* A CLH node is a single cell: 1 = locked (owner active), 0 = released. *)
type t = {
  mem : Memory.t;
  tail : Cell.t;
  mine : int array; (* private: my node's cell id + 1 *)
  pred : int array; (* private: predecessor node's cell id + 1 *)
  cells : Cell.t Vec.t;
}

let make ctx =
  let mem = Engine.Ctx.memory ctx in
  let n = Engine.Ctx.n ctx in
  let id = Engine.Ctx.register_lock ctx "clh" in
  let cells = Vec.create () in
  let fresh_cell init =
    let c = Memory.alloc mem ~name:(Printf.sprintf "clh.n%d" (Vec.length cells)) init in
    Vec.push cells c;
    c
  in
  (* The initial dummy node is released. *)
  let dummy = fresh_cell 0 in
  let t =
    {
      mem;
      tail = Memory.alloc mem ~name:"clh.tail" (dummy.Cell.id + 1);
      mine = Array.make n 0;
      pred = Array.make n 0;
      cells;
    }
  in
  (* Cell ids are global across the store, so map via the recorded vector:
     nodes are few (n + 1 live), a linear scan is fine. *)
  let find idp1 =
    let target = idp1 - 1 in
    let rec loop i =
      if i >= Vec.length t.cells then invalid_arg "clh: unknown node"
      else
        let c = Vec.get t.cells i in
        if c.Cell.id = target then c else loop (i + 1)
    in
    loop 0
  in
  let acquire ~pid =
    let node = if t.mine.(pid) = 0 then fresh_cell 1 else find t.mine.(pid) in
    t.mine.(pid) <- node.Cell.id + 1;
    Api.write node 1;
    let prev = Api.fas t.tail (node.Cell.id + 1) in
    t.pred.(pid) <- prev;
    Api.spin_until (find prev) (Api.Eq 0)
  in
  let release ~pid =
    let node = find t.mine.(pid) in
    Api.write node 0;
    (* Recycle the predecessor's node for my next request (CLH hand-off). *)
    t.mine.(pid) <- t.pred.(pid)
  in
  Lock.instrument ~id ~name:"clh" ~acquire ~release ()
