open Rme_sim

(* Private per-process memory: the reference to the process's own node lives
   in a register across acquire/release of the same passage.  The original
   algorithm reuses the node, so a plain host-side array models it. *)
type t = { reg : Nodes.registry; tail : Cell.t; own : int array }

let make ctx =
  let mem = Engine.Ctx.memory ctx in
  let n = Engine.Ctx.n ctx in
  let id = Engine.Ctx.register_lock ctx "mcs" in
  let t =
    {
      reg = Nodes.create_registry mem ~prefix:"mcs";
      tail = Memory.alloc mem ~name:"mcs.tail" Nodes.null;
      own = Array.make n Nodes.null;
    }
  in
  let node_of pid =
    if t.own.(pid) = Nodes.null then t.own.(pid) <- (Nodes.fresh t.reg ~owner:pid).Nodes.id;
    Nodes.get t.reg t.own.(pid)
  in
  let acquire ~pid =
    let node = node_of pid in
    Api.write node.Nodes.next Nodes.null;
    Api.write node.Nodes.locked 1;
    let prev = Api.fas t.tail node.Nodes.id in
    if prev <> Nodes.null then begin
      let pred = Nodes.get t.reg prev in
      Api.write pred.Nodes.next node.Nodes.id;
      Api.spin_until node.Nodes.locked (Api.Eq 0)
    end
  in
  let release ~pid =
    let node = Nodes.get t.reg t.own.(pid) in
    if not (Api.cas t.tail ~expect:node.Nodes.id ~value:Nodes.null) then begin
      (* A successor exists; wait for it to link itself in, then hand over. *)
      Api.spin_until node.Nodes.next (Api.Ne Nodes.null);
      let succ = Nodes.get t.reg (Api.read node.Nodes.next) in
      Api.write succ.Nodes.locked 0
    end
  in
  Lock.instrument ~id ~name:"mcs" ~acquire ~release ()
