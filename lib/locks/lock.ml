open Rme_sim

type t = Harness.lock = {
  name : string;
  acquire : pid:int -> unit;
  release : pid:int -> unit;
  try_abort : (pid:int -> Harness.abort_outcome) option;
}

type maker = Engine.Ctx.t -> t

let instrument ~id ~name ?try_abort ~acquire ~release () =
  {
    name;
    acquire =
      (fun ~pid ->
        Api.note (Event.Lock_enter id);
        acquire ~pid;
        Api.note (Event.Lock_acquired id));
    release =
      (fun ~pid ->
        Api.note (Event.Lock_release id);
        release ~pid;
        Api.note (Event.Lock_released id));
    try_abort =
      Option.map
        (fun inner ~pid ->
          Api.note (Event.Abort_request id);
          match (inner ~pid : Harness.abort_outcome) with
          | Harness.Aborted ->
              Api.note (Event.Abort_done id);
              Harness.Aborted
          | Harness.Acquired_instead ->
              Api.note (Event.Abort_lost_race id);
              Harness.Acquired_instead
          | Harness.Not_supported ->
              (* No protocol ran: the request proceeds as if never aborted;
                 the signal resolves at [Lock_acquired]. *)
              Harness.Not_supported)
        try_abort;
  }

(* Every registry lock goes through the abort-conformance matrix; legacy
   locks advertise [Not_supported] so the matrix can tell "no abort path"
   from "abort path missing by mistake".  Their [acquire] never raises
   [Api.Abort_signal], so the port is never actually called by the
   harness — it exists for direct probing. *)
let abortable t =
  match t.try_abort with
  | Some _ -> t
  | None -> { t with try_abort = Some (fun ~pid:_ -> Harness.Not_supported) }

type side = Left | Right

let side_index = function Left -> 0 | Right -> 1

let pp_side ppf = function Left -> Fmt.string ppf "left" | Right -> Fmt.string ppf "right"

type dual = {
  dual_name : string;
  dual_acquire : side -> pid:int -> unit;
  dual_release : side -> pid:int -> unit;
}
