open Rme_sim

type t = Harness.lock = { name : string; acquire : pid:int -> unit; release : pid:int -> unit }

type maker = Engine.Ctx.t -> t

let instrument ~id ~name ~acquire ~release =
  {
    name;
    acquire =
      (fun ~pid ->
        Api.note (Event.Lock_enter id);
        acquire ~pid;
        Api.note (Event.Lock_acquired id));
    release =
      (fun ~pid ->
        Api.note (Event.Lock_release id);
        release ~pid;
        Api.note (Event.Lock_released id));
  }

type side = Left | Right

let side_index = function Left -> 0 | Right -> 1

let pp_side ppf = function Left -> Fmt.string ppf "left" | Right -> Fmt.string ppf "right"

type dual = {
  dual_name : string;
  dual_acquire : side -> pid:int -> unit;
  dual_release : side -> pid:int -> unit;
}
