(** An abortable hand-off spinlock — the abort-semantics exemplar.

    Ownership is transferred by explicit hand-off: a releaser {e claims} a
    registered waiter (CAS on its flag), transfers [owner], then posts a
    per-waiter grant.  Aborting races the claim: either the registration
    is cancelled in time ([Aborted]) or the claim already won and the
    hand-off is unstoppable — the aborting process must accept the lock
    ([Acquired_instead]).

    The [naive] variant plants the classic lost-wakeup bug: its abort
    consumes a posted grant and leaves anyway, destroying the hand-off.
    The remaining waiters — including the aborter, on its retry — park on
    grants nobody will ever post, and the system deadlocks.  This is the
    planted witness for {!Rme_check.Props.no_lost_wakeup}.

    Neither variant is crash-safe: the family exists to exercise abort
    semantics in isolation ({!Wr_lock.make_abort} covers crash + abort). *)

type t

val create : ?name:string -> ?naive:bool -> Rme_sim.Engine.Ctx.t -> t

val lock : t -> Lock.t

val lock_id : t -> int

val make : Lock.maker
(** The correct abortable hand-off lock (registry key ["tas-abort"]). *)

val make_naive : Lock.maker
(** The planted lost-wakeup variant (named ["tas-abort-naive"]; not in the
    registry — used by the negative tests and the chaos demos). *)
