open Rme_sim

let free = 0

let trying = 1

let in_cs = 2

let leaving = 3

type t = {
  id : int;
  name : string;
  mem : Memory.t;
  want : Cell.t array;  (* per side *)
  turn : Cell.t;
  state : Cell.t array;  (* per side *)
  occupant : Cell.t array;  (* per side: pid + 1, 0 = none *)
  spin : Cell.t array;  (* per process, home = that process *)
}

let make_spin_pool ?(name = "arb") ctx =
  let mem = Engine.Ctx.memory ctx in
  Array.init (Engine.Ctx.n ctx) (fun p ->
      Memory.alloc mem ~home:p ~name:(Printf.sprintf "%s.spin[%d]" name p) 0)

let create ?(name = "arb") ?spin_pool ctx =
  let mem = Engine.Ctx.memory ctx in
  let id = Engine.Ctx.register_lock ctx name in
  let per_side field init =
    Array.init 2 (fun s -> Memory.alloc mem ~name:(Printf.sprintf "%s.%s[%d]" name field s) init)
  in
  {
    id;
    name;
    mem;
    want = per_side "want" 0;
    turn = Memory.alloc mem ~name:(name ^ ".turn") 0;
    state = per_side "state" free;
    occupant = per_side "occupant" 0;
    spin = (match spin_pool with Some p -> p | None -> make_spin_pool ~name ctx);
  }

let lock_id t = t.id

(* Wake whoever is registered as the opposite side's occupant.  Racing with
   registration is benign: the arm / re-check sequence on the waiter's side
   covers the window (see the waiting loop below). *)
let wake_side t s =
  let q = Api.read t.occupant.(s) in
  if q <> 0 then Api.write t.spin.(q - 1) 0

let exit_segment t s ~pid:_ =
  Api.write t.state.(s) leaving;
  Api.write t.want.(s) 0;
  wake_side t (1 - s);
  Api.write t.occupant.(s) 0;
  Api.write t.state.(s) free

(* The Peterson blocking condition for side [s]. *)
let blocked t s = Api.read t.want.(1 - s) = 1 && Api.read t.turn = s

let enter_segment t s ~pid =
  let st = Api.read t.state.(s) in
  if st = in_cs then () (* BCSR: crashed in CS, straight back in *)
  else begin
    (* Finish an interrupted exit first, then compete afresh. *)
    if st = leaving then exit_segment t s ~pid;
    Api.write t.state.(s) trying;
    Api.write t.occupant.(s) (pid + 1);
    Api.write t.want.(s) 1;
    Api.write t.turn s;
    (* Yielding the turn may unblock the other side. *)
    wake_side t (1 - s);
    (* Wait until not blocked.  Arm the spin cell, re-check, then sleep; the
       unblocker writes want/turn first and wakes afterwards, so a wake can
       never be lost.  The loop runs at most twice per passage: once woken,
       re-blocking would require this process itself to reset [turn]. *)
    while blocked t s do
      Api.write t.spin.(pid) 1;
      if blocked t s then Api.spin_until t.spin.(pid) (Api.Eq 0)
    done;
    Api.write t.state.(s) in_cs
  end

let acquire t side ~pid =
  Api.note (Event.Lock_enter t.id);
  enter_segment t (Lock.side_index side) ~pid;
  Api.note (Event.Lock_acquired t.id)

let release t side ~pid =
  Api.note (Event.Lock_release t.id);
  exit_segment t (Lock.side_index side) ~pid;
  Api.note (Event.Lock_released t.id)

let dual t =
  {
    Lock.dual_name = t.name;
    dual_acquire = (fun side ~pid -> acquire t side ~pid);
    dual_release = (fun side ~pid -> release t side ~pid);
  }

let as_two_process_lock t ~n:_ =
  let side_of pid =
    match pid with
    | 0 -> Lock.Left
    | 1 -> Lock.Right
    | _ -> invalid_arg "Arbitrator.as_two_process_lock: pid must be 0 or 1"
  in
  {
    Lock.name = t.name;
    acquire = (fun ~pid -> acquire t (side_of pid) ~pid);
    release = (fun ~pid -> release t (side_of pid) ~pid);
    try_abort = None;
  }
