open Rme_sim

type t = { id : int; name : string; tk : Tickets.t }

let create ?(name = "jjj-sys") ctx =
  let id = Engine.Ctx.register_lock ctx name in
  { id; name; tk = Tickets.create ~name ctx }

let lock_id t = t.id

let lock t =
  Lock.instrument ~id:t.id ~name:t.name
    ~acquire:(fun ~pid -> Tickets.enter t.tk ~pid)
    ~release:(fun ~pid -> Tickets.exit t.tk ~pid)
    ()

let make ctx = lock (create ctx)
