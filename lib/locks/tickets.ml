open Rme_sim

(* Announce-slot sentinels.  Real tickets start at [base] so they can never
   collide with either sentinel. *)
let idle = 0

let taking = 1

let base = 2

type t = {
  name : string;
  n : int;
  seq : Cell.t;  (* next ticket to issue *)
  grant : Cell.t;  (* ticket currently served *)
  dirty : Cell.t;  (* pending doorway-crash repairs (may overcount) *)
  ann : Cell.t array;  (* per process: idle, taking, or its ticket *)
}

let create ?(name = "tickets") ctx =
  let mem = Engine.Ctx.memory ctx in
  let n = Engine.Ctx.n ctx in
  {
    name;
    n;
    seq = Memory.alloc mem ~name:(name ^ ".seq") base;
    grant = Memory.alloc mem ~name:(name ^ ".grant") base;
    dirty = Memory.alloc mem ~name:(name ^ ".dirty") 0;
    ann =
      Array.init n (fun p ->
          Memory.alloc mem ~home:p ~name:(Printf.sprintf "%s.ann[%d]" name p) idle);
  }

(* Skip the ticket currently served iff its owner provably died in the
   doorway.  Safety of the CAS guard: tickets are unique, so ticket [g] has
   exactly one owner; from the moment that owner announced [g] until its
   own release moves [grant] past [g], its slot holds [g] (crashes do not
   clear it — recovery resumes ownership while [g] is current).  A slot
   stuck at [taking] may be hiding an unannounced [g], so the scan parks on
   it and retries — the slot changes when the owner either announces (live)
   or restarts through recovery (which clears it).  If no slot holds [g]
   and none is mid-doorway, the issued ticket [g] is dead and CAS(g, g+1)
   hands the lock on; a concurrent release or rival repairer changes
   [grant] first, the CAS fails, and nothing is skipped twice. *)
let rec repair t =
  let g = Api.read t.grant in
  let s = Api.read t.seq in
  if g < s then begin
    (* [g] was issued; read grant and seq before the scan so a slot seen
       empty cannot later announce [g] (its FAS would return >= s > g). *)
    let verdict = ref `Dead in
    let q = ref 0 in
    while !verdict = `Dead && !q < t.n do
      let a = Api.read t.ann.(!q) in
      if a = g then verdict := `Live
      else if a = taking then verdict := `Taking !q;
      incr q
    done;
    match !verdict with
    | `Live -> () (* the served ticket has a live owner; nothing to fix *)
    | `Taking q ->
        Api.spin_until t.ann.(q) (Api.Ne taking);
        repair t
    | `Dead ->
        if Api.cas t.grant ~expect:g ~value:(g + 1) then
          let (_ : int) = Api.faa t.dirty (-1) in
          ()
  end

(* Recovery-aware doorway + wait.  The only sensitive gap is between
   [ann := taking] and [ann := ticket] around the FAS on [seq]: a crash
   there may lose a ticket that nobody will ever announce.  Recovery cannot
   tell whether the FAS happened, so it marks [dirty] and the lost (or
   phantom) ticket is skipped by {!repair} when it becomes current. *)
let rec enter t ~pid =
  let a = Api.read t.ann.(pid) in
  if a = taking then begin
    (* Crashed in the doorway: the ticket, if taken, is lost. *)
    let (_ : int) = Api.faa t.dirty 1 in
    Api.write t.ann.(pid) idle;
    enter t ~pid
  end
  else if a = idle then begin
    Api.write t.ann.(pid) taking;
    let ticket = Api.faa t.seq 1 in
    Api.write t.ann.(pid) ticket;
    wait t ~ticket
  end
  else begin
    (* Recovering with a ticket in hand. *)
    let g = Api.read t.grant in
    if a < g then begin
      (* Our previous passage was already served to completion of its
         hand-off (we crashed between grant++ and the slot clear). *)
      Api.write t.ann.(pid) idle;
      enter t ~pid
    end
    else wait t ~ticket:a (* a = g resumes ownership; a > g rejoins *)
  end

and wait t ~ticket =
  if Api.read t.dirty > 0 then repair t;
  Api.spin_until t.grant (Api.Eq ticket)

let exit t ~pid =
  (* grant++ strictly before the slot clear: losing the hand-off would
     wedge the queue, while crashing after it just leaves a stale slot
     that recovery classifies by [ann < grant]. *)
  let (_ : int) = Api.faa t.grant 1 in
  if Api.read t.dirty > 0 then repair t;
  Api.write t.ann.(pid) idle
