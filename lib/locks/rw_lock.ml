open Rme_sim

(* Reader states, persisted per process. *)
let idle = 0

let pending = 1

let reading = 2

let leaving = 3

type t = {
  name : string;
  n : int;
  wlock : Lock.t;
  wflag : Cell.t;  (* a writer holds (or is draining towards) the resource *)
  rflag : Cell.t array;  (* reader announcements; home = the reader *)
  rstate : Cell.t array;  (* reader recovery state machine; home = the reader *)
}

let create ?(name = "rw") ?writer_lock ctx =
  let mem = Engine.Ctx.memory ctx in
  let n = Engine.Ctx.n ctx in
  let wlock =
    match writer_lock with
    | Some l -> l
    | None -> Ba_lock.lock (Ba_lock.create ~name:(name ^ ".w") ~base:Jjj_tree.make ctx)
  in
  let arr field init =
    Array.init n (fun i ->
        Memory.alloc mem ~home:i ~name:(Printf.sprintf "%s.%s[%d]" name field i) init)
  in
  {
    name;
    n;
    wlock;
    wflag = Memory.alloc mem ~name:(name ^ ".wflag") 0;
    rflag = arr "rflag" 0;
    rstate = arr "rstate" idle;
  }

let rec read_enter t ~pid =
  let s = Api.read t.rstate.(pid) in
  if s = reading then () (* BCSR: crashed inside the read section *)
  else begin
    if s = leaving then begin
      (* Finish the interrupted exit first. *)
      Api.write t.rflag.(pid) 0;
      Api.write t.rstate.(pid) idle
    end;
    (* Announce, then check for a writer.  The writer's drain scans the
       announcements only after setting wflag, so either it sees ours (and
       waits for us) or we see its wflag (and withdraw). *)
    Api.write t.rstate.(pid) pending;
    Api.write t.rflag.(pid) 1;
    if Api.read t.wflag = 0 then Api.write t.rstate.(pid) reading
    else begin
      Api.write t.rflag.(pid) 0;
      Api.write t.rstate.(pid) idle;
      Api.spin_until t.wflag (Api.Eq 0);
      read_enter t ~pid
    end
  end

let read_acquire t ~pid = read_enter t ~pid

let read_release t ~pid =
  (* Leaving-first ordering: a crash between the two writes leaves state
     [leaving] + flag still set, which the next Recover finishes; the
     reverse order could let a restart claim a read section it no longer
     announces. *)
  Api.write t.rstate.(pid) leaving;
  Api.write t.rflag.(pid) 0;
  Api.write t.rstate.(pid) idle

let write_acquire t ~pid =
  t.wlock.Lock.acquire ~pid;
  (* Announce and drain.  Idempotent: a crashed writer re-enters the mutex
     via its BCSR, re-sets the flag and re-scans. *)
  Api.write t.wflag 1;
  for i = 0 to t.n - 1 do
    Api.spin_until t.rflag.(i) (Api.Eq 0)
  done

let write_release t ~pid =
  Api.write t.wflag 0;
  t.wlock.Lock.release ~pid

let reader_lock t =
  {
    Lock.name = t.name ^ ".reader";
    acquire = (fun ~pid -> read_acquire t ~pid);
    release = (fun ~pid -> read_release t ~pid);
    try_abort = None;
  }

let writer_lock_view t =
  {
    Lock.name = t.name ^ ".writer";
    acquire = (fun ~pid -> write_acquire t ~pid);
    release = (fun ~pid -> write_release t ~pid);
    try_abort = None;
  }
