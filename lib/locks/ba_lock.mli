(** BA-Lock: the well-bounded super-adaptive lock of §5.2.

    A stack of [m] {!Sa_lock} levels over a bounded non-adaptive strongly
    recoverable base lock: the core of level i is level i+1, the core of
    level m is the base lock.  Escalating k processes past any level
    requires k unsafe failures of that level's filter (Lemma 5.8), and the
    filters' sensitive instructions are pairwise distinct (locality,
    Theorem 5.12), so reaching level x needs ≥ x(x−1)/2 recent failures
    (Theorem 5.17): the RMR cost of a passage is O(min{√F, T(n)})
    (Theorem 5.18), and with the JJJ-shape base lock
    O(min{√F, log n / log log n}) (Theorem 5.19).

    With [track_level] (the §7.3 optimisation) a restarting process skips
    straight to its persisted deepest level instead of re-walking the chain,
    reducing a crash-prone super-passage from O(F₀·√F) to O(F₀ + √F). *)

type t

val create :
  ?name:string ->
  ?levels:int ->
  ?track_level:bool ->
  base:Lock.maker ->
  Rme_sim.Engine.Ctx.t ->
  t
(** [levels] defaults to the base lock's worst-case RMR depth: ⌈log₂ n⌉
    for n processes (the m = T(n) prescription of §5.2). *)

val lock : t -> Lock.t

val lock_id : t -> int

val levels : t -> int

val filter_ids : t -> int list
(** Lock ids of the per-level filters, outermost first — used by the
    checkers to count per-level unsafe failures. *)

val make : base:Lock.maker -> Lock.maker
(** [make ~base] with default levels and no level tracking. *)

val default : Lock.maker
(** The paper's headline configuration: BA over the JJJ-shape base lock. *)
