open Rme_sim

let log2 x = log (float_of_int x) /. log 2.0

let branching_for n =
  if n <= 2 then 2
  else
    let l = log2 n in
    let ll = Float.max 1.0 (log2 (max 2 (int_of_float (Float.ceil l)))) in
    max 2 (int_of_float (Float.ceil (l /. ll)))

let rec depth_of ~k n = if n <= 1 then 0 else 1 + depth_of ~k ((n + k - 1) / k)

let depth_for n = depth_of ~k:(branching_for n) n

let make_named ?k ~name ctx =
  let n = Engine.Ctx.n ctx in
  let k = match k with Some k -> max 2 k | None -> branching_for n in
  let id = Engine.Ctx.register_lock ctx name in
  let depth = depth_of ~k n in
  let pow_k l =
    let rec go acc l = if l = 0 then acc else go (acc * k) (l - 1) in
    go 1 l
  in
  (* nodes.(l).(i): the i-th k-port lock at height l (leaves at l = 0). *)
  let nodes =
    Array.init depth (fun l ->
        let span = pow_k (l + 1) in
        let count = (n + span - 1) / span in
        Array.init count (fun i ->
            Kport.create ~name:(Printf.sprintf "%s.l%d.n%d" name l i) ~k ctx))
  in
  let node_of pid l = nodes.(l).(pid / pow_k (l + 1)) in
  let port_of pid l = pid / pow_k l mod k in
  let acquire ~pid =
    for l = 0 to depth - 1 do
      Kport.acquire (node_of pid l) ~port:(port_of pid l) ~pid
    done
  in
  let release ~pid =
    for l = depth - 1 downto 0 do
      Kport.release (node_of pid l) ~port:(port_of pid l) ~pid
    done
  in
  Lock.instrument ~id ~name ~acquire ~release ()

let make ctx = make_named ~name:"jjj" ctx
