(** A recoverable reader–writer lock — a downstream artefact built on the
    paper's mutex (the kind of extension its introduction motivates).

    Writers serialise through any strongly recoverable mutex (the adaptive
    BA-Lock by default) and then drain the readers; readers announce
    themselves in persisted per-process flags and back off while a writer
    is present.  All recovery is local and bounded:

    - a reader's persisted 3-state machine (idle / pending / reading /
      leaving) disambiguates "crashed while announced but not yet admitted"
      (the announcement is withdrawn and re-tried) from "crashed inside the
      read section" (re-admitted immediately, BCSR-style);
    - a writer's recovery rides on the underlying mutex's BCSR and the
      idempotence of the announce-and-drain sequence;
    - a reader that crashes mid-exit leaves a stale announcement that can
      block writers only until its next Recover runs, which the paper's
      fair-history assumption guarantees (a process whose last passage was
      not failure-free keeps taking steps).

    Writer-preference: announced writers block new readers, so writers
    cannot starve behind a reader stream. *)

type t

val create : ?name:string -> ?writer_lock:Lock.t -> Rme_sim.Engine.Ctx.t -> t
(** [writer_lock] defaults to a BA-Lock over the JJJ-shape base. *)

val read_acquire : t -> pid:int -> unit

val read_release : t -> pid:int -> unit

val write_acquire : t -> pid:int -> unit

val write_release : t -> pid:int -> unit

val reader_lock : t -> Lock.t
(** The read side packaged as an ordinary lock (for the harness). *)

val writer_lock_view : t -> Lock.t
(** The write side packaged as an ordinary lock. *)
