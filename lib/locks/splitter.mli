(** The splitter of §5.1.1: a biased, strongly recoverable try-lock.

    Implemented with a single integer cell [owner] and a CAS: if several
    processes navigate it concurrently (possible only after an unsafe
    failure of the filter lock), exactly one takes the fast path; the rest
    are diverted to the slow path.  O(1) RMR in every scenario.

    The outcome is decided by reading [owner] after the CAS, never from the
    CAS result, so the step is idempotent and crash-safe (a process that
    crashed after a winning CAS re-reads [owner] and finds itself). *)

type t

val create : ?name:string -> Rme_sim.Engine.Ctx.t -> t

val try_fast : t -> pid:int -> bool
(** Attempt to occupy the fast path.  Returns [true] iff [pid] holds it
    (idempotent: re-invocation by the current occupant returns [true]). *)

val release : t -> pid:int -> unit
(** Free the fast path.  Must only be called by the occupant. *)

val occupant : t -> int option
(** Diagnostic peek. *)
