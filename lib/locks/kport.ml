open Rme_sim

let free = 0

let initializing = 1

let trying = 2

let in_cs = 3

let leaving = 4

type t = {
  id : int;
  name : string;
  k : int;
  reg : Nodes.registry;
  tail : Cell.t;
  state : Cell.t array;  (* per port *)
  mine : Cell.t array;
  pred : Cell.t array;
}

let create ?(name = "kport") ~k ctx =
  let mem = Engine.Ctx.memory ctx in
  let id = Engine.Ctx.register_lock ctx name in
  let per_port field init =
    Array.init k (fun q -> Memory.alloc mem ~name:(Printf.sprintf "%s.%s[%d]" name field q) init)
  in
  {
    id;
    name;
    k;
    reg = Nodes.create_registry mem ~prefix:name;
    tail = Memory.alloc mem ~name:(name ^ ".tail") Nodes.null;
    state = per_port "state" free;
    mine = per_port "mine" Nodes.null;
    pred = per_port "pred" Nodes.null;
  }

let lock_id t = t.id

let exit_segment t q =
  Api.write t.state.(q) leaving;
  let mine = Api.read t.mine.(q) in
  let node = Nodes.get t.reg mine in
  let (_ : bool) = Api.cas t.tail ~expect:mine ~value:Nodes.null in
  let (_ : bool) = Api.cas node.Nodes.next ~expect:Nodes.null ~value:mine in
  let next = Api.read node.Nodes.next in
  if next <> mine then Api.write (Nodes.get t.reg next).Nodes.locked 0;
  Api.write t.state.(q) free

let enter_segment t q ~pid =
  let s = Api.read t.state.(q) in
  if s = in_cs then () (* BCSR *)
  else begin
    if s = leaving then exit_segment t q;
    if Api.read t.state.(q) = free then begin
      Api.write t.mine.(q) Nodes.null;
      Api.write t.state.(q) initializing
    end;
    if Api.read t.state.(q) = initializing then begin
      if Api.read t.mine.(q) = Nodes.null then begin
        let node = Nodes.fresh t.reg ~owner:pid in
        Api.write t.mine.(q) node.Nodes.id
      end;
      let mine = Api.read t.mine.(q) in
      let node = Nodes.get t.reg mine in
      Api.write node.Nodes.next Nodes.null;
      Api.write node.Nodes.locked 1;
      Api.write t.pred.(q) mine;
      Api.write t.state.(q) trying
    end;
    if Api.read t.state.(q) = trying then begin
      let mine = Api.read t.mine.(q) in
      let node = Nodes.get t.reg mine in
      (* pred = mine marks "not appended yet"; the append is atomic, so a
         crash leaves either both effects or neither — no sensitive gap. *)
      if Api.read t.pred.(q) = mine then Api.fas_persist t.tail mine ~dst:t.pred.(q);
      let pred = Api.read t.pred.(q) in
      if pred <> Nodes.null then begin
        let pnode = Nodes.get t.reg pred in
        let (_ : bool) = Api.cas pnode.Nodes.next ~expect:Nodes.null ~value:mine in
        if Api.read pnode.Nodes.next = mine then Api.spin_until node.Nodes.locked (Api.Eq 0)
      end;
      Api.write t.state.(q) in_cs
    end
  end

let check_port t q =
  if q < 0 || q >= t.k then invalid_arg (Printf.sprintf "%s: port %d out of range" t.name q)

let acquire t ~port ~pid =
  check_port t port;
  Api.note (Event.Lock_enter t.id);
  enter_segment t port ~pid;
  Api.note (Event.Lock_acquired t.id)

let release t ~port ~pid:_ =
  check_port t port;
  Api.note (Event.Lock_release t.id);
  exit_segment t port;
  Api.note (Event.Lock_released t.id)

let as_lock t =
  {
    Lock.name = t.name;
    acquire = (fun ~pid -> acquire t ~port:pid ~pid);
    release = (fun ~pid -> release t ~port:pid ~pid);
    try_abort = None;
  }
