open Rme_sim

type node = { id : int; next : Cell.t; locked : Cell.t; owner : int }

let null = 0

type registry = { mem : Memory.t; prefix : string; nodes : node Vec.t }

let create_registry mem ~prefix = { mem; prefix; nodes = Vec.create () }

let fresh reg ~owner =
  let id = Vec.length reg.nodes + 1 in
  let name field = Printf.sprintf "%s.n%d.%s" reg.prefix id field in
  let node =
    {
      id;
      next = Memory.alloc reg.mem ~home:owner ~name:(name "next") null;
      locked = Memory.alloc reg.mem ~home:owner ~name:(name "locked") 0;
      owner;
    }
  in
  Vec.push reg.nodes node;
  node

let get reg id =
  if id <= 0 || id > Vec.length reg.nodes then
    invalid_arg (Printf.sprintf "Nodes.get: bad node id %d" id);
  Vec.get reg.nodes (id - 1)

let count reg = Vec.length reg.nodes
