(** SA-Lock: the semi-adaptive framework of §5.1 (Algorithm 3).

    Composition: a weakly recoverable {!Wr_lock} filter, a {!Splitter}, a
    strongly recoverable {e core} lock, and a dual-port {!Arbitrator}:

    - the filter admits exactly one process per "epoch" unless an unsafe
      failure splits its queue;
    - of the (possibly several) filter holders, the splitter lets one take
      the fast path (→ arbitrator, Left side) and diverts the rest to the
      slow path (→ core lock, then arbitrator, Right side);
    - the path type is persisted per process, so crashed processes retrace
      their own path (BCSR).

    RMR per passage: O(1) in the absence of failures; O(T(n)) of the core
    lock otherwise (Theorem 5.6).  Strongly recoverable (Theorem 5.5).

    Besides the plain {!Lock.t} view (used standalone with any core), the
    module exposes the front/back phases so that {!Ba_lock} can enter the
    recursive chain at an arbitrary level (§7.3 level tracking). *)

type t

val create :
  ?name:string -> ?level:int -> ?core:Lock.t -> Rme_sim.Engine.Ctx.t -> t
(** [level] tags the instance's history milestones ({!Rme_sim.Event.Level},
    {!Rme_sim.Event.Path}) with its depth in a recursive stack.  [core] may
    be omitted when only the phase interface is used ({!Ba_lock} supplies
    the next level itself). *)

val lock : t -> Lock.t
(** The standalone view: acquire = filter → splitter → (core) → arbitrator.
    @raise Invalid_argument when the instance has no core lock. *)

val lock_id : t -> int

val filter : t -> Wr_lock.t

(** {1 Phase interface (used by {!Ba_lock})} *)

val enter_front : t -> pid:int -> [ `Fast | `Slow ]
(** Filter acquire + splitter navigation; commits and persists the path. *)

val enter_back : t -> pid:int -> unit
(** Arbitrator acquire, from the side given by the persisted path. *)

val release_with : t -> pid:int -> core_release:(unit -> unit) -> unit
(** Full Exit segment; [core_release] runs exactly when the slow path was
    taken. *)
