open Rme_sim

type t = { reg : Nodes.registry; tail : Cell.t; own : int array }

let make ctx =
  let mem = Engine.Ctx.memory ctx in
  let n = Engine.Ctx.n ctx in
  let id = Engine.Ctx.register_lock ctx "mcs-be" in
  let t =
    {
      reg = Nodes.create_registry mem ~prefix:"mcs-be";
      tail = Memory.alloc mem ~name:"mcs-be.tail" Nodes.null;
      own = Array.make n Nodes.null;
    }
  in
  let acquire ~pid =
    let node = Nodes.fresh t.reg ~owner:pid in
    t.own.(pid) <- node.Nodes.id;
    Api.write node.Nodes.next Nodes.null;
    Api.write node.Nodes.locked 1;
    let prev = Api.fas t.tail node.Nodes.id in
    if prev <> Nodes.null then begin
      let pred = Nodes.get t.reg prev in
      let (_ : bool) = Api.cas pred.Nodes.next ~expect:Nodes.null ~value:node.Nodes.id in
      (* Decide from the field contents, not the CAS outcome: if the link is
         ours we wait; otherwise the predecessor already left and marked the
         field with its own id — the lock is free. *)
      if Api.read pred.Nodes.next = node.Nodes.id then
        Api.spin_until node.Nodes.locked (Api.Eq 0)
    end
  in
  let release ~pid =
    let node = Nodes.get t.reg t.own.(pid) in
    let (_ : bool) = Api.cas t.tail ~expect:node.Nodes.id ~value:Nodes.null in
    let (_ : bool) = Api.cas node.Nodes.next ~expect:Nodes.null ~value:node.Nodes.id in
    let next = Api.read node.Nodes.next in
    if next <> node.Nodes.id then Api.write (Nodes.get t.reg next).Nodes.locked 0
  in
  Lock.instrument ~id ~name:"mcs-be" ~acquire ~release ()
