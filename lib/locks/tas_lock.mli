(** A recoverable test-and-set spinlock — the simplest strongly recoverable
    lock, and the "no RMR guarantee" baseline row of the benches.

    The entire lock state is one cell holding the owner's identity, so
    recovery is trivial: a process that finds itself as the owner re-enters
    (BCSR); every step is an idempotent CAS.  The price is the RMR
    complexity: under CC every handoff invalidates every spinner (O(n) per
    passage under contention), and under DSM the spinning is remote — the
    behaviour the MCS-family locks exist to avoid. *)

val make : Lock.maker

val make_named : name:string -> Lock.maker
