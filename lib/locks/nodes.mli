(** Queue nodes for the MCS family of locks.

    A node owns two shared cells — [next] (reference to the successor node,
    0 = null) and [locked] (the flag its owner spins on) — allocated in the
    owner's memory module so that spinning is local under DSM.  Node ids are
    positive integers; cell contents holding node references store ids, with
    {!null} (= 0) for the null reference. *)

open Rme_sim

type node = private { id : int; next : Cell.t; locked : Cell.t; owner : int }

val null : int
(** The null node reference (0). *)

type registry

val create_registry : Memory.t -> prefix:string -> registry

val fresh : registry -> owner:int -> node
(** Allocate a new node owned by process [owner].  May be called from inside
    a simulated execution (it models [new QNode] and costs no RMRs; the
    algorithm initialises the fields with accounted writes afterwards). *)

val get : registry -> int -> node
(** Resolve a node id.  @raise Invalid_argument on 0 or unknown ids. *)

val count : registry -> int
(** Number of nodes ever allocated (space-bound measurements, §7.2). *)
