(** The JJJ system-crash lock: a recoverable FCFS mutex whose entire state
    survives {e whole-system} failures.

    A direct lock presentation of the {!Tickets} doorway — the in-model
    reproduction of Jayanti–Jayanti–Joshi, {e Constant RMR Recoverable
    Mutex under System-wide Crashes} (arXiv 2302.00748): NVRAM ticket
    dispenser and grant counter, per-process announce slots, and a
    liveness-guarded repair path that skips tickets lost to doorway
    crashes.  Strongly recoverable under both the paper's per-process
    crash model and the system-wide model ({!Rme_sim.Crash.system_at}):
    mutual exclusion, FCFS and starvation freedom hold across whole-system
    restarts, and a process that crashed inside the critical section
    resumes ownership on recovery. *)

open Rme_sim

type t

val create : ?name:string -> Engine.Ctx.t -> t

val lock_id : t -> int

val lock : t -> Lock.t

val make : Lock.maker
