open Rme_sim

(* Abortable hand-off spinlock.

   The plain recoverable TAS lock ({!Tas_lock}) spins directly on [owner],
   so withdrawing a request is trivial — stop spinning — and exercises
   nothing.  This variant transfers the lock by explicit hand-off, which is
   where aborting gets interesting: a releaser *claims* a registered waiter
   (CAS flag 1 -> 2), transfers ownership, then posts a grant the waiter
   consumes.  An abort therefore races the claim — either the registration
   is cancelled in time (CAS flag 1 -> 0) or the claim won and the hand-off
   is unstoppable: the aborting process must accept the lock after all
   ([Acquired_instead]).

   Cells:
   - [flag.(i)]  0 = absent, 1 = registered waiter, 2 = claimed by a releaser
   - [grant.(i)] 1 = hand-off posted; written strictly after [owner], so a
                 visible grant implies [owner = i+1]
   - [owner]     pid+1 of the holder, 0 = free

   Release scans flags round-robin from the releaser's successor, so a
   registered waiter is claimed within n hand-offs (the token walks the
   ring towards it) — starvation-free, which is what lets
   {!Rme_check.Props.no_lost_wakeup} use a passage bound.

   The [naive] variant plants the classic lost-wakeup bug: its abort
   handles the lost race by *consuming* the grant and leaving anyway,
   instead of accepting the lock.  The hand-off is destroyed — [owner]
   names a process that went back to the NCS — and the system deadlocks as
   the remaining waiters (including the aborter, on its retry) park on
   grants nobody will ever post.  This is the witness
   {!Rme_check.Props.no_lost_wakeup} exists to catch.

   Neither variant is crash-safe (a crash between claim and grant strands
   the claimed waiter); the registry marks them accordingly — this family
   is the abort-semantics exemplar, {!Wr_lock.make_abort} is the
   crash-and-abort one. *)

type t = {
  id : int;
  name : string;
  n : int;
  naive : bool;
  owner : Cell.t;
  flag : Cell.t array;
  grant : Cell.t array;
}

let create ?(name = "tas-abort") ?(naive = false) ctx =
  let mem = Engine.Ctx.memory ctx in
  let n = Engine.Ctx.n ctx in
  let id = Engine.Ctx.register_lock ctx name in
  let arr field init =
    Array.init n (fun i ->
        Memory.alloc mem ~home:i ~name:(Printf.sprintf "%s.%s[%d]" name field i) init)
  in
  {
    id;
    name;
    n;
    naive;
    owner = Memory.alloc mem ~name:(name ^ ".owner") 0;
    flag = arr "flag" 0;
    grant = arr "grant" 0;
  }

let lock_id t = t.id

let acquire t ~pid =
  Api.write t.flag.(pid) 1;
  let acquired = ref false in
  while not !acquired do
    if Api.cas t.owner ~expect:0 ~value:(pid + 1) then begin
      (* [owner] was 0, so the previous release had already finished its
         scan without claiming us: the registration is still ours to
         retract. *)
      Api.write t.flag.(pid) 0;
      acquired := true
    end
    else begin
      Api.spin_abortable t.grant.(pid) (Api.Eq 1);
      if Api.read t.grant.(pid) = 1 then begin
        (* Hand-off: [owner = pid+1] was written before the grant. *)
        Api.write t.grant.(pid) 0;
        Api.write t.flag.(pid) 0;
        acquired := true
      end
      else if Api.poll_abort () then raise Api.Abort_signal
      (* else: raced a concurrent consume; re-attempt. *)
    end
  done

let release t ~pid =
  let rec hand_off () =
    let handed = ref false in
    let k = ref 1 in
    while (not !handed) && !k <= t.n - 1 do
      let j = (pid + !k) mod t.n in
      if Api.cas t.flag.(j) ~expect:1 ~value:2 then begin
        Api.write t.owner (j + 1);
        Api.write t.grant.(j) 1;
        handed := true
      end;
      incr k
    done;
    if not !handed then begin
      Api.write t.owner 0;
      (* Close the register-after-scan race: a waiter that set its flag
         after the scan read its slot but before [owner := 0] would park
         on a grant nobody posts.  Any such registration is visible to
         this re-scan (its write precedes [owner := 0]); if the lock is
         still free we re-take it and hand off for real — if the CAS
         fails, whoever took it owns the next scan. *)
      let waiter = ref false in
      for j = 0 to t.n - 1 do
        if Api.read t.flag.(j) = 1 then waiter := true
      done;
      if !waiter && Api.cas t.owner ~expect:0 ~value:(pid + 1) then hand_off ()
    end
  in
  hand_off ()

let try_abort t ~pid =
  if t.naive then begin
    (* Planted bug: retract blindly and treat a posted grant as litter to
       sweep up.  Consuming it destroys the hand-off — [owner] still names
       this process, but nobody knows. *)
    Api.write t.flag.(pid) 0;
    if Api.read t.grant.(pid) = 1 then Api.write t.grant.(pid) 0;
    Harness.Aborted
  end
  else if Api.cas t.flag.(pid) ~expect:1 ~value:0 then
    (* Retracted before any claim: no grant exists or ever will. *)
    Harness.Aborted
  else begin
    (* A releaser claimed us (flag = 2): the hand-off is unstoppable.
       Accept it. *)
    Api.spin_until t.grant.(pid) (Api.Eq 1);
    Api.write t.grant.(pid) 0;
    Api.write t.flag.(pid) 0;
    Harness.Acquired_instead
  end

let lock t =
  Lock.instrument ~id:t.id ~name:t.name
    ~try_abort:(fun ~pid -> try_abort t ~pid)
    ~acquire:(fun ~pid -> acquire t ~pid)
    ~release:(fun ~pid -> release t ~pid)
    ()

let make ctx = lock (create ctx)

let make_naive ctx = lock (create ~name:"tas-abort-naive" ~naive:true ctx)
