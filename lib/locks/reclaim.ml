open Rme_sim

(* switch states *)
let completed = 0

let started = 1

let in_progress = 2

(* modes *)
let scan = 0

let wait = 1

(* Waiting strategy for the epoch's Wait phase.  [Spin] busy-waits on the
   scanned process's [out] counter — O(1) under CC (cached) but a remote
   spin under DSM.  [Notify] is the "notification based system" the paper
   sketches for DSM (§7.2, last paragraph): the waiter registers a target in
   a slot homed at the scanned process, marks it dirty, and sleeps on its
   own local doorbell; the retiring process rings registered doorbells when
   its [out] counter passes their targets.  The dirty flag keeps retire O(1)
   when nobody waits; the register / re-dirty / re-check ordering makes
   wake-ups lossless (same arm-recheck-sleep idiom as the arbitrator). *)
type notify = {
  ding : Cell.t array;  (* doorbell, home = waiter *)
  slot : Cell.t array array;  (* slot.(j).(i): i waits for out[j] >= slot; home j *)
  dirty : Cell.t array;  (* dirty.(j): someone may be registered at j; home j *)
}

type t = {
  name : string;
  mem : Memory.t;
  n : int;
  incoming : Cell.t array;  (* paper: in[i], nodes allocated *)
  outgoing : Cell.t array;  (* paper: out[i], nodes retired *)
  switch : Cell.t array;
  mode : Cell.t array;
  index : Cell.t array;
  snapshot : Cell.t array array;  (* snapshot.(i).(j) *)
  pool_index : Cell.t array;
  confirm_pool_index : Cell.t array;
  notify : notify option;
  mutable pools : Nodes.node array array array;  (* pools.(i).(b).(s) *)
}

let create ?(name = "reclaim") ?(notify = false) ctx =
  let mem = Engine.Ctx.memory ctx in
  let n = Engine.Ctx.n ctx in
  let arr field init =
    Array.init n (fun i ->
        Memory.alloc mem ~home:i ~name:(Printf.sprintf "%s.%s[%d]" name field i) init)
  in
  let matrix field init =
    Array.init n (fun i ->
        Array.init n (fun j ->
            Memory.alloc mem ~home:i ~name:(Printf.sprintf "%s.%s[%d][%d]" name field i j) init))
  in
  {
    name;
    mem;
    n;
    incoming = arr "in" 0;
    outgoing = arr "out" 0;
    switch = arr "switch" completed;
    mode = arr "mode" scan;
    index = arr "index" 0;
    snapshot = matrix "snapshot" 0;
    pool_index = arr "pool_index" 0;
    confirm_pool_index = arr "confirm_pool_index" 0;
    notify = (if notify then Some { ding = arr "ding" 0; slot = matrix "slot" 0; dirty = arr "dirty" 0 } else None);
    pools = [||];
  }

(* The pools model statically allocated NVRAM; they are drawn lazily from
   the owning lock's registry so that node ids resolve in that lock. *)
let ensure_pools t reg =
  if Array.length t.pools = 0 then
    t.pools <-
      Array.init t.n (fun i ->
          Array.init 2 (fun _ -> Array.init (2 * t.n) (fun _ -> Nodes.fresh reg ~owner:i)))

(* One incremental step of the epoch state machine (Algorithm 4). *)
let epoch t ~pid =
  if Api.read t.switch.(pid) = completed then begin
    if Api.read t.mode.(pid) = scan then begin
      let idx = Api.read t.index.(pid) in
      let v = Api.read t.incoming.(idx) in
      Api.write t.snapshot.(pid).(idx) v;
      if idx < t.n - 1 then Api.write t.index.(pid) (idx + 1) else Api.write t.mode.(pid) wait
    end;
    if Api.read t.mode.(pid) = wait then begin
      let idx = Api.read t.index.(pid) in
      let snap = Api.read t.snapshot.(pid).(idx) in
      (* Wait for process idx to satisfy every request the scan saw. *)
      (match t.notify with
      | None -> Api.spin_until t.outgoing.(idx) (Api.Ge snap)
      | Some nt ->
          if Api.read t.outgoing.(idx) < snap then begin
            (* Register a doorbell target at idx; re-dirty after arming so a
               concurrent retire either sees the slot or the flag. *)
            Api.write nt.ding.(pid) 0;
            Api.write nt.slot.(idx).(pid) snap;
            Api.write nt.dirty.(idx) 1;
            (* Re-check after arming: a retire concurrent with the
               registration either saw the slot (dirty was already set) or
               finished before this read, which then passes. *)
            if Api.read t.outgoing.(idx) < snap then Api.spin_until nt.ding.(pid) (Api.Eq 1)
          end;
          Api.write nt.slot.(idx).(pid) 0);
      if idx > 0 then Api.write t.index.(pid) (idx - 1) else Api.write t.switch.(pid) started
    end
  end;
  if Api.read t.switch.(pid) = started then begin
    if Api.read t.pool_index.(pid) = Api.read t.confirm_pool_index.(pid) then
      Api.write t.pool_index.(pid) (1 - Api.read t.pool_index.(pid));
    Api.write t.switch.(pid) in_progress
  end;
  if Api.read t.switch.(pid) = in_progress then begin
    if Api.read t.pool_index.(pid) <> Api.read t.confirm_pool_index.(pid) then
      Api.write t.confirm_pool_index.(pid) (Api.read t.pool_index.(pid));
    Api.write t.mode.(pid) scan;
    Api.write t.switch.(pid) completed
  end

let new_node t ~pid reg =
  ensure_pools t reg;
  if Api.read t.incoming.(pid) = Api.read t.outgoing.(pid) then begin
    epoch t ~pid;
    Api.write t.incoming.(pid) (Api.read t.incoming.(pid) + 1)
  end;
  let idx = Api.read t.outgoing.(pid) mod (2 * t.n) in
  t.pools.(pid).(Api.read t.pool_index.(pid)).(idx)

let retire t ~pid =
  if Api.read t.incoming.(pid) <> Api.read t.outgoing.(pid) then begin
    let out = Api.read t.outgoing.(pid) + 1 in
    Api.write t.outgoing.(pid) out;
    match t.notify with
    | None -> ()
    | Some nt ->
        (* Ring the doorbells of waiters whose target my counter passed.
           The dirty flag is monotone (never cleared): a clear-then-scan
           protocol would have a crash window between the clear and the
           rings that loses a wake-up forever, whereas a sticky flag only
           costs an O(n) doorbell scan on the retires of processes somebody
           once waited on. *)
        if Api.read nt.dirty.(pid) = 1 then
          for i = 0 to t.n - 1 do
            let target = Api.read nt.slot.(pid).(i) in
            if target <> 0 && out >= target then Api.write nt.ding.(i) 1
          done
  end

let alloc = new_node

let pool_nodes t = Array.fold_left (fun acc p -> acc + (2 * Array.length p.(0))) 0 t.pools

let in_use t ~pid = Memory.peek t.mem t.incoming.(pid) <> Memory.peek t.mem t.outgoing.(pid)
