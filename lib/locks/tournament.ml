open Rme_sim

let levels_for n =
  let rec loop size l = if size >= n then l else loop (2 * size) (l + 1) in
  loop 1 0

let make_named ~name ctx =
  let n = Engine.Ctx.n ctx in
  let id = Engine.Ctx.register_lock ctx name in
  let levels = levels_for n in
  (* One doorbell per process, shared by every node: a process competes at
     one node at a time (see Arbitrator.make_spin_pool). *)
  let spin_pool = Arbitrator.make_spin_pool ~name ctx in
  (* nodes.(l).(i): the i-th arbitrator at height l (leaves at l = 0). *)
  let nodes =
    Array.init levels (fun l ->
        let count = (n + (1 lsl (l + 1)) - 1) / (1 lsl (l + 1)) in
        Array.init count (fun i ->
            Arbitrator.create ~name:(Printf.sprintf "%s.l%d.a%d" name l i) ~spin_pool ctx))
  in
  let node_of pid l = nodes.(l).(pid lsr (l + 1)) in
  let side_of pid l = if (pid lsr l) land 1 = 0 then Lock.Left else Lock.Right in
  let acquire ~pid =
    for l = 0 to levels - 1 do
      Arbitrator.acquire (node_of pid l) (side_of pid l) ~pid
    done
  in
  let release ~pid =
    for l = levels - 1 downto 0 do
      Arbitrator.release (node_of pid l) (side_of pid l) ~pid
    done
  in
  Lock.instrument ~id ~name ~acquire ~release ()

let make ctx = make_named ~name:"tournament" ctx
