(** Memory reclamation for queue nodes (§7.2, Algorithm 4).

    A failure can leave an MCS node referenced by other processes long after
    its owner finished with it, so nodes cannot be freed eagerly.  Each
    process owns two pools (active and reserve) of 2n nodes; [new_node]
    serves nodes round-robin from the active pool, and an incremental epoch
    runs one step per allocation: scan every process's [in] counter, wait
    for the matching [out] counters to catch up (all requests that might
    hold references have been satisfied), then swap pools.  After 4n
    requests a node is old enough that no process references it, bounding
    the lock's space at O(n²) nodes per lock — O(n²·T(n)) for the full
    recursive BA-Lock stack, as §7.2 states.

    All reclamation state lives in shared cells and every step is
    idempotent, so the algorithm is itself crash-recoverable; in particular
    repeated [new_node] calls return the same node until {!retire} is
    called, which covers a crash between allocating a node and persisting
    the reference to it.

    Plug into the filter lock with
    [Wr_lock.create ~alloc:(Reclaim.alloc r) ~retire:(Reclaim.retire r)]. *)

type t

val create : ?name:string -> ?notify:bool -> Rme_sim.Engine.Ctx.t -> t
(** [notify] selects the DSM-friendly notification-based wait (§7.2's last
    paragraph): epoch waiters sleep on a local doorbell cell instead of
    spinning on the scanned process's remote [out] counter, and retiring
    processes ring the registered doorbells.  Retire stays O(1) until the
    first waiter ever registers at that process (a sticky dirty flag gates
    the O(n) doorbell scan; sticky because clearing it would open a
    crash window that loses wake-ups). *)

val new_node : t -> pid:int -> Nodes.registry -> Nodes.node
(** Allocate (or re-return) the current node for [pid]'s active request.
    The pools are drawn from the given registry, fixed at first use. *)

val retire : t -> pid:int -> unit
(** Mark [pid]'s current node as done; the next [new_node] advances. *)

val alloc : t -> pid:int -> Nodes.registry -> Nodes.node
(** Alias of {!new_node}, matching {!Wr_lock.create}'s [alloc] signature. *)

(** {1 Diagnostics} *)

val pool_nodes : t -> int
(** Total nodes backing the pools (0 before first use; 4n² afterwards). *)

val in_use : t -> pid:int -> bool
(** Whether [pid] currently holds an unretired node. *)
