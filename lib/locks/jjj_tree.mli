(** The JJJ-shape base lock: a k-ary arbitration tree of {!Kport} locks,
    giving worst-case O(log n / log log n) RMR per passage (Table 1, row
    "Jayanti, Jayanti and Joshi").

    With branching factor k = ⌈log n / log log n⌉ the tree depth is
    O(log n / log k) = O(log n / log log n); each node costs O(1) RMR
    failure-free (see {!Kport}), so the whole lock is a bounded
    non-adaptive strongly recoverable lock with sub-logarithmic RMR — the
    base-lock role the paper's recursive framework instantiates. *)

val branching_for : int -> int
(** [branching_for n] = max 2 ⌈log₂ n / log₂ log₂ n⌉. *)

val depth_for : int -> int
(** Tree depth for [n] processes with the default branching factor. *)

val make : Lock.maker

val make_named : ?k:int -> name:string -> Lock.maker
(** Override the branching factor (ablation benches). *)
