open Rme_sim

let make_named ~name ctx =
  let mem = Engine.Ctx.memory ctx in
  let id = Engine.Ctx.register_lock ctx name in
  let owner = Memory.alloc mem ~name:(name ^ ".owner") 0 in
  let acquire ~pid =
    (* Owner check doubles as BCSR recovery. *)
    while Api.read owner <> pid + 1 do
      if not (Api.cas owner ~expect:0 ~value:(pid + 1)) then Api.spin_until owner (Api.Eq 0)
    done
  in
  let release ~pid =
    let (_ : bool) = Api.cas owner ~expect:(pid + 1) ~value:0 in
    ()
  in
  Lock.instrument ~id ~name ~acquire ~release ()

let make ctx = make_named ~name:"tas" ctx
