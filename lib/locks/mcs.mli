(** The original MCS queue lock (Mellor-Crummey & Scott 1991).

    Non-recoverable baseline: FCFS, O(1) RMR per passage under both CC and
    DSM, but a crash inside a passage can deadlock the queue — the tests
    demonstrate this, motivating the recoverable variants. *)

val make : Lock.maker
