(** The arbitrator: a dual-port strongly recoverable 2-sided lock (§5.1.1).

    At most one process competes on each side ([Left]/[Right]) at any time,
    but any two of the n processes can be the competitors.  Following
    Golab–Ramaraju's recoverable transformation of a 2-process lock, this is
    a Peterson-style tie-breaker protocol made recoverable and local-spin:

    - each side persists a tiny state machine ([Free]/[Trying]/[InCS]/
      [Leaving]) plus the occupant's identity, so crashed competitors
      re-enter idempotently (BCSR) and interrupted exits complete first;
    - waiting spins on a per-process cell (home = that process under DSM);
      whoever changes [want]/[turn] wakes the opposite side's registered
      occupant, with an arm / re-check / sleep sequence that tolerates lost
      wake-ups and crash-restart re-arming.

    O(1) RMR per passage in every failure scenario, under CC and DSM. *)

type t

val make_spin_pool : ?name:string -> Rme_sim.Engine.Ctx.t -> Rme_sim.Cell.t array
(** One doorbell cell per process (home = that process).  A process waits
    at one arbitrator at a time, so a single pool can be shared by every
    node of a tournament tree; a stale ring from a node a process already
    left is absorbed by the arm / re-check / sleep loop as a spurious
    wake-up. *)

val create : ?name:string -> ?spin_pool:Rme_sim.Cell.t array -> Rme_sim.Engine.Ctx.t -> t
(** [spin_pool] shares doorbells across instances (defaults to a private
    pool). *)

val lock_id : t -> int

val acquire : t -> Lock.side -> pid:int -> unit
(** Recover + Enter from the given side. *)

val release : t -> Lock.side -> pid:int -> unit

val dual : t -> Lock.dual

val as_two_process_lock : t -> n:int -> Lock.t
(** View the arbitrator as an ordinary lock for exactly two fixed processes
    (pid 0 → [Left], pid 1 → [Right]) — used by unit tests and by the
    tournament tree. *)
