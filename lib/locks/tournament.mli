(** N-process strongly recoverable tournament lock — O(log n) RMR.

    A complete binary tree of {!Arbitrator} locks: process [p] climbs from
    its leaf to the root, competing at each internal node on the side given
    by the subtree it arrives from (at most one process per side, by
    induction).  Exit releases the nodes in reverse (root first).

    Every node is strongly recoverable with BCSR, so a crashed process
    re-enters still-held nodes in O(1) steps each and re-competes for the
    rest; the whole lock is strongly recoverable with worst-case
    O(log n) RMR per passage in every failure scenario — the shape of
    Golab–Ramaraju's bounded transformation and of Jayanti–Joshi's
    O(log n) algorithm (Table 1). *)

val make : Lock.maker

val make_named : name:string -> Lock.maker

val levels_for : int -> int
(** Tree height used for [n] processes: ⌈log₂ n⌉. *)
