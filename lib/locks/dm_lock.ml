open Rme_sim

type t = { id : int; name : string; tk : Tickets.t; base : Lock.t }

let create ?(name = "dm") ~base ctx =
  let id = Engine.Ctx.register_lock ctx name in
  { id; name; tk = Tickets.create ~name:(name ^ ".door") ctx; base = base ctx }

let lock_id t = t.id

(* Doorway first, base second, released in reverse: the doorway admits one
   process at a time in ticket order, so the base lock is acquired in FCFS
   order and never sees live contention on the failure-free path.  A crash
   between the base release and the doorway hand-off restarts the passage
   with the doorway still ours (slot = ticket = grant): recovery resumes
   doorway ownership and re-acquires the idle base — bounded CS reentry,
   never a lost hand-off. *)
let lock t =
  Lock.instrument ~id:t.id ~name:t.name
    ~acquire:(fun ~pid ->
      Tickets.enter t.tk ~pid;
      t.base.Lock.acquire ~pid)
    ~release:(fun ~pid ->
      t.base.Lock.release ~pid;
      Tickets.exit t.tk ~pid)
    ()

let make_over ~name ~base ctx = lock (create ~name ~base ctx)
