open Rme_sim

(* [owner] holds pid + 1 (0 = free): pids are 0-based here, unlike the
   paper's 1-based processes. *)
type t = { owner : Cell.t; mem : Memory.t }

let create ?(name = "splitter") ctx =
  let mem = Engine.Ctx.memory ctx in
  { owner = Memory.alloc mem ~name:(name ^ ".owner") 0; mem }

let try_fast t ~pid =
  let (_ : bool) = Api.cas t.owner ~expect:0 ~value:(pid + 1) in
  Api.read t.owner = pid + 1

let release t ~pid:_ = Api.write t.owner 0

let occupant t =
  match Memory.peek t.mem t.owner with 0 -> None | v -> Some (v - 1)
