(** A k-port strongly recoverable queue lock (substitution S1 in DESIGN.md).

    Stands in for the k-port MCS lock of Jayanti–Jayanti–Joshi (2019), whose
    published protocol closes the MCS sensitive window by an intricate
    helping scheme.  We obtain the same interface and cost profile with the
    simulator-atomic {!Rme_sim.Api.fas_persist} instruction (FAS whose
    result is persisted atomically — the "special RMW instruction" of
    Ramaraju 2015 that the paper's related work discusses): with the append
    atomic, every instruction is non-sensitive, so the lock is strongly
    recoverable with O(1) RMR per passage and bounded recovery.

    Each of the [k] ports carries its own persisted state machine; at most
    one process may use a port at a time (the arbitration-tree structure of
    {!Jjj_tree} guarantees this).  Port 0..k-1; the pid only matters for
    node placement (DSM-local spinning). *)

type t

val create : ?name:string -> k:int -> Rme_sim.Engine.Ctx.t -> t

val lock_id : t -> int

val acquire : t -> port:int -> pid:int -> unit

val release : t -> port:int -> pid:int -> unit

val as_lock : t -> Lock.t
(** View as an n-process lock where each pid uses port [pid] directly —
    requires [k >= n].  This is the Ramaraju-style O(1) RME lock built from
    the non-standard instruction, benchmarked as its own Table-1 row. *)
