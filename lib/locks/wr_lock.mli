(** WR-Lock: the weakly recoverable MCS lock of the paper (§4, Algorithm 2).

    The MCS queue with wait-free exit, made weakly recoverable:

    - a per-process state machine ([Free] → [Initializing] → [Trying] →
      [InCS] → [Leaving] → [Free]) persisted in shared memory drives
      Recover/Enter/Exit, so every if-block is idempotent and may be
      re-executed after a crash;
    - the {e single sensitive instruction} is the FAS appending the node to
      the queue: a crash between the FAS and persisting its result into
      [pred\[i\]] orphans the node, splitting the queue into sub-queues
      (Figure 1) — the only way mutual exclusion can be violated, and only
      inside the consequence interval of such an {e unsafe} failure
      (Theorem 4.2);
    - recovery detects the gap ([pred\[i\] = mine\[i\]] while [Trying]),
      relinquishes the node through the wait-free exit and retries with a
      fresh node — all in a bounded number of steps (BR), and Exit is
      bounded too (BE).

    RMR complexity: O(1) per passage in every failure scenario, under both
    CC and DSM. *)

type t

val create :
  ?name:string ->
  ?alloc:(pid:int -> Nodes.registry -> Nodes.node) ->
  ?retire:(pid:int -> unit) ->
  Rme_sim.Engine.Ctx.t ->
  t
(** [alloc] overrides node allocation and [retire] is invoked at the end of
    every Exit (normal or relinquishing) — together they plug in the §7.2
    memory-reclamation pool ({!Reclaim}).  [alloc] defaults to a fresh node
    per call and [retire] to a no-op. *)

val lock : t -> Lock.t

val lock_abortable : t -> Lock.t
(** Like {!lock}, but the waiting spin is abortable and the lock carries an
    abort port.  The queue has no mid-queue unlink, so a withdrawal waits
    for the incoming hand-off and relays it to the successor through the
    wait-free exit; a grant that already landed means the abort lost the
    race ([Acquired_instead]). *)

val lock_id : t -> int

val make : Lock.maker
(** [make ctx = lock (create ctx)]. *)

val make_abort : Lock.maker
(** [make_abort ctx = lock_abortable (create ~name:"wr-abort" ctx)]. *)

val registry : t -> Nodes.registry

(** {1 Diagnostics (unaccounted; checkers and demos only)} *)

val subqueues : t -> int list list
(** Reconstructs the implicit sub-queues from shared memory (as
    Proposition 4.1 describes): each element is a chain of node ids in
    queue order.  Nodes whose owner crashed in the FAS gap head their own
    sub-queue. *)

val owner_of_node : t -> int -> int
(** The process that allocated a node. *)

val state_name : int -> string

val peek_state : t -> pid:int -> string
