(** A recoverable FCFS ticket doorway robust under {e system-wide} crashes.

    The queue lives entirely in NVRAM: a ticket dispenser ([seq]), the
    ticket currently served ([grant]), and one announce slot per process.
    A process announces it is mid-doorway, takes a ticket with one FAA,
    publishes it in its slot, and local-spins until [grant] reaches it;
    the hand-off is a single FAA on [grant].  Because every decision a
    restarted process needs — did I hold a ticket? was it served? — is
    answerable from its own slot and [grant], the doorway recovers from
    any combination of per-process and whole-system crashes:

    - slot = its ticket = [grant]: the process was being served (possibly
      inside the CS) — it resumes ownership (bounded CS reentry);
    - slot = ticket > [grant]: still queued — it rejoins the wait;
    - slot = ticket < [grant]: its hand-off already completed — start a
      fresh passage;
    - slot = mid-doorway marker: the ticket (if the FAA happened) is lost;
      recovery flags a {e repair} and the dead ticket is skipped — with a
      liveness scan guarding the skip — when it becomes current.

    The repair scan is O(n) but runs only while flagged failures are
    outstanding; the failure-free path is a constant number of
    instructions and, under the simulator's local-spin accounting (one
    refetch per wake), O(1) RMRs per passage in both CC and DSM — the
    in-model stand-in for the constant-RMR hand-off structure of
    Jayanti–Jayanti–Joshi (arXiv 2302.00748). *)

open Rme_sim

type t

val create : ?name:string -> Engine.Ctx.t -> t
(** Allocates the dispenser, grant and per-process announce slots.  Does
    {e not} register a lock id: callers embed the doorway and instrument
    themselves. *)

val enter : t -> pid:int -> unit
(** Recovery classification, doorway, and wait; returns with [pid] served
    (holding the doorway's critical section). *)

val exit : t -> pid:int -> unit
(** Hand off to the next ticket and retire this passage's slot. *)
