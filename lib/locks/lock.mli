(** Common lock plumbing.

    A lock presented to the harness is a {!Rme_sim.Harness.lock} — a record
    of closures — so composite locks compose at the value level.  This
    module provides the instrumentation wrapper emitting the per-lock
    history milestones the property checkers rely on, the dual-port
    interface of the arbitrator lock, and the [maker] type used by the
    registry. *)

open Rme_sim

type t = Harness.lock = { name : string; acquire : pid:int -> unit; release : pid:int -> unit }

type maker = Engine.Ctx.t -> t
(** Lock constructor: allocates shared cells and registers the lock. *)

val instrument : id:int -> name:string -> acquire:(pid:int -> unit) -> release:(pid:int -> unit) -> t
(** Wrap segment implementations with {!Rme_sim.Event.note} milestones:
    [Lock_enter id] / [Lock_acquired id] around [acquire] and
    [Lock_release id] / [Lock_released id] around [release]. *)

(** Side of a dual-port lock (the arbitrator's two ports, §5.1.1). *)
type side = Left | Right

val side_index : side -> int

val pp_side : side Fmt.t

(** A dual-port lock: at most one process may compete on each side at any
    time, but any pair of the n processes may be the two competitors. *)
type dual = {
  dual_name : string;
  dual_acquire : side -> pid:int -> unit;
  dual_release : side -> pid:int -> unit;
}
