(** Common lock plumbing.

    A lock presented to the harness is a {!Rme_sim.Harness.lock} — a record
    of closures — so composite locks compose at the value level.  This
    module provides the instrumentation wrapper emitting the per-lock
    history milestones the property checkers rely on, the dual-port
    interface of the arbitrator lock, and the [maker] type used by the
    registry. *)

open Rme_sim

type t = Harness.lock = {
  name : string;
  acquire : pid:int -> unit;
  release : pid:int -> unit;
  try_abort : (pid:int -> Harness.abort_outcome) option;
}

type maker = Engine.Ctx.t -> t
(** Lock constructor: allocates shared cells and registers the lock. *)

val instrument :
  id:int ->
  name:string ->
  ?try_abort:(pid:int -> Harness.abort_outcome) ->
  acquire:(pid:int -> unit) ->
  release:(pid:int -> unit) ->
  unit ->
  t
(** Wrap segment implementations with {!Rme_sim.Event.note} milestones:
    [Lock_enter id] / [Lock_acquired id] around [acquire] and
    [Lock_release id] / [Lock_released id] around [release].  When
    [try_abort] is given it is wrapped too: [Abort_request id] before the
    protocol, then [Abort_done id] on [Aborted] or [Abort_lost_race id] on
    [Acquired_instead] ([Not_supported] emits no completion milestone —
    the signal resolves at the eventual [Lock_acquired]). *)

val abortable : t -> t
(** Adapter for the conformance matrix: a lock without an abort port gets
    [try_abort = Some (fun ~pid:_ -> Not_supported)], so probing any
    registry lock is well-defined.  Locks that already carry a port are
    returned unchanged. *)

(** Side of a dual-port lock (the arbitrator's two ports, §5.1.1). *)
type side = Left | Right

val side_index : side -> int

val pp_side : side Fmt.t

(** A dual-port lock: at most one process may compete on each side at any
    time, but any pair of the n processes may be the two competitors. *)
type dual = {
  dual_name : string;
  dual_acquire : side -> pid:int -> unit;
  dual_release : side -> pid:int -> unit;
}
