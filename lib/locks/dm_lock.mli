(** The Dhoked–Mittal adaptive-and-fair transformation (arXiv 2110.08308),
    as a wrapper over any base lock from the registry.

    The transformation composes a recoverable FCFS doorway ({!Tickets} —
    robust under both per-process and system-wide crashes) in front of a
    base RME lock: the doorway serializes admission in ticket order, so
    the composite is FCFS whatever the base's own fairness, and on the
    failure-free path the base is acquired uncontended — the composite's
    failure-free RMR cost is O(1) doorway work plus the base's uncontended
    cost, while failures degrade gracefully to the base's contended
    profile plus the doorway's O(n) repair scans. *)

open Rme_sim

type t

val create : ?name:string -> base:Lock.maker -> Engine.Ctx.t -> t

val lock_id : t -> int

val lock : t -> Lock.t

val make_over : name:string -> base:Lock.maker -> Lock.maker
(** [make_over ~name ~base] is the registry-facing constructor: the
    transformation applied to [base]. *)
