open Rme_sim

let fast = 0

let slow = 1

type t = {
  id : int;
  name : string;
  level : int option;
  filter : Wr_lock.t;
  flock : Lock.t;  (* instrumented view of [filter], built once *)
  owner : Cell.t;  (* the splitter: pid + 1 of the fast-path occupant, 0 = free *)
  typ : Cell.t array;  (* per process path type; home = that process *)
  core : Lock.t option;
  arb : Arbitrator.t;
}

let create ?(name = "sa") ?level ?core ctx =
  let mem = Engine.Ctx.memory ctx in
  let n = Engine.Ctx.n ctx in
  let id = Engine.Ctx.register_lock ctx name in
  let filter = Wr_lock.create ~name:(name ^ ".filter") ctx in
  {
    id;
    name;
    level;
    filter;
    flock = Wr_lock.lock filter;
    owner = Memory.alloc mem ~name:(name ^ ".owner") 0;
    typ =
      Array.init n (fun i -> Memory.alloc mem ~home:i ~name:(Printf.sprintf "%s.type[%d]" name i) fast);
    core;
    arb = Arbitrator.create ~name:(name ^ ".arb") ctx;
  }

let lock_id t = t.id

let filter t = t.filter

let side_of_type typ = if typ = slow then Lock.Right else Lock.Left

let enter_front t ~pid =
  (match t.level with Some l -> Api.note (Event.Level l) | None -> ());
  t.flock.Lock.acquire ~pid;
  if Api.read t.typ.(pid) <> slow then begin
    let (_ : bool) = Api.cas t.owner ~expect:0 ~value:(pid + 1) in
    ()
  end;
  if Api.read t.owner <> pid + 1 then begin
    Api.write t.typ.(pid) slow;
    Api.note (Event.Path ((match t.level with Some l -> l | None -> 1), false));
    `Slow
  end
  else begin
    Api.note (Event.Path ((match t.level with Some l -> l | None -> 1), true));
    `Fast
  end

let enter_back t ~pid =
  let side = side_of_type (Api.read t.typ.(pid)) in
  Arbitrator.acquire t.arb side ~pid

let release_with t ~pid ~core_release =
  let typ = Api.read t.typ.(pid) in
  Arbitrator.release t.arb (side_of_type typ) ~pid;
  if typ = slow then core_release () else Api.write t.owner 0;
  Api.write t.typ.(pid) fast;
  t.flock.Lock.release ~pid

let core_exn t =
  match t.core with
  | Some core -> core
  | None -> invalid_arg (t.name ^ ": no core lock (phase interface only)")

let lock t =
  let core = core_exn t in
  let acquire ~pid =
    (match enter_front t ~pid with `Fast -> () | `Slow -> core.Lock.acquire ~pid);
    enter_back t ~pid
  in
  let release ~pid = release_with t ~pid ~core_release:(fun () -> core.Lock.release ~pid) in
  Lock.instrument ~id:t.id ~name:t.name ~acquire ~release ()
