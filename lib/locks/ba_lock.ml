open Rme_sim

type t = {
  id : int;
  name : string;
  m : int;
  sa : Sa_lock.t array;  (* sa.(l) is level l+1 in the paper's numbering *)
  base : Lock.t;
  track : bool;
  hint : Cell.t array;  (* per process: 1-based deepest level (§7.3); 1 = start *)
}

let create ?(name = "ba") ?levels ?(track_level = false) ~base ctx =
  let mem = Engine.Ctx.memory ctx in
  let n = Engine.Ctx.n ctx in
  let id = Engine.Ctx.register_lock ctx name in
  let m = match levels with Some m -> max 0 m | None -> Tournament.levels_for n in
  let sa =
    Array.init m (fun l ->
        Sa_lock.create ~name:(Printf.sprintf "%s.l%d" name (l + 1)) ~level:(l + 1) ctx)
  in
  let base = base ctx in
  let hint =
    Array.init n (fun i -> Memory.alloc mem ~home:i ~name:(Printf.sprintf "%s.hint[%d]" name i) 1)
  in
  { id; name; m; sa; base; track = track_level; hint }

let lock_id t = t.id

let levels t = t.m

let filter_ids t =
  Array.to_list (Array.map (fun sa -> Wr_lock.lock_id (Sa_lock.filter sa)) t.sa)

(* Acquire levels l, l+1, ... (0-based), recursing into the next level when
   diverted to the slow path, then acquire the level's arbitrator on the way
   back up — the execution flow of Figure 3. *)
let rec acquire_from t l ~pid =
  if l >= t.m then t.base.Lock.acquire ~pid
  else begin
    (match Sa_lock.enter_front t.sa.(l) ~pid with
    | `Fast -> ()
    | `Slow ->
        (* Persist the deepest level before descending so a restart can skip
           straight back down (§7.3). *)
        if t.track then Api.write t.hint.(pid) (l + 2);
        acquire_from t (l + 1) ~pid);
    Sa_lock.enter_back t.sa.(l) ~pid
  end

let rec release_from t l ~pid =
  if l >= t.m then t.base.Lock.release ~pid
  else
    Sa_lock.release_with t.sa.(l) ~pid ~core_release:(fun () -> release_from t (l + 1) ~pid)

let acquire t ~pid =
  let start = if t.track then min (t.m + 1) (max 1 (Api.read t.hint.(pid))) else 1 in
  acquire_from t (start - 1) ~pid;
  (* Arbitrators of the levels whose fronts were skipped. *)
  for l = start - 2 downto 0 do
    Sa_lock.enter_back t.sa.(l) ~pid
  done

let release t ~pid =
  (* Reset the hint before any lock is released: a crash mid-exit must
     restart with the full chain still held (BCSR), not with a stale deep
     hint over released levels. *)
  if t.track then Api.write t.hint.(pid) 1;
  release_from t 0 ~pid

let lock t =
  Lock.instrument ~id:t.id ~name:t.name ~acquire:(acquire t) ~release:(release t) ()

let make ~base ctx = lock (create ~base ctx)

let default ctx = lock (create ~name:"ba" ~base:Jjj_tree.make ctx)
