open Rme_sim

let idle = 0

let chosen = 2

let in_cs = 3

(* state 1 (doorway) is never persisted: a crash inside the doorway replays
   it from scratch, which is safe because [number] is written exactly once
   at the end. *)

let make_named ?(abortable = false) ~name ctx =
  let mem = Engine.Ctx.memory ctx in
  let n = Engine.Ctx.n ctx in
  let id = Engine.Ctx.register_lock ctx name in
  let arr field init =
    Array.init n (fun i ->
        Memory.alloc mem ~home:i ~name:(Printf.sprintf "%s.%s[%d]" name field i) init)
  in
  let choosing = arr "choosing" 0 in
  let number = arr "number" 0 in
  let state = arr "state" idle in
  let acquire ~pid =
    let s = Api.read state.(pid) in
    (* BCSR: still numbered and marked InCS means the crash hit the CS —
       straight back in.  InCS with number 0 means the crash hit the middle
       of Exit (number already relinquished): finish the exit first, then
       compete afresh. *)
    if s = in_cs && Api.read number.(pid) <> 0 then ()
    else begin
      if s = in_cs then Api.write state.(pid) idle;
      let s = Api.read state.(pid) in
      if s = idle || Api.read number.(pid) = 0 then begin
        (* Doorway. *)
        Api.write choosing.(pid) 1;
        let maxn = ref 0 in
        for j = 0 to n - 1 do
          let nj = Api.read number.(j) in
          if nj > !maxn then maxn := nj
        done;
        Api.write number.(pid) (!maxn + 1);
        Api.write choosing.(pid) 0;
        Api.write state.(pid) chosen
      end
      else if s <> chosen then Api.write state.(pid) chosen;
      let wait cell cond =
        if abortable then begin
          Api.spin_abortable cell cond;
          if Api.poll_abort () then raise Api.Abort_signal
        end
        else Api.spin_until cell cond
      in
      let my = Api.read number.(pid) in
      for j = 0 to n - 1 do
        if j <> pid then begin
          wait choosing.(j) (Api.Eq 0);
          (* Wait while (number.(j), j) precedes (my, pid), lexicographically. *)
          let precedes nj = nj <> 0 && (nj < my || (nj = my && j < pid)) in
          wait number.(j) (Api.Pred (fun v -> not (precedes v)))
        end
      done;
      Api.write state.(pid) in_cs
    end
  in
  let release ~pid =
    (* Relinquish the number first: a crash in between leaves state = InCS
       with number 0, which acquire resolves as "finish the exit" rather
       than as a CS reentry (releasing the number has already admitted the
       next process — re-entering would break ME). *)
    Api.write number.(pid) 0;
    Api.write state.(pid) idle
  in
  (* Withdrawing from the bakery is release in miniature: relinquish the
     number (which unblocks every peer waiting on it) and fall back to
     Idle.  There is no hand-off to race — admission is by observation of
     the other tickets, not by a grant — so the abort always succeeds.
     Both writes are idempotent, matching the lock's recovery story. *)
  let try_abort ~pid =
    Api.write number.(pid) 0;
    Api.write state.(pid) idle;
    Harness.Aborted
  in
  if abortable then Lock.instrument ~id ~name ~try_abort ~acquire ~release ()
  else Lock.instrument ~id ~name ~acquire ~release ()

let make ctx = make_named ~name:"bakery" ctx

let make_abort ctx = make_named ~abortable:true ~name:"bakery-abort" ctx
