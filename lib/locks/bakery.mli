(** A strongly recoverable Bakery lock — reads and writes only, O(n) RMR.

    Lamport's bakery algorithm with all per-process variables persisted and
    a small state machine making every phase idempotent:

    - doorway: pick number = 1 + max over a scan (restart-safe: the number
      is written once, then the state advances);
    - scan: wait, for each j, until j is not choosing and j's (number, id)
      does not precede ours — each wait is a single-cell spin with a
      host-level predicate;
    - BCSR via a persisted [InCS] state.

    This is the classic read/write-only construction matching the
    Ω(log n) lower-bound regime discussed in the paper's related work; its
    O(n) passages make it a faithful stand-in for the O(n)-bounded core of
    Golab–Ramaraju's §4.2 transformation when plugged into {!Sa_lock}. *)

val make : Lock.maker

val make_named : ?abortable:bool -> name:string -> Lock.maker
(** With [~abortable:true] the peer-scan spins are abortable and the lock
    carries an abort port: withdrawing relinquishes the ticket
    ([number := 0], back to Idle) — admission is by observation, not by
    hand-off, so the abort never loses a race. *)

val make_abort : Lock.maker
(** [make_abort = make_named ~abortable:true ~name:"bakery-abort"]. *)
