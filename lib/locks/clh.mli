(** The CLH queue lock (Craig; Landin & Hagersten) — a second
    non-recoverable queue-lock baseline.

    Unlike MCS, the queue is implicit: each process spins on its
    {e predecessor's} node, obtained from the FAS on [tail], and reuses that
    node for its next request.  O(1) RMR under CC; under DSM the spin is on
    a remote node (CLH is the classic example of a CC-only local-spin lock,
    a useful contrast for the RMR accounting tests). *)

val make : Lock.maker
