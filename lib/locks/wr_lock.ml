open Rme_sim

(* Process states (persisted in [state.(i)]). *)
let free = 0

let initializing = 1

let trying = 2

let in_cs = 3

let leaving = 4

let state_name = function
  | 0 -> "Free"
  | 1 -> "Initializing"
  | 2 -> "Trying"
  | 3 -> "InCS"
  | 4 -> "Leaving"
  | s -> Printf.sprintf "?%d" s

type t = {
  id : int;
  name : string;
  mem : Memory.t;
  n : int;
  reg : Nodes.registry;
  tail : Cell.t;
  state : Cell.t array;
  mine : Cell.t array;
  pred : Cell.t array;
  alloc : pid:int -> Nodes.registry -> Nodes.node;
  retire : pid:int -> unit;
}

let default_alloc ~pid reg = Nodes.fresh reg ~owner:pid

let create ?(name = "wr") ?(alloc = default_alloc) ?(retire = fun ~pid:_ -> ()) ctx =
  let mem = Engine.Ctx.memory ctx in
  let n = Engine.Ctx.n ctx in
  let id = Engine.Ctx.register_lock ctx name in
  let cell_array field init =
    Array.init n (fun i ->
        Memory.alloc mem ~home:i ~name:(Printf.sprintf "%s.%s[%d]" name field i) init)
  in
  {
    id;
    name;
    mem;
    n;
    reg = Nodes.create_registry mem ~prefix:name;
    tail = Memory.alloc mem ~name:(name ^ ".tail") Nodes.null;
    state = cell_array "state" free;
    mine = cell_array "mine" Nodes.null;
    pred = cell_array "pred" Nodes.null;
    alloc;
    retire;
  }

let lock_id t = t.id

let registry t = t.reg

(* Exit segment (Algorithm 2).  Also used by Recover to relinquish a node
   after a detected FAS-gap failure and to finish an interrupted Exit; every
   step is idempotent. *)
let exit_segment t ~pid =
  Api.write t.state.(pid) leaving;
  let mine = Api.read t.mine.(pid) in
  (* [mine] cannot be null here: Leaving is only reachable with a node. *)
  let node = Nodes.get t.reg mine in
  (* Remove my node from the queue if it has no successor. *)
  let (_ : bool) = Api.cas t.tail ~expect:mine ~value:Nodes.null in
  (* May have a successor; make sure it cannot block: mark [next] with my own
     id if the link is not created yet. *)
  let (_ : bool) = Api.cas node.Nodes.next ~expect:Nodes.null ~value:mine in
  let next = Api.read node.Nodes.next in
  if next <> mine then Api.write (Nodes.get t.reg next).Nodes.locked 0;
  (* With pooled allocation (§7.2) the node is handed back here — both on a
     normal exit and when recovery relinquishes it.  Retiring strictly
     before the state returns to Free matters: a crash in between re-runs
     this exit and the retire guard (in ≠ out) absorbs the duplicate,
     whereas the reverse order could hand the same pool slot to the next
     request. *)
  t.retire ~pid;
  Api.write t.state.(pid) free

let recover_segment t ~pid =
  let s = Api.read t.state.(pid) in
  if s = trying then begin
    if Api.read t.pred.(pid) = Api.read t.mine.(pid) then
      (* May have crashed around the FAS: the result was never persisted, so
         the predecessor is unknown.  Relinquish the node and retry. *)
      exit_segment t ~pid
  end
  else if s = leaving then exit_segment t ~pid;
  if Api.read t.state.(pid) = free then begin
    Api.write t.mine.(pid) Nodes.null;
    Api.write t.state.(pid) initializing
  end

let enter_segment ?(abortable = false) t ~pid =
  if Api.read t.state.(pid) = initializing then begin
    if Api.read t.mine.(pid) = Nodes.null then begin
      let node = t.alloc ~pid t.reg in
      Api.write t.mine.(pid) node.Nodes.id
    end;
    let mine = Api.read t.mine.(pid) in
    let node = Nodes.get t.reg mine in
    Api.write node.Nodes.next Nodes.null;
    Api.write node.Nodes.locked 1;
    (* Setting pred = mine marks "FAS not performed yet". *)
    Api.write t.pred.(pid) mine;
    Api.write t.state.(pid) trying
  end;
  if Api.read t.state.(pid) = trying then begin
    let mine = Api.read t.mine.(pid) in
    let node = Nodes.get t.reg mine in
    if Api.read t.pred.(pid) = mine then begin
      (* Append my node to the queue; the window between the FAS and the
         persisting write is the lock's only sensitive region. *)
      let temp = Api.fas_open_unsafe ~lock:t.id t.tail mine in
      Api.write_close_unsafe ~lock:t.id t.pred.(pid) temp
    end;
    let pred = Api.read t.pred.(pid) in
    if pred <> Nodes.null then begin
      let pnode = Nodes.get t.reg pred in
      let (_ : bool) = Api.cas pnode.Nodes.next ~expect:Nodes.null ~value:mine in
      (* Use the field contents, not the CAS outcome (idempotence). *)
      if Api.read pnode.Nodes.next = mine then
        if abortable then begin
          Api.spin_abortable node.Nodes.locked (Api.Eq 0);
          if Api.poll_abort () then raise Api.Abort_signal
        end
        else Api.spin_until node.Nodes.locked (Api.Eq 0)
    end;
    Api.write t.state.(pid) in_cs
  end

(* Abort protocol.  The MCS queue has no mid-queue unlink: once the node
   is appended, the predecessor will eventually hand this process the lock
   by clearing [locked].  A withdrawal therefore waits for that incoming
   hand-off and relays it straight to the successor through the wait-free
   exit — never entering the CS — so the chain stays intact.  If the grant
   already landed when the protocol starts, the abort lost the race and
   the process keeps the lock. *)
let try_abort t ~pid =
  (* Reachable only from the waiting spin: state = Trying, node enqueued,
     predecessor known. *)
  let mine = Api.read t.mine.(pid) in
  let node = Nodes.get t.reg mine in
  if Api.read node.Nodes.locked = 0 then begin
    Api.write t.state.(pid) in_cs;
    Harness.Acquired_instead
  end
  else begin
    Api.spin_until node.Nodes.locked (Api.Eq 0);
    exit_segment t ~pid;
    Harness.Aborted
  end

let lock t =
  Lock.instrument ~id:t.id ~name:t.name
    ~acquire:(fun ~pid ->
      recover_segment t ~pid;
      enter_segment t ~pid)
    ~release:(fun ~pid -> exit_segment t ~pid)
    ()

let lock_abortable t =
  Lock.instrument ~id:t.id ~name:t.name
    ~try_abort:(fun ~pid -> try_abort t ~pid)
    ~acquire:(fun ~pid ->
      recover_segment t ~pid;
      enter_segment ~abortable:true t ~pid)
    ~release:(fun ~pid -> exit_segment t ~pid)
    ()

let make ctx = lock (create ctx)

let make_abort ctx = lock_abortable (create ~name:"wr-abort" ctx)

let owner_of_node t id = (Nodes.get t.reg id).Nodes.owner

let peek_state t ~pid = state_name (Memory.peek t.mem t.state.(pid))

(* Reconstruct the implicit sub-queues from shared memory, in the spirit of
   Proposition 4.1: a live process's node, together with the predecessor
   recorded in pred[i], defines a chain edge pred -> mine; nodes whose
   predecessor is unknown (crash in the FAS gap) or null head a chain, as do
   orphaned predecessor nodes owned by no live process. *)
let subqueues t =
  let live = ref [] in
  for i = 0 to t.n - 1 do
    let s = Memory.peek t.mem t.state.(i) in
    if s = trying || s = in_cs || s = leaving then begin
      let mine = Memory.peek t.mem t.mine.(i) in
      if mine <> Nodes.null then begin
        let pred = Memory.peek t.mem t.pred.(i) in
        let pred = if pred = mine then None else Some pred in
        live := (mine, pred) :: !live
      end
    end
  done;
  let live = !live in
  let nodes = Hashtbl.create 16 in
  List.iter
    (fun (m, p) ->
      Hashtbl.replace nodes m ();
      match p with Some p when p <> Nodes.null -> Hashtbl.replace nodes p () | _ -> ())
    live;
  let succ = Hashtbl.create 16 in
  let has_pred = Hashtbl.create 16 in
  List.iter
    (fun (m, p) ->
      match p with
      | Some p when p <> Nodes.null ->
          Hashtbl.replace succ p m;
          Hashtbl.replace has_pred m ()
      | _ -> ())
    live;
  let heads =
    Hashtbl.fold (fun n () acc -> if Hashtbl.mem has_pred n then acc else n :: acc) nodes []
    |> List.sort compare
  in
  let chain head =
    let rec follow n acc =
      match Hashtbl.find_opt succ n with Some m -> follow m (m :: acc) | None -> List.rev acc
    in
    follow head [ head ]
  in
  List.map chain heads
