(** MCS with wait-free (bounded) exit, after Dvir & Taubenfeld (§4.2 of the
    paper).

    The leaving process never waits for its successor's link: both the link
    creation and the exit signal go through a CAS on the [next] field, which
    can only be written once.  If the exit CAS loses, the link exists and the
    successor is signalled; if the link CAS loses, the lock is free and the
    enterer proceeds.  A node can no longer be reused across requests, so
    each request takes a fresh node. *)

val make : Lock.maker
