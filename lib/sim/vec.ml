type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let push t x =
  if t.len = Array.length t.data then begin
    let cap = max 8 (2 * Array.length t.data) in
    (* [x] is used as the filler for the fresh slots; slots beyond [len] are
       never observed. *)
    let data = Array.make cap x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let check t i name =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds [0, %d)" name i t.len)

let get t i =
  check t i "get";
  t.data.(i)

let unsafe_get t i = Array.unsafe_get t.data i

let set t i x =
  check t i "set";
  t.data.(i) <- x

let last t =
  if t.len = 0 then invalid_arg "Vec.last: empty";
  t.data.(t.len - 1)

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.len - 1) []

let to_array t = Array.sub t.data 0 t.len

let blit_prefix src len dst =
  if len < 0 || len > src.len then
    invalid_arg (Printf.sprintf "Vec.blit_prefix: length %d out of bounds [0, %d]" len src.len);
  if len > 0 then begin
    let need = dst.len + len in
    if need > Array.length dst.data then begin
      let cap = ref (max 8 (2 * Array.length dst.data)) in
      while !cap < need do
        cap := 2 * !cap
      done;
      let data = Array.make !cap src.data.(0) in
      Array.blit dst.data 0 data 0 dst.len;
      dst.data <- data
    end;
    Array.blit src.data 0 dst.data dst.len len;
    dst.len <- need
  end

let prefix_array src len =
  if len < 0 || len > src.len then
    invalid_arg (Printf.sprintf "Vec.prefix_array: length %d out of bounds [0, %d]" len src.len);
  Array.sub src.data 0 len

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t
