(** The simulation engine.

    Runs [n] simulated processes over a shared {!Memory.t}.  Each process is
    an OCaml computation performing the effects of {!Api}; the engine
    suspends it at every shared-memory instruction, lets the configured
    {!Sched.t} pick who steps next, applies the instruction, charges RMRs,
    and consults the {!Crash.t} plan to inject failures immediately before
    or after the instruction.  A crash discards the process's continuation
    (private state, program counter — §2.2 of the paper) and restarts its
    body from scratch; shared memory persists.

    Local-spin waits ({!Api.spin_until}) park the process; a write to the
    awaited cell wakes it, charging one re-fetch, so busy-waiting costs O(1)
    RMRs per handoff as in the paper's model. *)

(** Registration context handed to [setup]. *)
module Ctx : sig
  type t

  val memory : t -> Memory.t

  val n : t -> int

  val register_lock : t -> string -> int
  (** Registers a lock instance and returns its id, used in {!Event.note}
      milestones and per-lock statistics.  Call during [setup] only. *)
end

type passage = { super : int; rmr : int; completed : bool; latency : int }
(** One passage: [super] identifies the super-passage it belongs to (the
    index of the request being worked on), [rmr] the remote references it
    incurred, [completed] whether it ended with a satisfied request rather
    than a crash, [latency] its span in global engine steps (a fairness /
    waiting-time measure under contention). *)

type proc_stats = {
  passages : passage list;  (** in execution order *)
  crashes : int;
  completed : int;  (** satisfied requests *)
  max_level : int;  (** highest BA-Lock level reported via [Level] notes *)
}

type lock_stats = {
  lock_name : string;
  max_occupancy : int;  (** max simultaneous holders observed *)
  unsafe_crashes : int;  (** crashes inside this lock's sensitive window *)
}

(** How one delivered abort signal resolved. *)
type abort_result =
  | Res_aborted  (** the victim ran the abort protocol and abandoned the request *)
  | Res_lost_race  (** the abort raced a handoff and lost: the victim acquired instead *)
  | Res_acquired
      (** the victim acquired normally before observing the signal — the
          only resolution a non-abortable lock offers *)
  | Res_crashed  (** the victim crashed while the signal was pending *)
  | Res_pending  (** the run ended with the signal unresolved *)

type abort_stat = {
  ab_pid : int;
  ab_signal_step : int;  (** global step the signal was delivered at *)
  ab_op_index : int;
      (** victim op index of an on-op signal; [-1] for async deliveries *)
  ab_resolved_step : int;  (** [-1] while pending *)
  ab_own_steps : int;
      (** the victim's own steps from signal to resolution — the quantity
          {!Rme_check.Props.abort_liveness} bounds *)
  ab_rmr : int;  (** RMRs the victim incurred between signal and resolution *)
  ab_result : abort_result;
}

val pp_abort_result : abort_result Fmt.t

(** Watchdog verdict on an abnormal end state. *)
type stall_kind =
  | Deadlock  (** every live process parked, no writer left to wake them *)
  | Livelock
      (** timed out with processes still taking steps, but nobody satisfied
          a request within the trailing stall window *)
  | Starvation
      (** timed out with some processes progressing while the culprits went
          a whole stall window without satisfying a request *)
  | Underbudget
      (** timed out, yet every live process progressed within the trailing
          window — the run was healthy and [max_steps] was simply too
          small; raise the budget rather than suspect the lock *)

type stall = {
  stall_kind : stall_kind;
  culprits : (int * string) list;
      (** the stuck (for [Starvation], the starved; for [Livelock], the
          fruitlessly spinning; for [Deadlock]/[Underbudget], all live)
          pids, each with a description of where it stands:
          ["ncs"], ["entry"], ["cs"], ["holding(<lock>)"], with
          [" parked@<cell>"] appended when it sits on a spin wait *)
}

type result = {
  steps : int;
  total_rmr : int;
  rmr_by_kind : (Api.kind * int) list;
      (** where the remote references came from: plain reads, writes, CAS,
          FAS, FAA, or spin fetches (the initial fetch and post-wake
          refetches of local-spin waits) *)
  total_crashes : int;
      (** per-process crash count summed over pids; a system-wide crash
          contributes one per live process *)
  system_crashes : int;  (** system-wide crashes fired by the plan's [system] axis *)
  procs : proc_stats array;
  locks : lock_stats array;
  cs_max : int;  (** max simultaneous occupancy of the application CS *)
  deadlocked : bool;
  timed_out : bool;
  stall : stall option;
      (** diagnosis when the run ended abnormally ([deadlocked] or
          [timed_out]); [None] on clean termination.  Guarantees that
          [timed_out] is never an undiagnosed verdict: the watchdog always
          classifies it and names culprit pids. *)
  aborts : abort_stat list;
      (** one record per delivered abort signal, resolved records in
          resolution order followed by the still-pending ones; [[]] unless
          an {!Abort.t} plan was supplied *)
  events : Event.t list;
      (** what the event sink retained: the full history under [record] (a
          [Keep] sink), the trailing window under a [Ring] sink, [[]] under
          the default dropping sink or a [Callback] sink *)
}

val pp_stall : stall Fmt.t

val run :
  ?mode:[ `Auto | `Fast | `Full ] ->
  ?sink:Event.Sink.t ->
  ?record:bool ->
  ?trace_ops:bool ->
  ?max_steps:int ->
  ?stall_window:int ->
  ?on_crash:(pid:int -> step:int -> unit) ->
  ?on_op:(Crash.op_info -> unit) ->
  ?footprints:Footprint.t Vec.t ->
  ?footprint_crashy:(int -> bool) ->
  ?state_key_at:int ->
  ?on_state_key:(int array -> unit) ->
  ?abort:Abort.t ->
  n:int ->
  model:Memory.model ->
  sched:Sched.t ->
  crash:Crash.t ->
  setup:(Ctx.t -> 'a) ->
  body:('a -> pid:int -> unit) ->
  unit ->
  result
(** [run ~n ~model ~sched ~crash ~setup ~body ()] builds a store, calls
    [setup] once (lock construction; no RMR accounting), then runs
    [body shared ~pid] for every pid until all bodies return, a deadlock is
    detected (every live process parked), or [max_steps] (default 5e6)
    elapses.  [record] keeps the event history; [trace_ops] additionally
    records every instruction (expensive — tests only).

    [sink] routes the event stream explicitly and overrides [record]'s
    default: {!Event.Sink.drop} (the default when neither [record] nor
    [trace_ops] is set) skips event construction entirely — steady-state
    passages then allocate (almost) no minor words — while
    {!Event.Sink.keep} retains everything ([record]'s behaviour),
    {!Event.Sink.ring} keeps a bounded trailing window for post-mortem
    diagnosis of long runs, and {!Event.Sink.callback} streams events out.

    [mode] selects the instrumentation contract:
    - [`Auto] (default): each bookkeeping layer (per-instruction crash/abort
      consults, answer-stream digests, event emission) runs only when the
      supplied configuration needs it.  Results are byte-identical to
      [`Full]'s.
    - [`Fast]: asserts that {e nothing} requires instrumentation — raises
      [Invalid_argument] when a crash or abort plan (other than the [none]
      sentinels), a wanting sink, [trace_ops], [footprints], a state key or
      an [on_op]/[on_crash] hook is supplied.  Use it in benchmarks to fail
      loudly instead of silently falling off the fast path.
    - [`Full]: forces the instrumented code paths on even when nothing
      consumes their output — the differential baseline for measuring the
      fast path's gain.

    [stall_window] is the watchdog's look-back horizon (in global steps)
    for the timeout diagnosis recorded in [result.stall]; default
    [max 1_000 (max_steps / 8)].

    [on_op] is the site-discovery hook: it observes the {!Crash.op_info} of
    every instruction a process is about to execute — the same view the
    crash plan gets, in the same order — so a caller can enumerate the
    crash sites [(pid, op_index, kind, cell)] of a run (the sweep engine's
    discovery pass).  It fires before the crash plan is consulted, so
    instructions suppressed by a [Crash Before] are still observed.

    [footprints], when supplied, receives one {!Footprint.t} per runnable
    pid at every scheduling decision, pushed in ascending pid order — the
    order {!Sched.trace} sorts choices over — before the scheduler picks.
    Indexing by the per-decision branching degrees recovers the footprint
    of every (decision point, choice) pair; this is the oracle behind the
    explorer's partial-order reduction.  [footprint_crashy pid] (default
    [fun _ -> false]) marks pids whose steps the crash plan may strike
    (see {!Crash.por_class}); their footprints carry the crashy flag so
    crash teardown is treated as part of the step.

    [state_key_at], when non-negative, makes the run call [on_state_key]
    once, at decision position [state_key_at] (after that position's
    asynchronous crashes and footprint pushes, before the scheduler
    picks), with a compact digest of the whole engine state: store
    contents/versions/cache rows, per-process control state (via the
    journal-stream digests), and every aggregate statistic a
    schedule-robust check can observe.  Equal keys mean the two decision
    nodes have pointwise check-equivalent continuations — the explorer's
    state cache dedups on it.  Step counts, latencies and the stall
    classification are excluded, matching the POR contract.

    [abort] (default {!Abort.none}) is the abort decision axis: the plan
    is consulted once per iteration (after the crash plan's asynchronous
    and system consults) and once per instruction (immediately {e before}
    the crash plan's [on_op]), and each positive decision delivers an
    abort signal to its victim — provided the victim is live and inside
    some lock's entry section; everything else is a no-op.  Signals wake
    abortable spins ({!Api.spin_abortable}), are visible to
    {!Api.poll_abort}, and resolve per the {!abort_result} cases, each
    resolution appending an {!abort_stat} to [result.aborts].  Passing
    [Abort.none] itself (physical equality) skips all abort bookkeeping.

    [run] is re-entrant and domain-safe: all engine state (store, fibers,
    statistics) is allocated per call, so independent runs may execute
    concurrently on separate OCaml domains — the parallel explorer relies
    on this.  The caller must supply domain-safe arguments: build stateful
    [sched]s and [crash] plans fresh per run, and keep shared mutable
    state out of the [setup]/[body]/[on_crash] closures. *)

(** {1 Checkpoint / resume}

    Support for the parallel explorer's prefix elimination: a run started
    with checkpointing enabled can hand out {!Snap.t} snapshots at chosen
    decision positions, and a later run can {e resume} from one instead of
    replaying the whole decision-vector prefix from the root.

    OCaml's one-shot effect continuations cannot be copied, so a snapshot
    does not capture the fibers.  It captures everything else — the store
    image, every statistics counter, the control-state tag of each process
    — plus a {e journal}: the log, in global order, of every event that
    advanced a fiber (body dispatch, instruction answer, crash
    discontinuation).  Resuming re-executes [setup], fast-forwards fresh
    fibers by feeding them the journaled answers (cheap: no store access,
    no scheduling, no crash consultation, no accounting), restores the
    snapshot on top, winds a fresh crash plan forward over the recorded
    op stream, and continues stepping normally from the checkpointed
    decision position. *)

module Snap : sig
  type t
  (** A checkpoint standing immediately before one decision position of a
      recorded run.  Self-contained and immutable: it stays valid after
      the capturing run finishes and across any number of resumes. *)

  val pos : t -> int
  (** The decision position the snapshot stands before. *)
end

type rrun = {
  rr_result : result;
  rr_degrees : int array;
      (** branching degree observed at every decision position, prefix
          included *)
  rr_footprints : Footprint.t array;
      (** flat per-choice footprints in decision order, prefix included;
          [[||]] unless [por] *)
}

val run_resumable :
  ?from:Snap.t ->
  ?snap_gap:int ->
  ?snap:(Snap.t -> unit) ->
  ?record:bool ->
  ?max_steps:int ->
  ?stall_window:int ->
  ?por:bool ->
  ?footprint_crashy:(int -> bool) ->
  ?state_key_at:int ->
  ?on_state_key:(int array -> unit) ->
  ?abort:(unit -> Abort.t) ->
  decisions:int array ->
  n:int ->
  model:Memory.model ->
  crash:(unit -> Crash.t) ->
  setup:(Ctx.t -> 'a) ->
  body:('a -> pid:int -> unit) ->
  unit ->
  rrun
(** [run_resumable ~decisions ...] replays the schedule identified by
    [decisions] exactly as {!run} under {!Sched.trace} would (position [i]
    picks the [decisions.(i)]-th smallest runnable pid, default 0 past the
    end), with two additions:

    - [from] resumes from a snapshot instead of starting at the root: the
      positions before [Snap.pos from] are reconstructed by fast-forward
      and restore, the positions from [Snap.pos from] on are executed
      normally against [decisions].  [decisions] must agree with the
      snapshotted run on every position before [Snap.pos from], and
      [record], [por], [max_steps], [crash] and the lock construction must
      match the capturing run's — resumption reproduces, byte for byte,
      the run a full replay of [decisions] would produce.
    - [snap_gap > 0] captures snapshots and passes each to [snap], in
      position order.  Only {e branching} positions (more than one
      runnable process) are captured — a resumed run can deviate nowhere
      else — at most one per [snap_gap] positions, starting at
      [Array.length decisions] (positions below the explicit vector
      belong to ancestor prefixes, whose own runs captured them).  The
      first branching position at or past [Array.length decisions] is
      always captured, so every child of this run has a snapshot at or
      before its deviation position.

    [crash] is a thunk because resuming needs a fresh plan to wind
    forward; it is called exactly once per [run_resumable] call.  [abort]
    (default [fun () -> Abort.none]) is a thunk for the same reason: a
    resume winds the fresh abort plan over the recorded op stream and the
    step counter, consulting [async] with {!Abort.blind_view} — which is
    exactly why abort plans must honour the winding contract documented in
    {!Abort}.
    [state_key_at]/[on_state_key] behave as in {!run} (the digest is
    identical whether the position was reached live or via a resume — the
    journal-stream digests are rebuilt from the seeded prefix).  The
    hooks of {!run} ([on_op], [on_crash], [trace_ops]) are not available:
    fast-forward does not re-fire them.  Domain-safety matches {!run};
    snapshots may be captured in one domain and resumed in another, but
    not concurrently with mutations of the capturing run (the explorer's
    DFS discipline guarantees this). *)

(** {1 Result helpers} *)

val completed_passages : result -> passage list
(** All failure-free passages, across processes. *)

val max_rmr : result -> int
(** Largest RMR count over {e all} passages (a crashed passage's partial
    cost counts: the paper charges RMRs per passage including those ended
    by failures). *)

val max_rmr_super : result -> int
(** Largest total RMR count of a super-passage (all its passages summed). *)

val avg_rmr : result -> float
(** Mean RMRs per passage over all passages. *)

val avg_rmr_super : result -> float
(** Mean RMRs per super-passage (total RMRs / satisfied requests). *)

val total_completed : result -> int

val latencies : result -> int list
(** Sorted step-latencies of the completed passages. *)

val percentile : int list -> float -> int
(** [percentile sorted q] with [q] ∈ [0, 1] over a sorted list. *)

val pp_summary : result Fmt.t
