(** Execution-history events.

    When history recording is enabled the engine appends one event per
    noteworthy occurrence: segment transitions of the standard process loop
    (Algorithm 1 of the paper), per-lock milestones emitted by lock
    implementations, and crashes.  The offline property checkers
    ({!module:Rme_check.Props} in [lib/check]) consume these. *)

(** Segment transitions of the Algorithm-1 loop, emitted by the harness. *)
type seg =
  | Ncs_begin  (** process entered its non-critical section *)
  | Req_begin  (** passage start: Recover segment entered *)
  | Cs_begin   (** process entered the (application) critical section *)
  | Cs_end     (** process left the critical section *)
  | Req_done   (** failure-free passage completed: request satisfied *)

type note =
  | Seg of seg
  | Lock_enter of int  (** lock [id]: Recover/Enter of this lock begins *)
  | Lock_acquired of int  (** lock [id]: holder enters the lock's CS *)
  | Lock_release of int  (** lock [id]: Exit segment begins *)
  | Lock_released of int  (** lock [id]: Exit segment completed *)
  | Level of int  (** BA-Lock: the process starts competing at this level *)
  | Path of int * bool  (** BA-Lock/SA-Lock: level, [true] = fast path *)
  | Abort_signal
      (** the engine delivered an abort signal to this process (adversary
          decision point; emitted by the engine, not by lock code) *)
  | Abort_request of int  (** lock [id]: the victim starts its abort protocol *)
  | Abort_done of int  (** lock [id]: abort completed, request abandoned *)
  | Abort_lost_race of int
      (** lock [id]: the abort lost the race — the process acquired the
          lock instead and now holds its CS (no {!Lock_acquired} fires) *)
  | Custom of string

type t =
  | Note of { step : int; pid : int; super : int; note : note }
  | Crash of {
      step : int;
      pid : int;
      super : int;  (** index of the super-passage the crash interrupts *)
      unsafe_wrt : int list;  (** weakly recoverable locks whose sensitive window was open *)
      holding : int list;  (** locks whose CS the process occupied *)
      in_passage : bool;
    }
  | Sys_crash of { step : int }
      (** the whole system crashed at [step] (every process's continuation
          erased at once, NVRAM persisting); the per-process {!Crash}
          events recorded immediately after it carry each victim's
          circumstances *)
  | Op of { step : int; pid : int; kind : string; cell : string; value : int }
      (** one applied shared-memory instruction and the cell contents after
          it (the value read, for reads); recorded only under [trace_ops].
          Instructions suppressed by a crash-before are not recorded. *)

val pp_seg : seg Fmt.t

val pp_note : note Fmt.t

val pp : t Fmt.t

val step : t -> int

val pid : t -> int
(** [-1] for {!Sys_crash}: a system crash belongs to no single process. *)

(** Compile-once event sinks.

    The engine emits every history event into a sink whose policy is fixed
    at construction: the hot loop asks {!Sink.wants} once per run and skips
    event {e construction} entirely for a {!Sink.drop} sink, so an
    uninstrumented passage allocates no event records at all.  [Keep]
    preserves the full history (the pre-existing [record:true] behaviour),
    [Ring] the last [capacity] events (bounded-memory flight recorder for
    long service runs), [Callback] streams each event to a function without
    retaining it. *)
module Sink : sig
  type event = t

  type t

  val drop : t
  (** Discards every event.  A shared constant — carries no state, so the
      same value may serve concurrent engines on separate domains. *)

  val keep : unit -> t
  (** Retains every event, in emission order. *)

  val ring : capacity:int -> t
  (** Retains the last [capacity] events.  {!emitted} still counts every
      emission.  @raise Invalid_argument when [capacity <= 0]. *)

  val callback : (event -> unit) -> t
  (** Delivers each event to the function; retains nothing. *)

  val wants : t -> bool
  (** [false] iff the sink is {!drop} — the engine's gate for skipping
      event construction. *)

  val emit : t -> event -> unit

  val emitted : t -> int
  (** Events emitted into the sink ([Keep]: retained; [Ring]/[Callback]:
      total ever delivered; [drop]: 0). *)

  val events : t -> event list
  (** The retained events in emission order.  [Keep]: all of them; [Ring]:
      the last [<= capacity], oldest first; [drop]/[Callback]: [[]]. *)

  val clear : t -> unit

  (**/**)

  val buffer : t -> event Vec.t option
  (** Internal: the [Keep] policy's backing buffer, used by the engine's
      checkpoint capture/restore.  [None] for every other policy. *)
end
