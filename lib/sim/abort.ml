(* The abort decision axis: when does an impatient client give up on its
   entry section?  Structured exactly like [Crash]: a plan is consulted by
   the engine both per applied instruction ([on_op]) and once per engine
   iteration ([async]); a positive decision delivers an {e abort signal} to
   the victim.  The engine filters signals — only a process inside some
   lock's entry section (Lock_enter seen, Lock_acquired not yet) is
   flagged — so plans may fire blindly.

   Winding contract (record/replay, [Engine.run_resumable]): a plan's
   internal state (RNG cursors, budgets, gap cursors) must evolve as a
   function of the consult sequence alone — the global step counter and the
   logged op stream — never gated on the [view] oracles.  Victim {e
   selection} may read [view]; state transitions may not.  During journal
   fast-forward the engine winds plans by consulting [async] with a dummy
   view (all oracles report "nobody waiting") and discarding the decisions,
   and replays [on_op] over the logged op stream, so any view-gated state
   would diverge. *)

type view = {
  n : int;
  waiting : int -> int;
      (* entry age of [pid] in engine steps, -1 when not in an entry section *)
  streak : int -> int;
      (* consecutive aborts of [pid]'s current super-passage (reset on
         acquire / lost race / crash) *)
}

let blind_view ~n = { n; waiting = (fun _ -> -1); streak = (fun _ -> 0) }

type t = {
  label : string;
  on_op : Crash.op_info -> bool;
  async : step:int -> view -> int list;
  por : Crash.por_class;
}

let label t = t.label

let on_op t info = t.on_op info

let async t ~step view = t.async ~step view

let por_class t = t.por

let no_op _ = false

let no_async ~step:_ _ = []

let none = { label = "none"; on_op = no_op; async = no_async; por = Crash.Robust [] }

let at_op ~pid ~nth =
  let fired = ref false in
  {
    label = Printf.sprintf "abort-at-op(p%d,%d)" pid nth;
    on_op =
      (fun info ->
        if (not !fired) && info.Crash.pid = pid && info.Crash.op_index = nth then begin
          fired := true;
          true
        end
        else false);
    async = no_async;
    por = Crash.Robust [ pid ];
  }

let async_at specs =
  let pending = ref specs in
  {
    label = "abort-async-at";
    on_op = no_op;
    async =
      (fun ~step _ ->
        let due, rest = List.partition (fun (s, _) -> step >= s) !pending in
        pending := rest;
        List.map snd due);
    por = Crash.Sensitive;
  }

(* The impatient-client shape: a process whose entry section has aged past
   [timeout_steps * backoff^streak] engine steps gives up — unless it has
   already aborted [retries] times this super-passage, in which case it
   turns patient and waits the acquisition out.  Stateless (all state lives
   in the engine's oracles), hence trivially wind-exact; re-signalling an
   already-flagged victim is an engine-side no-op. *)
let impatient ~timeout_steps ?(retries = max_int) ?(backoff = 1.0) () =
  if timeout_steps <= 0 then invalid_arg "Abort.impatient: timeout_steps must be positive";
  if retries < 0 then invalid_arg "Abort.impatient: retries must be non-negative";
  if backoff < 1.0 then invalid_arg "Abort.impatient: backoff must be >= 1";
  {
    label =
      (if retries = max_int && backoff = 1.0 then
         Printf.sprintf "impatient(timeout=%d)" timeout_steps
       else Printf.sprintf "impatient(timeout=%d,retries=%d,backoff=%g)" timeout_steps retries backoff);
    on_op = no_op;
    async =
      (fun ~step:_ view ->
        let out = ref [] in
        for pid = view.n - 1 downto 0 do
          let s = view.streak pid in
          if s < retries then begin
            let eff = float_of_int timeout_steps *. (backoff ** float_of_int s) in
            let w = view.waiting pid in
            if w >= 0 && float_of_int w >= eff then out := pid :: !out
          end
        done;
        !out);
    (* Entry age is measured in global engine steps, so which op a signal
       lands before depends on the whole interleaving. *)
    por = Crash.Sensitive;
  }

let random ~seed ~rate ~max_aborts ?pids () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Abort.random: rate must be in [0, 1]";
  let rng = Random.State.make [| seed; 0xab02 |] in
  let budget = ref max_aborts in
  let eligible =
    match pids with None -> fun _ -> true | Some ps -> fun pid -> List.mem pid ps
  in
  {
    label = Printf.sprintf "abort-random(rate=%g,max=%d)" rate max_aborts;
    on_op =
      (fun info ->
        if !budget > 0 && eligible info.Crash.pid && Random.State.float rng 1.0 < rate
        then begin
          decr budget;
          true
        end
        else false);
    async = no_async;
    por = (match pids with Some [ p ] -> Crash.Robust [ p ] | _ -> Crash.Sensitive);
  }

(* Random abort pressure with a cooldown, the abort face of [Crash.storm].
   Per the winding contract the RNG is drawn and the budget consumed on
   the draw itself; only the {e victim selection} (oldest waiter, lowest
   pid on ties) reads the view, so a draw that finds nobody waiting is a
   consumed decision that signals no one. *)
let storm ~seed ~rate ~max_aborts ~gap ?(backoff = 1.0) () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Abort.storm: rate must be in [0, 1]";
  if gap < 0 then invalid_arg "Abort.storm: gap must be non-negative";
  if backoff < 1.0 then invalid_arg "Abort.storm: backoff must be >= 1";
  let rng = Random.State.make [| seed; 0xab5702 |] in
  let budget = ref max_aborts in
  let next_ok = ref 0 in
  let cur_gap = ref (float_of_int gap) in
  {
    label = Printf.sprintf "abort-storm(rate=%g,max=%d,gap=%d,backoff=%g)" rate max_aborts gap backoff;
    on_op = no_op;
    async =
      (fun ~step view ->
        if !budget > 0 && step >= !next_ok && Random.State.float rng 1.0 < rate then begin
          decr budget;
          next_ok := step + int_of_float !cur_gap;
          cur_gap := !cur_gap *. backoff;
          let victim = ref (-1) in
          let age = ref (-1) in
          for pid = view.n - 1 downto 0 do
            let w = view.waiting pid in
            if w >= !age && w >= 0 then begin
              age := w;
              victim := pid
            end
          done;
          if !victim >= 0 then [ !victim ] else []
        end
        else []);
    por = Crash.Sensitive;
  }

type fired = { a_pid : int; a_op_index : int; a_step : int; a_async : bool }

let record_fired plan =
  let fired = ref [] in
  let push f = fired := f :: !fired in
  let wrapped =
    {
      plan with
      on_op =
        (fun info ->
          let hit = plan.on_op info in
          if hit then
            push
              {
                a_pid = info.Crash.pid;
                a_op_index = info.Crash.op_index;
                a_step = info.Crash.step;
                a_async = false;
              };
          hit);
      async =
        (fun ~step view ->
          let pids = plan.async ~step view in
          List.iter
            (fun pid -> push { a_pid = pid; a_op_index = -1; a_step = step; a_async = true })
            pids;
          pids);
    }
  in
  (wrapped, fun () -> List.rev !fired)

let all plans =
  {
    label = String.concat "+" (List.map (fun p -> p.label) plans);
    (* No short circuit: every member must be consulted on every op so
       stateful plans keep winding forward identically whether or not an
       earlier member fired. *)
    on_op = (fun info -> List.fold_left (fun acc p -> p.on_op info || acc) false plans);
    async = (fun ~step view -> List.concat_map (fun p -> p.async ~step view) plans);
    por =
      List.fold_left
        (fun acc p ->
          match (acc, p.por) with
          | Crash.Sensitive, _ | _, Crash.Sensitive -> Crash.Sensitive
          | Crash.Robust a, Crash.Robust b ->
              Crash.Robust (List.sort_uniq Int.compare (List.rev_append b a)))
        (Crash.Robust []) plans;
  }

let replay_fired fired =
  match fired with
  | [] -> none
  | _ ->
      let plan_of f =
        if f.a_async then async_at [ (f.a_step, f.a_pid) ]
        else at_op ~pid:f.a_pid ~nth:f.a_op_index
      in
      let plans = List.map plan_of fired in
      { (all plans) with label = Printf.sprintf "abort-replay-fired(%d)" (List.length fired) }
