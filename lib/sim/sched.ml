type t = { label : string; pick : runnable:int array -> step:int -> int }

let label t = t.label

let pick t ~runnable ~step =
  if Array.length runnable = 0 then invalid_arg "Sched.pick: empty runnable set";
  t.pick ~runnable ~step

let round_robin () =
  let cursor = ref 0 in
  {
    label = "round-robin";
    pick =
      (fun ~runnable ~step:_ ->
        (* Smallest runnable pid strictly greater than the cursor, wrapping. *)
        let best = ref (-1) in
        let smallest = ref runnable.(0) in
        Array.iter
          (fun p ->
            if p < !smallest then smallest := p;
            if p > !cursor && (!best = -1 || p < !best) then best := p)
          runnable;
        let chosen = if !best = -1 then !smallest else !best in
        cursor := chosen;
        chosen);
  }

let random ~seed =
  let rng = Random.State.make [| seed; 0xfa1afe1 |] in
  {
    label = Printf.sprintf "random(%d)" seed;
    pick = (fun ~runnable ~step:_ -> runnable.(Random.State.int rng (Array.length runnable)));
  }

let greedy () =
  let last = ref (-1) in
  {
    label = "greedy";
    pick =
      (fun ~runnable ~step:_ ->
        if Array.exists (fun p -> p = !last) runnable then !last
        else begin
          let m = Array.fold_left min runnable.(0) runnable in
          last := m;
          m
        end);
  }

let burst ~seed ~len =
  if len <= 0 then invalid_arg "Sched.burst: len must be positive";
  let rng = Random.State.make [| seed; 0xb025 |] in
  let current = ref (-1) in
  let remaining = ref 0 in
  {
    label = Printf.sprintf "burst(%d,%d)" seed len;
    pick =
      (fun ~runnable ~step:_ ->
        if !remaining > 0 && Array.exists (fun p -> p = !current) runnable then begin
          decr remaining;
          !current
        end
        else begin
          current := runnable.(Random.State.int rng (Array.length runnable));
          remaining := len - 1;
          !current
        end);
  }

(* Ascending copy of [runnable] in a scratch buffer reused across picks —
   this runs once per engine step of every explored run, so no per-pick
   allocation and no polymorphic compare.  The engine already produces
   runnable sets in ascending pid order, making the insertion sort a single
   verification pass.  Only the first [Array.length runnable] entries of
   the returned buffer are meaningful. *)
let sorted_scratch () =
  let buf = ref [||] in
  fun (runnable : int array) ->
    let len = Array.length runnable in
    if Array.length !buf < len then buf := Array.make (max 16 (2 * len)) 0;
    let a = !buf in
    Array.blit runnable 0 a 0 len;
    for i = 1 to len - 1 do
      let v = a.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && a.(!j) > v do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done;
    a

let recording ~inner ~decisions =
  let sorted_of = sorted_scratch () in
  {
    label = Printf.sprintf "recording(%s)" inner.label;
    pick =
      (fun ~runnable ~step ->
        let chosen = inner.pick ~runnable ~step in
        let sorted = sorted_of runnable in
        let idx = ref 0 in
        for i = 0 to Array.length runnable - 1 do
          if sorted.(i) = chosen then idx := i
        done;
        Vec.push decisions !idx;
        chosen);
  }

exception Unfaithful of { position : int; choice : int; degree : int }

let trace ?mismatch ?(strict = false) ~decisions ~record () =
  let i = ref 0 in
  let sorted_of = sorted_scratch () in
  {
    label = "trace";
    pick =
      (fun ~runnable ~step:_ ->
        let sorted = sorted_of runnable in
        let choice = if !i < Vec.length decisions then Vec.get decisions !i else 0 in
        let position = !i in
        incr i;
        let degree = Array.length runnable in
        Vec.push record degree;
        (* A decision outside the branching degree means the replayed run no
           longer takes the branches the decision vector was recorded
           against (the degree shifted, e.g. because an earlier decision was
           edited during shrinking).  Silently wrapping would report a trace
           that witnesses a different schedule than the one executed, so the
           divergence is surfaced: flagged via [mismatch], or fatal under
           [strict]. *)
        if choice >= degree || choice < 0 then begin
          if strict then raise (Unfaithful { position; choice; degree });
          match mismatch with Some flag -> flag := true | None -> ()
        end;
        sorted.(((choice mod degree) + degree) mod degree));
  }
