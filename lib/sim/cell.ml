type t = { id : int; name : string; home : int }

let global = -1

let make ~id ~name ~home = { id; name; home }

let pp ppf t = Fmt.pf ppf "%s#%d" t.name t.id

let equal a b = a.id = b.id
