type point = Before | After

type decision = No_crash | Crash of point

type op_info = {
  pid : int;
  step : int;
  op_index : int;
  kind : Api.kind;
  cell : string option;
  note : Event.note option;
  unsafe_wrt : int list;
}

(* How a plan's firing decisions relate to the schedule, for the explorer's
   partial-order reduction.  [Robust victims]: every decision is a function
   of the observed process's own instruction history alone, so swapping
   independent steps of other processes cannot move a crash; only the listed
   pids can ever be struck.  [Sensitive]: decisions read the global step
   counter, a shared RNG consumed in cross-process op order, or shared span
   state — reordering can change where the plan fires, so POR must stay
   off. *)
type por_class = Robust of int list | Sensitive

type t = {
  label : string;
  on_op : op_info -> decision;
  async : step:int -> int list;
  system : step:int -> bool;
  por : por_class;
}

let label t = t.label

let on_op t info = t.on_op info

let async t ~step = t.async ~step

let system t ~step = t.system ~step

let por_class t = t.por

let no_async ~step:_ = []

let no_system ~step:_ = false

let none =
  {
    label = "none";
    on_op = (fun _ -> No_crash);
    async = no_async;
    system = no_system;
    por = Robust [];
  }

let at_op ~pid ~nth point =
  let fired = ref false in
  {
    label = Printf.sprintf "at-op(p%d,%d)" pid nth;
    on_op =
      (fun info ->
        if (not !fired) && info.pid = pid && info.op_index = nth then begin
          fired := true;
          Crash point
        end
        else No_crash);
    async = no_async;
    system = no_system;
    por = Robust [ pid ];
  }

(* Crash [pid] at the [occurrence]-th instruction satisfying [match_]. *)
let on_match ~label ~pid ~occurrence ~point match_ =
  let seen = ref 0 in
  let fired = ref false in
  {
    label;
    on_op =
      (fun info ->
        if (not !fired) && info.pid = pid && match_ info then begin
          let k = !seen in
          incr seen;
          if k = occurrence then begin
            fired := true;
            Crash point
          end
          else No_crash
        end
        else No_crash);
    async = no_async;
    system = no_system;
    por = Robust [ pid ];
  }

let on_kind ~pid ~kind ~occurrence point =
  on_match
    ~label:(Fmt.str "on-kind(p%d,%a,%d)" pid Api.pp_kind kind occurrence)
    ~pid ~occurrence ~point
    (fun info -> info.kind = kind)

let on_cell ~pid ~cell ~occurrence point =
  on_match
    ~label:(Printf.sprintf "on-cell(p%d,%s,%d)" pid cell occurrence)
    ~pid ~occurrence ~point
    (fun info -> info.cell = Some cell)

let on_custom_note ~pid ~tag ~occurrence point =
  on_match
    ~label:(Printf.sprintf "on-note(p%d,%s,%d)" pid tag occurrence)
    ~pid ~occurrence ~point
    (fun info -> match info.note with Some (Event.Custom s) -> s = tag | _ -> false)

let random ~seed ~rate ~max_crashes ?pids () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Crash.random: rate must be in [0, 1]";
  let rng = Random.State.make [| seed; 0x5ca1ab1e |] in
  let budget = ref max_crashes in
  let eligible =
    match pids with None -> fun _ -> true | Some ps -> fun pid -> List.mem pid ps
  in
  {
    label = Printf.sprintf "random(rate=%g,max=%d)" rate max_crashes;
    on_op =
      (fun info ->
        if !budget > 0 && eligible info.pid && Random.State.float rng 1.0 < rate then begin
          decr budget;
          Crash (if Random.State.bool rng then Before else After)
        end
        else No_crash);
    async = no_async;
    system = no_system;
    (* With a single eligible pid the RNG is consumed only on that pid's
       ops, in its own program order — schedule-robust.  With several, the
       draw order depends on the interleaving. *)
    por = (match pids with Some [ p ] -> Robust [ p ] | _ -> Sensitive);
  }

let fas_gap ~seed ~rate ~max_crashes ?(cell_suffix = "filter.tail") () =
  let rng = Random.State.make [| seed; 0xdeadfa5 |] in
  let budget = ref max_crashes in
  let has_suffix s suf =
    let ls = String.length s and lf = String.length suf in
    ls >= lf && String.sub s (ls - lf) lf = suf
  in
  {
    label = Printf.sprintf "fas-gap(rate=%g,max=%d)" rate max_crashes;
    on_op =
      (fun info ->
        match info.cell with
        | Some cell
          when !budget > 0 && info.kind = Api.Fas && has_suffix cell cell_suffix
               && Random.State.float rng 1.0 < rate ->
            decr budget;
            Crash After
        | _ -> No_crash);
    async = no_async;
    system = no_system;
    por = Sensitive;
  }

let async_at specs =
  let pending = ref specs in
  {
    label = "async-at";
    on_op = (fun _ -> No_crash);
    async =
      (fun ~step ->
        let due, rest = List.partition (fun (s, _) -> step >= s) !pending in
        pending := rest;
        List.map snd due);
    system = no_system;
    por = Sensitive;
  }

let batch ~step ~pids = { (async_at (List.map (fun p -> (step, p)) pids)) with label = "batch" }

let every_nth_passage ~pid ~period ~max_crashes =
  if period <= 0 then invalid_arg "Crash.every_nth_passage: period must be positive";
  let passages = ref 0 in
  let budget = ref max_crashes in
  {
    label = Printf.sprintf "every-nth-passage(p%d,%d)" pid period;
    on_op =
      (fun info ->
        match info.note with
        | Some (Event.Seg Event.Req_begin) when info.pid = pid && !budget > 0 ->
            let k = !passages in
            incr passages;
            if k mod period = period - 1 then begin
              decr budget;
              Crash After
            end
            else No_crash
        | _ -> No_crash);
    async = no_async;
    system = no_system;
    por = Robust [ pid ];
  }

let target_holder ?lock ~seed ~rate ~max_crashes () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Crash.target_holder: rate must be in [0, 1]";
  let rng = Random.State.make [| seed; 0x401de2 |] in
  let budget = ref max_crashes in
  let inside : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let matches id = match lock with None -> true | Some l -> l = id in
  {
    label = Printf.sprintf "holder(rate=%g,max=%d)" rate max_crashes;
    on_op =
      (fun info ->
        (* Track the span before deciding, so the entering note itself is a
           valid strike point.  A fresh [Ncs_begin]/[Req_begin] clears the
           mark: a crash (ours or another plan's) restarts the body, and the
           stale span must not leak into the victim's NCS. *)
        (match info.note with
        | Some (Event.Lock_enter id) when matches id -> Hashtbl.replace inside info.pid ()
        | Some (Event.Lock_released id) when matches id -> Hashtbl.remove inside info.pid
        | Some (Event.Seg (Event.Ncs_begin | Event.Req_begin)) -> Hashtbl.remove inside info.pid
        | _ -> ());
        if !budget > 0 && Hashtbl.mem inside info.pid && Random.State.float rng 1.0 < rate
        then begin
          decr budget;
          Crash (if Random.State.bool rng then Before else After)
        end
        else No_crash);
    async = no_async;
    system = no_system;
    por = Sensitive;
  }

let target_window ~seed ~rate ~max_crashes () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Crash.target_window: rate must be in [0, 1]";
  let rng = Random.State.make [| seed; 0x7a26e7 |] in
  let budget = ref max_crashes in
  {
    label = Printf.sprintf "window(rate=%g,max=%d)" rate max_crashes;
    on_op =
      (fun info ->
        (* [Before] keeps the crash strictly inside the open window: crashing
           After the instruction that closes it would land outside. *)
        if !budget > 0 && info.unsafe_wrt <> [] && Random.State.float rng 1.0 < rate then begin
          decr budget;
          Crash Before
        end
        else No_crash);
    async = no_async;
    system = no_system;
    por = Sensitive;
  }

let repeat_offender ~victim ~gap ~times =
  if gap < 0 then invalid_arg "Crash.repeat_offender: gap must be non-negative";
  let budget = ref times in
  let countdown = ref (-1) in
  {
    label = Printf.sprintf "repeat-offender(p%d,gap=%d,times=%d)" victim gap times;
    on_op =
      (fun info ->
        if info.pid <> victim || !budget <= 0 then No_crash
        else begin
          (match info.note with
          | Some (Event.Seg Event.Req_begin) when !countdown < 0 -> countdown := gap
          | _ -> ());
          if !countdown = 0 then begin
            (* Re-arm immediately: the next strike lands [gap] victim
               instructions into the restarted (recovering) passage. *)
            countdown := gap;
            decr budget;
            Crash After
          end
          else begin
            if !countdown > 0 then decr countdown;
            No_crash
          end
        end);
    async = no_async;
    system = no_system;
    por = Robust [ victim ];
  }

let storm ~seed ~rate ~max_crashes ~gap ?(backoff = 1.0) ?pids () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Crash.storm: rate must be in [0, 1]";
  if gap < 0 then invalid_arg "Crash.storm: gap must be non-negative";
  if backoff < 1.0 then invalid_arg "Crash.storm: backoff must be >= 1";
  let rng = Random.State.make [| seed; 0x5702e0 |] in
  let budget = ref max_crashes in
  let next_ok = ref 0 in
  let cur_gap = ref (float_of_int gap) in
  let eligible =
    match pids with None -> fun _ -> true | Some ps -> fun pid -> List.mem pid ps
  in
  {
    label = Printf.sprintf "storm(rate=%g,max=%d,gap=%d,backoff=%g)" rate max_crashes gap backoff;
    on_op =
      (fun info ->
        if
          !budget > 0 && info.step >= !next_ok && eligible info.pid
          && Random.State.float rng 1.0 < rate
        then begin
          decr budget;
          next_ok := info.step + int_of_float !cur_gap;
          cur_gap := !cur_gap *. backoff;
          Crash (if Random.State.bool rng then Before else After)
        end
        else No_crash);
    async = no_async;
    system = no_system;
    por = Sensitive;
  }

(* {1 System-wide crashes}

   The failure model of Jayanti–Jayanti–Joshi (arXiv 2302.00748): every
   process loses its private state at one instant while NVRAM persists.  A
   system plan is consulted once per engine iteration, on the global step
   counter only, and therefore is always [Sensitive] — which step an
   iteration lands on depends on the whole interleaving. *)

let system_at ~step =
  let fired = ref false in
  {
    label = Printf.sprintf "system-at(%d)" step;
    on_op = (fun _ -> No_crash);
    async = no_async;
    system =
      (fun ~step:now ->
        if (not !fired) && now >= step then begin
          fired := true;
          true
        end
        else false);
    por = Sensitive;
  }

let system_random ~seed ~rate ~max_crashes () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Crash.system_random: rate must be in [0, 1]";
  let rng = Random.State.make [| seed; 0x5b5c8a |] in
  let budget = ref max_crashes in
  {
    label = Printf.sprintf "system-random(rate=%g,max=%d)" rate max_crashes;
    on_op = (fun _ -> No_crash);
    async = no_async;
    system =
      (fun ~step:_ ->
        if !budget > 0 && Random.State.float rng 1.0 < rate then begin
          decr budget;
          true
        end
        else false);
    por = Sensitive;
  }

let system_storm ~seed ~rate ~max_crashes ~gap ?(backoff = 1.0) () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Crash.system_storm: rate must be in [0, 1]";
  if gap < 0 then invalid_arg "Crash.system_storm: gap must be non-negative";
  if backoff < 1.0 then invalid_arg "Crash.system_storm: backoff must be >= 1";
  let rng = Random.State.make [| seed; 0x5b5702 |] in
  let budget = ref max_crashes in
  let next_ok = ref 0 in
  let cur_gap = ref (float_of_int gap) in
  {
    label =
      Printf.sprintf "system-storm(rate=%g,max=%d,gap=%d,backoff=%g)" rate max_crashes gap backoff;
    on_op = (fun _ -> No_crash);
    async = no_async;
    system =
      (fun ~step ->
        if !budget > 0 && step >= !next_ok && Random.State.float rng 1.0 < rate then begin
          decr budget;
          next_ok := step + int_of_float !cur_gap;
          cur_gap := !cur_gap *. backoff;
          true
        end
        else false);
    por = Sensitive;
  }

type fired = {
  f_pid : int;
  f_op_index : int;
  f_step : int;
  f_point : point;
  f_async : bool;
}

let record_fired plan =
  let fired = ref [] in
  let push f = fired := f :: !fired in
  let wrapped =
    {
      plan with
      on_op =
        (fun info ->
          match plan.on_op info with
          | No_crash -> No_crash
          | Crash point as c ->
              push
                {
                  f_pid = info.pid;
                  f_op_index = info.op_index;
                  f_step = info.step;
                  f_point = point;
                  f_async = false;
                };
              c);
      async =
        (fun ~step ->
          let pids = plan.async ~step in
          List.iter
            (fun pid ->
              push { f_pid = pid; f_op_index = -1; f_step = step; f_point = Before; f_async = true })
            pids;
          pids);
      system =
        (fun ~step ->
          let hit = plan.system ~step in
          if hit then
            push { f_pid = -1; f_op_index = -1; f_step = step; f_point = Before; f_async = true };
          hit);
    }
  in
  (wrapped, fun () -> List.rev !fired)

let all plans =
  {
    label = String.concat "+" (List.map (fun p -> p.label) plans);
    on_op =
      (fun info ->
        let rec loop = function
          | [] -> No_crash
          | p :: rest -> ( match p.on_op info with No_crash -> loop rest | c -> c)
        in
        loop plans);
    async = (fun ~step -> List.concat_map (fun p -> p.async ~step) plans);
    (* No short circuit: every member must be consulted each iteration so
       stateful system plans keep winding forward identically whether or
       not an earlier member fired. *)
    system = (fun ~step -> List.fold_left (fun acc p -> p.system ~step || acc) false plans);
    (* Each robust member decides from its victim's own history, and the
       first-decision-wins short circuit only ever masks consults on ops
       that another member deterministically (per-pid) crashed — so the
       union of robust plans is robust, over the union of victims. *)
    por =
      List.fold_left
        (fun acc p ->
          match (acc, p.por) with
          | Sensitive, _ | _, Sensitive -> Sensitive
          | Robust a, Robust b ->
              Robust (List.sort_uniq Int.compare (List.rev_append b a)))
        (Robust []) plans;
  }

let replay_fired fired =
  match fired with
  | [] -> none
  | _ ->
      let plan_of f =
        if f.f_async then
          if f.f_pid < 0 then system_at ~step:f.f_step else async_at [ (f.f_step, f.f_pid) ]
        else at_op ~pid:f.f_pid ~nth:f.f_op_index f.f_point
      in
      let plans = List.map plan_of fired in
      { (all plans) with label = Printf.sprintf "replay-fired(%d)" (List.length fired) }
