(** Crash plans: when and where processes fail.

    The paper's failure model (§2.2) allows a process to crash at any point,
    losing its private state while shared (NVRAM) state persists.  A crash
    plan decides, for every instruction a process is about to execute,
    whether it crashes immediately {e before} or {e after} it — "after"
    applies the instruction to memory but loses its result, which is exactly
    the failure mode of the sensitive FAS of Algorithm 2.  Plans can also
    fire {e asynchronous} crashes that hit a process while it is parked
    (waiting on a spin), and batch crashes (§7.1).

    Plans are stateful values; build a fresh plan for every run. *)

type point = Before | After

type decision = No_crash | Crash of point

(** What a plan sees about the instruction about to execute. *)
type op_info = {
  pid : int;
  step : int;  (** global step counter *)
  op_index : int;
      (** per-process instruction counter, counted from the start of the
          run.  The counter is {e not} reset by a crash: it keeps
          incrementing across restarts, so the [nth] of {!at_op} addresses
          one absolute point in the process's whole execution, restarts
          included (pinned by the "op_index continues across restarts"
          test in [test/test_sim.ml]). *)
  kind : Api.kind;
  cell : string option;  (** name of the touched cell, if any *)
  note : Event.note option;  (** payload when [kind = Note] *)
}

type t

val label : t -> string

val on_op : t -> op_info -> decision

val async : t -> step:int -> int list
(** Pids to crash right now, whatever they are doing (even parked). *)

(** {1 Constructors} *)

val none : t

val at_op : pid:int -> nth:int -> point -> t
(** Crash [pid] at its [nth] instruction (0-based, counted across restarts). *)

val on_kind : pid:int -> kind:Api.kind -> occurrence:int -> point -> t
(** Crash [pid] around the [occurrence]-th (0-based) instruction of [kind]
    it executes.  [on_kind ~pid:3 ~kind:Fas ~occurrence:0 After] is "p3
    crashes immediately after its first FAS" — the Figure 1 scenario. *)

val on_cell : pid:int -> cell:string -> occurrence:int -> point -> t
(** Crash [pid] around its [occurrence]-th access to any cell named [cell]. *)

val on_custom_note : pid:int -> tag:string -> occurrence:int -> point -> t
(** Crash [pid] around its [occurrence]-th [Custom tag] note. *)

val random : seed:int -> rate:float -> max_crashes:int -> ?pids:int list -> unit -> t
(** Each instruction of an eligible process crashes with probability [rate]
    (point chosen uniformly Before/After), until [max_crashes] crashes have
    fired in total.  The budget keeps histories fair (finitely many crashes
    per super-passage, as SF requires). *)

val fas_gap :
  seed:int -> rate:float -> max_crashes:int -> ?cell_suffix:string -> unit -> t
(** Crash any process immediately after a FAS on a cell whose name ends with
    [cell_suffix] (default ["filter.tail"]), with probability [rate] per
    such FAS, up to [max_crashes] total — i.e. generate {e unsafe} failures
    with respect to the filter locks.  This is the adversary of the
    adaptivity experiments: the number of crashes fired is exactly the F of
    Theorems 5.17–5.19. *)

val async_at : (int * int) list -> t
(** [async_at [(step, pid); ...]]: crash [pid] at the first engine iteration
    whose global step is ≥ [step].  Reaches parked processes. *)

val batch : step:int -> pids:int list -> t
(** A batch failure (§7.1): all [pids] crash simultaneously at [step]. *)

val every_nth_passage : pid:int -> period:int -> max_crashes:int -> t
(** Crash [pid] just after the [Req_begin] of every [period]-th passage —
    a steady per-process failure pulse used by the adaptivity sweeps. *)

val all : t list -> t
(** Union of plans; the first crash decision wins. *)
