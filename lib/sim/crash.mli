(** Crash plans: when and where processes fail.

    The paper's failure model (§2.2) allows a process to crash at any point,
    losing its private state while shared (NVRAM) state persists.  A crash
    plan decides, for every instruction a process is about to execute,
    whether it crashes immediately {e before} or {e after} it — "after"
    applies the instruction to memory but loses its result, which is exactly
    the failure mode of the sensitive FAS of Algorithm 2.  Plans can also
    fire {e asynchronous} crashes that hit a process while it is parked
    (waiting on a spin), and batch crashes (§7.1).

    Beyond the paper's per-process model, plans can fire {e system-wide}
    crashes — the failure model of Jayanti–Jayanti–Joshi (arXiv
    2302.00748): every process's continuation is erased at one engine
    step, NVRAM cells persist, and all processes restart through their
    recovery sections ({!system_at}, {!system_random}, {!system_storm}).

    Plans are stateful values; build a fresh plan for every run. *)

type point = Before | After

type decision = No_crash | Crash of point

(** What a plan sees about the instruction about to execute. *)
type op_info = {
  pid : int;
  step : int;  (** global step counter *)
  op_index : int;
      (** per-process instruction counter, counted from the start of the
          run.  The counter is {e not} reset by a crash: it keeps
          incrementing across restarts, so the [nth] of {!at_op} addresses
          one absolute point in the process's whole execution, restarts
          included (pinned by the "op_index continues across restarts"
          test in [test/test_sim.ml]). *)
  kind : Api.kind;
  cell : string option;  (** name of the touched cell, if any *)
  note : Event.note option;  (** payload when [kind = Note] *)
  unsafe_wrt : int list;
      (** ids of the locks whose sensitive window ({!Api.fas_open_unsafe} …
          {!Api.write_close_unsafe}) the process has open as this
          instruction is about to execute — the engine's view {e before}
          the instruction is applied.  Non-empty means "crashing this
          process right now is an unsafe failure" (§2.2), which is what an
          execution-aware adversary needs to aim at the window. *)
}

type t

(** How a plan's firing decisions relate to the schedule, consulted by the
    explorer's partial-order reduction ({!Rme_check.Explore}).

    [Robust victims]: every decision is a pure function of the observed
    process's own instruction history (its op indices, kinds, cells, notes),
    so commuting independent steps of {e other} processes cannot move a
    crash, and only the pids in [victims] can ever be struck.

    [Sensitive]: decisions read schedule-dependent state — the global step
    counter ({!async_at}, {!batch}, {!storm}), a shared RNG consumed in
    cross-process op order ({!random} over several pids, {!fas_gap},
    {!target_holder}, {!target_window}), or similar.  Reordering even
    commuting steps can change where such a plan fires, so the reduction
    disables itself. *)
type por_class = Robust of int list | Sensitive

val label : t -> string

val on_op : t -> op_info -> decision

val async : t -> step:int -> int list
(** Pids to crash right now, whatever they are doing (even parked). *)

val system : t -> step:int -> bool
(** [true] to crash the {e whole system} right now: every process's
    continuation is discarded (parked spinners included), shared memory
    persists, and every process restarts its body.  Consulted once per
    engine iteration, after the per-process [async] crashes. *)

val por_class : t -> por_class

(** {1 Constructors} *)

val none : t

val at_op : pid:int -> nth:int -> point -> t
(** Crash [pid] at its [nth] instruction (0-based, counted across restarts). *)

val on_kind : pid:int -> kind:Api.kind -> occurrence:int -> point -> t
(** Crash [pid] around the [occurrence]-th (0-based) instruction of [kind]
    it executes.  [on_kind ~pid:3 ~kind:Fas ~occurrence:0 After] is "p3
    crashes immediately after its first FAS" — the Figure 1 scenario. *)

val on_cell : pid:int -> cell:string -> occurrence:int -> point -> t
(** Crash [pid] around its [occurrence]-th access to any cell named [cell]. *)

val on_custom_note : pid:int -> tag:string -> occurrence:int -> point -> t
(** Crash [pid] around its [occurrence]-th [Custom tag] note. *)

val random : seed:int -> rate:float -> max_crashes:int -> ?pids:int list -> unit -> t
(** Each instruction of an eligible process crashes with probability [rate]
    (point chosen uniformly Before/After), until [max_crashes] crashes have
    fired in total.  The budget keeps histories fair (finitely many crashes
    per super-passage, as SF requires). *)

val fas_gap :
  seed:int -> rate:float -> max_crashes:int -> ?cell_suffix:string -> unit -> t
(** Crash any process immediately after a FAS on a cell whose name ends with
    [cell_suffix] (default ["filter.tail"]), with probability [rate] per
    such FAS, up to [max_crashes] total — i.e. generate {e unsafe} failures
    with respect to the filter locks.  This is the adversary of the
    adaptivity experiments: the number of crashes fired is exactly the F of
    Theorems 5.17–5.19. *)

val async_at : (int * int) list -> t
(** [async_at [(step, pid); ...]]: crash [pid] at the first engine iteration
    whose global step is ≥ [step].  Reaches parked processes. *)

val batch : step:int -> pids:int list -> t
(** A batch failure (§7.1): all [pids] crash simultaneously at [step]. *)

val every_nth_passage : pid:int -> period:int -> max_crashes:int -> t
(** Crash [pid] just after the [Req_begin] of every [period]-th passage —
    a steady per-process failure pulse used by the adaptivity sweeps. *)

(** {1 Adaptive adversaries}

    Execution-observing plans: rather than firing at fixed sites or blindly
    at random, they watch the milestones and window state carried by
    {!op_info} and aim where the algorithms are most exposed.  All are
    seeded and deterministic (given a deterministic scheduler), and all
    decide through [on_op] only — never asynchronously — so every crash
    they fire can be replayed exactly by an {!at_op} plan (see
    {!record_fired}). *)

val target_holder : ?lock:int -> seed:int -> rate:float -> max_crashes:int -> unit -> t
(** Crash processes only while they are inside a lock's acquire→release
    span — from [Lock_enter] to [Lock_released], i.e. the acquisition hot
    path, the critical section, and the handoff — with probability [rate]
    per instruction (point uniformly Before/After), up to [max_crashes].
    [lock] restricts the tracking to one lock id (default: any registered
    lock).  This is the "kill the holder" adversary: it concentrates
    failures on queue surgery, ownership transfer, and the sensitive FAS
    that all live inside the span. *)

val target_window : seed:int -> rate:float -> max_crashes:int -> unit -> t
(** Crash a process with probability [rate] per instruction it executes
    {e while one of its sensitive windows is open} ([unsafe_wrt] ≠ []) —
    every crash this plan fires is an unsafe failure.  Crashes strike
    [Before] the instruction so they always land strictly inside the
    window.  This is the worst-case adversary of Theorem 4.2 (weak locks
    may break) and the failure currency of Theorems 5.17–5.19. *)

val repeat_offender : victim:int -> gap:int -> times:int -> t
(** Failures during recovery (§2.2 allows them; most RME papers' hard
    case): crash [victim] just after the [Req_begin] of its first passage,
    then re-crash it [gap] instructions into {e every} restarted passage,
    [times] crashes in total.  Deterministic — no RNG.  A recoverable lock
    must absorb the whole pulse train and still satisfy the victim's
    request once the budget is exhausted. *)

val storm :
  seed:int ->
  rate:float ->
  max_crashes:int ->
  gap:int ->
  ?backoff:float ->
  ?pids:int list ->
  unit ->
  t
(** Like {!random} but with a cooldown schedule: after each crash, no
    further crash fires for [gap] global steps, and each firing multiplies
    the current gap by [backoff] (default 1.0 — constant gap; must be
    ≥ 1).  Models failure bursts that thin out over time, the regime where
    BA-Lock's level budgets are meant to recover. *)

(** {1 System-wide crashes}

    The Jayanti–Jayanti–Joshi model (arXiv 2302.00748): at one engine
    iteration {e every} process loses its continuation simultaneously —
    running, ready, and parked processes alike — while NVRAM persists;
    everyone then restarts through its recovery section.  All system plans
    decide on the global step counter, so they are all [Sensitive]: the
    explorer's partial-order reduction disables itself under them. *)

val system_at : step:int -> t
(** One system-wide crash, at the first engine iteration whose global step
    is ≥ [step]. *)

val system_random : seed:int -> rate:float -> max_crashes:int -> unit -> t
(** Each engine iteration crashes the whole system with probability
    [rate], up to [max_crashes] system crashes in total. *)

val system_storm :
  seed:int -> rate:float -> max_crashes:int -> gap:int -> ?backoff:float -> unit -> t
(** Like {!system_random} but with {!storm}'s cooldown schedule: after
    each system crash no further one fires for the current gap (initially
    [gap] global steps), and each firing multiplies the gap by [backoff]
    (default 1.0; must be ≥ 1) — correlated datacenter-style failure
    bursts that thin out over time. *)

(** {1 Recording and replay} *)

type fired = {
  f_pid : int;
      (** the struck pid; [-1] for a system-wide crash (all pids) *)
  f_op_index : int;
      (** absolute per-process index — the [nth] of {!at_op}; [-1] when
          [f_async] (asynchronous crashes strike between instructions) *)
  f_step : int;  (** global step at which the crash fired *)
  f_point : point;  (** [Before] for asynchronous and system crashes *)
  f_async : bool;
      (** [true] iff the crash fired through [async] or [system] rather
          than [on_op] — replayed by step, not by op index *)
}
(** One crash actually fired by a plan, identified by the coordinates that
    make it deterministically replayable. *)

val record_fired : t -> t * (unit -> fired list)
(** [record_fired plan] wraps [plan] so {e every} crash it fires is
    captured — through [on_op], [async] ([f_async] with the victim's pid)
    and [system] ([f_async] with [f_pid = -1]) alike; the returned thunk
    lists them in firing order.  The record is complete for any plan, so
    {!replay_fired} reproduces any adversary's run. *)

val replay_fired : fired list -> t
(** The deterministic composite of a recorded run: one {!at_op} per
    synchronous crash, one {!async_at} per asynchronous one, one
    {!system_at} per system-wide one, unioned.  Under the same scheduler
    decisions it re-injects exactly the same failures — the bridge from
    adversarial discovery to a fixed, shrinkable witness. *)

val all : t list -> t
(** Union of plans; the first [on_op] crash decision wins, [async] pids are
    concatenated, and [system] fires if any member does (every member is
    consulted each iteration, so stateful plans keep winding). *)
