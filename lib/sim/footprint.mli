(** Access footprints for partial-order reduction.

    One unboxed int per pending step, recording the stepping pid, the shared
    location it touches, and the access class.  The explorer's sleep-set
    reduction (see {!Rme_check.Explore}) consults {!independent} to decide
    whether two steps of different processes commute; the relation is
    conservative, so every "maybe" answers dependent and only true
    commutation is pruned. *)

type t = private int

val local : pid:int -> t
(** A step that touches no shared state (the initial dispatch of a process
    body, per-process segment notes, yields). *)

val waiting : pid:int -> Cell.t -> t
(** Pending step of a woken waiter: a re-check of its spin cell (write
    class — parking and unparking do not commute with accesses to the
    cell). *)

val of_view : pid:int -> crashy:bool -> 'a Api.view -> t
(** Footprint of a suspended operation.  [crashy] marks steps of processes
    the crash plan may strike: such a step may additionally run crash
    teardown (closing the CS, releasing held locks), which conflicts with
    the CS/lock pseudo-cells and with other crashy steps. *)

val pid : t -> int

val crashy : t -> bool

val independent : t -> t -> bool
(** [independent a b] holds when swapping adjacent steps with footprints [a]
    and [b] (of different pids) provably preserves the final engine state
    and every aggregate statistic a check can observe.  Read/read on the
    same cell commutes; anything involving a write, RMW, or park/unpark on
    that cell does not.  Segment and lock lifecycle notes are treated as
    writes to per-concern pseudo-cells because they move running maxima
    ([cs_max], lock occupancy). *)

val pp : t Fmt.t

(** Happens-before / race-reversal analysis over the executed steps of one
    complete run — the oracle behind the explorer's source-set dynamic
    partial-order reduction (see {!Rme_check.Explore}). *)
module Race : sig
  val scan :
    n:int ->
    len:int ->
    executed:(int -> t) ->
    degree:(int -> int) ->
    emit:(pos:int -> pid:int -> unit) ->
    unit
  (** [scan ~n ~len ~executed ~degree ~emit] computes the happens-before
      relation of a run of [len] decision positions ([executed i] is the
      footprint of the step taken at position [i]) with per-process vector
      clocks, finds every {e reversible race} — dependent steps [(k, j)],
      [k < j], of different processes with no intervening happens-before
      chain — and calls [emit ~pos:k ~pid] for each race at a branching
      position ([degree k > 1]).  [pid] is the process whose scheduling at
      [k] starts the reversed execution: the process of the first step
      after [k] that is not happens-after step [k] (an initial of the
      reversal, in DPOR terms), defaulting to the racing step's process.
      The dependence oracle is {!independent}, so every conservative
      "dependent" answer can only add emitted demands, never hide one.
      O([len] · [n]) plus the per-race initial walks. *)
end
