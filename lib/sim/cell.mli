(** Shared-memory cells.

    A cell is one word of simulated shared memory holding an [int].  Every
    shared variable of a lock algorithm — [tail], the per-process [state],
    [mine] and [pred] entries, queue-node fields — is one cell.

    Under the DSM memory model each cell lives in the memory module of one
    process (its {e home}); operations by other processes on it are remote
    memory references.  Cells with home {!global} live on a dedicated memory
    node and are remote to every process, which is the standard treatment of
    global variables such as the MCS [tail] pointer. *)

type t = private { id : int; name : string; home : int }

val global : int
(** Home value meaning "remote to every process". *)

val make : id:int -> name:string -> home:int -> t
(** Used by {!Memory.alloc}; not intended for direct use. *)

val pp : t Fmt.t

val equal : t -> t -> bool
