type seg = Ncs_begin | Req_begin | Cs_begin | Cs_end | Req_done

type note =
  | Seg of seg
  | Lock_enter of int
  | Lock_acquired of int
  | Lock_release of int
  | Lock_released of int
  | Level of int
  | Path of int * bool
  | Abort_signal
  | Abort_request of int
  | Abort_done of int
  | Abort_lost_race of int
  | Custom of string

type t =
  | Note of { step : int; pid : int; super : int; note : note }
  | Crash of {
      step : int;
      pid : int;
      super : int;
      unsafe_wrt : int list;
      holding : int list;
      in_passage : bool;
    }
  | Sys_crash of { step : int }
      (* the whole system crashed at [step]; the per-process [Crash] events
         recorded just after it carry each victim's circumstances *)
  | Op of { step : int; pid : int; kind : string; cell : string; value : int }

let pp_seg ppf = function
  | Ncs_begin -> Fmt.string ppf "ncs"
  | Req_begin -> Fmt.string ppf "req-begin"
  | Cs_begin -> Fmt.string ppf "cs-begin"
  | Cs_end -> Fmt.string ppf "cs-end"
  | Req_done -> Fmt.string ppf "req-done"

let pp_note ppf = function
  | Seg s -> pp_seg ppf s
  | Lock_enter id -> Fmt.pf ppf "lock[%d].enter" id
  | Lock_acquired id -> Fmt.pf ppf "lock[%d].acquired" id
  | Lock_release id -> Fmt.pf ppf "lock[%d].release" id
  | Lock_released id -> Fmt.pf ppf "lock[%d].released" id
  | Level l -> Fmt.pf ppf "level=%d" l
  | Path (l, fast) -> Fmt.pf ppf "path[%d]=%s" l (if fast then "fast" else "slow")
  | Abort_signal -> Fmt.string ppf "abort-signal"
  | Abort_request id -> Fmt.pf ppf "lock[%d].abort-request" id
  | Abort_done id -> Fmt.pf ppf "lock[%d].abort-done" id
  | Abort_lost_race id -> Fmt.pf ppf "lock[%d].abort-lost-race" id
  | Custom s -> Fmt.string ppf s

let pp ppf = function
  | Note { step; pid; super; note } -> Fmt.pf ppf "@[%6d p%d/%d %a@]" step pid super pp_note note
  | Crash { step; pid; super; unsafe_wrt; holding; in_passage } ->
      Fmt.pf ppf "@[%6d p%d/%d CRASH unsafe=%a holding=%a%s@]" step pid super
        Fmt.(Dump.list int)
        unsafe_wrt
        Fmt.(Dump.list int)
        holding
        (if in_passage then " (in passage)" else "")
  | Sys_crash { step } -> Fmt.pf ppf "@[%6d *** SYSTEM CRASH ***@]" step
  | Op { step; pid; kind; cell; value } -> Fmt.pf ppf "@[%6d p%d %s %s =%d@]" step pid kind cell value

let step = function
  | Note { step; _ } -> step
  | Crash { step; _ } -> step
  | Sys_crash { step } -> step
  | Op { step; _ } -> step

(* [-1] for [Sys_crash]: a system crash belongs to no single process. *)
let pid = function
  | Note { pid; _ } -> pid
  | Crash { pid; _ } -> pid
  | Sys_crash _ -> -1
  | Op { pid; _ } -> pid

(* The engine's event sink: the policy deciding what happens to each event
   the engine emits is fixed when the sink is built, so the hot loop pays a
   single physical-equality test ([wants]) instead of an unconditional
   record allocation + Vec push per event. *)
module Sink = struct
  type event = t

  type t =
    | Drop
    | Keep of event Vec.t
    | Ring of { buf : event array; mutable pos : int; mutable total : int }
    | Callback of { f : event -> unit; mutable delivered : int }

  (* Shared constant: Drop carries no state, so one value serves every
     engine in every domain. *)
  let drop = Drop

  let keep () = Keep (Vec.create ())

  (* The ring stores the last [capacity] events; slots start as a dummy
     that is never read (only indices below [min total capacity] are). *)
  let ring ~capacity =
    if capacity <= 0 then invalid_arg "Event.Sink.ring: capacity must be positive";
    Ring { buf = Array.make capacity (Sys_crash { step = -1 }); pos = 0; total = 0 }

  let callback f = Callback { f; delivered = 0 }

  let wants = function Drop -> false | Keep _ | Ring _ | Callback _ -> true

  let emit t ev =
    match t with
    | Drop -> ()
    | Keep v -> Vec.push v ev
    | Ring r ->
        r.buf.(r.pos) <- ev;
        r.pos <- (r.pos + 1) mod Array.length r.buf;
        r.total <- r.total + 1
    | Callback c ->
        c.delivered <- c.delivered + 1;
        c.f ev

  let emitted = function
    | Drop -> 0
    | Keep v -> Vec.length v
    | Ring r -> r.total
    | Callback c -> c.delivered

  let events = function
    | Drop | Callback _ -> []
    | Keep v -> Vec.to_list v
    | Ring r ->
        let cap = Array.length r.buf in
        let len = min r.total cap in
        (* Oldest retained event first: it sits at [pos] once the ring has
           wrapped, at 0 before. *)
        let start = if r.total <= cap then 0 else r.pos in
        List.init len (fun i -> r.buf.((start + i) mod cap))

  let clear = function
    | Drop -> ()
    | Keep v -> Vec.clear v
    | Ring r ->
        r.pos <- 0;
        r.total <- 0
    | Callback c -> c.delivered <- 0

  (* Internal (engine checkpointing): the Keep policy's backing buffer. *)
  let buffer = function Keep v -> Some v | Drop | Ring _ | Callback _ -> None
end
