type seg = Ncs_begin | Req_begin | Cs_begin | Cs_end | Req_done

type note =
  | Seg of seg
  | Lock_enter of int
  | Lock_acquired of int
  | Lock_release of int
  | Lock_released of int
  | Level of int
  | Path of int * bool
  | Abort_signal
  | Abort_request of int
  | Abort_done of int
  | Abort_lost_race of int
  | Custom of string

type t =
  | Note of { step : int; pid : int; super : int; note : note }
  | Crash of {
      step : int;
      pid : int;
      super : int;
      unsafe_wrt : int list;
      holding : int list;
      in_passage : bool;
    }
  | Sys_crash of { step : int }
      (* the whole system crashed at [step]; the per-process [Crash] events
         recorded just after it carry each victim's circumstances *)
  | Op of { step : int; pid : int; kind : string; cell : string; value : int }

let pp_seg ppf = function
  | Ncs_begin -> Fmt.string ppf "ncs"
  | Req_begin -> Fmt.string ppf "req-begin"
  | Cs_begin -> Fmt.string ppf "cs-begin"
  | Cs_end -> Fmt.string ppf "cs-end"
  | Req_done -> Fmt.string ppf "req-done"

let pp_note ppf = function
  | Seg s -> pp_seg ppf s
  | Lock_enter id -> Fmt.pf ppf "lock[%d].enter" id
  | Lock_acquired id -> Fmt.pf ppf "lock[%d].acquired" id
  | Lock_release id -> Fmt.pf ppf "lock[%d].release" id
  | Lock_released id -> Fmt.pf ppf "lock[%d].released" id
  | Level l -> Fmt.pf ppf "level=%d" l
  | Path (l, fast) -> Fmt.pf ppf "path[%d]=%s" l (if fast then "fast" else "slow")
  | Abort_signal -> Fmt.string ppf "abort-signal"
  | Abort_request id -> Fmt.pf ppf "lock[%d].abort-request" id
  | Abort_done id -> Fmt.pf ppf "lock[%d].abort-done" id
  | Abort_lost_race id -> Fmt.pf ppf "lock[%d].abort-lost-race" id
  | Custom s -> Fmt.string ppf s

let pp ppf = function
  | Note { step; pid; super; note } -> Fmt.pf ppf "@[%6d p%d/%d %a@]" step pid super pp_note note
  | Crash { step; pid; super; unsafe_wrt; holding; in_passage } ->
      Fmt.pf ppf "@[%6d p%d/%d CRASH unsafe=%a holding=%a%s@]" step pid super
        Fmt.(Dump.list int)
        unsafe_wrt
        Fmt.(Dump.list int)
        holding
        (if in_passage then " (in passage)" else "")
  | Sys_crash { step } -> Fmt.pf ppf "@[%6d *** SYSTEM CRASH ***@]" step
  | Op { step; pid; kind; cell; value } -> Fmt.pf ppf "@[%6d p%d %s %s =%d@]" step pid kind cell value

let step = function
  | Note { step; _ } -> step
  | Crash { step; _ } -> step
  | Sys_crash { step } -> step
  | Op { step; _ } -> step

(* [-1] for [Sys_crash]: a system crash belongs to no single process. *)
let pid = function
  | Note { pid; _ } -> pid
  | Crash { pid; _ } -> pid
  | Sys_crash _ -> -1
  | Op { pid; _ } -> pid
