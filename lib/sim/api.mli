(** The instruction set available to simulated processes.

    Lock implementations and process bodies call these functions; each one
    performs an effect that suspends the process and hands control to the
    engine, which applies the instruction to shared memory, charges RMRs,
    and may inject a crash immediately before or after it (§2.2 of the
    paper).

    The functions in this module must only be called from inside a process
    body running under {!Engine.run}. *)

(** Condition for local-spin waiting.  [Pred] carries an arbitrary
    host-level predicate, re-evaluated by the engine on every wake. *)
type cond = Eq of int | Ne of int | Ge of int | Pred of (int -> bool)

val cond_holds : cond -> int -> bool

(** Static classification of instructions, visible to crash plans and
    tracing. *)
type kind = Read | Write | Cas | Fas | Faa | Spin | Note | Nop

val pp_kind : kind Fmt.t

(** The engine-side view of a suspended instruction. *)
type _ view =
  | V_read : Cell.t -> int view
  | V_write : Cell.t * int -> unit view
  | V_cas : Cell.t * int * int -> bool view
  | V_fas : Cell.t * int -> int view
  | V_fas_open_unsafe : int * Cell.t * int -> int view
      (** FAS that opens lock [id]'s sensitive window (the WR-Lock append,
          Algorithm 2 line "FAS(tail, mine\[i\])"). *)
  | V_fas_persist : Cell.t * int * Cell.t -> unit view
      (** Atomic FAS-and-persist-result, the stronger instruction used by the
          [kport] substitution (DESIGN.md S1). *)
  | V_write_close_unsafe : int * Cell.t * int -> unit view
      (** Write that closes lock [id]'s sensitive window (persisting the FAS
          result into [pred]). *)
  | V_faa : Cell.t * int -> int view
  | V_spin : Cell.t * cond -> unit view
  | V_spin_abortable : Cell.t * cond -> unit view
      (** Like [V_spin] but also completes — with the condition possibly
          still false — when the spinning process carries a pending abort
          signal.  Follow with {!poll_abort} to tell the two wake reasons
          apart. *)
  | V_note : Event.note -> unit view
  | V_get_done : int view
  | V_get_step : int view
  | V_poll_abort : bool view
  | V_yield : unit view

exception Abort_signal
(** Raised by abortable lock [acquire] code when it observes a pending
    abort signal (via {!poll_abort} after {!spin_abortable}); caught by the
    harness body, which then runs the lock's [try_abort] protocol.  Never
    raised by the engine itself. *)

val kind_of_view : 'a view -> kind

val cell_of_view : 'a view -> Cell.t option

type _ Effect.t += Instr : 'a view -> 'a Effect.t
(** The single effect simulated processes perform; handled by {!Engine}. *)

(** {1 Instructions} *)

val read : Cell.t -> int

val write : Cell.t -> int -> unit

val cas : Cell.t -> expect:int -> value:int -> bool
(** Returns [true] iff the swap happened. *)

val fas : Cell.t -> int -> int
(** Atomically stores the argument and returns the previous contents. *)

val faa : Cell.t -> int -> int
(** Atomically adds and returns the previous contents. *)

val fas_open_unsafe : lock:int -> Cell.t -> int -> int
(** Like {!fas} but marks the executing process as inside lock [lock]'s
    sensitive window: a crash from immediately after this instruction until
    the matching {!write_close_unsafe} is an {e unsafe failure} with respect
    to that lock (Definition 3.4). *)

val write_close_unsafe : lock:int -> Cell.t -> int -> unit
(** Like {!write} but closes the sensitive window opened by
    {!fas_open_unsafe}: a crash after this instruction is safe again. *)

val fas_persist : Cell.t -> int -> dst:Cell.t -> unit
(** Atomically [dst := FAS(cell, v)].  Not available on commodity hardware;
    used only by the [kport] base-lock substitution, see DESIGN.md S1. *)

val spin_until : Cell.t -> cond -> unit
(** Local-spin wait until the cell satisfies [cond].  The engine parks the
    process and wakes it when a write makes the condition true; RMR
    accounting charges the initial fetch and one re-fetch per wake, which is
    the standard O(1)-per-handoff cost of local spinning. *)

val spin_abortable : Cell.t -> cond -> unit
(** Local-spin wait that an abort signal can interrupt: parks like
    {!spin_until} but additionally wakes (and returns) when the engine has
    flagged the process for abort.  On return the condition may still be
    false — call {!poll_abort} and raise {!Abort_signal} to hand control to
    the abort protocol.  RMR accounting is identical to {!spin_until}. *)

val poll_abort : unit -> bool
(** [true] iff the calling process carries a pending (unresolved) abort
    signal.  Free: no RMRs, but a scheduling point. *)

val note : Event.note -> unit
(** Emit a history event (free: no RMRs, but it is a scheduling point). *)

val completed_requests : unit -> int
(** Number of satisfied requests of the calling process, tracked by the
    engine as recoverable application state (it survives crashes). *)

val step : unit -> int
(** The current global engine step — simulated time.  Free: no RMRs, but a
    scheduling point.  Open-loop workload generators pace arrivals against
    it ([while Api.step () < due do Api.yield () done]). *)

val yield : unit -> unit
(** A pure scheduling point: lets the scheduler interleave (and the crash
    plan strike) between two local computations. *)
