(** Simulated shared memory with RMR accounting.

    The store maps cells to integer contents and implements the atomic
    instructions of the paper's model (read, write, CAS, FAS — §2.6 — plus
    fetch-and-add for auxiliary counters).  Every operation returns the
    number of remote memory references it incurred under the configured
    memory model (§2.5):

    - {b CC}: a central memory plus per-process caches.  A read hits the
      cache unless the cell was written since the process last fetched it;
      a miss costs one RMR and refreshes the cache.  Writes, CAS and FAS go
      to the central memory (one RMR each) and invalidate the other
      processes' cached copies.
    - {b DSM}: each cell lives on its home node; an operation costs one RMR
      iff the executing process is not the home.

    Contents persist across simulated crashes — this is the NVRAM
    assumption of the paper's failure model (§2.2). *)

type model = CC | DSM

val pp_model : model Fmt.t

val model_of_string : string -> model option

type t

val create : model -> n:int -> t
(** [create model ~n] is an empty store for [n] processes. *)

val model : t -> model

val n : t -> int

val alloc : t -> ?home:int -> name:string -> int -> Cell.t
(** [alloc t ~home ~name v] allocates a fresh cell with initial contents [v].
    [home] defaults to {!Cell.global}.  Allocation happens during lock
    construction (outside any simulated execution) and costs no RMRs. *)

val cell_count : t -> int

val peek : t -> Cell.t -> int
(** [peek t c] reads [c] without any accounting — for checkers, printers and
    tests, never for algorithm steps. *)

val poke : t -> Cell.t -> int -> unit
(** [poke t c v] writes [c] without accounting (test setup only). *)

val forget : t -> pid:int -> unit
(** [forget t ~pid] drops every cache line of [pid] — called by the engine
    when the process crashes, since a restart begins with a cold cache. *)

(** {1 Checkpoints}

    Point-in-time images of the store, used by the engine's run
    checkpoints (the parallel explorer's prefix-elimination). *)

type image

val snapshot : t -> image
(** [snapshot t] copies the current contents, write versions and cache
    validity rows of every allocated cell.  O(cells · n). *)

val restore : t -> image -> unit
(** [restore t img] overwrites [t]'s contents, versions and cache rows with
    the image's.  [t] must hold exactly the cells it held when [img] was
    taken (same count, in allocation order) — the engine guarantees this by
    replaying the deterministic allocation history before restoring.
    @raise Invalid_argument when the cell counts differ. *)

val fingerprint : t -> int
(** [fingerprint t] is a one-word digest of everything {!snapshot} would
    copy: contents, write versions and cache validity rows.  Equal stores
    have equal fingerprints; the converse holds only up to hash collisions,
    so callers deduplicating on it (the explorer's state cache) must ensure
    a collision can only cost duplicated work, never a verdict.
    O(cells · n), no allocation. *)

(** {1 Accounted operations}

    Each returns [(result, rmrs)] where [rmrs] ∈ {0, 1}. *)

val read : t -> pid:int -> Cell.t -> int * int

val write : t -> pid:int -> Cell.t -> int -> int
(** Returns the RMR count. *)

val cas : t -> pid:int -> Cell.t -> expect:int -> value:int -> bool * int

val fas : t -> pid:int -> Cell.t -> int -> int * int

val faa : t -> pid:int -> Cell.t -> int -> int * int
(** Fetch-and-add; returns the previous contents. *)

(** {1 Unboxed accounted operations}

    Same accounting as the tuple API above, but the result comes back bare
    and the RMR cost is left in {!last_cost} — the engine's hot loop uses
    these to avoid one tuple allocation per instruction.  [last_cost] is
    scratch state, not part of {!snapshot}/{!fingerprint}; read it before
    the next accounted operation overwrites it. *)

val read_u : t -> pid:int -> Cell.t -> int

val cas_u : t -> pid:int -> Cell.t -> expect:int -> value:int -> bool

val fas_u : t -> pid:int -> Cell.t -> int -> int

val faa_u : t -> pid:int -> Cell.t -> int -> int

val last_cost : t -> int
(** RMR cost of the most recent [*_u] operation. *)
