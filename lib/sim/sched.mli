(** Schedulers: who takes the next step.

    Processes run at arbitrary speeds and interleave arbitrarily (§2.1); the
    scheduler is the adversary that chooses the interleaving.  All
    schedulers here are fair over runnable processes, as the starvation-
    freedom property requires of fair histories. *)

type t

val label : t -> string

val pick : t -> runnable:int array -> step:int -> int
(** [pick t ~runnable ~step] chooses one pid from [runnable] (non-empty). *)

val round_robin : unit -> t
(** Cycles through the processes in pid order. *)

val random : seed:int -> t
(** Uniform choice among runnable processes (fair with probability 1). *)

val greedy : unit -> t
(** Runs the lowest runnable pid until it blocks — an extreme (still fair in
    bounded runs) schedule that maximises solo bursts. *)

val burst : seed:int -> len:int -> t
(** Runs a randomly chosen process for up to [len] consecutive steps before
    switching — a convoy-forming adversary that stresses hand-off paths. *)

val trace : decisions:int Vec.t -> record:int Vec.t -> t
(** Replay scheduler for the bounded explorer: the [i]-th pick takes
    [decisions.(i)] as an index into the sorted runnable set (0 when the
    trace is exhausted) and appends the size of the runnable set to
    [record], letting the explorer enumerate sibling branches. *)
