(** Schedulers: who takes the next step.

    Processes run at arbitrary speeds and interleave arbitrarily (§2.1); the
    scheduler is the adversary that chooses the interleaving.  All
    schedulers here are fair over runnable processes, as the starvation-
    freedom property requires of fair histories. *)

type t

val label : t -> string

val pick : t -> runnable:int array -> step:int -> int
(** [pick t ~runnable ~step] chooses one pid from [runnable] (non-empty). *)

val round_robin : unit -> t
(** Cycles through the processes in pid order. *)

val random : seed:int -> t
(** Uniform choice among runnable processes (fair with probability 1). *)

val greedy : unit -> t
(** Runs the lowest runnable pid until it blocks — an extreme (still fair in
    bounded runs) schedule that maximises solo bursts. *)

val burst : seed:int -> len:int -> t
(** Runs a randomly chosen process for up to [len] consecutive steps before
    switching — a convoy-forming adversary that stresses hand-off paths. *)

val recording : inner:t -> decisions:int Vec.t -> t
(** Delegates every pick to [inner] and appends the chosen pid's index into
    the {e sorted} runnable set to [decisions] — the same encoding {!trace}
    consumes.  A run scheduled by [recording ~inner] followed by a replay
    under [trace ~decisions] takes the identical schedule, which is how the
    chaos campaign turns a random adversarial discovery into a
    deterministic, shrinkable witness. *)

exception Unfaithful of { position : int; choice : int; degree : int }
(** Raised by a [strict] trace scheduler when [decisions.(position)] is not a
    valid index into a runnable set of size [degree]. *)

val trace :
  ?mismatch:bool ref -> ?strict:bool -> decisions:int Vec.t -> record:int Vec.t -> unit -> t
(** Replay scheduler for the bounded explorer: the [i]-th pick takes
    [decisions.(i)] as an index into the sorted runnable set (0 when the
    trace is exhausted) and appends the size of the runnable set to
    [record], letting the explorer enumerate sibling branches.

    A decision outside the observed branching degree means the replay has
    diverged from the run the vector was recorded against (shrinking can
    shift degrees).  The pick still resolves — the index is reduced modulo
    the degree — but the divergence sets [mismatch] (when supplied) so the
    caller can reject the replay as unfaithful; with [strict], it raises
    {!Unfaithful} instead. *)
