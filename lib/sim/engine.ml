exception Crashed
(* Raised into a fiber to simulate the loss of its private state. *)

module Ctx = struct
  type t = { mem : Memory.t; lock_names : string Vec.t }

  let memory t = t.mem

  let n t = Memory.n t.mem

  let register_lock t name =
    Vec.push t.lock_names name;
    Vec.length t.lock_names - 1
end

type passage = { super : int; rmr : int; completed : bool; latency : int }

type proc_stats = { passages : passage list; crashes : int; completed : int; max_level : int }

type lock_stats = { lock_name : string; max_occupancy : int; unsafe_crashes : int }

(* How one delivered abort signal resolved. *)
type abort_result = Res_aborted | Res_lost_race | Res_acquired | Res_crashed | Res_pending

type abort_stat = {
  ab_pid : int;
  ab_signal_step : int;
  ab_op_index : int;  (* victim op index of an on-op signal; -1 for async *)
  ab_resolved_step : int;  (* -1 while pending *)
  ab_own_steps : int;  (* victim's own steps from signal to resolution *)
  ab_rmr : int;  (* RMRs the victim incurred between signal and resolution *)
  ab_result : abort_result;
}

let pp_abort_result ppf r =
  Fmt.string ppf
    (match r with
    | Res_aborted -> "aborted"
    | Res_lost_race -> "lost-race"
    | Res_acquired -> "acquired"
    | Res_crashed -> "crashed"
    | Res_pending -> "pending")

type stall_kind = Deadlock | Livelock | Starvation | Underbudget

type stall = { stall_kind : stall_kind; culprits : (int * string) list }

let pp_stall_kind ppf = function
  | Deadlock -> Fmt.string ppf "deadlock"
  | Livelock -> Fmt.string ppf "livelock"
  | Starvation -> Fmt.string ppf "starvation"
  | Underbudget -> Fmt.string ppf "underbudget"

let pp_stall ppf s =
  Fmt.pf ppf "%a: %a" pp_stall_kind s.stall_kind
    Fmt.(list ~sep:(any ", ") (fun ppf (pid, seg) -> pf ppf "p%d[%s]" pid seg))
    s.culprits

type result = {
  steps : int;
  total_rmr : int;
  rmr_by_kind : (Api.kind * int) list;
  total_crashes : int;
  system_crashes : int;
  procs : proc_stats array;
  locks : lock_stats array;
  cs_max : int;
  deadlocked : bool;
  timed_out : bool;
  stall : stall option;
  aborts : abort_stat list;
  events : Event.t list;
}

type status = Stopped | Suspended : 'a Api.view * ('a, status) Effect.Deep.continuation -> status

type parked = {
  pk : (unit, status) Effect.Deep.continuation;
  pcell : Cell.t;
  pcond : Api.cond;
  pabort : bool;  (* abortable park: an abort signal also wakes it *)
}

type pstate = Start | Ready of status | Parked of parked | Woken of parked | Halted

(* Run journal, the raw material of checkpoints.  One-shot effect
   continuations cannot be copied, so a checkpoint cannot snapshot the
   fibers themselves; instead the engine logs, in global resolution order,
   every event that advanced a fiber — a body dispatch, the answer fed to a
   suspended instruction, or the crash that discontinued it.  Replaying the
   log against fresh fibers ("fast-forward") rebuilds every continuation at
   the checkpointed suspension point without touching the store, the
   scheduler or the crash plan.  [jops] keeps the {!Crash.op_info} stream
   so a fresh (stateful) crash plan can be wound forward to the same
   internal state. *)
(* Journal entries are packed into an unboxed int [Vec.t], two slots per
   entry — header, then answer value — so live recording allocates nothing
   per step (amortized array growth aside) and fast-forward scans a flat
   int array.  Header layout: the low 3 bits hold the entry tag, the rest
   the pid. *)
type journal = { jents : int Vec.t; jops : Crash.op_info Vec.t }

(* FNV-style fold for the per-process answer-stream digests and the state
   key.  Stays in [0, max_int] so the digests are portable ints. *)
let hmix h x = (h lxor x) * 0x100000001b3 land max_int

let jt_dispatch = 0 (* pid's body (re)started: ran to its first suspension *)

let jt_crash = 1 (* pid's pending instruction discontinued by a crash *)

let jt_ans_unit = 2 (* pid's pending instruction resolved; answer in slot 2 *)

let jt_ans_int = 3

let jt_ans_bool = 4

type t = {
  mem : Memory.t;
  n : int;
  sched : Sched.t;
  crash : Crash.t;
  abort : Abort.t;
  has_abort : bool;  (* abort != Abort.none: gates all abort bookkeeping *)
  mutable abort_view : Abort.view;  (* oracles over this engine, built once *)
  has_crash : bool;  (* crash != Crash.none: gates the per-step plan consults *)
  sink : Event.Sink.t;
  emit : bool;  (* [Event.Sink.wants sink], cached: gates event construction *)
  consult_ops : bool;  (* build a [Crash.op_info] per instruction and consult
                          the plans/hooks; off on the fast path, where only
                          the op counter advances *)
  track_ans : bool;  (* fold answer-stream digests (journal or state keys) *)
  trace_ops : bool;
  max_steps : int;
  stall_window : int;
  on_crash : pid:int -> step:int -> unit;
  on_op : Crash.op_info -> unit;
  footprints : Footprint.t Vec.t option;
  footprint_crashy : int -> bool;
  journal : journal option;  (* when checkpointing: the resolved-effect log *)
  log_ops : bool;  (* record [jops] (skipped for the stateless Crash.none) *)
  (* Running digest of each process's journal stream (dispatches, answers,
     crash discontinuations).  A process body is a deterministic function
     of this stream, so equal digests mean equal control state — the
     private half of {!state_key}. *)
  ans_hash : int array;
  body : pid:int -> unit;
  states : pstate array;
  mutable step : int;
  op_index : int array;
  completed : int array;
  crashes : int array;
  last_progress : int array;  (* step of each pid's last satisfied request; -1 if none *)
  last_sched : int array;  (* step at which each pid last took a step; -1 if never *)
  unsafe_open : int list array;
  holding : int list array;
  (* Abort axis: a pending signal per pid, its accounting, and the entry
     oracles the plans' async decisions read.  [entry_since] holds the
     global step at which the process entered its (outermost) entry
     section, -1 outside one; [ab_streak] counts consecutive aborts of the
     current super-passage (reset on acquire / lost race / crash). *)
  ab_flag : bool array;
  ab_signal_step : int array;
  ab_op_origin : int array;
  ab_own : int array;
  ab_rmr_acc : int array;
  ab_streak : int array;
  entry_depth : int array;
  entry_since : int array;
  ab_stats : abort_stat Vec.t;
  in_passage : bool array;
  in_app_cs : bool array;
  passage_rmr : int array;
  passage_super : int array;
  passage_start : int array;
  passages : passage Vec.t array;
  level_max : int array;
  occupancy : int array;
  occupancy_max : int array;
  unsafe_crashes : int array;
  lock_names : string array;
  parked_cells : (int, unit) Hashtbl.t;  (* cell ids with parked processes *)
  (* The [Keep] sink's buffer when the sink has one, else a fresh empty
     vector — checkpoint capture blits event prefixes from it. *)
  events : Event.t Vec.t;
  (* Per-count scratch arrays for {!runnable}: [Sched.pick] implementations
     read [Array.length runnable], so each ready-set size needs an
     exact-length buffer.  Lazily allocated, reused across steps. *)
  ready_bufs : int array array;
  mutable last_rmr : int;  (* RMR cost of the last [apply_view] (scratch) *)
  rmr_by_kind : int array;  (* indexed by a dense Api.kind code *)
  mutable total_rmr : int;
  mutable system_crashes : int;
  mutable global_cs : int;
  mutable global_cs_max : int;
  mutable deadlocked : bool;
  mutable timed_out : bool;
}

(* Call sites guard with [eng.emit] *before* constructing the event, so a
   dropping sink costs neither the emit call nor the event allocation. *)
let record_event eng ev = Event.Sink.emit eng.sink ev

(* Module-level defaults so [run] can detect "no hook supplied" by physical
   equality and skip per-instruction bookkeeping that exists only to feed
   the hooks. *)
let default_on_crash ~pid:_ ~step:_ = ()

let default_on_op (_ : Crash.op_info) = ()

let handler : (unit, status) Effect.Deep.handler =
  {
    retc = (fun () -> Stopped);
    exnc = (function Crashed -> Stopped | e -> raise e);
    effc =
      (fun (type c) (eff : c Effect.t) ->
        match eff with
        | Api.Instr view ->
            Some (fun (k : (c, status) Effect.Deep.continuation) -> Suspended (view, k))
        | _ -> None);
  }

let jpush eng header value =
  if eng.track_ans then begin
    let pid = header lsr 3 in
    eng.ans_hash.(pid) <- hmix (hmix eng.ans_hash.(pid) header) value;
    match eng.journal with
    | Some j ->
        Vec.push j.jents header;
        Vec.push j.jents value
    | None -> ()
  end

(* The answer a resolved instruction fed its fiber, packed for the journal.
   GADT refinement is per-branch, so same-typed constructors cannot share
   an or-pattern. *)
let ans_tag : type a. a Api.view -> int =
 fun view ->
  match view with
  | Api.V_read _ -> jt_ans_int
  | Api.V_fas _ -> jt_ans_int
  | Api.V_fas_open_unsafe _ -> jt_ans_int
  | Api.V_faa _ -> jt_ans_int
  | Api.V_get_done -> jt_ans_int
  | Api.V_get_step -> jt_ans_int
  | Api.V_cas _ -> jt_ans_bool
  | Api.V_poll_abort -> jt_ans_bool
  | Api.V_write _ -> jt_ans_unit
  | Api.V_write_close_unsafe _ -> jt_ans_unit
  | Api.V_fas_persist _ -> jt_ans_unit
  | Api.V_note _ -> jt_ans_unit
  | Api.V_yield -> jt_ans_unit
  | Api.V_spin _ -> jt_ans_unit
  | Api.V_spin_abortable _ -> jt_ans_unit

let ans_value : type a. a Api.view -> a -> int =
 fun view res ->
  match view with
  | Api.V_read _ -> res
  | Api.V_fas _ -> res
  | Api.V_fas_open_unsafe _ -> res
  | Api.V_faa _ -> res
  | Api.V_get_done -> res
  | Api.V_get_step -> res
  | Api.V_cas _ -> Bool.to_int res
  | Api.V_poll_abort -> Bool.to_int res
  | Api.V_write _ -> 0
  | Api.V_write_close_unsafe _ -> 0
  | Api.V_fas_persist _ -> 0
  | Api.V_note _ -> 0
  | Api.V_yield -> 0
  | Api.V_spin _ -> 0
  | Api.V_spin_abortable _ -> 0

let diverged what = failwith ("Engine: journal replay divergence (" ^ what ^ ")")

let continue_ans : type a. a Api.view -> (a, status) Effect.Deep.continuation -> int -> int -> status
    =
 fun view k tag value ->
  (* No helper closures here: this runs once per journal entry and closure
     allocation on that path is measurable. *)
  match view with
  | Api.V_read _ ->
      if tag <> jt_ans_int then diverged "expected an int answer";
      Effect.Deep.continue k value
  | Api.V_fas _ ->
      if tag <> jt_ans_int then diverged "expected an int answer";
      Effect.Deep.continue k value
  | Api.V_fas_open_unsafe _ ->
      if tag <> jt_ans_int then diverged "expected an int answer";
      Effect.Deep.continue k value
  | Api.V_faa _ ->
      if tag <> jt_ans_int then diverged "expected an int answer";
      Effect.Deep.continue k value
  | Api.V_get_done ->
      if tag <> jt_ans_int then diverged "expected an int answer";
      Effect.Deep.continue k value
  | Api.V_get_step ->
      if tag <> jt_ans_int then diverged "expected an int answer";
      Effect.Deep.continue k value
  | Api.V_cas _ ->
      if tag <> jt_ans_bool then diverged "expected a bool answer";
      Effect.Deep.continue k (value <> 0)
  | Api.V_poll_abort ->
      if tag <> jt_ans_bool then diverged "expected a bool answer";
      Effect.Deep.continue k (value <> 0)
  | Api.V_write _ ->
      if tag <> jt_ans_unit then diverged "expected a unit answer";
      Effect.Deep.continue k ()
  | Api.V_write_close_unsafe _ ->
      if tag <> jt_ans_unit then diverged "expected a unit answer";
      Effect.Deep.continue k ()
  | Api.V_fas_persist _ ->
      if tag <> jt_ans_unit then diverged "expected a unit answer";
      Effect.Deep.continue k ()
  | Api.V_note _ ->
      if tag <> jt_ans_unit then diverged "expected a unit answer";
      Effect.Deep.continue k ()
  | Api.V_yield ->
      if tag <> jt_ans_unit then diverged "expected a unit answer";
      Effect.Deep.continue k ()
  | Api.V_spin _ ->
      if tag <> jt_ans_unit then diverged "expected a unit answer";
      Effect.Deep.continue k ()
  | Api.V_spin_abortable _ ->
      if tag <> jt_ans_unit then diverged "expected a unit answer";
      Effect.Deep.continue k ()

let kind_code : Api.kind -> int = function
  | Api.Read -> 0
  | Api.Write -> 1
  | Api.Cas -> 2
  | Api.Fas -> 3
  | Api.Faa -> 4
  | Api.Spin -> 5
  | Api.Note -> 6
  | Api.Nop -> 7

let kind_of_code = [| Api.Read; Api.Write; Api.Cas; Api.Fas; Api.Faa; Api.Spin; Api.Note; Api.Nop |]

(* [kind] is a required label: the optional-argument default would box
   dynamically-computed kinds in a [Some] per instruction. *)
let charge eng pid ~kind rmr =
  if rmr > 0 then begin
    eng.total_rmr <- eng.total_rmr + rmr;
    eng.rmr_by_kind.(kind_code kind) <- eng.rmr_by_kind.(kind_code kind) + rmr;
    if eng.in_passage.(pid) then eng.passage_rmr.(pid) <- eng.passage_rmr.(pid) + rmr;
    if eng.has_abort && eng.ab_flag.(pid) then
      eng.ab_rmr_acc.(pid) <- eng.ab_rmr_acc.(pid) + rmr
  end

(* Close the books on [pid]'s pending abort signal. *)
let resolve_abort eng pid result =
  if eng.ab_flag.(pid) then begin
    Vec.push eng.ab_stats
      {
        ab_pid = pid;
        ab_signal_step = eng.ab_signal_step.(pid);
        ab_op_index = eng.ab_op_origin.(pid);
        ab_resolved_step = eng.step;
        ab_own_steps = eng.ab_own.(pid);
        ab_rmr = eng.ab_rmr_acc.(pid);
        ab_result = result;
      };
    eng.ab_flag.(pid) <- false
  end

(* Deliver an abort signal.  Only a live process inside some lock's entry
   section is flagged; re-signalling a flagged victim is a no-op, so blind
   plans are harmless.  An abortable parked victim is woken so it can
   observe the flag. *)
let signal_abort eng ~origin pid =
  if pid >= 0 && pid < eng.n && eng.entry_depth.(pid) > 0 && not eng.ab_flag.(pid) then begin
    match eng.states.(pid) with
    | Halted -> ()
    | (Start | Ready _ | Parked _ | Woken _) as st ->
        eng.ab_flag.(pid) <- true;
        eng.ab_signal_step.(pid) <- eng.step;
        eng.ab_op_origin.(pid) <- origin;
        eng.ab_own.(pid) <- 0;
        eng.ab_rmr_acc.(pid) <- 0;
        if eng.emit then
          record_event eng
            (Event.Note
               { step = eng.step; pid; super = eng.completed.(pid); note = Event.Abort_signal });
        (match st with
        | Parked p when p.pabort -> eng.states.(pid) <- Woken p
        | _ -> ())
  end

let close_passage eng pid ~completed =
  if eng.in_passage.(pid) then begin
    Vec.push eng.passages.(pid)
      {
        super = eng.passage_super.(pid);
        rmr = eng.passage_rmr.(pid);
        completed;
        latency = eng.step - eng.passage_start.(pid);
      };
    eng.in_passage.(pid) <- false;
    eng.passage_rmr.(pid) <- 0
  end

let enter_lock_cs eng pid id =
  eng.holding.(pid) <- id :: eng.holding.(pid);
  eng.occupancy.(id) <- eng.occupancy.(id) + 1;
  if eng.occupancy.(id) > eng.occupancy_max.(id) then eng.occupancy_max.(id) <- eng.occupancy.(id)

let leave_lock_cs eng pid id =
  if List.mem id eng.holding.(pid) then begin
    eng.holding.(pid) <- List.filter (fun x -> x <> id) eng.holding.(pid);
    eng.occupancy.(id) <- eng.occupancy.(id) - 1
  end

let handle_note eng pid (n : Event.note) =
  if eng.emit then
    record_event eng (Event.Note { step = eng.step; pid; super = eng.completed.(pid); note = n });
  match n with
  | Seg Ncs_begin -> ()
  | Seg Req_begin ->
      (* A restart after a crash begins a new passage of the same
         super-passage: the super id is the index of the pending request.
         A crash already closed its passage; a retry after an {e abort}
         reaches here with the abandoned passage still open — close it as
         incomplete so its RMRs stay accounted per passage. *)
      close_passage eng pid ~completed:false;
      eng.in_passage.(pid) <- true;
      eng.passage_super.(pid) <- eng.completed.(pid);
      eng.passage_start.(pid) <- eng.step;
      eng.passage_rmr.(pid) <- 0
  | Seg Cs_begin ->
      if not eng.in_app_cs.(pid) then begin
        eng.in_app_cs.(pid) <- true;
        eng.global_cs <- eng.global_cs + 1;
        if eng.global_cs > eng.global_cs_max then eng.global_cs_max <- eng.global_cs
      end
  | Seg Cs_end ->
      if eng.in_app_cs.(pid) then begin
        eng.in_app_cs.(pid) <- false;
        eng.global_cs <- eng.global_cs - 1
      end
  | Seg Req_done ->
      eng.completed.(pid) <- eng.completed.(pid) + 1;
      eng.last_progress.(pid) <- eng.step;
      close_passage eng pid ~completed:true;
      if eng.has_abort then begin
        (* Defensive: a request can only finish outside every entry
           section, so clear any stale tracking. *)
        eng.entry_depth.(pid) <- 0;
        eng.entry_since.(pid) <- -1;
        eng.ab_streak.(pid) <- 0
      end
  | Lock_enter _ ->
      if eng.has_abort then begin
        if eng.entry_depth.(pid) = 0 then eng.entry_since.(pid) <- eng.step;
        eng.entry_depth.(pid) <- eng.entry_depth.(pid) + 1
      end
  | Lock_acquired id ->
      if eng.has_abort then begin
        eng.entry_depth.(pid) <- max 0 (eng.entry_depth.(pid) - 1);
        if eng.entry_depth.(pid) = 0 then begin
          eng.entry_since.(pid) <- -1;
          resolve_abort eng pid Res_acquired;
          eng.ab_streak.(pid) <- 0
        end
      end;
      enter_lock_cs eng pid id
  | Lock_release id -> leave_lock_cs eng pid id
  | Level l -> if l > eng.level_max.(pid) then eng.level_max.(pid) <- l
  | Abort_done _ ->
      if eng.has_abort then begin
        resolve_abort eng pid Res_aborted;
        eng.ab_streak.(pid) <- eng.ab_streak.(pid) + 1;
        eng.entry_depth.(pid) <- 0;
        eng.entry_since.(pid) <- -1
      end
  | Abort_lost_race id ->
      (* The abort raced the handoff and lost: the process now holds the
         lock even though [Lock_acquired] never fired on this path, so the
         occupancy/ME bookkeeping enters the CS here. *)
      if eng.has_abort then begin
        resolve_abort eng pid Res_lost_race;
        eng.ab_streak.(pid) <- 0;
        eng.entry_depth.(pid) <- 0;
        eng.entry_since.(pid) <- -1
      end;
      enter_lock_cs eng pid id
  | Abort_signal | Abort_request _ | Lock_released _ | Path _ | Custom _ -> ()

let open_unsafe eng pid lock =
  if not (List.mem lock eng.unsafe_open.(pid)) then
    eng.unsafe_open.(pid) <- lock :: eng.unsafe_open.(pid)

let close_unsafe eng pid lock =
  eng.unsafe_open.(pid) <- List.filter (fun x -> x <> lock) eng.unsafe_open.(pid)

(* Apply a non-spin instruction to shared memory, returning its bare result
   and leaving the RMR cost in [eng.last_rmr] — a tuple here would be one
   allocation per instruction.  Window bookkeeping happens here so that a
   crash injected after the instruction sees the correct unsafe state. *)
let apply_view : type a. t -> int -> a Api.view -> a =
 fun eng pid view ->
  let mem = eng.mem in
  match view with
  | Api.V_read c ->
      let v = Memory.read_u mem ~pid c in
      eng.last_rmr <- Memory.last_cost mem;
      v
  | Api.V_write (c, v) -> eng.last_rmr <- Memory.write mem ~pid c v
  | Api.V_cas (c, expect, value) ->
      let ok = Memory.cas_u mem ~pid c ~expect ~value in
      eng.last_rmr <- Memory.last_cost mem;
      ok
  | Api.V_fas (c, v) ->
      let old = Memory.fas_u mem ~pid c v in
      eng.last_rmr <- Memory.last_cost mem;
      old
  | Api.V_fas_open_unsafe (lock, c, v) ->
      let old = Memory.fas_u mem ~pid c v in
      eng.last_rmr <- Memory.last_cost mem;
      open_unsafe eng pid lock;
      old
  | Api.V_write_close_unsafe (lock, c, v) ->
      eng.last_rmr <- Memory.write mem ~pid c v;
      close_unsafe eng pid lock
  | Api.V_fas_persist (c, v, dst) ->
      let old = Memory.fas_u mem ~pid c v in
      let m1 = Memory.last_cost mem in
      eng.last_rmr <- m1 + Memory.write mem ~pid dst old
  | Api.V_faa (c, v) ->
      let old = Memory.faa_u mem ~pid c v in
      eng.last_rmr <- Memory.last_cost mem;
      old
  | Api.V_note n ->
      eng.last_rmr <- 0;
      handle_note eng pid n
  | Api.V_get_done ->
      eng.last_rmr <- 0;
      eng.completed.(pid)
  | Api.V_get_step ->
      eng.last_rmr <- 0;
      eng.step
  | Api.V_poll_abort ->
      eng.last_rmr <- 0;
      eng.ab_flag.(pid)
  | Api.V_yield -> eng.last_rmr <- 0
  | Api.V_spin _ -> assert false (* handled by [exec] *)
  | Api.V_spin_abortable _ -> assert false (* handled by [exec] *)

let wake_parked eng (c : Cell.t) =
  if Hashtbl.mem eng.parked_cells c.id then begin
    let still_parked = ref false in
    for pid = 0 to eng.n - 1 do
      match eng.states.(pid) with
      | Parked p when Cell.equal p.pcell c ->
          if Api.cond_holds p.pcond (Memory.peek eng.mem c) then eng.states.(pid) <- Woken p
          else still_parked := true
      | Parked _ | Start | Ready _ | Woken _ | Halted -> ()
    done;
    if not !still_parked then Hashtbl.remove eng.parked_cells c.id
  end

(* Wake waiters after a mutating instruction.  Direct GADT dispatch instead
   of [cell_of_view]/[mutates]: the option box would be one allocation per
   instruction.  [V_fas_persist] wakes on its primary cell only, matching
   the [cell_of_view]-based behaviour this replaces. *)
let wake_after : type a. t -> a Api.view -> unit =
 fun eng view ->
  match view with
  | Api.V_write (c, _) -> wake_parked eng c
  | Api.V_cas (c, _, _) -> wake_parked eng c
  | Api.V_fas (c, _) -> wake_parked eng c
  | Api.V_fas_open_unsafe (_, c, _) -> wake_parked eng c
  | Api.V_write_close_unsafe (_, c, _) -> wake_parked eng c
  | Api.V_fas_persist (c, _, _) -> wake_parked eng c
  | Api.V_faa (c, _) -> wake_parked eng c
  | Api.V_read _ | Api.V_spin _ | Api.V_spin_abortable _ | Api.V_note _ | Api.V_get_done
  | Api.V_get_step | Api.V_poll_abort | Api.V_yield ->
      ()

(* Record an *applied* instruction together with the cell contents after it
   (for reads, the value read) — the data the replay checker feeds on. *)
let record_op : type a. t -> int -> a Api.view -> unit =
 fun eng pid view ->
  if eng.trace_ops then begin
    let emit ~kind (cell : Cell.t option) =
      record_event eng
        (Event.Op
           {
             step = eng.step;
             pid;
             kind;
             cell = (match cell with Some c -> c.Cell.name | None -> "-");
             value = (match cell with Some c -> Memory.peek eng.mem c | None -> 0);
           })
    in
    emit ~kind:(Fmt.str "%a" Api.pp_kind (Api.kind_of_view view)) (Api.cell_of_view view);
    (* fas_persist atomically touches a second cell; give it its own trace
       entry so replay sees every mutation. *)
    match view with
    | Api.V_fas_persist (_, _, dst) -> emit ~kind:"write" (Some dst)
    | _ -> ()
  end

let do_crash eng pid (kont : (unit -> unit) option) =
  if eng.emit then
    record_event eng
      (Event.Crash
         {
           step = eng.step;
           pid;
           super = eng.completed.(pid);
           unsafe_wrt = eng.unsafe_open.(pid);
           holding = eng.holding.(pid);
           in_passage = eng.in_passage.(pid);
         });
  eng.crashes.(pid) <- eng.crashes.(pid) + 1;
  List.iter
    (fun lock -> eng.unsafe_crashes.(lock) <- eng.unsafe_crashes.(lock) + 1)
    eng.unsafe_open.(pid);
  List.iter (fun lock -> leave_lock_cs eng pid lock) eng.holding.(pid);
  if eng.in_app_cs.(pid) then begin
    eng.in_app_cs.(pid) <- false;
    eng.global_cs <- eng.global_cs - 1
  end;
  close_passage eng pid ~completed:false;
  if eng.has_abort then begin
    resolve_abort eng pid Res_crashed;
    eng.entry_depth.(pid) <- 0;
    eng.entry_since.(pid) <- -1;
    eng.ab_streak.(pid) <- 0
  end;
  Memory.forget eng.mem ~pid;
  eng.unsafe_open.(pid) <- [];
  (match kont with
  | Some discontinue ->
      jpush eng (jt_crash lor (pid lsl 3)) 0;
      discontinue ()
  | None -> () (* no live fiber — nothing for a replay to discontinue *));
  eng.states.(pid) <- Start;
  eng.on_crash ~pid ~step:eng.step

let discontinue_of (type a) (k : (a, status) Effect.Deep.continuation) () =
  match Effect.Deep.discontinue k Crashed with
  | Stopped -> ()
  | Suspended _ ->
      (* The body swallowed [Crashed] and kept computing: forbidden. *)
      failwith "Engine: process body must not catch the crash exception"

let crash_now eng pid =
  match eng.states.(pid) with
  | Start -> do_crash eng pid None (* crash in NCS: nothing to discard *)
  | Ready (Suspended (_, k)) -> do_crash eng pid (Some (discontinue_of k))
  | Ready Stopped -> assert false
  | Parked p | Woken p -> do_crash eng pid (Some (discontinue_of p.pk))
  | Halted -> ()

(* A system-wide crash (the JJJ model): every process's continuation —
   running, ready, and parked alike — is erased at this instant; NVRAM
   persists and every live body restarts through its recovery section.
   Processes that already satisfied all their requests stay [Halted]. *)
let system_crash_now eng =
  if eng.emit then record_event eng (Event.Sys_crash { step = eng.step });
  eng.system_crashes <- eng.system_crashes + 1;
  for pid = 0 to eng.n - 1 do
    crash_now eng pid
  done

let absorb eng pid (st : status) =
  match st with
  | Stopped -> eng.states.(pid) <- Halted
  | Suspended _ -> eng.states.(pid) <- Ready st

let op_info : type a. t -> int -> a Api.view -> Crash.op_info =
 fun eng pid view ->
  let info =
    {
      Crash.pid;
      step = eng.step;
      op_index = eng.op_index.(pid);
      kind = Api.kind_of_view view;
      cell = (match Api.cell_of_view view with Some c -> Some c.Cell.name | None -> None);
      note = (match view with Api.V_note n -> Some n | _ -> None);
      unsafe_wrt = eng.unsafe_open.(pid);
    }
  in
  eng.op_index.(pid) <- eng.op_index.(pid) + 1;
  eng.on_op info;
  (match eng.journal with Some j when eng.log_ops -> Vec.push j.jops info | Some _ | None -> ());
  info

let park eng pid (p : parked) =
  eng.states.(pid) <- Parked p;
  Hashtbl.replace eng.parked_cells p.pcell.Cell.id ()

(* Execute the pending instruction of [pid]. *)
let exec eng pid (st : status) =
  match st with
  | Stopped -> assert false
  | Suspended (view, k) -> (
      let decision =
        if eng.consult_ops then begin
          let info = op_info eng pid view in
          (* The abort consult precedes the crash consult, so a signal fired
             on an op the crash plan then suppresses still counts as
             delivered — and [replay_plan] winds both plans in the same
             order. *)
          if eng.has_abort && Abort.on_op eng.abort info then
            signal_abort eng ~origin:info.Crash.op_index pid;
          Crash.on_op eng.crash info
        end
        else begin
          (* Fast path: no plan and no hook reads the [op_info], so only the
             per-process op counter (part of the state key) advances. *)
          eng.op_index.(pid) <- eng.op_index.(pid) + 1;
          Crash.No_crash
        end
      in
      match decision with
      | Crash Before -> do_crash eng pid (Some (discontinue_of k))
      | (No_crash | Crash After) as decision -> (
          let crash_after =
            match decision with Crash.Crash _ -> true | Crash.No_crash -> false
          in
          match view with
          | Api.V_spin (cell, cond) ->
              let v = Memory.read_u eng.mem ~pid cell in
              charge eng pid ~kind:Api.Spin (Memory.last_cost eng.mem);
              record_op eng pid view;
              if crash_after then do_crash eng pid (Some (discontinue_of k))
              else if Api.cond_holds cond v then begin
                jpush eng (jt_ans_unit lor (pid lsl 3)) 0;
                absorb eng pid (Effect.Deep.continue k ())
              end
              else park eng pid { pk = k; pcell = cell; pcond = cond; pabort = false }
          | Api.V_spin_abortable (cell, cond) ->
              let v = Memory.read_u eng.mem ~pid cell in
              charge eng pid ~kind:Api.Spin (Memory.last_cost eng.mem);
              record_op eng pid view;
              if crash_after then do_crash eng pid (Some (discontinue_of k))
              else if Api.cond_holds cond v || eng.ab_flag.(pid) then begin
                jpush eng (jt_ans_unit lor (pid lsl 3)) 0;
                absorb eng pid (Effect.Deep.continue k ())
              end
              else park eng pid { pk = k; pcell = cell; pcond = cond; pabort = true }
          | _ ->
              let res = apply_view eng pid view in
              charge eng pid ~kind:(Api.kind_of_view view) eng.last_rmr;
              record_op eng pid view;
              wake_after eng view;
              if crash_after then do_crash eng pid (Some (discontinue_of k))
              else begin
                jpush eng (ans_tag view lor (pid lsl 3)) (ans_value view res);
                absorb eng pid (Effect.Deep.continue k res)
              end))

let step_process eng pid =
  (* Steps taken while the abort flag is up are the victim's own resolving
     steps — the quantity [Props.abort_liveness] bounds. *)
  if eng.has_abort && eng.ab_flag.(pid) then eng.ab_own.(pid) <- eng.ab_own.(pid) + 1;
  match eng.states.(pid) with
  | Start ->
      let body = eng.body in
      jpush eng (jt_dispatch lor (pid lsl 3)) 0;
      absorb eng pid (Effect.Deep.match_with (fun () -> body ~pid) () handler)
  | Ready st -> exec eng pid st
  | Woken p ->
      let v = Memory.read_u eng.mem ~pid p.pcell in
      charge eng pid ~kind:Api.Spin (Memory.last_cost eng.mem);
      if Api.cond_holds p.pcond v || (p.pabort && eng.ab_flag.(pid)) then begin
        jpush eng (jt_ans_unit lor (pid lsl 3)) 0;
        absorb eng pid (Effect.Deep.continue p.pk ())
      end
      else park eng pid p
  | Parked _ | Halted -> assert false

(* The access footprint of the step [pid] would take if scheduled now, for
   the explorer's partial-order reduction.  A [Start] dispatch only runs the
   body to its first suspension (pure local computation) and a [Woken]
   dispatch only re-reads the spin cell; neither consults the crash plan
   (no [op_info]), so neither is crashy whatever the plan. *)
let pending_footprint eng pid =
  match eng.states.(pid) with
  | Start -> Footprint.local ~pid
  | Ready (Suspended (view, _)) ->
      Footprint.of_view ~pid ~crashy:(eng.footprint_crashy pid) view
  | Woken p -> Footprint.waiting ~pid p.pcell
  | Ready Stopped | Parked _ | Halted -> assert false

(* The state key behind the explorer's decision-node deduplication: a
   compact int-array digest of everything that determines both the future
   of the run (store contents and versions, cache validity, per-process
   control state, the crash plan's observable cursor) and everything a
   schedule-robust check can already observe about the prefix (completion,
   crash and RMR aggregates, per-passage (super, rmr, completed) folds,
   occupancy and CS maxima).  Two decision nodes with equal keys have
   pointwise-identical continuations: every schedule from one has a twin
   from the other with an equal end-of-run [result] as far as
   schedule-robust checks go.  Deliberately excluded — matching the POR
   contract that checks must not read them — are step counts, latencies,
   [last_progress]/[last_sched] and the stall classification.

   Control state rests on [ans_hash]: bodies are deterministic functions
   of their journal stream, so the digest pins the pending instruction
   (including a parked process's spin cell); the explicit tag settles
   Ready/Parked/Woken, which engine bookkeeping decides outside the
   stream.  A schedule-robust ([Crash.por_class] = [Robust]) plan's
   internal cursor is likewise a function of the per-process op streams,
   which the digests determine. *)
let state_key eng =
  let n = eng.n in
  let nlocks = Array.length eng.occupancy in
  let key = Array.make ((3 * n) + nlocks + 4) 0 in
  key.(0) <- Memory.fingerprint eng.mem;
  for p = 0 to n - 1 do
    key.(1 + p) <- eng.ans_hash.(p);
    let tag =
      match eng.states.(p) with
      | Start -> 0
      | Ready _ -> 1
      | Parked _ -> 2
      | Woken _ -> 3
      | Halted -> 4
    in
    key.(1 + n + p) <- tag lor (eng.op_index.(p) lsl 3);
    let h = ref (hmix 0 eng.completed.(p)) in
    h := hmix !h eng.crashes.(p);
    h := hmix !h eng.level_max.(p);
    h := hmix !h (Bool.to_int eng.in_passage.(p));
    h := hmix !h (Bool.to_int eng.in_app_cs.(p));
    h := hmix !h eng.passage_rmr.(p);
    h := hmix !h eng.passage_super.(p);
    (* Abort state, minus global-step quantities ([entry_since],
       [ab_signal_step]) — excluded like latencies, per the POR contract. *)
    h := hmix !h (Bool.to_int eng.ab_flag.(p));
    h := hmix !h eng.ab_own.(p);
    h := hmix !h eng.ab_rmr_acc.(p);
    h := hmix !h eng.ab_streak.(p);
    h := hmix !h eng.entry_depth.(p);
    List.iter (fun l -> h := hmix !h (l + 1)) eng.unsafe_open.(p);
    h := hmix !h (-2);
    List.iter (fun l -> h := hmix !h (l + 1)) eng.holding.(p);
    h := hmix !h (-3);
    Vec.iter
      (fun (pa : passage) ->
        h := hmix (hmix (hmix !h pa.super) pa.rmr) (Bool.to_int pa.completed))
      eng.passages.(p);
    key.(1 + (2 * n) + p) <- !h
  done;
  for l = 0 to nlocks - 1 do
    key.(1 + (3 * n) + l) <-
      hmix (hmix (hmix 0 eng.occupancy.(l)) eng.occupancy_max.(l)) eng.unsafe_crashes.(l)
  done;
  let h = ref (hmix 0 eng.total_rmr) in
  Array.iter (fun v -> h := hmix !h v) eng.rmr_by_kind;
  h := hmix !h eng.system_crashes;
  Vec.iter
    (fun (a : abort_stat) ->
      h :=
        hmix
          (hmix (hmix (hmix !h (a.ab_pid + 1)) a.ab_own_steps) a.ab_rmr)
          (match a.ab_result with
          | Res_aborted -> 1
          | Res_lost_race -> 2
          | Res_acquired -> 3
          | Res_crashed -> 4
          | Res_pending -> 5))
    eng.ab_stats;
  key.((3 * n) + nlocks + 1) <- !h;
  key.((3 * n) + nlocks + 2) <- eng.global_cs;
  key.((3 * n) + nlocks + 3) <- eng.global_cs_max;
  key

(* Build the ready set (ascending pids) into a per-count scratch buffer.
   The result is valid until the next [runnable] call on this engine —
   callers (the run loops) consume it before stepping again, and the in-repo
   schedulers copy it when they need to retain it.  Scratch arrays must be
   exactly [count] long because [Sched.pick] reads [Array.length runnable]. *)
let runnable eng =
  let count = ref 0 in
  for pid = 0 to eng.n - 1 do
    match eng.states.(pid) with
    | Start | Ready _ | Woken _ -> incr count
    | Parked _ | Halted -> ()
  done;
  let c = !count in
  if c = 0 then [||]
  else begin
    let buf =
      let b = eng.ready_bufs.(c) in
      if Array.length b = c then b
      else begin
        let b = Array.make c 0 in
        eng.ready_bufs.(c) <- b;
        b
      end
    in
    let i = ref 0 in
    for pid = 0 to eng.n - 1 do
      match eng.states.(pid) with
      | Start | Ready _ | Woken _ ->
          Array.unsafe_set buf !i pid;
          incr i
      | Parked _ | Halted -> ()
    done;
    buf
  end

(* Where is [pid] right now, for the watchdog's culprit report. *)
let segment eng pid =
  let base =
    if eng.in_app_cs.(pid) then "cs"
    else if not eng.in_passage.(pid) then "ncs"
    else if eng.holding.(pid) <> [] then
      Printf.sprintf "holding(%s)"
        (String.concat "," (List.map (fun id -> eng.lock_names.(id)) eng.holding.(pid)))
    else "entry"
  in
  match eng.states.(pid) with
  | Parked p -> Printf.sprintf "%s parked@%s" base p.pcell.Cell.name
  | Start | Ready _ | Woken _ | Halted -> base

(* Diagnose an abnormal end state.  Deadlock is structural (every live
   process parked).  On timeout, progress within the trailing
   [stall_window] steps separates the verdicts: some processes progressed
   while others did not — starvation, blame the left-behind; nobody
   progressed but processes are still being scheduled — livelock; everyone
   progressed recently — the run was healthy and simply ran out of step
   budget. *)
let classify_stall eng =
  let live = ref [] in
  for pid = eng.n - 1 downto 0 do
    match eng.states.(pid) with
    | Halted -> ()
    | Start | Ready _ | Woken _ | Parked _ -> live := pid :: !live
  done;
  let live = !live in
  let report kind pids = Some { stall_kind = kind; culprits = List.map (fun p -> (p, segment eng p)) pids } in
  if eng.deadlocked then report Deadlock live
  else if not eng.timed_out then None
  else begin
    let horizon = eng.step - eng.stall_window in
    let progressed p = eng.last_progress.(p) >= horizon in
    let starved = List.filter (fun p -> not (progressed p)) live in
    if starved = [] then report Underbudget live
    else if List.exists progressed live then report Starvation starved
    else begin
      (* Nobody progressed: livelock.  Blame the processes still burning
         steps; if even scheduling stopped reaching them, blame all live. *)
      let spinning = List.filter (fun p -> eng.last_sched.(p) >= horizon) live in
      report Livelock (if spinning = [] then live else spinning)
    end
  end

let finish eng =
  let procs =
    Array.init eng.n (fun pid ->
        {
          passages = Vec.to_list eng.passages.(pid);
          crashes = eng.crashes.(pid);
          completed = eng.completed.(pid);
          max_level = eng.level_max.(pid);
        })
  in
  let locks =
    Array.init (Array.length eng.lock_names) (fun id ->
        {
          lock_name = eng.lock_names.(id);
          max_occupancy = eng.occupancy_max.(id);
          unsafe_crashes = eng.unsafe_crashes.(id);
        })
  in
  let pending_aborts = ref [] in
  for pid = eng.n - 1 downto 0 do
    if eng.ab_flag.(pid) then
      pending_aborts :=
        {
          ab_pid = pid;
          ab_signal_step = eng.ab_signal_step.(pid);
          ab_op_index = eng.ab_op_origin.(pid);
          ab_resolved_step = -1;
          ab_own_steps = eng.ab_own.(pid);
          ab_rmr = eng.ab_rmr_acc.(pid);
          ab_result = Res_pending;
        }
        :: !pending_aborts
  done;
  {
    steps = eng.step;
    total_rmr = eng.total_rmr;
    rmr_by_kind =
      List.filter
        (fun (_, v) -> v > 0)
        (Array.to_list (Array.mapi (fun i v -> (kind_of_code.(i), v)) eng.rmr_by_kind));
    total_crashes = Array.fold_left ( + ) 0 eng.crashes;
    system_crashes = eng.system_crashes;
    procs;
    locks;
    cs_max = eng.global_cs_max;
    deadlocked = eng.deadlocked;
    timed_out = eng.timed_out;
    stall = classify_stall eng;
    aborts = Vec.to_list eng.ab_stats @ !pending_aborts;
    events = Event.Sink.events eng.sink;
  }

(* Domain-safety audit (parallel explorer): [run] is re-entrant.  Every
   piece of mutable state below — the store, the engine record, the fiber
   continuations, the per-process arrays — is created inside this call and
   never escapes it; the module has no top-level mutable bindings (and the
   same holds for Memory, Cell, Api, Crash and Vec).  Concurrent [run]s in
   different domains therefore share nothing, *provided* the caller's
   [sched], [crash], [setup] and [body] arguments are themselves
   domain-safe: a stateful scheduler or crash plan must be built fresh per
   run, and the closures must not capture shared mutable state. *)
(* The oracles an abort plan's async decisions read, closed over the live
   engine.  Built once per run, only when an abort plan is present. *)
let make_abort_view eng =
  {
    Abort.n = eng.n;
    waiting =
      (fun pid -> if eng.entry_since.(pid) < 0 then -1 else eng.step - eng.entry_since.(pid));
    streak = (fun pid -> eng.ab_streak.(pid));
  }

let run ?(mode = `Auto) ?sink ?(record = false) ?(trace_ops = false) ?(max_steps = 5_000_000)
    ?stall_window ?(on_crash = default_on_crash) ?(on_op = default_on_op) ?footprints
    ?(footprint_crashy = fun _ -> false) ?(state_key_at = -1) ?(on_state_key = fun _ -> ())
    ?(abort = Abort.none) ~n ~model ~sched ~crash ~setup ~body () =
  let stall_window =
    match stall_window with Some w -> w | None -> max 1_000 (max_steps / 8)
  in
  if footprints <> None && n > 0xffff then
    invalid_arg "Engine.run: footprint recording supports at most 65536 processes";
  let sink =
    match sink with
    | Some s -> s
    | None -> if record || trace_ops then Event.Sink.keep () else Event.Sink.drop
  in
  let emit = Event.Sink.wants sink in
  let has_crash = crash != Crash.none in
  let has_abort = abort != Abort.none in
  (* Per-feature instrumentation guards.  [`Auto] derives them from what the
     caller actually supplied; [`Full] forces the instrumented code paths on
     (for differential benchmarking — results are identical either way);
     [`Fast] asserts that nothing requires instrumentation, catching configs
     that would silently fall off the fast path. *)
  let consult_ops, track_ans =
    match mode with
    | `Auto -> (has_crash || has_abort || on_op != default_on_op, state_key_at >= 0)
    | `Full -> (true, true)
    | `Fast ->
        if
          has_crash || has_abort || emit || trace_ops || footprints <> None
          || state_key_at >= 0 || on_op != default_on_op || on_crash != default_on_crash
        then
          invalid_arg
            "Engine.run: ~mode:`Fast requires a crash-free, abort-free, uninstrumented \
             configuration (no sink, no hooks, no footprints, no state key)";
        (false, false)
  in
  let mem = Memory.create model ~n in
  let ctx = { Ctx.mem; lock_names = Vec.create () } in
  let shared = setup ctx in
  let nlocks = Vec.length ctx.lock_names in
  let eng =
    {
      mem;
      n;
      sched;
      crash;
      abort;
      has_abort;
      abort_view = Abort.blind_view ~n;
      has_crash;
      sink;
      emit;
      consult_ops;
      track_ans;
      trace_ops;
      max_steps;
      stall_window;
      on_crash;
      on_op;
      footprints;
      footprint_crashy;
      journal = None;
      log_ops = false;
      ans_hash = Array.make n 0;
      body = (fun ~pid -> body shared ~pid);
      states = Array.make n Start;
      step = 0;
      op_index = Array.make n 0;
      completed = Array.make n 0;
      crashes = Array.make n 0;
      last_progress = Array.make n (-1);
      last_sched = Array.make n (-1);
      unsafe_open = Array.make n [];
      holding = Array.make n [];
      ab_flag = Array.make n false;
      ab_signal_step = Array.make n (-1);
      ab_op_origin = Array.make n (-1);
      ab_own = Array.make n 0;
      ab_rmr_acc = Array.make n 0;
      ab_streak = Array.make n 0;
      entry_depth = Array.make n 0;
      entry_since = Array.make n (-1);
      ab_stats = Vec.create ();
      in_passage = Array.make n false;
      in_app_cs = Array.make n false;
      passage_rmr = Array.make n 0;
      passage_super = Array.make n 0;
      passage_start = Array.make n 0;
      passages = Array.init n (fun _ -> Vec.create ());
      level_max = Array.make n 0;
      occupancy = Array.make nlocks 0;
      occupancy_max = Array.make nlocks 0;
      unsafe_crashes = Array.make nlocks 0;
      lock_names = Vec.to_array ctx.lock_names;
      parked_cells = Hashtbl.create 64;
      events = (match Event.Sink.buffer sink with Some v -> v | None -> Vec.create ());
      ready_bufs = Array.make (n + 1) [||];
      last_rmr = 0;
      rmr_by_kind = Array.make 8 0;
      total_rmr = 0;
      system_crashes = 0;
      global_cs = 0;
      global_cs_max = 0;
      deadlocked = false;
      timed_out = false;
    }
  in
  if eng.has_abort then eng.abort_view <- make_abort_view eng;
  let dpos = ref 0 in
  (* Hoisted once: partially applying these in the loop would allocate a
     closure per step. *)
  let crash_iter = if eng.has_crash then crash_now eng else ignore in
  let abort_iter = if eng.has_abort then signal_abort eng ~origin:(-1) else ignore in
  let rec loop () =
    if eng.has_crash then begin
      List.iter crash_iter (Crash.async eng.crash ~step:eng.step);
      if Crash.system eng.crash ~step:eng.step then system_crash_now eng
    end;
    if eng.has_abort then
      List.iter abort_iter (Abort.async eng.abort ~step:eng.step eng.abort_view);
    let ready = runnable eng in
    if Array.length ready = 0 then begin
      let any_parked =
        Array.exists (function Parked _ -> true | Start | Ready _ | Woken _ | Halted -> false) eng.states
      in
      if any_parked then eng.deadlocked <- true
      (* else: all halted — normal termination *)
    end
    else if eng.step >= eng.max_steps then eng.timed_out <- true
    else begin
      (* One footprint per runnable pid, in the (ascending) order of [ready]
         — the same order [Sched.trace] sorts decisions over, so the
         explorer can index footprints by (decision point, choice). *)
      (match eng.footprints with
      | None -> ()
      | Some buf -> Array.iter (fun p -> Vec.push buf (pending_footprint eng p)) ready);
      if !dpos = state_key_at then on_state_key (state_key eng);
      incr dpos;
      let pid = Sched.pick eng.sched ~runnable:ready ~step:eng.step in
      eng.last_sched.(pid) <- eng.step;
      step_process eng pid;
      eng.step <- eng.step + 1;
      loop ()
    end
  in
  loop ();
  finish eng

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume                                                 *)
(* ------------------------------------------------------------------ *)

(* Control-state tag of a process at capture time.  The continuations
   themselves are rebuilt by fast-forward; the tag settles the ambiguity
   the journal cannot (a pending spin instruction may be Ready, Parked or
   Woken depending on engine bookkeeping the fibers never see). *)
type ptag = T_start | T_ready | T_parked | T_woken | T_halted

let tag_of_state = function
  | Start -> T_start
  | Ready _ -> T_ready
  | Parked _ -> T_parked
  | Woken _ -> T_woken
  | Halted -> T_halted

module Snap = struct
  (* A checkpoint standing immediately before decision position [s_pos]:
     taken after that iteration's asynchronous crashes fired and its
     footprints were pushed, before the scheduler picked.  It references
     the capturing run's append-only buffers (journal, degree record,
     footprints, events) plus explicit lengths, and owns copies of the
     store image and every engine counter.  The buffers are only ever
     appended to, so a snapshot stays valid however far the capturing run
     — or runs resumed from it — later extends its own copies. *)
  type t = {
    s_pos : int;
    s_step : int;
    s_jlen : int;
    s_olen : int;
    s_fplen : int;
    s_evlen : int;
    s_jents : int Vec.t;
    s_jops : Crash.op_info Vec.t;
    s_degrees : int Vec.t;
    s_fps : Footprint.t Vec.t option;
    s_events : Event.t Vec.t;
    s_mem : Memory.image;
    s_tags : ptag array;
    s_op_index : int array;
    s_completed : int array;
    s_crashes : int array;
    s_last_progress : int array;
    s_last_sched : int array;
    s_unsafe_open : int list array;
    s_holding : int list array;
    s_ab_flag : bool array;
    s_ab_signal_step : int array;
    s_ab_op_origin : int array;
    s_ab_own : int array;
    s_ab_rmr_acc : int array;
    s_ab_streak : int array;
    s_entry_depth : int array;
    s_entry_since : int array;
    s_ab_stats : abort_stat array;
    s_in_passage : bool array;
    s_in_app_cs : bool array;
    s_passage_rmr : int array;
    s_passage_super : int array;
    s_passage_start : int array;
    s_passages : passage array array;
    s_level_max : int array;
    s_occupancy : int array;
    s_occupancy_max : int array;
    s_unsafe_crashes : int array;
    s_rmr_by_kind : int array;
    s_total_rmr : int;
    s_system_crashes : int;
    s_global_cs : int;
    s_global_cs_max : int;
  }

  let pos t = t.s_pos
end

let capture eng ~pos ~(journal : journal) ~(degrees : int Vec.t) : Snap.t =
  {
    Snap.s_pos = pos;
    s_step = eng.step;
    s_jlen = Vec.length journal.jents;
    s_olen = Vec.length journal.jops;
    s_fplen = (match eng.footprints with Some v -> Vec.length v | None -> 0);
    s_evlen = Vec.length eng.events;
    s_jents = journal.jents;
    s_jops = journal.jops;
    s_degrees = degrees;
    s_fps = eng.footprints;
    s_events = eng.events;
    s_mem = Memory.snapshot eng.mem;
    s_tags = Array.map tag_of_state eng.states;
    s_op_index = Array.copy eng.op_index;
    s_completed = Array.copy eng.completed;
    s_crashes = Array.copy eng.crashes;
    s_last_progress = Array.copy eng.last_progress;
    s_last_sched = Array.copy eng.last_sched;
    s_unsafe_open = Array.copy eng.unsafe_open;
    s_holding = Array.copy eng.holding;
    s_ab_flag = Array.copy eng.ab_flag;
    s_ab_signal_step = Array.copy eng.ab_signal_step;
    s_ab_op_origin = Array.copy eng.ab_op_origin;
    s_ab_own = Array.copy eng.ab_own;
    s_ab_rmr_acc = Array.copy eng.ab_rmr_acc;
    s_ab_streak = Array.copy eng.ab_streak;
    s_entry_depth = Array.copy eng.entry_depth;
    s_entry_since = Array.copy eng.entry_since;
    s_ab_stats = Vec.to_array eng.ab_stats;
    s_in_passage = Array.copy eng.in_passage;
    s_in_app_cs = Array.copy eng.in_app_cs;
    s_passage_rmr = Array.copy eng.passage_rmr;
    s_passage_super = Array.copy eng.passage_super;
    s_passage_start = Array.copy eng.passage_start;
    s_passages = Array.map Vec.to_array eng.passages;
    s_level_max = Array.copy eng.level_max;
    s_occupancy = Array.copy eng.occupancy;
    s_occupancy_max = Array.copy eng.occupancy_max;
    s_unsafe_crashes = Array.copy eng.unsafe_crashes;
    s_rmr_by_kind = Array.copy eng.rmr_by_kind;
    s_total_rmr = eng.total_rmr;
    s_system_crashes = eng.system_crashes;
    s_global_cs = eng.global_cs;
    s_global_cs_max = eng.global_cs_max;
  }

(* Rebuild every fiber to its checkpointed suspension point by replaying
   the journal prefix: dispatch bodies and feed each suspended instruction
   the answer (or crash) it got in the recorded run, in the recorded
   global order.  The global order matters: body segments run for real
   between suspensions — pure computation, but also direct [Memory.alloc]
   calls of lazily-built lock structure and other deterministic OCaml-side
   mutations of [shared] — and must interleave exactly as recorded for
   cell ids and registries to come out identical.  No instruction touches
   the store and nothing is charged or scheduled here; the store and every
   counter are restored from the snapshot afterwards. *)
let fast_forward eng (journal : journal) jlen (tags : ptag array) =
  (* [Stopped] doubles as the "nothing pending" sentinel so the per-entry
     bookkeeping allocates nothing; [stopped] tells a genuine halt apart
     from a never-dispatched or crashed incarnation where it matters. *)
  let pending : status array = Array.make eng.n Stopped in
  let stopped = Array.make eng.n false in
  let body = eng.body in
  let settle pid st =
    match st with
    | Stopped ->
        pending.(pid) <- Stopped;
        stopped.(pid) <- true
    | Suspended _ ->
        pending.(pid) <- st;
        stopped.(pid) <- false
  in
  let i = ref 0 in
  while !i < jlen do
    (* [jlen] was validated against the journal length by the caller and
       entries are two slots, so the reads are in bounds. *)
    let header = Vec.unsafe_get journal.jents !i in
    let value = Vec.unsafe_get journal.jents (!i + 1) in
    i := !i + 2;
    let pid = header lsr 3 in
    let tag = header land 7 in
    if tag = jt_dispatch then settle pid (Effect.Deep.match_with (fun () -> body ~pid) () handler)
    else if tag = jt_crash then begin
      match pending.(pid) with
      | Suspended (_, k) ->
          discontinue_of k ();
          pending.(pid) <- Stopped;
          stopped.(pid) <- false
      | Stopped -> diverged "crash with no pending instruction"
    end
    else begin
      match pending.(pid) with
      | Suspended (view, k) -> settle pid (continue_ans view k tag value)
      | Stopped -> diverged "answer with no pending instruction"
    end
  done;
  for pid = 0 to eng.n - 1 do
    match tags.(pid) with
    | T_start ->
        (* Never dispatched, or its last incarnation ended in a crash. *)
        eng.states.(pid) <- Start
    | T_halted ->
        if not stopped.(pid) then diverged "halted process still pending";
        eng.states.(pid) <- Halted
    | (T_ready | T_parked | T_woken) as tag -> (
        match pending.(pid) with
        | Suspended (view, k) as st -> (
            match tag with
            | T_ready -> eng.states.(pid) <- Ready st
            | T_parked | T_woken -> (
                match (view, k) with
                | Api.V_spin (cell, cond), k ->
                    let p = { pk = k; pcell = cell; pcond = cond; pabort = false } in
                    if tag = T_parked then begin
                      eng.states.(pid) <- Parked p;
                      Hashtbl.replace eng.parked_cells cell.Cell.id ()
                    end
                    else eng.states.(pid) <- Woken p
                | Api.V_spin_abortable (cell, cond), k ->
                    let p = { pk = k; pcell = cell; pcond = cond; pabort = true } in
                    if tag = T_parked then begin
                      eng.states.(pid) <- Parked p;
                      Hashtbl.replace eng.parked_cells cell.Cell.id ()
                    end
                    else eng.states.(pid) <- Woken p
                | _ -> diverged "parked process not pending on a spin")
            | _ -> assert false)
        | Stopped -> diverged "live process with no pending instruction")
  done

let restore_counters eng (s : Snap.t) =
  let n = eng.n in
  Array.blit s.Snap.s_op_index 0 eng.op_index 0 n;
  Array.blit s.Snap.s_completed 0 eng.completed 0 n;
  Array.blit s.Snap.s_crashes 0 eng.crashes 0 n;
  Array.blit s.Snap.s_last_progress 0 eng.last_progress 0 n;
  Array.blit s.Snap.s_last_sched 0 eng.last_sched 0 n;
  Array.blit s.Snap.s_unsafe_open 0 eng.unsafe_open 0 n;
  Array.blit s.Snap.s_holding 0 eng.holding 0 n;
  Array.blit s.Snap.s_in_passage 0 eng.in_passage 0 n;
  Array.blit s.Snap.s_in_app_cs 0 eng.in_app_cs 0 n;
  Array.blit s.Snap.s_passage_rmr 0 eng.passage_rmr 0 n;
  Array.blit s.Snap.s_passage_super 0 eng.passage_super 0 n;
  Array.blit s.Snap.s_passage_start 0 eng.passage_start 0 n;
  Array.blit s.Snap.s_ab_flag 0 eng.ab_flag 0 n;
  Array.blit s.Snap.s_ab_signal_step 0 eng.ab_signal_step 0 n;
  Array.blit s.Snap.s_ab_op_origin 0 eng.ab_op_origin 0 n;
  Array.blit s.Snap.s_ab_own 0 eng.ab_own 0 n;
  Array.blit s.Snap.s_ab_rmr_acc 0 eng.ab_rmr_acc 0 n;
  Array.blit s.Snap.s_ab_streak 0 eng.ab_streak 0 n;
  Array.blit s.Snap.s_entry_depth 0 eng.entry_depth 0 n;
  Array.blit s.Snap.s_entry_since 0 eng.entry_since 0 n;
  Vec.clear eng.ab_stats;
  Array.iter (Vec.push eng.ab_stats) s.Snap.s_ab_stats;
  Array.blit s.Snap.s_level_max 0 eng.level_max 0 n;
  for pid = 0 to n - 1 do
    Vec.clear eng.passages.(pid);
    Array.iter (Vec.push eng.passages.(pid)) s.Snap.s_passages.(pid)
  done;
  let nlocks = Array.length s.Snap.s_occupancy in
  Array.blit s.Snap.s_occupancy 0 eng.occupancy 0 nlocks;
  Array.blit s.Snap.s_occupancy_max 0 eng.occupancy_max 0 nlocks;
  Array.blit s.Snap.s_unsafe_crashes 0 eng.unsafe_crashes 0 nlocks;
  Array.blit s.Snap.s_rmr_by_kind 0 eng.rmr_by_kind 0 (Array.length s.Snap.s_rmr_by_kind);
  eng.total_rmr <- s.Snap.s_total_rmr;
  eng.system_crashes <- s.Snap.s_system_crashes;
  eng.global_cs <- s.Snap.s_global_cs;
  eng.global_cs_max <- s.Snap.s_global_cs_max;
  eng.step <- s.Snap.s_step

(* Wind a fresh crash plan forward to the checkpoint: replay the recorded
   [op_info] stream interleaved with the async consultations, in the order
   of the recorded run (async at step s fires before the instruction of
   step s; the capture point sits after async of [s_step] and before its
   instruction).  Decisions are discarded — their effects are baked into
   the snapshot — but the calls rebuild the plan's internal state.  The
   stateless [Crash.none] plan skips the whole walk (and the engine skips
   recording [jops] for it). *)
let replay_plan plan abort_plan (s : Snap.t) =
  let wind_crash = plan != Crash.none in
  let wind_abort = abort_plan != Abort.none in
  if wind_crash || wind_abort then begin
    (* Abort plans honour the winding contract: async state evolves from
       the consult sequence alone, so a blind view suffices and the
       decisions can be discarded. *)
    let bview = Abort.blind_view ~n:(Array.length s.Snap.s_tags) in
    let oi = ref 0 in
    for st = 0 to s.Snap.s_step do
      (* Same per-iteration order as the live loops: crash async, the
         system consult, abort async, then per instruction the abort
         [on_op] followed by the crash [on_op]. *)
      if wind_crash then begin
        ignore (Crash.async plan ~step:st);
        ignore (Crash.system plan ~step:st)
      end;
      if wind_abort then ignore (Abort.async abort_plan ~step:st bview);
      while !oi < s.Snap.s_olen && (Vec.get s.Snap.s_jops !oi).Crash.step = st do
        if wind_abort then ignore (Abort.on_op abort_plan (Vec.get s.Snap.s_jops !oi));
        if wind_crash then ignore (Crash.on_op plan (Vec.get s.Snap.s_jops !oi));
        incr oi
      done
    done
  end

type rrun = {
  rr_result : result;
  rr_degrees : int array;
  rr_footprints : Footprint.t array;
}

let run_resumable ?from ?(snap_gap = 0) ?(snap = fun (_ : Snap.t) -> ()) ?(record = false)
    ?(max_steps = 5_000_000) ?stall_window ?(por = false) ?(footprint_crashy = fun _ -> false)
    ?(state_key_at = -1) ?(on_state_key = fun _ -> ()) ?(abort = fun () -> Abort.none)
    ~decisions ~n ~model ~crash ~setup ~body () =
  let stall_window =
    match stall_window with Some w -> w | None -> max 1_000 (max_steps / 8)
  in
  if por && n > 0xffff then
    invalid_arg "Engine.run_resumable: footprint recording supports at most 65536 processes";
  let mem = Memory.create model ~n in
  let ctx = { Ctx.mem; lock_names = Vec.create () } in
  let shared = setup ctx in
  let nlocks = Vec.length ctx.lock_names in
  let plan = crash () in
  let plan_abort = abort () in
  let journal = { jents = Vec.create (); jops = Vec.create () } in
  let degrees = Vec.create () in
  let footprints = if por then Some (Vec.create ()) else None in
  let sink = if record then Event.Sink.keep () else Event.Sink.drop in
  let eng =
    {
      mem;
      n;
      sched = Sched.round_robin () (* never consulted: the loop below picks *);
      crash = plan;
      abort = plan_abort;
      has_abort = plan_abort != Abort.none;
      abort_view = Abort.blind_view ~n;
      has_crash = plan != Crash.none;
      sink;
      emit = Event.Sink.wants sink;
      consult_ops = plan != Crash.none || plan_abort != Abort.none;
      track_ans = true (* the journal is the whole point of this entry *);
      trace_ops = false;
      max_steps;
      stall_window;
      on_crash = (fun ~pid:_ ~step:_ -> ());
      on_op = (fun _ -> ());
      footprints;
      footprint_crashy;
      journal = Some journal;
      log_ops = plan != Crash.none || plan_abort != Abort.none;
      ans_hash = Array.make n 0;
      body = (fun ~pid -> body shared ~pid);
      states = Array.make n Start;
      step = 0;
      op_index = Array.make n 0;
      completed = Array.make n 0;
      crashes = Array.make n 0;
      last_progress = Array.make n (-1);
      last_sched = Array.make n (-1);
      unsafe_open = Array.make n [];
      holding = Array.make n [];
      ab_flag = Array.make n false;
      ab_signal_step = Array.make n (-1);
      ab_op_origin = Array.make n (-1);
      ab_own = Array.make n 0;
      ab_rmr_acc = Array.make n 0;
      ab_streak = Array.make n 0;
      entry_depth = Array.make n 0;
      entry_since = Array.make n (-1);
      ab_stats = Vec.create ();
      in_passage = Array.make n false;
      in_app_cs = Array.make n false;
      passage_rmr = Array.make n 0;
      passage_super = Array.make n 0;
      passage_start = Array.make n 0;
      passages = Array.init n (fun _ -> Vec.create ());
      level_max = Array.make n 0;
      occupancy = Array.make nlocks 0;
      occupancy_max = Array.make nlocks 0;
      unsafe_crashes = Array.make nlocks 0;
      lock_names = Vec.to_array ctx.lock_names;
      parked_cells = Hashtbl.create 64;
      events = (match Event.Sink.buffer sink with Some v -> v | None -> Vec.create ());
      ready_bufs = Array.make (n + 1) [||];
      last_rmr = 0;
      rmr_by_kind = Array.make 8 0;
      total_rmr = 0;
      system_crashes = 0;
      global_cs = 0;
      global_cs_max = 0;
      deadlocked = false;
      timed_out = false;
    }
  in
  let npos = Array.length decisions in
  let start_pos, resumed =
    match from with
    | None -> (0, false)
    | Some (s : Snap.t) ->
        if Array.length s.Snap.s_tags <> n then
          invalid_arg "Engine.run_resumable: snapshot process count mismatch";
        (match (footprints, s.Snap.s_fps) with
        | Some _, None ->
            invalid_arg "Engine.run_resumable: snapshot lacks the footprint prefix POR needs"
        | _ -> ());
        (* Seed this run's buffers with the checkpointed prefixes — fresh
           copies, so this run's appends never disturb the snapshot (or
           any other snapshot sharing the source buffers). *)
        Vec.blit_prefix s.Snap.s_jents s.Snap.s_jlen journal.jents;
        if eng.log_ops then Vec.blit_prefix s.Snap.s_jops s.Snap.s_olen journal.jops;
        Vec.blit_prefix s.Snap.s_degrees s.Snap.s_pos degrees;
        (match (footprints, s.Snap.s_fps) with
        | Some dst, Some src -> Vec.blit_prefix src s.Snap.s_fplen dst
        | _ -> ());
        if record then Vec.blit_prefix s.Snap.s_events s.Snap.s_evlen eng.events;
        (* Rebuild the answer-stream digests from the seeded journal prefix
           — the same folds [jpush] would have performed live. *)
        let i = ref 0 in
        while !i < s.Snap.s_jlen do
          let header = Vec.unsafe_get journal.jents !i in
          let value = Vec.unsafe_get journal.jents (!i + 1) in
          let pid = header lsr 3 in
          eng.ans_hash.(pid) <- hmix (hmix eng.ans_hash.(pid) header) value;
          i := !i + 2
        done;
        fast_forward eng journal s.Snap.s_jlen s.Snap.s_tags;
        Memory.restore mem s.Snap.s_mem;
        restore_counters eng s;
        replay_plan plan plan_abort s;
        (s.Snap.s_pos, true)
  in
  let pos = ref start_pos in
  (* Capture only at positions >= the explicit decision vector's length:
     earlier positions belong to ancestor prefixes whose snapshots already
     exist upstream.  The first eligible position is always captured. *)
  let next_snap = ref (if snap_gap > 0 then npos else max_int) in
  (* A snapshot is taken after an iteration's async crashes and footprint
     pushes; resuming re-enters the loop at the pick of the same
     iteration, so the first resumed iteration skips both. *)
  if eng.has_abort then eng.abort_view <- make_abort_view eng;
  let crash_iter = if eng.has_crash then crash_now eng else ignore in
  let abort_iter = if eng.has_abort then signal_abort eng ~origin:(-1) else ignore in
  let first = ref resumed in
  let rec loop () =
    let skip = !first in
    first := false;
    if not skip then begin
      if eng.has_crash then begin
        List.iter crash_iter (Crash.async plan ~step:eng.step);
        if Crash.system plan ~step:eng.step then system_crash_now eng
      end;
      if eng.has_abort then
        List.iter abort_iter (Abort.async plan_abort ~step:eng.step eng.abort_view)
    end;
    let ready = runnable eng in
    if Array.length ready = 0 then begin
      let any_parked =
        Array.exists
          (function Parked _ -> true | Start | Ready _ | Woken _ | Halted -> false)
          eng.states
      in
      if any_parked then eng.deadlocked <- true
    end
    else if eng.step >= eng.max_steps then eng.timed_out <- true
    else begin
      (if not skip then
         match eng.footprints with
         | None -> ()
         | Some buf -> Array.iter (fun p -> Vec.push buf (pending_footprint eng p)) ready);
      (* Capture only at branching positions: a child schedule can only
         deviate where more than one pid is runnable, so snapshots at
         degree-1 positions would never be resumed from.  [snap_gap] is
         the minimum spacing between captures; the stretch from the last
         snapshot to the deviation position is replayed live on resume. *)
      if !pos >= !next_snap && Array.length ready > 1 then begin
        snap (capture eng ~pos:!pos ~journal ~degrees);
        next_snap := !pos + snap_gap
      end;
      if !pos = state_key_at then on_state_key (state_key eng);
      (* Trace pick, inlined: [runnable] builds the ready set in ascending
         pid order — the order {!Sched.trace} sorts into — so indexing it
         directly replays the same schedules the sequential explorer's
         trace scheduler does. *)
      let degree = Array.length ready in
      Vec.push degrees degree;
      let choice = if !pos < npos then decisions.(!pos) else 0 in
      let choice =
        if choice >= 0 && choice < degree then choice
        else ((choice mod degree) + degree) mod degree
      in
      let pid = ready.(choice) in
      incr pos;
      eng.last_sched.(pid) <- eng.step;
      step_process eng pid;
      eng.step <- eng.step + 1;
      loop ()
    end
  in
  loop ();
  {
    rr_result = finish eng;
    rr_degrees = Vec.to_array degrees;
    rr_footprints = (match footprints with Some v -> Vec.to_array v | None -> [||]);
  }

let all_passages res = Array.to_list res.procs |> List.concat_map (fun (p : proc_stats) -> p.passages)

let completed_passages res = List.filter (fun (p : passage) -> p.completed) (all_passages res)

let max_rmr res = List.fold_left (fun acc (p : passage) -> max acc p.rmr) 0 (all_passages res)

let super_totals res =
  Array.to_list res.procs
  |> List.concat_map (fun (proc : proc_stats) ->
         let tbl = Hashtbl.create 16 in
         List.iter
           (fun (p : passage) ->
             let cur = try Hashtbl.find tbl p.super with Not_found -> 0 in
             Hashtbl.replace tbl p.super (cur + p.rmr))
           proc.passages;
         Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])

let max_rmr_super res = List.fold_left max 0 (super_totals res)

let avg_rmr res =
  let ps = all_passages res in
  if ps = [] then 0.0
  else float_of_int (List.fold_left (fun acc (p : passage) -> acc + p.rmr) 0 ps) /. float_of_int (List.length ps)

let avg_rmr_super res =
  let ts = super_totals res in
  if ts = [] then 0.0
  else float_of_int (List.fold_left ( + ) 0 ts) /. float_of_int (List.length ts)

let total_completed res = Array.fold_left (fun acc (p : proc_stats) -> acc + p.completed) 0 res.procs

let latencies res =
  completed_passages res |> List.map (fun (p : passage) -> p.latency) |> List.sort compare

let percentile sorted q =
  match sorted with
  | [] -> 0
  | _ ->
      let len = List.length sorted in
      let ix = int_of_float (q *. float_of_int (len - 1)) in
      List.nth sorted (min (len - 1) (max 0 ix))

let pp_summary ppf res =
  Fmt.pf ppf
    "@[<v>steps=%d rmr=%d crashes=%d completed=%d cs_max=%d deadlocked=%b timed_out=%b%a@,%a@]"
    res.steps res.total_rmr res.total_crashes (total_completed res) res.cs_max res.deadlocked
    res.timed_out
    Fmt.(option (fun ppf s -> pf ppf "@,stall %a" pp_stall s))
    res.stall
    Fmt.(
      list ~sep:cut (fun ppf (l : lock_stats) ->
          pf ppf "lock %-20s max_occupancy=%d unsafe_crashes=%d" l.lock_name l.max_occupancy
            l.unsafe_crashes))
    (List.filter
       (fun (l : lock_stats) -> l.max_occupancy > 0 || l.unsafe_crashes > 0)
       (Array.to_list res.locks))
