exception Crashed
(* Raised into a fiber to simulate the loss of its private state. *)

module Ctx = struct
  type t = { mem : Memory.t; lock_names : string Vec.t }

  let memory t = t.mem

  let n t = Memory.n t.mem

  let register_lock t name =
    Vec.push t.lock_names name;
    Vec.length t.lock_names - 1
end

type passage = { super : int; rmr : int; completed : bool; latency : int }

type proc_stats = { passages : passage list; crashes : int; completed : int; max_level : int }

type lock_stats = { lock_name : string; max_occupancy : int; unsafe_crashes : int }

type stall_kind = Deadlock | Livelock | Starvation | Underbudget

type stall = { stall_kind : stall_kind; culprits : (int * string) list }

let pp_stall_kind ppf = function
  | Deadlock -> Fmt.string ppf "deadlock"
  | Livelock -> Fmt.string ppf "livelock"
  | Starvation -> Fmt.string ppf "starvation"
  | Underbudget -> Fmt.string ppf "underbudget"

let pp_stall ppf s =
  Fmt.pf ppf "%a: %a" pp_stall_kind s.stall_kind
    Fmt.(list ~sep:(any ", ") (fun ppf (pid, seg) -> pf ppf "p%d[%s]" pid seg))
    s.culprits

type result = {
  steps : int;
  total_rmr : int;
  rmr_by_kind : (Api.kind * int) list;
  total_crashes : int;
  procs : proc_stats array;
  locks : lock_stats array;
  cs_max : int;
  deadlocked : bool;
  timed_out : bool;
  stall : stall option;
  events : Event.t list;
}

type status = Stopped | Suspended : 'a Api.view * ('a, status) Effect.Deep.continuation -> status

type parked = { pk : (unit, status) Effect.Deep.continuation; pcell : Cell.t; pcond : Api.cond }

type pstate = Start | Ready of status | Parked of parked | Woken of parked | Halted

type t = {
  mem : Memory.t;
  n : int;
  sched : Sched.t;
  crash : Crash.t;
  record : bool;
  trace_ops : bool;
  max_steps : int;
  stall_window : int;
  on_crash : pid:int -> step:int -> unit;
  on_op : Crash.op_info -> unit;
  footprints : Footprint.t Vec.t option;
  footprint_crashy : int -> bool;
  body : pid:int -> unit;
  states : pstate array;
  mutable step : int;
  op_index : int array;
  completed : int array;
  crashes : int array;
  last_progress : int array;  (* step of each pid's last satisfied request; -1 if none *)
  last_sched : int array;  (* step at which each pid last took a step; -1 if never *)
  unsafe_open : int list array;
  holding : int list array;
  in_passage : bool array;
  in_app_cs : bool array;
  passage_rmr : int array;
  passage_super : int array;
  passage_start : int array;
  passages : passage Vec.t array;
  level_max : int array;
  occupancy : int array;
  occupancy_max : int array;
  unsafe_crashes : int array;
  lock_names : string array;
  parked_cells : (int, unit) Hashtbl.t;  (* cell ids with parked processes *)
  events : Event.t Vec.t;
  rmr_by_kind : int array;  (* indexed by a dense Api.kind code *)
  mutable total_rmr : int;
  mutable global_cs : int;
  mutable global_cs_max : int;
  mutable deadlocked : bool;
  mutable timed_out : bool;
}

let record_event eng ev = if eng.record then Vec.push eng.events ev

let handler : (unit, status) Effect.Deep.handler =
  {
    retc = (fun () -> Stopped);
    exnc = (function Crashed -> Stopped | e -> raise e);
    effc =
      (fun (type c) (eff : c Effect.t) ->
        match eff with
        | Api.Instr view ->
            Some (fun (k : (c, status) Effect.Deep.continuation) -> Suspended (view, k))
        | _ -> None);
  }

let kind_code : Api.kind -> int = function
  | Api.Read -> 0
  | Api.Write -> 1
  | Api.Cas -> 2
  | Api.Fas -> 3
  | Api.Faa -> 4
  | Api.Spin -> 5
  | Api.Note -> 6
  | Api.Nop -> 7

let kind_of_code = [| Api.Read; Api.Write; Api.Cas; Api.Fas; Api.Faa; Api.Spin; Api.Note; Api.Nop |]

let charge ?(kind = Api.Read) eng pid rmr =
  if rmr > 0 then begin
    eng.total_rmr <- eng.total_rmr + rmr;
    eng.rmr_by_kind.(kind_code kind) <- eng.rmr_by_kind.(kind_code kind) + rmr;
    if eng.in_passage.(pid) then eng.passage_rmr.(pid) <- eng.passage_rmr.(pid) + rmr
  end

let close_passage eng pid ~completed =
  if eng.in_passage.(pid) then begin
    Vec.push eng.passages.(pid)
      {
        super = eng.passage_super.(pid);
        rmr = eng.passage_rmr.(pid);
        completed;
        latency = eng.step - eng.passage_start.(pid);
      };
    eng.in_passage.(pid) <- false;
    eng.passage_rmr.(pid) <- 0
  end

let enter_lock_cs eng pid id =
  eng.holding.(pid) <- id :: eng.holding.(pid);
  eng.occupancy.(id) <- eng.occupancy.(id) + 1;
  if eng.occupancy.(id) > eng.occupancy_max.(id) then eng.occupancy_max.(id) <- eng.occupancy.(id)

let leave_lock_cs eng pid id =
  if List.mem id eng.holding.(pid) then begin
    eng.holding.(pid) <- List.filter (fun x -> x <> id) eng.holding.(pid);
    eng.occupancy.(id) <- eng.occupancy.(id) - 1
  end

let handle_note eng pid (n : Event.note) =
  record_event eng (Event.Note { step = eng.step; pid; super = eng.completed.(pid); note = n });
  match n with
  | Seg Ncs_begin -> ()
  | Seg Req_begin ->
      (* A restart after a crash begins a new passage of the same
         super-passage: the super id is the index of the pending request. *)
      eng.in_passage.(pid) <- true;
      eng.passage_super.(pid) <- eng.completed.(pid);
      eng.passage_start.(pid) <- eng.step;
      eng.passage_rmr.(pid) <- 0
  | Seg Cs_begin ->
      if not eng.in_app_cs.(pid) then begin
        eng.in_app_cs.(pid) <- true;
        eng.global_cs <- eng.global_cs + 1;
        if eng.global_cs > eng.global_cs_max then eng.global_cs_max <- eng.global_cs
      end
  | Seg Cs_end ->
      if eng.in_app_cs.(pid) then begin
        eng.in_app_cs.(pid) <- false;
        eng.global_cs <- eng.global_cs - 1
      end
  | Seg Req_done ->
      eng.completed.(pid) <- eng.completed.(pid) + 1;
      eng.last_progress.(pid) <- eng.step;
      close_passage eng pid ~completed:true
  | Lock_acquired id -> enter_lock_cs eng pid id
  | Lock_release id -> leave_lock_cs eng pid id
  | Level l -> if l > eng.level_max.(pid) then eng.level_max.(pid) <- l
  | Lock_enter _ | Lock_released _ | Path _ | Custom _ -> ()

let open_unsafe eng pid lock =
  if not (List.mem lock eng.unsafe_open.(pid)) then
    eng.unsafe_open.(pid) <- lock :: eng.unsafe_open.(pid)

let close_unsafe eng pid lock =
  eng.unsafe_open.(pid) <- List.filter (fun x -> x <> lock) eng.unsafe_open.(pid)

(* Apply a non-spin instruction to shared memory, returning its result and
   RMR cost.  Window bookkeeping happens here so that a crash injected
   after the instruction sees the correct unsafe state. *)
let apply_view : type a. t -> int -> a Api.view -> a * int =
 fun eng pid view ->
  let mem = eng.mem in
  match view with
  | Api.V_read c -> Memory.read mem ~pid c
  | Api.V_write (c, v) -> ((), Memory.write mem ~pid c v)
  | Api.V_cas (c, expect, value) -> Memory.cas mem ~pid c ~expect ~value
  | Api.V_fas (c, v) -> Memory.fas mem ~pid c v
  | Api.V_fas_open_unsafe (lock, c, v) ->
      let r = Memory.fas mem ~pid c v in
      open_unsafe eng pid lock;
      r
  | Api.V_write_close_unsafe (lock, c, v) ->
      let m = Memory.write mem ~pid c v in
      close_unsafe eng pid lock;
      ((), m)
  | Api.V_fas_persist (c, v, dst) ->
      let old, m1 = Memory.fas mem ~pid c v in
      let m2 = Memory.write mem ~pid dst old in
      ((), m1 + m2)
  | Api.V_faa (c, v) -> Memory.faa mem ~pid c v
  | Api.V_note n ->
      handle_note eng pid n;
      ((), 0)
  | Api.V_get_done -> (eng.completed.(pid), 0)
  | Api.V_yield -> ((), 0)
  | Api.V_spin _ -> assert false (* handled by [exec] *)

let mutates : Api.kind -> bool = function
  | Api.Write | Api.Cas | Api.Fas | Api.Faa -> true
  | Api.Read | Api.Spin | Api.Note | Api.Nop -> false

let wake_parked eng (c : Cell.t) =
  if Hashtbl.mem eng.parked_cells c.id then begin
    let still_parked = ref false in
    for pid = 0 to eng.n - 1 do
      match eng.states.(pid) with
      | Parked p when Cell.equal p.pcell c ->
          if Api.cond_holds p.pcond (Memory.peek eng.mem c) then eng.states.(pid) <- Woken p
          else still_parked := true
      | Parked _ | Start | Ready _ | Woken _ | Halted -> ()
    done;
    if not !still_parked then Hashtbl.remove eng.parked_cells c.id
  end

(* Record an *applied* instruction together with the cell contents after it
   (for reads, the value read) — the data the replay checker feeds on. *)
let record_op : type a. t -> int -> a Api.view -> unit =
 fun eng pid view ->
  if eng.trace_ops then begin
    let emit ~kind (cell : Cell.t option) =
      record_event eng
        (Event.Op
           {
             step = eng.step;
             pid;
             kind;
             cell = (match cell with Some c -> c.Cell.name | None -> "-");
             value = (match cell with Some c -> Memory.peek eng.mem c | None -> 0);
           })
    in
    emit ~kind:(Fmt.str "%a" Api.pp_kind (Api.kind_of_view view)) (Api.cell_of_view view);
    (* fas_persist atomically touches a second cell; give it its own trace
       entry so replay sees every mutation. *)
    match view with
    | Api.V_fas_persist (_, _, dst) -> emit ~kind:"write" (Some dst)
    | _ -> ()
  end

let do_crash eng pid (kont : (unit -> unit) option) =
  record_event eng
    (Event.Crash
       {
         step = eng.step;
         pid;
         super = eng.completed.(pid);
         unsafe_wrt = eng.unsafe_open.(pid);
         holding = eng.holding.(pid);
         in_passage = eng.in_passage.(pid);
       });
  eng.crashes.(pid) <- eng.crashes.(pid) + 1;
  List.iter
    (fun lock -> eng.unsafe_crashes.(lock) <- eng.unsafe_crashes.(lock) + 1)
    eng.unsafe_open.(pid);
  List.iter (fun lock -> leave_lock_cs eng pid lock) eng.holding.(pid);
  if eng.in_app_cs.(pid) then begin
    eng.in_app_cs.(pid) <- false;
    eng.global_cs <- eng.global_cs - 1
  end;
  close_passage eng pid ~completed:false;
  Memory.forget eng.mem ~pid;
  eng.unsafe_open.(pid) <- [];
  (match kont with Some discontinue -> discontinue () | None -> ());
  eng.states.(pid) <- Start;
  eng.on_crash ~pid ~step:eng.step

let discontinue_of (type a) (k : (a, status) Effect.Deep.continuation) () =
  match Effect.Deep.discontinue k Crashed with
  | Stopped -> ()
  | Suspended _ ->
      (* The body swallowed [Crashed] and kept computing: forbidden. *)
      failwith "Engine: process body must not catch the crash exception"

let crash_now eng pid =
  match eng.states.(pid) with
  | Start -> do_crash eng pid None (* crash in NCS: nothing to discard *)
  | Ready (Suspended (_, k)) -> do_crash eng pid (Some (discontinue_of k))
  | Ready Stopped -> assert false
  | Parked p | Woken p -> do_crash eng pid (Some (discontinue_of p.pk))
  | Halted -> ()

let absorb eng pid (st : status) =
  match st with
  | Stopped -> eng.states.(pid) <- Halted
  | Suspended _ -> eng.states.(pid) <- Ready st

let op_info : type a. t -> int -> a Api.view -> Crash.op_info =
 fun eng pid view ->
  let info =
    {
      Crash.pid;
      step = eng.step;
      op_index = eng.op_index.(pid);
      kind = Api.kind_of_view view;
      cell = (match Api.cell_of_view view with Some c -> Some c.Cell.name | None -> None);
      note = (match view with Api.V_note n -> Some n | _ -> None);
      unsafe_wrt = eng.unsafe_open.(pid);
    }
  in
  eng.op_index.(pid) <- eng.op_index.(pid) + 1;
  eng.on_op info;
  info

let park eng pid (p : parked) =
  eng.states.(pid) <- Parked p;
  Hashtbl.replace eng.parked_cells p.pcell.Cell.id ()

(* Execute the pending instruction of [pid]. *)
let exec eng pid (st : status) =
  match st with
  | Stopped -> assert false
  | Suspended (view, k) -> (
      let info = op_info eng pid view in
      match Crash.on_op eng.crash info with
      | Crash Before -> do_crash eng pid (Some (discontinue_of k))
      | (No_crash | Crash After) as decision -> (
          match view with
          | Api.V_spin (cell, cond) ->
              let v, rmr = Memory.read eng.mem ~pid cell in
              charge ~kind:Api.Spin eng pid rmr;
              record_op eng pid view;
              if decision = Crash After then do_crash eng pid (Some (discontinue_of k))
              else if Api.cond_holds cond v then absorb eng pid (Effect.Deep.continue k ())
              else park eng pid { pk = k; pcell = cell; pcond = cond }
          | _ ->
              let res, rmr = apply_view eng pid view in
              charge ~kind:(Api.kind_of_view view) eng pid rmr;
              record_op eng pid view;
              (match Api.cell_of_view view with
              | Some c when mutates (Api.kind_of_view view) -> wake_parked eng c
              | Some _ | None -> ());
              if decision = Crash After then do_crash eng pid (Some (discontinue_of k))
              else absorb eng pid (Effect.Deep.continue k res)))

let step_process eng pid =
  match eng.states.(pid) with
  | Start ->
      let body = eng.body in
      absorb eng pid (Effect.Deep.match_with (fun () -> body ~pid) () handler)
  | Ready st -> exec eng pid st
  | Woken p ->
      let v, rmr = Memory.read eng.mem ~pid p.pcell in
      charge ~kind:Api.Spin eng pid rmr;
      if Api.cond_holds p.pcond v then absorb eng pid (Effect.Deep.continue p.pk ())
      else park eng pid p
  | Parked _ | Halted -> assert false

(* The access footprint of the step [pid] would take if scheduled now, for
   the explorer's partial-order reduction.  A [Start] dispatch only runs the
   body to its first suspension (pure local computation) and a [Woken]
   dispatch only re-reads the spin cell; neither consults the crash plan
   (no [op_info]), so neither is crashy whatever the plan. *)
let pending_footprint eng pid =
  match eng.states.(pid) with
  | Start -> Footprint.local ~pid
  | Ready (Suspended (view, _)) ->
      Footprint.of_view ~pid ~crashy:(eng.footprint_crashy pid) view
  | Woken p -> Footprint.waiting ~pid p.pcell
  | Ready Stopped | Parked _ | Halted -> assert false

let runnable eng =
  let out = ref [] in
  for pid = eng.n - 1 downto 0 do
    match eng.states.(pid) with
    | Start | Ready _ | Woken _ -> out := pid :: !out
    | Parked _ | Halted -> ()
  done;
  Array.of_list !out

(* Where is [pid] right now, for the watchdog's culprit report. *)
let segment eng pid =
  let base =
    if eng.in_app_cs.(pid) then "cs"
    else if not eng.in_passage.(pid) then "ncs"
    else if eng.holding.(pid) <> [] then
      Printf.sprintf "holding(%s)"
        (String.concat "," (List.map (fun id -> eng.lock_names.(id)) eng.holding.(pid)))
    else "entry"
  in
  match eng.states.(pid) with
  | Parked p -> Printf.sprintf "%s parked@%s" base p.pcell.Cell.name
  | Start | Ready _ | Woken _ | Halted -> base

(* Diagnose an abnormal end state.  Deadlock is structural (every live
   process parked).  On timeout, progress within the trailing
   [stall_window] steps separates the verdicts: some processes progressed
   while others did not — starvation, blame the left-behind; nobody
   progressed but processes are still being scheduled — livelock; everyone
   progressed recently — the run was healthy and simply ran out of step
   budget. *)
let classify_stall eng =
  let live = ref [] in
  for pid = eng.n - 1 downto 0 do
    match eng.states.(pid) with
    | Halted -> ()
    | Start | Ready _ | Woken _ | Parked _ -> live := pid :: !live
  done;
  let live = !live in
  let report kind pids = Some { stall_kind = kind; culprits = List.map (fun p -> (p, segment eng p)) pids } in
  if eng.deadlocked then report Deadlock live
  else if not eng.timed_out then None
  else begin
    let horizon = eng.step - eng.stall_window in
    let progressed p = eng.last_progress.(p) >= horizon in
    let starved = List.filter (fun p -> not (progressed p)) live in
    if starved = [] then report Underbudget live
    else if List.exists progressed live then report Starvation starved
    else begin
      (* Nobody progressed: livelock.  Blame the processes still burning
         steps; if even scheduling stopped reaching them, blame all live. *)
      let spinning = List.filter (fun p -> eng.last_sched.(p) >= horizon) live in
      report Livelock (if spinning = [] then live else spinning)
    end
  end

let finish eng =
  let procs =
    Array.init eng.n (fun pid ->
        {
          passages = Vec.to_list eng.passages.(pid);
          crashes = eng.crashes.(pid);
          completed = eng.completed.(pid);
          max_level = eng.level_max.(pid);
        })
  in
  let locks =
    Array.init (Array.length eng.lock_names) (fun id ->
        {
          lock_name = eng.lock_names.(id);
          max_occupancy = eng.occupancy_max.(id);
          unsafe_crashes = eng.unsafe_crashes.(id);
        })
  in
  {
    steps = eng.step;
    total_rmr = eng.total_rmr;
    rmr_by_kind =
      List.filter
        (fun (_, v) -> v > 0)
        (Array.to_list (Array.mapi (fun i v -> (kind_of_code.(i), v)) eng.rmr_by_kind));
    total_crashes = Array.fold_left ( + ) 0 eng.crashes;
    procs;
    locks;
    cs_max = eng.global_cs_max;
    deadlocked = eng.deadlocked;
    timed_out = eng.timed_out;
    stall = classify_stall eng;
    events = Vec.to_list eng.events;
  }

(* Domain-safety audit (parallel explorer): [run] is re-entrant.  Every
   piece of mutable state below — the store, the engine record, the fiber
   continuations, the per-process arrays — is created inside this call and
   never escapes it; the module has no top-level mutable bindings (and the
   same holds for Memory, Cell, Api, Crash and Vec).  Concurrent [run]s in
   different domains therefore share nothing, *provided* the caller's
   [sched], [crash], [setup] and [body] arguments are themselves
   domain-safe: a stateful scheduler or crash plan must be built fresh per
   run, and the closures must not capture shared mutable state. *)
let run ?(record = false) ?(trace_ops = false) ?(max_steps = 5_000_000) ?stall_window
    ?(on_crash = fun ~pid:_ ~step:_ -> ()) ?(on_op = fun _ -> ()) ?footprints
    ?(footprint_crashy = fun _ -> false) ~n ~model ~sched ~crash ~setup ~body () =
  let stall_window =
    match stall_window with Some w -> w | None -> max 1_000 (max_steps / 8)
  in
  if footprints <> None && n > 0xffff then
    invalid_arg "Engine.run: footprint recording supports at most 65536 processes";
  let mem = Memory.create model ~n in
  let ctx = { Ctx.mem; lock_names = Vec.create () } in
  let shared = setup ctx in
  let nlocks = Vec.length ctx.lock_names in
  let eng =
    {
      mem;
      n;
      sched;
      crash;
      record = record || trace_ops;
      trace_ops;
      max_steps;
      stall_window;
      on_crash;
      on_op;
      footprints;
      footprint_crashy;
      body = (fun ~pid -> body shared ~pid);
      states = Array.make n Start;
      step = 0;
      op_index = Array.make n 0;
      completed = Array.make n 0;
      crashes = Array.make n 0;
      last_progress = Array.make n (-1);
      last_sched = Array.make n (-1);
      unsafe_open = Array.make n [];
      holding = Array.make n [];
      in_passage = Array.make n false;
      in_app_cs = Array.make n false;
      passage_rmr = Array.make n 0;
      passage_super = Array.make n 0;
      passage_start = Array.make n 0;
      passages = Array.init n (fun _ -> Vec.create ());
      level_max = Array.make n 0;
      occupancy = Array.make nlocks 0;
      occupancy_max = Array.make nlocks 0;
      unsafe_crashes = Array.make nlocks 0;
      lock_names = Vec.to_array ctx.lock_names;
      parked_cells = Hashtbl.create 64;
      events = Vec.create ();
      rmr_by_kind = Array.make 8 0;
      total_rmr = 0;
      global_cs = 0;
      global_cs_max = 0;
      deadlocked = false;
      timed_out = false;
    }
  in
  let rec loop () =
    List.iter (crash_now eng) (Crash.async eng.crash ~step:eng.step);
    let ready = runnable eng in
    if Array.length ready = 0 then begin
      let any_parked =
        Array.exists (function Parked _ -> true | Start | Ready _ | Woken _ | Halted -> false) eng.states
      in
      if any_parked then eng.deadlocked <- true
      (* else: all halted — normal termination *)
    end
    else if eng.step >= eng.max_steps then eng.timed_out <- true
    else begin
      (* One footprint per runnable pid, in the (ascending) order of [ready]
         — the same order [Sched.trace] sorts decisions over, so the
         explorer can index footprints by (decision point, choice). *)
      (match eng.footprints with
      | None -> ()
      | Some buf -> Array.iter (fun p -> Vec.push buf (pending_footprint eng p)) ready);
      let pid = Sched.pick eng.sched ~runnable:ready ~step:eng.step in
      eng.last_sched.(pid) <- eng.step;
      step_process eng pid;
      eng.step <- eng.step + 1;
      loop ()
    end
  in
  loop ();
  finish eng

let all_passages res = Array.to_list res.procs |> List.concat_map (fun (p : proc_stats) -> p.passages)

let completed_passages res = List.filter (fun (p : passage) -> p.completed) (all_passages res)

let max_rmr res = List.fold_left (fun acc (p : passage) -> max acc p.rmr) 0 (all_passages res)

let super_totals res =
  Array.to_list res.procs
  |> List.concat_map (fun (proc : proc_stats) ->
         let tbl = Hashtbl.create 16 in
         List.iter
           (fun (p : passage) ->
             let cur = try Hashtbl.find tbl p.super with Not_found -> 0 in
             Hashtbl.replace tbl p.super (cur + p.rmr))
           proc.passages;
         Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])

let max_rmr_super res = List.fold_left max 0 (super_totals res)

let avg_rmr res =
  let ps = all_passages res in
  if ps = [] then 0.0
  else float_of_int (List.fold_left (fun acc (p : passage) -> acc + p.rmr) 0 ps) /. float_of_int (List.length ps)

let avg_rmr_super res =
  let ts = super_totals res in
  if ts = [] then 0.0
  else float_of_int (List.fold_left ( + ) 0 ts) /. float_of_int (List.length ts)

let total_completed res = Array.fold_left (fun acc (p : proc_stats) -> acc + p.completed) 0 res.procs

let latencies res =
  completed_passages res |> List.map (fun (p : passage) -> p.latency) |> List.sort compare

let percentile sorted q =
  match sorted with
  | [] -> 0
  | _ ->
      let len = List.length sorted in
      let ix = int_of_float (q *. float_of_int (len - 1)) in
      List.nth sorted (min (len - 1) (max 0 ix))

let pp_summary ppf res =
  Fmt.pf ppf
    "@[<v>steps=%d rmr=%d crashes=%d completed=%d cs_max=%d deadlocked=%b timed_out=%b%a@,%a@]"
    res.steps res.total_rmr res.total_crashes (total_completed res) res.cs_max res.deadlocked
    res.timed_out
    Fmt.(option (fun ppf s -> pf ppf "@,stall %a" pp_stall s))
    res.stall
    Fmt.(
      list ~sep:cut (fun ppf (l : lock_stats) ->
          pf ppf "lock %-20s max_occupancy=%d unsafe_crashes=%d" l.lock_name l.max_occupancy
            l.unsafe_crashes))
    (List.filter
       (fun (l : lock_stats) -> l.max_occupancy > 0 || l.unsafe_crashes > 0)
       (Array.to_list res.locks))
