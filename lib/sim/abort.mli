(** Abort (impatience) plans: the per-step decision axis for when a client
    gives up on its entry section.

    Structured exactly like {!Crash}: the engine consults a plan both per
    applied instruction ([on_op], over the same {!Crash.op_info}) and once
    per engine iteration ([async]); a positive decision delivers an {e
    abort signal} to the victim.  The engine only flags processes that are
    actually inside a lock's entry section ({!Event.Lock_enter} seen,
    {!Event.Lock_acquired} not yet), so plans may fire blindly; signals on
    already-flagged or non-waiting processes are no-ops.

    A flagged process observes the signal at its next abortable point
    ({!Api.spin_abortable} / {!Api.poll_abort}) and runs the lock's
    [try_abort] protocol (see {!Harness}); the signal resolves when the
    victim either aborts ({!Event.Abort_done}), loses the race and
    acquires instead ({!Event.Abort_lost_race}), acquires normally
    ({!Event.Lock_acquired} — the only resolution a non-abortable lock
    offers), or crashes.

    {b Winding contract} (record/replay and {!Engine.run_resumable}): a
    plan's internal state (RNG cursors, budgets, gap cursors) must evolve
    as a function of the consult sequence alone — the step counter and the
    logged op stream — never gated on the [view] oracles.  Victim {e
    selection} may read the view; state transitions may not.  Journal
    fast-forward winds plans by consulting [async] with {!blind_view} and
    discarding the decisions. *)

(** Engine oracles handed to [async] decisions, rebuilt fresh per run. *)
type view = {
  n : int;  (** number of processes *)
  waiting : int -> int;
      (** entry age of [pid] in engine steps; [-1] when the process is not
          inside any lock's entry section *)
  streak : int -> int;
      (** consecutive aborts of [pid]'s current super-passage — reset when
          a request resolves by acquisition, lost race, or crash *)
}

val blind_view : n:int -> view
(** The dummy view used when winding plans through a journal fast-forward:
    every [waiting] is [-1], every [streak] is [0]. *)

type t = {
  label : string;
  on_op : Crash.op_info -> bool;  (** signal the op's process before this op? *)
  async : step:int -> view -> int list;  (** pids to signal this iteration *)
  por : Crash.por_class;
      (** {!Crash.Robust} iff every decision is a function of the victim's
          own instruction history alone; [async] plans that read the step
          counter or the view are {!Crash.Sensitive} *)
}

val label : t -> string

val on_op : t -> Crash.op_info -> bool

val async : t -> step:int -> view -> int list

val por_class : t -> Crash.por_class

val none : t
(** Never signals.  The engine compares against this plan physically to
    skip all abort bookkeeping, so prefer passing [none] itself over an
    equivalent fresh plan. *)

val at_op : pid:int -> nth:int -> t
(** Signal [pid] immediately before its [nth] instruction (one-shot).
    Robust: the decision depends on the victim's own op index alone. *)

val async_at : (int * int) list -> t
(** [(step, pid)] pairs: signal [pid] at the first iteration whose global
    step counter reaches [step].  Sensitive. *)

val impatient : timeout_steps:int -> ?retries:int -> ?backoff:float -> unit -> t
(** The impatient-client workload shape: signal every process whose entry
    section has aged at least [timeout_steps * backoff ^ streak] engine
    steps, unless its abort streak has reached [retries] (it then turns
    patient and waits the acquisition out).  Defaults: unlimited retries,
    backoff 1.  Stateless, hence trivially wind-exact.  Sensitive. *)

val random : seed:int -> rate:float -> max_aborts:int -> ?pids:int list -> unit -> t
(** Seeded per-op coin flips: signal the op's process with probability
    [rate], at most [max_aborts] times.  Robust when restricted to a single
    pid, Sensitive otherwise. *)

val storm : seed:int -> rate:float -> max_aborts:int -> gap:int -> ?backoff:float -> unit -> t
(** Seeded async abort pressure with a cooldown [gap] that scales by
    [backoff]: each firing signals the oldest waiter (lowest pid on ties).
    Budget and RNG are consumed on the draw — not on victim existence — to
    honour the winding contract.  Sensitive. *)

val all : t list -> t
(** Union: signal iff any member signals.  Every member is consulted on
    every decision point (no short circuit) so stateful members wind
    identically; the por class is the robust union when all members are
    robust, Sensitive otherwise. *)

(** {1 Record and replay} *)

type fired = {
  a_pid : int;
  a_op_index : int;  (** victim's op index, [-1] for async firings *)
  a_step : int;
  a_async : bool;
}

val record_fired : t -> t * (unit -> fired list)
(** Wraps a plan so every positive decision is recorded; the thunk returns
    the firings in order. *)

val replay_fired : fired list -> t
(** A deterministic composite plan re-issuing exactly the recorded
    decisions: {!at_op} per op firing, {!async_at} per async firing. *)
