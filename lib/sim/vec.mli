(** Growable arrays.

    The standard library of OCaml 5.1 does not provide [Dynarray] yet, so the
    simulator carries its own minimal growable-array module.  Elements are
    stored contiguously; [push] is amortised O(1). *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty vector. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** [push t x] appends [x] at the end of [t]. *)

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th element.  @raise Invalid_argument when out of
    bounds. *)

val unsafe_get : 'a t -> int -> 'a
(** [unsafe_get t i] is [get t i] without the bounds check, for hot loops
    whose index is already validated against {!length}.  Out-of-bounds
    behaviour is undefined. *)

val set : 'a t -> int -> 'a -> unit
(** [set t i x] replaces the [i]-th element.  @raise Invalid_argument when out
    of bounds. *)

val last : 'a t -> 'a
(** [last t] is the most recently pushed element.  @raise Invalid_argument on
    an empty vector. *)

val pop : 'a t -> 'a
(** [pop t] removes and returns the last element.  @raise Invalid_argument on
    an empty vector. *)

val clear : 'a t -> unit
(** [clear t] removes all elements (O(1); storage is retained). *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val blit_prefix : 'a t -> int -> 'a t -> unit
(** [blit_prefix src len dst] appends the first [len] elements of [src] to
    [dst].  Used by the engine's checkpoint restore to seed a fresh
    per-run buffer with a snapshotted prefix.  @raise Invalid_argument
    when [len] exceeds [src]'s length. *)

val prefix_array : 'a t -> int -> 'a array
(** [prefix_array src len] is a fresh array of the first [len] elements.
    @raise Invalid_argument when [len] exceeds [src]'s length. *)

val of_list : 'a list -> 'a t
