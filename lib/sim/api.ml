type cond = Eq of int | Ne of int | Ge of int | Pred of (int -> bool)

let cond_holds c v =
  match c with Eq x -> v = x | Ne x -> v <> x | Ge x -> v >= x | Pred p -> p v

type kind = Read | Write | Cas | Fas | Faa | Spin | Note | Nop

let pp_kind ppf k =
  Fmt.string ppf
    (match k with
    | Read -> "read"
    | Write -> "write"
    | Cas -> "cas"
    | Fas -> "fas"
    | Faa -> "faa"
    | Spin -> "spin"
    | Note -> "note"
    | Nop -> "nop")

type _ view =
  | V_read : Cell.t -> int view
  | V_write : Cell.t * int -> unit view
  | V_cas : Cell.t * int * int -> bool view
  | V_fas : Cell.t * int -> int view
  | V_fas_open_unsafe : int * Cell.t * int -> int view
  | V_fas_persist : Cell.t * int * Cell.t -> unit view
  | V_write_close_unsafe : int * Cell.t * int -> unit view
  | V_faa : Cell.t * int -> int view
  | V_spin : Cell.t * cond -> unit view
  | V_spin_abortable : Cell.t * cond -> unit view
  | V_note : Event.note -> unit view
  | V_get_done : int view
  | V_get_step : int view
  | V_poll_abort : bool view
  | V_yield : unit view

exception Abort_signal

let kind_of_view : type a. a view -> kind = function
  | V_read _ -> Read
  | V_write _ -> Write
  | V_cas _ -> Cas
  | V_fas _ -> Fas
  | V_fas_open_unsafe _ -> Fas
  | V_fas_persist _ -> Fas
  | V_write_close_unsafe _ -> Write
  | V_faa _ -> Faa
  | V_spin _ -> Spin
  | V_spin_abortable _ -> Spin
  | V_note _ -> Note
  | V_get_done -> Nop
  | V_get_step -> Nop
  | V_poll_abort -> Nop
  | V_yield -> Nop

let cell_of_view : type a. a view -> Cell.t option = function
  | V_read c -> Some c
  | V_write (c, _) -> Some c
  | V_cas (c, _, _) -> Some c
  | V_fas (c, _) -> Some c
  | V_fas_open_unsafe (_, c, _) -> Some c
  | V_fas_persist (c, _, _) -> Some c
  | V_write_close_unsafe (_, c, _) -> Some c
  | V_faa (c, _) -> Some c
  | V_spin (c, _) -> Some c
  | V_spin_abortable (c, _) -> Some c
  | V_note _ | V_get_done | V_get_step | V_poll_abort | V_yield -> None

type _ Effect.t += Instr : 'a view -> 'a Effect.t

let read c = Effect.perform (Instr (V_read c))

let write c v = Effect.perform (Instr (V_write (c, v)))

let cas c ~expect ~value = Effect.perform (Instr (V_cas (c, expect, value)))

let fas c v = Effect.perform (Instr (V_fas (c, v)))

let faa c v = Effect.perform (Instr (V_faa (c, v)))

let fas_open_unsafe ~lock c v = Effect.perform (Instr (V_fas_open_unsafe (lock, c, v)))

let write_close_unsafe ~lock c v = Effect.perform (Instr (V_write_close_unsafe (lock, c, v)))

let fas_persist c v ~dst = Effect.perform (Instr (V_fas_persist (c, v, dst)))

let spin_until c cond = Effect.perform (Instr (V_spin (c, cond)))

let spin_abortable c cond = Effect.perform (Instr (V_spin_abortable (c, cond)))

let poll_abort () = Effect.perform (Instr V_poll_abort)

let note n = Effect.perform (Instr (V_note n))

let completed_requests () = Effect.perform (Instr V_get_done)

let step () = Effect.perform (Instr V_get_step)

let yield () = Effect.perform (Instr V_yield)
