type model = CC | DSM

let pp_model ppf = function
  | CC -> Fmt.string ppf "CC"
  | DSM -> Fmt.string ppf "DSM"

let model_of_string s =
  match String.lowercase_ascii s with
  | "cc" -> Some CC
  | "dsm" -> Some DSM
  | _ -> None

type t = {
  model : model;
  n : int;
  contents : int Vec.t;
  version : int Vec.t;
  (* [cached] holds, per cell, the version each process last fetched (the
     line is valid iff it equals the current version).  Rows are allocated
     lazily on a cell's first accounted access: large lock structures whose
     deep parts are never touched (e.g. the base levels of BA-Lock in a
     failure-free run) cost nothing.  Only used under CC. *)
  cached : int array option Vec.t;
  names : string Vec.t;
  homes : int Vec.t;
  (* RMR cost of the last unboxed-variant operation ([read_u] etc.): the
     engine's hot loop reads it back instead of allocating a result tuple
     per instruction. *)
  mutable last_cost : int;
}

let create model ~n =
  if n <= 0 then invalid_arg "Memory.create: n must be positive";
  {
    model;
    n;
    contents = Vec.create ();
    version = Vec.create ();
    cached = Vec.create ();
    names = Vec.create ();
    homes = Vec.create ();
    last_cost = 0;
  }

let model t = t.model

let n t = t.n

let alloc t ?(home = Cell.global) ~name v =
  if home <> Cell.global && (home < 0 || home >= t.n) then
    invalid_arg (Printf.sprintf "Memory.alloc %s: home %d out of range" name home);
  let id = Vec.length t.contents in
  Vec.push t.contents v;
  Vec.push t.version 0;
  Vec.push t.names name;
  Vec.push t.homes home;
  Vec.push t.cached None;
  Cell.make ~id ~name ~home

let cell_count t = Vec.length t.contents

let peek t (c : Cell.t) = Vec.get t.contents c.id

let poke t (c : Cell.t) v =
  Vec.set t.contents c.id v;
  Vec.set t.version c.id (Vec.get t.version c.id + 1)

let check_pid t pid =
  if pid < 0 || pid >= t.n then invalid_arg (Printf.sprintf "Memory: pid %d out of range" pid)

(* RMR cost of touching [c] from [pid] under DSM. *)
let dsm_cost (c : Cell.t) pid = if c.home = pid then 0 else 1

(* A fresh row means "cached by nobody": version 0 vs stored -1. *)
let row t (c : Cell.t) =
  match Vec.get t.cached c.id with
  | Some r -> r
  | None ->
      let r = Array.make t.n (-1) in
      Vec.set t.cached c.id (Some r);
      r

let forget t ~pid =
  check_pid t pid;
  if t.model = CC then
    for cell = 0 to Vec.length t.cached - 1 do
      match Vec.get t.cached cell with Some r -> r.(pid) <- -1 | None -> ()
    done

(* Unboxed variants: same accounting as the tuple-returning API below, but
   the cost lands in [last_cost] — the engine's per-instruction dispatch
   reads it back without a tuple allocation.  The tuple API stays as thin
   wrappers for tests and external callers. *)
let read_u t ~pid (c : Cell.t) =
  check_pid t pid;
  let v = Vec.get t.contents c.id in
  (match t.model with
  | DSM -> t.last_cost <- dsm_cost c pid
  | CC ->
      let r = row t c in
      let ver = Vec.get t.version c.id in
      if r.(pid) = ver then t.last_cost <- 0
      else begin
        r.(pid) <- ver;
        t.last_cost <- 1
      end);
  v

let last_cost t = t.last_cost

let read t ~pid (c : Cell.t) =
  let v = read_u t ~pid c in
  (v, t.last_cost)

(* A mutation bumps the version (invalidating every cached copy) and leaves
   the writer's cache holding the fresh value. *)
let mutate t ~pid (c : Cell.t) v =
  Vec.set t.contents c.id v;
  let ver = Vec.get t.version c.id + 1 in
  Vec.set t.version c.id ver;
  if t.model = CC then (row t c).(pid) <- ver

let write_cost t ~pid (c : Cell.t) = match t.model with CC -> 1 | DSM -> dsm_cost c pid

let write t ~pid (c : Cell.t) v =
  check_pid t pid;
  mutate t ~pid c v;
  write_cost t ~pid c

let cas_u t ~pid (c : Cell.t) ~expect ~value =
  check_pid t pid;
  let old = Vec.get t.contents c.id in
  t.last_cost <- write_cost t ~pid c;
  if old = expect then begin
    mutate t ~pid c value;
    true
  end
  else begin
    (* A failed CAS still fetched the line. *)
    if t.model = CC then (row t c).(pid) <- Vec.get t.version c.id;
    false
  end

let cas t ~pid (c : Cell.t) ~expect ~value =
  let ok = cas_u t ~pid c ~expect ~value in
  (ok, t.last_cost)

let fas_u t ~pid (c : Cell.t) v =
  check_pid t pid;
  let old = Vec.get t.contents c.id in
  mutate t ~pid c v;
  t.last_cost <- write_cost t ~pid c;
  old

let fas t ~pid (c : Cell.t) v =
  let old = fas_u t ~pid c v in
  (old, t.last_cost)

(* Point-in-time copy of the store for the engine's checkpoints: cell
   contents, write versions and the per-process cache validity rows.  The
   cell *layout* (names, homes, count) is not part of the image — a restore
   target is expected to have re-allocated the identical cells, which the
   engine guarantees by replaying [setup] and the body prefixes that
   performed the allocations. *)
type image = {
  i_contents : int array;
  i_version : int array;
  i_cached : int array option array;
}

let snapshot t =
  let len = Vec.length t.contents in
  {
    i_contents = Vec.prefix_array t.contents len;
    i_version = Vec.prefix_array t.version len;
    i_cached =
      Array.init len (fun c ->
          match Vec.get t.cached c with Some r -> Some (Array.copy r) | None -> None);
  }

let restore t img =
  let len = Array.length img.i_contents in
  if Vec.length t.contents <> len then
    invalid_arg
      (Printf.sprintf "Memory.restore: store has %d cells, image has %d — cell layout diverged"
         (Vec.length t.contents) len);
  for c = 0 to len - 1 do
    Vec.set t.contents c img.i_contents.(c);
    Vec.set t.version c img.i_version.(c);
    Vec.set t.cached c
      (match img.i_cached.(c) with Some r -> Some (Array.copy r) | None -> None)
  done

(* One-word digest of everything [snapshot] would copy: cell contents,
   write versions, and the per-process cache validity rows.  Two stores
   with equal fingerprints are equal for the explorer's purposes with the
   usual hash-collision caveat — callers that need certainty (the state
   cache) must pair the fingerprint with enough engine state that a
   collision can only cost duplicated work, never a verdict. *)
let fingerprint t =
  let mix h x = (h lxor x) * 0x100000001b3 land max_int in
  let h = ref (mix 0x2545f4914f6cdd1d t.n) in
  let len = Vec.length t.contents in
  for c = 0 to len - 1 do
    h := mix !h (Vec.get t.contents c);
    h := mix !h (Vec.get t.version c);
    match Vec.get t.cached c with
    | None -> h := mix !h 0x9e3779b9
    | Some r ->
        for p = 0 to t.n - 1 do
          h := mix !h r.(p)
        done
  done;
  !h

let faa_u t ~pid (c : Cell.t) d =
  check_pid t pid;
  let old = Vec.get t.contents c.id in
  mutate t ~pid c (old + d);
  t.last_cost <- write_cost t ~pid c;
  old

let faa t ~pid (c : Cell.t) d =
  let old = faa_u t ~pid c d in
  (old, t.last_cost)
