(** The standard process-execution loop (Algorithm 1 of the paper).

    A process repeatedly executes NCS, Recover, Enter, CS, Exit.  Locks are
    presented to the harness as a record of closures so that composite locks
    (SA-Lock, BA-Lock) compose at the value level; [acquire] covers the
    Recover and Enter segments, [release] the Exit segment.

    On a crash the engine restarts the whole body; the loop then consults
    {!Api.completed_requests} (recoverable application state) and resumes
    the interrupted super-passage, exactly as §2.3 prescribes. *)

type lock = { name : string; acquire : pid:int -> unit; release : pid:int -> unit }

val standard_body :
  ?cs:(pid:int -> unit) ->
  ?ncs:(pid:int -> unit) ->
  lock:lock ->
  requests:int ->
  int ->
  unit
(** [standard_body ~lock ~requests pid] is the Algorithm-1 loop, performing [requests] satisfied requests.  [cs]
    and [ncs] default to no-ops; both may perform {!Api} effects. *)

val run_lock :
  ?record:bool ->
  ?trace_ops:bool ->
  ?max_steps:int ->
  ?on_crash:(pid:int -> step:int -> unit) ->
  ?cs:(pid:int -> unit) ->
  ?ncs:(pid:int -> unit) ->
  n:int ->
  model:Memory.model ->
  sched:Sched.t ->
  crash:Crash.t ->
  requests:int ->
  make:(Engine.Ctx.t -> lock) ->
  unit ->
  Engine.result
(** Build a lock with [make] and drive all [n] processes through
    [standard_body] for [requests] requests each. *)

val counter_cell : Engine.Ctx.t -> Cell.t
(** A scratch cell for {!racy_increment}. *)

val racy_increment : Cell.t -> pid:int -> unit
(** A deliberately non-atomic read-then-write increment.  In a crash-free
    run protected by a correct mutex the final contents equal the number of
    critical sections executed; lost updates witness a mutual-exclusion
    violation. *)
