(** The standard process-execution loop (Algorithm 1 of the paper).

    A process repeatedly executes NCS, Recover, Enter, CS, Exit.  Locks are
    presented to the harness as a record of closures so that composite locks
    (SA-Lock, BA-Lock) compose at the value level; [acquire] covers the
    Recover and Enter segments, [release] the Exit segment.

    On a crash the engine restarts the whole body; the loop then consults
    {!Api.completed_requests} (recoverable application state) and resumes
    the interrupted super-passage, exactly as §2.3 prescribes. *)

(** Outcome of a lock's abort protocol. *)
type abort_outcome =
  | Aborted  (** the request was withdrawn; the entry section was left *)
  | Acquired_instead
      (** the abort raced an incoming handoff and lost: the process holds
          the lock and must proceed to the CS and release normally *)
  | Not_supported  (** the lock has no abort path; treat as acquire-through *)

val pp_abort_outcome : abort_outcome Fmt.t

type lock = {
  name : string;
  acquire : pid:int -> unit;
  release : pid:int -> unit;
  try_abort : (pid:int -> abort_outcome) option;
      (** abort port: called by {!standard_body} when [acquire] raises
          {!Api.Abort_signal}.  Locks whose [acquire] can raise must supply
          it (wrap with {!Rme_locks.Lock.instrument} to get the
          {!Event.note} milestones); legacy locks leave it [None] and never
          raise. *)
}

val standard_body :
  ?cs:(pid:int -> unit) ->
  ?ncs:(pid:int -> unit) ->
  lock:lock ->
  requests:int ->
  int ->
  unit
(** [standard_body ~lock ~requests pid] is the Algorithm-1 loop, performing [requests] satisfied requests.  [cs]
    and [ncs] default to no-ops; both may perform {!Api} effects.

    When [acquire] raises {!Api.Abort_signal} the loop runs [try_abort]:
    on [Aborted] it abandons the passage and retries from the NCS (the
    same super-passage — the request is still outstanding); on
    [Acquired_instead] / [Not_supported] it proceeds to the CS and
    releases normally. *)

val run_lock :
  ?record:bool ->
  ?trace_ops:bool ->
  ?max_steps:int ->
  ?on_crash:(pid:int -> step:int -> unit) ->
  ?abort:Abort.t ->
  ?cs:(pid:int -> unit) ->
  ?ncs:(pid:int -> unit) ->
  n:int ->
  model:Memory.model ->
  sched:Sched.t ->
  crash:Crash.t ->
  requests:int ->
  make:(Engine.Ctx.t -> lock) ->
  unit ->
  Engine.result
(** Build a lock with [make] and drive all [n] processes through
    [standard_body] for [requests] requests each. *)

val counter_cell : Engine.Ctx.t -> Cell.t
(** A scratch cell for {!racy_increment}. *)

val racy_increment : Cell.t -> pid:int -> unit
(** A deliberately non-atomic read-then-write increment.  In a crash-free
    run protected by a correct mutex the final contents equal the number of
    critical sections executed; lost updates witness a mutual-exclusion
    violation. *)
