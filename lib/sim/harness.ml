type lock = { name : string; acquire : pid:int -> unit; release : pid:int -> unit }

let standard_body ?(cs = fun ~pid:_ -> ()) ?(ncs = fun ~pid:_ -> ()) ~lock ~requests pid =
  while Api.completed_requests () < requests do
    Api.note (Event.Seg Event.Ncs_begin);
    ncs ~pid;
    Api.note (Event.Seg Event.Req_begin);
    lock.acquire ~pid;
    Api.note (Event.Seg Event.Cs_begin);
    cs ~pid;
    Api.note (Event.Seg Event.Cs_end);
    lock.release ~pid;
    Api.note (Event.Seg Event.Req_done)
  done

let run_lock ?record ?trace_ops ?max_steps ?on_crash ?cs ?ncs ~n ~model ~sched ~crash ~requests
    ~make () =
  Engine.run ?record ?trace_ops ?max_steps ?on_crash ~n ~model ~sched ~crash ~setup:make
    ~body:(fun lock ~pid -> standard_body ?cs ?ncs ~lock ~requests pid)
    ()

let counter_cell ctx = Memory.alloc (Engine.Ctx.memory ctx) ~name:"harness.counter" 0

let racy_increment cell ~pid:_ =
  let v = Api.read cell in
  Api.yield ();
  Api.write cell (v + 1)
