type abort_outcome = Aborted | Acquired_instead | Not_supported

let pp_abort_outcome ppf o =
  Fmt.string ppf
    (match o with
    | Aborted -> "aborted"
    | Acquired_instead -> "acquired-instead"
    | Not_supported -> "not-supported")

type lock = {
  name : string;
  acquire : pid:int -> unit;
  release : pid:int -> unit;
  try_abort : (pid:int -> abort_outcome) option;
}

let standard_body ?(cs = fun ~pid:_ -> ()) ?(ncs = fun ~pid:_ -> ()) ~lock ~requests pid =
  while Api.completed_requests () < requests do
    Api.note (Event.Seg Event.Ncs_begin);
    ncs ~pid;
    Api.note (Event.Seg Event.Req_begin);
    (* [acquire] raises [Api.Abort_signal] when it observes a pending abort
       signal at an abortable point; the abort protocol then decides
       whether the request was really abandoned.  [Aborted] restarts the
       passage (same super-passage: the request is still outstanding);
       [Acquired_instead] means the abort lost the race against a handoff
       and the process holds the lock after all.  [Not_supported] cannot
       surface here: locks without a protocol never raise. *)
    let acquired =
      match lock.acquire ~pid with
      | () -> true
      | exception Api.Abort_signal -> (
          match lock.try_abort with
          | None -> raise Api.Abort_signal (* no protocol: must not raise *)
          | Some try_abort -> (
              match try_abort ~pid with
              | Aborted -> false
              | Acquired_instead | Not_supported -> true))
    in
    if acquired then begin
      Api.note (Event.Seg Event.Cs_begin);
      cs ~pid;
      Api.note (Event.Seg Event.Cs_end);
      lock.release ~pid;
      Api.note (Event.Seg Event.Req_done)
    end
  done

let run_lock ?record ?trace_ops ?max_steps ?on_crash ?abort ?cs ?ncs ~n ~model ~sched ~crash
    ~requests ~make () =
  Engine.run ?record ?trace_ops ?max_steps ?on_crash ?abort ~n ~model ~sched ~crash ~setup:make
    ~body:(fun lock ~pid -> standard_body ?cs ?ncs ~lock ~requests pid)
    ()

let counter_cell ctx = Memory.alloc (Engine.Ctx.memory ctx) ~name:"harness.counter" 0

let racy_increment cell ~pid:_ =
  let v = Api.read cell in
  Api.yield ();
  Api.write cell (v + 1)
