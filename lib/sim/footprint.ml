(* Access footprints for partial-order reduction.

   A footprint describes, in one unboxed int, what a single engine step
   touches: the stepping pid, the shared location involved, and whether the
   access commutes with other accesses to the same location.  The explorer
   asks [independent] whether two steps of different processes can be
   swapped without changing any observable verdict; every "don't know" in
   the encoding errs towards "dependent", which costs pruning but never
   soundness.

   Layout (low to high bits):
     0-1   class: 0 local, 1 read, 2 write, 3 global
     2     crashy: the crash plan may fire on this step, so the step may
           additionally perform crash teardown (CS/lock bookkeeping)
     3-18  pid (16 bits)
     19+   location code: 0 none, 1 the application-CS pseudo-cell,
           2k+2 the real memory cell k, 2k+3 the pseudo-cell of lock k

   The pseudo-cells exist because the engine's aggregate statistics are
   shared state too: [cs_max] and per-lock [max_occupancy] are running
   maxima, and swapping an enter with another process's exit changes the
   observed peak.  Segment notes that only touch per-process counters
   ([Req_begin], [Req_done], levels, paths) are local. *)

type t = int

let cls_local = 0

let cls_read = 1

let cls_write = 2

let cls_global = 3

let code_none = 0

let code_cs = 1

let code_cell id = (2 * id) + 2

let code_lock id = (2 * id) + 3

let max_pid = 0xffff

let make ~pid ~crashy cls code =
  (code lsl 19) lor (pid lsl 3) lor (if crashy then 4 else 0) lor cls

let local ~pid = make ~pid ~crashy:false cls_local code_none

let pid t = (t lsr 3) land max_pid

let cls t = t land 3

let crashy t = t land 4 <> 0

let code t = t lsr 19

(* Pseudo-cells: the CS marker and the per-lock occupancy markers. *)
let is_pseudo code = code = 1 || (code >= 3 && code land 1 = 1)

(* A woken waiter's pending step re-checks its spin cell. *)
let waiting ~pid (c : Cell.t) = make ~pid ~crashy:false cls_write (code_cell c.Cell.id)

let of_note ~pid ~crashy (n : Event.note) =
  match n with
  | Event.Seg (Event.Cs_begin | Event.Cs_end) -> make ~pid ~crashy cls_write code_cs
  | Event.Seg (Event.Ncs_begin | Event.Req_begin | Event.Req_done) ->
      make ~pid ~crashy cls_local code_none
  | Event.Lock_acquired id | Event.Lock_release id | Event.Lock_enter id
  | Event.Lock_released id ->
      make ~pid ~crashy cls_write (code_lock id)
  (* Abort resolutions move the same per-lock occupancy aggregates the
     acquire/release milestones do. *)
  | Event.Abort_done id | Event.Abort_lost_race id | Event.Abort_request id ->
      make ~pid ~crashy cls_write (code_lock id)
  | Event.Level _ | Event.Path _ | Event.Custom _ | Event.Abort_signal ->
      make ~pid ~crashy cls_local code_none

let of_view : type a. pid:int -> crashy:bool -> a Api.view -> t =
 fun ~pid ~crashy view ->
  match view with
  | Api.V_read c -> make ~pid ~crashy cls_read (code_cell c.Cell.id)
  | Api.V_write (c, _) -> make ~pid ~crashy cls_write (code_cell c.Cell.id)
  | Api.V_cas (c, _, _) -> make ~pid ~crashy cls_write (code_cell c.Cell.id)
  | Api.V_fas (c, _) -> make ~pid ~crashy cls_write (code_cell c.Cell.id)
  | Api.V_fas_open_unsafe (_, c, _) -> make ~pid ~crashy cls_write (code_cell c.Cell.id)
  | Api.V_write_close_unsafe (_, c, _) -> make ~pid ~crashy cls_write (code_cell c.Cell.id)
  (* Touches two cells atomically; a single-location footprint cannot
     express that, so it conflicts with everything. *)
  | Api.V_fas_persist _ -> make ~pid ~crashy cls_global code_none
  | Api.V_faa (c, _) -> make ~pid ~crashy cls_write (code_cell c.Cell.id)
  (* Spins park and their writers unpark: order against any access to the
     cell matters, so the whole wait protocol is write-class. *)
  | Api.V_spin (c, _) -> make ~pid ~crashy cls_write (code_cell c.Cell.id)
  | Api.V_spin_abortable (c, _) -> make ~pid ~crashy cls_write (code_cell c.Cell.id)
  | Api.V_note n -> of_note ~pid ~crashy n
  | Api.V_get_done -> make ~pid ~crashy cls_local code_none
  (* Reads the global step counter — excluded from state keys and robust
     checks like latencies, so local for reduction purposes. *)
  | Api.V_get_step -> make ~pid ~crashy cls_local code_none
  (* Reads the engine's abort flag, which only abort decisions (covered by
     the Sensitive POR downgrade) and the process's own protocol move. *)
  | Api.V_poll_abort -> make ~pid ~crashy cls_local code_none
  | Api.V_yield -> make ~pid ~crashy cls_local code_none

(* Crash teardown (close the CS, drop held locks, forget the cache) commutes
   with other processes' plain memory accesses but not with anything that
   reads or moves the same aggregate state: the pseudo-cells, global steps,
   and other potentially-crashing steps. *)
let crash_conflict a b = crashy a && (crashy b || is_pseudo (code b) || cls b = cls_global)

let independent a b =
  let ca = a land 3 and cb = b land 3 in
  if ca = cls_global || cb = cls_global then false
  else if crash_conflict a b || crash_conflict b a then false
  else if ca = cls_local || cb = cls_local then true
  else code a <> code b || (ca = cls_read && cb = cls_read)

(* ------------------------------------------------------------------ *)
(* Happens-before / race-reversal analysis                             *)
(* ------------------------------------------------------------------ *)

(* Source-set computation for the explorer's dynamic partial-order
   reduction.  [Race.scan] walks the executed steps of one complete run,
   maintains a vector clock per process (the happens-before relation
   induced by program order plus dependence between steps, with
   {!independent} as the commutation oracle), and reports every
   {e reversible race}: a pair of dependent steps (k, j), k < j, of
   different processes with no intervening happens-before chain — exactly
   the pairs whose order the run committed to without being forced to.
   For each race at a branching decision position it emits the process the
   explorer must additionally schedule at [k] to cover the reversal: the
   first step after [k] that is not happens-after step [k] (an initial of
   the independent prefix of the reversal, in DPOR terms), defaulting to
   the racing step's own process when every intermediate step is ordered.

   Every "maybe dependent" in the footprint encoding errs towards
   reporting a race, which costs the explorer extra schedules but never
   coverage. *)
module Race = struct
  (* [scan ~n ~len ~executed ~degree ~emit]:
     [executed i] is the footprint of the step the run took at decision
     position [i]; [degree i] its branching degree (races at degree-1
     positions have no alternative schedule and are not emitted);
     [emit ~pos ~pid] demands that the explorer also try scheduling [pid]
     at position [pos].  O(len * n) plus the race-initial walks. *)
  let scan ~n ~len ~executed ~degree ~emit =
    if len > 0 then begin
      (* eclock.(j*n + q): highest position of a step of process [q] that
         happens-before (or is) step [j]; -1 if none. *)
      let eclock = Array.make (len * n) (-1) in
      (* cur.(p*n + q): the same clock carried forward along process [p]'s
         program order. *)
      let cur = Array.make (n * n) (-1) in
      (* positions of each process's steps so far, in order *)
      let evs = Array.init n (fun _ -> Vec.create ()) in
      let v = Array.make n (-1) in
      (* race candidates of one step: at most one per other process *)
      let cand_pos = Array.make n (-1) in
      for j = 0 to len - 1 do
        let f = executed j in
        let p = pid f in
        Array.blit cur (p * n) v 0 n;
        v.(p) <- j;
        if cls f <> cls_local then begin
          (* Last dependent step of every other process, ignoring steps
             already inside this step's happens-before past. *)
          for q = 0 to n - 1 do
            cand_pos.(q) <- -1;
            if q <> p then begin
              let qevs = evs.(q) in
              let i = ref (Vec.length qevs - 1) in
              let stop = ref false in
              while (not !stop) && !i >= 0 do
                let k = Vec.unsafe_get qevs !i in
                if k <= v.(q) then stop := true
                else if not (independent (executed k) f) then begin
                  cand_pos.(q) <- k;
                  stop := true
                end
                else decr i
              done
            end
          done;
          (* Process candidates latest-first so merging the clock of a
             later dependent step can reveal that an earlier candidate is
             already ordered (fewer false races). *)
          let continue_ = ref true in
          while !continue_ do
            let best = ref (-1) in
            for q = 0 to n - 1 do
              if cand_pos.(q) > !best then best := cand_pos.(q)
            done;
            if !best < 0 then continue_ := false
            else begin
              let k = !best in
              let fk = executed k in
              let q = pid fk in
              cand_pos.(q) <- -1;
              if k > v.(q) then begin
                (* Reversible race between steps k and j. *)
                (if degree k > 1 then
                   (* Initial of the reversal: first step after [k] not
                      happens-after step [k]; [eclock.(m*n+q) >= k] iff a
                      step of q at or past [k] happens-before step [m]. *)
                   let rec find m =
                     if m >= j then p
                     else if eclock.((m * n) + q) < k then pid (executed m)
                     else find (m + 1)
                   in
                   emit ~pos:k ~pid:(find (k + 1)));
                (* Dependence orders k before j for later steps. *)
                for r = 0 to n - 1 do
                  let x = eclock.((k * n) + r) in
                  if x > v.(r) then v.(r) <- x
                done;
                if k > v.(q) then v.(q) <- k
              end
              else begin
                (* Already ordered; still merge to tighten the clock. *)
                for r = 0 to n - 1 do
                  let x = eclock.((k * n) + r) in
                  if x > v.(r) then v.(r) <- x
                done
              end
            end
          done
        end;
        Array.blit v 0 eclock (j * n) n;
        Array.blit v 0 cur (p * n) n;
        Vec.push evs.(p) j
      done
    end
end

let pp ppf t =
  let k = match cls t with 0 -> "local" | 1 -> "read" | 2 -> "write" | _ -> "global" in
  let loc =
    let c = code t in
    if c = code_none then ""
    else if c = code_cs then "@CS"
    else if c land 1 = 1 then Printf.sprintf "@lock%d" ((c - 3) / 2)
    else Printf.sprintf "@cell%d" ((c - 2) / 2)
  in
  Fmt.pf ppf "p%d:%s%s%s" (pid t) k loc (if crashy t then "!" else "")
