(** Dependency-free SVG line charts for the sweep curves.

    Deliberately tiny: linear or log₂ x-axis, auto-scaled y-axis, one
    polyline per series with point markers and a legend.  Meant for the
    growth curves this repository produces (RMR vs F, RMR vs n), where a
    reviewer wants to eyeball √F against log n without external tooling. *)

type series = { label : string; points : (float * float) list }

val render :
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  series list ->
  string
(** Returns a complete standalone SVG document. *)

val write :
  path:string ->
  ?log_x:bool ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  series list ->
  unit
