open Rme_sim

type scenario =
  | No_failures
  | Fas_storm of { f : int; rate : float }
  | Random_storm of { crashes : int; rate : float }
  | Batch of { size : int; at_step : int; repeat : int; gap : int }

let pp_scenario ppf = function
  | No_failures -> Fmt.string ppf "none"
  | Fas_storm { f; rate } -> Fmt.pf ppf "fas-storm(F=%d,rate=%g)" f rate
  | Random_storm { crashes; rate } -> Fmt.pf ppf "random-storm(%d,rate=%g)" crashes rate
  | Batch { size; repeat; _ } -> Fmt.pf ppf "batch(size=%d,repeat=%d)" size repeat

let scenario_of_string s =
  match String.split_on_char ':' s with
  | [ "none" ] -> Some No_failures
  | [ "fas"; f ] -> int_of_string_opt f |> Option.map (fun f -> Fas_storm { f; rate = 0.5 })
  | [ "storm"; k ] ->
      int_of_string_opt k |> Option.map (fun crashes -> Random_storm { crashes; rate = 0.01 })
  | [ "batch"; k ] ->
      int_of_string_opt k
      |> Option.map (fun size -> Batch { size; at_step = 200; repeat = 1; gap = 1000 })
  | _ -> None

let crash_plan scenario ~seed =
  match scenario with
  | No_failures -> Crash.none
  | Fas_storm { f; rate } -> Crash.fas_gap ~seed ~rate ~max_crashes:f ~cell_suffix:".tail" ()
  | Random_storm { crashes; rate } -> Crash.random ~seed ~rate ~max_crashes:crashes ()
  | Batch { size; at_step; repeat; gap } ->
      Crash.all
        (List.init repeat (fun r ->
             Crash.batch ~step:(at_step + (r * gap)) ~pids:(List.init size (fun i -> i))))

type cfg = {
  n : int;
  model : Memory.model;
  requests : int;
  seed : int;
  scenario : scenario;
  record : bool;
  cs_yields : int;
  ncs_yields : int;
  max_steps : int;
}

let default_cfg =
  {
    n = 8;
    model = Memory.CC;
    requests = 8;
    seed = 1;
    scenario = No_failures;
    record = false;
    cs_yields = 2;
    ncs_yields = 0;
    max_steps = 5_000_000;
  }

let run (spec : Spec.t) cfg =
  let cs ~pid:_ =
    for _ = 1 to cfg.cs_yields do
      Api.yield ()
    done
  in
  let ncs ~pid:_ =
    for _ = 1 to cfg.ncs_yields do
      Api.yield ()
    done
  in
  Harness.run_lock ~record:cfg.record ~max_steps:cfg.max_steps ~cs ~ncs ~n:cfg.n ~model:cfg.model
    ~sched:(Sched.random ~seed:cfg.seed)
    ~crash:(crash_plan cfg.scenario ~seed:(cfg.seed + 7919))
    ~requests:cfg.requests ~make:spec.Spec.make ()

let run_key key cfg = run (Spec.find_exn key) cfg

type measurement = {
  max_rmr : float;
  avg_rmr : float;
  avg_super_rmr : float;
  crashes : int;
  max_level : int;
  satisfied : bool;
  me_ok : bool;
  throughput : float;  (* satisfied requests per 1000 engine steps *)
}

let measure (res : Engine.result) =
  {
    max_rmr = float_of_int (Engine.max_rmr res);
    avg_rmr = Engine.avg_rmr res;
    avg_super_rmr = Engine.avg_rmr_super res;
    crashes = res.Engine.total_crashes;
    max_level = Array.fold_left (fun acc (p : Engine.proc_stats) -> max acc p.max_level) 0 res.Engine.procs;
    satisfied =
      (not res.Engine.deadlocked) && not res.Engine.timed_out
      && Array.for_all (fun (p : Engine.proc_stats) -> p.completed > 0) res.Engine.procs;
    me_ok = res.Engine.cs_max <= 1;
    throughput =
      1000.0 *. float_of_int (Engine.total_completed res) /. float_of_int (max 1 res.Engine.steps);
  }

let sweep spec ~over xs = List.map (fun x -> (x, measure (run spec (over x)))) xs

let repeat_avg spec cfg ~seeds =
  let ms = List.map (fun seed -> measure (run spec { cfg with seed })) seeds in
  let k = float_of_int (List.length ms) in
  let sum f = List.fold_left (fun acc m -> acc +. f m) 0.0 ms in
  {
    max_rmr = List.fold_left (fun acc m -> Float.max acc m.max_rmr) 0.0 ms;
    avg_rmr = sum (fun m -> m.avg_rmr) /. k;
    avg_super_rmr = sum (fun m -> m.avg_super_rmr) /. k;
    crashes = List.fold_left (fun acc m -> acc + m.crashes) 0 ms / List.length ms;
    max_level = List.fold_left (fun acc m -> max acc m.max_level) 0 ms;
    satisfied = List.for_all (fun m -> m.satisfied) ms;
    me_ok = List.for_all (fun m -> m.me_ok) ms;
    throughput = sum (fun m -> m.throughput) /. k;
  }
