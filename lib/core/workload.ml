open Rme_sim

type scenario =
  | No_failures
  | Fas_storm of { f : int; rate : float }
  | Random_storm of { crashes : int; rate : float }
  | Batch of { size : int; at_step : int; repeat : int; gap : int }
  | Impatient of { timeout_steps : int; retries : int; backoff : float }

let pp_scenario ppf = function
  | No_failures -> Fmt.string ppf "none"
  | Fas_storm { f; rate } -> Fmt.pf ppf "fas-storm(F=%d,rate=%g)" f rate
  | Random_storm { crashes; rate } -> Fmt.pf ppf "random-storm(%d,rate=%g)" crashes rate
  | Batch { size; at_step; repeat; gap } ->
      Fmt.pf ppf "batch(size=%d,at=%d,repeat=%d,gap=%d)" size at_step repeat gap
  | Impatient { timeout_steps; retries; backoff } ->
      Fmt.pf ppf "impatient(T=%d,retries=%d,backoff=%g)" timeout_steps retries backoff

(* Accepts both the compact command-line grammar ("fas:3", "impatient:40:3:2")
   and the exact {!pp_scenario} rendering, so a scenario printed in a log or
   a report line can be fed straight back in (the round-trip the tests pin). *)
let scenario_of_string s =
  let scan fmt f = try Some (Scanf.sscanf s fmt f) with Scanf.Scan_failure _ | Failure _ | End_of_file -> None in
  let first_some l = List.fold_left (fun acc p -> match acc with Some _ -> acc | None -> p ()) None l in
  match String.split_on_char ':' s with
  | [ "none" ] -> Some No_failures
  | [ "fas"; f ] -> int_of_string_opt f |> Option.map (fun f -> Fas_storm { f; rate = 0.5 })
  | [ "storm"; k ] ->
      int_of_string_opt k |> Option.map (fun crashes -> Random_storm { crashes; rate = 0.01 })
  | [ "batch"; k ] ->
      int_of_string_opt k
      |> Option.map (fun size -> Batch { size; at_step = 200; repeat = 1; gap = 1000 })
  | [ "impatient"; t ] ->
      int_of_string_opt t
      |> Option.map (fun timeout_steps -> Impatient { timeout_steps; retries = 3; backoff = 2.0 })
  | [ "impatient"; t; r ] -> (
      match (int_of_string_opt t, int_of_string_opt r) with
      | Some timeout_steps, Some retries -> Some (Impatient { timeout_steps; retries; backoff = 2.0 })
      | _ -> None)
  | [ "impatient"; t; r; b ] -> (
      match (int_of_string_opt t, int_of_string_opt r, float_of_string_opt b) with
      | Some timeout_steps, Some retries, Some backoff ->
          Some (Impatient { timeout_steps; retries; backoff })
      | _ -> None)
  | _ ->
      first_some
        [
          (fun () ->
            scan "fas-storm(F=%d,rate=%f)%!" (fun f rate -> Fas_storm { f; rate }));
          (fun () ->
            scan "random-storm(%d,rate=%f)%!" (fun crashes rate -> Random_storm { crashes; rate }));
          (fun () ->
            scan "batch(size=%d,at=%d,repeat=%d,gap=%d)%!" (fun size at_step repeat gap ->
                Batch { size; at_step; repeat; gap }));
          (fun () ->
            scan "impatient(T=%d,retries=%d,backoff=%f)%!" (fun timeout_steps retries backoff ->
                Impatient { timeout_steps; retries; backoff }));
        ]

let scenario_grammar = "none | fas:F | storm:K | batch:SIZE | impatient:T[:RETRIES[:BACKOFF]]"

let crash_plan scenario ~seed =
  match scenario with
  | No_failures | Impatient _ -> Crash.none
  | Fas_storm { f; rate } -> Crash.fas_gap ~seed ~rate ~max_crashes:f ~cell_suffix:".tail" ()
  | Random_storm { crashes; rate } -> Crash.random ~seed ~rate ~max_crashes:crashes ()
  | Batch { size; at_step; repeat; gap } ->
      Crash.all
        (List.init repeat (fun r ->
             Crash.batch ~step:(at_step + (r * gap)) ~pids:(List.init size (fun i -> i))))

let abort_plan scenario =
  match scenario with
  | Impatient { timeout_steps; retries; backoff } -> Abort.impatient ~timeout_steps ~retries ~backoff ()
  | No_failures | Fas_storm _ | Random_storm _ | Batch _ -> Abort.none

type cfg = {
  n : int;
  model : Memory.model;
  requests : int;
  seed : int;
  scenario : scenario;
  record : bool;
  cs_yields : int;
  ncs_yields : int;
  max_steps : int;
}

let default_cfg =
  {
    n = 8;
    model = Memory.CC;
    requests = 8;
    seed = 1;
    scenario = No_failures;
    record = false;
    cs_yields = 2;
    ncs_yields = 0;
    max_steps = 5_000_000;
  }

let run (spec : Spec.t) cfg =
  let cs ~pid:_ =
    for _ = 1 to cfg.cs_yields do
      Api.yield ()
    done
  in
  let ncs ~pid:_ =
    for _ = 1 to cfg.ncs_yields do
      Api.yield ()
    done
  in
  Harness.run_lock ~record:cfg.record ~max_steps:cfg.max_steps ~cs ~ncs ~n:cfg.n ~model:cfg.model
    ~sched:(Sched.random ~seed:cfg.seed)
    ~crash:(crash_plan cfg.scenario ~seed:(cfg.seed + 7919))
    ~abort:(abort_plan cfg.scenario) ~requests:cfg.requests ~make:spec.Spec.make ()

let run_key key cfg = run (Spec.find_exn key) cfg

type measurement = {
  max_rmr : float;
  avg_rmr : float;
  avg_super_rmr : float;
  crashes : int;
  aborts : int;
  max_level : int;
  satisfied : bool;
  me_ok : bool;
  throughput : float;  (* satisfied requests per 1000 engine steps *)
}

let measure (res : Engine.result) =
  {
    max_rmr = float_of_int (Engine.max_rmr res);
    avg_rmr = Engine.avg_rmr res;
    avg_super_rmr = Engine.avg_rmr_super res;
    crashes = res.Engine.total_crashes;
    aborts =
      List.length
        (List.filter
           (fun (a : Engine.abort_stat) -> a.ab_result = Engine.Res_aborted)
           res.Engine.aborts);
    max_level = Array.fold_left (fun acc (p : Engine.proc_stats) -> max acc p.max_level) 0 res.Engine.procs;
    satisfied =
      (not res.Engine.deadlocked) && not res.Engine.timed_out
      && Array.for_all (fun (p : Engine.proc_stats) -> p.completed > 0) res.Engine.procs;
    me_ok = res.Engine.cs_max <= 1;
    throughput =
      1000.0 *. float_of_int (Engine.total_completed res) /. float_of_int (max 1 res.Engine.steps);
  }

let sweep spec ~over xs = List.map (fun x -> (x, measure (run spec (over x)))) xs

let repeat_avg spec cfg ~seeds =
  let ms = List.map (fun seed -> measure (run spec { cfg with seed })) seeds in
  let k = float_of_int (List.length ms) in
  let sum f = List.fold_left (fun acc m -> acc +. f m) 0.0 ms in
  {
    max_rmr = List.fold_left (fun acc m -> Float.max acc m.max_rmr) 0.0 ms;
    avg_rmr = sum (fun m -> m.avg_rmr) /. k;
    avg_super_rmr = sum (fun m -> m.avg_super_rmr) /. k;
    crashes = List.fold_left (fun acc m -> acc + m.crashes) 0 ms / List.length ms;
    aborts = List.fold_left (fun acc m -> acc + m.aborts) 0 ms / List.length ms;
    max_level = List.fold_left (fun acc m -> max acc m.max_level) 0 ms;
    satisfied = List.for_all (fun m -> m.satisfied) ms;
    me_ok = List.for_all (fun m -> m.me_ok) ms;
    throughput = sum (fun m -> m.throughput) /. k;
  }
