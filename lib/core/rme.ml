module Sim = Rme_sim
module Locks = Rme_locks
module Check = Rme_check
module Spec = Spec
module Workload = Workload
module Report = Report
module Svg_chart = Svg_chart

let version = "1.0.0"

let run ?n ?model ?requests ?seed ?scenario ?record key =
  let d = Workload.default_cfg in
  let cfg =
    {
      d with
      n = Option.value n ~default:d.Workload.n;
      model = Option.value model ~default:d.Workload.model;
      requests = Option.value requests ~default:d.Workload.requests;
      seed = Option.value seed ~default:d.Workload.seed;
      scenario = Option.value scenario ~default:d.Workload.scenario;
      record = Option.value record ~default:d.Workload.record;
    }
  in
  Workload.run_key key cfg
