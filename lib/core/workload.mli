(** Workload generation: scenarios, runs and parameter sweeps.

    A {!scenario} describes the failure regime of §2.5's three-way analysis
    — no failures, F "recent" failures, arbitrarily many failures — plus the
    batch-failure regime of §7.1.  {!run} drives a registered lock through
    the standard Algorithm-1 loop under a scenario and returns the engine
    result; the sweep helpers produce the (x, measurement) series the bench
    harness prints. *)

open Rme_sim

type scenario =
  | No_failures
  | Fas_storm of { f : int; rate : float }
      (** F unsafe (filter FAS-gap) failures — the adversary of Theorems
          5.17-5.19.  [rate] is the per-FAS crash probability. *)
  | Random_storm of { crashes : int; rate : float }
      (** arbitrary failures anywhere in the passage *)
  | Batch of { size : int; at_step : int; repeat : int; gap : int }
      (** §7.1: [repeat] batches of [size] simultaneous crashes, the first
          at [at_step], then every [gap] steps *)
  | Impatient of { timeout_steps : int; retries : int; backoff : float }
      (** timeout/impatience: every waiter that has been in its entry
          section for [timeout_steps] consecutive steps receives an abort
          signal, up to [retries] times per super-passage, with the
          effective timeout multiplied by [backoff] after each abort
          (deterministic — no crashes, no RNG). *)

val pp_scenario : scenario Fmt.t

val scenario_of_string : string -> scenario option
(** ["none"], ["fas:F"], ["storm:K"], ["batch:SIZE"],
    ["impatient:T[:RETRIES[:BACKOFF]]"] — plus the exact {!pp_scenario}
    rendering of every arm, so printed scenarios round-trip. *)

val scenario_grammar : string
(** The compact grammar, for usage/error messages. *)

val crash_plan : scenario -> seed:int -> Crash.t

val abort_plan : scenario -> Abort.t
(** The abort-decision axis a scenario implies: {!Abort.impatient} for
    [Impatient], {!Abort.none} for every crash-only scenario. *)

type cfg = {
  n : int;
  model : Memory.model;
  requests : int;
  seed : int;
  scenario : scenario;
  record : bool;
  cs_yields : int;  (** critical-section length in scheduling points *)
  ncs_yields : int;  (** think time between requests *)
  max_steps : int;
}

val default_cfg : cfg

val run : Spec.t -> cfg -> Engine.result

val run_key : string -> cfg -> Engine.result

(** {1 Measurements} *)

type measurement = {
  max_rmr : float;  (** max RMRs over passages *)
  avg_rmr : float;  (** mean RMRs per passage *)
  avg_super_rmr : float;  (** mean RMRs per super-passage *)
  crashes : int;
  aborts : int;  (** abort signals resolved as [Res_aborted] *)
  max_level : int;  (** deepest BA level reached by any process *)
  satisfied : bool;  (** all requests satisfied (SF) *)
  me_ok : bool;  (** application-CS mutual exclusion held *)
  throughput : float;  (** satisfied requests per 1000 engine steps *)
}

val measure : Engine.result -> measurement

val sweep : Spec.t -> over:('a -> cfg) -> 'a list -> ('a * measurement) list
(** Run the lock once per parameter value, averaging nothing — runs are
    deterministic given the seed. *)

val repeat_avg : Spec.t -> cfg -> seeds:int list -> measurement
(** Run once per seed and average the numeric fields (max fields take the
    max). *)
