type series = { label : string; points : (float * float) list }

let palette = [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b" |]

let render ?(width = 640) ?(height = 420) ?(log_x = false) ~title ~xlabel ~ylabel seriesv =
  let margin_l = 60 and margin_r = 20 and margin_t = 40 and margin_b = 50 in
  let plot_w = float_of_int (width - margin_l - margin_r) in
  let plot_h = float_of_int (height - margin_t - margin_b) in
  let tx x = if log_x then log x /. log 2.0 else x in
  let all = List.concat_map (fun s -> s.points) seriesv in
  let all = List.filter (fun (x, _) -> (not log_x) || x > 0.0) all in
  let xs = List.map (fun (x, _) -> tx x) all and ys = List.map snd all in
  let fold f init l = List.fold_left f init l in
  let xmin = fold Float.min infinity xs and xmax = fold Float.max neg_infinity xs in
  let ymin = 0.0 and ymax = Float.max 1.0 (fold Float.max neg_infinity ys *. 1.08) in
  let xspan = Float.max 1e-9 (xmax -. xmin) and yspan = Float.max 1e-9 (ymax -. ymin) in
  let px x = float_of_int margin_l +. ((tx x -. xmin) /. xspan *. plot_w) in
  let py y = float_of_int margin_t +. ((ymax -. y) /. yspan *. plot_h) in
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     font-family=\"sans-serif\" font-size=\"12\">\n"
    width height;
  pf "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" width height;
  pf "<text x=\"%d\" y=\"22\" font-size=\"15\" font-weight=\"bold\">%s</text>\n" margin_l title;
  (* axes *)
  let x0 = float_of_int margin_l and y0 = float_of_int (height - margin_b) in
  pf "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"black\"/>\n" x0 y0
    (x0 +. plot_w) y0;
  pf "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"black\"/>\n" x0
    (float_of_int margin_t) x0 y0;
  pf "<text x=\"%g\" y=\"%d\" text-anchor=\"middle\">%s</text>\n"
    (x0 +. (plot_w /. 2.0))
    (height - 12) xlabel;
  pf
    "<text x=\"14\" y=\"%g\" text-anchor=\"middle\" transform=\"rotate(-90 14 %g)\">%s</text>\n"
    (float_of_int margin_t +. (plot_h /. 2.0))
    (float_of_int margin_t +. (plot_h /. 2.0))
    ylabel;
  (* y ticks: 5 evenly spaced *)
  for i = 0 to 4 do
    let v = ymin +. (yspan *. float_of_int i /. 4.0) in
    let y = py v in
    pf "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#ddd\"/>\n" x0 y (x0 +. plot_w) y;
    pf "<text x=\"%g\" y=\"%g\" text-anchor=\"end\">%.0f</text>\n" (x0 -. 6.0) (y +. 4.0) v
  done;
  (* x ticks from the union of sample xs *)
  let tick_xs = List.sort_uniq compare (List.map fst all) in
  List.iter
    (fun x ->
      let xp = px x in
      pf "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"black\"/>\n" xp y0 xp (y0 +. 4.0);
      pf "<text x=\"%g\" y=\"%g\" text-anchor=\"middle\">%.0f</text>\n" xp (y0 +. 18.0) x)
    tick_xs;
  (* series *)
  List.iteri
    (fun i s ->
      let color = palette.(i mod Array.length palette) in
      let pts =
        List.filter (fun (x, _) -> (not log_x) || x > 0.0) s.points
        |> List.map (fun (x, y) -> Printf.sprintf "%g,%g" (px x) (py y))
      in
      pf "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"2\" points=\"%s\"/>\n" color
        (String.concat " " pts);
      List.iter
        (fun (x, y) ->
          if (not log_x) || x > 0.0 then
            pf "<circle cx=\"%g\" cy=\"%g\" r=\"3\" fill=\"%s\"/>\n" (px x) (py y) color)
        s.points;
      (* legend *)
      let ly = margin_t + 8 + (i * 18) in
      pf "<rect x=\"%d\" y=\"%d\" width=\"12\" height=\"4\" fill=\"%s\"/>\n"
        (width - margin_r - 150) ly color;
      pf "<text x=\"%d\" y=\"%d\">%s</text>\n" (width - margin_r - 132) (ly + 6) s.label)
    seriesv;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write ~path ?log_x ~title ~xlabel ~ylabel seriesv =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?log_x ~title ~xlabel ~ylabel seriesv))
