(** The lock registry: every algorithm in the repository, by name.

    This is the catalogue the CLI, the examples and the bench harness draw
    from; the [table1] tag marks the rows of the paper's Table 1 (plus the
    extra baselines this reproduction adds). *)

(** How a lock's RMR complexity is expected to behave — the classification
    vocabulary of §2.5 (Table 2). *)
type expectation = {
  failure_free : string;  (** e.g. "O(1)" *)
  limited_failures : string;  (** e.g. "O(sqrt F)" *)
  arbitrary_failures : string;  (** e.g. "O(log n / log log n)" *)
  recoverability : [ `None | `Weak | `Strong ];
}

type t = {
  key : string;
  descr : string;
  expectation : expectation;
  ff_bound : (int -> int) option;
      (** enforced contract: a concrete upper bound, as a function of n, on
          the worst failure-free passage RMRs under CC.  The test suite
          drives every spec across n and fails if a passage exceeds it —
          the asymptotic claim made falsifiable. *)
  table1 : bool;  (** include in the Table-1 reproduction *)
  crash_safe : bool;  (** may be driven with crash plans (false: plain MCS) *)
  abortable : bool;
      (** carries a real abort port: may be driven with abort plans
          ({!Rme_sim.Abort}) and is subject to the abort-liveness and
          lost-wakeup checkers.  Non-abortable locks can still be probed
          through {!Rme_locks.Lock.abortable}, which answers
          [Not_supported]. *)
  make : Rme_locks.Lock.maker;
}

val all : t list

val find : string -> t option

val find_exn : string -> t

val keys : unit -> string list

val headline : t
(** The paper's contribution: BA-Lock over the JJJ-shape base lock. *)
