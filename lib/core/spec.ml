open Rme_locks

type expectation = {
  failure_free : string;
  limited_failures : string;
  arbitrary_failures : string;
  recoverability : [ `None | `Weak | `Strong ];
}

type t = {
  key : string;
  descr : string;
  expectation : expectation;
  ff_bound : (int -> int) option;
  table1 : bool;
  crash_safe : bool;
  abortable : bool;
  make : Lock.maker;
}

let expect ?(rec_ = `Strong) ff lf af =
  { failure_free = ff; limited_failures = lf; arbitrary_failures = af; recoverability = rec_ }

(* Concrete failure-free CC bounds.  Constants were calibrated once against
   the implementation (see test_contracts.ml) and then FROZEN: a regression
   that makes any passage costlier than its complexity class allows now
   fails the suite.  log2c n = ceil(log2 n). *)
let log2c n =
  let rec go size l = if size >= n then l else go (2 * size) (l + 1) in
  go 1 0

let const k = Some (fun _ -> k)

let logarithmic per base = Some (fun n -> base + (per * log2c n))

let sublog per base = Some (fun n -> base + (per * Rme_locks.Jjj_tree.depth_for n))

let linear per base = Some (fun n -> base + (per * n))

let all =
  [
    {
      key = "mcs";
      descr = "original MCS queue lock (Mellor-Crummey & Scott); not recoverable";
      expectation = expect ~rec_:`None "O(1)" "deadlocks" "deadlocks";
      ff_bound = const 12;
      table1 = false;
      crash_safe = false;
      abortable = false;
      make = Mcs.make;
    };
    {
      key = "mcs-be";
      descr = "MCS with Dvir-Taubenfeld wait-free exit; not recoverable";
      expectation = expect ~rec_:`None "O(1)" "deadlocks" "deadlocks";
      ff_bound = const 14;
      table1 = false;
      crash_safe = false;
      abortable = false;
      make = Mcs_be.make;
    };
    {
      key = "clh";
      descr = "CLH implicit-queue lock (Craig, Landin & Hagersten); not recoverable";
      expectation = expect ~rec_:`None "O(1) (CC only)" "deadlocks" "deadlocks";
      ff_bound = const 10;
      table1 = false;
      crash_safe = false;
      abortable = false;
      make = Clh.make;
    };
    {
      key = "wr";
      descr = "WR-Lock: weakly recoverable MCS (Algorithm 2, the filter lock)";
      expectation = expect ~rec_:`Weak "O(1)" "O(1)" "O(1)";
      ff_bound = const 20;
      table1 = true;
      crash_safe = true;
      abortable = false;
      make = Wr_lock.make;
    };
    {
      key = "wr-abort";
      descr = "WR-Lock with an abortable waiting spin; withdrawal relays the hand-off onward";
      expectation = expect ~rec_:`Weak "O(1)" "O(1)" "O(1)";
      ff_bound = const 20;
      table1 = false;
      crash_safe = true;
      abortable = true;
      make = Wr_lock.make_abort;
    };
    {
      key = "wr-reclaim";
      descr = "WR-Lock with the section-7.2 epoch memory-reclamation pools";
      expectation = expect ~rec_:`Weak "O(1)" "O(1)" "O(1)";
      ff_bound = const 34;
      table1 = false;
      crash_safe = true;
      abortable = false;
      make =
        (fun ctx ->
          let r = Reclaim.create ctx in
          Wr_lock.lock (Wr_lock.create ~name:"wr-reclaim" ~alloc:(Reclaim.alloc r)
                          ~retire:(fun ~pid -> Reclaim.retire r ~pid) ctx));
    };
    {
      key = "wr-reclaim-dsm";
      descr = "WR-Lock with notification-based reclamation (7.2, DSM variant)";
      expectation = expect ~rec_:`Weak "O(1)" "O(1)" "O(1)";
      ff_bound = const 34;
      table1 = false;
      crash_safe = true;
      abortable = false;
      make =
        (fun ctx ->
          let r = Reclaim.create ~name:"reclaim-dsm" ~notify:true ctx in
          Wr_lock.lock
            (Wr_lock.create ~name:"wr-reclaim-dsm" ~alloc:(Reclaim.alloc r)
               ~retire:(fun ~pid -> Reclaim.retire r ~pid)
               ctx));
    };
    {
      key = "tas";
      descr = "recoverable test-and-set spinlock; no RMR guarantee";
      expectation = expect "O(1) uncontended" "O(n) contended" "O(n) contended";
      ff_bound = linear 14 16;
      table1 = true;
      crash_safe = true;
      abortable = false;
      make = Tas_lock.make;
    };
    {
      key = "bakery";
      descr = "recoverable Bakery (reads/writes only); O(n) scans";
      expectation = expect "O(n)" "O(n)" "O(n)";
      ff_bound = linear 4 20;
      table1 = true;
      crash_safe = true;
      abortable = false;
      make = Bakery.make;
    };
    {
      key = "bakery-abort";
      descr = "recoverable Bakery with abortable peer scans; withdrawal relinquishes the ticket";
      expectation = expect "O(n)" "O(n)" "O(n)";
      ff_bound = linear 4 20;
      table1 = false;
      crash_safe = true;
      abortable = true;
      make = Bakery.make_abort;
    };
    {
      key = "tas-abort";
      descr = "abortable hand-off spinlock: claim/grant protocol, abort races the claim";
      expectation = expect ~rec_:`None "O(1) uncontended" "O(n) contended" "n/a";
      (* The round-robin claim scan usually short-circuits at the first
         registered waiter; only an empty scan walks all n flags. *)
      ff_bound = linear 2 16;
      table1 = false;
      crash_safe = false;
      abortable = true;
      make = Tas_abort.make;
    };
    {
      key = "tournament";
      descr = "binary tournament of recoverable arbitrators; Jayanti-Joshi / GR shape";
      expectation = expect "O(log n)" "O(log n)" "O(log n)";
      ff_bound = logarithmic 20 8;
      table1 = true;
      crash_safe = true;
      abortable = false;
      make = Tournament.make;
    };
    {
      key = "jjj";
      descr = "k-ary arbitration tree of k-port locks; Jayanti-Jayanti-Joshi shape";
      expectation = expect "O(log n/log log n)" "O(log n/log log n)" "O(log n/log log n)";
      ff_bound = sublog 20 8;
      table1 = true;
      crash_safe = true;
      abortable = false;
      make = Jjj_tree.make;
    };
    {
      key = "ramaraju";
      descr = "flat k-port lock with the atomic FAS-and-persist instruction (Ramaraju 2015)";
      expectation = expect "O(1)" "O(1)" "O(1)";
      ff_bound = const 20;
      table1 = true;
      crash_safe = true;
      abortable = false;
      make =
        (fun ctx ->
          Kport.as_lock (Kport.create ~name:"ramaraju" ~k:(Rme_sim.Engine.Ctx.n ctx) ctx));
    };
    {
      key = "sa-bakery";
      descr = "SA-Lock over the O(n) bakery core: Golab-Ramaraju 4.2 shape (semi-adaptive)";
      expectation = expect "O(1)" "O(n)" "O(n)";
      ff_bound = const 38;
      table1 = true;
      crash_safe = true;
      abortable = false;
      make =
        (fun ctx ->
          Sa_lock.lock
            (Sa_lock.create ~name:"sa-bakery" ~core:(Bakery.make_named ~name:"sa-bakery.core" ctx) ctx));
    };
    {
      key = "sa-tournament";
      descr = "SA-Lock over the tournament core (semi-adaptive, well-bounded)";
      expectation = expect "O(1)" "O(log n)" "O(log n)";
      ff_bound = const 38;
      table1 = false;
      crash_safe = true;
      abortable = false;
      make =
        (fun ctx ->
          Sa_lock.lock
            (Sa_lock.create ~name:"sa-tournament"
               ~core:(Tournament.make_named ~name:"sa-tournament.core" ctx)
               ctx));
    };
    {
      key = "sa-jjj";
      descr = "SA-Lock over the JJJ-shape core (semi-adaptive, well-bounded)";
      expectation = expect "O(1)" "O(log n/log log n)" "O(log n/log log n)";
      ff_bound = const 38;
      table1 = false;
      crash_safe = true;
      abortable = false;
      make =
        (fun ctx ->
          Sa_lock.lock
            (Sa_lock.create ~name:"sa-jjj" ~core:(Jjj_tree.make_named ~name:"sa-jjj.core" ctx) ctx));
    };
    {
      key = "ba-bakery";
      descr = "BA-Lock over the O(n) bakery base: the transformation is base-agnostic";
      expectation = expect "O(1)" "O(sqrt F)" "O(n)";
      ff_bound = const 38;
      table1 = false;
      crash_safe = true;
      abortable = false;
      make = (fun ctx -> Ba_lock.lock (Ba_lock.create ~name:"ba-b" ~base:Bakery.make ctx));
    };
    {
      key = "ba-tournament";
      descr = "BA-Lock (recursive framework) over the tournament base lock";
      expectation = expect "O(1)" "O(sqrt F)" "O(log n)";
      ff_bound = const 38;
      table1 = false;
      crash_safe = true;
      abortable = false;
      make = (fun ctx -> Ba_lock.lock (Ba_lock.create ~name:"ba-t" ~base:Tournament.make ctx));
    };
    {
      key = "ba-jjj";
      descr = "BA-Lock over the JJJ-shape base lock: the paper's contribution";
      expectation = expect "O(1)" "O(sqrt F)" "O(log n/log log n)";
      ff_bound = const 38;
      table1 = true;
      crash_safe = true;
      abortable = false;
      make = Ba_lock.default;
    };
    {
      key = "jjj-sys";
      descr = "JJJ ticket lock recoverable under system-wide crashes (arXiv 2302.00748 shape)";
      expectation = expect "O(1)" "O(1) + repair scans" "O(n) repair scans";
      ff_bound = const 16;
      table1 = false;
      crash_safe = true;
      abortable = false;
      make = Jjj_sys.make;
    };
    {
      key = "dm-jjj";
      descr = "Dhoked-Mittal fair/adaptive transformation over the JJJ-shape tree (arXiv 2110.08308)";
      expectation = expect "O(1)" "O(1) + base recovery" "O(n) repair scans";
      ff_bound = sublog 20 24;
      table1 = false;
      crash_safe = true;
      abortable = false;
      make = Dm_lock.make_over ~name:"dm-jjj" ~base:Jjj_tree.make;
    };
    {
      key = "dm-ba-jjj";
      descr = "Dhoked-Mittal transformation over the headline BA-Lock: adaptive and fair";
      expectation = expect "O(1)" "O(sqrt F)" "O(n) repair scans";
      ff_bound = const 62;
      table1 = false;
      crash_safe = true;
      abortable = false;
      make = Dm_lock.make_over ~name:"dm-ba" ~base:Ba_lock.default;
    };
    {
      key = "ba-jjj-tracked";
      descr = "BA-Lock with the section-7.3 last-known-level restart optimisation";
      expectation = expect "O(1)" "O(sqrt F)" "O(log n/log log n)";
      ff_bound = const 40;
      table1 = false;
      crash_safe = true;
      abortable = false;
      make =
        (fun ctx ->
          Ba_lock.lock (Ba_lock.create ~name:"ba-tracked" ~track_level:true ~base:Jjj_tree.make ctx));
    };
  ]

let find key = List.find_opt (fun s -> s.key = key) all

let find_exn key =
  match find key with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "unknown lock %S (expected one of: %s)" key
           (String.concat ", " (List.map (fun s -> s.key) all)))

let keys () = List.map (fun s -> s.key) all

let headline = find_exn "ba-jjj"
