(** Adaptive recoverable mutual exclusion — public facade.

    Reproduction of Dhoked & Mittal, "An Adaptive Approach to Recoverable
    Mutual Exclusion" (PODC 2020).  The library bundles:

    - {!Sim}: a deterministic shared-memory simulator with crash injection
      and RMR accounting under the CC and DSM models;
    - {!Locks}: the paper's algorithms (WR-Lock, SA-Lock, BA-Lock, memory
      reclamation) and the baseline locks of its Table 1;
    - {!Check}: history property checkers and a bounded exhaustive schedule
      explorer;
    - {!Spec} / {!Workload} / {!Report}: the experiment harness.

    Quickstart:
    {[
      let res =
        Rme.Workload.run Rme.Spec.headline
          { Rme.Workload.default_cfg with n = 8; scenario = Fas_storm { f = 4; rate = 0.5 } }
      in
      Fmt.pr "%a@." Rme.Sim.Engine.pp_summary res
    ]} *)

module Sim = Rme_sim
module Locks = Rme_locks
module Check = Rme_check
module Spec = Spec
module Workload = Workload
module Report = Report
module Svg_chart = Svg_chart

val version : string

val run :
  ?n:int ->
  ?model:Rme_sim.Memory.model ->
  ?requests:int ->
  ?seed:int ->
  ?scenario:Workload.scenario ->
  ?record:bool ->
  string ->
  Rme_sim.Engine.result
(** [run key] drives the lock registered under [key] through the standard
    workload.  Defaults: n = 8, CC, 8 requests per process, no failures. *)
