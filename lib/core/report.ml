let csv_string cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "," (List.map csv_string header));
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (String.concat "," (List.map csv_string row));
          output_char oc '\n')
        rows)

let table_to_string ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> if String.length cell > width.(i) then width.(i) <- String.length cell))
    all;
  let buf = Buffer.create 256 in
  let add_row r =
    List.iteri (fun i cell -> Buffer.add_string buf (Printf.sprintf "%-*s  " width.(i) cell)) r;
    Buffer.add_char buf '\n'
  in
  add_row header;
  add_row (List.init (List.length header) (fun i -> String.make width.(i) '-'));
  List.iter add_row rows;
  Buffer.contents buf

let table ~header ~rows = print_string (table_to_string ~header ~rows)

let series ~title ~xlabel ~ylabel points =
  Printf.printf "\n%s\n" title;
  let ymax = List.fold_left (fun acc (_, y) -> Float.max acc y) 1.0 points in
  Printf.printf "  %12s  %12s\n" xlabel ylabel;
  List.iter
    (fun (x, y) ->
      let bar = int_of_float (40.0 *. y /. ymax) in
      Printf.printf "  %12g  %12.2f  %s\n" x y (String.make (max 0 bar) '#'))
    points

let slope points =
  (* least squares y = a x + b over the given points *)
  match points with
  | [] | [ _ ] -> 0.0
  | _ ->
      let n = float_of_int (List.length points) in
      let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
      let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
      let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
      let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
      let denom = (n *. sxx) -. (sx *. sx) in
      if Float.abs denom < 1e-9 then 0.0 else ((n *. sxy) -. (sx *. sy)) /. denom

let positive points = List.filter (fun (x, y) -> x > 0.0 && y > 0.0) points

let fit_exponent points = slope (List.map (fun (x, y) -> (log x, log y)) (positive points))

let fit_log points = slope (List.map (fun (x, y) -> (log x, y)) (positive points))

type growth = Flat | Logarithmic | Sqrt | Linear | Superlinear

let pp_growth ppf g =
  Fmt.string ppf
    (match g with
    | Flat -> "O(1)"
    | Logarithmic -> "~log"
    | Sqrt -> "~sqrt"
    | Linear -> "~linear"
    | Superlinear -> "superlinear")

let classify points =
  let e = fit_exponent points in
  if e < 0.12 then Flat
  else if e < 0.33 then Logarithmic
  else if e < 0.72 then Sqrt
  else if e < 1.3 then Linear
  else Superlinear

type classification = { pm1 : bool; pm2a : bool; pm2b : bool; pm3a : bool; pm3b : bool }

let yn b = if b then "yes" else "no"

let pp_classification ppf c =
  Fmt.pf ppf "PM1=%s PM2a=%s PM2b=%s PM3a=%s PM3b=%s" (yn c.pm1) (yn c.pm2a) (yn c.pm2b)
    (yn c.pm3a) (yn c.pm3b)

let adaptivity_name c =
  if c.pm2b then "super-adaptive"
  else if c.pm2a then "adaptive"
  else if c.pm1 then "semi-adaptive"
  else "non-adaptive"

let boundedness_name c = if c.pm3b then "well-bounded" else if c.pm3a then "bounded" else "unbounded"

let classify_lock ~failure_free_vs_n ~rmr_vs_f ~limited_vs_n ~arbitrary_vs_n =
  let pm1 = classify failure_free_vs_n = Flat in
  let f_growth = classify rmr_vs_f in
  (* PM2a: the limited-failure cost must be O(g(F)) for a monotone function
     of F alone — so besides at-most-linear growth in F (GR §4.1's O(F) is
     still "adaptive"), the cost at a fixed small F must not scale with n
     (that is what separates semi-adaptive locks, whose first failure sends
     them to an O(h(n)) core, from adaptive ones).  PM2b: o(F). *)
  let f_only = classify limited_vs_n = Flat in
  let pm2a = pm1 && f_only && f_growth <> Superlinear in
  let pm2b = pm2a && (f_growth = Flat || f_growth = Logarithmic || f_growth = Sqrt) in
  let n_growth = classify arbitrary_vs_n in
  let pm3a = n_growth <> Superlinear in
  (* PM3b (o(log n)): flat or very slowly growing curves qualify.  Over
     n in [4, 64] the measured binary tournament (a true Theta(log n) lock)
     fits an exponent of ~0.4 while the sub-logarithmic locks fit ~0.2-0.26,
     so 0.3 cleanly separates the two regimes (see EXPERIMENTS.md). *)
  let pm3b = pm3a && (n_growth = Flat || fit_exponent arbitrary_vs_n < 0.3) in
  { pm1; pm2a; pm2b; pm3a; pm3b }
