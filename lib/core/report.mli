(** Table and series rendering for the bench harness, plus the growth
    classifier behind the Table-2 reproduction. *)

val table : header:string list -> rows:string list list -> unit
(** Print an aligned text table to stdout. *)

val table_to_string : header:string list -> rows:string list list -> string
(** The same aligned text table as a string — what {!table} prints.  Used
    where the rendering must be captured byte-for-byte (the conformance
    matrix artifact and its determinism test). *)

val write_csv : path:string -> header:string list -> rows:string list list -> unit
(** Write the same table as RFC-4180-style CSV (for external plotting). *)

val series : title:string -> xlabel:string -> ylabel:string -> (float * float) list -> unit
(** Print a (x, y) series with a crude log-scale spark column. *)

val fit_exponent : (float * float) list -> float
(** Least-squares slope of log y against log x: ≈0 for flat, ≈0.5 for √x,
    ≈1 for linear growth.  Points with non-positive coordinates are
    dropped. *)

val fit_log : (float * float) list -> float
(** Least-squares slope of y against log x — distinguishes logarithmic from
    polynomial growth when {!fit_exponent} is small. *)

type growth = Flat | Logarithmic | Sqrt | Linear | Superlinear

val pp_growth : growth Fmt.t

val classify : (float * float) list -> growth
(** Classify a measured growth curve by its fitted exponent. *)

(** {1 Table 2 performance measures (§2.5)} *)

type classification = {
  pm1 : bool;  (** constantness: failure-free RMR is flat *)
  pm2a : bool;  (** adaptive: limited-failure RMR grows with F only *)
  pm2b : bool;  (** super-adaptive: ... and sub-linearly, o(F) *)
  pm3a : bool;  (** bounded: arbitrary-failure RMR bounded by h(n) *)
  pm3b : bool;  (** well-bounded: ... with h = o(log n) *)
}

val pp_classification : classification Fmt.t

val adaptivity_name : classification -> string
(** "non-adaptive" / "semi-adaptive" / "adaptive" / "super-adaptive". *)

val boundedness_name : classification -> string
(** "unbounded" / "bounded" / "well-bounded". *)

val classify_lock :
  failure_free_vs_n:(float * float) list ->
  rmr_vs_f:(float * float) list ->
  limited_vs_n:(float * float) list ->
  arbitrary_vs_n:(float * float) list ->
  classification
(** Derive the §2.5 performance measures from four measured curves:
    failure-free cost vs n, cost vs F at fixed n, cost at fixed small F vs
    n (separates adaptive from semi-adaptive), and cost under heavy
    failures vs n. *)
