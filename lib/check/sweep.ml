open Rme_sim

(* ------------------------------------------------------------------ *)
(* Sites                                                               *)
(* ------------------------------------------------------------------ *)

type site = { pid : int; op_index : int; kind : Api.kind; cell : string option; step : int }

let kind_string = function
  | Api.Read -> "read"
  | Api.Write -> "write"
  | Api.Cas -> "cas"
  | Api.Fas -> "fas"
  | Api.Faa -> "faa"
  | Api.Spin -> "spin"
  | Api.Note -> "note"
  | Api.Nop -> "nop"

let site_label s =
  Printf.sprintf "p%d#%d %s%s" s.pid s.op_index (kind_string s.kind)
    (match s.cell with Some c -> " " ^ c | None -> "")

let pp_site ppf s = Fmt.string ppf (site_label s)

let site_signature s =
  Printf.sprintf "%s/%s/%d" (kind_string s.kind)
    (match s.cell with Some c -> c | None -> "-")
    s.op_index

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

type plan =
  | No_crash
  | Single of site * Crash.point
  | Async_park of site
  | Pair of (site * Crash.point) * (site * Crash.point)
  | System of int
  | Sys_pair of int * int

let point_string = function Crash.Before -> "before" | Crash.After -> "after"

let plan_label = function
  | No_crash -> "no-crash"
  | Single (s, pt) -> point_string pt ^ " " ^ site_label s
  | Async_park s -> "async@" ^ site_label s
  | Pair ((s1, p1), (s2, p2)) ->
      Printf.sprintf "%s %s + %s %s" (point_string p1) (site_label s1) (point_string p2)
        (site_label s2)
  | System step -> Printf.sprintf "system@%d" step
  | Sys_pair (s1, s2) -> Printf.sprintf "system@%d + system@%d" s1 s2

let crash_of_plan plan () =
  match plan with
  | No_crash -> Crash.none
  | Single (s, pt) -> Crash.at_op ~pid:s.pid ~nth:s.op_index pt
  (* +1: the plan must fire strictly after the spin instruction executed,
     i.e. while the process is (potentially) parked on it. *)
  | Async_park s -> Crash.async_at [ (s.step + 1, s.pid) ]
  | Pair ((s1, p1), (s2, p2)) ->
      Crash.all
        [
          Crash.at_op ~pid:s1.pid ~nth:s1.op_index p1;
          Crash.at_op ~pid:s2.pid ~nth:s2.op_index p2;
        ]
  | System step -> Crash.system_at ~step
  | Sys_pair (s1, s2) -> Crash.all [ Crash.system_at ~step:s1; Crash.system_at ~step:s2 ]

(* ------------------------------------------------------------------ *)
(* Scenarios, properties, configuration                                *)
(* ------------------------------------------------------------------ *)

type scenario = Scenario : { setup : Engine.Ctx.t -> 'a; body : 'a -> pid:int -> unit } -> scenario

let lock_scenario ?(cs_yields = 4) ~requests make =
  let cs ~pid:_ =
    for _ = 1 to cs_yields do
      Api.yield ()
    done
  in
  Scenario
    { setup = make; body = (fun lock ~pid -> Harness.standard_body ~cs ~lock ~requests pid) }

type prop = {
  prop_name : string;
  check : Engine.result -> string option;
  expected_under_crash : bool;
  needs_record : bool;
}

let me_prop ?(expected_under_crash = false) () =
  {
    prop_name = "ME";
    check = Props.mutual_exclusion;
    expected_under_crash;
    needs_record = false;
  }

let sf_prop ?(expected_under_crash = false) ~requests () =
  {
    prop_name = "SF";
    check = (fun res -> Props.starvation_freedom res ~requests);
    expected_under_crash;
    needs_record = false;
  }

let weak_me_prop ~lock_id =
  {
    prop_name = "weakME";
    check = (fun res -> Props.weak_me_intervals res ~lock_id);
    expected_under_crash = false;
    needs_record = true;
  }

let responsiveness_prop ~lock_id =
  {
    prop_name = "resp";
    check = (fun res -> Props.responsiveness res ~lock_id);
    expected_under_crash = false;
    needs_record = false;
  }

let abort_liveness_prop ~supported =
  {
    prop_name = "abortLive";
    check =
      (fun res ->
        Props.abort_liveness res ~bound:Props.default_abort_expect.Props.liveness_bound
          ~supported);
    expected_under_crash = false;
    needs_record = false;
  }

let no_lost_wakeup_prop () =
  {
    prop_name = "noLostWakeup";
    check =
      (fun res ->
        Props.no_lost_wakeup res ~bound:Props.default_abort_expect.Props.overtake_bound);
    expected_under_crash = false;
    needs_record = true;
  }

let abort_rmr_prop () =
  {
    prop_name = "abortRMR";
    check =
      (fun res -> Props.abort_rmr res ~bound:Props.default_abort_expect.Props.rmr_bound);
    expected_under_crash = false;
    needs_record = false;
  }

type crash_model = Per_process | System_wide

let crash_model_string = function Per_process -> "per-process" | System_wide -> "system-wide"

type cfg = {
  max_runs_per_plan : int;
  max_steps : int;
  budget : int;
  site_cap : int;
  plan_cap : int;
  site_kinds : Api.kind list option;
  crash_model : crash_model;
  abort_timeout : int option;
  jobs : int;
  split_depth : int;
}

let default_cfg =
  {
    max_runs_per_plan = 300;
    max_steps = 4_000;
    budget = 1;
    site_cap = 96;
    plan_cap = 256;
    site_kinds = None;
    crash_model = Per_process;
    abort_timeout = None;
    jobs = 1;
    split_depth = 1;
  }

(* ------------------------------------------------------------------ *)
(* The sweep                                                           *)
(* ------------------------------------------------------------------ *)

type finding = {
  f_plan : plan;
  f_prop : string;
  f_message : string;
  f_witness : int list;
  f_expected : bool;
}

let pp_finding ppf f =
  Fmt.pf ppf "%s%s under [%s]: %s (witness %a)" f.f_prop
    (if f.f_expected then " (expected)" else " FAIL")
    (plan_label f.f_plan) f.f_message
    Fmt.(Dump.list int)
    f.f_witness

type campaign = {
  sites_seen : int;
  sites : site list;
  sites_truncated : bool;
  plans_total : int;
  plans_run : int;
  plans_truncated : bool;
  runs : int;
  findings : finding list;
}

let take k l = List.filteri (fun i _ -> i < k) l

let discover cfg ~n ~model scenario =
  match scenario with
  | Scenario { setup; body } ->
      let wanted =
        match cfg.site_kinds with None -> fun _ -> true | Some ks -> fun k -> List.mem k ks
      in
      let seen = ref 0 in
      let acc = ref [] in
      let sigs = Hashtbl.create 64 in
      let on_op (info : Crash.op_info) =
        if wanted info.kind then begin
          incr seen;
          let s =
            {
              pid = info.pid;
              op_index = info.op_index;
              kind = info.kind;
              cell = info.cell;
              step = info.step;
            }
          in
          let key = site_signature s in
          if not (Hashtbl.mem sigs key) then begin
            Hashtbl.add sigs key ();
            acc := s :: !acc
          end
        end
      in
      (* The crash-free discovery run replays the explorer's root schedule
         (empty decision vector = lowest runnable pid at every point), so
         the discovered op_index anchors transfer to explored runs. *)
      let decisions = Vec.create () in
      let record = Vec.create () in
      let sched = Sched.trace ~decisions ~record () in
      let (_ : Engine.result) =
        Engine.run ~max_steps:cfg.max_steps ~on_op ~n ~model ~sched ~crash:Crash.none ~setup
          ~body ()
      in
      let sites = List.rev !acc in
      let truncated = List.length sites > cfg.site_cap in
      let sites = if truncated then take cfg.site_cap sites else sites in
      (!seen, sites, truncated)

let plans_of_sites cfg sites =
  if cfg.budget <= 0 then [ No_crash ]
  else
    match cfg.crash_model with
    | Per_process ->
        let singles =
          List.concat_map (fun s -> [ Single (s, Crash.Before); Single (s, Crash.After) ]) sites
        in
        let parks =
          List.filter_map (fun s -> if s.kind = Api.Spin then Some (Async_park s) else None) sites
        in
        let pairs =
          if cfg.budget < 2 then []
          else
            let rec go = function
              | [] -> []
              | s :: rest ->
                  List.map (fun s' -> Pair ((s, Crash.After), (s', Crash.After))) rest @ go rest
            in
            go sites
        in
        (No_crash :: singles) @ parks @ pairs
    | System_wide ->
        (* The whole system crashes at once, so the only free coordinate is
           {e when}: one plan per distinct global step a (deduplicated)
           site executed at in the discovery run — every phase the
           algorithm passes through is hit at least once — plus ordered
           step pairs when the budget allows a second crash (recovery
           itself re-crashed). *)
        let steps = List.sort_uniq compare (List.map (fun s -> s.step) sites) in
        let singles = List.map (fun st -> System st) steps in
        let pairs =
          if cfg.budget < 2 then []
          else
            let rec go = function
              | [] -> []
              | st :: rest -> List.map (fun st' -> Sys_pair (st, st')) rest @ go rest
            in
            go steps
        in
        (No_crash :: singles) @ pairs

(* The per-plan violation message is tagged with the property that raised
   it; the explorer's [check] returns a single string, so the tag travels
   in-band behind a separator no checker message contains. *)
let tag_sep = '\x1f'

let check_of props res =
  let rec go = function
    | [] -> None
    | p :: rest -> (
        match p.check res with
        | Some msg -> Some (Printf.sprintf "%s%c%s" p.prop_name tag_sep msg)
        | None -> go rest)
  in
  go props

let split_tagged tagged =
  match String.index_opt tagged tag_sep with
  | Some i -> (String.sub tagged 0 i, String.sub tagged (i + 1) (String.length tagged - i - 1))
  | None -> ("?", tagged)

let abort_of_cfg cfg () =
  match cfg.abort_timeout with
  | None -> Abort.none
  | Some timeout_steps -> Abort.impatient ~timeout_steps ()

let explore_once cfg ~n ~model ~record ~crash scenario check =
  let abort = abort_of_cfg cfg in
  match scenario with
  | Scenario { setup; body } ->
      if cfg.jobs <= 1 then
        Explore.explore ~max_runs:cfg.max_runs_per_plan ~max_steps:cfg.max_steps ~record ~abort
          ~n ~model ~crash ~setup ~body ~check ()
      else
        Explore.explore_parallel ~max_runs:cfg.max_runs_per_plan ~max_steps:cfg.max_steps
          ~record ~abort ~domains:cfg.jobs ~split_depth:cfg.split_depth ~n ~model ~crash ~setup
          ~body ~check ()

let sweep cfg ~n ~model ~props scenario =
  let sites_seen, sites, sites_truncated = discover cfg ~n ~model scenario in
  let all_plans = plans_of_sites cfg sites in
  let plans_total = List.length all_plans in
  let plans_truncated = plans_total > cfg.plan_cap in
  let plans = if plans_truncated then take cfg.plan_cap all_plans else all_plans in
  let runs = ref 0 in
  let findings = ref [] in
  List.iter
    (fun plan ->
      (* Expectation classes: under No_crash every violation is a FAIL;
         under a crashing plan the expected properties are checked in a
         separate second pass, so an expected violation (e.g. WR-Lock's
         FAS-gap ME overlap) can never mask a FAIL of the same plan. *)
      let classes =
        match plan with
        | No_crash -> [ (props, false) ]
        | _ ->
            let expected, unexpected =
              List.partition (fun p -> p.expected_under_crash) props
            in
            (match unexpected with [] -> [] | ps -> [ (ps, false) ])
            @ (match expected with [] -> [] | ps -> [ (ps, true) ])
      in
      List.iter
        (fun (ps, expected) ->
          let record = List.exists (fun p -> p.needs_record) ps in
          let outcome =
            explore_once cfg ~n ~model ~record ~crash:(crash_of_plan plan) scenario
              (check_of ps)
          in
          runs := !runs + outcome.Explore.runs;
          match outcome.Explore.violation with
          | None -> ()
          | Some (tagged, witness) ->
              let prop_name, msg = split_tagged tagged in
              findings :=
                {
                  f_plan = plan;
                  f_prop = prop_name;
                  f_message = msg;
                  f_witness = witness;
                  f_expected = expected;
                }
                :: !findings)
        classes)
    plans;
  {
    sites_seen;
    sites;
    sites_truncated;
    plans_total;
    plans_run = List.length plans;
    plans_truncated;
    runs = !runs;
    findings = List.rev !findings;
  }

(* ------------------------------------------------------------------ *)
(* The conformance matrix                                              *)
(* ------------------------------------------------------------------ *)

type subject = {
  subject_name : string;
  subject_n : int;
  subject_scenario : scenario;
  subject_props : prop list;
}

let standard_subject ~name ~n ~requests ?cs_yields ?(abortable = false) ~recoverability make =
  let abort_props =
    if abortable then
      [ abort_liveness_prop ~supported:true; no_lost_wakeup_prop (); abort_rmr_prop () ]
    else []
  in
  let props =
    match recoverability with
    | `Strong -> [ me_prop (); sf_prop ~requests () ]
    | `None ->
        (* Not crash-recoverable: a crash may wedge the queue, so deadlock
           under a crashing plan is the expected failure mode — but ME must
           survive anyway. *)
        [ me_prop (); sf_prop ~expected_under_crash:true ~requests () ]
    | `Weak ->
        (* Registered weakly recoverable locks take lock id 0 (the lock
           registers itself first in setup). *)
        [ me_prop ~expected_under_crash:true (); weak_me_prop ~lock_id:0;
          responsiveness_prop ~lock_id:0 ]
  in
  {
    subject_name = name;
    subject_n = n;
    subject_scenario = lock_scenario ?cs_yields ~requests make;
    subject_props = props @ abort_props;
  }

type verdict = Pass | Expected of int | Fail of finding

let verdict_string = function
  | Pass -> "pass"
  | Expected k -> Printf.sprintf "expected(%d)" k
  | Fail _ -> "FAIL"

type mrow = { row_subject : string; row_verdicts : (string * verdict) list; row_campaign : campaign }

let matrix cfg ~model ~subjects =
  List.map
    (fun s ->
      let campaign = sweep cfg ~n:s.subject_n ~model ~props:s.subject_props s.subject_scenario in
      let verdict_of prop =
        let mine = List.filter (fun f -> f.f_prop = prop.prop_name) campaign.findings in
        match List.find_opt (fun f -> not f.f_expected) mine with
        | Some f -> Fail f
        | None -> ( match List.length mine with 0 -> Pass | k -> Expected k)
      in
      {
        row_subject = s.subject_name;
        row_verdicts = List.map (fun p -> (p.prop_name, verdict_of p)) s.subject_props;
        row_campaign = campaign;
      })
    subjects

let prop_columns rows =
  List.fold_left
    (fun acc row ->
      List.fold_left
        (fun acc (name, _) -> if List.mem name acc then acc else acc @ [ name ])
        acc row.row_verdicts)
    [] rows

let matrix_cells rows =
  let props = prop_columns rows in
  let header = ("lock" :: props) @ [ "sites"; "plans"; "truncated" ] in
  let cells =
    List.map
      (fun row ->
        let c = row.row_campaign in
        let cell name =
          match List.assoc_opt name row.row_verdicts with
          | Some v -> verdict_string v
          | None -> "-"
        in
        let trunc =
          match (c.sites_truncated, c.plans_truncated) with
          | false, false -> "-"
          | true, false -> "sites"
          | false, true -> "plans"
          | true, true -> "sites+plans"
        in
        (row.row_subject :: List.map cell props)
        @ [
            Printf.sprintf "%d/%d" (List.length c.sites) c.sites_seen;
            Printf.sprintf "%d/%d" c.plans_run c.plans_total;
            trunc;
          ])
      rows
  in
  (header, cells)

let matrix_details rows =
  List.concat_map
    (fun row ->
      let c = row.row_campaign in
      let fails =
        List.filter_map
          (fun f ->
            if f.f_expected then None
            else
              Some
                (Fmt.str "%s: %s FAIL under [%s]: %s; witness=%a" row.row_subject f.f_prop
                   (plan_label f.f_plan) f.f_message
                   Fmt.(Dump.list int)
                   f.f_witness))
          c.findings
      in
      let truncs =
        (if c.sites_truncated then
           [
             Printf.sprintf "%s: site list truncated to %d of %d executed sites" row.row_subject
               (List.length c.sites) c.sites_seen;
           ]
         else [])
        @
        if c.plans_truncated then
          [
            Printf.sprintf "%s: plan list truncated to %d of %d plans" row.row_subject
              c.plans_run c.plans_total;
          ]
        else []
      in
      fails @ truncs)
    rows

let matrix_failures rows =
  List.concat_map
    (fun row ->
      List.filter_map
        (fun f -> if f.f_expected then None else Some (row.row_subject, f))
        row.row_campaign.findings)
    rows
