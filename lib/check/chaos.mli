(** Adversarial chaos campaigns: adaptive crash adversaries hunting for
    property violations, with a deterministic replay-and-shrink bridge.

    The oblivious plans the rest of the suite uses (fixed sites, blind
    storms) exercise the common case; the paper's guarantees, however, are
    stated against {e adversaries} — weak recoverability tolerates crashes
    anywhere (Theorem 4.2), super-adaptivity prices level escalation in
    failures (Theorem 5.17).  This module drives the execution-observing
    plans of {!Rme_sim.Crash} ({!Rme_sim.Crash.target_holder},
    {!Rme_sim.Crash.target_window}, {!Rme_sim.Crash.repeat_offender},
    {!Rme_sim.Crash.storm}) over lock cases under a recorded random
    scheduler, checks the full property battery plus the
    adaptivity-contract monitors on every run, and — when a violation
    surfaces — converts the crashes the adversary actually fired into a
    composite {!Rme_sim.Crash.at_op} plan, re-confirms that this fixed plan
    replays the violation under the recorded schedule, and hands the
    decision vector to {!Explore.shrink} for a minimal witness.

    Everything is seeded: a campaign is a pure function of its
    configuration, and every reported witness replays deterministically. *)

open Rme_sim

(** {1 Adversaries} *)

type adversary =
  | Holder of { rate : float; max_crashes : int }
      (** kill processes inside a lock's acquire→release span *)
  | Window of { rate : float; max_crashes : int }
      (** kill processes while a sensitive window is open: every crash is
          an unsafe failure *)
  | Offender of { victim : int; gap : int; times : int }
      (** re-crash one recovering process [gap] instructions into every
          restarted passage, [times] crashes total *)
  | Storm of { rate : float; max_crashes : int; gap : int; backoff : float }
      (** random crashes with a cooldown gap that scales by [backoff] *)
  | Sys_storm of { rate : float; max_crashes : int; gap : int; backoff : float }
      (** {e system-wide} crash bursts ({!Rme_sim.Crash.system_storm}): the
          whole system loses its continuations at once, with a cooldown
          gap that scales by [backoff] — the Jayanti–Jayanti–Joshi failure
          model driven adversarially *)
  | Impatient_storm of { rate : float; max_aborts : int; gap : int; backoff : float }
      (** abort signals instead of crashes ({!Rme_sim.Abort.storm}): the
          oldest waiter is told to give up, at most [max_aborts] times,
          with a cooldown gap that scales by [backoff].  Fires no crashes
          at all — the pure-impatience adversary. *)

val pp_adversary : adversary Fmt.t

val adversary_of_string : string -> (adversary, string) result
(** Parses the CLI names [holder], [window], [offender], [storm],
    [sys-storm], [impatient-storm] (with the default parameters of
    {!standard_adversaries}, {!default_sys_storm} and
    {!default_impatient_storm}). *)

val standard_adversaries : adversary list
(** One per-process adversary of each kind, with campaign-tuned default
    parameters.  Does {e not} include {!Sys_storm}: the per-process
    campaigns pinned by the test suite predate the system-wide model, and
    system-crash campaigns opt in explicitly. *)

val default_sys_storm : adversary
(** The campaign-tuned {!Sys_storm}. *)

val default_impatient_storm : adversary
(** The campaign-tuned {!Impatient_storm}. *)

val plan : adversary -> seed:int -> Crash.t
(** Instantiate the (stateful) crash plan — fresh per run.
    {!Crash.none} for {!Impatient_storm}. *)

val abort_plan : adversary -> seed:int -> Abort.t
(** Instantiate the abort plan — {!Rme_sim.Abort.storm} for
    {!Impatient_storm}, {!Rme_sim.Abort.none} for every crash
    adversary. *)

(** {1 One adversarial run} *)

type cfg = {
  n : int;
  requests : int;
  model : Memory.model;
  cs_yields : int;  (** yields inside the critical section (overlap window) *)
  max_steps : int;
}

val default_cfg : cfg

type run = {
  res : Engine.result;
  fired : Crash.fired list;  (** crashes the adversary fired, in order *)
  ab_fired : Abort.fired list;  (** abort signals fired, in order *)
  decisions : int list;  (** recorded schedule, {!Sched.trace} encoding *)
}

val run_one : cfg -> make:(Engine.Ctx.t -> Harness.lock) -> adversary:adversary -> seed:int -> run
(** One seeded adversarial run: the adversary's plan under a recorded
    random scheduler, with history recording on so the event-based
    checkers apply. *)

val replay :
  cfg ->
  make:(Engine.Ctx.t -> Harness.lock) ->
  fired:Crash.fired list ->
  ?ab_fired:Abort.fired list ->
  decisions:int list ->
  unit ->
  Engine.result * bool
(** Deterministic re-execution: the recorded schedule under
    {!Sched.trace}, the recorded crashes as a fresh composite
    {!Crash.replay_fired} plan, and — when [ab_fired] is non-empty — the
    recorded abort signals as an {!Rme_sim.Abort.replay_fired} plan.
    Returns the result and whether the replay {e diverged} from the
    recorded branching structure ([true] = mismatch; reject the replay as
    unfaithful). *)

val shrink_witness :
  cfg ->
  make:(Engine.Ctx.t -> Harness.lock) ->
  fired:Crash.fired list ->
  ?ab_fired:Abort.fired list ->
  check:(Engine.result -> string option) ->
  int list ->
  int list
(** {!Explore.shrink} over faithful replays: minimise the decision vector
    while the composite crash plan still reproduces a violation of
    [check].  Returns the input unchanged if it does not reproduce. *)

(** {1 Campaign} *)

type case = {
  case_name : string;
  case_make : Engine.Ctx.t -> Harness.lock;
  case_weak : bool;
      (** application lock is weakly recoverable: check the interval form
          of ME (consequence intervals) instead of plain ME *)
  case_ff_bound : int option;
      (** failure-free per-passage RMR contract, if the lock states one *)
  case_abortable : bool;
      (** the lock has a real abort path: hold it to the abort battery
          ({!Props.default_abort_expect}) on every run *)
}

val battery : case -> requests:int -> Engine.result -> string list
(** {!Props.check_battery} (with the weak interval form when [case_weak])
    plus the {!Props.failure_free_rmr} contract when stated — the check a
    campaign applies to every adversarial run. *)

type violation = {
  v_case : string;
  v_adversary : adversary;
  v_seed : int;
  v_problems : string list;  (** battery report of the discovering run *)
  v_fired : Crash.fired list;
  v_ab_fired : Abort.fired list;
  v_replay_ok : bool;
      (** the deterministic composite plan re-triggered a violation of the
          same property under the recorded schedule *)
  v_witness : int list;
      (** shrunk decision vector (= the recorded one when [not v_replay_ok]) *)
  v_detect_steps : int;
      (** engine steps from the first injection (crash or abort signal) to
          the end of the discovering run — the detection latency of the
          campaign *)
}

val pp_fired : Crash.fired Fmt.t
(** One fired crash: ["p2@op14(after,step 311)"], ["system(step 42)"]. *)

val pp_ab_fired : Abort.fired Fmt.t
(** One fired abort signal: ["abort:p2@async(step 311)"]. *)

val pp_violation : violation Fmt.t

type outcome = {
  runs : int;
  crashes : int;  (** crashes injected across all runs *)
  aborts : int;  (** abort signals injected across all runs *)
  detect_steps : int;
      (** summed engine steps from the first injection of a run — crash or
          abort signal — to the end of that run, over the [detect_runs]
          runs in which the adversary fired.  [detect_steps / detect_runs]
          is the campaign's mean detection latency: how long after an
          injection the battery verdict on its consequences lands. *)
  detect_runs : int;
  violations : violation list;
}

val campaign :
  ?cfg:cfg ->
  ?jobs:int ->
  adversaries:adversary list ->
  runs:int ->
  seed_base:int ->
  case list ->
  outcome
(** [campaign ~adversaries ~runs ~seed_base cases] runs [runs] seeded runs
    for every (case, adversary) pair — seeds [seed_base] to
    [seed_base + runs - 1] — and post-processes each violation through the
    replay-confirm-shrink pipeline.  [jobs] shards the runs over OCaml
    domains via {!Pool} (default 1; the outcome is independent of the
    domain count). *)
