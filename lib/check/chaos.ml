open Rme_sim

type adversary =
  | Holder of { rate : float; max_crashes : int }
  | Window of { rate : float; max_crashes : int }
  | Offender of { victim : int; gap : int; times : int }
  | Storm of { rate : float; max_crashes : int; gap : int; backoff : float }
  | Sys_storm of { rate : float; max_crashes : int; gap : int; backoff : float }
  | Impatient_storm of { rate : float; max_aborts : int; gap : int; backoff : float }

let pp_adversary ppf = function
  | Holder { rate; max_crashes } -> Fmt.pf ppf "holder(rate=%g,max=%d)" rate max_crashes
  | Window { rate; max_crashes } -> Fmt.pf ppf "window(rate=%g,max=%d)" rate max_crashes
  | Offender { victim; gap; times } ->
      Fmt.pf ppf "offender(p%d,gap=%d,times=%d)" victim gap times
  | Storm { rate; max_crashes; gap; backoff } ->
      Fmt.pf ppf "storm(rate=%g,max=%d,gap=%d,backoff=%g)" rate max_crashes gap backoff
  | Sys_storm { rate; max_crashes; gap; backoff } ->
      Fmt.pf ppf "sys-storm(rate=%g,max=%d,gap=%d,backoff=%g)" rate max_crashes gap backoff
  | Impatient_storm { rate; max_aborts; gap; backoff } ->
      Fmt.pf ppf "impatient-storm(rate=%g,max=%d,gap=%d,backoff=%g)" rate max_aborts gap backoff

let standard_adversaries =
  [
    Holder { rate = 0.05; max_crashes = 8 };
    Window { rate = 0.25; max_crashes = 4 };
    Offender { victim = 0; gap = 4; times = 5 };
    Storm { rate = 0.004; max_crashes = 8; gap = 300; backoff = 2.0 };
  ]

let default_sys_storm = Sys_storm { rate = 0.002; max_crashes = 3; gap = 400; backoff = 2.0 }

let default_impatient_storm =
  Impatient_storm { rate = 0.05; max_aborts = 12; gap = 40; backoff = 1.5 }

let adversary_of_string s =
  match String.lowercase_ascii s with
  | "holder" -> Ok (Holder { rate = 0.05; max_crashes = 8 })
  | "window" -> Ok (Window { rate = 0.25; max_crashes = 4 })
  | "offender" -> Ok (Offender { victim = 0; gap = 4; times = 5 })
  | "storm" -> Ok (Storm { rate = 0.004; max_crashes = 8; gap = 300; backoff = 2.0 })
  | "sys-storm" | "sys_storm" | "system-storm" -> Ok default_sys_storm
  | "impatient-storm" | "impatient_storm" | "impatient" -> Ok default_impatient_storm
  | other ->
      Error
        (Printf.sprintf
           "unknown adversary %S (holder|window|offender|storm|sys-storm|impatient-storm)" other)

let plan adv ~seed =
  match adv with
  | Holder { rate; max_crashes } -> Crash.target_holder ~seed ~rate ~max_crashes ()
  | Window { rate; max_crashes } -> Crash.target_window ~seed ~rate ~max_crashes ()
  | Offender { victim; gap; times } -> Crash.repeat_offender ~victim ~gap ~times
  | Storm { rate; max_crashes; gap; backoff } ->
      Crash.storm ~seed ~rate ~max_crashes ~gap ~backoff ()
  | Sys_storm { rate; max_crashes; gap; backoff } ->
      Crash.system_storm ~seed ~rate ~max_crashes ~gap ~backoff ()
  | Impatient_storm _ -> Crash.none

let abort_plan adv ~seed =
  match adv with
  | Impatient_storm { rate; max_aborts; gap; backoff } ->
      Abort.storm ~seed ~rate ~max_aborts ~gap ~backoff ()
  | Holder _ | Window _ | Offender _ | Storm _ | Sys_storm _ -> Abort.none

type cfg = {
  n : int;
  requests : int;
  model : Memory.model;
  cs_yields : int;
  max_steps : int;
}

let default_cfg = { n = 4; requests = 3; model = Memory.CC; cs_yields = 3; max_steps = 400_000 }

let cs_of cfg ~pid:_ =
  for _ = 1 to cfg.cs_yields do
    Api.yield ()
  done

type run = {
  res : Engine.result;
  fired : Crash.fired list;
  ab_fired : Abort.fired list;
  decisions : int list;
}

let run_one cfg ~make ~adversary ~seed =
  let decisions = Vec.create () in
  let crash, fired = Crash.record_fired (plan adversary ~seed) in
  let abort, ab_fired = Abort.record_fired (abort_plan adversary ~seed) in
  let sched = Sched.recording ~inner:(Sched.random ~seed) ~decisions in
  let res =
    Harness.run_lock ~record:true ~max_steps:cfg.max_steps ~cs:(cs_of cfg) ~n:cfg.n
      ~model:cfg.model ~sched ~crash ~abort ~requests:cfg.requests ~make ()
  in
  { res; fired = fired (); ab_fired = ab_fired (); decisions = Vec.to_list decisions }

let replay cfg ~make ~fired ?(ab_fired = []) ~decisions () =
  let mismatch = ref false in
  let sched = Sched.trace ~mismatch ~decisions:(Vec.of_list decisions) ~record:(Vec.create ()) () in
  let abort = if ab_fired = [] then Abort.none else Abort.replay_fired ab_fired in
  let res =
    Harness.run_lock ~record:true ~max_steps:cfg.max_steps ~cs:(cs_of cfg) ~n:cfg.n
      ~model:cfg.model ~sched ~crash:(Crash.replay_fired fired) ~abort ~requests:cfg.requests
      ~make ()
  in
  (res, !mismatch)

let shrink_witness cfg ~make ~fired ?(ab_fired = []) ~check trace =
  Explore.shrink
    ~reproduces:(fun t ->
      let res, mismatch = replay cfg ~make ~fired ~ab_fired ~decisions:t () in
      (not mismatch) && check res <> None)
    trace

type case = {
  case_name : string;
  case_make : Engine.Ctx.t -> Harness.lock;
  case_weak : bool;
  case_ff_bound : int option;
  case_abortable : bool;
}

let battery case ~requests res =
  let weak_lock_ids = if case.case_weak then [ 0 ] else [] in
  let abort = if case.case_abortable then Some Props.default_abort_expect else None in
  Props.check_battery ?abort res ~requests ~weak_lock_ids
  @
  match case.case_ff_bound with
  | None -> []
  | Some bound -> (
      match Props.failure_free_rmr res ~bound with
      | None -> []
      | Some msg -> [ "ff-rmr: " ^ msg ])

type violation = {
  v_case : string;
  v_adversary : adversary;
  v_seed : int;
  v_problems : string list;
  v_fired : Crash.fired list;
  v_ab_fired : Abort.fired list;
  v_replay_ok : bool;
  v_witness : int list;
  v_detect_steps : int;
}

let pp_point ppf = function
  | Crash.Before -> Fmt.string ppf "before"
  | Crash.After -> Fmt.string ppf "after"

let pp_fired ppf (f : Crash.fired) =
  if f.f_async then
    if f.f_pid < 0 then Fmt.pf ppf "system(step %d)" f.f_step
    else Fmt.pf ppf "p%d@async(step %d)" f.f_pid f.f_step
  else Fmt.pf ppf "p%d@op%d(%a,step %d)" f.f_pid f.f_op_index pp_point f.f_point f.f_step

let pp_ab_fired ppf (a : Abort.fired) =
  if a.a_async then Fmt.pf ppf "abort:p%d@async(step %d)" a.a_pid a.a_step
  else Fmt.pf ppf "abort:p%d@op%d(step %d)" a.a_pid a.a_op_index a.a_step

let pp_violation ppf v =
  Fmt.pf ppf "@[<v2>%s seed=%d adversary=%a:@,%a@,fired: %a%s%a@,replay %s, witness %d decisions@]"
    v.v_case v.v_seed pp_adversary v.v_adversary
    Fmt.(list ~sep:cut string)
    v.v_problems
    Fmt.(list ~sep:(any " ") pp_fired)
    v.v_fired
    (if v.v_fired <> [] && v.v_ab_fired <> [] then " " else "")
    Fmt.(list ~sep:(any " ") pp_ab_fired)
    v.v_ab_fired
    (if v.v_replay_ok then "confirmed" else "UNFAITHFUL")
    (List.length v.v_witness)

type outcome = {
  runs : int;
  crashes : int;
  aborts : int;
  detect_steps : int;
  detect_runs : int;
  violations : violation list;
}

(* The property a problem string reports, e.g. "mutual-exclusion". *)
let prop_of problem =
  match String.index_opt problem ':' with
  | Some i -> String.sub problem 0 i
  | None -> problem

let confirm_and_shrink cfg case ~requests (adv : adversary) ~seed (r : run) problems =
  let prop = prop_of (List.hd problems) in
  let check res =
    if List.exists (fun p -> prop_of p = prop) (battery case ~requests res) then Some prop
    else None
  in
  let replay_res, mismatch =
    replay cfg ~make:case.case_make ~fired:r.fired ~ab_fired:r.ab_fired ~decisions:r.decisions ()
  in
  let replay_ok = (not mismatch) && check replay_res <> None in
  let witness =
    if replay_ok then
      shrink_witness cfg ~make:case.case_make ~fired:r.fired ~ab_fired:r.ab_fired ~check
        r.decisions
    else r.decisions
  in
  let first_injection =
    match (r.fired, r.ab_fired) with
    | f :: _, a :: _ -> Some (min f.Crash.f_step a.Abort.a_step)
    | f :: _, [] -> Some f.Crash.f_step
    | [], a :: _ -> Some a.Abort.a_step
    | [], [] -> None
  in
  {
    v_case = case.case_name;
    v_adversary = adv;
    v_seed = seed;
    v_problems = problems;
    v_fired = r.fired;
    v_ab_fired = r.ab_fired;
    v_replay_ok = replay_ok;
    v_witness = witness;
    v_detect_steps =
      (match first_injection with None -> 0 | Some s -> r.res.Engine.steps - s);
  }

let campaign ?(cfg = default_cfg) ?(jobs = 1) ~adversaries ~runs ~seed_base cases =
  let tasks =
    Array.of_list
      (List.concat_map
         (fun case ->
           List.concat_map
             (fun adv -> List.init runs (fun i -> (case, adv, seed_base + i)))
             adversaries)
         cases)
  in
  (* Each task is independent and seeded; Pool reports in task order, so
     the outcome does not depend on the domain count. *)
  let results =
    Pool.map ~domains:(max 1 jobs) ~tasks (fun ~index:_ ~stop:_ (case, adv, seed) ->
        let r = run_one cfg ~make:case.case_make ~adversary:adv ~seed in
        let problems = battery case ~requests:cfg.requests r.res in
        let v =
          if problems = [] then None
          else Some (confirm_and_shrink cfg case ~requests:cfg.requests adv ~seed r problems)
        in
        let detect =
          match (r.fired, r.ab_fired) with
          | f :: _, a :: _ -> Some (r.res.Engine.steps - min f.Crash.f_step a.Abort.a_step)
          | f :: _, [] -> Some (r.res.Engine.steps - f.Crash.f_step)
          | [], a :: _ -> Some (r.res.Engine.steps - a.Abort.a_step)
          | [], [] -> None
        in
        (r.res.Engine.total_crashes, List.length r.ab_fired, detect, v))
  in
  let runs_done = ref 0 and crashes = ref 0 and aborts = ref 0 and violations = ref [] in
  let detect_steps = ref 0 and detect_runs = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some (c, a, detect, v) ->
          incr runs_done;
          crashes := !crashes + c;
          aborts := !aborts + a;
          (match detect with
          | Some d ->
              detect_steps := !detect_steps + d;
              incr detect_runs
          | None -> ());
          (match v with Some v -> violations := v :: !violations | None -> ()))
    results;
  {
    runs = !runs_done;
    crashes = !crashes;
    aborts = !aborts;
    detect_steps = !detect_steps;
    detect_runs = !detect_runs;
    violations = List.rev !violations;
  }
