(** Bounded cache of fully-explored decision-tree nodes, keyed by the
    engine state key ({!Rme_sim.Engine.run}'s [on_state_key] digest) — the
    deduplication behind the explorer's `Source tier.

    Direct-mapped with an explicit capacity bound: a colliding add
    overwrites its slot and counts an {!evictions}.  Lookups compare the
    full key element-wise, so the bucketing [hash] only places entries —
    a poor (or adversarial) hash costs hit rate, never soundness.  An
    entry also stores the pid sleep mask its exploration ran under and a
    caller-supplied subtree summary; {!find} only hits when the stored
    mask is a subset of the caller's (the stored exploration slept less,
    hence covered at least as much). *)

type 'a t

val create : ?hash:(int array -> int) -> capacity:int -> unit -> 'a t
(** [create ~capacity ()] holds at most [capacity] entries (at least one
    slot is always allocated).  [hash] overrides the bucketing hash —
    tests inject degenerate hashes to force collisions.
    @raise Invalid_argument on negative capacity. *)

val find : 'a t -> key:int array -> slept:int -> 'a option
(** [find t ~key ~slept] is [Some summary] when the subtree below [key]
    was fully explored under a sleep mask ⊆ [slept]; [None] otherwise.
    Updates the hit/miss counters. *)

val add : 'a t -> key:int array -> slept:int -> summary:'a -> unit
(** Record that [key]'s subtree was fully explored under [slept], with
    the caller's summary of it.  Overwrites on slot collision (counted as
    an eviction). *)

val capacity : 'a t -> int

val hits : 'a t -> int

val misses : 'a t -> int

val evictions : 'a t -> int
