(* Measurement plumbing for the benchmark harnesses: fixed-footprint
   histograms with bounded relative error, a host descriptor for BENCH_*
   provenance, and StatsD-style line export.

   The histogram is log-linear (HdrHistogram-style): values below [linear]
   get exact unit buckets; above, each power of two splits into [sub]
   sub-buckets, so any reported quantile is at most one sub-bucket wide —
   under 1% relative error — while the whole structure is one flat int
   array that records in O(1) with no allocation.  That matters because the
   service harness records one latency and one RMR count per passage for
   millions of passages; storing raw samples would swamp the heap and the
   sort, and allocating per sample would skew the Gc numbers the harness
   itself reports. *)

module Hist = struct
  let linear = 256

  let sub = 128 (* sub-buckets per power of two at and above 2^8 *)

  (* Highest representable msb position is [Sys.int_size - 2] (non-negative
     ints), so k ranges over [8, Sys.int_size - 2]. *)
  let slots = linear + ((Sys.int_size - 9) * sub)

  type t = {
    buckets : int array;
    mutable total : int;
    mutable sum : int;
    mutable lo : int; (* smallest recorded value; max_int while empty *)
    mutable hi : int; (* largest recorded value; -1 while empty *)
  }

  let create () = { buckets = Array.make slots 0; total = 0; sum = 0; lo = max_int; hi = -1 }

  let clear t =
    Array.fill t.buckets 0 slots 0;
    t.total <- 0;
    t.sum <- 0;
    t.lo <- max_int;
    t.hi <- -1

  let index v =
    if v < linear then v
    else begin
      (* msb position of v; v >= 256 so k >= 8 *)
      let k = ref 8 in
      while v lsr (!k + 1) <> 0 do
        incr k
      done;
      let k = !k in
      (* top 8 bits of v: in [128, 256) *)
      let mantissa = v lsr (k - 7) in
      linear + ((k - 8) * sub) + (mantissa - sub)
    end

  (* Inclusive value range covered by bucket [i]. *)
  let bucket_lo i =
    if i < linear then i
    else begin
      let k = 8 + ((i - linear) / sub) in
      let m = sub + ((i - linear) mod sub) in
      m lsl (k - 7)
    end

  let bucket_hi i =
    if i < linear then i
    else begin
      let k = 8 + ((i - linear) / sub) in
      let m = sub + ((i - linear) mod sub) in
      ((m + 1) lsl (k - 7)) - 1
    end

  let add t v =
    let v = if v < 0 then 0 else v in
    let i = index v in
    t.buckets.(i) <- t.buckets.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum + v;
    if v < t.lo then t.lo <- v;
    if v > t.hi then t.hi <- v

  let count t = t.total

  let sum t = t.sum

  let min t = if t.total = 0 then 0 else t.lo

  let max t = if t.total = 0 then 0 else t.hi

  let mean t = if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total

  let merge_into ~into t =
    for i = 0 to slots - 1 do
      if t.buckets.(i) <> 0 then into.buckets.(i) <- into.buckets.(i) + t.buckets.(i)
    done;
    into.total <- into.total + t.total;
    into.sum <- into.sum + t.sum;
    if t.lo < into.lo then into.lo <- t.lo;
    if t.hi > into.hi then into.hi <- t.hi

  let percentile t q =
    if t.total = 0 then 0
    else begin
      let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
      let rank = int_of_float (ceil (q *. float_of_int t.total)) in
      let rank = if rank < 1 then 1 else rank in
      let acc = ref 0 in
      let i = ref 0 in
      while !acc < rank && !i < slots do
        acc := !acc + t.buckets.(!i);
        incr i
      done;
      (* [!i - 1] is the bucket containing the ranked sample; clamp its
         upper bound by the true maximum so p100 is exact. *)
      let hi = bucket_hi (!i - 1) in
      if hi > t.hi then t.hi else hi
    end

  let nonzero t =
    let out = ref [] in
    for i = slots - 1 downto 0 do
      if t.buckets.(i) <> 0 then out := (bucket_lo i, bucket_hi i, t.buckets.(i)) :: !out
    done;
    !out
end

(* Provenance header for every BENCH_*.json: enough to interpret throughput
   and domain-scaling numbers without the machine at hand. *)
let host_json () =
  Printf.sprintf
    {|{"recommended_domain_count": %d, "ocaml_version": %S, "word_size": %d, "int_size": %d, "os_type": %S}|}
    (Domain.recommended_domain_count ())
    Sys.ocaml_version Sys.word_size Sys.int_size Sys.os_type

(* StatsD line protocol (the flavour every agent accepts: name:value|type).
   The harness appends lines into one buffer and dumps it to a file or
   stdout; shipping it over UDP is the caller's business. *)
let statsd_count b name v = Printf.bprintf b "%s:%d|c\n" name v

let statsd_gauge b name v = Printf.bprintf b "%s:%g|g\n" name v

let statsd_timing b name v = Printf.bprintf b "%s:%d|ms\n" name v
