(** Bounded exhaustive schedule exploration (a small stateless model
    checker).

    Replays the simulation under every interleaving reachable within the
    configured bounds, using the trace scheduler: a run is identified by its
    decision vector (which runnable process steps at each point); after each
    run, the recorded branching degrees spawn the sibling decision vectors.
    With small [n] and request counts this enumerates the complete schedule
    tree and checks a property on every run — exhaustive verification of
    mutual exclusion for the splitter, arbitrator and WR-Lock components,
    optionally under a crash plan. *)

open Rme_sim

type outcome = {
  runs : int;  (** schedules executed *)
  exhausted : bool;
      (** [true] iff the whole schedule tree was covered: every run within
          the bounds executed, no truncation by [max_runs], and no
          violation (finding one stops the search early by design) *)
  violation : (string * int list) option;
      (** first failing run in DFS preorder: message and its decision
          vector *)
}

val pp_outcome : outcome Fmt.t

type search_stats = {
  engine_runs : int;  (** engine executions: distinct runs, probes, shrink replays *)
  engine_steps : int;  (** total simulation steps across all those executions *)
  cache_hits : int;  (** {!Statecache} subtree prunes ([`Source] only, else 0) *)
  cache_misses : int;  (** state-cache lookups that found nothing *)
  cache_evictions : int;  (** entries displaced by the cache's capacity bound *)
}
(** Search-effort counters, reported through the [?stats] callback of
    {!explore} / {!explore_parallel}.  Deliberately {e not} part of
    {!outcome}: outcomes are compared byte-for-byte across domain counts
    (and step totals vary with checkpoint restarts), while these counters
    describe the effort of one particular search. *)

val pp_search_stats : search_stats Fmt.t

val shrink : reproduces:(int list -> bool) -> int list -> int list
(** Greedily minimise a violating decision vector: zero decisions and strip
    the implied default suffix while [reproduces] keeps returning [true].
    Returns the input unchanged when it does not reproduce. *)

val explore :
  ?max_runs:int ->
  ?max_steps:int ->
  ?shrink_violations:bool ->
  ?record:bool ->
  ?por:[ `Off | `Sleep | `Source ] ->
  ?statecache:Footprint.t list option Statecache.t ->
  ?cache_capacity:int ->
  ?abort:(unit -> Abort.t) ->
  ?stats:(search_stats -> unit) ->
  n:int ->
  model:Memory.model ->
  crash:(unit -> Crash.t) ->
  setup:(Engine.Ctx.t -> 'a) ->
  body:('a -> pid:int -> unit) ->
  check:(Engine.result -> string option) ->
  unit ->
  outcome
(** [crash] builds a fresh (stateful) plan per run.  [abort] (default
    {!Abort.none}) likewise builds a fresh abort plan per run — the abort
    decision axis explored alongside the schedule.  [record] (default
    false) runs the engine with history recording so that [check] can use
    the event-based property checkers (e.g.
    {!Props.weak_me_intervals}); leave it off when the check only reads
    the aggregate statistics.  [check] returns [Some
    msg] on a property violation; exploration stops at the first one and,
    with [shrink_violations] (default true), minimises its decision vector
    before reporting.  Shrink candidates are replayed with degree-mismatch
    detection ({!Sched.trace}) and rejected when unfaithful, so the
    reported vector always witnesses the violation it claims.

    [por] selects the partial-order reduction tier (default [`Sleep]):

    - [`Off]: plain exhaustive DFS over the schedule tree.
    - [`Sleep]: sleep-set reduction — a sibling schedule is skipped when
      the step it deviates with is independent — by the {!Footprint}
      oracle — of every step explored since the deviating process was put
      to sleep, so roughly one representative per Mazurkiewicz trace
      class is executed.  Reports the {e identical} [exhausted] verdict,
      first violation in DFS preorder, and shrunk witness as [`Off].
    - [`Source]: source-set dynamic POR with state caching on top of the
      sleep sets.  A sibling is explored only when an {e observed} race
      in some explored run demands its reversal ({!Footprint.Race}), and
      a decision node whose engine state digest ({!Engine.run}'s
      [on_state_key]) was already fully explored under a sleep mask ⊆ the
      current one prunes its whole subtree ({!Statecache}).  Explores a
      subset of [`Sleep]'s runs (equal in the worst case; the run count
      is not guaranteed smaller, but is on every benched subject).
      Guarantees the identical [exhausted] verdict and the identical
      answer to "does a violation exist", but the exploration order is
      demand-driven, so a reported violation may be a {e different}
      witness of the same property failure than [`Off]/[`Sleep]'s
      preorder-first one (shrinking usually re-converges them).

    Both reduced tiers require [check] to be schedule-robust (aggregate
    statistics, not step counts or latencies) and runs to terminate
    within [max_steps] (a timed-out run's node falls back to unpruned
    expansion).  They automatically downgrade to [`Off] when they cannot
    be sound: under [record] (event order between independent steps is
    not preserved) and for schedule-sensitive crash {e or abort} plans
    ({!Crash.por_class} / {!Abort.por_class} = [Sensitive] — every
    waiting-history-driven abort plan, e.g. {!Abort.impatient}, is
    Sensitive, so abort exploration runs unreduced by construction).

    [statecache] injects the [`Source] state cache (tests use degenerate
    hashes/capacities to exercise collision behaviour); by default a
    fresh cache of [cache_capacity] (default 65536) entries is built per
    call.  [cache_capacity = 0] disables state caching — the source-set
    reduction still applies.  Both are ignored outside [`Source].

    [stats], when given, is called exactly once, after the search
    completes (including shrinking), with the {!search_stats} effort
    counters for this call. *)

val explore_parallel :
  ?max_runs:int ->
  ?max_steps:int ->
  ?shrink_violations:bool ->
  ?record:bool ->
  ?por:[ `Off | `Sleep | `Source ] ->
  ?cache_capacity:int ->
  ?domains:int ->
  ?split_depth:int ->
  ?snap_gap:int ->
  ?abort:(unit -> Abort.t) ->
  ?stats:(search_stats -> unit) ->
  n:int ->
  model:Memory.model ->
  crash:(unit -> Crash.t) ->
  setup:(Engine.Ctx.t -> 'a) ->
  body:('a -> pid:int -> unit) ->
  check:(Engine.result -> string option) ->
  unit ->
  outcome
(** Same search as {!explore}, sharded across [domains] OCaml domains
    (default {!Pool.default_domains}).  The schedule tree is split into
    disjoint decision-vector subtrees by expanding the frontier until
    there are enough tasks to keep every domain fed through load
    imbalance (at least [max 16 (8 * domains)], and at least
    [split_depth] levels — default 1 — for compatibility); the subtrees
    are distributed over a work-stealing {!Pool}, and each one is
    searched with engine checkpointing: every [snap_gap]-th decision
    position (default 4) captures an {!Engine.Snap.t}, and each node's
    run resumes from the deepest checkpoint on its path instead of
    replaying the whole shared prefix from the root — the prefix-replay
    elimination that makes the parallel search cheaper per run than the
    sequential one.

    Determinism: the reported outcome — [runs], [exhausted], and the
    [violation] with its shrunk vector — is byte-identical for every
    domain count, under every [por] tier, including under [max_runs]
    truncation and when a violation is found.  Tasks report their exact
    per-subtree visit counts and first violations; a final sequential
    settlement walk over the DFS-preorder skeleton recomputes exactly
    where the search would stop.
    Budgets are enforced by leased lower bounds (each worker periodically
    publishes its progress and stops once the provable total reaches
    [max_runs]) rather than a contended shared counter, so a worker may
    privately visit more nodes than the settled count — but never
    fewer within the settled region — without affecting the outcome.
    Under [`Off] and [`Sleep] the outcome additionally equals the
    sequential {!explore}'s byte for byte: the frontier expansion
    replicates the sequential sleep evolution exactly, so the pruned run
    set is the same for every domain count.  Under [`Source] each task
    runs source-set DPOR over its own fresh demand slots and state cache
    ([cache_capacity] entries), rooted at its subtree — domain-count
    independent, hence still deterministic, but the task boundaries make
    the explored subset (and so [runs]) potentially differ from the
    sequential [`Source] search's; [exhausted] and violation-existence
    always agree with it.

    [crash], [setup], [body] and [check] are called concurrently from
    multiple domains and must be domain-safe: no shared mutable state
    outside the per-run engine (in particular no global [Random] and no
    captured growing [Vec]s; {!Engine.run} itself is re-entrant).

    [stats] is called exactly once, after settlement and shrinking, from
    the calling domain.  Its counters are accumulated atomically across
    workers, so — unlike the outcome — they are {e not} deterministic
    across domain counts (work-stealing decides how many nodes each
    worker privately visits beyond the settled region). *)
