(** Bounded exhaustive schedule exploration (a small stateless model
    checker).

    Replays the simulation under every interleaving reachable within the
    configured bounds, using the trace scheduler: a run is identified by its
    decision vector (which runnable process steps at each point); after each
    run, the recorded branching degrees spawn the sibling decision vectors.
    With small [n] and request counts this enumerates the complete schedule
    tree and checks a property on every run — exhaustive verification of
    mutual exclusion for the splitter, arbitrator and WR-Lock components,
    optionally under a crash plan. *)

open Rme_sim

type outcome = {
  runs : int;  (** schedules executed *)
  exhausted : bool;
      (** [true] iff the whole schedule tree was covered: every run within
          the bounds executed, no truncation by [max_runs], and no
          violation (finding one stops the search early by design) *)
  violation : (string * int list) option;
      (** first failing run in DFS preorder: message and its decision
          vector *)
}

val pp_outcome : outcome Fmt.t

val shrink : reproduces:(int list -> bool) -> int list -> int list
(** Greedily minimise a violating decision vector: zero decisions and strip
    the implied default suffix while [reproduces] keeps returning [true].
    Returns the input unchanged when it does not reproduce. *)

val explore :
  ?max_runs:int ->
  ?max_steps:int ->
  ?shrink_violations:bool ->
  ?record:bool ->
  ?por:bool ->
  n:int ->
  model:Memory.model ->
  crash:(unit -> Crash.t) ->
  setup:(Engine.Ctx.t -> 'a) ->
  body:('a -> pid:int -> unit) ->
  check:(Engine.result -> string option) ->
  unit ->
  outcome
(** [crash] builds a fresh (stateful) plan per run.  [record] (default
    false) runs the engine with history recording so that [check] can use
    the event-based property checkers (e.g.
    {!Props.weak_me_intervals}); leave it off when the check only reads
    the aggregate statistics.  [check] returns [Some
    msg] on a property violation; exploration stops at the first one and,
    with [shrink_violations] (default true), minimises its decision vector
    before reporting.  Shrink candidates are replayed with degree-mismatch
    detection ({!Sched.trace}) and rejected when unfaithful, so the
    reported vector always witnesses the violation it claims.

    [por] (default true) enables sleep-set partial-order reduction: a
    sibling schedule is skipped when the step it deviates with is
    independent — by the {!Footprint} oracle — of every step explored
    since the deviating process was put to sleep, so only one
    representative per Mazurkiewicz trace class is executed.  The oracle
    is conservative, and the pruned search reports the {e identical}
    [exhausted] verdict, first violation in DFS preorder, and shrunk
    witness as the unpruned search, provided [check] is schedule-robust
    (reads aggregate statistics, not step counts or latencies) and runs
    terminate within [max_steps].  The reduction automatically disables
    itself when it cannot be sound: under [record] (event order between
    independent steps is not preserved) and for schedule-sensitive crash
    plans ({!Crash.por_class} = [Sensitive]). *)

val explore_parallel :
  ?max_runs:int ->
  ?max_steps:int ->
  ?shrink_violations:bool ->
  ?record:bool ->
  ?por:bool ->
  ?domains:int ->
  ?split_depth:int ->
  n:int ->
  model:Memory.model ->
  crash:(unit -> Crash.t) ->
  setup:(Engine.Ctx.t -> 'a) ->
  body:('a -> pid:int -> unit) ->
  check:(Engine.result -> string option) ->
  unit ->
  outcome
(** Same search as {!explore}, sharded across [domains] OCaml domains
    (default {!Pool.default_domains}).  The schedule tree is split into
    disjoint decision-vector prefixes at [split_depth] frontier levels
    (default 1) and the subtrees are distributed over a {!Pool} work
    queue; an [Atomic]-based flag cancels later subtrees once an earlier
    one holds the answer.

    Determinism: when no truncation occurs, the reported [violation] (and
    its shrunk vector) and the [exhausted] flag are identical to the
    sequential {!explore}'s, independent of domain scheduling; on a clean
    exhaustive search [runs] is identical too.  This holds with [por] as
    well: sleep sets are threaded through the frontier split, the frontier
    expansion replicates the sequential sleep evolution exactly, and
    pruning decisions depend only on the (deterministic) footprints of
    each run — so the pruned run set is the same for every domain count.  When a violation is found,
    [runs] may exceed the sequential count (other domains keep finishing
    their current work — "runs modulo scheduling").  Under [max_runs]
    truncation, which schedules fit the budget is scheduling-dependent.

    [crash], [setup], [body] and [check] are called concurrently from
    multiple domains and must be domain-safe: no shared mutable state
    outside the per-run engine (in particular no global [Random] and no
    captured growing [Vec]s; {!Engine.run} itself is re-entrant). *)
