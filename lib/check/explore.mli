(** Bounded exhaustive schedule exploration (a small stateless model
    checker).

    Replays the simulation under every interleaving reachable within the
    configured bounds, using the trace scheduler: a run is identified by its
    decision vector (which runnable process steps at each point); after each
    run, the recorded branching degrees spawn the sibling decision vectors.
    With small [n] and request counts this enumerates the complete schedule
    tree and checks a property on every run — exhaustive verification of
    mutual exclusion for the splitter, arbitrator and WR-Lock components,
    optionally under a crash plan. *)

open Rme_sim

type outcome = {
  runs : int;  (** schedules executed *)
  exhausted : bool;  (** [true] when the whole tree fit in [max_runs] *)
  violation : (string * int list) option;
      (** first failing run: message and its decision vector *)
}

val pp_outcome : outcome Fmt.t

val shrink : reproduces:(int list -> bool) -> int list -> int list
(** Greedily minimise a violating decision vector: zero decisions and strip
    the implied default suffix while [reproduces] keeps returning [true].
    Returns the input unchanged when it does not reproduce. *)

val explore :
  ?max_runs:int ->
  ?max_steps:int ->
  ?shrink_violations:bool ->
  n:int ->
  model:Memory.model ->
  crash:(unit -> Crash.t) ->
  setup:(Engine.Ctx.t -> 'a) ->
  body:('a -> pid:int -> unit) ->
  check:(Engine.result -> string option) ->
  unit ->
  outcome
(** [crash] builds a fresh (stateful) plan per run.  [check] returns [Some
    msg] on a property violation; exploration stops at the first one and,
    with [shrink_violations] (default true), minimises its decision vector
    before reporting. *)
