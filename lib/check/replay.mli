(** Trace replay: an independent check of the engine's memory semantics.

    A run recorded with [trace_ops] contains every instruction in execution
    order.  [verify] re-executes that instruction stream against a fresh
    {!Rme_sim.Memory} using a straightforward sequential interpreter and
    confirms that the per-cell value history is internally consistent —
    i.e. the interleaving the engine reports is a legal sequentially
    consistent execution.  This guards the simulator itself: a bug in the
    effect plumbing, the park/wake path or crash handling that reordered or
    dropped an applied instruction would surface here as a divergence.

    Because the op trace records kinds and cell names (not operand values),
    the interpreter checks structural properties: per-cell write counts and
    the final contents of every named cell must match the engine's store.
    It is deliberately a *different* code path from the engine. *)

open Rme_sim

type report = {
  ops_replayed : int;
  cells_checked : int;
  divergence : string option;  (** [None] = consistent *)
}

val pp_report : report Fmt.t

val verify : Engine.result -> mem_dump:(string * int) list -> report
(** [verify res ~mem_dump] replays [res]'s op trace (requires
    [trace_ops:true]) and compares write counts against [mem_dump], the
    final [(cell name, value)] pairs obtained from the live store with
    {!Rme_sim.Memory.peek}. *)

val dump : Memory.t -> cells:Cell.t list -> (string * int) list
(** Convenience: peek a list of cells into the [mem_dump] shape. *)
