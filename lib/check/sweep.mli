(** Exhaustive crash-site sweep engine and cross-lock conformance matrix.

    The paper's guarantees are quantified over {e where} a crash lands:
    WR-Lock is weakly recoverable precisely because one sensitive FAS
    exists (§4, Theorem 4.2), while the strongly recoverable locks must
    survive a crash at {e every} instruction (Theorems 5.17–5.19).  This
    module makes that quantification mechanical:

    + {b discovery} — run the scenario once, crash-free, on the default
      schedule, and collect every executed instruction site
      [(pid, op_index, kind, cell)] through the engine's [on_op] hook;
    + {b enumeration} — turn the sites into crash plans:
      [{Before, After}] × each site, an asynchronous crash at each park
      point (spin sites), and pairwise site combinations once the crash
      budget [F ≥ 2];
    + {b verification} — drive every plan through {!Explore.explore} (or
      {!Explore.explore_parallel} with [jobs > 1]), checking a battery of
      {!Props}-style properties on every explored schedule.

    On top of the engine, {!matrix} evaluates a list of lock subjects
    against their batteries and produces a deterministic lock × property
    table (pass / expected-violation / FAIL with shrunk witness vectors):
    the cross-lock conformance matrix the [conformance] binary renders.

    Determinism: discovery is a single deterministic run; plan order is a
    pure function of the discovered sites; per-plan outcomes inherit the
    explorer's sequential-vs-parallel determinism guarantee.  Everything
    rendered by {!matrix_cells}/{!matrix_details} is therefore
    byte-identical across [jobs] and [split_depth] — only {!campaign.runs}
    (how many schedules the parallel explorer executed before cancelling)
    may vary, and it is deliberately excluded from the rendered matrix. *)

open Rme_sim

(** {1 Sites and plans} *)

(** One executed instruction site from the discovery run.  [step] is the
    global engine step at which the site executed in the discovery run
    (the anchor for asynchronous park-point crashes); [op_index] is the
    per-process instruction counter, which {!Crash.at_op} addresses
    schedule-independently. *)
type site = { pid : int; op_index : int; kind : Api.kind; cell : string option; step : int }

val pp_site : site Fmt.t

val site_signature : site -> string
(** The dedup key: [(kind, cell, op_index)] — deliberately {e without} the
    pid, so symmetric processes contribute each distinct instruction once
    and campaigns stay tractable. *)

(** A crash plan derived from discovered sites. *)
type plan =
  | No_crash  (** the crash-free baseline exploration *)
  | Single of site * Crash.point
  | Async_park of site
      (** asynchronous crash anchored at a spin site's discovery step —
          reaches the process while it is parked, which no
          before/after-instruction plan can *)
  | Pair of (site * Crash.point) * (site * Crash.point)
      (** two crashes in one history (budget [F = 2]) *)
  | System of int
      (** system-wide crash ({!Crash.system_at}) at this global step — the
          whole system loses its continuations at once *)
  | Sys_pair of int * int
      (** two system-wide crashes (budget [F = 2]): the second strikes the
          system while it is recovering from the first *)

val plan_label : plan -> string
(** Deterministic human-readable label, e.g. ["after p1#23 fas wr.tail"]. *)

val crash_of_plan : plan -> unit -> Crash.t
(** Fresh stateful {!Crash.t} per run, as the explorer requires. *)

(** {1 Scenarios, properties, configuration} *)

(** A scenario packages the [setup]/[body] pair the explorer drives —
    existentially, so heterogeneous subjects fit in one list. *)
type scenario = Scenario : { setup : Engine.Ctx.t -> 'a; body : 'a -> pid:int -> unit } -> scenario

val lock_scenario : ?cs_yields:int -> requests:int -> (Engine.Ctx.t -> Harness.lock) -> scenario
(** The standard Algorithm-1 loop over a lock maker, with a critical
    section of [cs_yields] scheduling points (default 4 — long enough that
    an illegal CS overlap is actually schedulable). *)

(** One property of a battery.  [expected_under_crash] encodes the
    subject's recoverability class: a violation found under a {e crashing}
    plan is reported as an expected consequence of the class (WR-Lock's
    weak mutual exclusion, a non-recoverable lock's deadlock) rather than
    a FAIL.  Violations under {!No_crash} are always FAILs.
    [needs_record] marks checkers that replay the event history. *)
type prop = {
  prop_name : string;
  check : Engine.result -> string option;
  expected_under_crash : bool;
  needs_record : bool;
}

val me_prop : ?expected_under_crash:bool -> unit -> prop
(** Application-CS mutual exclusion ({!Props.mutual_exclusion}). *)

val sf_prop : ?expected_under_crash:bool -> requests:int -> unit -> prop
(** Starvation freedom ({!Props.starvation_freedom}). *)

val weak_me_prop : lock_id:int -> prop
(** Interval-form weak ME ({!Props.weak_me_intervals}); never expected. *)

val responsiveness_prop : lock_id:int -> prop
(** Theorem 4.2 responsiveness ({!Props.responsiveness}); never expected. *)

val abort_liveness_prop : supported:bool -> prop
(** {!Props.abort_liveness} at the {!Props.default_abort_expect} bound;
    never expected — an abort must resolve promptly no matter where a
    crash lands.  Vacuous (and safe to include) when the sweep injects no
    aborts. *)

val no_lost_wakeup_prop : unit -> prop
(** {!Props.no_lost_wakeup} at the default overtake bound; never
    expected.  Needs event recording. *)

val abort_rmr_prop : unit -> prop
(** {!Props.abort_rmr} at the default bound; never expected. *)

(** Which failure model the enumeration quantifies over: the paper's
    per-process crashes (any single process fails at any instruction), or
    the Jayanti–Jayanti–Joshi system-wide model (every process's
    continuation is erased at one engine step).  Under [System_wide] the
    only free coordinate of a crash is {e when}, so plans are
    {!System}[ step] for every distinct global step the deduplicated
    discovery sites executed at (plus {!Sys_pair} combinations at budget
    ≥ 2). *)
type crash_model = Per_process | System_wide

val crash_model_string : crash_model -> string

type cfg = {
  max_runs_per_plan : int;  (** explorer budget per plan *)
  max_steps : int;  (** engine step bound per run *)
  budget : int;
      (** crash budget F: 0 sweeps only {!No_crash}, 1 adds the single-site
          plans and park points (per-process) or single-step system crashes
          (system-wide), ≥ 2 adds pairwise combinations *)
  site_cap : int;  (** keep at most this many deduplicated sites *)
  plan_cap : int;  (** keep at most this many plans *)
  site_kinds : Api.kind list option;
      (** [Some kinds] restricts discovery to sites of these instruction
          kinds — a focused campaign (e.g. [[Fas]] sweeps only the
          FAS-gap candidates); [None] (the default) sweeps everything *)
  crash_model : crash_model;  (** which failure model the plans quantify over *)
  abort_timeout : int option;
      (** the abort-injection axis: [Some t] layers
          {!Rme_sim.Abort.impatient}[ ~timeout_steps:t ()] over {e every}
          plan's exploration (including {!No_crash}), so each crash plan
          is additionally quantified over impatient waiters; [None] (the
          default) injects no aborts.  Impatience plans are
          schedule-sensitive, so the explorer runs unreduced under this
          axis. *)
  jobs : int;  (** 1 = sequential {!Explore.explore}; > 1 = that many domains *)
  split_depth : int;  (** frontier split depth of the parallel explorer *)
}

val default_cfg : cfg
(** [{ max_runs_per_plan = 300; max_steps = 4_000; budget = 1;
      site_cap = 96; plan_cap = 256; site_kinds = None;
      crash_model = Per_process; abort_timeout = None; jobs = 1;
      split_depth = 1 }] *)

(** {1 The sweep} *)

type finding = {
  f_plan : plan;
  f_prop : string;
  f_message : string;
  f_witness : int list;  (** shrunk decision vector of the violating run *)
  f_expected : bool;
}

val pp_finding : finding Fmt.t

type campaign = {
  sites_seen : int;  (** executed instruction sites before dedup/cap *)
  sites : site list;  (** deduplicated, capped, in discovery order *)
  sites_truncated : bool;  (** [site_cap] dropped sites — always surfaced *)
  plans_total : int;  (** plans the enumeration produced *)
  plans_run : int;  (** plans actually swept ([plan_cap]) *)
  plans_truncated : bool;
  runs : int;  (** schedules executed across all plans (not deterministic
                   across [jobs] when violations cancel subtrees) *)
  findings : finding list;  (** in plan order; at most one per (plan, prop) *)
}

val discover : cfg -> n:int -> model:Memory.model -> scenario -> int * site list * bool
(** [(sites_seen, deduplicated capped sites, truncated)] of the crash-free
    default-schedule discovery run. *)

val plans_of_sites : cfg -> site list -> plan list
(** The deterministic, uncapped plan enumeration from discovered sites:
    {!No_crash} first, then before/after singles in site order, then the
    park points, then the pairs (budget permitting).  {!sweep} applies
    [plan_cap] on top and reports the truncation. *)

val sweep : cfg -> n:int -> model:Memory.model -> props:prop list -> scenario -> campaign
(** The full campaign: discover, enumerate, explore every plan against
    every property.  Each plan is explored once per expectation class —
    unexpected properties first (any hit is a FAIL), then, on a clean
    pass, expected properties (hits are recorded as expected
    violations) — so an expected violation can never mask a FAIL of the
    same plan. *)

(** {1 The conformance matrix} *)

type subject = {
  subject_name : string;
  subject_n : int;  (** process count this subject is driven with *)
  subject_scenario : scenario;
  subject_props : prop list;
}

val standard_subject :
  name:string ->
  n:int ->
  requests:int ->
  ?cs_yields:int ->
  ?abortable:bool ->
  recoverability:[ `None | `Weak | `Strong ] ->
  (Engine.Ctx.t -> Harness.lock) ->
  subject
(** Battery by recoverability class: strong → ME + SF (nothing expected);
    none → ME + SF with SF violations expected under crashes (a
    non-recoverable lock may deadlock, but must never break ME); weak →
    ME (expected under crashes: the FAS gap) + interval weak-ME +
    responsiveness, both of which must hold (Theorem 4.2).  Weak subjects
    assume the lock registers itself first (lock id 0), which every
    registered maker does.  [abortable] (default false) appends the abort
    battery — {!abort_liveness_prop}, {!no_lost_wakeup_prop},
    {!abort_rmr_prop} — for subjects with a real abort path (pair with
    [cfg.abort_timeout] to actually inject aborts). *)

type verdict =
  | Pass
  | Expected of int  (** number of expected-violation findings *)
  | Fail of finding  (** first unexpected finding, with its witness *)

val verdict_string : verdict -> string

type mrow = { row_subject : string; row_verdicts : (string * verdict) list; row_campaign : campaign }

val matrix : cfg -> model:Memory.model -> subjects:subject list -> mrow list
(** One {!sweep} per subject, verdicts aggregated per property. *)

val matrix_cells : mrow list -> string list * string list list
(** [(header, rows)] for {!Rme.Report.table}: subject, one column per
    property name occurring in any battery ("-" where a subject does not
    check it), then deterministic site/plan counts and truncation flags.
    Contains no run counts, so the rendering is byte-identical across
    [jobs]/[split_depth]. *)

val matrix_details : mrow list -> string list
(** Deterministic detail lines: one per FAIL (plan label, message, shrunk
    witness vector — enough to reproduce by replaying the vector under the
    labelled crash plan) and one per truncated campaign (what was
    dropped).  Empty when every cell is pass/expected. *)

val matrix_failures : mrow list -> (string * finding) list
(** All FAIL findings, with their subject names ([[]] = conformant). *)
