open Rme_sim

type outcome = { runs : int; exhausted : bool; violation : (string * int list) option }

let pp_outcome ppf o =
  Fmt.pf ppf "runs=%d exhausted=%b%a" o.runs o.exhausted
    (Fmt.option (fun ppf (msg, tr) ->
         Fmt.pf ppf " VIOLATION %s at %a" msg Fmt.(Dump.list int) tr))
    o.violation

(* Greedy minimisation of a violating decision vector: zero out decisions
   and truncate, keeping every change that still reproduces a violation.
   Zero is the canonical "lowest-pid" choice, so a minimised trace reads as
   "follow the default schedule except at these points". *)
let shrink ~reproduces trace =
  let still_fails t = reproduces t in
  (* Drop trailing zeros (implied by the default path). *)
  let rec rstrip = function 0 :: rest -> rstrip rest | t -> t in
  let canon t = List.rev (rstrip (List.rev t)) in
  let zero_pass t =
    let arr = Array.of_list t in
    let changed = ref false in
    for i = Array.length arr - 1 downto 0 do
      if arr.(i) <> 0 then begin
        let old = arr.(i) in
        arr.(i) <- 0;
        if still_fails (canon (Array.to_list arr)) then changed := true else arr.(i) <- old
      end
    done;
    (canon (Array.to_list arr), !changed)
  in
  let rec fix t =
    let t', changed = zero_pass t in
    if changed then fix t' else t'
  in
  let t = canon trace in
  if still_fails t then fix t else trace

(* Everything one run needs, bundled so the sequential explorer, the
   shrinker and the per-domain workers of the parallel explorer replay
   schedules identically.  [por] enables footprint collection for the
   sleep-set reduction; [crashy] marks the crash plan's possible victims
   (see Crash.por_class). *)
type 'a driver = {
  max_steps : int;
  record : bool;
  n : int;
  model : Memory.model;
  crash : unit -> Crash.t;
  setup : Engine.Ctx.t -> 'a;
  body : 'a -> pid:int -> unit;
  check : Engine.result -> string option;
  por : bool;
  crashy : int -> bool;
}

(* Decide whether the sleep-set reduction can run.  It needs (a) a
   schedule-robust crash plan — otherwise commuting two independent steps
   can move where a crash fires — and (b) no event recording: [check]s that
   read [result.events] can observe the order of independent steps, which
   the reduction deliberately does not preserve.  Aggregate statistics
   (counts, maxima, per-passage RMRs) are permutation-stable by the
   footprint oracle's construction. *)
let por_setup ~por ~record ~crash =
  if not por then (false, fun _ -> false)
  else
    match Crash.por_class (crash ()) with
    | Crash.Robust victims when not record -> (true, fun pid -> List.mem pid victims)
    | Crash.Robust _ | Crash.Sensitive -> (false, fun _ -> false)

(* Run one schedule.  Returns the engine result, the branching degree
   observed at every decision point, the per-choice footprints (flat, in
   decision order — [None] unless the driver runs with POR), and whether
   any decision fell outside its degree (an unfaithful replay — see
   Sched.trace). *)
let run_trace d trace =
  let decisions = Vec.of_list trace in
  let record = Vec.create () in
  let mismatch = ref false in
  let sched = Sched.trace ~mismatch ~decisions ~record () in
  let footprints = if d.por then Some (Vec.create ()) else None in
  let res =
    Engine.run ?footprints ~footprint_crashy:d.crashy ~record:d.record ~max_steps:d.max_steps
      ~n:d.n ~model:d.model ~sched ~crash:(d.crash ()) ~setup:d.setup ~body:d.body ()
  in
  (res, Vec.to_array record, footprints, !mismatch)

(* A shrink candidate counts only if it reproduces the violation *and* its
   decisions all index real branches: a candidate whose degrees shifted
   takes different branches than the trace it would be reported as, so a
   "minimised" witness built from it would be unfaithful.  Shrinking only
   replays single vectors, so footprint collection is switched off. *)
let faithful_reproduces d t =
  let res, _, _, mismatch = run_trace { d with por = false } t in
  (not mismatch) && d.check res <> None

(* Depth-first exploration of the subtree of decision vectors rooted at
   [prefix0].  Each run returns the branching degree observed at every
   decision point; children of a prefix [p] are p with its next positions
   set to 1 .. degree-1 (0 is the default path, covered by [p] itself).
   Returns the first violation in DFS preorder, or [None].

   Sleep-set reduction: the search walks the run's decision points as a
   chain of nodes along the choice-0 spine.  [sleep0] holds the footprints
   of processes put to sleep by the ancestors; a sibling whose pid is
   asleep is skipped wholesale, because every run below it only reorders
   commuting steps of a run explored since the pid went to sleep.  In this
   explorer's DFS order siblings at a position are fully explored *before*
   the spine continues, so each explored sibling joins the sleep set of the
   later siblings and of the spine continuation — filtered at every hand-
   off by independence with the step actually taken (a dependent step
   invalidates the coverage argument and wakes the sleeper).  A sleeping
   pid's pending step cannot change while it sleeps (only its own step
   could change it), so the stored footprint stays accurate.

   [take_run] reserves budget for one run and returns [false] once the
   budget is gone; [stop] is an external cancellation signal (the parallel
   explorer's "an earlier subtree already has the answer").  Both unwind
   the whole subtree immediately — no sibling is visited once the search
   cannot contribute to the result. *)
let subtree d ~take_run ~stop (prefix0, sleep0) =
  let exception Halt in
  let exception Found of string * int list in
  let rec go prefix sleep0 =
    if stop () then raise Halt;
    if not (take_run ()) then raise Halt;
    let res, branches, fps, _ = run_trace d prefix in
    (match d.check res with Some msg -> raise (Found (msg, prefix)) | None -> ());
    (* The coverage argument permutes complete runs; a timed-out run was
       cut mid-schedule, so for this node fall back to the unpruned
       expansion (children restart with empty sleep sets and judge their
       own runs). *)
    let fps = if res.Engine.timed_out then None else fps in
    let depth = List.length prefix in
    (* Offset of position [depth]'s choices in the flat footprint buffer. *)
    let off = ref 0 in
    (match fps with
    | None -> ()
    | Some _ ->
        for i = 0 to depth - 1 do
          off := !off + branches.(i)
        done);
    (* Sibling prefixes at position [i] share the padded spine
       [prefix @ 0^(i-depth)], kept reversed and extended in place instead
       of being rebuilt per child ([prefix @ pad @ [c]] was quadratic in
       depth). *)
    let rev_spine = ref (List.rev prefix) in
    let sleep = ref (match fps with None -> [] | Some _ -> sleep0) in
    for i = depth to Array.length branches - 1 do
      let degree = branches.(i) in
      (match fps with
      | None ->
          for c = 1 to degree - 1 do
            go (List.rev_append !rev_spine [ c ]) []
          done
      | Some fv ->
          let fp_at c = Vec.get fv (!off + c) in
          if degree > 1 then begin
            (* Sleep candidates for each next sibling and for the spine:
               inherited sleepers plus the siblings explored before it. *)
            let explored = ref !sleep in
            for c = 1 to degree - 1 do
              let fpc = fp_at c in
              let pidc = Footprint.pid fpc in
              if List.exists (fun s -> Footprint.pid s = pidc) !sleep then ()
              else begin
                go
                  (List.rev_append !rev_spine [ c ])
                  (List.filter (fun s -> Footprint.independent s fpc) !explored);
                explored := fpc :: !explored
              end
            done;
            sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !explored
          end
          else sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !sleep;
          off := !off + degree);
      rev_spine := 0 :: !rev_spine
    done
  in
  match go prefix0 sleep0 with
  | () -> None
  | exception Halt -> None
  | exception Found (msg, tr) -> Some (msg, tr)

(* [exhausted] means the search covered the whole tree (up to runs the
   sleep-set reduction proved equivalent to explored ones): no truncation
   and no violation (a violation stops the search early by design). *)
let finish d ~shrink_violations ~runs ~truncated violation =
  let violation =
    match violation with
    | Some (msg, trace) when shrink_violations ->
        Some (msg, shrink ~reproduces:(faithful_reproduces d) trace)
    | v -> v
  in
  { runs; exhausted = (violation = None) && not truncated; violation }

let explore ?(max_runs = 100_000) ?(max_steps = 20_000) ?(shrink_violations = true)
    ?(record = false) ?(por = true) ~n ~model ~crash ~setup ~body ~check () =
  let por, crashy = por_setup ~por ~record ~crash in
  let d = { max_steps; record; n; model; crash; setup; body; check; por; crashy } in
  let runs = ref 0 in
  let truncated = ref false in
  let take_run () =
    if !runs >= max_runs then begin
      truncated := true;
      false
    end
    else begin
      incr runs;
      true
    end
  in
  let violation = subtree d ~take_run ~stop:(fun () -> false) ([], []) in
  finish d ~shrink_violations ~runs:!runs ~truncated:!truncated violation

(* ------------------------------------------------------------------ *)
(* Parallel exploration                                                *)
(* ------------------------------------------------------------------ *)

(* The frontier is an ordered list of schedule-tree positions: a [Todo]
   subtree still to be explored (with the sleep set it inherits), or the
   [Violation] of an already-executed frontier run.  The order is DFS
   preorder of the sequential explorer, so "first element with a violation"
   means the same thing it does there. *)
type item = Todo of int list * Footprint.t list | Violation of string * int list

let explore_parallel ?(max_runs = 100_000) ?(max_steps = 20_000) ?(shrink_violations = true)
    ?(record = false) ?(por = true) ?domains ?(split_depth = 1) ~n ~model ~crash ~setup ~body
    ~check () =
  let por, crashy = por_setup ~por ~record ~crash in
  let d = { max_steps; record; n; model; crash; setup; body; check; por; crashy } in
  let runs = Atomic.make 0 in
  let truncated = Atomic.make false in
  let take_run () =
    let rec loop () =
      let cur = Atomic.get runs in
      if cur >= max_runs then begin
        Atomic.set truncated true;
        false
      end
      else if Atomic.compare_and_set runs cur (cur + 1) then true
      else loop ()
    in
    loop ()
  in
  (* Execute one frontier prefix and turn it into its children, in the
     order the sequential DFS would visit them, replicating [subtree]'s
     sleep-set evolution so the pruned run set — and therefore the outcome
     — is identical whatever the domain count. *)
  let expand (prefix, sleep0) =
    if not (take_run ()) then `Truncated
    else begin
      let res, branches, fps, _ = run_trace d prefix in
      match d.check res with
      | Some msg -> `Violation (msg, prefix)
      | None ->
          let fps = if res.Engine.timed_out then None else fps in
          let depth = List.length prefix in
          let off = ref 0 in
          (match fps with
          | None -> ()
          | Some _ ->
              for i = 0 to depth - 1 do
                off := !off + branches.(i)
              done);
          let rev_spine = ref (List.rev prefix) in
          let sleep = ref (match fps with None -> [] | Some _ -> sleep0) in
          let children = ref [] in
          for i = depth to Array.length branches - 1 do
            let degree = branches.(i) in
            (match fps with
            | None ->
                for c = 1 to degree - 1 do
                  children := Todo (List.rev_append !rev_spine [ c ], []) :: !children
                done
            | Some fv ->
                let fp_at c = Vec.get fv (!off + c) in
                if degree > 1 then begin
                  let explored = ref !sleep in
                  for c = 1 to degree - 1 do
                    let fpc = fp_at c in
                    let pidc = Footprint.pid fpc in
                    if List.exists (fun s -> Footprint.pid s = pidc) !sleep then ()
                    else begin
                      children :=
                        Todo
                          ( List.rev_append !rev_spine [ c ],
                            List.filter (fun s -> Footprint.independent s fpc) !explored )
                        :: !children;
                      explored := fpc :: !explored
                    end
                  done;
                  sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !explored
                end
                else sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !sleep;
                off := !off + degree);
            rev_spine := 0 :: !rev_spine
          done;
          `Children (List.rev !children)
    end
  in
  (* Split the tree at [split_depth] frontier levels.  A violation found
     while expanding ends the expansion: items after it in DFS order are
     irrelevant (dropped), items before it keep their subtrees and are
     still searched — one of them may hold an earlier violation. *)
  let rec expand_levels level items =
    if level >= split_depth then items
    else begin
      let rec walk acc = function
        | [] -> (List.rev acc, false)
        | (Violation _ as it) :: _ -> (List.rev (it :: acc), true)
        | Todo (p, s) :: rest -> (
            match expand (p, s) with
            | `Truncated -> (List.rev acc, true)
            | `Violation (msg, tr) -> (List.rev (Violation (msg, tr) :: acc), true)
            | `Children cs -> walk (List.rev_append cs acc) rest)
      in
      let items', stop_expanding = walk [] items in
      if stop_expanding then items' else expand_levels (level + 1) items'
    end
  in
  let items = expand_levels 0 [ Todo ([], []) ] in
  let rec split acc = function
    | [] -> (List.rev acc, None)
    | Violation (msg, tr) :: _ -> (List.rev acc, Some (msg, tr))
    | Todo (p, s) :: rest -> split ((p, s) :: acc) rest
  in
  let todos, frontier_violation = split [] items in
  let results =
    Pool.map ?domains
      ~hit:(fun v -> v <> None)
      ~tasks:(Array.of_list todos)
      (fun ~index:_ ~stop task -> subtree d ~take_run ~stop task)
  in
  (* Deterministic merge: the lowest-indexed subtree violation — the pool
     guarantees every earlier subtree ran to completion — and only then
     the frontier's own violation (every task precedes it in DFS order). *)
  let rec first i =
    if i >= Array.length results then None
    else match results.(i) with Some (Some v) -> Some v | Some None | None -> first (i + 1)
  in
  let violation = match first 0 with Some v -> Some v | None -> frontier_violation in
  finish d ~shrink_violations ~runs:(Atomic.get runs) ~truncated:(Atomic.get truncated)
    violation
