open Rme_sim

type outcome = { runs : int; exhausted : bool; violation : (string * int list) option }

let pp_outcome ppf o =
  Fmt.pf ppf "runs=%d exhausted=%b%a" o.runs o.exhausted
    (Fmt.option (fun ppf (msg, tr) ->
         Fmt.pf ppf " VIOLATION %s at %a" msg Fmt.(Dump.list int) tr))
    o.violation

(* Effort counters, reported via the [stats] callback rather than inside
   [outcome]: outcomes are compared whole-record across domain counts (the
   byte-identical determinism contract), while engine step totals legally
   vary with checkpoint restarts and cache totals with the task split. *)
type search_stats = {
  engine_runs : int;
  engine_steps : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
}

let pp_search_stats ppf s =
  Fmt.pf ppf "engine runs=%d steps=%d; statecache hits=%d misses=%d evictions=%d" s.engine_runs
    s.engine_steps s.cache_hits s.cache_misses s.cache_evictions

(* Greedy minimisation of a violating decision vector: zero out decisions
   and truncate, keeping every change that still reproduces a violation.
   Zero is the canonical "lowest-pid" choice, so a minimised trace reads as
   "follow the default schedule except at these points". *)
let shrink ~reproduces trace =
  let still_fails t = reproduces t in
  (* Drop trailing zeros (implied by the default path). *)
  let rec rstrip = function 0 :: rest -> rstrip rest | t -> t in
  let canon t = List.rev (rstrip (List.rev t)) in
  let zero_pass t =
    let arr = Array.of_list t in
    let changed = ref false in
    for i = Array.length arr - 1 downto 0 do
      if arr.(i) <> 0 then begin
        let old = arr.(i) in
        arr.(i) <- 0;
        if still_fails (canon (Array.to_list arr)) then changed := true else arr.(i) <- old
      end
    done;
    (canon (Array.to_list arr), !changed)
  in
  let rec fix t =
    let t', changed = zero_pass t in
    if changed then fix t' else t'
  in
  let t = canon trace in
  if still_fails t then fix t else trace

(* Everything one run needs, bundled so the sequential explorer, the
   shrinker and the per-domain workers of the parallel explorer replay
   schedules identically.  [por] enables footprint collection for the
   sleep-set reduction; [crashy] marks the crash plan's possible victims
   (see Crash.por_class). *)
type 'a driver = {
  max_steps : int;
  record : bool;
  n : int;
  model : Memory.model;
  crash : unit -> Crash.t;
  abort : unit -> Abort.t;
  setup : Engine.Ctx.t -> 'a;
  body : 'a -> pid:int -> unit;
  check : Engine.result -> string option;
  por : bool;
  crashy : int -> bool;
  tally : Engine.result -> unit;
      (* fired once per engine execution (probes and shrink replays
         included) — feeds the [stats] callback's effort counters *)
}

(* Decide which reduction tier can actually run.  Both reduced tiers need
   (a) a schedule-robust crash plan — otherwise commuting two independent
   steps can move where a crash fires — and (b) no event recording:
   [check]s that read [result.events] can observe the order of independent
   steps, which the reduction deliberately does not preserve.  Aggregate
   statistics (counts, maxima, per-passage RMRs) are permutation-stable by
   the footprint oracle's construction.  When either condition fails the
   requested tier downgrades to `Off. *)
let por_setup ~por ~record ~crash ~abort =
  match por with
  | `Off -> (`Off, fun _ -> false)
  | (`Sleep | `Source) as tier -> (
      match (Crash.por_class (crash ()), Abort.por_class (abort ())) with
      | Crash.Robust victims, Crash.Robust ab_victims when not record ->
          (tier, fun pid -> List.mem pid victims || List.mem pid ab_victims)
      | _ -> (`Off, fun _ -> false))

(* Run one schedule.  Returns the engine result, the branching degree
   observed at every decision point, the per-choice footprints (flat, in
   decision order — [None] unless the driver runs with POR), and whether
   any decision fell outside its degree (an unfaithful replay — see
   Sched.trace).  [state_key_at]/[on_state_key] pass through to
   {!Engine.run} (the `Source tier's state-cache key). *)
let run_trace ?(state_key_at = -1) ?(on_state_key = fun _ -> ()) d trace =
  let decisions = Vec.of_list trace in
  let record = Vec.create () in
  let mismatch = ref false in
  let sched = Sched.trace ~mismatch ~decisions ~record () in
  let footprints = if d.por then Some (Vec.create ()) else None in
  let res =
    Engine.run ?footprints ~footprint_crashy:d.crashy ~state_key_at ~on_state_key
      ~record:d.record ~max_steps:d.max_steps ~n:d.n ~model:d.model ~sched ~crash:(d.crash ())
      ~abort:(d.abort ()) ~setup:d.setup ~body:d.body ()
  in
  d.tally res;
  (res, Vec.to_array record, footprints, !mismatch)

(* A shrink candidate counts only if it reproduces the violation *and* its
   decisions all index real branches: a candidate whose degrees shifted
   takes different branches than the trace it would be reported as, so a
   "minimised" witness built from it would be unfaithful.  Shrinking only
   replays single vectors, so footprint collection is switched off. *)
let faithful_reproduces d t =
  let res, _, _, mismatch = run_trace { d with por = false } t in
  (not mismatch) && d.check res <> None

(* Depth-first exploration of the subtree of decision vectors rooted at
   [prefix0].  Each run returns the branching degree observed at every
   decision point; children of a prefix [p] are p with its next positions
   set to 1 .. degree-1 (0 is the default path, covered by [p] itself).
   Returns the first violation in DFS preorder, or [None].

   Sleep-set reduction: the search walks the run's decision points as a
   chain of nodes along the choice-0 spine.  [sleep0] holds the footprints
   of processes put to sleep by the ancestors; a sibling whose pid is
   asleep is skipped wholesale, because every run below it only reorders
   commuting steps of a run explored since the pid went to sleep.  In this
   explorer's DFS order siblings at a position are fully explored *before*
   the spine continues, so each explored sibling joins the sleep set of the
   later siblings and of the spine continuation — filtered at every hand-
   off by independence with the step actually taken (a dependent step
   invalidates the coverage argument and wakes the sleeper).  A sleeping
   pid's pending step cannot change while it sleeps (only its own step
   could change it), so the stored footprint stays accurate.

   [take_run] reserves budget for one run and returns [false] once the
   budget is gone; [stop] is an external cancellation signal (the parallel
   explorer's "an earlier subtree already has the answer").  Both unwind
   the whole subtree immediately — no sibling is visited once the search
   cannot contribute to the result. *)
let subtree d ~take_run ~stop (prefix0, sleep0) =
  let exception Halt in
  let exception Found of string * int list in
  let rec go prefix sleep0 =
    if stop () then raise Halt;
    if not (take_run ()) then raise Halt;
    let res, branches, fps, _ = run_trace d prefix in
    (match d.check res with Some msg -> raise (Found (msg, prefix)) | None -> ());
    (* The coverage argument permutes complete runs; a timed-out run was
       cut mid-schedule, so for this node fall back to the unpruned
       expansion (children restart with empty sleep sets and judge their
       own runs). *)
    let fps = if res.Engine.timed_out then None else fps in
    let depth = List.length prefix in
    (* Offset of position [depth]'s choices in the flat footprint buffer. *)
    let off = ref 0 in
    (match fps with
    | None -> ()
    | Some _ ->
        for i = 0 to depth - 1 do
          off := !off + branches.(i)
        done);
    (* Sibling prefixes at position [i] share the padded spine
       [prefix @ 0^(i-depth)], kept reversed and extended in place instead
       of being rebuilt per child ([prefix @ pad @ [c]] was quadratic in
       depth). *)
    let rev_spine = ref (List.rev prefix) in
    let sleep = ref (match fps with None -> [] | Some _ -> sleep0) in
    for i = depth to Array.length branches - 1 do
      let degree = branches.(i) in
      (match fps with
      | None ->
          for c = 1 to degree - 1 do
            go (List.rev_append !rev_spine [ c ]) []
          done
      | Some fv ->
          let fp_at c = Vec.get fv (!off + c) in
          if degree > 1 then begin
            (* Sleep candidates for each next sibling and for the spine:
               inherited sleepers plus the siblings explored before it. *)
            let explored = ref !sleep in
            for c = 1 to degree - 1 do
              let fpc = fp_at c in
              let pidc = Footprint.pid fpc in
              if List.exists (fun s -> Footprint.pid s = pidc) !sleep then ()
              else begin
                go
                  (List.rev_append !rev_spine [ c ])
                  (List.filter (fun s -> Footprint.independent s fpc) !explored);
                explored := fpc :: !explored
              end
            done;
            sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !explored
          end
          else sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !sleep;
          off := !off + degree);
      rev_spine := 0 :: !rev_spine
    done
  in
  match go prefix0 sleep0 with
  | () -> None
  | exception Halt -> None
  | exception Found (msg, tr) -> Some (msg, tr)

(* ------------------------------------------------------------------ *)
(* Source-set DPOR (`Source tier)                                      *)
(* ------------------------------------------------------------------ *)

(* Shared runtime of one `Source search: the demand slots and the state
   cache.  [slots] holds, per absolute decision position of the current
   DFS path, the bitmask of sibling choices some observed race demands at
   that position ([all_mask] = every choice, used when the demanded pid is
   not runnable there or the degree exceeds the mask width).  One frame
   owns each position at a time; a frame drains and clears its own
   positions before returning, and leaves demands for positions below
   [root] — an ancestor's, or outside a parallel task's subtree — to their
   owners (the parallel frontier is fully expanded under sleep-set
   filtering, so dropped below-root demands are already covered by sibling
   tasks). *)
module Src = struct
  type summary = Footprint.t list option
  (* distinct footprints a subtree executed; [None] = overflowed the cap,
     treated as conflicting with everything *)

  type ctx = { slots : int Vec.t; root : int; cache : summary Statecache.t option }

  (* Mutable summary accumulator threaded from child frames to parents. *)
  type acc = { mutable fps : Footprint.t list; mutable universal : bool }

  let all_mask = -1

  let summary_cap = 64

  let fresh_acc () = { fps = []; universal = false }

  let note acc fp =
    if not acc.universal then
      if List.memq fp acc.fps then ()
      else if List.length acc.fps >= summary_cap then begin
        acc.universal <- true;
        acc.fps <- []
      end
      else acc.fps <- fp :: acc.fps

  let note_summary acc = function
    | None ->
        acc.universal <- true;
        acc.fps <- []
    | Some l -> List.iter (note acc) l

  let to_summary acc : summary = if acc.universal then None else Some acc.fps

  let ensure ctx len =
    while Vec.length ctx.slots < len do
      Vec.push ctx.slots 0
    done

  let demand ctx ~pos ~deg ~choice =
    let cur = Vec.get ctx.slots pos in
    if cur <> all_mask then
      Vec.set ctx.slots pos
        (match choice with
        | Some c when deg <= 62 -> cur lor (1 lsl c)
        | Some _ | None -> all_mask)

  (* Scan a completed run for reversible races and deposit the resulting
     demands.  [decisions] is the explicit prefix (0 past its end), [offs]
     the per-position offsets into the flat footprint buffer [fp]. *)
  let scan ctx ~n ~decisions ~branches ~offs ~fp =
    let len = Array.length branches in
    ensure ctx len;
    let ndec = Array.length decisions in
    let choice j = if j < ndec then decisions.(j) else 0 in
    let executed j = fp (offs.(j) + choice j) in
    Footprint.Race.scan ~n ~len ~executed
      ~degree:(fun j -> branches.(j))
      ~emit:(fun ~pos ~pid ->
        if pos >= ctx.root then begin
          let deg = branches.(pos) in
          let c = ref None in
          for i = deg - 1 downto 0 do
            if Footprint.pid (fp (offs.(pos) + i)) = pid then c := Some i
          done;
          demand ctx ~pos ~deg ~choice:!c
        end)

  (* Conservative demands a pruned (cache-hit) subtree owes the current
     prefix.  The stored exploration raised its cross-prefix race demands
     against *its* path, not ours, so re-raise them here from the summary:
     demand every sibling at every branching prefix position whose
     executed step conflicts with any footprint the subtree ran. *)
  let demand_prefix ctx ~decisions ~branches ~offs ~fp ~depth (s : summary) =
    ensure ctx depth;
    for k = ctx.root to depth - 1 do
      let deg = branches.(k) in
      if deg > 1 then begin
        let fk = fp (offs.(k) + decisions.(k)) in
        let conflict =
          match s with
          | None -> true
          | Some l ->
              List.exists
                (fun f ->
                  Footprint.pid f <> Footprint.pid fk && not (Footprint.independent f fk))
                l
        in
        if conflict then demand ctx ~pos:k ~deg ~choice:None
      end
    done

  (* Sleep mask for the cache's subset rule; pids ≥ 62 cannot be encoded
     exactly, so caching is disabled for such systems upstream. *)
  let mask_of_sleep inh = List.fold_left (fun m f -> m lor (1 lsl Footprint.pid f)) 0 inh
end

(* Depth-first source-set DPOR with state caching: the `Source analogue of
   [subtree].  Each node runs its spine schedule, scans the observed
   footprints for reversible races ({!Footprint.Race}), and explores a
   sibling only when some race demands it — where [subtree] visits every
   non-slept sibling.  Demands land in the shared [ctx.slots] under the
   position they reverse; since descendants of a node keep discovering
   races at its positions, every frame drains its own position range with
   fixpoint sweeps until no demand is pending.  Sleep sets filter exactly
   as in [subtree], and a demanded-but-sleeping pid stays skipped (its
   reversal is the run the sleeper is standing in for).  A node whose
   state key hits the cache — same key, stored sleep mask ⊆ current —
   prunes its whole subtree after re-raising the stored summary's
   conservative prefix demands; a completed frame none of whose
   descendants timed out adds itself.  Visit order is demand-driven, so
   when violations exist the reported witness may differ from [subtree]'s
   preorder-first one (the shrunk witness is compared in the differential
   battery instead); exhaustion and violation-existence always agree. *)
let subtree_source d ~ctx ~take_run ~stop (prefix0, inh0) =
  let exception Halt in
  let exception Found of string * int list in
  let caching = ctx.Src.cache <> None in
  let rec go prefix inh0 (note : Src.acc) =
    if stop () then raise Halt;
    if not (take_run ()) then raise Halt;
    let depth = List.length prefix in
    let key = ref None in
    let res, branches, fps, _ =
      run_trace d prefix
        ~state_key_at:(if caching then depth else -1)
        ~on_state_key:(fun k -> key := Some k)
    in
    (match d.check res with Some msg -> raise (Found (msg, prefix)) | None -> ());
    let len = Array.length branches in
    if res.Engine.timed_out then begin
      (* The run was cut mid-schedule: the permutation argument needs
         complete runs, so expand this node unpruned (children still
         reduce internally) and poison the cache adds of the whole path —
         the subtree's footprints are unknown, so no ancestor summary can
         be trusted. *)
      let rev_spine = ref (List.rev prefix) in
      for i = depth to len - 1 do
        for c = 1 to branches.(i) - 1 do
          ignore (go (List.rev_append !rev_spine [ c ]) [] note)
        done;
        rev_spine := 0 :: !rev_spine
      done;
      (* Demands children deposited at our positions are subsumed by the
         unpruned expansion; clear them so they cannot leak upward. *)
      for i = depth to min len (Vec.length ctx.Src.slots) - 1 do
        Vec.set ctx.Src.slots i 0
      done;
      Src.note_summary note None;
      false
    end
    else begin
      let fps = match fps with Some v -> v | None -> assert false in
      let fp i = Vec.get fps i in
      let offs = Array.make (len + 1) 0 in
      for i = 0 to len - 1 do
        offs.(i + 1) <- offs.(i) + branches.(i)
      done;
      let decisions = Array.of_list prefix in
      let slept = Src.mask_of_sleep inh0 in
      let hit =
        match (ctx.Src.cache, !key) with
        | Some c, Some k -> Statecache.find c ~key:k ~slept
        | _ -> None
      in
      match hit with
      | Some summary ->
          Src.demand_prefix ctx ~decisions ~branches ~offs ~fp ~depth summary;
          Src.note_summary note summary;
          true
      | None ->
          Src.scan ctx ~n:d.n ~decisions ~branches ~offs ~fp;
          let acc = Src.fresh_acc () in
          for j = depth to len - 1 do
            Src.note acc (fp offs.(j))
          done;
          let m = len - depth in
          let dem = Array.make (max m 1) 0 in
          (* Drain demands addressed to this frame's positions out of the
             shared slots, eagerly: after the own scan and after every child
             returns.  A child's position range overlaps ours (absolute
             positions alias across paths), so a demand of ours left in the
             slots while a child runs would be consumed — and cleared — by
             the child against the wrong node. *)
          let drain () =
            for i = depth to min len (Vec.length ctx.Src.slots) - 1 do
              let v = Vec.get ctx.Src.slots i in
              if v <> 0 then begin
                dem.(i - depth) <- dem.(i - depth) lor v;
                Vec.set ctx.Src.slots i 0
              end
            done
          in
          drain ();
          let inh = Array.make (max m 1) [] in
          let expl = Array.make (max m 1) [] in
          let acted = Array.make (max m 1) 1 (* bit 0: the spine, covered by this run *) in
          let rev_spine = Array.make (max m 1) [] in
          if m > 0 then begin
            inh.(0) <- inh0;
            rev_spine.(0) <- List.rev prefix;
            for ix = 1 to m - 1 do
              rev_spine.(ix) <- 0 :: rev_spine.(ix - 1)
            done
          end;
          let summarizable = ref true in
          let first_sweep = ref true in
          let progress = ref true in
          while !progress do
            progress := false;
            for i = depth to len - 1 do
              let ix = i - depth in
              let deg = branches.(i) in
              if deg > 1 then begin
                let full = if deg >= 62 then Src.all_mask else (1 lsl deg) - 1 in
                let pending = dem.(ix) land full land lnot acted.(ix) in
                if pending <> 0 then
                  for c = 1 to deg - 1 do
                    if pending land (1 lsl c) <> 0 then begin
                      acted.(ix) <- acted.(ix) lor (1 lsl c);
                      let fpc = fp (offs.(i) + c) in
                      let pidc = Footprint.pid fpc in
                      if List.exists (fun s -> Footprint.pid s = pidc) inh.(ix) then ()
                      else begin
                        progress := true;
                        let child_sleep =
                          List.filter
                            (fun s -> Footprint.independent s fpc)
                            (inh.(ix) @ expl.(ix))
                        in
                        let ok = go (List.rev_append rev_spine.(ix) [ c ]) child_sleep acc in
                        drain ();
                        summarizable := !summarizable && ok;
                        expl.(ix) <- fpc :: expl.(ix)
                      end
                    end
                  done
              end;
              (* The spine's inherited sleep evolves exactly as [subtree]'s:
                 past position [i], the first-sweep explored siblings (and
                 the inherited sleepers) survive iff independent of the
                 step the spine actually took. *)
              if !first_sweep && ix + 1 < m then
                inh.(ix + 1) <-
                  List.filter
                    (fun s -> Footprint.independent s (fp offs.(i)))
                    (inh.(ix) @ expl.(ix))
            done;
            first_sweep := false
          done;
          (if !summarizable && caching then
             match (ctx.Src.cache, !key) with
             | Some c, Some k -> Statecache.add c ~key:k ~slept ~summary:(Src.to_summary acc)
             | _ -> ());
          Src.note_summary note (Src.to_summary acc);
          !summarizable
    end
  in
  match go prefix0 inh0 (Src.fresh_acc ()) with
  | _ -> None
  | exception Halt -> None
  | exception Found (msg, tr) -> Some (msg, tr)

(* [exhausted] means the search covered the whole tree (up to runs the
   sleep-set reduction proved equivalent to explored ones): no truncation
   and no violation (a violation stops the search early by design). *)
let finish d ~shrink_violations ~runs ~truncated violation =
  let violation =
    match violation with
    | Some (msg, trace) when shrink_violations ->
        Some (msg, shrink ~reproduces:(faithful_reproduces d) trace)
    | v -> v
  in
  { runs; exhausted = (violation = None) && not truncated; violation }

(* Sleep masks index pids into an int; caching would be unsound past the
   word width, so it switches off for (absurdly) wide systems. *)
let cache_for ~n ~statecache ~cache_capacity =
  if n > 62 then None
  else
    match statecache with
    | Some _ as c -> c
    | None -> if cache_capacity > 0 then Some (Statecache.create ~capacity:cache_capacity ()) else None

let explore ?(max_runs = 100_000) ?(max_steps = 20_000) ?(shrink_violations = true)
    ?(record = false) ?(por = `Sleep) ?statecache ?(cache_capacity = 65_536)
    ?(abort = fun () -> Abort.none) ?stats ~n ~model ~crash ~setup ~body ~check () =
  let tier, crashy = por_setup ~por ~record ~crash ~abort in
  let runs_total = ref 0 in
  let steps_total = ref 0 in
  let tally =
    match stats with
    | None -> fun (_ : Engine.result) -> ()
    | Some _ ->
        fun (r : Engine.result) ->
          incr runs_total;
          steps_total := !steps_total + r.Engine.steps
  in
  let d =
    {
      max_steps;
      record;
      n;
      model;
      crash;
      abort;
      setup;
      body;
      check;
      por = tier <> `Off;
      crashy;
      tally;
    }
  in
  (* Hoisted so the [stats] callback can read the counters after the
     search, whichever branch ran. *)
  let cache =
    match tier with
    | `Source -> cache_for ~n ~statecache ~cache_capacity
    | `Off | `Sleep -> None
  in
  let runs = ref 0 in
  let truncated = ref false in
  let take_run () =
    if !runs >= max_runs then begin
      truncated := true;
      false
    end
    else begin
      incr runs;
      true
    end
  in
  let stop () = false in
  let outcome =
    match tier with
    | `Off ->
        let violation = subtree d ~take_run ~stop ([], []) in
        finish d ~shrink_violations ~runs:!runs ~truncated:!truncated violation
    | (`Sleep | `Source) as tier ->
      (* Root probe: the very first run — the default schedule — executes
         footprint-free.  When it already violates, the whole search is
         that one run and the reduction machinery never pays its footprint
         overhead (the violation-bound case).  Otherwise the root re-runs
         with footprints inside the reduced search, without consuming
         budget a second time, so run counts match the un-probed search
         exactly. *)
      if not (take_run ()) then finish d ~shrink_violations ~runs:!runs ~truncated:!truncated None
      else begin
        let res, _, _, _ = run_trace { d with por = false } [] in
        match d.check res with
        | Some msg ->
            finish d ~shrink_violations ~runs:!runs ~truncated:!truncated (Some (msg, []))
        | None ->
            let first = ref true in
            let take_run' () =
              if !first then begin
                first := false;
                true
              end
              else take_run ()
            in
            let violation =
              match tier with
              | `Sleep -> subtree d ~take_run:take_run' ~stop ([], [])
              | `Source ->
                  let ctx = { Src.slots = Vec.create (); root = 0; cache } in
                  subtree_source d ~ctx ~take_run:take_run' ~stop ([], [])
            in
            finish d ~shrink_violations ~runs:!runs ~truncated:!truncated violation
      end
  in
  (match stats with
  | None -> ()
  | Some f ->
      let cache_hits, cache_misses, cache_evictions =
        match cache with
        | Some c -> (Statecache.hits c, Statecache.misses c, Statecache.evictions c)
        | None -> (0, 0, 0)
      in
      f
        {
          engine_runs = !runs_total;
          engine_steps = !steps_total;
          cache_hits;
          cache_misses;
          cache_evictions;
        });
  outcome

(* ------------------------------------------------------------------ *)
(* Parallel exploration                                                *)
(* ------------------------------------------------------------------ *)

(* The skeleton is the DFS preorder of the schedule tree, cut at the split
   frontier: a [Done] marker for each interior node the (sequential)
   expansion phase already ran, a [Task] for each unexpanded subtree (with
   the sleep set it inherits), or the [Viol]ation of an expanded node —
   always the last item, since expansion stops there.  Keeping the [Done]
   markers in position is what lets the settlement walk reconstruct the
   exact sequential run count. *)
type item = Done | Task of int list * Footprint.t list | Viol of string * int list

(* Checkpointed DFS of the subtree rooted at [prefix0]: visits the same
   nodes in the same preorder as [subtree], but every node's run resumes
   from the deepest engine checkpoint on the current path — captured every
   [snap_gap] decision positions during the parent runs — instead of
   replaying its whole decision-vector prefix from the root.  On the
   explore bench this turns a run whose schedule shares a depth-[k] prefix
   with its parent from O(full run) into O(fast-forward k + suffix).

   [take_run] is consulted once per node, before its run, and returns
   [false] to abandon the subtree (budget provably exhausted); [stop] is
   the pool's cancellation signal.  Returns [`Done] (subtree exhausted),
   [`Cut] (abandoned), or the first violation in preorder. *)
let subtree_ckpt d ~snap_gap ~take_run ~stop (prefix0, sleep0) =
  let exception Halt in
  let exception Found of string * int list in
  let rec go (base : Engine.Snap.t option) (decisions : int array) sleep0 =
    if stop () then raise Halt;
    if not (take_run ()) then raise Halt;
    let snaps = Vec.create () in
    let rr =
      Engine.run_resumable ?from:base ~snap_gap ~snap:(Vec.push snaps) ~record:d.record
        ~max_steps:d.max_steps ~por:d.por ~footprint_crashy:d.crashy ~decisions ~n:d.n
        ~model:d.model ~crash:d.crash ~abort:d.abort ~setup:d.setup ~body:d.body ()
    in
    let res = rr.Engine.rr_result in
    d.tally res;
    (match d.check res with
    | Some msg -> raise (Found (msg, Array.to_list decisions))
    | None -> ());
    let branches = rr.Engine.rr_degrees in
    (* Same timed-out fallback as [subtree]: the coverage argument permutes
       complete runs only. *)
    let fps = if (not d.por) || res.Engine.timed_out then None else Some rr.Engine.rr_footprints in
    let depth = Array.length decisions in
    let off = ref 0 in
    (match fps with
    | None -> ()
    | Some _ ->
        for i = 0 to depth - 1 do
          off := !off + branches.(i)
        done);
    (* Deepest checkpoint at position <= i; the first eligible position
       (= [depth]) is always captured, so children never fall back past
       this node's own run. *)
    let si = ref 0 in
    let base_for i =
      while !si < Vec.length snaps && Engine.Snap.pos (Vec.get snaps !si) <= i do
        incr si
      done;
      if !si = 0 then base else Some (Vec.get snaps (!si - 1))
    in
    let child i c =
      let v = Array.make (i + 1) 0 in
      Array.blit decisions 0 v 0 depth;
      v.(i) <- c;
      v
    in
    let sleep = ref (match fps with None -> [] | Some _ -> sleep0) in
    for i = depth to Array.length branches - 1 do
      let degree = branches.(i) in
      (match fps with
      | None ->
          for c = 1 to degree - 1 do
            go (base_for i) (child i c) []
          done
      | Some fv ->
          let fp_at c = fv.(!off + c) in
          if degree > 1 then begin
            let explored = ref !sleep in
            for c = 1 to degree - 1 do
              let fpc = fp_at c in
              let pidc = Footprint.pid fpc in
              if List.exists (fun s -> Footprint.pid s = pidc) !sleep then ()
              else begin
                go (base_for i) (child i c)
                  (List.filter (fun s -> Footprint.independent s fpc) !explored);
                explored := fpc :: !explored
              end
            done;
            sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !explored
          end
          else sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !sleep;
          off := !off + degree)
    done
  in
  match go None (Array.of_list prefix0) sleep0 with
  | () -> `Done
  | exception Halt -> `Cut
  | exception Found (msg, tr) -> `Viol (msg, tr)

(* Checkpointed source-set DPOR: [subtree_source]'s frame algorithm over
   [subtree_ckpt]'s resume machinery.  Each parallel task runs one of
   these over its own fresh {!Src.ctx} (slots, state cache) rooted at its
   prefix length: demands for positions inside another task's subtree are
   dropped at the root boundary — sound because the phase-1 frontier is
   fully expanded under sleep-set filtering, a superset of any source-set
   choice, so whatever a dropped demand would reach is a sibling task
   already in the pool. *)
let subtree_ckpt_source d ~snap_gap ~ctx ~take_run ~stop (prefix0, inh0) =
  let exception Halt in
  let exception Found of string * int list in
  let caching = ctx.Src.cache <> None in
  let rec go (base : Engine.Snap.t option) (decisions : int array) inh0 (note : Src.acc) =
    if stop () then raise Halt;
    if not (take_run ()) then raise Halt;
    let depth = Array.length decisions in
    let snaps = Vec.create () in
    let key = ref None in
    let rr =
      Engine.run_resumable ?from:base ~snap_gap ~snap:(Vec.push snaps) ~record:d.record
        ~max_steps:d.max_steps ~por:d.por ~footprint_crashy:d.crashy
        ~state_key_at:(if caching then depth else -1)
        ~on_state_key:(fun k -> key := Some k)
        ~decisions ~n:d.n ~model:d.model ~crash:d.crash ~abort:d.abort ~setup:d.setup ~body:d.body ()
    in
    let res = rr.Engine.rr_result in
    d.tally res;
    (match d.check res with
    | Some msg -> raise (Found (msg, Array.to_list decisions))
    | None -> ());
    let branches = rr.Engine.rr_degrees in
    let len = Array.length branches in
    let m = len - depth in
    (* Deepest checkpoint at position <= i, precomputed because the
       fixpoint sweeps revisit positions out of order. *)
    let base_at = Array.make (max m 1) base in
    (let si = ref 0 in
     for ix = 0 to m - 1 do
       let i = depth + ix in
       while !si < Vec.length snaps && Engine.Snap.pos (Vec.get snaps !si) <= i do
         incr si
       done;
       base_at.(ix) <- (if !si = 0 then base else Some (Vec.get snaps (!si - 1)))
     done);
    let child i c =
      let v = Array.make (i + 1) 0 in
      Array.blit decisions 0 v 0 depth;
      v.(i) <- c;
      v
    in
    if res.Engine.timed_out then begin
      for i = depth to len - 1 do
        for c = 1 to branches.(i) - 1 do
          ignore (go base_at.(i - depth) (child i c) [] note)
        done
      done;
      for i = depth to min len (Vec.length ctx.Src.slots) - 1 do
        Vec.set ctx.Src.slots i 0
      done;
      Src.note_summary note None;
      false
    end
    else begin
      let fpv = rr.Engine.rr_footprints in
      let fp i = fpv.(i) in
      let offs = Array.make (len + 1) 0 in
      for i = 0 to len - 1 do
        offs.(i + 1) <- offs.(i) + branches.(i)
      done;
      let slept = Src.mask_of_sleep inh0 in
      let hit =
        match (ctx.Src.cache, !key) with
        | Some c, Some k -> Statecache.find c ~key:k ~slept
        | _ -> None
      in
      match hit with
      | Some summary ->
          Src.demand_prefix ctx ~decisions ~branches ~offs ~fp ~depth summary;
          Src.note_summary note summary;
          true
      | None ->
          Src.scan ctx ~n:d.n ~decisions ~branches ~offs ~fp;
          let acc = Src.fresh_acc () in
          for j = depth to len - 1 do
            Src.note acc (fp offs.(j))
          done;
          let dem = Array.make (max m 1) 0 in
          let drain () =
            for i = depth to min len (Vec.length ctx.Src.slots) - 1 do
              let v = Vec.get ctx.Src.slots i in
              if v <> 0 then begin
                dem.(i - depth) <- dem.(i - depth) lor v;
                Vec.set ctx.Src.slots i 0
              end
            done
          in
          drain ();
          let inh = Array.make (max m 1) [] in
          let expl = Array.make (max m 1) [] in
          let acted = Array.make (max m 1) 1 in
          if m > 0 then inh.(0) <- inh0;
          let summarizable = ref true in
          let first_sweep = ref true in
          let progress = ref true in
          while !progress do
            progress := false;
            for i = depth to len - 1 do
              let ix = i - depth in
              let deg = branches.(i) in
              if deg > 1 then begin
                let full = if deg >= 62 then Src.all_mask else (1 lsl deg) - 1 in
                let pending = dem.(ix) land full land lnot acted.(ix) in
                if pending <> 0 then
                  for c = 1 to deg - 1 do
                    if pending land (1 lsl c) <> 0 then begin
                      acted.(ix) <- acted.(ix) lor (1 lsl c);
                      let fpc = fp (offs.(i) + c) in
                      let pidc = Footprint.pid fpc in
                      if List.exists (fun s -> Footprint.pid s = pidc) inh.(ix) then ()
                      else begin
                        progress := true;
                        let child_sleep =
                          List.filter
                            (fun s -> Footprint.independent s fpc)
                            (inh.(ix) @ expl.(ix))
                        in
                        let ok = go base_at.(ix) (child i c) child_sleep acc in
                        drain ();
                        summarizable := !summarizable && ok;
                        expl.(ix) <- fpc :: expl.(ix)
                      end
                    end
                  done
              end;
              if !first_sweep && ix + 1 < m then
                inh.(ix + 1) <-
                  List.filter
                    (fun s -> Footprint.independent s (fp offs.(i)))
                    (inh.(ix) @ expl.(ix))
            done;
            first_sweep := false
          done;
          (if !summarizable && caching then
             match (ctx.Src.cache, !key) with
             | Some c, Some k -> Statecache.add c ~key:k ~slept ~summary:(Src.to_summary acc)
             | _ -> ());
          Src.note_summary note (Src.to_summary acc);
          !summarizable
    end
  in
  match go None (Array.of_list prefix0) inh0 (Src.fresh_acc ()) with
  | _ -> `Done
  | exception Halt -> `Cut
  | exception Found (msg, tr) -> `Viol (msg, tr)

(* What a pool task reports back: how many nodes it visited (one per
   [take_run], exactly the sequential DFS's count for the same nodes), the
   first violation in its preorder if any, and whether it stopped early. *)
type task_result = { t_runs : int; t_viol : (string * int list) option; t_cut : bool }

let explore_parallel ?(max_runs = 100_000) ?(max_steps = 20_000) ?(shrink_violations = true)
    ?(record = false) ?(por = `Sleep) ?(cache_capacity = 65_536) ?domains ?(split_depth = 1)
    ?(snap_gap = 4) ?(abort = fun () -> Abort.none) ?stats ~n ~model ~crash ~setup ~body ~check ()
    =
  let tier, crashy = por_setup ~por ~record ~crash ~abort in
  (* Effort counters accumulate atomically: the tally fires on whatever
     domain runs the task.  They feed only the [stats] callback, never the
     outcome, so the domain-count determinism contract is untouched. *)
  let runs_a = Atomic.make 0 in
  let steps_a = Atomic.make 0 in
  let cache_hits_a = Atomic.make 0 in
  let cache_misses_a = Atomic.make 0 in
  let cache_evictions_a = Atomic.make 0 in
  let tally =
    match stats with
    | None -> fun (_ : Engine.result) -> ()
    | Some _ ->
        fun (r : Engine.result) ->
          Atomic.incr runs_a;
          ignore (Atomic.fetch_and_add steps_a r.Engine.steps)
  in
  let d =
    {
      max_steps;
      record;
      n;
      model;
      crash;
      abort;
      setup;
      body;
      check;
      por = tier <> `Off;
      crashy;
      tally;
    }
  in
  let ndomains =
    match domains with Some x when x >= 1 -> x | Some _ -> 1 | None -> Pool.default_domains ()
  in
  (* ---- Phase 0: root probe (reduced tiers). ----
     The default schedule runs once, footprint-free.  A violation here is
     the sequential search's first run, so the whole exploration is that
     one run — reduction never pays its footprint overhead on
     violation-bound subjects.  Otherwise phase 1 re-runs the root with
     footprints; settlement charges that interior node once, as before,
     so run accounting is unchanged. *)
  let probe_viol =
    if tier = `Off || max_runs < 1 then None
    else
      let res, _, _, _ = run_trace { d with por = false } [] in
      match d.check res with Some msg -> Some (msg, []) | None -> None
  in
  (* ---- Phase 1: adaptive frontier expansion (sequential). ----
     Runs interior nodes and replaces each by [Done :: its children] until
     there are enough tasks to keep every domain fed through imbalance
     (~8x domains), the tree is exhausted, a violation surfaces (the
     search ends at it — later items are dropped), or further splitting
     cannot matter because the budget would already be spent.
     [split_depth] forces a minimum number of levels (compatibility with
     callers tuned against the fixed-depth splitter). *)
  let expand_one (prefix, sleep0) =
    let res, branches, fps, _ = run_trace d prefix in
    match d.check res with
    | Some msg -> `Viol (msg, prefix)
    | None ->
        let fps = if res.Engine.timed_out then None else fps in
        let depth = List.length prefix in
        let off = ref 0 in
        (match fps with
        | None -> ()
        | Some _ ->
            for i = 0 to depth - 1 do
              off := !off + branches.(i)
            done);
        let rev_spine = ref (List.rev prefix) in
        let sleep = ref (match fps with None -> [] | Some _ -> sleep0) in
        let children = ref [] in
        for i = depth to Array.length branches - 1 do
          let degree = branches.(i) in
          (match fps with
          | None ->
              for c = 1 to degree - 1 do
                children := Task (List.rev_append !rev_spine [ c ], []) :: !children
              done
          | Some fv ->
              let fp_at c = Vec.get fv (!off + c) in
              if degree > 1 then begin
                let explored = ref !sleep in
                for c = 1 to degree - 1 do
                  let fpc = fp_at c in
                  let pidc = Footprint.pid fpc in
                  if List.exists (fun s -> Footprint.pid s = pidc) !sleep then ()
                  else begin
                    children :=
                      Task
                        ( List.rev_append !rev_spine [ c ],
                          List.filter (fun s -> Footprint.independent s fpc) !explored )
                      :: !children;
                    explored := fpc :: !explored
                  end
                done;
                sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !explored
              end
              else sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !sleep;
              off := !off + degree);
          rev_spine := 0 :: !rev_spine
        done;
        `Children (List.rev !children)
  in
  let target_tasks = max 16 (8 * ndomains) in
  let count_tasks items =
    List.fold_left (fun k it -> match it with Task _ -> k + 1 | Done | Viol _ -> k) 0 items
  in
  let count_done items =
    List.fold_left (fun k it -> match it with Done -> k + 1 | Task _ | Viol _ -> k) 0 items
  in
  let rec grow level items =
    let ntasks = count_tasks items in
    let ndone = count_done items in
    if
      ntasks = 0 || level >= 64
      || ndone + ntasks >= max_runs
      || (level >= split_depth && ntasks >= target_tasks)
    then items
    else begin
      (* Expand every task one level, left to right, keeping order — no
         item is ever silently dropped mid-level, so the skeleton (and
         with it the truncation point) is the same whatever the budget. *)
      let rec walk acc = function
        | [] -> (List.rev acc, false)
        | (Viol _ as it) :: _ -> (List.rev (it :: acc), true)
        | (Done as it) :: rest -> walk (it :: acc) rest
        | Task (p, s) :: rest -> (
            match expand_one (p, s) with
            | `Viol (msg, tr) -> (List.rev (Viol (msg, tr) :: acc), true)
            | `Children cs -> walk (List.rev_append (Done :: cs) acc) rest)
      in
      let items', found_viol = walk [] items in
      if found_viol then items' else grow (level + 1) items'
    end
  in
  let items =
    match probe_viol with
    | Some (msg, tr) -> [ Viol (msg, tr) ]
    | None -> grow 0 [ Task ([], []) ]
  in
  (* ---- Phase 2: the pool. ----
     Tasks carry their skeleton context: [done_before.(j)] counts the
     interior-node runs the sequential search performs before reaching
     task [j]'s subtree.  Budget is enforced by a leased lower bound
     instead of a shared counter: each worker publishes its own progress
     (a single-writer atomic slot, refreshed every 256 runs and at the
     end) and stops once
       own visits + done_before + earlier tasks' published progress
     reaches [max_runs] — at that point the sequential search provably
     truncates at or before the worker's current node, whatever the
     still-running earlier tasks turn out to do. *)
  let tasks =
    let acc = ref [] and dones = ref 0 in
    List.iter
      (function
        | Done -> incr dones
        | Task (p, s) -> acc := (p, s, !dones) :: !acc
        | Viol _ -> ())
      items;
    Array.of_list (List.rev !acc)
  in
  let progress = Array.map (fun _ -> Atomic.make 0) tasks in
  let lower_bound j =
    let _, _, done_before = tasks.(j) in
    let lb = ref done_before in
    for j' = 0 to j - 1 do
      lb := !lb + Atomic.get progress.(j')
    done;
    !lb
  in
  let run_task ~index:j ~stop (prefix, sleep, _done_before) =
    let u = ref 0 in
    let lb = ref (lower_bound j) in
    let take_run () =
      if !u + !lb >= max_runs then lb := lower_bound j;
      if !u + !lb >= max_runs then false
      else begin
        incr u;
        if !u land 255 = 0 then begin
          Atomic.set progress.(j) !u;
          lb := lower_bound j
        end;
        true
      end
    in
    let r =
      match tier with
      | `Off | `Sleep -> subtree_ckpt d ~snap_gap ~take_run ~stop (prefix, sleep)
      | `Source ->
          (* Fresh per-task slots and cache, rooted at the task prefix:
             the task set and each task's search are then independent of
             the domain count, so 1/2/4-domain outcomes stay identical. *)
          let cache = cache_for ~n ~statecache:None ~cache_capacity in
          let ctx = { Src.slots = Vec.create (); root = List.length prefix; cache } in
          let r = subtree_ckpt_source d ~snap_gap ~ctx ~take_run ~stop (prefix, sleep) in
          (match cache with
          | Some c ->
              ignore (Atomic.fetch_and_add cache_hits_a (Statecache.hits c));
              ignore (Atomic.fetch_and_add cache_misses_a (Statecache.misses c));
              ignore (Atomic.fetch_and_add cache_evictions_a (Statecache.evictions c))
          | None -> ());
          r
    in
    Atomic.set progress.(j) !u;
    match r with
    | `Done -> { t_runs = !u; t_viol = None; t_cut = false }
    | `Cut -> { t_runs = !u; t_viol = None; t_cut = true }
    | `Viol (msg, tr) -> { t_runs = !u; t_viol = Some (msg, tr); t_cut = false }
  in
  let results =
    Pool.map ?domains ~hit:(fun r -> r.t_cut || r.t_viol <> None) ~tasks run_task
  in
  (* ---- Phase 3: settlement. ----
     Walk the skeleton in DFS preorder, charging each item its exact
     sequential cost, and stop exactly where the sequential search stops:
     at the budget, or at the first violation it can afford.  The pool's
     order-respecting cancellation guarantees every task before the
     decisive one ran to completion, so its [t_runs] is the exact subtree
     size. *)
  let truncated_outcome = { runs = max_runs; exhausted = false; violation = None } in
  let rec settle acc ti = function
    | [] -> { runs = acc; exhausted = true; violation = None }
    | _ :: _ when acc >= max_runs -> truncated_outcome
    | Done :: rest -> settle (acc + 1) ti rest
    | Viol (msg, tr) :: _ -> { runs = acc + 1; exhausted = false; violation = Some (msg, tr) }
    | Task _ :: rest -> (
        match results.(ti) with
        | None ->
            (* Unreachable: a skipped task sits behind a decisive earlier
               one, and the walk stops there. *)
            failwith "Explore.explore_parallel: settlement reached a cancelled task"
        | Some r -> (
            match r.t_viol with
            | Some v ->
                if acc + r.t_runs <= max_runs then
                  { runs = acc + r.t_runs; exhausted = false; violation = Some v }
                else truncated_outcome
            | None ->
                if r.t_cut then truncated_outcome (* cut implies acc + t_runs >= max_runs *)
                else if acc + r.t_runs > max_runs then truncated_outcome
                else settle (acc + r.t_runs) (ti + 1) rest))
  in
  let outcome = settle 0 0 items in
  let outcome =
    match outcome.violation with
    | Some (msg, tr) when shrink_violations ->
        { outcome with violation = Some (msg, shrink ~reproduces:(faithful_reproduces d) tr) }
    | Some _ | None -> outcome
  in
  (match stats with
  | None -> ()
  | Some f ->
      f
        {
          engine_runs = Atomic.get runs_a;
          engine_steps = Atomic.get steps_a;
          cache_hits = Atomic.get cache_hits_a;
          cache_misses = Atomic.get cache_misses_a;
          cache_evictions = Atomic.get cache_evictions_a;
        });
  outcome
