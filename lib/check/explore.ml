open Rme_sim

type outcome = { runs : int; exhausted : bool; violation : (string * int list) option }

let pp_outcome ppf o =
  Fmt.pf ppf "runs=%d exhausted=%b%a" o.runs o.exhausted
    (Fmt.option (fun ppf (msg, tr) ->
         Fmt.pf ppf " VIOLATION %s at %a" msg Fmt.(Dump.list int) tr))
    o.violation

(* Greedy minimisation of a violating decision vector: zero out decisions
   and truncate, keeping every change that still reproduces a violation.
   Zero is the canonical "lowest-pid" choice, so a minimised trace reads as
   "follow the default schedule except at these points". *)
let shrink ~reproduces trace =
  let still_fails t = reproduces t in
  (* Drop trailing zeros (implied by the default path). *)
  let rec rstrip = function 0 :: rest -> rstrip rest | t -> t in
  let canon t = List.rev (rstrip (List.rev t)) in
  let zero_pass t =
    let arr = Array.of_list t in
    let changed = ref false in
    for i = Array.length arr - 1 downto 0 do
      if arr.(i) <> 0 then begin
        let old = arr.(i) in
        arr.(i) <- 0;
        if still_fails (canon (Array.to_list arr)) then changed := true else arr.(i) <- old
      end
    done;
    (canon (Array.to_list arr), !changed)
  in
  let rec fix t =
    let t', changed = zero_pass t in
    if changed then fix t' else t'
  in
  let t = canon trace in
  if still_fails t then fix t else trace

let explore ?(max_runs = 100_000) ?(max_steps = 20_000) ?(shrink_violations = true) ~n ~model
    ~crash ~setup ~body ~check () =
  let runs = ref 0 in
  let violation = ref None in
  let truncated = ref false in
  (* Depth-first over decision vectors.  Each run returns the branching
     degree observed at every decision point; children of a prefix [p] are
     p with its next positions set to 1 .. degree-1 (0 is the default path,
     covered by [p] itself). *)
  let rec go (prefix : int list) =
    if !violation = None then begin
      if !runs >= max_runs then truncated := true
      else begin
        incr runs;
        let decisions = Vec.of_list prefix in
        let record = Vec.create () in
        let sched = Sched.trace ~decisions ~record in
        let res = Engine.run ~max_steps ~n ~model ~sched ~crash:(crash ()) ~setup ~body () in
        (match check res with
        | Some msg -> violation := Some (msg, prefix)
        | None -> ());
        (* Explore siblings at every decision point beyond the prefix. *)
        let depth = List.length prefix in
        let branches = Vec.to_array record in
        let len = Array.length branches in
        let i = ref depth in
        while !violation = None && !i < len do
          let degree = branches.(!i) in
          (* The prefix for position !i follows the default (0) path up to
             it; positions depth..!i-1 chose 0. *)
          if degree > 1 then begin
            let pad = List.init (!i - depth) (fun _ -> 0) in
            for c = 1 to degree - 1 do
              if !violation = None then go (prefix @ pad @ [ c ])
            done
          end;
          incr i
        done
      end
    end
  in
  go [];
  let violation =
    match !violation with
    | Some (msg, trace) when shrink_violations ->
        let reproduces t =
          let decisions = Vec.of_list t in
          let record = Vec.create () in
          let sched = Sched.trace ~decisions ~record in
          let res = Engine.run ~max_steps ~n ~model ~sched ~crash:(crash ()) ~setup ~body () in
          check res <> None
        in
        Some (msg, shrink ~reproduces trace)
    | v -> v
  in
  { runs = !runs; exhausted = not !truncated; violation }
