open Rme_sim

type outcome = { runs : int; exhausted : bool; violation : (string * int list) option }

let pp_outcome ppf o =
  Fmt.pf ppf "runs=%d exhausted=%b%a" o.runs o.exhausted
    (Fmt.option (fun ppf (msg, tr) ->
         Fmt.pf ppf " VIOLATION %s at %a" msg Fmt.(Dump.list int) tr))
    o.violation

(* Greedy minimisation of a violating decision vector: zero out decisions
   and truncate, keeping every change that still reproduces a violation.
   Zero is the canonical "lowest-pid" choice, so a minimised trace reads as
   "follow the default schedule except at these points". *)
let shrink ~reproduces trace =
  let still_fails t = reproduces t in
  (* Drop trailing zeros (implied by the default path). *)
  let rec rstrip = function 0 :: rest -> rstrip rest | t -> t in
  let canon t = List.rev (rstrip (List.rev t)) in
  let zero_pass t =
    let arr = Array.of_list t in
    let changed = ref false in
    for i = Array.length arr - 1 downto 0 do
      if arr.(i) <> 0 then begin
        let old = arr.(i) in
        arr.(i) <- 0;
        if still_fails (canon (Array.to_list arr)) then changed := true else arr.(i) <- old
      end
    done;
    (canon (Array.to_list arr), !changed)
  in
  let rec fix t =
    let t', changed = zero_pass t in
    if changed then fix t' else t'
  in
  let t = canon trace in
  if still_fails t then fix t else trace

(* Everything one run needs, bundled so the sequential explorer, the
   shrinker and the per-domain workers of the parallel explorer replay
   schedules identically. *)
type 'a driver = {
  max_steps : int;
  record : bool;
  n : int;
  model : Memory.model;
  crash : unit -> Crash.t;
  setup : Engine.Ctx.t -> 'a;
  body : 'a -> pid:int -> unit;
  check : Engine.result -> string option;
}

(* Run one schedule.  Returns the engine result, the branching degree
   observed at every decision point, and whether any decision fell outside
   its degree (an unfaithful replay — see Sched.trace). *)
let run_trace d trace =
  let decisions = Vec.of_list trace in
  let record = Vec.create () in
  let mismatch = ref false in
  let sched = Sched.trace ~mismatch ~decisions ~record () in
  let res =
    Engine.run ~record:d.record ~max_steps:d.max_steps ~n:d.n ~model:d.model ~sched
      ~crash:(d.crash ()) ~setup:d.setup ~body:d.body ()
  in
  (res, Vec.to_array record, !mismatch)

(* A shrink candidate counts only if it reproduces the violation *and* its
   decisions all index real branches: a candidate whose degrees shifted
   takes different branches than the trace it would be reported as, so a
   "minimised" witness built from it would be unfaithful. *)
let faithful_reproduces d t =
  let res, _, mismatch = run_trace d t in
  (not mismatch) && d.check res <> None

(* Depth-first exploration of the subtree of decision vectors rooted at
   [prefix0].  Each run returns the branching degree observed at every
   decision point; children of a prefix [p] are p with its next positions
   set to 1 .. degree-1 (0 is the default path, covered by [p] itself).
   Returns the first violation in DFS preorder, or [None].

   [take_run] reserves budget for one run and returns [false] once the
   budget is gone; [stop] is an external cancellation signal (the parallel
   explorer's "an earlier subtree already has the answer").  Both unwind
   the whole subtree immediately — no sibling is visited once the search
   cannot contribute to the result. *)
let subtree d ~take_run ~stop prefix0 =
  let exception Halt in
  let exception Found of string * int list in
  let rec go prefix =
    if stop () then raise Halt;
    if not (take_run ()) then raise Halt;
    let res, branches, _ = run_trace d prefix in
    (match d.check res with Some msg -> raise (Found (msg, prefix)) | None -> ());
    (* Explore siblings at every decision point beyond the prefix. *)
    let depth = List.length prefix in
    for i = depth to Array.length branches - 1 do
      let degree = branches.(i) in
      if degree > 1 then begin
        (* The prefix for position [i] follows the default (0) path up to
           it; positions depth..i-1 chose 0. *)
        let pad = List.init (i - depth) (fun _ -> 0) in
        for c = 1 to degree - 1 do
          go (prefix @ pad @ [ c ])
        done
      end
    done
  in
  match go prefix0 with
  | () -> None
  | exception Halt -> None
  | exception Found (msg, tr) -> Some (msg, tr)

(* [exhausted] means the search covered the whole tree: no truncation and
   no violation (a violation stops the search early by design). *)
let finish d ~shrink_violations ~runs ~truncated violation =
  let violation =
    match violation with
    | Some (msg, trace) when shrink_violations ->
        Some (msg, shrink ~reproduces:(faithful_reproduces d) trace)
    | v -> v
  in
  { runs; exhausted = (violation = None) && not truncated; violation }

let explore ?(max_runs = 100_000) ?(max_steps = 20_000) ?(shrink_violations = true)
    ?(record = false) ~n ~model ~crash ~setup ~body ~check () =
  let d = { max_steps; record; n; model; crash; setup; body; check } in
  let runs = ref 0 in
  let truncated = ref false in
  let take_run () =
    if !runs >= max_runs then begin
      truncated := true;
      false
    end
    else begin
      incr runs;
      true
    end
  in
  let violation = subtree d ~take_run ~stop:(fun () -> false) [] in
  finish d ~shrink_violations ~runs:!runs ~truncated:!truncated violation

(* ------------------------------------------------------------------ *)
(* Parallel exploration                                                *)
(* ------------------------------------------------------------------ *)

(* The frontier is an ordered list of schedule-tree positions: a [Todo]
   subtree still to be explored, or the [Violation] of an already-executed
   frontier run.  The order is DFS preorder of the sequential explorer, so
   "first element with a violation" means the same thing it does there. *)
type item = Todo of int list | Violation of string * int list

let explore_parallel ?(max_runs = 100_000) ?(max_steps = 20_000) ?(shrink_violations = true)
    ?(record = false) ?domains ?(split_depth = 1) ~n ~model ~crash ~setup ~body ~check () =
  let d = { max_steps; record; n; model; crash; setup; body; check } in
  let runs = Atomic.make 0 in
  let truncated = Atomic.make false in
  let take_run () =
    let rec loop () =
      let cur = Atomic.get runs in
      if cur >= max_runs then begin
        Atomic.set truncated true;
        false
      end
      else if Atomic.compare_and_set runs cur (cur + 1) then true
      else loop ()
    in
    loop ()
  in
  (* Execute one frontier prefix and turn it into its children, in the
     order the sequential DFS would visit them. *)
  let expand prefix =
    if not (take_run ()) then `Truncated
    else begin
      let res, branches, _ = run_trace d prefix in
      match d.check res with
      | Some msg -> `Violation (msg, prefix)
      | None ->
          let depth = List.length prefix in
          let children = ref [] in
          for i = Array.length branches - 1 downto depth do
            let degree = branches.(i) in
            if degree > 1 then begin
              let pad = List.init (i - depth) (fun _ -> 0) in
              for c = degree - 1 downto 1 do
                children := (prefix @ pad @ [ c ]) :: !children
              done
            end
          done;
          `Children !children
    end
  in
  (* Split the tree at [split_depth] frontier levels.  A violation found
     while expanding ends the expansion: items after it in DFS order are
     irrelevant (dropped), items before it keep their subtrees and are
     still searched — one of them may hold an earlier violation. *)
  let rec expand_levels level items =
    if level >= split_depth then items
    else begin
      let rec walk acc = function
        | [] -> (List.rev acc, false)
        | (Violation _ as it) :: _ -> (List.rev (it :: acc), true)
        | Todo p :: rest -> (
            match expand p with
            | `Truncated -> (List.rev acc, true)
            | `Violation (msg, tr) -> (List.rev (Violation (msg, tr) :: acc), true)
            | `Children cs ->
                walk (List.rev_append (List.map (fun c -> Todo c) cs) acc) rest)
      in
      let items', stop_expanding = walk [] items in
      if stop_expanding then items' else expand_levels (level + 1) items'
    end
  in
  let items = expand_levels 0 [ Todo [] ] in
  let rec split acc = function
    | [] -> (List.rev acc, None)
    | Violation (msg, tr) :: _ -> (List.rev acc, Some (msg, tr))
    | Todo p :: rest -> split (p :: acc) rest
  in
  let todos, frontier_violation = split [] items in
  let results =
    Pool.map ?domains
      ~hit:(fun v -> v <> None)
      ~tasks:(Array.of_list todos)
      (fun ~index:_ ~stop prefix -> subtree d ~take_run ~stop prefix)
  in
  (* Deterministic merge: the lowest-indexed subtree violation — the pool
     guarantees every earlier subtree ran to completion — and only then
     the frontier's own violation (every task precedes it in DFS order). *)
  let rec first i =
    if i >= Array.length results then None
    else match results.(i) with Some (Some v) -> Some v | Some None | None -> first (i + 1)
  in
  let violation = match first 0 with Some v -> Some v | None -> frontier_violation in
  finish d ~shrink_violations ~runs:(Atomic.get runs) ~truncated:(Atomic.get truncated)
    violation
