open Rme_sim

type outcome = { runs : int; exhausted : bool; violation : (string * int list) option }

let pp_outcome ppf o =
  Fmt.pf ppf "runs=%d exhausted=%b%a" o.runs o.exhausted
    (Fmt.option (fun ppf (msg, tr) ->
         Fmt.pf ppf " VIOLATION %s at %a" msg Fmt.(Dump.list int) tr))
    o.violation

(* Greedy minimisation of a violating decision vector: zero out decisions
   and truncate, keeping every change that still reproduces a violation.
   Zero is the canonical "lowest-pid" choice, so a minimised trace reads as
   "follow the default schedule except at these points". *)
let shrink ~reproduces trace =
  let still_fails t = reproduces t in
  (* Drop trailing zeros (implied by the default path). *)
  let rec rstrip = function 0 :: rest -> rstrip rest | t -> t in
  let canon t = List.rev (rstrip (List.rev t)) in
  let zero_pass t =
    let arr = Array.of_list t in
    let changed = ref false in
    for i = Array.length arr - 1 downto 0 do
      if arr.(i) <> 0 then begin
        let old = arr.(i) in
        arr.(i) <- 0;
        if still_fails (canon (Array.to_list arr)) then changed := true else arr.(i) <- old
      end
    done;
    (canon (Array.to_list arr), !changed)
  in
  let rec fix t =
    let t', changed = zero_pass t in
    if changed then fix t' else t'
  in
  let t = canon trace in
  if still_fails t then fix t else trace

(* Everything one run needs, bundled so the sequential explorer, the
   shrinker and the per-domain workers of the parallel explorer replay
   schedules identically.  [por] enables footprint collection for the
   sleep-set reduction; [crashy] marks the crash plan's possible victims
   (see Crash.por_class). *)
type 'a driver = {
  max_steps : int;
  record : bool;
  n : int;
  model : Memory.model;
  crash : unit -> Crash.t;
  setup : Engine.Ctx.t -> 'a;
  body : 'a -> pid:int -> unit;
  check : Engine.result -> string option;
  por : bool;
  crashy : int -> bool;
}

(* Decide whether the sleep-set reduction can run.  It needs (a) a
   schedule-robust crash plan — otherwise commuting two independent steps
   can move where a crash fires — and (b) no event recording: [check]s that
   read [result.events] can observe the order of independent steps, which
   the reduction deliberately does not preserve.  Aggregate statistics
   (counts, maxima, per-passage RMRs) are permutation-stable by the
   footprint oracle's construction. *)
let por_setup ~por ~record ~crash =
  if not por then (false, fun _ -> false)
  else
    match Crash.por_class (crash ()) with
    | Crash.Robust victims when not record -> (true, fun pid -> List.mem pid victims)
    | Crash.Robust _ | Crash.Sensitive -> (false, fun _ -> false)

(* Run one schedule.  Returns the engine result, the branching degree
   observed at every decision point, the per-choice footprints (flat, in
   decision order — [None] unless the driver runs with POR), and whether
   any decision fell outside its degree (an unfaithful replay — see
   Sched.trace). *)
let run_trace d trace =
  let decisions = Vec.of_list trace in
  let record = Vec.create () in
  let mismatch = ref false in
  let sched = Sched.trace ~mismatch ~decisions ~record () in
  let footprints = if d.por then Some (Vec.create ()) else None in
  let res =
    Engine.run ?footprints ~footprint_crashy:d.crashy ~record:d.record ~max_steps:d.max_steps
      ~n:d.n ~model:d.model ~sched ~crash:(d.crash ()) ~setup:d.setup ~body:d.body ()
  in
  (res, Vec.to_array record, footprints, !mismatch)

(* A shrink candidate counts only if it reproduces the violation *and* its
   decisions all index real branches: a candidate whose degrees shifted
   takes different branches than the trace it would be reported as, so a
   "minimised" witness built from it would be unfaithful.  Shrinking only
   replays single vectors, so footprint collection is switched off. *)
let faithful_reproduces d t =
  let res, _, _, mismatch = run_trace { d with por = false } t in
  (not mismatch) && d.check res <> None

(* Depth-first exploration of the subtree of decision vectors rooted at
   [prefix0].  Each run returns the branching degree observed at every
   decision point; children of a prefix [p] are p with its next positions
   set to 1 .. degree-1 (0 is the default path, covered by [p] itself).
   Returns the first violation in DFS preorder, or [None].

   Sleep-set reduction: the search walks the run's decision points as a
   chain of nodes along the choice-0 spine.  [sleep0] holds the footprints
   of processes put to sleep by the ancestors; a sibling whose pid is
   asleep is skipped wholesale, because every run below it only reorders
   commuting steps of a run explored since the pid went to sleep.  In this
   explorer's DFS order siblings at a position are fully explored *before*
   the spine continues, so each explored sibling joins the sleep set of the
   later siblings and of the spine continuation — filtered at every hand-
   off by independence with the step actually taken (a dependent step
   invalidates the coverage argument and wakes the sleeper).  A sleeping
   pid's pending step cannot change while it sleeps (only its own step
   could change it), so the stored footprint stays accurate.

   [take_run] reserves budget for one run and returns [false] once the
   budget is gone; [stop] is an external cancellation signal (the parallel
   explorer's "an earlier subtree already has the answer").  Both unwind
   the whole subtree immediately — no sibling is visited once the search
   cannot contribute to the result. *)
let subtree d ~take_run ~stop (prefix0, sleep0) =
  let exception Halt in
  let exception Found of string * int list in
  let rec go prefix sleep0 =
    if stop () then raise Halt;
    if not (take_run ()) then raise Halt;
    let res, branches, fps, _ = run_trace d prefix in
    (match d.check res with Some msg -> raise (Found (msg, prefix)) | None -> ());
    (* The coverage argument permutes complete runs; a timed-out run was
       cut mid-schedule, so for this node fall back to the unpruned
       expansion (children restart with empty sleep sets and judge their
       own runs). *)
    let fps = if res.Engine.timed_out then None else fps in
    let depth = List.length prefix in
    (* Offset of position [depth]'s choices in the flat footprint buffer. *)
    let off = ref 0 in
    (match fps with
    | None -> ()
    | Some _ ->
        for i = 0 to depth - 1 do
          off := !off + branches.(i)
        done);
    (* Sibling prefixes at position [i] share the padded spine
       [prefix @ 0^(i-depth)], kept reversed and extended in place instead
       of being rebuilt per child ([prefix @ pad @ [c]] was quadratic in
       depth). *)
    let rev_spine = ref (List.rev prefix) in
    let sleep = ref (match fps with None -> [] | Some _ -> sleep0) in
    for i = depth to Array.length branches - 1 do
      let degree = branches.(i) in
      (match fps with
      | None ->
          for c = 1 to degree - 1 do
            go (List.rev_append !rev_spine [ c ]) []
          done
      | Some fv ->
          let fp_at c = Vec.get fv (!off + c) in
          if degree > 1 then begin
            (* Sleep candidates for each next sibling and for the spine:
               inherited sleepers plus the siblings explored before it. *)
            let explored = ref !sleep in
            for c = 1 to degree - 1 do
              let fpc = fp_at c in
              let pidc = Footprint.pid fpc in
              if List.exists (fun s -> Footprint.pid s = pidc) !sleep then ()
              else begin
                go
                  (List.rev_append !rev_spine [ c ])
                  (List.filter (fun s -> Footprint.independent s fpc) !explored);
                explored := fpc :: !explored
              end
            done;
            sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !explored
          end
          else sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !sleep;
          off := !off + degree);
      rev_spine := 0 :: !rev_spine
    done
  in
  match go prefix0 sleep0 with
  | () -> None
  | exception Halt -> None
  | exception Found (msg, tr) -> Some (msg, tr)

(* [exhausted] means the search covered the whole tree (up to runs the
   sleep-set reduction proved equivalent to explored ones): no truncation
   and no violation (a violation stops the search early by design). *)
let finish d ~shrink_violations ~runs ~truncated violation =
  let violation =
    match violation with
    | Some (msg, trace) when shrink_violations ->
        Some (msg, shrink ~reproduces:(faithful_reproduces d) trace)
    | v -> v
  in
  { runs; exhausted = (violation = None) && not truncated; violation }

let explore ?(max_runs = 100_000) ?(max_steps = 20_000) ?(shrink_violations = true)
    ?(record = false) ?(por = true) ~n ~model ~crash ~setup ~body ~check () =
  let por, crashy = por_setup ~por ~record ~crash in
  let d = { max_steps; record; n; model; crash; setup; body; check; por; crashy } in
  let runs = ref 0 in
  let truncated = ref false in
  let take_run () =
    if !runs >= max_runs then begin
      truncated := true;
      false
    end
    else begin
      incr runs;
      true
    end
  in
  let violation = subtree d ~take_run ~stop:(fun () -> false) ([], []) in
  finish d ~shrink_violations ~runs:!runs ~truncated:!truncated violation

(* ------------------------------------------------------------------ *)
(* Parallel exploration                                                *)
(* ------------------------------------------------------------------ *)

(* The skeleton is the DFS preorder of the schedule tree, cut at the split
   frontier: a [Done] marker for each interior node the (sequential)
   expansion phase already ran, a [Task] for each unexpanded subtree (with
   the sleep set it inherits), or the [Viol]ation of an expanded node —
   always the last item, since expansion stops there.  Keeping the [Done]
   markers in position is what lets the settlement walk reconstruct the
   exact sequential run count. *)
type item = Done | Task of int list * Footprint.t list | Viol of string * int list

(* Checkpointed DFS of the subtree rooted at [prefix0]: visits the same
   nodes in the same preorder as [subtree], but every node's run resumes
   from the deepest engine checkpoint on the current path — captured every
   [snap_gap] decision positions during the parent runs — instead of
   replaying its whole decision-vector prefix from the root.  On the
   explore bench this turns a run whose schedule shares a depth-[k] prefix
   with its parent from O(full run) into O(fast-forward k + suffix).

   [take_run] is consulted once per node, before its run, and returns
   [false] to abandon the subtree (budget provably exhausted); [stop] is
   the pool's cancellation signal.  Returns [`Done] (subtree exhausted),
   [`Cut] (abandoned), or the first violation in preorder. *)
let subtree_ckpt d ~snap_gap ~take_run ~stop (prefix0, sleep0) =
  let exception Halt in
  let exception Found of string * int list in
  let rec go (base : Engine.Snap.t option) (decisions : int array) sleep0 =
    if stop () then raise Halt;
    if not (take_run ()) then raise Halt;
    let snaps = Vec.create () in
    let rr =
      Engine.run_resumable ?from:base ~snap_gap ~snap:(Vec.push snaps) ~record:d.record
        ~max_steps:d.max_steps ~por:d.por ~footprint_crashy:d.crashy ~decisions ~n:d.n
        ~model:d.model ~crash:d.crash ~setup:d.setup ~body:d.body ()
    in
    let res = rr.Engine.rr_result in
    (match d.check res with
    | Some msg -> raise (Found (msg, Array.to_list decisions))
    | None -> ());
    let branches = rr.Engine.rr_degrees in
    (* Same timed-out fallback as [subtree]: the coverage argument permutes
       complete runs only. *)
    let fps = if (not d.por) || res.Engine.timed_out then None else Some rr.Engine.rr_footprints in
    let depth = Array.length decisions in
    let off = ref 0 in
    (match fps with
    | None -> ()
    | Some _ ->
        for i = 0 to depth - 1 do
          off := !off + branches.(i)
        done);
    (* Deepest checkpoint at position <= i; the first eligible position
       (= [depth]) is always captured, so children never fall back past
       this node's own run. *)
    let si = ref 0 in
    let base_for i =
      while !si < Vec.length snaps && Engine.Snap.pos (Vec.get snaps !si) <= i do
        incr si
      done;
      if !si = 0 then base else Some (Vec.get snaps (!si - 1))
    in
    let child i c =
      let v = Array.make (i + 1) 0 in
      Array.blit decisions 0 v 0 depth;
      v.(i) <- c;
      v
    in
    let sleep = ref (match fps with None -> [] | Some _ -> sleep0) in
    for i = depth to Array.length branches - 1 do
      let degree = branches.(i) in
      (match fps with
      | None ->
          for c = 1 to degree - 1 do
            go (base_for i) (child i c) []
          done
      | Some fv ->
          let fp_at c = fv.(!off + c) in
          if degree > 1 then begin
            let explored = ref !sleep in
            for c = 1 to degree - 1 do
              let fpc = fp_at c in
              let pidc = Footprint.pid fpc in
              if List.exists (fun s -> Footprint.pid s = pidc) !sleep then ()
              else begin
                go (base_for i) (child i c)
                  (List.filter (fun s -> Footprint.independent s fpc) !explored);
                explored := fpc :: !explored
              end
            done;
            sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !explored
          end
          else sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !sleep;
          off := !off + degree)
    done
  in
  match go None (Array.of_list prefix0) sleep0 with
  | () -> `Done
  | exception Halt -> `Cut
  | exception Found (msg, tr) -> `Viol (msg, tr)

(* What a pool task reports back: how many nodes it visited (one per
   [take_run], exactly the sequential DFS's count for the same nodes), the
   first violation in its preorder if any, and whether it stopped early. *)
type task_result = { t_runs : int; t_viol : (string * int list) option; t_cut : bool }

let explore_parallel ?(max_runs = 100_000) ?(max_steps = 20_000) ?(shrink_violations = true)
    ?(record = false) ?(por = true) ?domains ?(split_depth = 1) ?(snap_gap = 4) ~n ~model ~crash
    ~setup ~body ~check () =
  let por, crashy = por_setup ~por ~record ~crash in
  let d = { max_steps; record; n; model; crash; setup; body; check; por; crashy } in
  let ndomains =
    match domains with Some x when x >= 1 -> x | Some _ -> 1 | None -> Pool.default_domains ()
  in
  (* ---- Phase 1: adaptive frontier expansion (sequential). ----
     Runs interior nodes and replaces each by [Done :: its children] until
     there are enough tasks to keep every domain fed through imbalance
     (~8x domains), the tree is exhausted, a violation surfaces (the
     search ends at it — later items are dropped), or further splitting
     cannot matter because the budget would already be spent.
     [split_depth] forces a minimum number of levels (compatibility with
     callers tuned against the fixed-depth splitter). *)
  let expand_one (prefix, sleep0) =
    let res, branches, fps, _ = run_trace d prefix in
    match d.check res with
    | Some msg -> `Viol (msg, prefix)
    | None ->
        let fps = if res.Engine.timed_out then None else fps in
        let depth = List.length prefix in
        let off = ref 0 in
        (match fps with
        | None -> ()
        | Some _ ->
            for i = 0 to depth - 1 do
              off := !off + branches.(i)
            done);
        let rev_spine = ref (List.rev prefix) in
        let sleep = ref (match fps with None -> [] | Some _ -> sleep0) in
        let children = ref [] in
        for i = depth to Array.length branches - 1 do
          let degree = branches.(i) in
          (match fps with
          | None ->
              for c = 1 to degree - 1 do
                children := Task (List.rev_append !rev_spine [ c ], []) :: !children
              done
          | Some fv ->
              let fp_at c = Vec.get fv (!off + c) in
              if degree > 1 then begin
                let explored = ref !sleep in
                for c = 1 to degree - 1 do
                  let fpc = fp_at c in
                  let pidc = Footprint.pid fpc in
                  if List.exists (fun s -> Footprint.pid s = pidc) !sleep then ()
                  else begin
                    children :=
                      Task
                        ( List.rev_append !rev_spine [ c ],
                          List.filter (fun s -> Footprint.independent s fpc) !explored )
                      :: !children;
                    explored := fpc :: !explored
                  end
                done;
                sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !explored
              end
              else sleep := List.filter (fun s -> Footprint.independent s (fp_at 0)) !sleep;
              off := !off + degree);
          rev_spine := 0 :: !rev_spine
        done;
        `Children (List.rev !children)
  in
  let target_tasks = max 16 (8 * ndomains) in
  let count_tasks items =
    List.fold_left (fun k it -> match it with Task _ -> k + 1 | Done | Viol _ -> k) 0 items
  in
  let count_done items =
    List.fold_left (fun k it -> match it with Done -> k + 1 | Task _ | Viol _ -> k) 0 items
  in
  let rec grow level items =
    let ntasks = count_tasks items in
    let ndone = count_done items in
    if
      ntasks = 0 || level >= 64
      || ndone + ntasks >= max_runs
      || (level >= split_depth && ntasks >= target_tasks)
    then items
    else begin
      (* Expand every task one level, left to right, keeping order — no
         item is ever silently dropped mid-level, so the skeleton (and
         with it the truncation point) is the same whatever the budget. *)
      let rec walk acc = function
        | [] -> (List.rev acc, false)
        | (Viol _ as it) :: _ -> (List.rev (it :: acc), true)
        | (Done as it) :: rest -> walk (it :: acc) rest
        | Task (p, s) :: rest -> (
            match expand_one (p, s) with
            | `Viol (msg, tr) -> (List.rev (Viol (msg, tr) :: acc), true)
            | `Children cs -> walk (List.rev_append (Done :: cs) acc) rest)
      in
      let items', found_viol = walk [] items in
      if found_viol then items' else grow (level + 1) items'
    end
  in
  let items = grow 0 [ Task ([], []) ] in
  (* ---- Phase 2: the pool. ----
     Tasks carry their skeleton context: [done_before.(j)] counts the
     interior-node runs the sequential search performs before reaching
     task [j]'s subtree.  Budget is enforced by a leased lower bound
     instead of a shared counter: each worker publishes its own progress
     (a single-writer atomic slot, refreshed every 256 runs and at the
     end) and stops once
       own visits + done_before + earlier tasks' published progress
     reaches [max_runs] — at that point the sequential search provably
     truncates at or before the worker's current node, whatever the
     still-running earlier tasks turn out to do. *)
  let tasks =
    let acc = ref [] and dones = ref 0 in
    List.iter
      (function
        | Done -> incr dones
        | Task (p, s) -> acc := (p, s, !dones) :: !acc
        | Viol _ -> ())
      items;
    Array.of_list (List.rev !acc)
  in
  let progress = Array.map (fun _ -> Atomic.make 0) tasks in
  let lower_bound j =
    let _, _, done_before = tasks.(j) in
    let lb = ref done_before in
    for j' = 0 to j - 1 do
      lb := !lb + Atomic.get progress.(j')
    done;
    !lb
  in
  let run_task ~index:j ~stop (prefix, sleep, _done_before) =
    let u = ref 0 in
    let lb = ref (lower_bound j) in
    let take_run () =
      if !u + !lb >= max_runs then lb := lower_bound j;
      if !u + !lb >= max_runs then false
      else begin
        incr u;
        if !u land 255 = 0 then begin
          Atomic.set progress.(j) !u;
          lb := lower_bound j
        end;
        true
      end
    in
    let r = subtree_ckpt d ~snap_gap ~take_run ~stop (prefix, sleep) in
    Atomic.set progress.(j) !u;
    match r with
    | `Done -> { t_runs = !u; t_viol = None; t_cut = false }
    | `Cut -> { t_runs = !u; t_viol = None; t_cut = true }
    | `Viol (msg, tr) -> { t_runs = !u; t_viol = Some (msg, tr); t_cut = false }
  in
  let results =
    Pool.map ?domains ~hit:(fun r -> r.t_cut || r.t_viol <> None) ~tasks run_task
  in
  (* ---- Phase 3: settlement. ----
     Walk the skeleton in DFS preorder, charging each item its exact
     sequential cost, and stop exactly where the sequential search stops:
     at the budget, or at the first violation it can afford.  The pool's
     order-respecting cancellation guarantees every task before the
     decisive one ran to completion, so its [t_runs] is the exact subtree
     size. *)
  let truncated_outcome = { runs = max_runs; exhausted = false; violation = None } in
  let rec settle acc ti = function
    | [] -> { runs = acc; exhausted = true; violation = None }
    | _ :: _ when acc >= max_runs -> truncated_outcome
    | Done :: rest -> settle (acc + 1) ti rest
    | Viol (msg, tr) :: _ -> { runs = acc + 1; exhausted = false; violation = Some (msg, tr) }
    | Task _ :: rest -> (
        match results.(ti) with
        | None ->
            (* Unreachable: a skipped task sits behind a decisive earlier
               one, and the walk stops there. *)
            failwith "Explore.explore_parallel: settlement reached a cancelled task"
        | Some r -> (
            match r.t_viol with
            | Some v ->
                if acc + r.t_runs <= max_runs then
                  { runs = acc + r.t_runs; exhausted = false; violation = Some v }
                else truncated_outcome
            | None ->
                if r.t_cut then truncated_outcome (* cut implies acc + t_runs >= max_runs *)
                else if acc + r.t_runs > max_runs then truncated_outcome
                else settle (acc + r.t_runs) (ti + 1) rest))
  in
  let outcome = settle 0 0 items in
  match outcome.violation with
  | Some (msg, tr) when shrink_violations ->
      { outcome with violation = Some (msg, shrink ~reproduces:(faithful_reproduces d) tr) }
  | Some _ | None -> outcome
