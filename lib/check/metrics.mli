(** Measurement plumbing for the benchmark harnesses.

    {!Hist} is a log-linear histogram (HdrHistogram-style): O(1) allocation-
    free recording into a fixed int array, quantiles with under 1% relative
    error.  The service harness records one latency and one RMR count per
    passage over millions of passages; raw-sample storage would swamp both
    the heap and the final sort, and per-sample allocation would skew the
    Gc statistics the harness itself reports. *)

module Hist : sig
  type t

  val create : unit -> t
  (** An empty histogram.  Fixed footprint (a few thousand buckets): values
      below 256 get exact unit buckets, larger values share one bucket per
      1/128th of a power of two. *)

  val add : t -> int -> unit
  (** Record one sample.  Negative values clamp to 0.  O(1), allocates
      nothing. *)

  val count : t -> int

  val sum : t -> int

  val min : t -> int
  (** Exact smallest recorded sample; 0 when empty. *)

  val max : t -> int
  (** Exact largest recorded sample; 0 when empty. *)

  val mean : t -> float
  (** Exact mean (the sum is tracked outside the buckets); 0 when empty. *)

  val percentile : t -> float -> int
  (** [percentile t q] with [q] ∈ [0, 1]: an upper bound on the sample at
      rank ⌈q·count⌉, tight to the containing bucket (≤ 1% relative error)
      and clamped by the exact maximum.  0 when empty. *)

  val merge_into : into:t -> t -> unit
  (** Fold [t]'s samples into [into] — how the per-shard histograms the
      service harness records on separate domains combine. *)

  val clear : t -> unit

  val nonzero : t -> (int * int * int) list
  (** Occupied buckets in ascending order as [(lo, hi, count)] inclusive
      value ranges — the compact histogram export in BENCH_service.json. *)
end

val host_json : unit -> string
(** One-line JSON object describing the host — recommended domain count,
    OCaml version, word size — embedded in every BENCH_*.json so results
    carry their provenance. *)

val statsd_count : Buffer.t -> string -> int -> unit
(** [statsd_count b name v] appends [name:v|c\n]. *)

val statsd_gauge : Buffer.t -> string -> float -> unit
(** [statsd_gauge b name v] appends [name:v|g\n]. *)

val statsd_timing : Buffer.t -> string -> int -> unit
(** [statsd_timing b name v] appends [name:v|ms\n]. *)
