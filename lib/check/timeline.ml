open Rme_sim

(* Per-process segment as a char; later events within the same bucket
   override earlier ones except that a crash mark is sticky per bucket. *)
let seg_char = function
  | `Ncs -> '.'
  | `Enter -> 'r'
  | `Cs -> 'C'
  | `Exit -> '#'
  | `Crash -> 'x'
  | `Off -> ' '

let render ?(width = 100) (res : Engine.result) =
  let events = res.Engine.events in
  let n = Array.length res.Engine.procs in
  let last_step = List.fold_left (fun acc ev -> max acc (Event.step ev)) 1 events in
  let bucket step = min (width - 1) (step * width / (last_step + 1)) in
  let lanes = Array.init n (fun _ -> Bytes.make width ' ') in
  let state = Array.make n `Off in
  let crashed_bucket = Array.make n (-1) in
  let paint pid ~from_bucket ~upto st =
    for b = max 0 from_bucket to min (width - 1) upto do
      if b <> crashed_bucket.(pid) then Bytes.set lanes.(pid) b (seg_char st)
    done
  in
  let cursor = Array.make n 0 in
  let transition pid step st =
    let b = bucket step in
    paint pid ~from_bucket:cursor.(pid) ~upto:b state.(pid);
    state.(pid) <- st;
    cursor.(pid) <- b
  in
  List.iter
    (fun ev ->
      match ev with
      | Event.Note { pid; step; note = Event.Seg seg; _ } -> (
          match seg with
          | Event.Ncs_begin -> transition pid step `Ncs
          | Event.Req_begin -> transition pid step `Enter
          | Event.Cs_begin -> transition pid step `Cs
          | Event.Cs_end -> transition pid step `Exit
          | Event.Req_done -> transition pid step `Ncs)
      | Event.Crash { pid; step; _ } ->
          transition pid step `Enter;
          let b = bucket step in
          Bytes.set lanes.(pid) b 'x';
          crashed_bucket.(pid) <- b
      (* a system crash is followed by per-process Crash events, which
         paint the 'x' marks — nothing lane-shaped to draw for it *)
      | Event.Sys_crash _ | Event.Note _ | Event.Op _ -> ())
    events;
  (* Final fill to the right edge. *)
  for pid = 0 to n - 1 do
    paint pid ~from_bucket:cursor.(pid) ~upto:(width - 1) state.(pid)
  done;
  let buf = Buffer.create (n * (width + 8)) in
  for pid = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "p%-3d %s\n" pid (Bytes.to_string lanes.(pid)))
  done;
  Buffer.contents buf

let pp ?width ppf res = Format.pp_print_string ppf (render ?width res)
