(** Offline property checkers over recorded histories.

    Each checker consumes an {!Rme_sim.Engine.result} (run with
    [~record:true], and [~trace_ops:true] where step counting is needed) and
    returns [None] when the property holds or [Some message] describing the
    first violation.  The properties are the ones §2.4 and §3 of the paper
    define: ME, starvation freedom, weak-ME with consequence intervals,
    responsiveness (Theorem 4.2), bounded exit / recovery / CS reentry, and
    FCFS. *)

open Rme_sim

val mutual_exclusion : Engine.result -> string option
(** At most one process in the application CS at any time. *)

val lock_mutual_exclusion : Engine.result -> lock_id:int -> string option
(** At most one holder of the given lock at any time. *)

val starvation_freedom : Engine.result -> requests:int -> string option
(** Every process satisfied [requests] requests and the run neither
    deadlocked nor timed out.  When the run ended abnormally, the message
    is the engine watchdog's diagnosis ({!Engine.stall}): deadlock /
    livelock / starvation / underbudget, with the culprit pids and the
    segment each is stuck in — never a bare "timed out". *)

val responsiveness : Engine.result -> lock_id:int -> string option
(** Theorem 4.2 (coarse form): the lock's maximum simultaneous occupancy k+1
    never exceeds 1 + the total number of unsafe failures w.r.t. it. *)

val weak_me_intervals : Engine.result -> lock_id:int -> string option
(** Definition 3.2 / Theorem 4.2 (interval form): whenever the lock's
    occupancy rises to k+1, at least k unsafe failures w.r.t. it have
    consequence intervals overlapping that moment.  A failure's consequence
    interval extends until every request outstanding at the failure has been
    satisfied (Definition 3.1; requests here are super-passages of the
    target lock's users). *)

val bounded_exit : Engine.result -> lock_id:int -> bound:int -> string option
(** Every Exit segment of the lock takes at most [bound] instructions of the
    exiting process (requires [trace_ops]). *)

val bounded_recovery : Engine.result -> lock_id:int -> bound:int -> string option
(** After a crash, the steps from the process's next passage start to the
    start of the lock's Enter segment are at most [bound] (requires
    [trace_ops]). *)

val bcsr : Engine.result -> lock_id:int -> bound:int -> string option
(** Bounded CS reentry: when a process crashes while holding the lock, its
    next acquisition takes at most [bound] of its own instructions from
    passage start to [Lock_acquired] (requires [trace_ops]). *)

val fcfs : Engine.result -> tail_cell:string -> string option
(** In a crash-free history, CS order equals the queue-append (FAS on
    [tail_cell]) order (requires [trace_ops]).  Only meaningful for the
    MCS-family locks driven as the application lock. *)

(** {1 Adaptivity-contract monitors} *)

val super_adaptivity : Engine.result -> string option
(** Theorem 5.17: reaching BA-Lock level x is possible only after at least
    x(x−1)/2 failures — each promotion from level l to l+1 needs l unsafe
    failures' worth of filter overlap below it.  The monitor checks
    [max_level] x against [total_crashes] ≥ x(x−1)/2 (crashes upper-bound
    unsafe failures, so a history passing the crash form can only be more
    compliant in the failure form).  Vacuous for locks that never emit
    [Level] notes. *)

val failure_free_rmr : Engine.result -> bound:int -> string option
(** The paper's Table 1 contract that failure-free passages cost O(1) RMR:
    in a history with no crashes at all, every passage's RMR count must be
    ≤ [bound].  Vacuous (always [None]) when the history contains crashes,
    since crashed and post-crash passages may legitimately pay the adaptive
    slow path. *)

val system_recovery : Engine.result -> string option
(** No process skips recovery after a crash: once struck — individually or
    by a system-wide crash (every {!Rme_sim.Event.Sys_crash} is followed by
    one per-pid crash event per victim) — a process must emit a fresh
    [Req_begin] before its next [Cs_begin].  A violation means a
    continuation survived the erasure or a recovery path jumped straight
    back into the CS.  Vacuous without recorded history. *)

(** {1 Abort monitors} *)

val abort_liveness : Engine.result -> bound:int -> supported:bool -> string option
(** Every abort signal resolves — [Abort_done], [Abort_lost_race],
    acquisition, or a crash — within [bound] of the {e victim's own} steps
    (the engine's [ab_own_steps] accounting).  A signal still pending at
    the end of the run is judged by the same yardstick: over budget is a
    violation, under budget is inconclusive.  Vacuous when
    [supported = false] (the lock has no abort path, so waiting the
    acquisition out is the only — legitimately unbounded — resolution). *)

val no_lost_wakeup : Engine.result -> bound:int -> string option
(** No hand-off is ever dropped.  Flags either (a) a waiter whose
    unresolved [Lock_enter] is overtaken by [bound] complete passages
    (acquired → released) of the same lock by other processes — correct
    hand-off locks admit a registered waiter within O(n) passages — or
    (b) a run that stalls with some process parked in an entry section
    while, per the event history, no process holds any lock. *)

val abort_rmr : Engine.result -> bound:int -> string option
(** The abort protocol is cheap: RMRs charged to the victim between the
    signal and an [Aborted]/[Acquired_instead] resolution are ≤ [bound].
    Resolutions by acquisition or crash are exempt (not protocol work). *)

val all_satisfied : Engine.result -> n:int -> requests:int -> bool
(** Convenience: completed = n × requests, no deadlock, no timeout. *)

(** What to hold an abortable run to; see {!check_battery}. *)
type abort_expect = {
  liveness_bound : int;  (** {!abort_liveness} bound, victim's own steps *)
  rmr_bound : int;  (** {!abort_rmr} bound *)
  overtake_bound : int;  (** {!no_lost_wakeup} passage bound *)
  supported : bool;  (** the lock has a real abort path *)
}

val default_abort_expect : abort_expect
(** Generous defaults for the registry's abortable locks:
    [liveness_bound = 400], [rmr_bound = 60], [overtake_bound = 24],
    [supported = true]. *)

val check_battery :
  ?abort:abort_expect -> Engine.result -> requests:int -> weak_lock_ids:int list -> string list
(** The standard battery: mutual exclusion (or, for weakly recoverable
    application locks, the interval form over [weak_lock_ids]) plus
    starvation freedom, the super-adaptivity monitor and the
    {!system_recovery} monitor.  With [?abort], additionally
    {!abort_liveness}, {!no_lost_wakeup} and {!abort_rmr} with the given
    expectations.  Returns the violations found ([[]] = clean). *)
