(* Bounded cache of fully-explored decision-tree nodes for the explorer's
   `Source tier.

   An entry records that the subtree below an engine state — identified by
   its {!Engine.run} state key — was completely explored, together with the
   pid sleep mask in force at that exploration and a caller-supplied summary
   (the explorer stores the distinct step footprints the subtree executed).
   A later visit to the same state may prune its whole subtree provided the
   stored sleep mask is a subset of the current one (Godefroid's revisit
   rule: the stored exploration slept {e less}, so it covered every schedule
   the current context needs) — the summary then feeds the conservative race
   demands the pruned subtree would have raised against the current prefix.

   The table is direct-mapped with an explicit capacity: one entry per slot,
   a colliding add overwrites (counted as an eviction).  Eviction and
   bucketing-hash collisions only lose deduplication — a miss re-explores —
   never soundness: a hit requires full key equality, compared element-wise
   against the stored key.  The key itself contains digests (the store
   fingerprint, per-process stream hashes), so equality is exact up to those
   digests' collision probability; see SIMULATOR.md for the caveat. *)

type 'a entry = { key : int array; slept : int; summary : 'a }

type 'a t = {
  slots : 'a entry option array;
  hash : int array -> int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_hash key = Array.fold_left (fun h x -> (h lxor x) * 0x100000001b3 land max_int) 17 key

let create ?(hash = default_hash) ~capacity () =
  if capacity < 0 then invalid_arg "Statecache.create: negative capacity";
  { slots = Array.make (max capacity 1) None; hash; hits = 0; misses = 0; evictions = 0 }

let capacity t = Array.length t.slots

let slot t key = abs (t.hash key mod Array.length t.slots)

let find t ~key ~slept =
  match t.slots.(slot t key) with
  | Some e when e.key = key && e.slept land lnot slept = 0 ->
      t.hits <- t.hits + 1;
      Some e.summary
  | Some _ | None ->
      t.misses <- t.misses + 1;
      None

let add t ~key ~slept ~summary =
  let i = slot t key in
  (match t.slots.(i) with
  | Some e when e.key <> key -> t.evictions <- t.evictions + 1
  | Some _ | None -> ());
  t.slots.(i) <- Some { key; slept; summary }

let hits t = t.hits

let misses t = t.misses

let evictions t = t.evictions
