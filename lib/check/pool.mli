(** Domain-sharded work pool with a deterministic, order-respecting merge.

    Built for the parallel explorer but generic: an array of independent
    tasks is claimed in index order from a shared atomic cursor by one
    worker per domain, and results land in an array indexed like the
    input.  The caller's [f] must be domain-safe (operate only on its task
    and on thread-safe shared state such as [Atomic.t] counters). *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count () - 1], clamped to [\[1, 8\]]. *)

val map :
  ?domains:int ->
  ?hit:('b -> bool) ->
  tasks:'a array ->
  (index:int -> stop:(unit -> bool) -> 'a -> 'b) ->
  'b option array
(** [map ~tasks f] runs [f] over every task across [domains] workers
    (default {!default_domains}; the calling domain is one of them) and
    returns the results in task order.

    [hit] drives early cancellation: once [hit result] is true for task
    [i], tasks with index [> i] are skipped (their slot stays [None]) and
    running tasks with index [> i] observe [stop () = true], a request to
    abandon their work.  Tasks with index [< i] are never cancelled and
    always run to completion, so the lowest-indexed hit in the returned
    array is the same one a sequential left-to-right execution would have
    found — wall-clock scheduling of the domains cannot change the merged
    answer. *)
