(** Domain-sharded work pool with a deterministic, order-respecting merge.

    Built for the parallel explorer but generic: an array of independent
    tasks is dealt into per-domain index segments, claimed in index order
    by each segment's owner, with idle workers stealing the lowest-indexed
    remaining work from the fullest other segment — so one slow subtree
    does not serialize the pool behind a single shared claim counter.
    Results land in an array indexed like the input.  The caller's [f]
    must be domain-safe (operate only on its task and on thread-safe
    shared state such as [Atomic.t] counters). *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1 — the runtime's
    own report, with one core left for the rest of the system and no
    fixed upper clamp, so small CI runners are never oversubscribed.  The
    [RME_DOMAINS] environment variable (a positive integer) overrides the
    computed value. *)

val map :
  ?domains:int ->
  ?hit:('b -> bool) ->
  tasks:'a array ->
  (index:int -> stop:(unit -> bool) -> 'a -> 'b) ->
  'b option array
(** [map ~tasks f] runs [f] over every task across [domains] workers
    (default {!default_domains}; the calling domain is one of them) and
    returns the results in task order.  The worker count is clamped to
    [Domain.recommended_domain_count ()]: oversubscribing OCaml domains
    only adds stop-the-world GC barriers, and the result is deterministic
    regardless, so a request beyond the hardware is satisfied with the
    hardware's parallelism.

    [hit] drives early cancellation: once [hit result] is true for task
    [i], tasks with index [> i] are skipped (their slot stays [None]) and
    running tasks with index [> i] observe [stop () = true], a request to
    abandon their work.  Tasks with index [< i] are never cancelled and
    always run to completion, so the lowest-indexed hit in the returned
    array is the same one a sequential left-to-right execution would have
    found — wall-clock scheduling of the domains cannot change the merged
    answer. *)
