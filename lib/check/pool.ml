(* Domain-sharded work pool with deterministic, order-respecting merge.

   Tasks are claimed in index order from a shared [Atomic.t] cursor by one
   worker per domain.  The pool supports early cancellation keyed on task
   order: when a task's result satisfies [hit], every task with a *higher*
   index becomes irrelevant (in the explorer, the first violation in DFS
   order lives in the lowest-indexed subtree that has one) and is skipped
   or asked to stop; tasks with a lower index always run to completion, so
   the merged result is independent of how the OS schedules the domains. *)

let default_domains () =
  (* Leave a core for the rest of the system; exploration saturates. *)
  max 1 (min 8 (Domain.recommended_domain_count () - 1))

let cas_min cell candidate =
  let rec loop () =
    let cur = Atomic.get cell in
    if candidate < cur && not (Atomic.compare_and_set cell cur candidate) then loop ()
  in
  loop ()

let map ?domains ?(hit = fun _ -> false) ~tasks f =
  let len = Array.length tasks in
  let domains =
    match domains with Some d when d >= 1 -> d | Some _ -> 1 | None -> default_domains ()
  in
  let domains = min domains (max 1 len) in
  let next = Atomic.make 0 in
  (* Lowest task index whose result hit; tasks beyond it are cancelled. *)
  let first_hit = Atomic.make max_int in
  let results = Array.make len None in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < len then begin
        if i <= Atomic.get first_hit then begin
          (* [stop] turns true only when a strictly earlier task hits, so a
             task that observes it can abandon its subtree: whatever it
             would have produced is shadowed in the merge. *)
          let stop () = Atomic.get first_hit < i in
          let r = f ~index:i ~stop tasks.(i) in
          results.(i) <- Some r;
          if hit r then cas_min first_hit i
        end;
        loop ()
      end
    in
    loop ()
  in
  if domains = 1 then worker ()
  else begin
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    Fun.protect ~finally:(fun () -> List.iter Domain.join spawned) worker
  end;
  (* Every write to [results] happens-before the joins above, so the array
     is safely published to the caller. *)
  results
