(* Domain-sharded work pool with deterministic, order-respecting merge.

   Tasks are dealt into per-domain index segments, each with its own atomic
   cursor; a worker drains its own segment in index order and, once empty,
   steals the lowest-indexed remaining work from another segment.  One
   atomic fetch-and-add per claimed task, on a cursor only contended when
   stealing — the single shared claim counter this replaces was hammered by
   every domain for every task.

   The pool supports early cancellation keyed on task order: when a task's
   result satisfies [hit], every task with a *higher* index becomes
   irrelevant (in the explorer, the first violation in DFS order lives in
   the lowest-indexed subtree that has one) and is skipped or asked to
   stop; tasks with a lower index always run to completion, so the merged
   result is independent of how the OS schedules the domains. *)

let env_domains () =
  match Sys.getenv_opt "RME_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some d
      | Some _ | None -> None)

let default_domains () =
  match env_domains () with
  | Some d -> d
  | None ->
      (* Use what the runtime reports, leaving one core for the rest of the
         system; never oversubscribe small (e.g. 2-core CI) machines with a
         fixed upper clamp. *)
      max 1 (Domain.recommended_domain_count () - 1)

let cas_min cell candidate =
  let rec loop () =
    let cur = Atomic.get cell in
    if candidate < cur && not (Atomic.compare_and_set cell cur candidate) then loop ()
  in
  loop ()

(* Per-domain segment of the task index space: [lo, hi), with [cursor] the
   next unclaimed index.  Claiming — by the owner or a thief — is the same
   fetch-and-add; an overshoot (cursor past [hi]) just means empty. *)
type seg = { lo : int; hi : int; cursor : int Atomic.t }

let map ?domains ?(hit = fun _ -> false) ~tasks f =
  let len = Array.length tasks in
  let requested =
    match domains with Some d when d >= 1 -> d | Some _ -> 1 | None -> default_domains ()
  in
  (* [domains] is the parallelism request; the spawn count is additionally
     clamped to what the hardware can actually schedule.  OCaml domains
     must not be oversubscribed: every minor collection is a stop-the-world
     barrier across all of them, so spawning more than the core count only
     adds synchronization — it can never run more work at once.  Results
     are deterministic either way, so the clamp is invisible except in
     wall-clock time. *)
  let domains =
    min (min requested (max 1 (Domain.recommended_domain_count ()))) (max 1 len)
  in
  let segs =
    Array.init domains (fun w ->
        let lo = w * len / domains and hi = (w + 1) * len / domains in
        { lo; hi; cursor = Atomic.make lo })
  in
  (* Lowest task index whose result hit; tasks beyond it are cancelled. *)
  let first_hit = Atomic.make max_int in
  let results = Array.make len None in
  let claim seg =
    let i = Atomic.fetch_and_add seg.cursor 1 in
    if i < seg.hi then Some i else None
  in
  (* Steal from the segment with the most unclaimed work; ties go to the
     lower index range (the scan order), the work cancellation can never
     skip. *)
  let rec steal my =
    let best = ref (-1) and best_left = ref 0 in
    for w = 0 to domains - 1 do
      if w <> my then begin
        let left = segs.(w).hi - Atomic.get segs.(w).cursor in
        if left > !best_left then begin
          best := w;
          best_left := left
        end
      end
    done;
    if !best < 0 then None
    else
      match claim segs.(!best) with
      | Some i -> Some i
      | None -> steal my (* lost the race for the victim's last item; rescan *)
  in
  let worker w () =
    let rec next () =
      match claim segs.(w) with
      | Some i -> run i
      | None -> ( match steal w with Some i -> run i | None -> ())
    and run i =
      if i <= Atomic.get first_hit then begin
        (* [stop] turns true only when a strictly earlier task hits, so a
           task that observes it can abandon its subtree: whatever it
           would have produced is shadowed in the merge. *)
        let stop () = Atomic.get first_hit < i in
        let r = f ~index:i ~stop tasks.(i) in
        results.(i) <- Some r;
        if hit r then cas_min first_hit i
      end;
      next ()
    in
    next ()
  in
  if domains = 1 then worker 0 ()
  else begin
    let spawned = List.init (domains - 1) (fun w -> Domain.spawn (worker (w + 1))) in
    Fun.protect ~finally:(fun () -> List.iter Domain.join spawned) (worker 0)
  end;
  (* Every write to [results] happens-before the joins above, so the array
     is safely published to the caller. *)
  results
