open Rme_sim

type report = { ops_replayed : int; cells_checked : int; divergence : string option }

let pp_report ppf r =
  Fmt.pf ppf "ops=%d cells=%d %s" r.ops_replayed r.cells_checked
    (match r.divergence with None -> "consistent" | Some d -> "DIVERGENT: " ^ d)

(* Replay the recorded instruction stream as a sequentially consistent
   history: reads must return the latest recorded post-write contents of
   their cell; any op's recorded post-value becomes the cell's current
   contents.  The first op seen on a cell establishes its value (the
   initialisation is not in the trace). *)
let verify (res : Engine.result) ~mem_dump =
  let contents : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let ops = ref 0 in
  let divergence = ref None in
  List.iter
    (fun ev ->
      if !divergence = None then
        match ev with
        | Event.Op { step; pid; kind; cell; value } when cell <> "-" -> (
            incr ops;
            match Hashtbl.find_opt contents cell with
            | Some current when (kind = "read" || kind = "spin") && current <> value ->
                divergence :=
                  Some
                    (Printf.sprintf "step %d: p%d read %d from %s but the trace last wrote %d"
                       step pid value cell current)
            | _ -> Hashtbl.replace contents cell value)
        | Event.Op _ | Event.Note _ | Event.Crash _ | Event.Sys_crash _ -> ())
    res.Engine.events;
  let checked = ref 0 in
  if !divergence = None then
    List.iter
      (fun (name, final) ->
        match Hashtbl.find_opt contents name with
        | Some v when v <> final ->
            if !divergence = None then
              divergence :=
                Some (Printf.sprintf "cell %s: trace ends at %d, store holds %d" name v final)
        | Some _ -> incr checked
        | None -> ())
      mem_dump;
  { ops_replayed = !ops; cells_checked = !checked; divergence = !divergence }

let dump mem ~cells = List.map (fun (c : Cell.t) -> (c.Cell.name, Memory.peek mem c)) cells
