open Rme_sim

let mutual_exclusion (res : Engine.result) =
  if res.Engine.cs_max <= 1 then None
  else Some (Printf.sprintf "mutual exclusion violated: %d processes in CS" res.Engine.cs_max)

let lock_mutual_exclusion (res : Engine.result) ~lock_id =
  let s = res.Engine.locks.(lock_id) in
  if s.Engine.max_occupancy <= 1 then None
  else
    Some
      (Printf.sprintf "lock %s held by %d processes simultaneously" s.Engine.lock_name
         s.Engine.max_occupancy)

let starvation_freedom (res : Engine.result) ~requests =
  match res.Engine.stall with
  | Some s -> Some (Fmt.str "%a" Engine.pp_stall s)
  | None ->
    let bad = ref None in
    Array.iteri
      (fun pid (p : Engine.proc_stats) ->
        if !bad = None && p.completed < requests then
          bad := Some (Printf.sprintf "p%d starved: %d/%d requests" pid p.completed requests))
      res.Engine.procs;
    !bad

let responsiveness (res : Engine.result) ~lock_id =
  let s = res.Engine.locks.(lock_id) in
  if s.Engine.max_occupancy <= 1 + s.Engine.unsafe_crashes then None
  else
    Some
      (Printf.sprintf "%s: occupancy %d with only %d unsafe failures" s.Engine.lock_name
         s.Engine.max_occupancy s.Engine.unsafe_crashes)

(* Interval form of Theorem 4.2.  Replays the event log tracking, per
   moment: the lock's holder count, the set of in-flight super-passages, and
   the still-active unsafe failures (consequence interval = until every
   super-passage pending at the failure is satisfied). *)
let weak_me_intervals (res : Engine.result) ~lock_id =
  let holders = Hashtbl.create 8 in
  (* pid -> super currently in flight (outstanding request) *)
  let outstanding : (int, int) Hashtbl.t = Hashtbl.create 8 in
  (* active unsafe failures: list of pending-sets, each a (pid, super) list *)
  let active : (int * int) list ref list ref = ref [] in
  let violation = ref None in
  let prune () =
    active :=
      List.filter
        (fun pending ->
          pending :=
            List.filter
              (fun (pid, super) ->
                match Hashtbl.find_opt outstanding pid with
                | Some s -> s = super
                | None -> false)
              !pending;
          !pending <> [])
        !active
  in
  List.iter
    (fun ev ->
      if !violation = None then
        match ev with
        | Event.Note { pid; super; note = Event.Seg Event.Req_begin; _ } ->
            if not (Hashtbl.mem outstanding pid) then Hashtbl.replace outstanding pid super
        | Event.Note { pid; note = Event.Seg Event.Req_done; _ } ->
            Hashtbl.remove outstanding pid;
            prune ()
        | Event.Note { pid; step; note = Event.Lock_acquired id; _ } when id = lock_id ->
            Hashtbl.replace holders pid ();
            let k = Hashtbl.length holders in
            prune ();
            let live = List.length !active in
            if k > 1 + live then
              violation :=
                Some
                  (Printf.sprintf
                     "step %d: %d holders with only %d active unsafe failures" step k live)
        | Event.Note { pid; note = Event.Lock_release id; _ } when id = lock_id ->
            Hashtbl.remove holders pid
        | Event.Crash { pid; unsafe_wrt; holding; _ } ->
            if List.mem lock_id holding then Hashtbl.remove holders pid;
            if List.mem lock_id unsafe_wrt then begin
              let pending =
                Hashtbl.fold (fun p s acc -> (p, s) :: acc) outstanding []
              in
              active := ref pending :: !active
            end
        (* a system crash is followed by per-pid Crash events; those carry
           the holder/window bookkeeping *)
        | Event.Sys_crash _ | Event.Note _ | Event.Op _ -> ())
    res.Engine.events;
  !violation

(* Count instruction events of [pid] strictly between two note events,
   scanning from [start] in the event array. *)
let count_ops events pid ~is_from ~is_to =
  let n = Array.length events in
  let rec find_from i =
    if i >= n then None
    else
      match events.(i) with
      | Event.Note { pid = p; note; _ } when p = pid && is_from note -> Some (i + 1)
      | _ -> find_from (i + 1)
  in
  let rec count i acc =
    if i >= n then None
    else
      match events.(i) with
      | Event.Note { pid = p; note; _ } when p = pid && is_to note -> Some (acc, i)
      | Event.Op { pid = p; _ } when p = pid -> count (i + 1) (acc + 1)
      | Event.Crash { pid = p; _ } when p = pid -> None (* segment interrupted *)
      | _ -> count (i + 1) acc
  in
  (find_from, count)

let check_segments (res : Engine.result) ~pid_of ~is_from ~is_to ~bound ~what =
  let events = Array.of_list res.Engine.events in
  let n = Array.length events in
  let violation = ref None in
  let rec scan i =
    if i < n && !violation = None then begin
      (match events.(i) with
      | Event.Note { pid; note; _ } when pid_of pid && is_from note ->
          let _, count = count_ops events pid ~is_from ~is_to in
          (match count (i + 1) 0 with
          | Some (ops, _) when ops > bound ->
              violation := Some (Printf.sprintf "p%d: %s took %d > %d steps" pid what ops bound)
          | Some _ | None -> ())
      | _ -> ());
      scan (i + 1)
    end
  in
  scan 0;
  !violation

let bounded_exit (res : Engine.result) ~lock_id ~bound =
  check_segments res
    ~pid_of:(fun _ -> true)
    ~is_from:(fun note -> note = Event.Lock_release lock_id)
    ~is_to:(fun note -> note = Event.Lock_released lock_id)
    ~bound ~what:"exit"

let bounded_recovery (res : Engine.result) ~lock_id ~bound =
  (* After any crash, the steps from the next Req_begin to the start of this
     lock's Enter segment cover the Recover work re-done by the restart. *)
  let events = Array.of_list res.Engine.events in
  let n = Array.length events in
  let violation = ref None in
  let after_crash i pid =
    (* find pid's next Req_begin, then count ops to Lock_enter lock_id *)
    let rec find j =
      if j >= n then ()
      else
        match events.(j) with
        | Event.Note { pid = p; note = Event.Seg Event.Req_begin; _ } when p = pid ->
            let rec count k acc =
              if k >= n then ()
              else
                match events.(k) with
                | Event.Note { pid = p; note = Event.Lock_enter id; _ }
                  when p = pid && id = lock_id ->
                    if acc > bound then
                      violation :=
                        Some (Printf.sprintf "p%d: recovery took %d > %d steps" pid acc bound)
                | Event.Crash { pid = p; _ } when p = pid -> ()
                | Event.Op { pid = p; _ } when p = pid -> count (k + 1) (acc + 1)
                | _ -> count (k + 1) acc
            in
            count (j + 1) 0
        | Event.Crash { pid = p; _ } when p = pid -> () (* crashed again first *)
        | _ -> find (j + 1)
    in
    find i
  in
  Array.iteri
    (fun i ev ->
      if !violation = None then
        match ev with Event.Crash { pid; _ } -> after_crash (i + 1) pid | _ -> ())
    events;
  !violation

let bcsr (res : Engine.result) ~lock_id ~bound =
  let events = Array.of_list res.Engine.events in
  let n = Array.length events in
  let violation = ref None in
  Array.iteri
    (fun i ev ->
      if !violation = None then
        match ev with
        | Event.Crash { pid; holding; _ } when List.mem lock_id holding ->
            (* Count pid's ops from its next Req_begin to re-acquisition. *)
            let rec find j =
              if j >= n then ()
              else
                match events.(j) with
                | Event.Note { pid = p; note = Event.Seg Event.Req_begin; _ } when p = pid ->
                    let rec count k acc =
                      if k >= n then ()
                      else
                        match events.(k) with
                        | Event.Note { pid = p; note = Event.Lock_acquired id; _ }
                          when p = pid && id = lock_id ->
                            if acc > bound then
                              violation :=
                                Some
                                  (Printf.sprintf "p%d: CS reentry took %d > %d steps" pid acc
                                     bound)
                        | Event.Crash { pid = p; _ } when p = pid -> ()
                        | Event.Op { pid = p; _ } when p = pid -> count (k + 1) (acc + 1)
                        | _ -> count (k + 1) acc
                    in
                    count (j + 1) 0
                | Event.Crash { pid = p; _ } when p = pid -> ()
                | _ -> find (j + 1)
            in
            find (i + 1)
        | _ -> ())
    events;
  !violation

let fcfs (res : Engine.result) ~tail_cell =
  let fas_order =
    List.filter_map
      (function
        | Event.Op { kind = "fas"; pid; cell; _ } when cell = tail_cell -> Some pid | _ -> None)
      res.Engine.events
  in
  let cs_order =
    List.filter_map
      (function
        | Event.Note { note = Event.Seg Event.Cs_begin; pid; _ } -> Some pid | _ -> None)
      res.Engine.events
  in
  if fas_order = cs_order then None
  else
    Some
      (Fmt.str "FCFS violated: append order %a, CS order %a"
         Fmt.(Dump.list int)
         fas_order
         Fmt.(Dump.list int)
         cs_order)

let super_adaptivity (res : Engine.result) =
  let x =
    Array.fold_left (fun acc (p : Engine.proc_stats) -> max acc p.max_level) 0 res.Engine.procs
  in
  let need = x * (x - 1) / 2 in
  if res.Engine.total_crashes >= need then None
  else
    Some
      (Printf.sprintf "level %d reached with only %d crashes (Theorem 5.17 needs >= %d)" x
         res.Engine.total_crashes need)

let failure_free_rmr (res : Engine.result) ~bound =
  if res.Engine.total_crashes > 0 then None
  else begin
    let bad = ref None in
    Array.iteri
      (fun pid (p : Engine.proc_stats) ->
        if !bad = None then
          List.iter
            (fun (pass : Engine.passage) ->
              if !bad = None && pass.rmr > bound then
                bad :=
                  Some
                    (Printf.sprintf "p%d: failure-free passage cost %d > %d RMRs" pid pass.rmr
                       bound))
            p.passages)
      res.Engine.procs;
    !bad
  end

(* After a system-wide crash every process's continuation is gone, so no
   process may reach the CS again without first restarting a passage: its
   next [Cs_begin] must be preceded by a [Req_begin] emitted after the
   crash.  A violation means a continuation (or the CS occupancy it
   implies) survived the whole-system restart — the engine erasure or a
   lock's recovery path is broken. *)
let system_recovery (res : Engine.result) =
  let needs_recovery : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let violation = ref None in
  List.iter
    (fun ev ->
      if !violation = None then
        match ev with
        (* A system crash is followed by one per-pid [Crash] event per
           victim at the same step, so marking on [Crash] covers both the
           per-process and the system-wide model. *)
        | Event.Crash { pid; step; _ } -> Hashtbl.replace needs_recovery pid step
        | Event.Note { pid; note = Event.Seg Event.Req_begin; _ } ->
            Hashtbl.remove needs_recovery pid
        | Event.Note { pid; step; note = Event.Seg Event.Cs_begin; _ } -> (
            match Hashtbl.find_opt needs_recovery pid with
            | Some crash_step ->
                violation :=
                  Some
                    (Printf.sprintf
                       "p%d entered the CS at step %d without restarting its passage after \
                        crashing at step %d"
                       pid step crash_step)
            | None -> ())
        | Event.Sys_crash _ | Event.Note _ | Event.Op _ -> ())
    res.Engine.events;
  !violation

(* Every abort signal must resolve — Abort_done, Abort_lost_race,
   acquisition, or a crash — within [bound] of the victim's own steps.  The
   engine accounts ab_own_steps for pending signals too, so a signal still
   unresolved when the run ends is judged by the same yardstick: over
   budget is a violation, under budget is inconclusive (pass).  Vacuous
   when the lock has no abort path ([supported = false]): the only
   resolution a legacy lock offers is the eventual acquisition, which may
   legitimately take arbitrarily long. *)
let abort_liveness (res : Engine.result) ~bound ~supported =
  if not supported then None
  else
    List.fold_left
      (fun acc (a : Engine.abort_stat) ->
        match acc with
        | Some _ -> acc
        | None ->
            if a.ab_own_steps > bound then
              Some
                (Printf.sprintf "p%d: abort signal at step %d %s after %d > %d own steps"
                   a.ab_pid a.ab_signal_step
                   (if a.ab_result = Engine.Res_pending then "still unresolved"
                    else Fmt.str "resolved as %a" Engine.pp_abort_result a.ab_result)
                   a.ab_own_steps bound)
            else None)
      None res.Engine.aborts

(* A lost wakeup is a dropped hand-off: some process parks waiting for a
   grant that was posted and then destroyed (typically by a broken abort
   path), so it waits forever while the lock is — per the event history —
   not held by anyone.  Two observable signatures, both checked:

   - overtaking: a waiter's unresolved [Lock_enter] spans [bound] complete
     passages (acquired -> released) of the same lock by other processes.
     Correct hand-off locks admit a registered waiter within O(n)
     passages, so a generously linear [bound] separates the two.
   - stalled-free: the run ends in a stall with some process parked in an
     entry section while no process holds any lock. *)
let no_lost_wakeup (res : Engine.result) ~bound =
  let n = Array.length res.Engine.procs in
  (* waiting.(pid) = Some (lock id, passages by others since Lock_enter) *)
  let waiting = Array.make n None in
  let holders : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let violation = ref None in
  List.iter
    (fun ev ->
      if !violation = None then
        match ev with
        | Event.Note { pid; note = Event.Lock_enter id; _ } -> waiting.(pid) <- Some (id, 0)
        | Event.Note { pid; note = Event.Lock_acquired id; _ } ->
            Hashtbl.replace holders id pid;
            (match waiting.(pid) with Some (w, _) when w = id -> waiting.(pid) <- None | _ -> ())
        | Event.Note { pid; step; note = Event.Lock_released id; _ } ->
            if Hashtbl.find_opt holders id = Some pid then Hashtbl.remove holders id;
            Array.iteri
              (fun w -> function
                | Some (l, k) when l = id && w <> pid ->
                    if k + 1 >= bound then
                      violation :=
                        Some
                          (Printf.sprintf
                             "p%d waiting on lock %d overtaken by %d complete passages (>= %d) \
                              by step %d"
                             w id (k + 1) bound step)
                    else waiting.(w) <- Some (l, k + 1)
                | _ -> ())
              waiting
        | Event.Note { pid; note = Event.Abort_done id | Event.Abort_lost_race id; _ } -> (
            match waiting.(pid) with Some (w, _) when w = id -> waiting.(pid) <- None | _ -> ())
        | Event.Crash { pid; _ } -> waiting.(pid) <- None
        | Event.Sys_crash _ | Event.Note _ | Event.Op _ -> ())
    res.Engine.events;
  match !violation with
  | Some _ as v -> v
  | None ->
      if res.Engine.deadlocked || res.Engine.stall <> None then begin
        let stuck = ref [] in
        Array.iteri
          (fun pid -> function Some (id, _) -> stuck := (pid, id) :: !stuck | None -> ())
          waiting;
        match (!stuck, Hashtbl.length holders) with
        | (pid, id) :: _, 0 ->
            Some
              (Printf.sprintf
                 "run stalled with p%d (and %d more) parked in lock %d's entry section while \
                  no process holds any lock — a hand-off was lost"
                 pid
                 (List.length !stuck - 1)
                 id)
        | _ -> None
      end
      else None

(* The abort protocol itself must be cheap: RMRs charged to the victim
   between the signal and an [Aborted] / [Acquired_instead] resolution.
   Resolutions by acquisition or crash are not abort-protocol work and are
   exempt. *)
let abort_rmr (res : Engine.result) ~bound =
  List.fold_left
    (fun acc (a : Engine.abort_stat) ->
      match acc with
      | Some _ -> acc
      | None -> (
          match a.ab_result with
          | Engine.Res_aborted | Engine.Res_lost_race ->
              if a.ab_rmr > bound then
                Some
                  (Printf.sprintf "p%d: abort at step %d cost %d > %d RMRs (%s)" a.ab_pid
                     a.ab_signal_step a.ab_rmr bound
                     (Fmt.str "%a" Engine.pp_abort_result a.ab_result))
              else None
          | Engine.Res_acquired | Engine.Res_crashed | Engine.Res_pending -> None))
    None res.Engine.aborts

let all_satisfied (res : Engine.result) ~n ~requests =
  (not res.Engine.deadlocked) && (not res.Engine.timed_out)
  && Engine.total_completed res = n * requests

type abort_expect = { liveness_bound : int; rmr_bound : int; overtake_bound : int; supported : bool }

let default_abort_expect =
  { liveness_bound = 400; rmr_bound = 60; overtake_bound = 24; supported = true }

let check_battery ?abort (res : Engine.result) ~requests ~weak_lock_ids =
  let battery =
    [
      ( "mutual-exclusion",
        if weak_lock_ids = [] then mutual_exclusion res
        else
          (* Weakly recoverable application locks may overlap in CS, but
             only within the responsiveness envelope of each weak lock. *)
          List.fold_left
            (fun acc id -> match acc with Some _ -> acc | None -> weak_me_intervals res ~lock_id:id)
            None weak_lock_ids );
      ("starvation-freedom", starvation_freedom res ~requests);
      ("super-adaptivity", super_adaptivity res);
      (* Vacuous without a recorded history ([events = []]). *)
      ("system-recovery", system_recovery res);
    ]
    @
    match abort with
    | None -> []
    | Some { liveness_bound; rmr_bound; overtake_bound; supported } ->
        [
          ("abort-liveness", abort_liveness res ~bound:liveness_bound ~supported);
          ("no-lost-wakeup", no_lost_wakeup res ~bound:overtake_bound);
          ("abort-rmr", abort_rmr res ~bound:rmr_bound);
        ]
  in
  List.filter_map (fun (name, r) -> Option.map (fun msg -> name ^ ": " ^ msg) r) battery
