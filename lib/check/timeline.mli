(** ASCII execution timelines.

    Renders a recorded history as one lane per process with a column per
    time bucket, so a schedule (and the effect of crashes and lock waits)
    can be eyeballed:

    {v
    p0  ..rrrEEECCCCx...rrEECCCC##....
    p1  ..rrrrrrrrrrEEEEEEECCCC##.....
    v}

    Legend: [.] non-critical section, [r] Recover/Enter of the outermost
    lock (waiting), [C] inside the critical section, [#] Exit, [x] crash,
    [ ] not started / finished. *)

open Rme_sim

val render : ?width:int -> Engine.result -> string
(** [render ~width res] lays the full history over [width] columns (default
    100).  Requires the run to have been recorded. *)

val pp : ?width:int -> Format.formatter -> Engine.result -> unit
