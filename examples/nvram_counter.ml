(* A persistent (NVRAM) counter protected by a recoverable lock.

   The critical section is written to be idempotent, as the bounded-CS-
   reentry property assumes (§2.4): each request computes its value from
   persistent state rather than incrementing blindly, so re-executing the CS
   after a crash cannot double-count.  Every process suffers a mid-CS crash
   at some point and the final counter is still exact.

     dune exec examples/nvram_counter.exe *)

open Rme_sim

let n = 6

let requests = 10

let () =
  Fmt.pr "== NVRAM counter under mid-CS crashes ==@.@.";
  let out = ref None in
  (* Crash every process once, inside its 3rd critical section. *)
  let crash =
    Crash.all
      (List.init n (fun pid -> Crash.on_custom_note ~pid ~tag:"incr" ~occurrence:2 Crash.After))
  in
  let res =
    Engine.run ~n ~model:Memory.CC ~sched:(Sched.random ~seed:7) ~crash
      ~setup:(fun ctx ->
        let lock = (Rme.Spec.find_exn "ba-jjj").Rme.Spec.make ctx in
        let mem = Engine.Ctx.memory ctx in
        let counter = Memory.alloc mem ~name:"app.counter" 0 in
        (* Per-process persistent "applied" marks make the CS idempotent:
           slot i records how many increments process i has applied. *)
        let applied =
          Array.init n (fun i ->
              Memory.alloc mem ~home:i ~name:(Printf.sprintf "app.applied[%d]" i) 0)
        in
        out := Some (mem, counter);
        (lock, counter, applied))
      ~body:(fun (lock, counter, applied) ~pid ->
        let cs ~pid =
          (* Idempotent increment: apply only if this request's increment is
             not already recorded in persistent state. *)
          let done_before = Api.read applied.(pid) in
          let my_request = Api.completed_requests () in
          if done_before <= my_request then begin
            Api.note (Event.Custom "incr");
            let v = Api.read counter in
            Api.write counter (v + 1);
            Api.write applied.(pid) (my_request + 1)
          end
        in
        Harness.standard_body ~cs ~lock ~requests pid)
      ()
  in
  let mem, counter = Option.get !out in
  let final = Memory.peek mem counter in
  Fmt.pr "processes:        %d x %d requests@." n requests;
  Fmt.pr "mid-CS crashes:   %d@." res.Engine.total_crashes;
  Fmt.pr "final counter:    %d (expected %d)@." final (n * requests);
  Fmt.pr "mutual exclusion: %s@."
    (match Rme.Check.Props.mutual_exclusion res with None -> "held" | Some m -> m);
  if final <> n * requests then begin
    Fmt.pr "MISMATCH!@.";
    exit 1
  end;
  Fmt.pr "@.Each crashed process re-entered its CS (BCSR) and the idempotent@.";
  Fmt.pr "critical section absorbed the re-execution: no lost, no double counts.@."
