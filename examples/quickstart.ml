(* Quickstart: build the paper's adaptive recoverable lock (BA-Lock over the
   JJJ-shape base), run eight processes through it, crash one of them in the
   middle of its critical section, and watch it recover.

     dune exec examples/quickstart.exe *)

open Rme_sim

let () =
  Fmt.pr "== Adaptive recoverable mutual exclusion: quickstart ==@.@.";
  (* 8 processes, 5 satisfied requests each; p3 crashes the first time it is
     inside its critical section. *)
  let crash = Crash.on_custom_note ~pid:3 ~tag:"cs" ~occurrence:0 Crash.After in
  let cs ~pid:_ = Api.note (Event.Custom "cs") in
  let res =
    Harness.run_lock ~record:true ~cs ~n:8 ~model:Memory.CC
      ~sched:(Sched.random ~seed:42) ~crash ~requests:5
      ~make:(Rme.Spec.find_exn "ba-jjj").Rme.Spec.make ()
  in
  (* Narrate p3's story from the history. *)
  List.iter
    (fun ev ->
      match ev with
      | Event.Crash { pid = 3; step; _ } ->
          Fmt.pr "step %5d: p3 CRASHES inside its critical section@." step
      | Event.Note { pid = 3; step; note = Event.Seg Event.Cs_begin; super } ->
          Fmt.pr "step %5d: p3 enters the CS (request #%d)@." step super
      | Event.Note { pid = 3; step; note = Event.Seg Event.Req_done; super } ->
          Fmt.pr "step %5d: p3 request #%d satisfied@." step super
      | _ -> ())
    res.Engine.events;
  Fmt.pr "@.";
  Fmt.pr "all processes done:   %b (%d/40 requests)@."
    (Engine.total_completed res = 40)
    (Engine.total_completed res);
  Fmt.pr "mutual exclusion:     %s@."
    (match Rme.Check.Props.mutual_exclusion res with None -> "held" | Some m -> m);
  Fmt.pr "total crashes:        %d@." res.Engine.total_crashes;
  Fmt.pr "worst passage RMRs:   %d (O(1): no failures were unsafe)@." (Engine.max_rmr res);
  Fmt.pr "@.After the crash, p3 re-entered its critical section first (BCSR):@.";
  Fmt.pr "the crashed request was satisfied by the re-run, nobody barged in.@."
