(* Consistent snapshots under crashes, with the recoverable reader-writer
   lock: writers update a multi-word record in place; readers must never
   observe a torn record — even when a writer crashes between the words of
   an update, because its recovery re-enters the write section (BCSR of the
   underlying adaptive mutex) and finishes the idempotent update before any
   reader is admitted.

     dune exec examples/kv_snapshot.exe *)

open Rme_sim
open Rme_locks

let n = 8 (* 2 writers, 6 readers *)

let words = 4 (* record width *)

let requests = 10

let () =
  Fmt.pr "== Torn-read-free snapshots over the recoverable RW lock ==@.@.";
  let torn = ref 0 in
  let snapshots = ref 0 in
  (* Crash writer 0 in the middle of its 2nd update, and sprinkle random
     crashes over everyone. *)
  let crash =
    Crash.all
      [
        Crash.on_custom_note ~pid:0 ~tag:"mid-update" ~occurrence:1 Crash.After;
        Crash.random ~seed:5 ~rate:0.002 ~max_crashes:8 ();
      ]
  in
  let res =
    Engine.run ~n ~model:Memory.CC ~sched:(Sched.random ~seed:11) ~crash
      ~setup:(fun ctx ->
        let mem = Engine.Ctx.memory ctx in
        let rw = Rw_lock.create ctx in
        let record =
          Array.init words (fun i -> Memory.alloc mem ~name:(Printf.sprintf "kv.word[%d]" i) 0)
        in
        (* per-writer persisted sequence number: makes updates idempotent *)
        let seq = Array.init n (fun i -> Memory.alloc mem ~home:i ~name:(Printf.sprintf "kv.seq[%d]" i) 0) in
        (rw, record, seq))
      ~body:(fun (rw, record, seq) ~pid ->
        let writer = pid < 2 in
        while Api.completed_requests () < requests do
          Api.note (Event.Seg Event.Ncs_begin);
          Api.note (Event.Seg Event.Req_begin);
          if writer then begin
            Rw_lock.write_acquire rw ~pid;
            (* Idempotent update: the value is a pure function of the
               persisted (pid, seq) pair, so re-running after a crash
               rewrites the same words. *)
            let k = Api.read seq.(pid) in
            let v = (pid * 1000) + k in
            for w = 0 to words - 1 do
              Api.write record.(w) v;
              if w = words / 2 then Api.note (Event.Custom "mid-update")
            done;
            Api.write seq.(pid) (k + 1);
            Rw_lock.write_release rw ~pid
          end
          else begin
            Rw_lock.read_acquire rw ~pid;
            let first = Api.read record.(0) in
            let ok = ref true in
            for w = 1 to words - 1 do
              if Api.read record.(w) <> first then ok := false
            done;
            incr snapshots;
            if not !ok then incr torn;
            Rw_lock.read_release rw ~pid
          end;
          Api.note (Event.Seg Event.Req_done)
        done)
      ()
  in
  Fmt.pr "requests:   %d/%d satisfied@." (Engine.total_completed res) (n * requests);
  Fmt.pr "crashes:    %d (incl. a writer mid-update)@." res.Engine.total_crashes;
  Fmt.pr "snapshots:  %d read, %d torn@." !snapshots !torn;
  if !torn > 0 || Engine.total_completed res <> n * requests then begin
    Fmt.pr "FAILED@.";
    exit 1
  end;
  Fmt.pr "@.Every reader saw a consistent record: the crashed writer re-entered@.";
  Fmt.pr "its write section first (BCSR) and completed the update it had torn.@."
