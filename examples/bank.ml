(* A crash-tolerant striped bank — the kind of application the paper's
   introduction motivates.  Accounts live in NVRAM (simulated shared
   memory); each stripe of accounts is protected by its own adaptive
   recoverable lock; transfers are journaled write-ahead so the critical
   section is idempotent — the discipline the paper's BCSR property assumes
   (§2.4): a process that crashes mid-transfer re-enters its CS first and
   repairs its own half-applied write before anyone else can observe the
   stripe.

   Processes crash randomly — including between the two account writes of a
   transfer — yet the invariants hold: money is conserved and every
   transfer applies exactly once.

     dune exec examples/bank.exe *)

open Rme_sim

let n = 8 (* processes *)

let stripes = 4

let accounts_per_stripe = 4

let transfers_per_process = 12

type stripe = { lock : Harness.lock; accounts : Cell.t array }

(* One write-ahead journal slot per process, shared across stripes (the
   stripe of request k is a deterministic function of (pid, k), so recovery
   finds the right one). *)
type journal = {
  j_src : Cell.t array;
  j_dst : Cell.t array;
  j_amt : Cell.t array;
  j_sv : Cell.t array; (* snapshot of source balance *)
  j_dv : Cell.t array; (* snapshot of destination balance *)
  j_req : Cell.t array; (* which request the journal belongs to (commit pt 1) *)
  j_done : Cell.t array; (* requests applied so far (commit pt 2) *)
}

let build ctx =
  let mem = Engine.Ctx.memory ctx in
  let stripesv =
    Array.init stripes (fun s ->
        {
          lock =
            Rme_locks.Ba_lock.lock
              (Rme_locks.Ba_lock.create
                 ~name:(Printf.sprintf "bank.s%d" s)
                 ~base:Rme_locks.Jjj_tree.make ctx);
          accounts =
            Array.init accounts_per_stripe (fun i ->
                Memory.alloc mem ~name:(Printf.sprintf "bank.s%d.acct[%d]" s i) 100);
        })
  in
  let cells field init =
    Array.init n (fun i -> Memory.alloc mem ~home:i ~name:(Printf.sprintf "bank.%s[%d]" field i) init)
  in
  let journal =
    {
      j_src = cells "jsrc" 0;
      j_dst = cells "jdst" 0;
      j_amt = cells "jamt" 0;
      j_sv = cells "jsv" 0;
      j_dv = cells "jdv" 0;
      j_req = cells "jreq" (-1);
      j_done = cells "jdone" 0;
    }
  in
  (stripesv, journal)

(* The critical section for request [k]: journal once, apply idempotently.
   Crash-safe by construction:
   - before [j_req <- k] commits, no account was touched: the journal is
     simply rewritten on re-entry;
   - after it, the apply writes absolute values derived from the journaled
     snapshot, so re-execution stores the same bytes;
   - after [j_done <- k+1] commits, re-entry skips the transfer entirely. *)
let transfer st j ~pid ~k =
  if Api.read j.j_done.(pid) = k then begin
    if Api.read j.j_req.(pid) <> k then begin
      let src = (pid + k) mod accounts_per_stripe in
      let dst = (pid + k + 1) mod accounts_per_stripe in
      Api.write j.j_src.(pid) src;
      Api.write j.j_dst.(pid) dst;
      Api.write j.j_amt.(pid) (1 + (k mod 7));
      Api.write j.j_sv.(pid) (Api.read st.accounts.(src));
      Api.write j.j_dv.(pid) (Api.read st.accounts.(dst));
      Api.write j.j_req.(pid) k
    end;
    let src = Api.read j.j_src.(pid) in
    let dst = Api.read j.j_dst.(pid) in
    let sv = Api.read j.j_sv.(pid) in
    let dv = Api.read j.j_dv.(pid) in
    let amt = min (Api.read j.j_amt.(pid)) sv in
    if src <> dst then begin
      Api.write st.accounts.(src) (sv - amt);
      Api.write st.accounts.(dst) (dv + amt)
    end;
    Api.write j.j_done.(pid) (k + 1)
  end

let total mem stripesv =
  Array.fold_left
    (fun acc st -> Array.fold_left (fun a c -> a + Memory.peek mem c) acc st.accounts)
    0 stripesv

let () =
  Fmt.pr "== Striped bank over adaptive recoverable locks ==@.@.";
  let out = ref None in
  let crash = Crash.random ~seed:99 ~rate:0.003 ~max_crashes:(2 * n) () in
  let res =
    Engine.run ~n ~model:Memory.CC ~sched:(Sched.random ~seed:17) ~crash
      ~setup:(fun ctx ->
        let b, j = build ctx in
        out := Some (Engine.Ctx.memory ctx, b, j);
        (b, j))
      ~body:(fun (bank, j) ~pid ->
        while Api.completed_requests () < transfers_per_process do
          Api.note (Event.Seg Event.Ncs_begin);
          (* The stripe choice derives from recoverable state, so a crashed
             transfer resumes against the same stripe. *)
          let k = Api.completed_requests () in
          let st = bank.((pid + k) mod stripes) in
          Api.note (Event.Seg Event.Req_begin);
          st.lock.Harness.acquire ~pid;
          Api.note (Event.Seg Event.Cs_begin);
          transfer st j ~pid ~k;
          Api.note (Event.Seg Event.Cs_end);
          st.lock.Harness.release ~pid;
          Api.note (Event.Seg Event.Req_done)
        done)
      ()
  in
  let mem, bank, journal = Option.get !out in
  let expected = stripes * accounts_per_stripe * 100 in
  let final = total mem bank in
  (* Exactly-once: each process applied exactly [transfers_per_process]
     transfers on each stripe's own counter. *)
  let applied = Array.fold_left (fun a c -> a + Memory.peek mem c) 0 journal.j_done in
  Fmt.pr "transfers:     %d/%d satisfied, %d applied (exactly once each)@."
    (Engine.total_completed res) (n * transfers_per_process) applied;
  Fmt.pr "crashes:       %d (some inside transfers)@." res.Engine.total_crashes;
  Fmt.pr "conservation:  %d = %d expected -> %s@." final expected
    (if final = expected then "MONEY CONSERVED" else "VIOLATION");
  Fmt.pr "balances:@.";
  Array.iteri
    (fun s st ->
      Fmt.pr "  stripe %d: %s@." s
        (String.concat " "
           (Array.to_list
              (Array.map (fun c -> Printf.sprintf "%4d" (Memory.peek mem c)) st.accounts))))
    bank;
  if final <> expected || Engine.total_completed res <> n * transfers_per_process then exit 1
