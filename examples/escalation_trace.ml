(* Figures 2 and 3 of the paper, traced live: the execution flow through
   the recursive framework.  Without failures every process takes the fast
   path at level 1; under FAS-gap failures, processes spill over the
   splitter and escalate level by level — each level's filter must suffer
   its own unsafe failures for anyone to sink deeper (Theorem 5.17).

     dune exec examples/escalation_trace.exe *)

open Rme_sim

let run ~f =
  let crash =
    if f = 0 then Crash.none
    else Crash.fas_gap ~seed:11 ~rate:0.4 ~max_crashes:f ~cell_suffix:".tail" ()
  in
  let cs ~pid:_ = for _ = 1 to 6 do Api.yield () done in
  Harness.run_lock ~record:true ~cs ~n:16 ~model:Memory.CC
    ~sched:(Sched.random ~seed:5) ~crash ~requests:10
    ~make:(Rme.Spec.find_exn "ba-jjj").Rme.Spec.make ()

let paths_by_level res =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match ev with
      | Event.Note { note = Event.Path (level, fast); _ } ->
          let f, s = try Hashtbl.find tbl level with Not_found -> (0, 0) in
          Hashtbl.replace tbl level (if fast then (f + 1, s) else (f, s + 1))
      | _ -> ())
    res.Rme_sim.Engine.events;
  List.sort compare (Hashtbl.fold (fun l fs acc -> (l, fs) :: acc) tbl [])

let show ~f =
  let res = run ~f in
  Fmt.pr "--- F = %d unsafe failures ---@." f;
  List.iter
    (fun (level, (fast, slow)) ->
      Fmt.pr "  level %d: %4d fast-path entries, %4d diverted to the slow path@." level fast
        slow)
    (paths_by_level res);
  let lvl =
    Array.fold_left (fun acc (p : Engine.proc_stats) -> max acc p.max_level) 0 res.Engine.procs
  in
  Fmt.pr "  deepest level reached: %d; mutual exclusion: %s; all satisfied: %b@.@." lvl
    (match Rme.Check.Props.mutual_exclusion res with None -> "held" | Some m -> m)
    (Engine.total_completed res = 160)

let () =
  Fmt.pr "== Execution flow through the recursive framework (Figures 2-3) ==@.@.";
  List.iter (fun f -> show ~f) [ 0; 4; 16; 64 ];
  Fmt.pr "Escalating k processes past level l needs k unsafe failures of that@.";
  Fmt.pr "level's filter, so depth grows only as the square root of the failure@.";
  Fmt.pr "count - the mechanism behind the O(min{sqrt F, log n/log log n}) bound.@."
