(* Adaptivity under failure storms: sweep the number of recent unsafe
   failures F and watch the worst passage cost of each lock family —
   the semi-adaptive lock jumps to its core cost on the first failure,
   the non-adaptive base lock always pays its ceiling, and the paper's
   BA-Lock degrades gradually (O(min{sqrt F, T(n)})).

     dune exec examples/failure_storm.exe *)

let n = 32

let fs = [ 0; 1; 2; 4; 8; 16; 32; 64 ]

let measure key f =
  let open Rme.Workload in
  let scenario = if f = 0 then No_failures else Fas_storm { f; rate = 0.4 } in
  let cfg =
    { default_cfg with n; requests = 12; seed = 5; scenario; cs_yields = 6 }
  in
  measure (run_key key cfg)

let () =
  Fmt.pr "== Worst passage RMRs vs number of recent failures (n = %d) ==@.@." n;
  let keys = [ "ba-jjj"; "sa-bakery"; "jjj"; "bakery" ] in
  let header = "F" :: keys in
  let rows =
    List.map
      (fun f ->
        string_of_int f
        :: List.map
             (fun key ->
               let m = measure key f in
               Printf.sprintf "%.0f%s" m.Rme.Workload.max_rmr
                 (if m.Rme.Workload.max_level > 1 then
                    Printf.sprintf " (lvl %d)" m.Rme.Workload.max_level
                  else ""))
             keys)
      fs
  in
  Rme.Report.table ~header ~rows;
  Fmt.pr
    "@.ba-jjj grows gently with F (escalating one O(1) level per ~sqrt burst)@.\
     while the non-adaptive locks pay their full T(n) whether or not failures@.\
     occur, and sa-bakery falls off the O(1) fast path after a single unsafe@.\
     failure.@."
