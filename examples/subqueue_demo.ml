(* Figure 1 of the paper, reproduced live: eight processes append to the
   WR-Lock queue; the 4th and 7th appenders crash immediately after their
   FAS, before persisting the predecessor.  The queue splits into three
   sub-queues, reconstructed here from shared memory exactly as
   Proposition 4.1 describes.

     dune exec examples/subqueue_demo.exe *)

open Rme_sim
open Rme_locks

let () =
  Fmt.pr "== Figure 1: sub-queue formation after FAS-gap crashes ==@.@.";
  let crash =
    Crash.all
      [
        Crash.on_kind ~pid:4 ~kind:Api.Fas ~occurrence:0 Crash.After;
        Crash.on_kind ~pid:7 ~kind:Api.Fas ~occurrence:0 Crash.After;
      ]
  in
  let internals = ref None in
  let snapshot = ref None in
  let cs ~pid:_ = for _ = 1 to 80 do Api.yield () done in
  let res =
    Engine.run ~n:9 ~model:Memory.CC ~sched:(Sched.round_robin ()) ~crash
      ~setup:(fun ctx ->
        let t = Wr_lock.create ctx in
        internals := Some t;
        Wr_lock.lock t)
      ~body:(fun lock ~pid ->
        if pid = 8 then begin
          (* Observer process: snapshot shared memory once all appends and
             persists have happened, while the head still holds the lock. *)
          if !snapshot = None then begin
            for _ = 1 to 30 do Api.yield () done;
            snapshot := Some (Wr_lock.subqueues (Option.get !internals))
          end
        end
        else Harness.standard_body ~cs ~lock ~requests:1 pid)
      ()
  in
  let t = Option.get !internals in
  (match !snapshot with
  | None -> Fmt.pr "no snapshot?!@."
  | Some chains ->
      Fmt.pr "sub-queues reconstructed from shared memory at crash time:@.@.";
      List.iteri
        (fun i chain ->
          let cells =
            List.map
              (fun node -> Printf.sprintf "p%d" (Wr_lock.owner_of_node t node))
              chain
          in
          Fmt.pr "  queue %d:  %s%s@." (i + 1)
            (String.concat " -> " cells)
            (if i = List.length chains - 1 then "   <- tail" else ""))
        chains;
      Fmt.pr "@.%d sub-queues (the paper's figure shows 3: {p1 p2 p3}, {p4 p5 p6}, {p7 p8}).@."
        (List.length chains);
      Fmt.pr "The heads owned by the crash victims lost their predecessors: the@.";
      Fmt.pr "queue grew past their nodes, but the chains are disconnected.@.");
  Fmt.pr "@.After recovery: every request still satisfied = %b, crashes = %d@."
    (Engine.total_completed res = 8)
    res.Engine.total_crashes
