(* Bench harness: regenerates every table and figure of the paper (see
   DESIGN.md section 4 for the experiment index) from the simulator, then
   runs a Bechamel wall-clock suite over the same workloads.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table1     # one experiment
     (experiments: table1 table2 fig1 fig23 adaptivity batch reclaim
                   ablation branching scale space anatomy fairness
                   adversary explore gc sweep figures bechamel)

   Absolute numbers are simulator RMR counts, not hardware cycles; the
   claims under reproduction are the *shapes* (who is flat, who grows like
   sqrt F, where the ceilings sit). *)

open Rme_sim
open Rme_locks

let fmt_f x = Printf.sprintf "%.0f" x

(* Every BENCH_*.json opens with the same provenance header, so a result
   file always says what machine produced it. *)
let json_header buf experiment =
  Printf.bprintf buf "{\n  \"experiment\": %S,\n  \"host\": %s,\n" experiment
    (Rme_check.Metrics.host_json ())

(* With --csv DIR every printed table is also written as DIR/table_NN.csv. *)
let csv_dir = ref None

let csv_count = ref 0

let table ~header ~rows =
  Rme.Report.table ~header ~rows;
  match !csv_dir with
  | None -> ()
  | Some dir ->
      incr csv_count;
      let path = Filename.concat dir (Printf.sprintf "table_%02d.csv" !csv_count) in
      Rme.Report.write_csv ~path ~header ~rows;
      Fmt.pr "(csv: %s)@." path

let scenario_none = Rme.Workload.No_failures

let scenario_f f = Rme.Workload.Fas_storm { f; rate = 0.4 }

let cfg ?(n = 16) ?(requests = 12) ?(seed = 5) ?(model = Memory.CC) ?(cs_yields = 6) scenario =
  { Rme.Workload.default_cfg with n; requests; seed; model; scenario; cs_yields }

let measure key c = Rme.Workload.measure (Rme.Workload.run_key key c)

(* Worst passage RMRs averaged over three scheduler seeds (noise control for
   the growth-fitting of Table 2).  The averaging seeds are derived from the
   configured seed so that ablations varying [cfg.seed] actually resample
   the schedules. *)
let avg_max_rmr key c =
  let base = 3 * c.Rme.Workload.seed in
  let one k =
    (measure key { c with Rme.Workload.seed = base + k }).Rme.Workload.max_rmr
  in
  (one 1 +. one 2 +. one 3) /. 3.0

(* ------------------------------------------------------------------ *)
(* Table 1: RMR complexity under three failure scenarios               *)
(* ------------------------------------------------------------------ *)

let table1 () =
  Fmt.pr "@.=== Table 1: worst passage RMRs under three failure scenarios ===@.";
  Fmt.pr "(n = 16 and n = 64; F = 16 unsafe failures; storm = 64 crashes)@.@.";
  let keys = List.filter (fun (s : Rme.Spec.t) -> s.table1) Rme.Spec.all in
  List.iter
    (fun model ->
      Fmt.pr "--- %a model ---@." Memory.pp_model model;
      let row (s : Rme.Spec.t) =
        let m0 n = measure s.key (cfg ~n ~model scenario_none) in
        let mf n = measure s.key (cfg ~n ~model (scenario_f 16)) in
        let ms n =
          measure s.key (cfg ~n ~model (Rme.Workload.Random_storm { crashes = 64; rate = 0.01 }))
        in
        [
          s.key;
          s.expectation.Rme.Spec.failure_free;
          fmt_f (m0 16).Rme.Workload.max_rmr;
          fmt_f (m0 64).Rme.Workload.max_rmr;
          fmt_f (mf 16).Rme.Workload.max_rmr;
          fmt_f (mf 64).Rme.Workload.max_rmr;
          fmt_f (ms 16).Rme.Workload.max_rmr;
          fmt_f (ms 64).Rme.Workload.max_rmr;
        ]
      in
      table
        ~header:
          [
            "lock"; "expected (ff)"; "ff n=16"; "ff n=64"; "F=16 n=16"; "F=16 n=64";
            "storm n=16"; "storm n=64";
          ]
        ~rows:(List.map row keys);
      Fmt.pr "@.")
    [ Memory.CC; Memory.DSM ]

(* ------------------------------------------------------------------ *)
(* Table 2: performance-measure classification                          *)
(* ------------------------------------------------------------------ *)

let table2 () =
  Fmt.pr "@.=== Table 2: performance measures PM1-PM3 (measured) ===@.@.";
  let ns = [ 4; 8; 16; 32; 64 ] in
  let fs = [ 2; 4; 8; 16; 32; 64 ] in
  let keys = List.filter (fun (s : Rme.Spec.t) -> s.table1) Rme.Spec.all in
  let rows =
    List.map
      (fun (s : Rme.Spec.t) ->
        let ff = List.map (fun n -> (float_of_int n, avg_max_rmr s.key (cfg ~n scenario_none))) ns in
        let vf =
          List.map (fun f -> (float_of_int f, avg_max_rmr s.key (cfg ~n:32 (scenario_f f)))) fs
        in
        let limited =
          List.map (fun n -> (float_of_int n, avg_max_rmr s.key (cfg ~n (scenario_f 4)))) ns
        in
        let arb =
          List.map (fun n -> (float_of_int n, avg_max_rmr s.key (cfg ~n (scenario_f 64)))) ns
        in
        let c =
          Rme.Report.classify_lock ~failure_free_vs_n:ff ~rmr_vs_f:vf ~limited_vs_n:limited
            ~arbitrary_vs_n:arb
        in
        [
          s.key;
          Fmt.str "%a" Rme.Report.pp_growth (Rme.Report.classify ff);
          Fmt.str "%a" Rme.Report.pp_growth (Rme.Report.classify vf);
          Fmt.str "%a" Rme.Report.pp_growth (Rme.Report.classify arb);
          Rme.Report.adaptivity_name c;
          Rme.Report.boundedness_name c;
        ])
      keys
  in
  table
    ~header:[ "lock"; "ff vs n"; "rmr vs F"; "F=64 vs n"; "adaptivity"; "boundedness" ]
    ~rows;
  Fmt.pr
    "@.(paper's Table 2: BA-Lock is the only well-bounded super-adaptive RME@.\
     lock; wr is weakly recoverable and ramaraju needs a non-standard atomic@.\
     instruction, so those two rows sit outside the paper's comparison)@."

(* ------------------------------------------------------------------ *)
(* Figure 1: sub-queues                                                 *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  Fmt.pr "@.=== Figure 1: sub-queue formation in WR-Lock ===@.@.";
  let crash =
    Crash.all
      [
        Crash.on_kind ~pid:4 ~kind:Api.Fas ~occurrence:0 Crash.After;
        Crash.on_kind ~pid:7 ~kind:Api.Fas ~occurrence:0 Crash.After;
      ]
  in
  let internals = ref None in
  let snapshot = ref None in
  let cs ~pid:_ = for _ = 1 to 80 do Api.yield () done in
  let res =
    Engine.run ~n:9 ~model:Memory.CC ~sched:(Sched.round_robin ()) ~crash
      ~setup:(fun ctx ->
        let t = Wr_lock.create ctx in
        internals := Some t;
        Wr_lock.lock t)
      ~body:(fun lock ~pid ->
        if pid = 8 then begin
          if !snapshot = None then begin
            for _ = 1 to 30 do Api.yield () done;
            snapshot := Some (Wr_lock.subqueues (Option.get !internals))
          end
        end
        else Harness.standard_body ~cs ~lock ~requests:1 pid)
      ()
  in
  let t = Option.get !internals in
  (match !snapshot with
  | Some chains ->
      List.iteri
        (fun i chain ->
          Fmt.pr "  sub-queue %d: %s@." (i + 1)
            (String.concat " -> "
               (List.map (fun nd -> Printf.sprintf "p%d" (Wr_lock.owner_of_node t nd)) chain)))
        chains;
      Fmt.pr "  (%d sub-queues; paper's figure: 3)@." (List.length chains)
  | None -> Fmt.pr "  no snapshot@.");
  Fmt.pr "  all requests still satisfied afterwards: %b@." (Engine.total_completed res = 8)

(* ------------------------------------------------------------------ *)
(* Figures 2-3: framework flow / escalation funnel                      *)
(* ------------------------------------------------------------------ *)

let fig23 () =
  Fmt.pr "@.=== Figures 2-3: fast/slow path flow and level escalation ===@.@.";
  let funnel f =
    let c = { (cfg ~n:16 (if f = 0 then scenario_none else scenario_f f)) with record = true } in
    let res = Rme.Workload.run_key "ba-jjj" c in
    let tbl = Hashtbl.create 8 in
    List.iter
      (function
        | Event.Note { note = Event.Path (level, fast); _ } ->
            let fa, sl = try Hashtbl.find tbl level with Not_found -> (0, 0) in
            Hashtbl.replace tbl level (if fast then (fa + 1, sl) else (fa, sl + 1))
        | _ -> ())
      res.Engine.events;
    List.sort compare (Hashtbl.fold (fun l v acc -> (l, v) :: acc) tbl [])
  in
  List.iter
    (fun f ->
      Fmt.pr "  F = %-3d:" f;
      List.iter (fun (l, (fa, sl)) -> Fmt.pr "  L%d %d/%d" l fa sl) (funnel f);
      Fmt.pr "   (Lk fast/slow)@.")
    [ 0; 4; 16; 64 ]

(* ------------------------------------------------------------------ *)
(* Adaptivity: RMR vs F, the headline curve                             *)
(* ------------------------------------------------------------------ *)

let adaptivity () =
  Fmt.pr "@.=== Theorems 5.18/5.19: RMR vs F for BA-Lock (n = 32) ===@.";
  let fs = [ 1; 2; 4; 8; 16; 32; 64; 128 ] in
  let curve key =
    List.map
      (fun f ->
        ( float_of_int f,
          (measure key (cfg ~n:32 ~requests:12 (scenario_f f))).Rme.Workload.max_rmr ))
      fs
  in
  let ba = curve "ba-jjj" in
  Rme.Report.series ~title:"ba-jjj: worst passage RMRs vs F" ~xlabel:"F" ~ylabel:"max RMR" ba;
  Fmt.pr "@.fitted growth exponent of BA-Lock in F: %.2f (sqrt F would be 0.50)@."
    (Rme.Report.fit_exponent ba);
  let ceiling = (measure "jjj" (cfg ~n:32 scenario_none)).Rme.Workload.max_rmr in
  Fmt.pr "base-lock ceiling (jjj, n = 32): %.0f — BA stays below min{sqrt F, T(n)} + O(levels)@."
    ceiling;
  Fmt.pr "@.max level vs F (Theorem 5.17: level <= 1 + sqrt(2F)):@.";
  List.iter
    (fun f ->
      let m = measure "ba-jjj" (cfg ~n:32 ~requests:12 (scenario_f f)) in
      let bound = 1.0 +. Float.ceil (sqrt (2.0 *. float_of_int f)) in
      Fmt.pr "  F=%-4d level=%d (bound %.0f)@." f m.Rme.Workload.max_level bound)
    fs

(* ------------------------------------------------------------------ *)
(* Batch failures (§7.1)                                                *)
(* ------------------------------------------------------------------ *)

let batch () =
  Fmt.pr "@.=== §7.1: batch failures vs individual failures (n = 16) ===@.@.";
  let run_scenario scenario =
    measure "ba-jjj" (cfg ~n:16 ~requests:12 scenario)
  in
  let rows =
    List.map
      (fun (label, scenario) ->
        let m = run_scenario scenario in
        [
          label;
          string_of_int m.Rme.Workload.crashes;
          fmt_f m.Rme.Workload.max_rmr;
          string_of_int m.Rme.Workload.max_level;
          string_of_bool m.Rme.Workload.satisfied;
        ])
      [
        ("no failures", scenario_none);
        ("1 batch of 16 (system-wide)", Rme.Workload.Batch { size = 16; at_step = 400; repeat = 1; gap = 0 });
        ("4 batches of 16", Rme.Workload.Batch { size = 16; at_step = 400; repeat = 4; gap = 1500 });
        ("16 individual unsafe failures", scenario_f 16);
        ("64 individual unsafe failures", scenario_f 64);
      ]
  in
  table ~header:[ "scenario"; "crashes"; "max RMR"; "max level"; "satisfied" ] ~rows;
  Fmt.pr
    "@.(Corollary 7.2: cost O(min{Fb + sqrt F, log n/log log n}) — batches are@.\
     absorbed with far less escalation than the same number of unsafe failures)@."

(* ------------------------------------------------------------------ *)
(* Memory reclamation (§7.2)                                            *)
(* ------------------------------------------------------------------ *)

let reclaim () =
  Fmt.pr "@.=== §7.2: node allocation, unbounded vs reclaimed (n = 6) ===@.@.";
  let count key requests =
    let reg = ref None in
    let res =
      Engine.run ~n:6 ~model:Memory.CC ~sched:(Sched.random ~seed:3)
        ~crash:(Crash.random ~seed:4 ~rate:0.002 ~max_crashes:8 ())
        ~setup:(fun ctx ->
          match key with
          | `Fresh ->
              let t = Wr_lock.create ctx in
              reg := Some (Wr_lock.registry t);
              Wr_lock.lock t
          | `Pooled ->
              let r = Reclaim.create ctx in
              let t =
                Wr_lock.create ~name:"wrr" ~alloc:(Reclaim.alloc r)
                  ~retire:(fun ~pid -> Reclaim.retire r ~pid)
                  ctx
              in
              reg := Some (Wr_lock.registry t);
              Wr_lock.lock t)
        ~body:(fun lock ~pid -> Harness.standard_body ~lock ~requests pid)
        ()
    in
    (Nodes.count (Option.get !reg), Engine.total_completed res)
  in
  let rows =
    List.concat_map
      (fun requests ->
        let fresh, _ = count `Fresh requests in
        let pooled, _ = count `Pooled requests in
        [
          [
            string_of_int (6 * requests);
            string_of_int fresh;
            string_of_int pooled;
            "4n^2 = 144";
          ];
        ])
      [ 10; 40; 160 ]
  in
  table ~header:[ "requests"; "nodes (fresh alloc)"; "nodes (pooled)"; "bound" ] ~rows;
  Fmt.pr "@.(space per lock is bounded by two pools of 2n nodes per process)@."

(* ------------------------------------------------------------------ *)
(* §7.3 ablation: last-known-level restart                              *)
(* ------------------------------------------------------------------ *)

let ablation () =
  Fmt.pr "@.=== §7.3: restart from last known level (ablation) ===@.@.";
  let run key =
    let crash =
      Crash.all
        [
          Crash.fas_gap ~seed:2 ~rate:0.4 ~max_crashes:24 ~cell_suffix:".tail" ();
          (* a crash-prone victim that keeps failing inside its super-passage *)
          Crash.random ~seed:3 ~rate:0.01 ~max_crashes:12 ~pids:[ 1 ] ();
        ]
    in
    let res =
      Harness.run_lock
        ~cs:(fun ~pid:_ -> for _ = 1 to 6 do Api.yield () done)
        ~n:16 ~model:Memory.CC ~sched:(Sched.random ~seed:4) ~crash ~requests:10
        ~make:(Rme.Spec.find_exn key).Rme.Spec.make ()
    in
    (Engine.max_rmr_super res, Engine.avg_rmr_super res, Engine.total_completed res)
  in
  let m1, a1, c1 = run "ba-jjj" in
  let m2, a2, c2 = run "ba-jjj-tracked" in
  table
    ~header:[ "variant"; "max RMR/super-passage"; "avg RMR/super-passage"; "completed" ]
    ~rows:
      [
        [ "ba-jjj (re-walk levels)"; string_of_int m1; Printf.sprintf "%.1f" a1; string_of_int c1 ];
        [ "ba-jjj-tracked (§7.3)"; string_of_int m2; Printf.sprintf "%.1f" a2; string_of_int c2 ];
      ];
  Fmt.pr "@.(tracking turns O(F0 * sqrt F) super-passages into O(F0 + sqrt F))@."

(* ------------------------------------------------------------------ *)
(* Ablation: branching factor of the arbitration tree                   *)
(* ------------------------------------------------------------------ *)

let branching () =
  Fmt.pr "@.=== Ablation: branching factor k of the base-lock tree (n = 64) ===@.@.";
  let rows =
    List.map
      (fun k ->
        let make ctx = Rme_locks.Jjj_tree.make_named ~k ~name:(Printf.sprintf "jjj-k%d" k) ctx in
        let res =
          Harness.run_lock ~n:64 ~model:Memory.CC ~sched:(Sched.random ~seed:5)
            ~crash:Crash.none ~requests:6 ~make ()
        in
        [
          string_of_int k;
          string_of_int (Engine.max_rmr res);
          Printf.sprintf "%.1f" (Engine.avg_rmr res);
        ])
      [ 2; 3; 4; 8; 16 ]
  in
  table ~header:[ "k"; "max RMR"; "avg RMR" ] ~rows;
  Fmt.pr
    "@.(k = 2 degenerates to the binary tournament.  In our kport substitution@.\
     (DESIGN.md S1) the per-node cost is k-independent because the atomic@.\
     FAS-and-persist makes recovery O(1), so larger k helps monotonically;@.\
     the real JJJ k-port lock pays O(k) on recovery, which is why the paper@.\
     balances the tree at k = ceil(log n / log log n) = %d.)@."
    (Rme_locks.Jjj_tree.branching_for 64)

(* ------------------------------------------------------------------ *)
(* Scale: the sub-logarithmic separation at large n                     *)
(* ------------------------------------------------------------------ *)

let scale () =
  Fmt.pr "@.=== Scale: tournament O(log n) vs jjj O(log n/log log n) ===@.@.";
  let ns = [ 16; 64; 256; 1024 ] in
  let row key =
    key
    :: List.map
         (fun n ->
           let res =
             Harness.run_lock ~n ~model:Memory.CC ~sched:(Sched.random ~seed:5)
               ~crash:Crash.none ~requests:4
               ~make:(Rme.Spec.find_exn key).Rme.Spec.make ~max_steps:20_000_000 ()
           in
           string_of_int (Engine.max_rmr res))
         ns
  in
  table
    ~header:("lock" :: List.map (fun n -> Printf.sprintf "n=%d" n) ns)
    ~rows:[ row "tournament"; row "jjj"; row "ba-jjj"; row "wr" ];
  Fmt.pr "@.(depths at n=1024: tournament %d, jjj %d)@."
    (Rme_locks.Tournament.levels_for 1024)
    (Rme_locks.Jjj_tree.depth_for 1024)

(* ------------------------------------------------------------------ *)
(* Space: shared cells per lock instance                                 *)
(* ------------------------------------------------------------------ *)

let space () =
  Fmt.pr "@.=== Space: shared-memory cells per lock (static + after a run) ===@.@.";
  let ns = [ 4; 16; 64 ] in
  let cells key n =
    let memr = ref None in
    let (_ : Engine.result) =
      Engine.run ~n ~model:Memory.CC ~sched:(Sched.random ~seed:3) ~crash:Crash.none
        ~setup:(fun ctx ->
          let mem = Engine.Ctx.memory ctx in
          let lock = (Rme.Spec.find_exn key).Rme.Spec.make ctx in
          memr := Some (mem, Memory.cell_count mem);
          lock)
        ~body:(fun lock ~pid -> Harness.standard_body ~lock ~requests:6 pid)
        ()
    in
    let mem, static = Option.get !memr in
    (static, Memory.cell_count mem)
  in
  let rows =
    List.map
      (fun key ->
        key
        :: List.concat_map
             (fun n ->
               let s, d = cells key n in
               [ string_of_int s; string_of_int d ])
             ns)
      [ "wr"; "wr-reclaim"; "tournament"; "jjj"; "ba-jjj" ]
  in
  table
    ~header:
      ("lock"
      :: List.concat_map (fun n -> [ Printf.sprintf "static n=%d" n; "after run" ]) ns)
    ~rows;
  Fmt.pr
    "@.(wr allocates fresh nodes per request — unbounded growth; wr-reclaim@.\
     caps at the 4n^2-node pools plus O(n^2) reclamation metadata, the@.\
     O(n^2 T(n)) bound of section 7.2 once stacked across BA's levels)@."

(* ------------------------------------------------------------------ *)
(* Anatomy: where the RMRs come from                                    *)
(* ------------------------------------------------------------------ *)

let anatomy () =
  Fmt.pr "@.=== Anatomy: RMRs by instruction kind (n = 16, failure-free) ===@.@.";
  let kinds = Api.[ Read; Write; Cas; Fas; Faa; Spin ] in
  let rows =
    List.map
      (fun key ->
        let res = Rme.Workload.run_key key (cfg ~n:16 ~requests:8 scenario_none) in
        let pct kind =
          match List.assoc_opt kind res.Engine.rmr_by_kind with
          | Some v -> Printf.sprintf "%d%%" (100 * v / max 1 res.Engine.total_rmr)
          | None -> "-"
        in
        (key :: string_of_int res.Engine.total_rmr :: List.map pct kinds))
      [ "wr"; "tas"; "bakery"; "tournament"; "jjj"; "ba-jjj" ]
  in
  table
    ~header:
      ([ "lock"; "total" ]
      @ List.map (fun k -> Fmt.str "%a" Api.pp_kind k) kinds)
    ~rows;
  Fmt.pr
    "@.(the queue locks pay mostly writes + one FAS per passage; bakery is@.\
     read-dominated scans; tas burns spin refetches under contention)@."

(* ------------------------------------------------------------------ *)
(* Fairness: passage latency distribution                               *)
(* ------------------------------------------------------------------ *)

let fairness () =
  Fmt.pr "@.=== Fairness: passage latency (engine steps), n = 16 ===@.@.";
  let row key scenario label =
    let res = Rme.Workload.run_key key (cfg ~n:16 ~requests:12 scenario) in
    let m = Rme.Workload.measure res in
    let ls = Engine.latencies res in
    [
      key;
      label;
      string_of_int (Engine.percentile ls 0.5);
      string_of_int (Engine.percentile ls 0.9);
      string_of_int (Engine.percentile ls 0.99);
      string_of_int (Engine.percentile ls 1.0);
      Printf.sprintf "%.1f" m.Rme.Workload.throughput;
    ]
  in
  table
    ~header:[ "lock"; "scenario"; "p50"; "p90"; "p99"; "max"; "req/kstep" ]
    ~rows:
      (List.concat_map
         (fun key -> [ row key scenario_none "ff"; row key (scenario_f 16) "F=16" ])
         [ "wr"; "tournament"; "jjj"; "sa-bakery"; "ba-jjj" ]);
  Fmt.pr
    "@.(WR-Lock and the queue-based trees hand over FCFS-ish: tight latency@.\
     tails; failures add recovery detours but the BA tail stays bounded)@."

(* ------------------------------------------------------------------ *)
(* Figures: SVG renderings of the headline curves                       *)
(* ------------------------------------------------------------------ *)

let figures () =
  let dir = "figures" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Fmt.pr "@.=== Writing SVG figures to %s/ ===@.@." dir;
  let fs = [ 1; 2; 4; 8; 16; 32; 64; 128 ] in
  let curve key =
    {
      Rme.Svg_chart.label = key;
      points =
        List.map
          (fun f ->
            ( float_of_int f,
              (measure key (cfg ~n:32 ~requests:12 (scenario_f f))).Rme.Workload.max_rmr ))
          fs;
    }
  in
  Rme.Svg_chart.write
    ~path:(Filename.concat dir "adaptivity.svg")
    ~log_x:true ~title:"Worst passage RMRs vs F (n = 32)" ~xlabel:"F (unsafe failures)"
    ~ylabel:"max RMR"
    [ curve "ba-jjj"; curve "sa-bakery"; curve "jjj" ];
  Fmt.pr "  figures/adaptivity.svg@.";
  let ns = [ 4; 8; 16; 32; 64; 128; 256 ] in
  let scale_curve key =
    {
      Rme.Svg_chart.label = key;
      points =
        List.map
          (fun n ->
            let res =
              Harness.run_lock ~n ~model:Memory.CC ~sched:(Sched.random ~seed:5)
                ~crash:Crash.none ~requests:4
                ~make:(Rme.Spec.find_exn key).Rme.Spec.make ~max_steps:20_000_000 ()
            in
            (float_of_int n, float_of_int (Engine.max_rmr res)))
          ns;
    }
  in
  Rme.Svg_chart.write
    ~path:(Filename.concat dir "scale.svg")
    ~log_x:true ~title:"Failure-free worst passage RMRs vs n" ~xlabel:"n (processes)"
    ~ylabel:"max RMR"
    [ scale_curve "tournament"; scale_curve "jjj"; scale_curve "ba-jjj"; scale_curve "wr" ];
  Fmt.pr "  figures/scale.svg@."

(* ------------------------------------------------------------------ *)
(* Adversarial probing: search for worst-case passages                  *)
(* ------------------------------------------------------------------ *)

let adversary () =
  Fmt.pr "@.=== Adversarial probe: hill-climbing crash plans against ba-jjj ===@.@.";
  let n = 8 and requests = 8 in
  let rng = Random.State.make [| 0xadbe |] in
  let eval plan_tuples =
    let crash =
      Crash.all
        (List.map
           (fun (pid, nth, after) ->
             Crash.at_op ~pid ~nth (if after then Crash.After else Crash.Before))
           plan_tuples)
    in
    let res =
      Harness.run_lock
        ~cs:(fun ~pid:_ -> for _ = 1 to 6 do Api.yield () done)
        ~n ~model:Memory.CC ~sched:(Sched.random ~seed:5) ~crash ~requests
        ~make:(Rme.Spec.find_exn "ba-jjj").Rme.Spec.make ~max_steps:3_000_000 ()
    in
    if Rme.Check.Props.all_satisfied res ~n ~requests && res.Engine.cs_max <= 1 then
      Engine.max_rmr res
    else -1 (* liveness or safety violation would be a bug, not a score *)
  in
  let random_tuple () =
    (Random.State.int rng n, Random.State.int rng 400, Random.State.bool rng)
  in
  let mutate plan =
    match (plan, Random.State.int rng 3) with
    | [], _ | _, 0 -> random_tuple () :: plan
    | _ :: rest, 1 -> random_tuple () :: rest
    | p, _ -> List.tl p
  in
  let best_plan = ref [] in
  let best = ref (eval []) in
  let violations = ref 0 in
  for _restart = 1 to 6 do
    let plan = ref [ random_tuple () ] in
    for _step = 1 to 40 do
      let candidate = mutate !plan in
      let score = eval candidate in
      if score < 0 then incr violations;
      if score > !best then begin
        best := score;
        best_plan := candidate;
        plan := candidate
      end
      else if score >= eval !plan then plan := candidate
    done
  done;
  Fmt.pr "baseline (no crashes):    %d RMRs@." (eval []);
  Fmt.pr "worst found (%d crashes): %d RMRs@." (List.length !best_plan) !best;
  Fmt.pr "safety/liveness failures during the search: %d (must be 0)@." !violations;
  let levels = Rme_locks.Tournament.levels_for n in
  Fmt.pr "theory ceiling: O(levels + base) with %d levels — the adversary cannot@." levels;
  Fmt.pr "push a passage past the recursion depth no matter where it crashes.@.";
  if !violations > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* Parallel explorer throughput                                         *)
(* ------------------------------------------------------------------ *)

let explore_bench () =
  Fmt.pr "@.=== Explorer throughput: sequential DFS vs checkpointed parallel search ===@.@.";
  (* Three processes, two WR-Lock requests each: a schedule tree far larger
     than the budget, so every configuration visits exactly [max_runs] runs
     and the wall-clock ratio measures the work done per run.  POR is off
     on purpose — this section isolates the engine, not the pruning.  The
     parallel rows resume every subtree from the nearest engine checkpoint
     instead of replaying its decision prefix live, so they do strictly
     less work per run than the sequential DFS; that algorithmic saving is
     what the speedup column certifies, which is why it already shows up
     at domains=1 and survives on single-core hosts (where Pool clamps the
     worker count to the hardware and domain parallelism contributes
     nothing). *)
  let check res =
    if res.Engine.cs_max > 1 then Some "ME violation"
    else if res.Engine.deadlocked then Some "deadlock"
    else None
  in
  let body lock ~pid = Rme_sim.Harness.standard_body ~lock ~requests:2 pid in
  let crash () = Crash.none in
  let max_runs = 4_000 in
  let run_case ?stats = function
    | None ->
        Rme_check.Explore.explore ?stats ~por:`Off ~max_runs ~max_steps:4_000
          ~shrink_violations:false ~n:3 ~model:Memory.CC ~crash ~setup:Wr_lock.make ~body ~check
          ()
    | Some domains ->
        Rme_check.Explore.explore_parallel ?stats ~por:`Off ~snap_gap:8 ~domains ~max_runs
          ~max_steps:4_000 ~shrink_violations:false ~n:3 ~model:Memory.CC ~crash
          ~setup:Wr_lock.make ~body ~check ()
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let divergence = ref false in
  (* Warm up allocators/code paths, and fix the reference outcome every
     configuration must reproduce byte-for-byte. *)
  let ref_stats = ref None in
  let reference = run_case ~stats:(fun s -> ref_stats := Some s) None in
  (match !ref_stats with
  | Some s -> Fmt.pr "search effort (sequential): %a@.@." Rme_check.Explore.pp_search_stats s
  | None -> ());
  let cases =
    [ ("sequential", None); ("domains=1", Some 1); ("domains=2", Some 2); ("domains=4", Some 4) ]
  in
  (* Wall-clock noise on shared runners dwarfs the effect under test (the
     same binary's sequential baseline has been observed drifting 30%
     between back-to-back runs), so every round re-times every case and
     each case keeps its best round: the ratio of two minima is far more
     stable than any single reading. *)
  let rounds = 7 in
  let best = Array.make (List.length cases) infinity in
  for _ = 1 to rounds do
    List.iteri
      (fun i (label, domains) ->
        let o, dt = time (fun () -> run_case domains) in
        if dt < best.(i) then best.(i) <- dt;
        if o <> reference then begin
          divergence := true;
          Fmt.pr "DIVERGENCE on %s:@.  expected: %a@.  got:      %a@." label
            Rme_check.Explore.pp_outcome reference Rme_check.Explore.pp_outcome o
        end)
      cases
  done;
  let throughput =
    List.mapi
      (fun i (label, _) ->
        let dt = best.(i) in
        ( label,
          reference.Rme_check.Explore.runs,
          dt,
          float_of_int reference.Rme_check.Explore.runs /. dt,
          best.(0) /. dt ))
      cases
  in
  table
    ~header:[ "explorer"; "runs"; "best of 7"; "runs/s"; "speedup" ]
    ~rows:
      (List.map
         (fun (label, runs, dt, rate, speedup) ->
           [
             label;
             string_of_int runs;
             Printf.sprintf "%.3f s" dt;
             Printf.sprintf "%.0f" rate;
             Printf.sprintf "%.2fx" speedup;
           ])
         throughput);
  Fmt.pr "@.(same schedule tree, same budget, byte-identical outcomes; the parallel@.\
          explorer splits the frontier into tasks, restarts each subtree from the@.\
          nearest checkpoint, and work-steals across domains — the speedup is@.\
          algorithmic, from replay avoided, so it holds at every domain count)@.";
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "@.hardware parallelism: %d@." cores;
  if cores < 2 then
    Fmt.pr "NOTE: single-core host — Pool clamps spawned workers to the hardware@.\
            (oversubscribed OCaml domains only add stop-the-world GC barriers), so@.\
            all rows above run one worker and the speedup is checkpointing alone;@.\
            domain parallelism adds its factor on multi-core machines.@.";
  let speedup_at label =
    List.fold_left (fun acc (l, _, _, _, s) -> if l = label then s else acc) 0.0 throughput
  in
  let gate_fail = speedup_at "domains=2" < 1.0 in
  if gate_fail then
    Fmt.pr "@.FAIL: domains=2 is slower than the sequential explorer (%.2fx < 1.00x)@."
      (speedup_at "domains=2");
  (* --- partial-order reduction: `Off vs `Sleep vs `Source ----------- *)
  Fmt.pr "@.=== POR tiers: plain vs sleep sets vs source-set DPOR ===@.@.";
  (* Three-way A/B.  Where a search can finish (exhaust or stop at a
     violation) its outcome is compared against every other tier that also
     finished; divergence is only declared where a comparison is
     conclusive — differing violations, or a violation / non-exhaustion
     that another tier's completed search rules out.  The headline
     reduction factor compares `Source against the best tier that actually
     exhausted: the plain search where it can finish at all, else the
     sleep-set search, else (as a 4x-budget lower bound) the truncated
     plain search. *)
  let divergence = ref false in
  let overhead_fail = ref false in
  let reduction_case (name, run_one, por_cap) =
    let source, source_dt = time (fun () -> run_one ~por:`Source ~max_runs:por_cap) in
    let sleep, sleep_dt = time (fun () -> run_one ~por:`Sleep ~max_runs:por_cap) in
    let plain_cap =
      if source.Rme_check.Explore.exhausted || sleep.Rme_check.Explore.exhausted then
        max (4 * max source.Rme_check.Explore.runs sleep.Rme_check.Explore.runs) 10_000
      else por_cap
    in
    let plain, plain_dt = time (fun () -> run_one ~por:`Off ~max_runs:plain_cap) in
    (* Pairwise verdict comparison: [conclusive, identical]. *)
    (* [witness]: compare the full violation including the shrunk witness
       (off vs sleep, strict preorder on both sides); pairs involving
       `Source compare the message only — the demand-driven order may
       surface a different witness of the same failure (explore.mli). *)
    let compare_pair ~witness (p : Rme_check.Explore.outcome) (q : Rme_check.Explore.outcome) =
      match (p.Rme_check.Explore.violation, q.Rme_check.Explore.violation) with
      | Some pv, Some qv -> (true, if witness then pv = qv else fst pv = fst qv)
      | None, Some _ -> (p.Rme_check.Explore.exhausted, not p.Rme_check.Explore.exhausted)
      | Some _, None -> (q.Rme_check.Explore.exhausted, not q.Rme_check.Explore.exhausted)
      | None, None ->
          if p.Rme_check.Explore.exhausted || q.Rme_check.Explore.exhausted then (true, true)
          else (false, false)
    in
    let pairs =
      [
        ("off/source", false, plain, source);
        ("sleep/source", false, sleep, source);
        ("off/sleep", true, plain, sleep);
      ]
    in
    let identical = ref true in
    let any_conclusive = ref false in
    List.iter
      (fun (pair, witness, p, q) ->
        let conclusive, same = compare_pair ~witness p q in
        if conclusive then any_conclusive := true;
        if conclusive && not same then begin
          identical := false;
          divergence := true;
          Fmt.pr "DIVERGENCE on %s (%s):@.  %a@.  vs %a@." name pair
            Rme_check.Explore.pp_outcome p Rme_check.Explore.pp_outcome q
        end)
      pairs;
    if not !any_conclusive then
      Fmt.pr "WARNING: %s is inconclusive — no tier finished within its budget.@." name;
    (* Reduced tiers pay footprint collection per run; on unreduced
       subjects (equal run counts) that overhead must stay under 10% —
       the root probe keeps the first, often decisive, run
       footprint-free.  Violation-stopped rows are exempt: there the
       whole search is a handful of instrumented runs (wr-gap-me-n3:
       83 runs, ~10 ms), below any stable noise floor, and the probe
       already removes the cost entirely when the default schedule
       itself violates. *)
    if
      source.Rme_check.Explore.runs = plain.Rme_check.Explore.runs
      && plain.Rme_check.Explore.violation = None
      && plain_dt > 0.02
      && source_dt > 1.1 *. plain_dt
    then begin
      overhead_fail := true;
      Fmt.pr "OVERHEAD on %s: source %.4fs vs plain %.4fs at equal runs (> 10%%)@." name source_dt
        plain_dt
    end;
    let baseline, baseline_runs, baseline_exhausted =
      if plain.Rme_check.Explore.exhausted then ("off", plain.Rme_check.Explore.runs, true)
      else if sleep.Rme_check.Explore.exhausted then ("sleep", sleep.Rme_check.Explore.runs, true)
      else ("off", plain.Rme_check.Explore.runs, false)
    in
    let factor =
      float_of_int baseline_runs /. float_of_int (max 1 source.Rme_check.Explore.runs)
    in
    ( name,
      plain.Rme_check.Explore.runs,
      sleep.Rme_check.Explore.runs,
      source.Rme_check.Explore.runs,
      plain_dt,
      sleep_dt,
      source_dt,
      factor,
      baseline,
      (not baseline_exhausted) && source.Rme_check.Explore.exhausted,
      !identical,
      source.Rme_check.Explore.exhausted )
  in
  (* Splitter one-shot: the only real-lock tree small enough for the plain
     search to enumerate completely — the exact-factor, both-exhausted
     case. *)
  let splitter_body sp ~pid =
    Api.note (Rme_sim.Event.Seg Rme_sim.Event.Req_begin);
    (if Rme_locks.Splitter.try_fast sp ~pid then begin
       Api.note (Rme_sim.Event.Seg Rme_sim.Event.Cs_begin);
       Api.yield ();
       Api.note (Rme_sim.Event.Seg Rme_sim.Event.Cs_end);
       Rme_locks.Splitter.release sp ~pid
     end);
    Api.note (Rme_sim.Event.Seg Rme_sim.Event.Req_done)
  in
  let splitter ~por ~max_runs =
    Rme_check.Explore.explore ~por ~max_runs ~max_steps:4_000 ~n:2 ~model:Memory.CC ~crash
      ~setup:Rme_locks.Splitter.create ~body:splitter_body ~check ()
  in
  (* WR-Lock ME at n=2 / SA stack (sa-jjj) ME at n=2: POR exhausts trees the
     plain search provably cannot cover in 4x the runs.  One request per
     process — the two-request throughput subject above has a tree too deep
     for even the reduced search to exhaust. *)
  let body_one lock ~pid = Rme_sim.Harness.standard_body ~lock ~requests:1 pid in
  let wr_n2 ~por ~max_runs =
    Rme_check.Explore.explore ~por ~max_runs ~max_steps:4_000 ~shrink_violations:false ~n:2
      ~model:Memory.CC ~crash ~setup:Wr_lock.make ~body:body_one ~check ()
  in
  let sa_n2 ~por ~max_runs =
    let make = (Rme.Spec.find_exn "sa-jjj").Rme.Spec.make in
    Rme_check.Explore.explore ~por ~max_runs ~max_steps:20_000 ~shrink_violations:false ~n:2
      ~model:Memory.CC ~crash ~setup:make ~body:body_one ~check ()
  in
  (* SA stack ME at n=3: the acceptance subject — beyond both the plain
     and the sleep-set search, exhausted only by source-set DPOR with
     state caching.  The arrival order is handoff-chained (each process
     may start its request once its predecessor reaches Cs_end), so the
     explored concurrency is the acquire-vs-release handoff race at
     every link of the n=3 structure; the unconstrained 3-way tree is
     beyond any tier (measured > 5M classes).  Mutual exclusion is
     checked across all three processes. *)
  let sa_n3 ~por ~max_runs =
    let make = (Rme.Spec.find_exn "sa-jjj").Rme.Spec.make in
    Rme_check.Explore.explore ~por ~max_runs ~max_steps:20_000 ~shrink_violations:false ~n:3
      ~model:Memory.CC ~crash
      ~setup:(fun ctx ->
        let gate = Memory.alloc (Engine.Ctx.memory ctx) ~name:"gate" 0 in
        (make ctx, gate))
      ~body:(fun (lock, gate) ~pid ->
        if Api.completed_requests () < 1 then begin
          if pid > 0 then Api.spin_until gate (Api.Eq pid);
          Api.note (Rme_sim.Event.Seg Rme_sim.Event.Req_begin);
          lock.Rme_locks.Lock.acquire ~pid;
          Api.note (Rme_sim.Event.Seg Rme_sim.Event.Cs_begin);
          Api.note (Rme_sim.Event.Seg Rme_sim.Event.Cs_end);
          Api.write gate (pid + 1);
          lock.Rme_locks.Lock.release ~pid;
          Api.note (Rme_sim.Event.Seg Rme_sim.Event.Req_done)
        end)
      ~check ()
  in
  (* WR-Lock ME at n=3 around the unsafe FAS gap (the Figure 1 scenario,
     staged as in the explorer tests): both searches stop at the identical
     first violation in DFS preorder with the identical shrunk witness. *)
  let wr_gap_setup ctx =
    let gate = Memory.alloc (Engine.Ctx.memory ctx) ~name:"gate" 0 in
    (Wr_lock.make ctx, gate)
  in
  let wr_gap_body (lock, gate) ~pid =
    if pid = 0 then begin
      for _ = 1 to 3 do
        Api.yield ()
      done;
      Api.write gate 1
    end
    else begin
      let cs ~pid = if pid = 1 then Api.spin_until gate (Api.Eq 1) in
      Rme_sim.Harness.standard_body ~cs ~lock ~requests:1 pid
    end
  in
  let wr_gap ~por ~max_runs =
    Rme_check.Explore.explore ~por ~max_runs ~max_steps:4_000 ~n:3 ~model:Memory.CC
      ~crash:(fun () -> Crash.on_kind ~pid:2 ~kind:Api.Fas ~occurrence:0 Crash.After)
      ~setup:wr_gap_setup ~body:wr_gap_body
      ~check:(fun res -> if res.Engine.cs_max > 1 then Some "ME violation" else None)
      ()
  in
  let reductions =
    List.map reduction_case
      [
        ("splitter-me-n2", splitter, 200_000);
        ("wr-me-n2", wr_n2, 200_000);
        ("wr-gap-me-n3", wr_gap, 200_000);
        ("sa-me-n2", sa_n2, 200_000);
        ("sa-me-n3", sa_n3, 400_000);
      ]
  in
  table
    ~header:
      [ "subject"; "plain"; "sleep"; "source"; "reduction"; "base"; "t plain"; "t src"; "identical" ]
    ~rows:
      (List.map
         (fun ( name,
                plain_runs,
                sleep_runs,
                source_runs,
                plain_dt,
                _sleep_dt,
                source_dt,
                factor,
                baseline,
                lower_bound,
                identical,
                _exh ) ->
           [
             name;
             string_of_int plain_runs;
             string_of_int sleep_runs;
             string_of_int source_runs;
             Printf.sprintf "%s%.2fx" (if lower_bound then ">= " else "") factor;
             baseline;
             Printf.sprintf "%.3f s" plain_dt;
             Printf.sprintf "%.3f s" source_dt;
             string_of_bool identical;
           ])
         reductions);
  Fmt.pr "@.(identical = every conclusive tier pair agrees: same first violation and@.\
          shrunk witness, or same clean exhaustion — a truncated clean search is@.\
          compatible with an exhausted clean one; 'reduction' compares `Source@.\
          against the named baseline, the best tier that exhausted, and '>=' marks@.\
          subjects where no baseline tier exhausted within 4x the source runs, so@.\
          the true factor is larger)@.";
  (* Machine-readable trajectory point, same shape as the sweep/chaos
     experiments: throughput cases plus the POR reduction factors. *)
  let path = "BENCH_explore.json" in
  let buf = Buffer.create 1024 in
  json_header buf "explore";
  (match !ref_stats with
  | Some s ->
      Printf.bprintf buf
        "  \"search_stats\": {\"engine_runs\": %d, \"engine_steps\": %d, \"cache_hits\": %d, \
         \"cache_misses\": %d, \"cache_evictions\": %d},\n"
        s.Rme_check.Explore.engine_runs s.Rme_check.Explore.engine_steps
        s.Rme_check.Explore.cache_hits s.Rme_check.Explore.cache_misses
        s.Rme_check.Explore.cache_evictions
  | None -> ());
  Buffer.add_string buf "  \"throughput\": [\n";
  List.iteri
    (fun i (label, runs, dt, rate, speedup) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"explorer\": %S, \"runs\": %d, \"seconds\": %.4f, \"runs_per_sec\": %.2f, \
            \"speedup\": %.3f}%s\n"
           label runs dt rate speedup
           (if i = List.length throughput - 1 then "" else ",")))
    throughput;
  Buffer.add_string buf "  ],\n  \"reduction\": [\n";
  List.iteri
    (fun i
         ( name,
           plain_runs,
           sleep_runs,
           source_runs,
           plain_dt,
           sleep_dt,
           source_dt,
           factor,
           baseline,
           lower_bound,
           identical,
           source_exhausted ) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"subject\": %S, \"plain_runs\": %d, \"sleep_runs\": %d, \"por_runs\": %d, \
            \"reduction_factor\": %.3f, \"baseline\": %S, \"factor_is_lower_bound\": %b, \
            \"plain_seconds\": %.4f, \"sleep_seconds\": %.4f, \"por_seconds\": %.4f, \
            \"source_exhausted\": %b, \"identical_outcome\": %b}%s\n"
           name plain_runs sleep_runs source_runs factor baseline lower_bound plain_dt sleep_dt
           source_dt source_exhausted identical
           (if i = List.length reductions - 1 then "" else ",")))
    reductions;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (Buffer.contents buf));
  Fmt.pr "@.(json: %s)@." path;
  (* Acceptance gates: the SA stack must exhaust under `Source at n=2
     (exact factor, not a lower bound) and at n=3, and the splitter must
     keep its measured reduction. *)
  let row name =
    List.find (fun (n, _, _, _, _, _, _, _, _, _, _, _) -> n = name) reductions
  in
  let exhausted_of (_, _, _, _, _, _, _, _, _, _, _, e) = e in
  let factor_of (_, _, _, _, _, _, _, f, _, _, _, _) = f in
  let lower_of (_, _, _, _, _, _, _, _, _, lb, _, _) = lb in
  let gate ok msg = if not ok then (Fmt.pr "FAIL: %s@." msg; true) else false in
  let accept_fail =
    List.exists Fun.id
      [
        gate (exhausted_of (row "sa-me-n2")) "sa-me-n2 must exhaust under `Source";
        gate (not (lower_of (row "sa-me-n2"))) "sa-me-n2 factor must not be a lower bound";
        gate (exhausted_of (row "sa-me-n3")) "sa-me-n3 must exhaust under `Source";
        gate (factor_of (row "splitter-me-n2") >= 91.0) "splitter-me-n2 must keep >= 91x";
      ]
  in
  if !divergence || gate_fail || !overhead_fail || accept_fail then exit 1

(* ------------------------------------------------------------------ *)
(* Sweep throughput: crash-site campaign cost per lock                  *)
(* ------------------------------------------------------------------ *)

let sweep_bench () =
  Fmt.pr "@.=== Sweep: crash-site campaign throughput ===@.@.";
  let module Sweep = Rme_check.Sweep in
  let sweep_cfg jobs =
    {
      Sweep.default_cfg with
      Sweep.max_runs_per_plan = 150;
      max_steps = 6_000;
      site_cap = 48;
      plan_cap = 120;
      jobs;
    }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let case key jobs =
    let spec : Rme.Spec.t = Rme.Spec.find_exn key in
    let s =
      Sweep.standard_subject ~name:key ~n:2 ~requests:1 ~cs_yields:2
        ~recoverability:spec.expectation.Rme.Spec.recoverability spec.make
    in
    let c, dt =
      time (fun () ->
          Sweep.sweep (sweep_cfg jobs) ~n:s.Sweep.subject_n ~model:Memory.CC
            ~props:s.Sweep.subject_props s.Sweep.subject_scenario)
    in
    let sites = List.length c.Sweep.sites in
    (key, jobs, sites, c.Sweep.plans_run, c.Sweep.runs, dt)
  in
  let cases =
    [ case "wr" 1; case "wr" 2; case "sa-jjj" 1; case "ba-jjj" 1 ]
  in
  table
    ~header:[ "lock"; "jobs"; "sites"; "plans"; "runs"; "wall clock"; "sites/s"; "runs/s" ]
    ~rows:
      (List.map
         (fun (key, jobs, sites, plans, runs, dt) ->
           [
             key;
             string_of_int jobs;
             string_of_int sites;
             string_of_int plans;
             string_of_int runs;
             Printf.sprintf "%.3f s" dt;
             Printf.sprintf "%.1f" (float_of_int sites /. dt);
             Printf.sprintf "%.1f" (float_of_int runs /. dt);
           ])
         cases);
  (* Machine-readable trajectory point: one JSON file per bench invocation,
     appended to by CI so sweep throughput regressions are visible over time. *)
  let path = "BENCH_sweep.json" in
  let buf = Buffer.create 512 in
  json_header buf "sweep";
  Buffer.add_string buf "  \"cases\": [\n";
  List.iteri
    (fun i (key, jobs, sites, plans, runs, dt) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"lock\": %S, \"jobs\": %d, \"sites\": %d, \"plans\": %d, \"runs\": %d, \
            \"seconds\": %.4f, \"sites_per_sec\": %.2f, \"runs_per_sec\": %.2f}%s\n"
           key jobs sites plans runs dt
           (float_of_int sites /. dt)
           (float_of_int runs /. dt)
           (if i = List.length cases - 1 then "" else ",")))
    cases;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (Buffer.contents buf));
  Fmt.pr "@.(json: %s)@." path

(* ------------------------------------------------------------------ *)
(* Chaos campaign throughput: adaptive adversaries over the registry    *)
(* ------------------------------------------------------------------ *)

let chaos_bench () =
  Fmt.pr "@.=== Chaos: adaptive-adversary campaign throughput ===@.@.";
  let module Chaos = Rme_check.Chaos in
  let runs = 50 in
  let case_of key =
    let spec : Rme.Spec.t = Rme.Spec.find_exn key in
    {
      Chaos.case_name = key;
      case_make = spec.make;
      case_weak = spec.expectation.Rme.Spec.recoverability = `Weak;
      case_ff_bound = Option.map (fun f -> f Chaos.default_cfg.Chaos.n) spec.ff_bound;
      case_abortable = spec.abortable;
    }
  in
  let adv_name a = Fmt.str "%a" Chaos.pp_adversary a in
  let short s = String.sub s 0 (String.index s '(') in
  let cases =
    List.concat_map
      (fun key ->
        List.map
          (fun adv ->
            let t0 = Unix.gettimeofday () in
            let o =
              Chaos.campaign ~adversaries:[ adv ] ~runs ~seed_base:0 [ case_of key ]
            in
            let dt = Unix.gettimeofday () -. t0 in
            (key, adv, o, dt))
          Chaos.standard_adversaries)
      [ "wr"; "sa-jjj"; "ba-jjj" ]
  in
  let latency (o : Chaos.outcome) =
    if o.Chaos.detect_runs = 0 then 0.0
    else float_of_int o.Chaos.detect_steps /. float_of_int o.Chaos.detect_runs
  in
  table
    ~header:[ "lock"; "adversary"; "runs"; "crashes"; "viol"; "wall clock"; "runs/s"; "detect" ]
    ~rows:
      (List.map
         (fun (key, adv, (o : Chaos.outcome), dt) ->
           [
             key;
             short (adv_name adv);
             string_of_int o.Chaos.runs;
             string_of_int o.Chaos.crashes;
             string_of_int (List.length o.Chaos.violations);
             Printf.sprintf "%.3f s" dt;
             Printf.sprintf "%.1f" (float_of_int o.Chaos.runs /. dt);
             Printf.sprintf "%.0f steps" (latency o);
           ])
         cases);
  Fmt.pr "@.(detect = mean engine steps from a run's first injected crash to its@.\
          battery verdict; violations are expected to be 0 — any hit is replayed@.\
          and shrunk, see soak --adversary)@.";
  let path = "BENCH_chaos.json" in
  let buf = Buffer.create 512 in
  json_header buf "chaos";
  Buffer.add_string buf "  \"cases\": [\n";
  List.iteri
    (fun i (key, adv, (o : Chaos.outcome), dt) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"lock\": %S, \"adversary\": %S, \"runs\": %d, \"crashes\": %d, \
            \"violations\": %d, \"seconds\": %.4f, \"runs_per_sec\": %.2f, \
            \"detect_latency_steps\": %.1f}%s\n"
           key (short (adv_name adv)) o.Chaos.runs o.Chaos.crashes
           (List.length o.Chaos.violations)
           dt
           (float_of_int o.Chaos.runs /. dt)
           (latency o)
           (if i = List.length cases - 1 then "" else ",")))
    cases;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (Buffer.contents buf));
  Fmt.pr "@.(json: %s)@." path

(* ------------------------------------------------------------------ *)
(* System-crash shootout: storm adversaries under both crash models     *)
(* ------------------------------------------------------------------ *)

let syscrash_bench () =
  Fmt.pr "@.=== Syscrash: lock x crash-model storm shootout ===@.@.";
  let module Chaos = Rme_check.Chaos in
  let runs = 40 in
  let cfg = Chaos.default_cfg in
  let case_of key =
    let spec : Rme.Spec.t = Rme.Spec.find_exn key in
    {
      Chaos.case_name = key;
      case_make = spec.make;
      case_weak = spec.expectation.Rme.Spec.recoverability = `Weak;
      case_ff_bound = None;
      case_abortable = spec.abortable;
    }
  in
  (* Matched storm profiles: same burst shape, one striking individual
     processes, the other the whole system. *)
  let adversaries =
    [
      ("per-process", Chaos.Storm { rate = 0.02; max_crashes = 6; gap = 40; backoff = 1.5 }, 6);
      ("system-wide", Chaos.Sys_storm { rate = 0.01; max_crashes = 4; gap = 60; backoff = 1.5 }, 4);
    ]
  in
  let cases =
    List.concat_map
      (fun key ->
        let case = case_of key in
        List.map
          (fun (model_name, adv, budget) ->
            let t0 = Unix.gettimeofday () in
            let crashes = ref 0 and exhausted = ref 0 and violations = ref 0 in
            let detect_steps = ref 0 and detect_runs = ref 0 in
            for seed = 0 to runs - 1 do
              let r = Chaos.run_one cfg ~make:case.Chaos.case_make ~adversary:adv ~seed in
              let fired = List.length r.Chaos.fired in
              crashes := !crashes + fired;
              (* runs-to-exhaustion: how often the storm's whole crash
                 budget landed inside one run's horizon *)
              if fired >= budget then incr exhausted;
              (match r.Chaos.fired with
              | f :: _ ->
                  detect_steps := !detect_steps + (r.Chaos.res.Rme_sim.Engine.steps - f.Rme_sim.Crash.f_step);
                  incr detect_runs
              | [] -> ());
              if Chaos.battery case ~requests:cfg.Chaos.requests r.Chaos.res <> [] then
                incr violations
            done;
            let dt = Unix.gettimeofday () -. t0 in
            let latency =
              if !detect_runs = 0 then 0.0
              else float_of_int !detect_steps /. float_of_int !detect_runs
            in
            (key, model_name, !crashes, !exhausted, !violations, latency, dt))
          adversaries)
      [ "wr"; "ba-jjj"; "jjj-sys"; "dm-jjj" ]
  in
  table
    ~header:
      [ "lock"; "crash model"; "crashes"; "exhausted"; "viol"; "detect"; "wall clock"; "runs/s" ]
    ~rows:
      (List.map
         (fun (key, model_name, crashes, exhausted, violations, latency, dt) ->
           [
             key;
             model_name;
             string_of_int crashes;
             Printf.sprintf "%d/%d" exhausted runs;
             string_of_int violations;
             Printf.sprintf "%.0f steps" latency;
             Printf.sprintf "%.3f s" dt;
             Printf.sprintf "%.1f" (float_of_int runs /. dt);
           ])
         cases);
  Fmt.pr "@.(exhausted = runs in which the storm spent its whole crash budget;@.\
          detect = mean engine steps from a run's first crash to its battery@.\
          verdict; viol is expected to stay 0 for every recoverable lock under@.\
          both models)@.";
  let path = "BENCH_syscrash.json" in
  let buf = Buffer.create 512 in
  json_header buf "syscrash";
  Buffer.add_string buf "  \"cases\": [\n";
  List.iteri
    (fun i (key, model_name, crashes, exhausted, violations, latency, dt) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"lock\": %S, \"crash_model\": %S, \"runs\": %d, \"crashes\": %d, \
            \"exhausted_runs\": %d, \"violations\": %d, \"detect_latency_steps\": %.1f, \
            \"seconds\": %.4f, \"runs_per_sec\": %.2f}%s\n"
           key model_name runs crashes exhausted violations latency dt
           (float_of_int runs /. dt)
           (if i = List.length cases - 1 then "" else ",")))
    cases;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (Buffer.contents buf));
  Fmt.pr "@.(json: %s)@." path

(* ------------------------------------------------------------------ *)
(* Abort: impatience shootout over the abortable locks                  *)
(* ------------------------------------------------------------------ *)

let abort_bench () =
  Fmt.pr "@.=== Abort: throughput and abort latency under impatience ===@.@.";
  let n = 8 and requests = 6 in
  let seeds = List.init 10 (fun i -> i) in
  (* Impatience levels are timeout profiles; the realised abort fraction
     is measured and reported, not assumed. *)
  let levels =
    [
      ("none", Rme.Workload.No_failures);
      ("mild", Rme.Workload.Impatient { timeout_steps = 120; retries = 2; backoff = 2.0 });
      ("heavy", Rme.Workload.Impatient { timeout_steps = 25; retries = 4; backoff = 1.5 });
    ]
  in
  let cfg scenario seed =
    {
      Rme.Workload.default_cfg with
      Rme.Workload.n;
      requests;
      seed;
      scenario;
      record = true;
      max_steps = 2_000_000;
    }
  in
  let locks = [ "wr-abort"; "bakery-abort"; "tas-abort" ] in
  let cases =
    List.concat_map
      (fun key ->
        let spec = Rme.Spec.find_exn key in
        List.map
          (fun (level, scenario) ->
            let t0 = Unix.gettimeofday () in
            let throughput = ref 0.0 and aborts = ref 0 and signals = ref 0 in
            let lat_sum = ref 0 and lat_max = ref 0 and lat_n = ref 0 in
            let stalls = ref 0 and completed = ref 0 in
            List.iter
              (fun seed ->
                let res = Rme.Workload.run spec (cfg scenario seed) in
                let m = Rme.Workload.measure res in
                throughput := !throughput +. m.Rme.Workload.throughput;
                aborts := !aborts + m.Rme.Workload.aborts;
                signals := !signals + List.length res.Rme_sim.Engine.aborts;
                completed := !completed + Rme_sim.Engine.total_completed res;
                List.iter
                  (fun (a : Rme_sim.Engine.abort_stat) ->
                    match a.Rme_sim.Engine.ab_result with
                    | Rme_sim.Engine.Res_aborted | Rme_sim.Engine.Res_lost_race ->
                        lat_sum := !lat_sum + a.Rme_sim.Engine.ab_own_steps;
                        lat_max := max !lat_max a.Rme_sim.Engine.ab_own_steps;
                        incr lat_n
                    | _ -> ())
                  res.Rme_sim.Engine.aborts;
                if
                  Rme.Check.Props.no_lost_wakeup res
                    ~bound:Rme.Check.Props.default_abort_expect.Rme.Check.Props.overtake_bound
                  <> None
                then incr stalls)
              seeds;
            let k = float_of_int (List.length seeds) in
            let latency = if !lat_n = 0 then 0.0 else float_of_int !lat_sum /. float_of_int !lat_n in
            let dt = Unix.gettimeofday () -. t0 in
            (key, level, !throughput /. k, !signals, !aborts, latency, !lat_max, !stalls, dt))
          levels)
      locks
  in
  table
    ~header:
      [ "lock"; "impatience"; "thpt/1k"; "signals"; "aborts"; "lat mean"; "lat max"; "stalls" ]
    ~rows:
      (List.map
         (fun (key, level, thpt, signals, aborts, latency, lat_max, stalls, _dt) ->
           [
             key;
             level;
             Printf.sprintf "%.2f" thpt;
             string_of_int signals;
             string_of_int aborts;
             Printf.sprintf "%.1f" latency;
             string_of_int lat_max;
             string_of_int stalls;
           ])
         cases);
  Fmt.pr "@.(thpt = satisfied requests per 1000 engine steps, averaged over %d seeds;@.\
          lat = the victim's own steps from abort signal to Aborted/lost-race@.\
          resolution; stalls = runs the lost-wakeup monitor flagged, expected 0)@."
    (List.length seeds);
  (* The no-abort overhead of the abortable variants: same workload, no
     impatience, abortable lock vs its plain ancestor.  This is the cost
     of carrying the abort port when nobody aborts. *)
  let overhead =
    List.map
      (fun (plain, abortable) ->
        let thpt key =
          let spec = Rme.Spec.find_exn key in
          let sum =
            List.fold_left
              (fun acc seed ->
                let res = Rme.Workload.run spec (cfg Rme.Workload.No_failures seed) in
                acc +. (Rme.Workload.measure res).Rme.Workload.throughput)
              0.0 seeds
          in
          sum /. float_of_int (List.length seeds)
        in
        let base = thpt plain and inst = thpt abortable in
        (plain, abortable, base, inst, if base = 0.0 then 1.0 else inst /. base))
      [ ("wr", "wr-abort"); ("bakery", "bakery-abort") ]
  in
  table
    ~header:[ "baseline"; "abortable"; "base thpt"; "abortable thpt"; "ratio" ]
    ~rows:
      (List.map
         (fun (plain, abortable, base, inst, ratio) ->
           [
             plain;
             abortable;
             Printf.sprintf "%.2f" base;
             Printf.sprintf "%.2f" inst;
             Printf.sprintf "%.3f" ratio;
           ])
         overhead);
  let path = "BENCH_abort.json" in
  let buf = Buffer.create 1024 in
  json_header buf "abort";
  Buffer.add_string buf "  \"cases\": [\n";
  List.iteri
    (fun i (key, level, thpt, signals, aborts, latency, lat_max, stalls, dt) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"lock\": %S, \"impatience\": %S, \"throughput_per_1k_steps\": %.3f, \
            \"abort_signals\": %d, \"aborts\": %d, \"abort_latency_own_steps_mean\": %.2f, \
            \"abort_latency_own_steps_max\": %d, \"lost_wakeup_stalls\": %d, \"seconds\": \
            %.4f}%s\n"
           key level thpt signals aborts latency lat_max stalls dt
           (if i = List.length cases - 1 then "" else ",")))
    cases;
  Buffer.add_string buf "  ],\n  \"no_abort_overhead\": [\n";
  List.iteri
    (fun i (plain, abortable, base, inst, ratio) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"baseline\": %S, \"abortable\": %S, \"baseline_throughput\": %.3f, \
            \"abortable_throughput\": %.3f, \"ratio\": %.4f}%s\n"
           plain abortable base inst ratio
           (if i = List.length overhead - 1 then "" else ",")))
    overhead;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (Buffer.contents buf));
  Fmt.pr "@.(json: %s)@." path;
  List.iter
    (fun (_, _, _, _, _, _, _, stalls, _) ->
      if stalls > 0 then begin
        Fmt.epr "abort bench: lost-wakeup stall detected@.";
        exit 1
      end)
    cases

(* ------------------------------------------------------------------ *)
(* Gc allocation differential: the fast path's regression gate          *)
(* ------------------------------------------------------------------ *)

let gc_bench () =
  Fmt.pr "@.=== Gc: engine fast path vs fully instrumented ===@.@.";
  (* One closed-loop workload (8 WR-Lock clients, 500 requests each) run
     under the two extreme engine modes.  The gate pins the fast path's
     contract — at least 2x the passages/sec of the fully instrumented
     engine at no more than half the minor words per passage — so an
     accidental allocation or bookkeeping step creeping back into the hot
     loop fails CI instead of silently eroding the headline numbers. *)
  let n = 8 and requests = 500 in
  let body lock ~pid = Harness.standard_body ~lock ~requests pid in
  let run ~mode ~record ~trace_ops () =
    Engine.run ~mode ~record ~trace_ops ~max_steps:10_000_000 ~n ~model:Memory.CC
      ~sched:(Sched.random ~seed:11) ~crash:Crash.none ~setup:Wr_lock.make ~body ()
  in
  (* The two modes must also agree on every result field: the fast path is
     an elision of bookkeeping nobody asked for, never a semantic change. *)
  let fast_res = run ~mode:`Fast ~record:false ~trace_ops:false () in
  let full_res = run ~mode:`Full ~record:false ~trace_ops:false () in
  if fast_res <> full_res then begin
    Fmt.epr "gc bench: `Fast and `Full disagree on the same schedule@.";
    exit 1
  end;
  let measure ~mode ~record ~trace_ops =
    ignore (run ~mode ~record ~trace_ops ());
    let best_dt = ref infinity and best_alloc = ref infinity in
    let passages = ref 0 in
    for _ = 1 to 5 do
      let m0 = Gc.minor_words () in
      let t0 = Unix.gettimeofday () in
      let res = run ~mode ~record ~trace_ops () in
      let dt = Unix.gettimeofday () -. t0 in
      let alloc = Gc.minor_words () -. m0 in
      passages := List.length (Engine.completed_passages res);
      if dt < !best_dt then best_dt := dt;
      if alloc < !best_alloc then best_alloc := alloc
    done;
    (!best_dt, !best_alloc, !passages)
  in
  let full_dt, full_alloc, full_p = measure ~mode:`Full ~record:true ~trace_ops:true in
  let fast_dt, fast_alloc, fast_p = measure ~mode:`Fast ~record:false ~trace_ops:false in
  let row label dt alloc p =
    [
      label;
      string_of_int p;
      Printf.sprintf "%.3f s" dt;
      Printf.sprintf "%.0f" (float_of_int p /. dt);
      Printf.sprintf "%.0f" (alloc /. float_of_int (max 1 p));
    ]
  in
  table
    ~header:[ "engine"; "passages"; "best of 5"; "passages/s"; "minor words/passage" ]
    ~rows:
      [
        row "fast (`Fast, drop sink)" fast_dt fast_alloc fast_p;
        row "instrumented (`Full, record+trace)" full_dt full_alloc full_p;
      ];
  let speedup = full_dt /. fast_dt in
  let alloc_ratio =
    fast_alloc /. float_of_int (max 1 fast_p)
    /. (full_alloc /. float_of_int (max 1 full_p))
  in
  Fmt.pr "@.speedup %.2fx (gate: >= 2.0), allocation ratio %.3f (gate: <= 0.5)@." speedup
    alloc_ratio;
  if speedup < 2.0 || alloc_ratio > 0.5 then begin
    Fmt.epr "gc bench: fast-path regression gate FAILED@.";
    exit 1
  end;
  Fmt.pr "fast-path regression gate passed@."

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock suite                                            *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  Fmt.pr "@.=== Bechamel: wall-clock time per simulated workload ===@.@.";
  let open Bechamel in
  let workload key scenario () =
    ignore (Rme.Workload.run_key key (cfg ~n:8 ~requests:4 ~cs_yields:2 scenario))
  in
  let tests =
    (* One Test.make per reproduced table/figure workload. *)
    [
      Test.make ~name:"table1/ba-jjj/ff" (Staged.stage (workload "ba-jjj" scenario_none));
      Test.make ~name:"table1/ba-jjj/f8" (Staged.stage (workload "ba-jjj" (scenario_f 8)));
      Test.make ~name:"table1/jjj/ff" (Staged.stage (workload "jjj" scenario_none));
      Test.make ~name:"table1/tournament/ff" (Staged.stage (workload "tournament" scenario_none));
      Test.make ~name:"table1/bakery/ff" (Staged.stage (workload "bakery" scenario_none));
      Test.make ~name:"table1/wr/ff" (Staged.stage (workload "wr" scenario_none));
      Test.make ~name:"table2/sa-bakery/f8" (Staged.stage (workload "sa-bakery" (scenario_f 8)));
      Test.make ~name:"fig3/ba-jjj/f32" (Staged.stage (workload "ba-jjj" (scenario_f 32)));
      Test.make ~name:"batch/ba-jjj"
        (Staged.stage
           (workload "ba-jjj" (Rme.Workload.Batch { size = 8; at_step = 200; repeat = 1; gap = 0 })));
      Test.make ~name:"reclaim/wr-reclaim/storm"
        (Staged.stage (workload "wr-reclaim" (Rme.Workload.Random_storm { crashes = 8; rate = 0.01 })));
      Test.make ~name:"ablation/ba-jjj-tracked/f8"
        (Staged.stage (workload "ba-jjj-tracked" (scenario_f 8)));
    ]
  in
  let grouped = Test.make_grouped ~name:"rme" ~fmt:"%s %s" tests in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg_b =
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
    in
    let raw = Benchmark.all cfg_b instances grouped in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    results
  in
  let results = benchmark () in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := [ name; Printf.sprintf "%.2f us/run" (est /. 1000.) ] :: !rows
      | _ -> rows := [ name; "n/a" ] :: !rows)
    results;
  table ~header:[ "workload"; "time" ] ~rows:(List.sort compare !rows)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig1", fig1);
    ("fig23", fig23);
    ("adaptivity", adaptivity);
    ("batch", batch);
    ("reclaim", reclaim);
    ("ablation", ablation);
    ("branching", branching);
    ("scale", scale);
    ("space", space);
    ("anatomy", anatomy);
    ("fairness", fairness);
    ("adversary", adversary);
    ("explore", explore_bench);
    ("gc", gc_bench);
    ("sweep", sweep_bench);
    ("chaos", chaos_bench);
    ("syscrash", syscrash_bench);
    ("abort", abort_bench);
    ("figures", figures);
    ("bechamel", bechamel);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec strip_csv acc = function
    | "--csv" :: dir :: rest ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        csv_dir := Some dir;
        strip_csv acc rest
    | a :: rest -> strip_csv (a :: acc) rest
    | [] -> List.rev acc
  in
  match strip_csv [] args with
  | [] -> List.iter (fun (_, f) -> f ()) experiments
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None ->
              Fmt.epr "unknown experiment %S (have: %s)@." name
                (String.concat ", " (List.map fst experiments));
              exit 1)
        names
