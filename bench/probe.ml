(* Scratch scaling probe for the checkpointed explorer: times the same
   WR n=3 search as the explore bench at several snapshot gaps and domain
   counts, against the sequential DFS baseline.  Dev tool, not part of the
   recorded bench trajectory. *)

open Rme_sim
open Rme_locks

let check res =
  if res.Engine.cs_max > 1 then Some "ME violation"
  else if res.Engine.deadlocked then Some "deadlock"
  else None

let requests = try int_of_string (Sys.getenv "PROBE_REQUESTS") with Not_found -> 1
let nproc = try int_of_string (Sys.getenv "PROBE_N") with Not_found -> 3

let body lock ~pid = Harness.standard_body ~lock ~requests pid

let crash () = Crash.none

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let max_runs = try int_of_string (Sys.getenv "PROBE_RUNS") with Not_found -> 4_000 in
  let seq () =
    Rme_check.Explore.explore ~por:`Off ~max_runs ~max_steps:4_000 ~shrink_violations:false
      ~n:nproc ~model:Memory.CC ~crash ~setup:Wr_lock.make ~body ~check ()
  in
  let par ~snap_gap ~domains () =
    Rme_check.Explore.explore_parallel ~por:`Off ~snap_gap ~domains ~max_runs ~max_steps:4_000
      ~shrink_violations:false ~n:nproc ~model:Memory.CC ~crash ~setup:Wr_lock.make ~body ~check ()
  in
  ignore (par ~snap_gap:4 ~domains:2 ());
  let best f =
    let d = ref infinity in
    for _ = 1 to 3 do
      let _, dt = time f in
      if dt < !d then d := dt
    done;
    !d
  in
  let words f =
    let before = Gc.allocated_bytes () in
    ignore (f ());
    (Gc.allocated_bytes () -. before) /. 8.0
  in
  Printf.printf "alloc/run: seq %.0f w | par gap=8 %.0f w\n%!"
    (words seq /. float_of_int max_runs)
    (words (par ~snap_gap:8 ~domains:1) /. float_of_int max_runs);
  let base = best seq in
  Printf.printf "sequential: %.3fs (%.0f runs/s)\n%!" base (float_of_int max_runs /. base);
  List.iter
    (fun snap_gap ->
      List.iter
        (fun domains ->
          (* Interleave a fresh baseline with each configuration so host
             noise hits both sides of the ratio. *)
          let b = best seq in
          let dt = best (par ~snap_gap ~domains) in
          Printf.printf "gap=%3d domains=%d: %.3fs speedup %.2fx (base %.3fs)\n%!" snap_gap
            domains dt (b /. dt) b)
        [ 1; 4 ])
    [ 1; 2; 4; 8; 16 ];
  let base' = best seq in
  Printf.printf "sequential again: %.3fs (drift %.2fx)\n%!" base' (base /. base');
  (* Phase microbench on the root schedule: live run without recording,
     live run with journal recording + captures, and a resume from the
     deepest snapshot (pure fast-forward).  [reps] identical runs each. *)
  let reps = 2_000 in
  let plain () =
    let record = Vec.create () in
    let sched = Sched.trace ~decisions:(Vec.create ()) ~record () in
    ignore
      (Engine.run ~max_steps:4_000 ~n:nproc ~model:Memory.CC ~sched ~crash:(crash ())
         ~setup:Wr_lock.make ~body ())
  in
  let deepest = ref None in
  let recorded () =
    let snaps = Vec.create () in
    ignore
      (Engine.run_resumable ~snap_gap:16 ~snap:(Vec.push snaps) ~max_steps:4_000 ~decisions:[||]
         ~n:nproc ~model:Memory.CC ~crash ~setup:Wr_lock.make ~body ());
    deepest := Some (Vec.last snaps)
  in
  let resumed () =
    match !deepest with
    | None -> assert false
    | Some s ->
        ignore
          (Engine.run_resumable ~from:s ~max_steps:4_000
             ~decisions:(Array.make (Engine.Snap.pos s) 0) ~n:nproc ~model:Memory.CC ~crash
             ~setup:Wr_lock.make ~body ())
  in
  recorded ();
  let t_plain = best (fun () -> for _ = 1 to reps do plain () done) in
  let t_rec = best (fun () -> for _ = 1 to reps do recorded () done) in
  let t_res = best (fun () -> for _ = 1 to reps do resumed () done) in
  Printf.printf "root run x%d: plain %.3fs | record+snap %.3fs (%.2fx) | resume-deep %.3fs (%.2fx)\n%!"
    reps t_plain t_rec (t_rec /. t_plain) t_res (t_res /. t_plain);
  (* Fixed per-run cost: engine + store construction and lock setup with a
     body that does nothing. *)
  let fixed () =
    let sched = Sched.trace ~decisions:(Vec.create ()) ~record:(Vec.create ()) () in
    ignore
      (Engine.run ~max_steps:4_000 ~n:nproc ~model:Memory.CC ~sched ~crash:(crash ())
         ~setup:Wr_lock.make
         ~body:(fun _ ~pid:_ -> ())
         ())
  in
  let t_fixed = best (fun () -> for _ = 1 to reps do fixed () done) in
  Printf.printf "fixed (setup+alloc only): %.3fs (%.2fx of plain)\n%!" t_fixed (t_fixed /. t_plain)
