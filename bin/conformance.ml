(* Cross-lock, cross-crash-model conformance shootout: sweep crash plans
   over every lock in the registry (plus the splitter try-lock and the
   dual-port arbitrator) and render one lock × property matrix per crash
   model.  The registry spans four papers — Golab–Ramaraju/Dhoked–Mittal
   adaptive RME (this repo's source), the Jayanti–Jayanti–Joshi
   sublogarithmic tree, the JJJ system-crash ticket lock (arXiv
   2302.00748) and the Dhoked–Mittal fair transformation (arXiv
   2110.08308) — so the matrix is a shootout of the papers' locks against
   both failure models.

     dune exec bin/conformance.exe -- --n 2 --requests 1 --site-cap 48
     dune exec bin/conformance.exe -- --lock wr --budget 1 --max-runs 4000
     dune exec bin/conformance.exe -- --model system --lock jjj-sys,dm-jjj

   --model per-process sweeps the paper's individual-crash model (§2.2),
   --model system the JJJ system-wide model (every continuation erased at
   one step), --model both (default) renders both matrices.

   Exit status 0 iff no unexpected violation (FAIL) was found in any
   swept model; expected violations — WR-Lock's FAS-gap ME overlap, a
   non-recoverable lock's post-crash deadlock — do not fail the run. *)

open Cmdliner
open Rme_sim
module Sweep = Rme_check.Sweep

(* The splitter is a try-lock, not a Lock.t: drive it with a one-shot body
   (winner takes the CS, losers complete without it).  A busy-retry wrapper
   would spin without parking and read as a livelock to the explorer's
   default schedule, so the one-shot shape is the honest scenario. *)
let splitter_subject ~n =
  let scenario =
    Sweep.Scenario
      {
        setup = (fun ctx -> Rme_locks.Splitter.create ctx);
        body =
          (fun sp ~pid ->
            Api.note (Event.Seg Event.Req_begin);
            if Rme_locks.Splitter.try_fast sp ~pid then begin
              Api.note (Event.Seg Event.Cs_begin);
              Api.yield ();
              Api.note (Event.Seg Event.Cs_end);
              Rme_locks.Splitter.release sp ~pid
            end;
            Api.note (Event.Seg Event.Req_done));
      }
  in
  {
    Sweep.subject_name = "splitter";
    subject_n = n;
    subject_scenario = scenario;
    subject_props = [ Sweep.me_prop () ];
  }

(* The arbitrator is a dual-port lock; its ordinary-lock view is defined for
   exactly two fixed processes, so the subject pins n = 2. *)
let arbitrator_subject ~requests ~cs_yields =
  Sweep.standard_subject ~name:"arbitrator" ~n:2 ~requests ~cs_yields ~recoverability:`Strong
    (fun ctx -> Rme_locks.Arbitrator.as_two_process_lock (Rme_locks.Arbitrator.create ctx) ~n:2)

let subjects ~n ~requests ~cs_yields ~aborts ~only =
  let wanted name = match only with None -> true | Some keys -> List.mem name keys in
  let registry =
    List.filter_map
      (fun (s : Rme.Spec.t) ->
        if not (wanted s.key) then None
        else
          (* In abort mode every lock gets a well-defined abort port:
             native for the abortable variants, the Not_supported adapter
             for the legacy locks — so injected signals probe the whole
             registry without crashing any subject. *)
          let make =
            if aborts && not s.abortable then fun ctx -> Rme_locks.Lock.abortable (s.make ctx)
            else s.make
          in
          Some
            ( Sweep.standard_subject ~name:s.key ~n ~requests ~cs_yields
                ~abortable:s.abortable ~recoverability:s.expectation.Rme.Spec.recoverability
                make,
              s.crash_safe ))
      Rme.Spec.all
  in
  let extras =
    (if wanted "splitter" then [ (splitter_subject ~n, true) ] else [])
    @ if wanted "arbitrator" then [ (arbitrator_subject ~requests ~cs_yields, true) ] else []
  in
  registry @ extras

(* One matrix under one crash model.  Locks marked crash_safe = false make
   no guarantee whatsoever under crashes (of either model), so crash plans
   are not meaningful for them: sweep them crash-free only (budget 0) and
   keep the crash budget for the rest.  Rows are re-merged into registry
   order afterwards. *)
let matrix_rows cfg ~subjects =
  let order = List.mapi (fun i (s, _) -> (s.Sweep.subject_name, i)) subjects in
  let safe = List.filter_map (fun (s, cs) -> if cs then Some s else None) subjects in
  let unsafe = List.filter_map (fun (s, cs) -> if cs then None else Some s) subjects in
  let rows =
    Sweep.matrix cfg ~model:Memory.CC ~subjects:safe
    @ Sweep.matrix { cfg with Sweep.budget = 0 } ~model:Memory.CC ~subjects:unsafe
  in
  List.sort
    (fun a b ->
      compare (List.assoc a.Sweep.row_subject order) (List.assoc b.Sweep.row_subject order))
    rows

let conformance n requests cs_yields budget site_cap plan_cap max_runs max_steps jobs
    split_depth model aborts only out =
  let cfg =
    {
      Sweep.default_cfg with
      Sweep.max_runs_per_plan = max_runs;
      max_steps;
      budget;
      site_cap;
      plan_cap;
      abort_timeout = aborts;
      jobs;
      split_depth;
    }
  in
  let models =
    match model with
    | `Per_process -> [ Sweep.Per_process ]
    | `System -> [ Sweep.System_wide ]
    | `Both -> [ Sweep.Per_process; Sweep.System_wide ]
  in
  let subjects = subjects ~n ~requests ~cs_yields ~aborts:(aborts <> None) ~only in
  if subjects = [] then begin
    Fmt.epr "no such lock; known: %s, splitter, arbitrator@."
      (String.concat ", " (Rme.Spec.keys ()));
    2
  end
  else begin
    let sections =
      List.map
        (fun crash_model ->
          let rows = matrix_rows { cfg with Sweep.crash_model } ~subjects in
          let header, cells = Sweep.matrix_cells rows in
          let details = Sweep.matrix_details rows in
          let rendered =
            Printf.sprintf "crash model: %s\n" (Sweep.crash_model_string crash_model)
            ^ Rme.Report.table_to_string ~header ~rows:cells
            ^ String.concat "" (List.map (fun l -> l ^ "\n") details)
          in
          (crash_model, rows, rendered))
        models
    in
    let rendered = String.concat "\n" (List.map (fun (_, _, r) -> r) sections) in
    print_string rendered;
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc rendered);
        Fmt.pr "matrix written to %s@." path);
    let failures =
      List.concat_map
        (fun (m, rows, _) ->
          List.map (fun (s, f) -> (m, s, f)) (Sweep.matrix_failures rows))
        sections
    in
    match failures with
    | [] ->
        Fmt.pr "@.conformance clean: %d locks x %d crash models, 0 unexpected violations@."
          (List.length subjects) (List.length models);
        0
    | failures ->
        Fmt.pr "@.%d unexpected violations:@." (List.length failures);
        List.iter
          (fun (m, subject, f) ->
            Fmt.pr "  [%s] %s: %a@." (Sweep.crash_model_string m) subject Sweep.pp_finding f)
          failures;
        1
  end

let () =
  let n = Arg.(value & opt int 2 & info [ "n" ] ~docv:"N" ~doc:"Processes per scenario.") in
  let requests =
    Arg.(value & opt int 1 & info [ "requests" ] ~docv:"R" ~doc:"Requests per process.")
  in
  let cs_yields =
    Arg.(
      value & opt int 3
      & info [ "cs-yields" ] ~docv:"K" ~doc:"Scheduling points inside each critical section.")
  in
  let budget =
    Arg.(
      value & opt int 1
      & info [ "budget" ] ~docv:"F"
          ~doc:"Crash budget: 0 = crash-free only, 1 = single-site plans, 2 = add pairs.")
  in
  let site_cap =
    Arg.(value & opt int 64 & info [ "site-cap" ] ~docv:"S" ~doc:"Max deduplicated crash sites.")
  in
  let plan_cap =
    Arg.(value & opt int 160 & info [ "plan-cap" ] ~docv:"P" ~doc:"Max crash plans swept.")
  in
  let max_runs =
    Arg.(
      value & opt int 150
      & info [ "max-runs" ] ~docv:"N" ~doc:"Explorer budget (schedules) per crash plan.")
  in
  let max_steps =
    Arg.(value & opt int 6_000 & info [ "max-steps" ] ~docv:"N" ~doc:"Engine step bound per run.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Explore each plan over $(docv) OCaml domains (1 = sequential).")
  in
  let split_depth =
    Arg.(
      value & opt int 1
      & info [ "split-depth" ] ~docv:"D" ~doc:"Frontier split depth of the parallel explorer.")
  in
  let model =
    Arg.(
      value
      & opt (enum [ ("per-process", `Per_process); ("system", `System); ("both", `Both) ]) `Both
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Crash model(s) to sweep: $(b,per-process) (the paper's individual crashes), \
             $(b,system) (system-wide crashes, every continuation erased at one step), or \
             $(b,both).")
  in
  let aborts =
    Arg.(
      value
      & opt (some int) None
      & info [ "aborts" ] ~docv:"T"
          ~doc:
            "Abort-injection mode: layer an impatient-waiter abort plan (timeout $(docv) \
             steps) over every crash plan, give legacy locks the Not_supported abort \
             adapter, and check the abort battery on the abortable locks.")
  in
  let only =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "l"; "lock" ] ~docv:"LOCKS" ~doc:"Comma-separated subset of locks to sweep.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Also write the rendered matrix to $(docv).")
  in
  let cmd =
    Cmd.v
      (Cmd.info "conformance"
         ~doc:"Crash-site sweep conformance matrix over the lock registry.")
      Term.(
        const conformance $ n $ requests $ cs_yields $ budget $ site_cap $ plan_cap $ max_runs
        $ max_steps $ jobs $ split_depth $ model $ aborts $ only $ out)
  in
  exit (Cmd.eval' cmd)
